package crossmodal_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"crossmodal/internal/trace"
)

// requiredStages are the pipeline stages the trace must cover (the issue's
// acceptance bar): every phase of the adaptation loop shows up as a named
// span in the exported stage tree.
var requiredStages = []string{"featurize", "mining", "labelprop", "labelmodel", "train", "eval"}

// TestGoldenPipelineTraced re-runs the golden pipeline with tracing ENABLED
// and requires bit-identical results: instrumentation must never consume RNG
// draws, reorder work, or otherwise perturb the computation. It then checks
// the captured trace itself — stage coverage, Chrome trace_event validity,
// and the human-readable summary.
func TestGoldenPipelineTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	if trace.Enabled() {
		t.Fatal("tracer already installed; tests must not leak the process default")
	}
	tr := trace.New()
	trace.SetDefault(tr)
	defer trace.SetDefault(nil)

	got := runGoldenPipeline(t, context.Background())
	compareGolden(t, got)

	// Stage coverage: every adaptation phase appears as a span.
	names := make(map[string]bool)
	for _, n := range tr.SpanNames() {
		names[n] = true
	}
	for _, stage := range requiredStages {
		if !names[stage] {
			t.Errorf("trace missing required stage span %q (have %v)", stage, tr.SpanNames())
		}
	}

	// The exported Chrome trace must be valid trace_event JSON with complete
	// events carrying the fields chrome://tracing and Perfetto require.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	eventNames := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			eventNames[ev.Name] = true
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("event %q has negative timing: ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
			}
		}
	}
	for _, stage := range requiredStages {
		if !eventNames[stage] {
			t.Errorf("chrome trace missing complete event for stage %q", stage)
		}
	}

	// The summary tree should mention every stage too.
	buf.Reset()
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	summary := buf.String()
	for _, stage := range requiredStages {
		if !strings.Contains(summary, stage) {
			t.Errorf("summary missing stage %q:\n%s", stage, summary)
		}
	}
}
