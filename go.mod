module crossmodal

go 1.22
