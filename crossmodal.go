// Package crossmodal is a from-scratch reproduction of "Leveraging
// Organizational Resources to Adapt Models to New Data Modalities" (Suri et
// al., PVLDB 13(12), 2020): a production-style pipeline that adapts existing
// classification tasks to a new data modality without hand labeling it.
//
// The pipeline augments the classic three-step split architecture:
//
//  1. Feature generation: organizational resources — model-based services,
//     aggregate statistics, rule-based services — transform data points of
//     every modality into a common, structured feature space.
//  2. Training-data curation: weak supervision labels the new modality —
//     labeling functions are mined automatically by frequent itemset
//     mining, augmented with label propagation over a feature-similarity
//     graph, and denoised by a generative label model into probabilistic
//     labels.
//  3. Model training: a multi-modal architecture (early fusion by default)
//     jointly trains on the labeled old modality and the weakly labeled new
//     modality.
//
// Because the paper's corpora and services are Google-internal, this package
// ships a synthetic latent-world substrate (see DESIGN.md for the
// substitution argument): hidden entities are rendered into text and image
// (and video) modalities through noisy observation channels, and simulated
// organizational services recover shared structure from either modality.
//
// # Quickstart
//
//	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
//	lib, _ := crossmodal.StandardLibrary(world)
//	task, _ := crossmodal.TaskByName("CT1")
//	ds, _ := crossmodal.BuildDataset(world, task, crossmodal.DefaultDatasetConfig())
//	pipe, _ := crossmodal.NewPipeline(lib, crossmodal.DefaultOptions())
//	res, _ := pipe.Run(context.Background(), ds)
//	auprc, _ := pipe.EvaluateAUPRC(context.Background(), res.Predictor, ds.TestImage)
//
// The runnable programs under examples/ and cmd/ exercise the full surface;
// internal/experiments regenerates every table and figure of the paper's
// evaluation.
package crossmodal

import (
	"context"

	"crossmodal/internal/active"
	"crossmodal/internal/core"
	"crossmodal/internal/experiments"
	"crossmodal/internal/feature"
	"crossmodal/internal/featurestore"
	"crossmodal/internal/fusion"
	"crossmodal/internal/labelmodel"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/metrics"
	"crossmodal/internal/mining"
	"crossmodal/internal/monitor"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// Core data-substrate types.
type (
	// World is the synthetic latent world all data points render.
	World = synth.World
	// WorldConfig parametrizes a World.
	WorldConfig = synth.Config
	// Task is one binary classification task over entities.
	Task = synth.Task
	// Dataset bundles the corpora for one task.
	Dataset = synth.Dataset
	// DatasetConfig sets corpus sizes.
	DatasetConfig = synth.DatasetConfig
	// Point is one data point of a concrete modality.
	Point = synth.Point
	// Modality identifies a data modality.
	Modality = synth.Modality
)

// Feature-space types.
type (
	// Schema describes a common feature space.
	Schema = feature.Schema
	// Vector is one point's feature values.
	Vector = feature.Vector
	// FeatureDef describes one feature.
	FeatureDef = feature.Def
)

// Organizational-resource types.
type (
	// Library is a collection of organizational resources.
	Library = resource.Library
	// Resource is one organizational service.
	Resource = resource.Resource
)

// Pipeline types.
type (
	// Pipeline is the cross-modal adaptation pipeline.
	Pipeline = core.Pipeline
	// Options configures a pipeline.
	Options = core.Options
	// Result is a completed pipeline run.
	Result = core.Result
	// Curation is the reusable output of the feature-generation and
	// weak-supervision stages.
	Curation = core.Curation
	// TrainSpec selects one end-model variant.
	TrainSpec = core.TrainSpec
	// StreamOptions configures the disk-backed streaming curation path.
	StreamOptions = core.StreamOptions
	// StreamedCuration is Curation's streaming analogue: probabilistic
	// labels plus open feature stores instead of materialized vectors.
	StreamedCuration = core.StreamedCuration
	// Predictor scores feature vectors with P(y = +1).
	Predictor = fusion.Predictor
	// FusionKind selects the multi-modal training architecture.
	FusionKind = core.FusionKind
)

// Fusion architectures (paper §5, Figure 4).
const (
	EarlyFusion        = core.EarlyFusion
	IntermediateFusion = core.IntermediateFusion
	DeViSE             = core.DeViSE
)

// Modalities of the evaluation.
const (
	Text  = synth.Text
	Image = synth.Image
	Video = synth.Video
)

// Experiment-suite types (reproduce the paper's tables and figures).
type (
	// Suite runs the paper's evaluation experiments.
	Suite = experiments.Suite
	// SuiteConfig sizes and seeds the suite.
	SuiteConfig = experiments.Config
)

// DefaultWorldConfig returns the world configuration used by the evaluation.
func DefaultWorldConfig() WorldConfig { return synth.DefaultConfig() }

// NewWorld builds a synthetic world.
func NewWorld(cfg WorldConfig) (*World, error) { return synth.NewWorld(cfg) }

// MustWorld is NewWorld that panics on error.
func MustWorld(cfg WorldConfig) *World { return synth.MustWorld(cfg) }

// StandardTasks returns the five evaluation tasks CT1–CT5 (paper Table 1).
func StandardTasks() []*Task { return synth.StandardTasks() }

// TaskByName returns a standard task by name ("CT1".."CT5").
func TaskByName(name string) (*Task, error) { return synth.TaskByName(name) }

// DefaultDatasetConfig returns the evaluation's corpus sizes.
func DefaultDatasetConfig() DatasetConfig { return synth.DefaultDatasetConfig() }

// BuildDataset samples the corpora for one task.
func BuildDataset(w *World, task *Task, cfg DatasetConfig) (*Dataset, error) {
	return synth.BuildDataset(w, task, cfg)
}

// SampleVideo draws video points (rendered as image-frame bundles).
func SampleVideo(w *World, task *Task, n, frames int, seed int64) []*Point {
	return synth.SampleVideo(w, task, n, frames, seed)
}

// StandardLibrary assembles the evaluation's organizational resources
// (service sets A–D plus modality-specific features; paper §6.2).
func StandardLibrary(w *World) (*Library, error) { return resource.StandardLibrary(w) }

// NewPipeline builds a cross-modal adaptation pipeline.
func NewPipeline(lib *Library, opts Options) (*Pipeline, error) {
	return core.NewPipeline(lib, opts)
}

// DefaultOptions returns the evaluation's pipeline configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewSuite builds the experiment suite that regenerates the paper's tables
// and figures.
func NewSuite(cfg SuiteConfig) (*Suite, error) { return experiments.NewSuite(cfg) }

// AUPRC computes the area under the precision-recall curve, the paper's
// headline metric (§6.3).
func AUPRC(labels []int8, scores []float64) float64 { return metrics.AUPRC(labels, scores) }

// Labels extracts ground-truth labels from points.
func Labels(pts []*Point) []int8 { return synth.Labels(pts) }

// PositiveRate returns the fraction of positive points.
func PositiveRate(pts []*Point) float64 { return synth.PositiveRate(pts) }

// Weak-supervision building blocks, exposed for programmatic use (the
// pipeline drives them automatically; see examples/lfmining for direct use).
type (
	// LabelingFunction is one programmatic labeler over the common
	// feature space.
	LabelingFunction = lf.LF
	// LFStats summarizes a labeling function on a labeled dev set.
	LFStats = lf.Stats
	// LFMatrix is the votes of many LFs on many points.
	LFMatrix = lf.Matrix
	// Expert simulates a human expert authoring LFs from a small sample.
	Expert = lf.Expert
	// MiningConfig sets automatic LF-generation thresholds.
	MiningConfig = mining.Config
	// MiningReport summarizes a mining run.
	MiningReport = mining.Report
	// LabelModel is the fitted generative label model.
	LabelModel = labelmodel.Model
	// LabelModelConfig configures label-model fitting.
	LabelModelConfig = labelmodel.Config
)

// LF vote values.
const (
	VotePositive = lf.Positive
	VoteNegative = lf.Negative
	VoteAbstain  = lf.Abstain
)

// DefaultMiningConfig returns the evaluation's LF-mining thresholds.
func DefaultMiningConfig() MiningConfig { return mining.DefaultConfig() }

// MineLFs generates labeling functions from a labeled development corpus by
// frequent itemset mining (paper §4.3).
func MineLFs(ctx context.Context, cfg MiningConfig, vecs []*Vector, labels []int8) ([]*LabelingFunction, MiningReport, error) {
	return mining.Mine(ctx, mapreduce.Config{}, cfg, vecs, labels)
}

// DefaultExpert returns the simulated-expert configuration of §6.7.1.
func DefaultExpert() Expert { return lf.DefaultExpert() }

// ApplyLFs evaluates labeling functions over a corpus into a vote matrix.
func ApplyLFs(ctx context.Context, lfs []*LabelingFunction, vecs []*Vector) (*LFMatrix, error) {
	return lf.Apply(ctx, mapreduce.Config{}, lfs, vecs)
}

// EvaluateLFs computes each LF's precision, recall and coverage on a labeled
// development set.
func EvaluateLFs(m *LFMatrix, labels []int8) []LFStats { return lf.EvaluateAll(m, labels) }

// FitLabelModel estimates the generative label model from a labeled
// development vote matrix (paper §4.1/§4.2).
func FitLabelModel(ctx context.Context, m *LFMatrix, labels []int8, cfg LabelModelConfig) (*LabelModel, error) {
	return labelmodel.FitSupervised(ctx, m, labels, cfg)
}

// Post-deployment lifecycle: active learning / self-training to grow beyond
// the bootstrap (§6.4) and parallel-model monitoring with budgeted human
// review (§7.4).
type (
	// ActiveConfig controls the human-in-the-loop review loop.
	ActiveConfig = active.Config
	// ActiveResult tracks per-round review outcomes.
	ActiveResult = active.Result
	// ReviewOracle reveals a point's true label (a human reviewer).
	ReviewOracle = active.Oracle
	// MonitorConfig controls an online model comparison.
	MonitorConfig = monitor.Config
	// Comparison is the outcome of a monitored comparison.
	Comparison = monitor.Comparison
)

// Review strategies for ActiveLearn.
const (
	UncertaintySampling = active.Uncertainty
	ImportanceSampling  = active.Importance
	RandomSampling      = active.Random
)

// ActiveLearn runs review rounds on top of a curation: select points by the
// configured strategy, reveal their labels through the oracle, retrain, and
// track test AUPRC per round.
func ActiveLearn(ctx context.Context, pipe *Pipeline, cur *Curation, pool, test []*Point, oracle ReviewOracle, cfg ActiveConfig) (*ActiveResult, error) {
	return active.Run(ctx, pipe, cur, pool, test, oracle, cfg)
}

// SelfTrain folds the model's own confident predictions on a pool back into
// training as pseudo-labels and retrains.
func SelfTrain(ctx context.Context, pipe *Pipeline, cur *Curation, pool []*Point, confidence, weight float64) (Predictor, int, error) {
	return active.SelfTrain(ctx, pipe, cur, pool, confidence, weight)
}

// CompareModels estimates two candidates' live precision and recall on
// traffic using a budgeted mix of random and importance-sampled human review.
func CompareModels(nameA string, a Predictor, nameB string, b Predictor, traffic []*Point, vecs []*Vector, oracle ReviewOracle, cfg MonitorConfig) (*Comparison, error) {
	return monitor.Compare(nameA, a, nameB, b, traffic, vecs, monitor.Oracle(oracle), cfg)
}

// TrainingCorpus is one training data source for fusion training (used via
// TrainSpec.Extra to add e.g. human-reviewed points).
type TrainingCorpus = fusion.Corpus

// FeatureStore is a bounded LRU cache of featurized points with JSONL
// persistence — the paper's precomputed-feature store (§2.3).
type FeatureStore = featurestore.Store

// NewFeatureStore builds a feature store over a resource library holding at
// most capacity vectors (0 = unbounded).
func NewFeatureStore(lib *Library, capacity int) (*FeatureStore, error) {
	return featurestore.New(lib, capacity)
}
