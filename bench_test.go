// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) plus per-stage microbenchmarks. Each experiment benchmark performs
// one full regeneration per iteration at a reduced corpus scale; the
// full-scale numbers in EXPERIMENTS.md come from cmd/experiments.
//
//	go test -bench=. -benchmem
package crossmodal_test

import (
	"context"
	"sync"
	"testing"

	"crossmodal"
	"crossmodal/internal/experiments"
)

// benchScale keeps one experiment-benchmark iteration in the seconds range.
const benchScale = 0.15

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

// suite returns a shared, cache-warm experiment suite so benchmarks measure
// experiment regeneration, not world construction.
func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite, benchErr = experiments.NewSuite(experiments.Config{Scale: benchScale, Seed: 5})
		if benchErr != nil {
			return
		}
		// Warm the CT1 caches (dataset, curation, baseline) so per-table
		// benchmarks measure their own work.
		_, benchErr = benchSuite.Table1(context.Background(), []string{"CT1"})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

func BenchmarkTable1(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(ctx, []string{"CT1"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(ctx, []string{"CT1"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table3(ctx, []string{"CT1"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure5(ctx, "CT1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure6(ctx, "CT1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure7(ctx, "CT1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusionComparison(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FusionComparison(ctx, []string{"CT1"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLFGeneration(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LFGeneration(ctx, "CT1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRawVsFeatures(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RawVsFeatures(ctx, "CT1"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-stage microbenchmarks ---

// benchEnv builds a small dataset once for stage benchmarks.
type benchEnvT struct {
	lib  *crossmodal.Library
	pipe *crossmodal.Pipeline
	ds   *crossmodal.Dataset
	task *crossmodal.Task
}

var (
	envOnce sync.Once
	env     benchEnvT
	envErr  error
)

func stageEnv(b *testing.B) benchEnvT {
	b.Helper()
	envOnce.Do(func() {
		world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
		env.lib, envErr = crossmodal.StandardLibrary(world)
		if envErr != nil {
			return
		}
		env.task, envErr = crossmodal.TaskByName("CT1")
		if envErr != nil {
			return
		}
		task := env.task
		cfg := crossmodal.DatasetConfig{
			Seed: 9, NumText: 3000, NumUnlabeledImage: 1000, NumHandLabelPool: 200, NumTest: 200,
		}
		env.ds, envErr = crossmodal.BuildDataset(world, task, cfg)
		if envErr != nil {
			return
		}
		opts := crossmodal.DefaultOptions()
		opts.MaxGraphSeeds, opts.GraphDevNodes = 800, 300
		env.pipe, envErr = crossmodal.NewPipeline(env.lib, opts)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkFeaturization measures organizational-resource feature generation
// throughput (pipeline stage A).
func BenchmarkFeaturization(b *testing.B) {
	e := stageEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.pipe.Featurize(ctx, e.ds.LabeledText); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(e.ds.LabeledText)*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkMining measures automatic LF generation over the dev corpus
// (pipeline stage B, §4.3).
func BenchmarkMining(b *testing.B) {
	e := stageEnv(b)
	ctx := context.Background()
	vecs, err := e.pipe.Featurize(ctx, e.ds.LabeledText)
	if err != nil {
		b.Fatal(err)
	}
	labels := crossmodal.Labels(e.ds.LabeledText)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := crossmodal.MineLFs(ctx, crossmodal.DefaultMiningConfig(), vecs, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineRun measures one full pipeline run (all three stages).
func BenchmarkPipelineRun(b *testing.B) {
	e := stageEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.pipe.Run(ctx, e.ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVideoFeaturization measures frame-split video featurization.
func BenchmarkVideoFeaturization(b *testing.B) {
	e := stageEnv(b)
	ctx := context.Background()
	videos := crossmodal.SampleVideo(e.lib.World(), e.task, 500, 5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.pipe.Featurize(ctx, videos); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(videos)*b.N)/b.Elapsed().Seconds(), "videos/s")
}

func BenchmarkAblations(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ablations(ctx, "CT1"); err != nil {
			b.Fatal(err)
		}
	}
}
