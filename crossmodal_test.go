package crossmodal_test

import (
	"context"
	"testing"

	"crossmodal"
)

// TestPublicAPIEndToEnd drives the entire public surface the examples rely
// on: world and library construction, dataset sampling, the pipeline, the
// reusable curation, video featurization, and the WS building blocks.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ctx := context.Background()

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossmodal.StandardTasks()) != 5 {
		t.Fatal("expected five standard tasks")
	}
	task, err := crossmodal.TaskByName("CT2")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := crossmodal.BuildDataset(world, task, crossmodal.DatasetConfig{
		Seed: 4, NumText: 3000, NumUnlabeledImage: 1200, NumHandLabelPool: 300, NumTest: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := crossmodal.DefaultOptions()
	opts.MaxGraphSeeds, opts.GraphDevNodes = 800, 300
	pipe, err := crossmodal.NewPipeline(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	auprc, err := pipe.EvaluateAUPRC(ctx, res.Predictor, ds.TestImage)
	if err != nil {
		t.Fatal(err)
	}
	base := crossmodal.PositiveRate(ds.TestImage)
	if auprc <= base {
		t.Errorf("cross-modal AUPRC %.3f should beat random %.3f", auprc, base)
	}

	// Re-train a variant from the same curation.
	spec := pipe.DefaultTrainSpec()
	spec.Fusion = crossmodal.IntermediateFusion
	if _, err := pipe.Train(context.Background(), res.Curation, spec); err != nil {
		t.Fatalf("variant training: %v", err)
	}

	// Video featurization through the same predictor.
	videos := crossmodal.SampleVideo(world, task, 200, 3, 8)
	vvecs, err := pipe.Featurize(ctx, videos)
	if err != nil {
		t.Fatal(err)
	}
	scores := res.Predictor.PredictBatch(vvecs)
	if len(scores) != len(videos) {
		t.Fatal("video scoring size mismatch")
	}
	if v := crossmodal.AUPRC(crossmodal.Labels(videos), scores); v <= 0 {
		t.Errorf("video AUPRC = %v", v)
	}
}

// TestPublicWeakSupervisionBlocks drives the mining / expert / label-model
// surface directly.
func TestPublicWeakSupervisionBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ctx := context.Background()
	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	task, err := crossmodal.TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := crossmodal.BuildDataset(world, task, crossmodal.DatasetConfig{
		Seed: 6, NumText: 4000, NumUnlabeledImage: 300, NumHandLabelPool: 100, NumTest: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := crossmodal.NewPipeline(lib, crossmodal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vecs, err := pipe.Featurize(ctx, ds.LabeledText)
	if err != nil {
		t.Fatal(err)
	}
	labels := crossmodal.Labels(ds.LabeledText)

	lfs, report, err := crossmodal.MineLFs(ctx, crossmodal.DefaultMiningConfig(), vecs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfs) == 0 || report.DevPositives == 0 {
		t.Fatalf("mining produced nothing: %s", report)
	}
	matrix, err := crossmodal.ApplyLFs(ctx, lfs, vecs)
	if err != nil {
		t.Fatal(err)
	}
	stats := crossmodal.EvaluateLFs(matrix, labels)
	if len(stats) != len(lfs) {
		t.Fatalf("stats = %d, lfs = %d", len(stats), len(lfs))
	}
	lm, err := crossmodal.FitLabelModel(context.Background(), matrix, labels, crossmodal.LabelModelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := lm.Predict(matrix)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probabilistic label %v out of range", p)
		}
	}
}
