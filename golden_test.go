package crossmodal_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"crossmodal"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current pipeline output")

// goldenResult is the checked-in fingerprint of one full pipeline run at a
// fixed seed. Floats are compared exactly: the pipeline is deterministic by
// construction (seeded splitmix64 streams, deterministic gradient sharding),
// so any drift here means a behavior change, not noise.
type goldenResult struct {
	Task        string    `json:"task"`
	LFCount     int       `json:"lf_count"`
	PropIters   int       `json:"prop_iters"`
	WSPrecision float64   `json:"ws_precision"`
	WSRecall    float64   `json:"ws_recall"`
	WSF1        float64   `json:"ws_f1"`
	WSCoverage  float64   `json:"ws_coverage"`
	AUPRC       float64   `json:"auprc"`
	Scores      []float64 `json:"scores"` // first test points, in order
}

// runGoldenPipeline executes the full pipeline — featurization, LF mining,
// label propagation, generative label model, early-fusion training, test
// scoring — at the fixed golden seed with pinned parallelism.
func runGoldenPipeline(t *testing.T, ctx context.Context) goldenResult {
	t.Helper()

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	task, err := crossmodal.TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := crossmodal.BuildDataset(world, task, crossmodal.DatasetConfig{
		Seed: 41, NumText: 2000, NumUnlabeledImage: 800, NumHandLabelPool: 200, NumTest: 600,
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := crossmodal.DefaultOptions()
	opts.Seed = 41
	opts.Workers = 2 // pinned: golden bytes must not depend on GOMAXPROCS
	opts.MaxGraphSeeds, opts.GraphDevNodes = 600, 200
	pipe, err := crossmodal.NewPipeline(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	auprc, err := pipe.EvaluateAUPRC(ctx, res.Predictor, ds.TestImage)
	if err != nil {
		t.Fatal(err)
	}

	const nScores = 8
	vecs, err := pipe.Featurize(ctx, ds.TestImage[:nScores])
	if err != nil {
		t.Fatal(err)
	}
	return goldenResult{
		Task:        res.Report.Task,
		LFCount:     res.Report.LFCount,
		PropIters:   res.Report.PropIters,
		WSPrecision: res.Report.WSPrecision,
		WSRecall:    res.Report.WSRecall,
		WSF1:        res.Report.WSF1,
		WSCoverage:  res.Report.WSCoverage,
		AUPRC:       auprc,
		Scores:      res.Predictor.PredictBatch(vecs),
	}
}

// compareGolden checks got bit-for-bit against testdata/golden_pipeline.json.
func compareGolden(t *testing.T, got goldenResult) {
	t.Helper()
	path := filepath.Join("testdata", "golden_pipeline.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	var want goldenResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got.Task != want.Task || got.LFCount != want.LFCount || got.PropIters != want.PropIters {
		t.Errorf("curation shape drifted: got task=%s lfs=%d iters=%d, want task=%s lfs=%d iters=%d",
			got.Task, got.LFCount, got.PropIters, want.Task, want.LFCount, want.PropIters)
	}
	exact := func(name string, g, w float64) {
		if g != w {
			t.Errorf("%s = %v, golden %v (bit drift)", name, g, w)
		}
	}
	exact("ws_precision", got.WSPrecision, want.WSPrecision)
	exact("ws_recall", got.WSRecall, want.WSRecall)
	exact("ws_f1", got.WSF1, want.WSF1)
	exact("ws_coverage", got.WSCoverage, want.WSCoverage)
	exact("auprc", got.AUPRC, want.AUPRC)
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("score count %d, golden %d", len(got.Scores), len(want.Scores))
	}
	for i := range got.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Errorf("score[%d] = %v, golden %v (bit drift)", i, got.Scores[i], want.Scores[i])
		}
	}
}

// runGoldenPipelineStreamed is runGoldenPipeline with the front half swapped
// for the disk-backed streaming path: no BuildDataset — points are generated,
// featurized, and spilled to a sharded feature store in chunks, LFs are mined
// over the store, and the propagation graph grows by incremental deltas.
func runGoldenPipelineStreamed(t *testing.T, ctx context.Context, dir string, chunkSize int) goldenResult {
	t.Helper()

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	task, err := crossmodal.TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}

	opts := crossmodal.DefaultOptions()
	opts.Seed = 41
	opts.Workers = 2 // pinned: golden bytes must not depend on GOMAXPROCS
	opts.MaxGraphSeeds, opts.GraphDevNodes = 600, 200
	pipe, err := crossmodal.NewPipeline(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pipe.CurateStreamed(ctx, world, task, crossmodal.DatasetConfig{
		Seed: 41, NumText: 2000, NumUnlabeledImage: 800, NumHandLabelPool: 200, NumTest: 600,
	}, crossmodal.StreamOptions{Dir: dir, ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	cur, err := sc.Materialize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	predictor, err := pipe.Train(ctx, cur, pipe.DefaultTrainSpec())
	if err != nil {
		t.Fatal(err)
	}
	auprc, err := pipe.EvaluateAUPRC(ctx, predictor, sc.Test)
	if err != nil {
		t.Fatal(err)
	}

	const nScores = 8
	vecs, err := pipe.Featurize(ctx, sc.Test[:nScores])
	if err != nil {
		t.Fatal(err)
	}
	return goldenResult{
		Task:        sc.Report.Task,
		LFCount:     sc.Report.LFCount,
		PropIters:   sc.Report.PropIters,
		WSPrecision: sc.Report.WSPrecision,
		WSRecall:    sc.Report.WSRecall,
		WSF1:        sc.Report.WSF1,
		WSCoverage:  sc.Report.WSCoverage,
		AUPRC:       auprc,
		Scores:      predictor.PredictBatch(vecs),
	}
}

// TestGoldenPipeline compares a full pipeline run bit-for-bit against
// testdata/golden_pipeline.json. Regenerate with:
//
//	go test -run TestGoldenPipeline -update .
func TestGoldenPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	got := runGoldenPipeline(t, context.Background())

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "golden_pipeline.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}
	compareGolden(t, got)
}

// TestGoldenPipelineStreamed is the bit-identity gate on the streaming path:
// the streamed run at the golden seed must match testdata/golden_pipeline.json
// byte for byte — same LF count, same propagation iterations, same WS quality
// floats, same test scores — at more than one chunk size, including one that
// does not divide the corpus sizes. Disk round-trips, chunked scale fitting,
// streamed mining, and incremental graph deltas are all exact, so any drift
// here is a correctness bug in the streaming rewrite, not noise.
func TestGoldenPipelineStreamed(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, chunk := range []int{256, 513} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			got := runGoldenPipelineStreamed(t, context.Background(), t.TempDir(), chunk)
			compareGolden(t, got)
		})
	}
}
