GO ?= go

.PHONY: check test build bench bench-json bench-smoke race serve-bench chaos cover cover-check trace-smoke scale-smoke bench-scale lifecycle-smoke

## check: tier-1 gate — build everything, vet it, run every test.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## bench: the perf-tracked benchmarks (training engine, batch prediction,
## Table 1 reproduction, full pipeline run). Record deltas in CHANGES.md.
bench:
	$(GO) test ./internal/model/ -run xxx -bench 'BenchmarkModelTrain|BenchmarkPredictBatch' -benchmem
	$(GO) test . -run xxx -bench 'BenchmarkTable1|BenchmarkPipelineRun' -benchmem -benchtime 3x

## bench-json: snapshot the curation-path benchmarks (similarity kernel,
## graph construction, propagation, full pipeline) as machine-readable JSON
## for cross-commit comparison.
bench-json:
	( $(GO) test ./internal/feature/ -run xxx -bench 'BenchmarkWeightedSimilarity|BenchmarkSimKernelWeighted|BenchmarkJaccard' -benchmem ; \
	  $(GO) test ./internal/labelprop/ -run xxx -bench 'BenchmarkBuildGraph|BenchmarkPropagate' -benchmem ; \
	  $(GO) test . -run xxx -bench 'BenchmarkPipelineRun' -benchmem -benchtime 3x ) \
	| $(GO) run ./cmd/benchjson -o BENCH_curation.json

## bench-smoke: the perf-contract gate — asserts the claims the fast paths
## are allowed to make: LSH recall >= 0.95 against exact blocked curation
## (and bit-identical graphs with Exact: true), quantized serving within its
## divergence bounds with identical decisions, and zero steady-state allocs
## per request in the batcher and quantized forward paths.
bench-smoke:
	$(GO) test -count=1 -run 'TestLSHRecallFloor|TestLSHExactKnob|TestRecallMetric' ./internal/labelprop/
	$(GO) test -count=1 -run 'TestPredictBatchQ' ./internal/model/
	$(GO) test -count=1 -run 'TestEarlyQuant|TestArtifactPreservesPrecision' ./internal/fusion/
	$(GO) test -count=1 -run 'TestQuantizedServingEndToEnd|TestRegistryRejectsDivergentQuantization|TestBatcherSubmitZeroAllocs' ./internal/serve/

## race: race-detector pass over the concurrent packages (training engine,
## mapreduce, label propagation, feature encoding, feature store, serving).
race:
	$(GO) test -race ./internal/model/ ./internal/mapreduce/ ./internal/labelprop/ ./internal/feature/ ./internal/featurestore/... ./internal/serve/ ./internal/trace/

## cover: per-package statement coverage for the whole module.
cover:
	$(GO) test -count=1 -cover ./...

## cover-check: the coverage regression gate — every internal/ package must
## stay at or above its floor in coverage_baseline.txt. A package missing
## from the test output (deleted or failing) also fails the gate.
cover-check:
	@$(GO) test -count=1 -cover ./internal/... > cover.out || { cat cover.out; rm -f cover.out; exit 1; }
	@awk 'NR==FNR { if ($$0 !~ /^#/ && NF >= 2) base[$$1]=$$2; next } \
	  /coverage:/ { pkg=$$2; cov=$$5; gsub(/%/,"",cov); seen[pkg]=1; \
	    if (pkg in base) { \
	      if (cov+0 < base[pkg]+0) { printf "FAIL  %s  %.1f%% < baseline %.1f%%\n", pkg, cov, base[pkg]; bad=1 } \
	      else { printf "ok    %s  %.1f%% (floor %.1f%%)\n", pkg, cov, base[pkg] } } \
	    else { printf "note  %s  %.1f%% (no baseline — add to coverage_baseline.txt)\n", pkg, cov } } \
	  END { for (pkg in base) if (!(pkg in seen)) { printf "FAIL  %s  in baseline but produced no coverage line\n", pkg; bad=1 } exit bad }' \
	  coverage_baseline.txt cover.out; status=$$?; rm -f cover.out; exit $$status

## scale-smoke: the scale/crash-safety gate — a 10^5-entity streamed
## curation under the race detector, driven to completion through
## deterministic injected commit crashes (internal/faulty schedule) with
## resume-from-last-committed-chunk recovery after every crash. Shrink with
## SCALE_N for quick local runs.
SCALE_N ?= 100000
scale-smoke:
	CROSSMODAL_SCALE_SMOKE=1 CROSSMODAL_SCALE_N=$(SCALE_N) \
		$(GO) test -race -count=1 -run TestScaleSmokeStreamed -v -timeout 30m ./internal/core/

## bench-scale: snapshot the streamed-curation scaling curve — entities vs
## wall-clock vs peak heap/RSS — as BENCH_scale.json. The claim archived
## here: peak-heap-MB stays flat as entities grow, because resident memory
## is bounded by ChunkSize and GraphWindow, not corpus size. Add a third
## size (e.g. "100000 1000000 10000000") for the full curve when you can
## spare the wall-clock.
SCALE_SET ?= 100000 1000000
bench-scale:
	CROSSMODAL_BENCH_SCALE="$(SCALE_SET)" \
		$(GO) test . -run xxx -bench BenchmarkScaleStream -benchtime 1x -timeout 120m \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_scale.json

## trace-smoke: run the traced pipeline under the race detector — the golden
## run must stay bit-identical with spans enabled — then produce a real
## Chrome trace from a small experiments run and sanity-check it is JSON.
trace-smoke:
	$(GO) test -race -count=1 -run 'TestGoldenPipelineTraced' .
	mkdir -p bin
	$(GO) run -race ./cmd/experiments -run rawvsfeat -tasks CT1 -scale 0.05 -trace bin/trace-smoke.json -trace-summary >/dev/null
	@grep -q '"traceEvents"' bin/trace-smoke.json || { echo "trace-smoke: not a Chrome trace"; exit 1; }
	@for stage in featurize mining labelprop labelmodel train eval; do \
		grep -q "\"name\": \"$$stage\"" bin/trace-smoke.json \
			|| { echo "trace-smoke: stage $$stage missing from trace"; exit 1; }; \
	done
	@echo "trace-smoke: bin/trace-smoke.json covers all pipeline stages"

## lifecycle-smoke: the closed-loop gate — the lifecycle controller suite
## under the race detector (detector properties, the golden drift episode,
## crash-mid-retrain and faulty-resource riders), then one seeded drift
## episode end to end through cmd/lifecycle. The event log must record a
## drift detection and a promotion, and the zero-drift control run must stay
## silent: clean traffic never triggers a retrain.
lifecycle-smoke:
	$(GO) test -race -count=1 ./internal/lifecycle/
	mkdir -p bin
	$(GO) run -race ./cmd/lifecycle -out bin/lifecycle-events.json >/dev/null
	@grep -q '"type": "drift"' bin/lifecycle-events.json || { echo "lifecycle-smoke: no drift event in the episode log"; exit 1; }
	@grep -q '"type": "promote"' bin/lifecycle-events.json || { echo "lifecycle-smoke: no promote event in the episode log"; exit 1; }
	$(GO) run -race ./cmd/lifecycle -simulate-drift=false -out bin/lifecycle-quiet.json >/dev/null
	@if grep -q '"type": "drift"' bin/lifecycle-quiet.json; then echo "lifecycle-smoke: zero-drift control run tripped the detector"; exit 1; fi
	@echo "lifecycle-smoke: drift detected, candidate promoted, quiet without drift"

## chaos: the failure-injection gate — seeded chaos suites across resource /
## featurestore / serve, the breaker property suite (1500 generated event
## sequences), the golden end-to-end determinism test, and a fuzz smoke over
## artifact loading. Everything runs under -race with fixed seeds, so a
## failure here reproduces exactly.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Breaker|Guard|Golden|Injection|Decide|Flap|Partial|Latency|Stale|Degraded' \
		./internal/resource/ ./internal/faulty/ ./internal/featurestore/ ./internal/serve/ .
	$(GO) test -run xxx -fuzz FuzzArtifactLoad -fuzztime 5s ./internal/fusion/
	$(GO) test -run xxx -fuzz FuzzEarlyModelGobDecode -fuzztime 5s ./internal/fusion/

## serve-bench: end-to-end serving benchmark — train a small artifact
## (stamped for f32 quantized serving by default), start the server, drive
## it closed-loop with loadgen (8-point batched requests over one pipelined
## connection — the latency-honest high-throughput shape), snapshot the
## stats to BENCH_serve.json. Uses a fixed high port; override with
## SERVE_ADDR.
SERVE_ADDR ?= 127.0.0.1:18099
serve-bench:
	mkdir -p bin
	$(GO) build -o bin/serve ./cmd/serve
	$(GO) build -o bin/loadgen ./cmd/loadgen
	$(GO) build -o bin/benchjson ./cmd/benchjson
	bin/serve -train bin/model.xma -train-only -scale 0.05
	bin/serve -model bin/model.xma -addr $(SERVE_ADDR) & echo $$! > bin/serve.pid
	bin/loadgen -url http://$(SERVE_ADDR) -mode closed -duration 5s -conns 1 -batch 8 \
		| tee /dev/stderr | bin/benchjson -o BENCH_serve.json; \
	status=$$?; kill `cat bin/serve.pid` 2>/dev/null; rm -f bin/serve.pid; exit $$status
