GO ?= go

.PHONY: check test build bench bench-json race

## check: tier-1 gate — build everything, run every test.
check:
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## bench: the perf-tracked benchmarks (training engine, batch prediction,
## Table 1 reproduction, full pipeline run). Record deltas in CHANGES.md.
bench:
	$(GO) test ./internal/model/ -run xxx -bench 'BenchmarkModelTrain|BenchmarkPredictBatch' -benchmem
	$(GO) test . -run xxx -bench 'BenchmarkTable1|BenchmarkPipelineRun' -benchmem -benchtime 3x

## bench-json: snapshot the curation-path benchmarks (similarity kernel,
## graph construction, propagation, full pipeline) as machine-readable JSON
## for cross-commit comparison.
bench-json:
	( $(GO) test ./internal/feature/ -run xxx -bench 'BenchmarkWeightedSimilarity|BenchmarkSimKernelWeighted|BenchmarkJaccard' -benchmem ; \
	  $(GO) test ./internal/labelprop/ -run xxx -bench 'BenchmarkBuildGraph|BenchmarkPropagate' -benchmem ; \
	  $(GO) test . -run xxx -bench 'BenchmarkPipelineRun' -benchmem -benchtime 3x ) \
	| $(GO) run ./cmd/benchjson -o BENCH_curation.json

## race: race-detector pass over the concurrent packages (training engine,
## mapreduce, label propagation, feature encoding).
race:
	$(GO) test -race ./internal/model/ ./internal/mapreduce/ ./internal/labelprop/ ./internal/feature/
