GO ?= go

.PHONY: check test build bench race

## check: tier-1 gate — build everything, run every test.
check:
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## bench: the perf-tracked benchmarks (training engine, batch prediction,
## Table 1 reproduction, full pipeline run). Record deltas in CHANGES.md.
bench:
	$(GO) test ./internal/model/ -run xxx -bench 'BenchmarkModelTrain|BenchmarkPredictBatch' -benchmem
	$(GO) test . -run xxx -bench 'BenchmarkTable1|BenchmarkPipelineRun' -benchmem -benchtime 3x

## race: race-detector pass over the concurrent packages (training engine,
## mapreduce, label propagation, feature encoding).
race:
	$(GO) test -race ./internal/model/ ./internal/mapreduce/ ./internal/labelprop/ ./internal/feature/
