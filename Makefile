GO ?= go

.PHONY: check test build bench bench-json race serve-bench chaos

## check: tier-1 gate — build everything, vet it, run every test.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## bench: the perf-tracked benchmarks (training engine, batch prediction,
## Table 1 reproduction, full pipeline run). Record deltas in CHANGES.md.
bench:
	$(GO) test ./internal/model/ -run xxx -bench 'BenchmarkModelTrain|BenchmarkPredictBatch' -benchmem
	$(GO) test . -run xxx -bench 'BenchmarkTable1|BenchmarkPipelineRun' -benchmem -benchtime 3x

## bench-json: snapshot the curation-path benchmarks (similarity kernel,
## graph construction, propagation, full pipeline) as machine-readable JSON
## for cross-commit comparison.
bench-json:
	( $(GO) test ./internal/feature/ -run xxx -bench 'BenchmarkWeightedSimilarity|BenchmarkSimKernelWeighted|BenchmarkJaccard' -benchmem ; \
	  $(GO) test ./internal/labelprop/ -run xxx -bench 'BenchmarkBuildGraph|BenchmarkPropagate' -benchmem ; \
	  $(GO) test . -run xxx -bench 'BenchmarkPipelineRun' -benchmem -benchtime 3x ) \
	| $(GO) run ./cmd/benchjson -o BENCH_curation.json

## race: race-detector pass over the concurrent packages (training engine,
## mapreduce, label propagation, feature encoding, feature store, serving).
race:
	$(GO) test -race ./internal/model/ ./internal/mapreduce/ ./internal/labelprop/ ./internal/feature/ ./internal/featurestore/ ./internal/serve/

## chaos: the failure-injection gate — seeded chaos suites across resource /
## featurestore / serve, the breaker property suite (1500 generated event
## sequences), the golden end-to-end determinism test, and a fuzz smoke over
## artifact loading. Everything runs under -race with fixed seeds, so a
## failure here reproduces exactly.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Breaker|Guard|Golden|Injection|Decide|Flap|Partial|Latency|Stale|Degraded' \
		./internal/resource/ ./internal/faulty/ ./internal/featurestore/ ./internal/serve/ .
	$(GO) test -run xxx -fuzz FuzzArtifactLoad -fuzztime 5s ./internal/fusion/
	$(GO) test -run xxx -fuzz FuzzEarlyModelGobDecode -fuzztime 5s ./internal/fusion/

## serve-bench: end-to-end serving benchmark — train a small artifact, start
## the server, drive it with loadgen, snapshot the latency/throughput stats
## to BENCH_serve.json. Uses a fixed high port; override with SERVE_ADDR.
SERVE_ADDR ?= 127.0.0.1:18099
serve-bench:
	mkdir -p bin
	$(GO) build -o bin/serve ./cmd/serve
	$(GO) build -o bin/loadgen ./cmd/loadgen
	$(GO) build -o bin/benchjson ./cmd/benchjson
	bin/serve -train bin/model.xma -train-only -scale 0.05
	bin/serve -model bin/model.xma -addr $(SERVE_ADDR) & echo $$! > bin/serve.pid
	bin/loadgen -url http://$(SERVE_ADDR) -mode closed -duration 5s -conns 8 \
		| tee /dev/stderr | bin/benchjson -o BENCH_serve.json; \
	status=$$?; kill `cat bin/serve.pid` 2>/dev/null; rm -f bin/serve.pid; exit $$status
