// Lifecycle: the full deployment story around the cross-modal bootstrap.
//
//  1. Bootstrap an image model with zero image labels (the pipeline).
//
//  2. Grow it with a small human-review budget via active learning (§6.4:
//     "rapid initial model deployment that can be augmented via techniques
//     for active learning or self-training").
//
//  3. Decide between the bootstrap and the grown model the production way
//     (§7.4): deploy both in parallel and compare them on live traffic with
//     a budgeted mix of random and importance-sampled human review.
//
//     go run ./examples/lifecycle
package main

import (
	"context"
	"fmt"
	"log"

	"crossmodal"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		log.Fatal(err)
	}
	task, err := crossmodal.TaskByName("CT1")
	if err != nil {
		log.Fatal(err)
	}
	cfg := crossmodal.DefaultDatasetConfig()
	cfg.NumText, cfg.NumUnlabeledImage, cfg.NumHandLabelPool, cfg.NumTest = 8000, 3000, 2000, 3000
	ds, err := crossmodal.BuildDataset(world, task, cfg)
	if err != nil {
		log.Fatal(err)
	}
	oracle := func(p *crossmodal.Point) int8 { return p.Label } // the human reviewer

	// --- 1. Bootstrap ---
	pipe, err := crossmodal.NewPipeline(lib, crossmodal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	bootAUPRC, err := pipe.EvaluateAUPRC(ctx, res.Predictor, ds.TestImage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. bootstrap (no image labels): test AUPRC %.3f\n", bootAUPRC)

	// --- 2. Active learning on a small review budget ---
	activeRes, err := crossmodal.ActiveLearn(ctx, pipe, res.Curation, ds.HandLabelPool, ds.TestImage, oracle,
		crossmodal.ActiveConfig{Strategy: crossmodal.ImportanceSampling, BatchSize: 150, Rounds: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. active learning (importance-sampled review):")
	for i, round := range activeRes.Rounds {
		fmt.Printf("   round %d: %4d reviewed, %3d violations surfaced, test AUPRC %.3f\n",
			i+1, round.Reviewed, round.PositivesFound, round.TestAUPRC)
	}

	// Retrain the final grown model the same way the loop did internally.
	grown, err := growModel(ctx, pipe, res.Curation, ds, oracle, activeRes.Rounds[len(activeRes.Rounds)-1].Reviewed)
	if err != nil {
		log.Fatal(err)
	}

	// --- 3. Parallel deployment + monitored comparison ---
	trafficVecs, err := pipe.Featurize(ctx, ds.TestImage)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := crossmodal.CompareModels("bootstrap", res.Predictor, "grown", grown,
		ds.TestImage, trafficVecs, oracle,
		crossmodal.MonitorConfig{Budget: 300, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. monitored comparison on live traffic (%d reviews spent):\n", comp.Reviewed)
	fmt.Printf("   disagreement on %.1f%% of traffic; estimated positive rate %.2f%%\n",
		100*comp.Disagreement, 100*comp.EstimatedPositiveRate)
	for _, m := range []crossmodal.Comparison{*comp} {
		fmt.Printf("   %-10s flags %.1f%% of traffic, reviewed precision %.2f\n",
			m.A.Name, 100*m.A.FlagRate, m.A.Precision)
		fmt.Printf("   %-10s flags %.1f%% of traffic, reviewed precision %.2f\n",
			m.B.Name, 100*m.B.FlagRate, m.B.Precision)
	}
	if winner := comp.Winner(0.02); winner != "" {
		fmt.Printf("   → promote %q\n", winner)
	} else {
		fmt.Println("   → too close to call; keep both deployed and keep sampling")
	}
}

// growModel retrains with the first n reviewed pool points as hard labels —
// reproducing what the active-learning loop converged to.
func growModel(ctx context.Context, pipe *crossmodal.Pipeline, cur *crossmodal.Curation, ds *crossmodal.Dataset, oracle crossmodal.ReviewOracle, n int) (crossmodal.Predictor, error) {
	if n > len(ds.HandLabelPool) {
		n = len(ds.HandLabelPool)
	}
	reviewed := ds.HandLabelPool[:n]
	vecs, err := pipe.Featurize(ctx, reviewed)
	if err != nil {
		return nil, err
	}
	targets := make([]float64, len(reviewed))
	weights := make([]float64, len(reviewed))
	for i, p := range reviewed {
		if oracle(p) > 0 {
			targets[i] = 1
		}
		weights[i] = 3
	}
	spec := pipe.DefaultTrainSpec()
	spec.Extra = []crossmodal.TrainingCorpus{{Name: "reviewed", Vectors: vecs, Targets: targets, Weights: weights}}
	return pipe.Train(ctx, cur, spec)
}
