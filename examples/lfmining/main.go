// LF mining: drive the weak-supervision building blocks directly (paper
// §4.3 and §6.7.1). The program mines labeling functions from the labeled
// text corpus by frequent itemset mining, has a simulated domain expert
// author rival LFs from a small sample, and compares both on the dev set and
// as label models.
//
//	go run ./examples/lfmining
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"crossmodal"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		log.Fatal(err)
	}
	task, err := crossmodal.TaskByName("CT2")
	if err != nil {
		log.Fatal(err)
	}
	cfg := crossmodal.DefaultDatasetConfig()
	cfg.NumText, cfg.NumUnlabeledImage, cfg.NumHandLabelPool, cfg.NumTest = 10000, 3000, 200, 200
	ds, err := crossmodal.BuildDataset(world, task, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Featurize the labeled text corpus into the common feature space —
	// this is both the mining corpus and the development set.
	pipe, err := crossmodal.NewPipeline(lib, crossmodal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	devVecs, err := pipe.Featurize(ctx, ds.LabeledText)
	if err != nil {
		log.Fatal(err)
	}
	devLabels := crossmodal.Labels(ds.LabeledText)

	// --- Automatic LF generation: mine the full corpus (§4.3) ---
	mined, report, err := crossmodal.MineLFs(ctx, crossmodal.DefaultMiningConfig(), devVecs, devLabels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miner scanned all %d dev points: %s\n", len(devVecs), report)

	// --- Expert LF authorship: a small sample, by hand (§6.7.1) ---
	expert := crossmodal.DefaultExpert()
	authored, err := expert.Develop(devVecs, devLabels, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expert examined %d sampled points: %d LFs\n", expert.SampleSize, len(authored))

	for _, side := range []struct {
		name string
		lfs  []*crossmodal.LabelingFunction
	}{{"mined", mined}, {"expert", authored}} {
		matrix, err := crossmodal.ApplyLFs(ctx, side.lfs, devVecs)
		if err != nil {
			log.Fatal(err)
		}
		stats := crossmodal.EvaluateLFs(matrix, devLabels)
		sort.Slice(stats, func(a, b int) bool {
			return stats[a].Precision*stats[a].Recall > stats[b].Precision*stats[b].Recall
		})
		fmt.Printf("\nbest %s LFs on the dev set:\n", side.name)
		for i, s := range stats {
			if i == 5 {
				break
			}
			fmt.Printf("  %-44s precision=%.2f recall=%.3f coverage=%.3f\n",
				s.Name, s.Precision, s.Recall, s.Coverage)
		}
		// Denoise the votes into probabilistic labels and measure the
		// label model's dev-set F1 — the §6.7 comparison metric.
		lm, err := crossmodal.FitLabelModel(ctx, matrix, devLabels, crossmodal.LabelModelConfig{})
		if err != nil {
			log.Fatal(err)
		}
		probs, err := lm.Predict(matrix)
		if err != nil {
			log.Fatal(err)
		}
		var tp, fp, fn int
		for i, p := range probs {
			pos := p >= 0.5
			switch {
			case pos && devLabels[i] > 0:
				tp++
			case pos:
				fp++
			case devLabels[i] > 0:
				fn++
			}
		}
		precision := safeDiv(tp, tp+fp)
		recall := safeDiv(tp, tp+fn)
		fmt.Printf("  label-model dev F1: %.3f (precision %.3f, recall %.3f)\n",
			2*precision*recall/maxf(precision+recall, 1e-12), precision, recall)
	}
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
