// Quickstart: run the cross-modal adaptation pipeline end to end on one
// task and evaluate it — the minimal use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"crossmodal"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// The synthetic world stands in for an organization's data; the
	// standard library stands in for its accumulated services (topic
	// models, aggregate statistics, rules).
	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		log.Fatal(err)
	}

	// CT1 is a topic/object classification task with labeled text data
	// and a new, unlabeled image modality.
	task, err := crossmodal.TaskByName("CT1")
	if err != nil {
		log.Fatal(err)
	}
	cfg := crossmodal.DefaultDatasetConfig()
	cfg.NumText, cfg.NumUnlabeledImage, cfg.NumHandLabelPool, cfg.NumTest = 6000, 2500, 500, 2000
	ds, err := crossmodal.BuildDataset(world, task, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpora: %d labeled text, %d unlabeled image, %d test\n",
		len(ds.LabeledText), len(ds.UnlabeledImage), len(ds.TestImage))

	// One call runs all three pipeline stages: common-feature generation,
	// weak-supervision curation, and cross-modal model training.
	pipe, err := crossmodal.NewPipeline(lib, crossmodal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weak supervision: %d LFs, %.0f%% coverage, label F1 %.3f\n",
		res.Report.LFCount, 100*res.Report.WSCoverage, res.Report.WSF1)

	auprc, err := pipe.EvaluateAUPRC(ctx, res.Predictor, ds.TestImage)
	if err != nil {
		log.Fatal(err)
	}
	base := crossmodal.PositiveRate(ds.TestImage)
	fmt.Printf("cross-modal model AUPRC on the new modality: %.3f (random ≈ %.3f)\n", auprc, base)
}
