// Moderation: the paper's motivating scenario (§1). A content-moderation
// team has a mature text classifier for policy violations; the application
// launches image posts, and the team must moderate them *before* any image
// labels exist. The example bootstraps an image model from organizational
// resources alone, then inspects the posts it would flag for human review.
//
//	go run ./examples/moderation
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"crossmodal"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		log.Fatal(err)
	}
	// CT4 is the rarest-positive task (0.9% positive) — think "illegal
	// product" moderation, where sampling randomly for labels is hopeless.
	task, err := crossmodal.TaskByName("CT4")
	if err != nil {
		log.Fatal(err)
	}
	cfg := crossmodal.DefaultDatasetConfig()
	cfg.NumText, cfg.NumUnlabeledImage, cfg.NumHandLabelPool, cfg.NumTest = 12000, 5000, 500, 4000
	ds, err := crossmodal.BuildDataset(world, task, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moderating %q: %d labeled text posts, %d brand-new image posts\n",
		task.Name, len(ds.LabeledText), len(ds.UnlabeledImage))

	pipe, err := crossmodal.NewPipeline(lib, crossmodal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	fmt.Printf("\nbootstrap without a single image label:\n")
	fmt.Printf("  %s\n", rep.Mining)
	fmt.Printf("  label propagation recovered borderline examples in %d iterations\n", rep.PropIters)
	fmt.Printf("  weak labels vs (hidden) truth: precision %.2f, recall %.2f\n",
		rep.WSPrecision, rep.WSRecall)

	// Rank the live image posts by violation probability — the review
	// queue a human moderation team would work through.
	vecs, err := pipe.Featurize(ctx, ds.TestImage)
	if err != nil {
		log.Fatal(err)
	}
	scores := res.Predictor.PredictBatch(vecs)
	type flagged struct {
		idx   int
		score float64
	}
	queue := make([]flagged, len(scores))
	for i, s := range scores {
		queue[i] = flagged{i, s}
	}
	sort.Slice(queue, func(a, b int) bool { return queue[a].score > queue[b].score })

	const reviewBudget = 40
	var caught int
	fmt.Printf("\ntop of the review queue (budget %d of %d posts):\n", reviewBudget, len(queue))
	for rank, f := range queue[:reviewBudget] {
		post := ds.TestImage[f.idx]
		verdict := "benign"
		if post.Label > 0 {
			verdict = "VIOLATION"
			caught++
		}
		if rank < 8 {
			v := vecs[f.idx]
			fmt.Printf("  #%2d p=%.2f %-9s topic=%s objects=%s reports=%.1f\n",
				rank+1, f.score, verdict,
				strings.Join(v.Get("topic").Categories, ","),
				strings.Join(v.Get("objects").Categories, ","),
				v.Get("user_reports").Num)
		}
	}
	totalPos := 0
	for _, p := range ds.TestImage {
		if p.Label > 0 {
			totalPos++
		}
	}
	randomHits := float64(reviewBudget) * float64(totalPos) / float64(len(queue))
	fmt.Printf("\nreviewing %d posts catches %d of %d violations (random sampling would catch ≈%.1f)\n",
		reviewBudget, caught, totalPos, randomHits)
}
