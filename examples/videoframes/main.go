// Video frames: extend the adaptation one modality further (paper §3.1.1).
// A model bootstrapped for images via the cross-modal pipeline is applied to
// *video* posts by splitting each video into representative image frames,
// featurizing the frames through the same organizational services, and
// merging the per-frame observations — no video-specific training at all.
//
//	go run ./examples/videoframes
package main

import (
	"context"
	"fmt"
	"log"

	"crossmodal"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		log.Fatal(err)
	}
	task, err := crossmodal.TaskByName("CT1")
	if err != nil {
		log.Fatal(err)
	}
	cfg := crossmodal.DefaultDatasetConfig()
	cfg.NumText, cfg.NumUnlabeledImage, cfg.NumHandLabelPool, cfg.NumTest = 8000, 3000, 200, 200
	ds, err := crossmodal.BuildDataset(world, task, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap the image model exactly as in the quickstart.
	pipe, err := crossmodal.NewPipeline(lib, crossmodal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("image model bootstrapped from text labels + organizational resources")

	// Now the application launches video posts. The video-splitting tool
	// renders each video as image frames; the library featurizes a video
	// point by merging per-frame service outputs (categorical union,
	// numeric mean).
	for _, frames := range []int{1, 3, 6} {
		videos := crossmodal.SampleVideo(world, task, 3000, frames, 99)
		vecs, err := pipe.Featurize(ctx, videos)
		if err != nil {
			log.Fatal(err)
		}
		auprc := crossmodal.AUPRC(crossmodal.Labels(videos), res.Predictor.PredictBatch(vecs))
		fmt.Printf("video posts split into %d frame(s): AUPRC %.3f (random ≈ %.3f)\n",
			frames, auprc, crossmodal.PositiveRate(videos))
	}
	fmt.Println("\nsplitting into frames lets every image-capable service see the video;")
	fmt.Println("a few frames beat one (better recall), while many frames can add noise —")
	fmt.Println("all without a single video-labeled example (paper §3.1.1).")
}
