package crossmodal_test

import (
	"fmt"

	"crossmodal"
)

// ExampleStandardTasks lists the evaluation's classification tasks.
func ExampleStandardTasks() {
	for _, task := range crossmodal.StandardTasks() {
		fmt.Printf("%s: %.1f%% positive\n", task.Name, 100*task.TargetPositiveRate)
	}
	// Output:
	// CT1: 4.1% positive
	// CT2: 9.3% positive
	// CT3: 3.2% positive
	// CT4: 0.9% positive
	// CT5: 6.9% positive
}

// ExampleStandardLibrary shows the organizational-resource feature space.
func ExampleStandardLibrary() {
	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		fmt.Println(err)
		return
	}
	schema := lib.Schema()
	fmt.Printf("organizational services (sets A-D): %d features\n", schema.Sets("A", "B", "C", "D").Len())
	fmt.Printf("servable features overall: %d of %d\n", schema.Servable().Len(), schema.Len())
	// Output:
	// organizational services (sets A-D): 15 features
	// servable features overall: 20 of 21
}

// ExamplePositiveRate demonstrates dataset sampling and class imbalance.
func ExamplePositiveRate() {
	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	task, _ := crossmodal.TaskByName("CT4")
	ds, err := crossmodal.BuildDataset(world, task, crossmodal.DatasetConfig{
		Seed: 7, NumText: 5000, NumUnlabeledImage: 100, NumHandLabelPool: 1, NumTest: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	rate := crossmodal.PositiveRate(ds.LabeledText)
	fmt.Printf("CT4 is heavily imbalanced: %v\n", rate < 0.03)
	// Output:
	// CT4 is heavily imbalanced: true
}
