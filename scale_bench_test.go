package crossmodal_test

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"crossmodal"
)

// BenchmarkScaleStream measures the streamed curation path at increasing
// corpus sizes: wall-clock (ns/op), peak live heap (post-GC HeapAlloc
// high-water, sampled every few chunks), and peak process RSS (VmHWM).
// `make bench-scale` runs it at the sizes in CROSSMODAL_BENCH_SCALE
// (default "100000 1000000") and archives the parsed output as
// BENCH_scale.json — the scaling claim is that peak-heap-MB stays flat as
// entities grow, because resident state is bounded by ChunkSize and
// GraphWindow, not corpus size. Note VmHWM is a process-lifetime high-water
// mark: within one `go test` invocation later sub-benchmarks can only
// report values >= earlier ones, so peak-rss-MB is meaningful per process,
// not per sub-benchmark.
func BenchmarkScaleStream(b *testing.B) {
	sizes := []int{100_000}
	if env := os.Getenv("CROSSMODAL_BENCH_SCALE"); env != "" {
		sizes = sizes[:0]
		for _, f := range strings.Fields(env) {
			n, err := strconv.Atoi(f)
			if err != nil || n < 1000 {
				b.Fatalf("bad CROSSMODAL_BENCH_SCALE entry %q", f)
			}
			sizes = append(sizes, n)
		}
	}

	world := crossmodal.MustWorld(crossmodal.DefaultWorldConfig())
	lib, err := crossmodal.StandardLibrary(world)
	if err != nil {
		b.Fatal(err)
	}
	task, err := crossmodal.TaskByName("CT1")
	if err != nil {
		b.Fatal(err)
	}
	opts := crossmodal.DefaultOptions()
	opts.Seed = 53
	opts.MaxGraphSeeds, opts.GraphDevNodes = 600, 200
	opts.Mining.NumericQuantiles = 0 // quantile candidate buffers are O(corpus)
	pipe, err := crossmodal.NewPipeline(lib, opts)
	if err != nil {
		b.Fatal(err)
	}

	for _, entities := range sizes {
		b.Run(fmt.Sprintf("entities=%d", entities), func(b *testing.B) {
			nText := entities * 3 / 5
			cfg := crossmodal.DatasetConfig{
				Seed: 53, NumText: nText, NumUnlabeledImage: entities - nText,
				NumHandLabelPool: 500, NumTest: 500,
			}
			var peakHeap uint64
			probe := func(stage string, chunk int) error {
				if chunk%8 != 0 {
					return nil
				}
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap {
					peakHeap = ms.HeapAlloc
				}
				return nil
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc, err := pipe.CurateStreamed(context.Background(), world, task, cfg, crossmodal.StreamOptions{
					Dir: b.TempDir(), ChunkSize: 8192, GraphWindow: 2000, ChunkHook: probe,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sc.Report.LFCount <= 0 {
					b.Fatal("no LFs mined")
				}
				sc.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(entities), "entities")
			b.ReportMetric(float64(peakHeap)/(1<<20), "peak-heap-MB")
			if rss, ok := vmHWMMB(); ok {
				b.ReportMetric(rss, "peak-rss-MB")
			}
		})
	}
}

// vmHWMMB reads the process's peak resident set size from /proc/self/status
// (Linux only; ok=false elsewhere).
func vmHWMMB() (float64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 3 && fields[0] == "VmHWM:" && fields[2] == "kB" {
			kb, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return 0, false
			}
			return kb / 1024, true
		}
	}
	return 0, false
}
