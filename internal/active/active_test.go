package active

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"crossmodal/internal/core"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

var (
	envOnce sync.Once
	envPipe *core.Pipeline
	envCur  *core.Curation
	envDS   *synth.Dataset
	envErr  error
)

func env(t *testing.T) (*core.Pipeline, *core.Curation, *synth.Dataset) {
	t.Helper()
	envOnce.Do(func() {
		world := synth.MustWorld(synth.DefaultConfig())
		lib, err := resource.StandardLibrary(world)
		if err != nil {
			envErr = err
			return
		}
		task, err := synth.TaskByName("CT1")
		if err != nil {
			envErr = err
			return
		}
		ds, err := synth.BuildDataset(world, task, synth.DatasetConfig{
			Seed: 12, NumText: 4000, NumUnlabeledImage: 1500, NumHandLabelPool: 1500, NumTest: 1500,
		})
		if err != nil {
			envErr = err
			return
		}
		opts := core.DefaultOptions()
		opts.MaxGraphSeeds, opts.GraphDevNodes = 900, 300
		pipe, err := core.NewPipeline(lib, opts)
		if err != nil {
			envErr = err
			return
		}
		cur, err := pipe.Curate(context.Background(), ds)
		if err != nil {
			envErr = err
			return
		}
		envPipe, envCur, envDS = pipe, cur, ds
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envPipe, envCur, envDS
}

func truthOracle(p *synth.Point) int8 { return p.Label }

func TestRunActiveLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	pipe, cur, ds := env(t)
	res, err := Run(context.Background(), pipe, cur, ds.HandLabelPool, ds.TestImage, truthOracle, Config{
		Strategy: Importance, BatchSize: 100, Rounds: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	if res.Rounds[2].Reviewed != 300 {
		t.Errorf("cumulative reviewed = %d, want 300", res.Rounds[2].Reviewed)
	}
	if res.Rounds[2].PositivesFound < res.Rounds[0].PositivesFound {
		t.Error("cumulative positives must be nondecreasing")
	}
	final := res.Rounds[len(res.Rounds)-1].TestAUPRC
	if final < res.Initial*0.85 {
		t.Errorf("review should not collapse the model: initial %.3f, final %.3f", res.Initial, final)
	}
}

func TestImportanceFindsMorePositivesThanRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	pipe, cur, ds := env(t)
	ctx := context.Background()
	imp, err := Run(ctx, pipe, cur, ds.HandLabelPool, ds.TestImage, truthOracle, Config{
		Strategy: Importance, BatchSize: 120, Rounds: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Run(ctx, pipe, cur, ds.HandLabelPool, ds.TestImage, truthOracle, Config{
		Strategy: Random, BatchSize: 120, Rounds: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if imp.Rounds[1].PositivesFound <= rnd.Rounds[1].PositivesFound {
		t.Errorf("importance sampling found %d positives, random found %d — expected more",
			imp.Rounds[1].PositivesFound, rnd.Rounds[1].PositivesFound)
	}
}

func TestRunValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	pipe, cur, ds := env(t)
	ctx := context.Background()
	if _, err := Run(ctx, pipe, cur, nil, ds.TestImage, truthOracle, Config{}); err == nil {
		t.Error("expected error for empty pool")
	}
	if _, err := Run(ctx, pipe, cur, ds.HandLabelPool, ds.TestImage, nil, Config{}); err == nil {
		t.Error("expected error for nil oracle")
	}
}

func TestPoolExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	pipe, cur, ds := env(t)
	small := ds.HandLabelPool[:40]
	res, err := Run(context.Background(), pipe, cur, small, ds.TestImage, truthOracle, Config{
		Strategy: Random, BatchSize: 30, Rounds: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 40 points at 30/round: round 1 reviews 30, round 2 the last 10,
	// then the loop stops.
	if len(res.Rounds) != 2 || res.Rounds[1].Reviewed != 40 {
		t.Fatalf("rounds = %+v", res.Rounds)
	}
}

func TestSelfTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	pipe, cur, ds := env(t)
	pred, used, err := SelfTrain(context.Background(), pipe, cur, ds.HandLabelPool, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pred == nil {
		t.Fatal("nil predictor")
	}
	if used == 0 {
		t.Log("no confident pseudo-labels at 0.9 (acceptable, just checking plumbing)")
	}
	if _, _, err := SelfTrain(context.Background(), pipe, cur, ds.HandLabelPool, 1.5, 1); err == nil {
		t.Error("expected error for confidence out of range")
	}
}

func TestSelectBatch(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.1, 0.55, 0.95}
	rng := rand.New(rand.NewSource(1))

	got := selectBatch(Uncertainty, scores, map[int]bool{}, 2, rng)
	if len(got) != 2 {
		t.Fatalf("batch = %v", got)
	}
	want := map[int]bool{1: true, 3: true} // closest to 0.5
	for _, idx := range got {
		if !want[idx] {
			t.Errorf("uncertainty picked %d (score %.2f)", idx, scores[idx])
		}
	}

	got = selectBatch(Importance, scores, map[int]bool{}, 2, rng)
	wantTop := map[int]bool{0: true, 4: true}
	for _, idx := range got {
		if !wantTop[idx] {
			t.Errorf("importance picked %d (score %.2f)", idx, scores[idx])
		}
	}

	// Reviewed points are excluded.
	got = selectBatch(Importance, scores, map[int]bool{4: true}, 1, rng)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("exclusion failed: %v", got)
	}

	// Exhausted pool.
	all := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	if got := selectBatch(Random, scores, all, 3, rng); got != nil {
		t.Errorf("exhausted pool should return nil, got %v", got)
	}
}
