// Package active implements the human-in-the-loop augmentation the paper
// prescribes after the cross-modal bootstrap (§6.4): "rapid initial model
// deployment that can be augmented via techniques for active learning or
// self-training on the order of days". Starting from the pipeline's
// weakly-supervised model, the loop repeatedly selects new-modality points
// for human review, folds the reviewed hard labels into training, and
// retrains — tracking how quickly targeted review closes the gap to full
// supervision.
package active

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"crossmodal/internal/core"
	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/metrics"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// Strategy selects which unreviewed points are sent to human review.
type Strategy string

// The sampling strategies of §7.4 ("a combination of random and importance
// sampling") plus the classic uncertainty criterion.
const (
	// Uncertainty reviews the points the current model is least sure
	// about (score closest to 0.5).
	Uncertainty Strategy = "uncertainty"
	// Importance reviews the highest-scoring points (positive hunting —
	// what a review queue does in heavily imbalanced moderation).
	Importance Strategy = "importance"
	// Random reviews uniformly (the baseline the paper's heuristics
	// replaced).
	Random Strategy = "random"
)

// Oracle reveals a point's true label — the stand-in for a human reviewer.
type Oracle func(*synth.Point) int8

// Config controls the loop.
type Config struct {
	// Strategy selects the review policy (default Uncertainty).
	Strategy Strategy
	// BatchSize is how many points are reviewed per round (default 50).
	BatchSize int
	// Rounds is how many review rounds run (default 5).
	Rounds int
	// ReviewWeight is the training weight of each reviewed point relative
	// to a weakly labeled one (default 3: hard labels are worth more).
	ReviewWeight float64
	// Seed drives random sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = Uncertainty
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 50
	}
	if c.Rounds <= 0 {
		c.Rounds = 5
	}
	if c.ReviewWeight <= 0 {
		c.ReviewWeight = 3
	}
	return c
}

// Round records one review round's outcome.
type Round struct {
	// Reviewed is the cumulative number of human-reviewed points.
	Reviewed int
	// PositivesFound is the cumulative number of true positives surfaced
	// to reviewers (review efficiency).
	PositivesFound int
	// TestAUPRC is the retrained model's AUPRC on the held-out test set.
	TestAUPRC float64
}

// Result is a completed active-learning run.
type Result struct {
	// Initial is the bootstrap model's AUPRC before any review.
	Initial float64
	// Rounds has one entry per review round.
	Rounds []Round
}

// Run executes the loop: the pipeline's curation provides the bootstrap
// model and weak labels; pool is the unlabeled new-modality traffic eligible
// for review; oracle reveals labels. The model is evaluated on test after
// every round.
func Run(ctx context.Context, pipe *core.Pipeline, cur *core.Curation, pool, test []*synth.Point, oracle Oracle, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(pool) == 0 {
		return nil, fmt.Errorf("active: empty review pool")
	}
	if oracle == nil {
		return nil, fmt.Errorf("active: nil oracle")
	}
	poolVecs, err := pipe.Featurize(ctx, pool)
	if err != nil {
		return nil, fmt.Errorf("active: featurize pool: %w", err)
	}
	testVecs, err := pipe.Featurize(ctx, test)
	if err != nil {
		return nil, fmt.Errorf("active: featurize test: %w", err)
	}
	testLabels := synth.Labels(test)

	spec := pipe.DefaultTrainSpec()
	predictor, err := pipe.Train(ctx, cur, spec)
	if err != nil {
		return nil, fmt.Errorf("active: bootstrap training: %w", err)
	}
	res := &Result{Initial: metrics.AUPRC(testLabels, predictor.PredictBatch(testVecs))}

	rng := xrand.New(cfg.Seed ^ 0xac71)
	reviewed := make(map[int]bool, cfg.Rounds*cfg.BatchSize)
	var reviewedVecs []*feature.Vector
	var reviewedTargets, reviewedWeights []float64
	positives := 0

	for round := 0; round < cfg.Rounds; round++ {
		scores := predictor.PredictBatch(poolVecs)
		batch := selectBatch(cfg.Strategy, scores, reviewed, cfg.BatchSize, rng)
		if len(batch) == 0 {
			break // pool exhausted
		}
		for _, idx := range batch {
			reviewed[idx] = true
			label := oracle(pool[idx])
			target := 0.0
			if label > 0 {
				target = 1
				positives++
			}
			reviewedVecs = append(reviewedVecs, poolVecs[idx])
			reviewedTargets = append(reviewedTargets, target)
			reviewedWeights = append(reviewedWeights, cfg.ReviewWeight)
		}
		roundSpec := spec
		roundSpec.Extra = []fusion.Corpus{{
			Name:    "reviewed",
			Vectors: reviewedVecs,
			Targets: reviewedTargets,
			Weights: reviewedWeights,
		}}
		predictor, err = pipe.Train(ctx, cur, roundSpec)
		if err != nil {
			return nil, fmt.Errorf("active: round %d training: %w", round, err)
		}
		res.Rounds = append(res.Rounds, Round{
			Reviewed:       len(reviewedVecs),
			PositivesFound: positives,
			TestAUPRC:      metrics.AUPRC(testLabels, predictor.PredictBatch(testVecs)),
		})
	}
	return res, nil
}

// selectBatch picks up to batchSize unreviewed indices per the strategy.
func selectBatch(strategy Strategy, scores []float64, reviewed map[int]bool, batchSize int, rng *rand.Rand) []int {
	var candidates []int
	for i := range scores {
		if !reviewed[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	switch strategy {
	case Random:
		rng.Shuffle(len(candidates), func(a, b int) {
			candidates[a], candidates[b] = candidates[b], candidates[a]
		})
	case Importance:
		sort.Slice(candidates, func(a, b int) bool {
			if scores[candidates[a]] != scores[candidates[b]] {
				return scores[candidates[a]] > scores[candidates[b]]
			}
			return candidates[a] < candidates[b]
		})
	default: // Uncertainty
		margin := func(i int) float64 {
			m := scores[i] - 0.5
			if m < 0 {
				m = -m
			}
			return m
		}
		sort.Slice(candidates, func(a, b int) bool {
			ma, mb := margin(candidates[a]), margin(candidates[b])
			if ma != mb {
				return ma < mb
			}
			return candidates[a] < candidates[b]
		})
	}
	if len(candidates) > batchSize {
		candidates = candidates[:batchSize]
	}
	out := append([]int(nil), candidates...)
	sort.Ints(out)
	return out
}

// SelfTrain implements the self-training alternative (§6.4): instead of
// human review, the model's own most confident predictions on the pool are
// folded back as pseudo-labels. confidence is the minimum |score - 0.5|·2
// for a pseudo-label (e.g. 0.9 keeps only scores ≤0.05 or ≥0.95). Returns
// the retrained predictor and how many pseudo-labels were used.
func SelfTrain(ctx context.Context, pipe *core.Pipeline, cur *core.Curation, pool []*synth.Point, confidence float64, weight float64) (fusion.Predictor, int, error) {
	if confidence <= 0 || confidence >= 1 {
		return nil, 0, fmt.Errorf("active: confidence must be in (0,1), got %v", confidence)
	}
	if weight <= 0 {
		weight = 1
	}
	poolVecs, err := pipe.Featurize(ctx, pool)
	if err != nil {
		return nil, 0, err
	}
	spec := pipe.DefaultTrainSpec()
	predictor, err := pipe.Train(ctx, cur, spec)
	if err != nil {
		return nil, 0, err
	}
	scores := predictor.PredictBatch(poolVecs)
	var vecs []*feature.Vector
	var targets, weights []float64
	for i, s := range scores {
		c := 2 * (s - 0.5)
		if c < 0 {
			c = -c
		}
		if c < confidence {
			continue
		}
		target := 0.0
		if s >= 0.5 {
			target = 1
		}
		vecs = append(vecs, poolVecs[i])
		targets = append(targets, target)
		weights = append(weights, weight)
	}
	if len(vecs) == 0 {
		return predictor, 0, nil
	}
	spec.Extra = []fusion.Corpus{{Name: "pseudo", Vectors: vecs, Targets: targets, Weights: weights}}
	retrained, err := pipe.Train(ctx, cur, spec)
	if err != nil {
		return nil, 0, err
	}
	return retrained, len(vecs), nil
}
