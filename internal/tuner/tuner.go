// Package tuner is a small black-box hyperparameter optimizer standing in
// for Google Vizier (paper §6.3, which uses Vizier to set end-model
// hyperparameters): define a search space, then maximize an objective with
// random search or successive halving.
package tuner

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crossmodal/internal/trace"
)

// Params is one sampled hyperparameter assignment.
type Params map[string]any

// Float returns the named float parameter; it panics if absent or of the
// wrong type — a programming error in objective code.
func (p Params) Float(name string) float64 {
	v, ok := p[name].(float64)
	if !ok {
		panic(fmt.Sprintf("tuner: param %q is not a float (%v)", name, p[name]))
	}
	return v
}

// Int returns the named integer parameter.
func (p Params) Int(name string) int {
	v, ok := p[name].(int)
	if !ok {
		panic(fmt.Sprintf("tuner: param %q is not an int (%v)", name, p[name]))
	}
	return v
}

// Choice returns the named categorical parameter.
func (p Params) Choice(name string) string {
	v, ok := p[name].(string)
	if !ok {
		panic(fmt.Sprintf("tuner: param %q is not a choice (%v)", name, p[name]))
	}
	return v
}

type paramKind int

const (
	floatParam paramKind = iota
	logFloatParam
	intParam
	choiceParam
)

type paramDef struct {
	name     string
	kind     paramKind
	lo, hi   float64
	intLo    int
	intHi    int
	choices  []string
	defaults any
}

// Space is a hyperparameter search space. The zero value is empty; add
// dimensions with the builder methods, which return the space for chaining.
type Space struct {
	defs []paramDef
}

// Float adds a uniform float dimension on [lo, hi].
func (s *Space) Float(name string, lo, hi float64) *Space {
	s.defs = append(s.defs, paramDef{name: name, kind: floatParam, lo: lo, hi: hi})
	return s
}

// LogFloat adds a log-uniform float dimension on [lo, hi]; lo must be > 0.
func (s *Space) LogFloat(name string, lo, hi float64) *Space {
	s.defs = append(s.defs, paramDef{name: name, kind: logFloatParam, lo: lo, hi: hi})
	return s
}

// Int adds a uniform integer dimension on [lo, hi] inclusive.
func (s *Space) Int(name string, lo, hi int) *Space {
	s.defs = append(s.defs, paramDef{name: name, kind: intParam, intLo: lo, intHi: hi})
	return s
}

// Choice adds a categorical dimension.
func (s *Space) Choice(name string, options ...string) *Space {
	s.defs = append(s.defs, paramDef{name: name, kind: choiceParam, choices: options})
	return s
}

func (s *Space) validate() error {
	if len(s.defs) == 0 {
		return fmt.Errorf("tuner: empty search space")
	}
	seen := map[string]bool{}
	for _, d := range s.defs {
		if seen[d.name] {
			return fmt.Errorf("tuner: duplicate param %q", d.name)
		}
		seen[d.name] = true
		switch d.kind {
		case floatParam:
			if d.hi < d.lo {
				return fmt.Errorf("tuner: param %q has hi < lo", d.name)
			}
		case logFloatParam:
			if d.lo <= 0 || d.hi < d.lo {
				return fmt.Errorf("tuner: log param %q needs 0 < lo <= hi", d.name)
			}
		case intParam:
			if d.intHi < d.intLo {
				return fmt.Errorf("tuner: int param %q has hi < lo", d.name)
			}
		case choiceParam:
			if len(d.choices) == 0 {
				return fmt.Errorf("tuner: choice param %q has no options", d.name)
			}
		}
	}
	return nil
}

// Sample draws one assignment.
func (s *Space) Sample(rng *rand.Rand) Params {
	p := make(Params, len(s.defs))
	for _, d := range s.defs {
		switch d.kind {
		case floatParam:
			p[d.name] = d.lo + rng.Float64()*(d.hi-d.lo)
		case logFloatParam:
			p[d.name] = math.Exp(math.Log(d.lo) + rng.Float64()*(math.Log(d.hi)-math.Log(d.lo)))
		case intParam:
			p[d.name] = d.intLo + rng.Intn(d.intHi-d.intLo+1)
		case choiceParam:
			p[d.name] = d.choices[rng.Intn(len(d.choices))]
		}
	}
	return p
}

// Trial records one evaluated assignment.
type Trial struct {
	Params Params
	Score  float64
}

// RandomSearch samples trials assignments, evaluates objective on each, and
// returns the best (highest score) plus the full history. The first
// objective error aborts the search.
func RandomSearch(ctx context.Context, space *Space, objective func(Params) (float64, error), trials int, seed int64) (Trial, []Trial, error) {
	if err := space.validate(); err != nil {
		return Trial{}, nil, err
	}
	if trials <= 0 {
		return Trial{}, nil, fmt.Errorf("tuner: trials must be positive, got %d", trials)
	}
	ctx, span := trace.Start(ctx, "tuner.random_search")
	defer span.End()
	span.SetInt("trials", int64(trials))
	rng := rand.New(rand.NewSource(seed))
	history := make([]Trial, 0, trials)
	best := Trial{Score: math.Inf(-1)}
	for i := 0; i < trials; i++ {
		params := space.Sample(rng)
		_, tspan := trace.Start(ctx, "tuner.trial")
		score, err := objective(params)
		tspan.SetFloat("score", score)
		tspan.End()
		if err != nil {
			return Trial{}, history, fmt.Errorf("tuner: trial %d: %w", i, err)
		}
		tr := Trial{Params: params, Score: score}
		history = append(history, tr)
		if score > best.Score {
			best = tr
		}
	}
	span.SetFloat("best", best.Score)
	return best, history, nil
}

// SuccessiveHalving runs the successive-halving bandit: start with `initial`
// sampled assignments at minBudget, keep the top 1/eta at each rung with
// eta× the budget, until one (or maxBudget) remains. The objective receives
// the budget (e.g. training epochs) alongside the params.
func SuccessiveHalving(ctx context.Context, space *Space, objective func(Params, int) (float64, error), initial, minBudget, maxBudget int, eta float64, seed int64) (Trial, error) {
	if err := space.validate(); err != nil {
		return Trial{}, err
	}
	ctx, span := trace.Start(ctx, "tuner.halving")
	defer span.End()
	span.SetInt("initial", int64(initial))
	if initial <= 0 || minBudget <= 0 || maxBudget < minBudget {
		return Trial{}, fmt.Errorf("tuner: bad halving parameters (initial=%d budgets=%d..%d)", initial, minBudget, maxBudget)
	}
	if eta <= 1 {
		eta = 2
	}
	rng := rand.New(rand.NewSource(seed))
	pool := make([]Trial, initial)
	for i := range pool {
		pool[i] = Trial{Params: space.Sample(rng)}
	}
	budget := minBudget
	for {
		_, rung := trace.Start(ctx, "tuner.rung")
		rung.SetInt("budget", int64(budget))
		rung.SetInt("pool", int64(len(pool)))
		for i := range pool {
			score, err := objective(pool[i].Params, budget)
			if err != nil {
				rung.End()
				return Trial{}, fmt.Errorf("tuner: halving at budget %d: %w", budget, err)
			}
			pool[i].Score = score
		}
		rung.End()
		sort.Slice(pool, func(a, b int) bool { return pool[a].Score > pool[b].Score })
		if len(pool) == 1 || budget >= maxBudget {
			return pool[0], nil
		}
		keep := int(math.Ceil(float64(len(pool)) / eta))
		if keep < 1 {
			keep = 1
		}
		pool = pool[:keep]
		budget = int(math.Min(float64(budget)*eta, float64(maxBudget)))
	}
}
