package tuner

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

var ctxbg = context.Background()

func quadraticSpace() *Space {
	return new(Space).Float("x", -5, 5).Float("y", -5, 5)
}

func TestRandomSearchFindsNearOptimum(t *testing.T) {
	obj := func(p Params) (float64, error) {
		x, y := p.Float("x"), p.Float("y")
		return -(x-1)*(x-1) - (y+2)*(y+2), nil
	}
	best, history, err := RandomSearch(ctxbg, quadraticSpace(), obj, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 300 {
		t.Fatalf("history = %d trials", len(history))
	}
	if best.Score < -0.5 {
		t.Errorf("best score = %.3f, want near 0", best.Score)
	}
	if math.Abs(best.Params.Float("x")-1) > 1 {
		t.Errorf("best x = %.3f, want near 1", best.Params.Float("x"))
	}
}

func TestRandomSearchPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := RandomSearch(ctxbg, quadraticSpace(), func(Params) (float64, error) { return 0, boom }, 5, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpaceValidation(t *testing.T) {
	cases := []*Space{
		{},
		new(Space).Float("x", 2, 1),
		new(Space).LogFloat("x", 0, 1),
		new(Space).Int("x", 5, 4),
		new(Space).Choice("x"),
		new(Space).Float("x", 0, 1).Float("x", 0, 1),
	}
	for i, s := range cases {
		if _, _, err := RandomSearch(ctxbg, s, func(Params) (float64, error) { return 0, nil }, 1, 1); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, _, err := RandomSearch(ctxbg, quadraticSpace(), func(Params) (float64, error) { return 0, nil }, 0, 1); err == nil {
		t.Error("expected error for zero trials")
	}
}

func TestSampleRespectsBounds(t *testing.T) {
	s := new(Space).
		Float("f", -1, 1).
		LogFloat("lr", 1e-4, 1).
		Int("h", 2, 8).
		Choice("opt", "sgd", "adam")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := s.Sample(rng)
		if f := p.Float("f"); f < -1 || f > 1 {
			t.Fatalf("f = %v out of bounds", f)
		}
		if lr := p.Float("lr"); lr < 1e-4 || lr > 1 {
			t.Fatalf("lr = %v out of bounds", lr)
		}
		if h := p.Int("h"); h < 2 || h > 8 {
			t.Fatalf("h = %v out of bounds", h)
		}
		if o := p.Choice("opt"); o != "sgd" && o != "adam" {
			t.Fatalf("opt = %q", o)
		}
	}
}

func TestLogFloatCoversDecades(t *testing.T) {
	s := new(Space).LogFloat("lr", 1e-4, 1)
	rng := rand.New(rand.NewSource(3))
	small, large := 0, 0
	for i := 0; i < 2000; i++ {
		lr := s.Sample(rng).Float("lr")
		if lr < 1e-3 {
			small++
		}
		if lr > 1e-1 {
			large++
		}
	}
	// Log-uniform: each decade holds ~25% of the mass.
	if small < 300 || large < 300 {
		t.Errorf("log sampling skewed: %d small, %d large of 2000", small, large)
	}
}

func TestParamsAccessorsPanic(t *testing.T) {
	p := Params{"x": 1.5}
	for _, f := range []func(){
		func() { p.Int("x") },
		func() { p.Choice("x") },
		func() { p.Float("missing") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSuccessiveHalving(t *testing.T) {
	// Score improves with budget and with small |x|; halving should find
	// a small |x| and end at max budget.
	calls := 0
	obj := func(p Params, budget int) (float64, error) {
		calls++
		x := p.Float("x")
		return float64(budget) - x*x, nil
	}
	s := new(Space).Float("x", -3, 3)
	best, err := SuccessiveHalving(ctxbg, s, obj, 16, 1, 8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Params.Float("x")) > 1.2 {
		t.Errorf("halving best x = %.3f, want near 0", best.Params.Float("x"))
	}
	// 16 + 8 + 4 + 2 evaluations = 30 < 16*4 full evaluations.
	if calls >= 16*4 {
		t.Errorf("halving did %d calls, should be fewer than full search", calls)
	}
}

func TestSuccessiveHalvingValidation(t *testing.T) {
	s := new(Space).Float("x", 0, 1)
	obj := func(Params, int) (float64, error) { return 0, nil }
	if _, err := SuccessiveHalving(ctxbg, s, obj, 0, 1, 8, 2, 1); err == nil {
		t.Error("expected error for zero initial")
	}
	if _, err := SuccessiveHalving(ctxbg, s, obj, 4, 8, 1, 2, 1); err == nil {
		t.Error("expected error for maxBudget < minBudget")
	}
	boom := errors.New("boom")
	if _, err := SuccessiveHalving(ctxbg, s, func(Params, int) (float64, error) { return 0, boom }, 2, 1, 2, 2, 1); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}
