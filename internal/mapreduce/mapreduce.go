// Package mapreduce is a small in-process map / combine / reduce engine.
//
// The paper implements feature generation and labeling-function application
// "using our MapReduce framework" (§6.3); this package provides the same
// programming model on a single machine, sharding work across goroutine
// workers. It is used by feature generation (map each data point through the
// organizational-resource library), LF application (map each point through
// every LF), and itemset counting (map to (itemset, count), reduce by sum).
package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Config controls job execution.
type Config struct {
	// Workers is the number of parallel mapper goroutines.
	// Zero or negative means GOMAXPROCS.
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every input in parallel and returns the outputs in input
// order. The first error cancels the job's context, so queued work is
// dropped and only already in-flight calls finish; the first error is
// returned. A nil context is treated as context.Background().
func Map[In, Out any](ctx context.Context, cfg Config, inputs []In, fn func(In) (Out, error)) ([]Out, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	outputs := make([]Out, len(inputs))
	workers := cfg.workers()
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers <= 1 {
		for i, in := range inputs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, err := fn(in)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: map input %d: %w", i, err)
			}
			outputs[i] = out
		}
		return outputs, nil
	}

	// Cancelling on the first mapper error stops the feed loop and lets
	// workers skip anything already queued, so the job short-circuits
	// instead of running the remaining inputs to completion.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue
				}
				out, err := fn(inputs[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("mapreduce: map input %d: %w", i, err)
						cancel()
					}
					mu.Unlock()
					continue
				}
				outputs[i] = out
			}
		}()
	}
feed:
	for i := range inputs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return outputs, nil
}

// KV is one intermediate key/value pair emitted by a MapReduce mapper.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

// Run executes a full map/shuffle/reduce job: mapFn turns each input into
// zero or more key/value pairs; pairs are grouped by key; reduceFn folds each
// group. The result maps each key to its reduced value. reduceFn receives the
// values in a deterministic (input-index) order.
func Run[In any, K comparable, V, R any](
	ctx context.Context,
	cfg Config,
	inputs []In,
	mapFn func(In, func(K, V)) error,
	reduceFn func(K, []V) (R, error),
) (map[K]R, error) {
	// Map phase: each input produces its own pair slice so ordering is
	// deterministic regardless of scheduling.
	pairLists, err := Map(ctx, cfg, inputs, func(in In) ([]KV[K, V], error) {
		var pairs []KV[K, V]
		emit := func(k K, v V) { pairs = append(pairs, KV[K, V]{k, v}) }
		if err := mapFn(in, emit); err != nil {
			return nil, err
		}
		return pairs, nil
	})
	if err != nil {
		return nil, err
	}
	// Shuffle phase.
	groups := make(map[K][]V)
	for _, pairs := range pairLists {
		for _, p := range pairs {
			groups[p.Key] = append(groups[p.Key], p.Value)
		}
	}
	// Reduce phase, parallel over keys.
	keys := make([]K, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	reduced, err := Map(ctx, cfg, keys, func(k K) (R, error) {
		return reduceFn(k, groups[k])
	})
	if err != nil {
		return nil, err
	}
	out := make(map[K]R, len(keys))
	for i, k := range keys {
		out[k] = reduced[i]
	}
	return out, nil
}

// Count is a convenience job that counts how many times mapFn emits each key
// across all inputs.
func Count[In any, K comparable](ctx context.Context, cfg Config, inputs []In, mapFn func(In, func(K)) error) (map[K]int, error) {
	return Run(ctx, cfg, inputs,
		func(in In, emit func(K, int)) error {
			return mapFn(in, func(k K) { emit(k, 1) })
		},
		func(_ K, counts []int) (int, error) {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total, nil
		})
}

// TopK returns the k keys with the largest counts, ties broken by the less
// function over keys (and deterministically even without it when keys are
// ordered). If less is nil, ties are broken arbitrarily but stably by count
// only when counts differ; callers wanting full determinism should pass less.
func TopK[K comparable](counts map[K]int, k int, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		if less != nil {
			return less(keys[i], keys[j])
		}
		return false
	})
	if k < len(keys) {
		keys = keys[:k]
	}
	return keys
}
