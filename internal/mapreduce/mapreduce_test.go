package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	inputs := make([]int, 100)
	for i := range inputs {
		inputs[i] = i
	}
	for _, workers := range []int{0, 1, 4, 200} {
		got, err := Map(context.Background(), Config{Workers: workers}, inputs, func(x int) (int, error) {
			return x * x, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	got, err := Map(nil, Config{}, nil, func(x int) (int, error) { return x, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), Config{Workers: 4}, []int{1, 2, 3, 4}, func(x int) (int, error) {
		if x == 3 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "input 2") {
		t.Errorf("err = %v, want it to name the failing input", err)
	}
}

func TestMapHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	inputs := make([]int, 10000)
	_, err := Map(ctx, Config{Workers: 2}, inputs, func(x int) (int, error) {
		if calls.Add(1) == 5 {
			cancel()
		}
		return x, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 10000 {
		t.Errorf("all %d inputs ran despite cancellation", n)
	}
}

func TestRunWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	counts, err := Run(context.Background(), Config{Workers: 3}, docs,
		func(doc string, emit func(string, int)) error {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
			return nil
		},
		func(_ string, vs []int) (int, error) {
			n := 0
			for _, v := range vs {
				n += v
			}
			return n, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("counts[%q] = %d, want %d", k, counts[k], v)
		}
	}
}

func TestRunReduceError(t *testing.T) {
	_, err := Run(context.Background(), Config{}, []int{1},
		func(x int, emit func(string, int)) error { emit("k", x); return nil },
		func(string, []int) (int, error) { return 0, errors.New("reduce failed") })
	if err == nil {
		t.Fatal("expected reduce error")
	}
}

func TestCountMatchesSequential(t *testing.T) {
	f := func(xs []uint8) bool {
		inputs := make([]int, len(xs))
		for i, x := range xs {
			inputs[i] = int(x % 7)
		}
		got, err := Count(context.Background(), Config{Workers: 4}, inputs, func(x int, emit func(int)) error {
			emit(x)
			if x%2 == 0 {
				emit(-x)
			}
			return nil
		})
		if err != nil {
			return false
		}
		want := map[int]int{}
		for _, x := range inputs {
			want[x]++
			if x%2 == 0 {
				want[-x]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopK(t *testing.T) {
	counts := map[string]int{"a": 5, "b": 9, "c": 5, "d": 1}
	got := TopK(counts, 3, func(a, b string) bool { return a < b })
	want := []string{"b", "a", "c"}
	if len(got) != 3 {
		t.Fatalf("TopK len = %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if all := TopK(counts, 10, nil); len(all) != 4 {
		t.Errorf("TopK with large k = %d entries, want 4", len(all))
	}
}

func TestRunDeterministicValueOrder(t *testing.T) {
	// Values for a key must arrive at the reducer in input order even with
	// many workers, so reductions like "first seen" are reproducible.
	inputs := make([]int, 200)
	for i := range inputs {
		inputs[i] = i
	}
	for trial := 0; trial < 5; trial++ {
		out, err := Run(context.Background(), Config{Workers: 8}, inputs,
			func(x int, emit func(string, int)) error { emit("k", x); return nil },
			func(_ string, vs []int) ([]int, error) { return vs, nil })
		if err != nil {
			t.Fatal(err)
		}
		vs := out["k"]
		if !sort.IntsAreSorted(vs) {
			t.Fatalf("trial %d: values not in input order: %v...", trial, vs[:10])
		}
	}
}

func ExampleCount() {
	posts := []string{"dog park", "dog", "cat"}
	counts, _ := Count(context.Background(), Config{Workers: 2}, posts, func(p string, emit func(string)) error {
		for _, w := range strings.Fields(p) {
			emit(w)
		}
		return nil
	})
	fmt.Println(counts["dog"], counts["cat"], counts["park"])
	// Output: 2 1 1
}

// TestMapShortCircuitsOnError: the first mapper error must cancel the job so
// queued inputs are dropped instead of running to completion.
func TestMapShortCircuitsOnError(t *testing.T) {
	const n = 500
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	var calls atomic.Int32
	_, err := Map(context.Background(), Config{Workers: 4}, inputs, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected the mapper error")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error should wrap the mapper's, got %v", err)
	}
	if got := calls.Load(); got > n/2 {
		t.Errorf("map ran %d of %d inputs after the first error; should short-circuit", got, n)
	}
}

// TestMapParentCancellationReported: with no mapper error, a canceled parent
// context is still reported as such.
func TestMapParentCancellationReported(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := Map(ctx, Config{Workers: 2}, inputs, func(i int) (int, error) {
		return i, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
