package model

import (
	"bytes"
	"context"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// quantFixture trains a small network on a separable synthetic task and
// returns it with held-out rows — the property-test bed for quantized
// divergence bounds.
func quantFixture(t testing.TB, inDim int, hidden []int, n int, seed int64) (*MLP, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, inDim)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		if i%2 == 0 {
			x[0] += 2
			y[i] = 1
		}
		X[i] = x
	}
	m, err := Train(context.Background(), X, y, nil, Config{Hidden: hidden, Epochs: 4, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eval := make([][]float64, 256)
	for i := range eval {
		x := make([]float64, inDim)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		if i%2 == 0 {
			x[0] += 2
		}
		eval[i] = x
	}
	return m, eval
}

// TestPredictBatchQDivergence is the quantization property test: across
// architectures, float32 scores stay within 1e-3 of the float64 reference
// (they are ~1e-7 in practice) with identical classification decisions,
// and int8 stays within its looser documented bound with decisions
// identical wherever the reference has any margin.
func TestPredictBatchQDivergence(t *testing.T) {
	cases := []struct {
		name   string
		hidden []int
	}{
		{"logreg", nil},
		{"mlp16", []int{16}},
		{"mlp32x8", []int{32, 8}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, X := quantFixture(t, 24, c.hidden, 400, 11)
			ref := m.PredictBatch(X)
			f32 := m.PredictBatchQ(X, Float32)
			i8 := m.PredictBatchQ(X, Int8)
			for i := range X {
				if d := math.Abs(f32[i] - ref[i]); d >= 1e-3 {
					t.Fatalf("row %d: |f32-f64| = %g, want < 1e-3 (f32=%v f64=%v)", i, d, f32[i], ref[i])
				}
				if (f32[i] >= 0.5) != (ref[i] >= 0.5) {
					t.Fatalf("row %d: f32 decision %v differs from f64 %v", i, f32[i], ref[i])
				}
				if d := math.Abs(i8[i] - ref[i]); d >= 5e-2 {
					t.Fatalf("row %d: |int8-f64| = %g, want < 5e-2", i, d)
				}
				if math.Abs(ref[i]-0.5) > 5e-2 && (i8[i] >= 0.5) != (ref[i] >= 0.5) {
					t.Fatalf("row %d: int8 flips a decision with margin (%v vs %v)", i, i8[i], ref[i])
				}
			}
		})
	}
}

// TestPredictBatchQFloat64Fallback pins the Float64 escape: PredictBatchQ
// at Float64 is exactly PredictBatch.
func TestPredictBatchQFloat64Fallback(t *testing.T) {
	m, X := quantFixture(t, 8, []int{8}, 100, 3)
	ref := m.PredictBatch(X)
	got := m.PredictBatchQ(X, Float64)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("row %d: %v vs %v", i, got[i], ref[i])
		}
	}
}

// TestPredictBatchQIntoAllocs asserts the arena contract: once the engine
// is warm, the Into path allocates nothing per batch.
func TestPredictBatchQIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime adds bookkeeping allocations")
	}
	m, X := quantFixture(t, 24, []int{16}, 200, 7)
	out := make([]float64, len(X))
	for _, p := range []Precision{Float32, Int8} {
		m.PredictBatchQInto(X, p, out) // warm the engine and scratch pool
		if allocs := testing.AllocsPerRun(50, func() {
			m.PredictBatchQInto(X, p, out)
		}); allocs != 0 {
			t.Errorf("%v: %v allocs per batch, want 0", p, allocs)
		}
	}
}

// TestPredictBatchQPanics pins the misuse paths (programming errors panic,
// matching PredictProba).
func TestPredictBatchQPanics(t *testing.T) {
	m, X := quantFixture(t, 8, nil, 60, 5)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("float64 precision", func() {
		m.PredictBatchQInto(X, Float64, make([]float64, len(X)))
	})
	mustPanic("bad out length", func() {
		m.PredictBatchQInto(X, Float32, make([]float64, len(X)-1))
	})
	mustPanic("bad input width", func() {
		m.PredictBatchQInto([][]float64{{1, 2}}, Float32, make([]float64, 1))
	})
}

// TestPrecisionNames round-trips the precision names the CLI and artifact
// flags use.
func TestPrecisionNames(t *testing.T) {
	for _, p := range []Precision{Float64, Float32, Int8} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
		if !p.Valid() {
			t.Errorf("%v not valid", p)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Error("unknown precision accepted")
	}
	if Precision(9).Valid() {
		t.Error("Precision(9) claims valid")
	}
	if s := Precision(9).String(); s != "Precision(9)" {
		t.Errorf("Precision(9).String() = %q", s)
	}
	if p, err := ParsePrecision("off"); err != nil || p != Float64 {
		t.Errorf(`ParsePrecision("off") = %v, %v`, p, err)
	}
}

// TestPrecisionTolerance pins the divergence contract the property tests
// and the serving canary gate both enforce.
func TestPrecisionTolerance(t *testing.T) {
	for _, c := range []struct {
		p           Precision
		tol, margin float64
	}{
		{Float64, 0, 0},
		{Float32, 1e-3, 0},
		{Int8, 5e-2, 5e-2},
	} {
		if tol, margin := c.p.Tolerance(); tol != c.tol || margin != c.margin {
			t.Errorf("%v.Tolerance() = %g, %g, want %g, %g", c.p, tol, margin, c.tol, c.margin)
		}
	}
}

// TestQuantEngineSurvivesGob ensures a decoded model rebuilds engines from
// its own (restored) parameters rather than inheriting stale ones.
func TestQuantEngineSurvivesGob(t *testing.T) {
	m, X := quantFixture(t, 12, []int{8}, 120, 9)
	want := m.PredictBatchQ(X, Float32)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var back MLP
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatal(err)
	}
	got := back.PredictBatchQ(X, Float32)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: decoded engine scored %v, original %v", i, got[i], want[i])
		}
	}
}

// TestQuantZeroWeightRow covers the all-zero-row quantization guard.
func TestQuantZeroWeightRow(t *testing.T) {
	m, err := New(4, []int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out one hidden unit's weights entirely.
	copy(m.weights[0][0:4], []float64{0, 0, 0, 0})
	m.biases[0][0] = 0.3
	X := [][]float64{{1, -1, 0.5, 2}}
	ref := m.PredictBatch(X)
	got := m.PredictBatchQ(X, Int8)
	if d := math.Abs(got[0] - ref[0]); d >= 5e-2 {
		t.Errorf("zero-row model diverges by %g", d)
	}
}

func BenchmarkPredictBatchQ(b *testing.B) {
	m, X := quantFixture(b, 96, []int{16}, 64, 13)
	out := make([]float64, len(X))
	b.Run("f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.PredictBatch(X)
		}
	})
	for _, p := range []Precision{Float32, Int8} {
		b.Run(p.String(), func(b *testing.B) {
			m.PredictBatchQInto(X, p, out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatchQInto(X, p, out)
			}
		})
	}
}
