package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Serialization turns trained networks into deployable artifacts (the
// paper's §2.4 deployment stage pushes trained models behind serving infra;
// internal/fusion wraps these encoders into versioned artifact files). The
// wire forms carry an explicit version so a decoder can reject parameters it
// does not understand instead of silently misreading them, and they carry
// the flat parameter array verbatim, so a decoded model is bit-for-bit the
// encoded one: every prediction is exactly reproducible across processes.

// mlpWireV1 is version 1 of the MLP wire form.
type mlpWireV1 struct {
	Version int
	InDim   int
	Hidden  []int
	Params  []float64
	Workers int
}

const mlpWireVersion = 1

// GobEncode implements gob.GobEncoder.
func (m *MLP) GobEncode() ([]byte, error) {
	hidden := append([]int(nil), m.sizes[1:len(m.sizes)-1]...)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(mlpWireV1{
		Version: mlpWireVersion,
		InDim:   m.inDim,
		Hidden:  hidden,
		Params:  m.params,
		Workers: m.workers,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder: it rebuilds the layer layout from the
// encoded shape and restores the flat parameter array exactly.
func (m *MLP) GobDecode(data []byte) error {
	var w mlpWireV1
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("model: decode mlp: %w", err)
	}
	if w.Version != mlpWireVersion {
		return fmt.Errorf("model: mlp wire version %d, want %d", w.Version, mlpWireVersion)
	}
	decoded, err := New(w.InDim, w.Hidden, 0)
	if err != nil {
		return fmt.Errorf("model: decode mlp: %w", err)
	}
	if len(w.Params) != len(decoded.params) {
		return fmt.Errorf("model: mlp shape %dx%v implies %d params, payload has %d",
			w.InDim, w.Hidden, len(decoded.params), len(w.Params))
	}
	copy(decoded.params, w.Params)
	decoded.workers = w.Workers
	*m = *decoded
	return nil
}

// projWireV1 is version 1 of the Projection wire form.
type projWireV1 struct {
	Version int
	InDim   int
	W       []float64
	B       []float64
}

const projWireVersion = 1

// GobEncode implements gob.GobEncoder.
func (p *Projection) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(projWireV1{
		Version: projWireVersion,
		InDim:   p.inDim,
		W:       p.w,
		B:       p.b,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (p *Projection) GobDecode(data []byte) error {
	var w projWireV1
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("model: decode projection: %w", err)
	}
	if w.Version != projWireVersion {
		return fmt.Errorf("model: projection wire version %d, want %d", w.Version, projWireVersion)
	}
	if w.InDim <= 0 || len(w.B) == 0 || len(w.W) != w.InDim*len(w.B) {
		return fmt.Errorf("model: projection shape %d in, %d out, %d weights is inconsistent",
			w.InDim, len(w.B), len(w.W))
	}
	p.inDim = w.InDim
	p.w = w.W
	p.b = w.B
	return nil
}
