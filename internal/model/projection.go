package model

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"crossmodal/internal/trace"
)

// Projection is a learned linear map between activation spaces — DeViSE's
// projection layer P (paper §5, Figure 4). Weights are stored flat
// (row-major out×in) like the MLP engine's parameter arrays.
type Projection struct {
	w     []float64 // w[o*inDim+i]
	b     []float64
	inDim int
}

// FitProjection fits P minimizing mean squared error ||P(src) - dst||² by
// per-sample gradient descent. src rows map to dst rows.
//
// Each output row's parameters evolve independently of every other row's,
// so fitting shards the output rows into contiguous stripes processed by up
// to workers goroutines (0 means GOMAXPROCS), each replaying the same
// precomputed epoch orders with zero per-sample allocations. Results are
// bit-for-bit identical for any worker count.
func FitProjection(ctx context.Context, src, dst [][]float64, epochs int, lr float64, seed int64, workers int) (*Projection, error) {
	if len(src) == 0 || len(src) != len(dst) {
		return nil, fmt.Errorf("model: projection needs matched nonempty rows (%d vs %d)", len(src), len(dst))
	}
	_, span := trace.Start(ctx, "model.projection")
	defer span.End()
	span.SetInt("rows", int64(len(src)))
	inDim, outDim := len(src[0]), len(dst[0])
	if epochs <= 0 {
		epochs = 20
	}
	if lr <= 0 {
		lr = 0.05
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Projection{w: make([]float64, outDim*inDim), b: make([]float64, outDim), inDim: inDim}
	scale := math.Sqrt(1 / float64(inDim))
	for j := range p.w {
		p.w[j] = rng.NormFloat64() * scale
	}
	// Precompute the per-epoch sample orders once so every stripe replays
	// the identical sequence.
	order := make([]int, len(src))
	for i := range order {
		order[i] = i
	}
	orders := make([][]int, epochs)
	for e := range orders {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		orders[e] = append([]int(nil), order...)
	}
	fitStripe := func(lo, hi int) {
		for _, epochOrder := range orders {
			for _, idx := range epochOrder {
				x, y := src[idx], dst[idx]
				for o := lo; o < hi; o++ {
					row := p.w[o*inDim : (o+1)*inDim]
					pred := p.b[o]
					for i, w := range row {
						pred += w * x[i]
					}
					g := pred - y[o]
					p.b[o] -= lr * g
					for i := range row {
						row[i] -= lr * g * x[i]
					}
				}
			}
		}
	}
	nStripes := workers
	if nStripes <= 0 {
		nStripes = defaultWorkers()
	}
	if nStripes > outDim {
		nStripes = outDim
	}
	if nStripes <= 1 {
		fitStripe(0, outDim)
		return p, nil
	}
	var wg sync.WaitGroup
	for s := 0; s < nStripes; s++ {
		lo, hi := s*outDim/nStripes, (s+1)*outDim/nStripes
		wg.Add(1)
		go func() {
			defer wg.Done()
			fitStripe(lo, hi)
		}()
	}
	wg.Wait()
	return p, nil
}

// Apply maps one vector through the projection.
func (p *Projection) Apply(x []float64) []float64 {
	out := make([]float64, len(p.b))
	p.ApplyInto(x, out)
	return out
}

// ApplyInto maps x through the projection into out, which must have the
// projection's output width. It panics otherwise — a programming error.
func (p *Projection) ApplyInto(x, out []float64) {
	if len(out) != len(p.b) {
		panic(fmt.Sprintf("model: ApplyInto output width %d, want %d", len(out), len(p.b)))
	}
	for o := range out {
		row := p.w[o*p.inDim : (o+1)*p.inDim]
		v := p.b[o]
		for i, w := range row {
			v += w * x[i]
		}
		out[o] = v
	}
}
