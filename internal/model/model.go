// Package model implements the discriminative end models the paper's TFX
// pipelines train (§6.3): logistic regression and small fully-connected
// neural networks, trained with a noise-aware cross-entropy loss that
// accepts probabilistic labels from the weak-supervision step, plus the
// machinery the fusion architectures need (access to pre-prediction-layer
// activations, linear projections).
//
// Training is data-parallel and allocation-lean: every minibatch is split
// into a fixed number of gradient shards processed by up to Config.Workers
// goroutines, each accumulating into preallocated buffers (see train.go).
// Because the shard partition and the shard merge order are independent of
// the worker count, training is bit-for-bit deterministic for a given seed
// no matter how many workers run.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"crossmodal/internal/mapreduce"
)

// Config controls training.
type Config struct {
	// Hidden lists hidden-layer widths; empty trains logistic regression.
	Hidden []int
	// Epochs is the number of passes over the training data (default 8).
	Epochs int
	// BatchSize is the minibatch size (default 32).
	BatchSize int
	// LearningRate is Adam's step size (default 0.01).
	LearningRate float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
	// Seed drives initialization and shuffling.
	Seed int64
	// PositiveWeight scales the loss of positive-leaning targets to
	// counter class imbalance; <= 0 means 1 (unweighted).
	PositiveWeight float64
	// Workers shards each minibatch across goroutines; 0 or negative
	// means GOMAXPROCS, 1 is serial. Results are bit-for-bit identical
	// for any worker count (gradients merge in fixed shard order).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.PositiveWeight <= 0 {
		c.PositiveWeight = 1
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	return c
}

// MLP is a feed-forward binary classifier: zero or more ReLU hidden layers
// followed by a sigmoid output unit. With no hidden layers it is logistic
// regression.
//
// All parameters live in one contiguous []float64 backing array laid out
// layer by layer as [weights (out×in, row-major) | biases (out)], so the
// inner dot-product loops walk memory sequentially and optimizer updates
// are single flat sweeps. weights[l] and biases[l] are views into it.
type MLP struct {
	inDim   int
	sizes   []int       // layer widths: [inDim, hidden..., 1]
	params  []float64   // flat backing array for all weights and biases
	weights [][]float64 // weights[l]: flat out×in view, row-major
	biases  [][]float64 // biases[l]: view of length out
	wOff    []int       // offset of weights[l] within params
	bOff    []int       // offset of biases[l] within params
	workers int         // preferred batch-op worker count (0 = GOMAXPROCS)
	quant   *quantState // lazily built reduced-precision engines (quant.go)
}

// New initializes an untrained network for inDim inputs.
func New(inDim int, hidden []int, seed int64) (*MLP, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("model: input dimension must be positive, got %d", inDim)
	}
	for _, h := range hidden {
		if h <= 0 {
			return nil, fmt.Errorf("model: hidden width must be positive, got %d", h)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{inDim: inDim, quant: newQuantState()}
	m.sizes = append(append([]int{inDim}, hidden...), 1)
	total := 0
	for l := 0; l+1 < len(m.sizes); l++ {
		total += m.sizes[l]*m.sizes[l+1] + m.sizes[l+1]
	}
	m.params = make([]float64, total)
	off := 0
	for l := 0; l+1 < len(m.sizes); l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		m.wOff = append(m.wOff, off)
		W := m.params[off : off+in*out]
		off += in * out
		m.bOff = append(m.bOff, off)
		b := m.params[off : off+out]
		off += out
		scale := math.Sqrt(2 / float64(in))
		for j := range W {
			W[j] = rng.NormFloat64() * scale
		}
		m.weights = append(m.weights, W)
		m.biases = append(m.biases, b)
	}
	return m, nil
}

// InDim returns the expected input width.
func (m *MLP) InDim() int { return m.inDim }

// HiddenDim returns the width of the activation vector feeding the final
// prediction layer: the last hidden width, or the input width for logistic
// regression.
func (m *MLP) HiddenDim() int {
	if len(m.weights) == 1 {
		return m.inDim
	}
	return m.sizes[len(m.sizes)-2]
}

// Params returns a copy of all parameters in their contiguous storage order
// (per layer: weights row-major, then biases) — for checkpointing and for
// exact-equality comparisons in tests.
func (m *MLP) Params() []float64 {
	return append([]float64(nil), m.params...)
}

// defaultWorkers is the worker count a zero Config.Workers resolves to.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// resolveWorkers maps the configured worker count to an effective one.
func (m *MLP) resolveWorkers() int {
	if m.workers > 0 {
		return m.workers
	}
	return defaultWorkers()
}

// scratch holds one goroutine's preallocated forward/backward buffers: the
// per-layer activations and backprop deltas live in a single flat arena so a
// steady-state training step allocates nothing per sample.
type scratch struct {
	acts   [][]float64 // acts[0] aliases the input row; acts[l+1] is layer l's output
	deltas [][]float64 // deltas[l] is dL/dz at layer l's output
}

func (m *MLP) newScratch() *scratch {
	L := len(m.weights)
	s := &scratch{acts: make([][]float64, L+1), deltas: make([][]float64, L)}
	n := 0
	for l := 0; l < L; l++ {
		n += 2 * m.sizes[l+1]
	}
	arena := make([]float64, n)
	off := 0
	for l := 0; l < L; l++ {
		out := m.sizes[l+1]
		s.acts[l+1] = arena[off : off+out]
		off += out
		s.deltas[l] = arena[off : off+out]
		off += out
	}
	return s
}

// output returns the sigmoid output of the last forward pass.
func (s *scratch) output() float64 {
	return s.acts[len(s.acts)-1][0]
}

// forward computes all layer activations into s; s.acts[0] aliases x.
func (m *MLP) forward(x []float64, s *scratch) {
	s.acts[0] = x
	last := len(m.weights) - 1
	for l := range m.weights {
		in, out := s.acts[l], s.acts[l+1]
		W, bias := m.weights[l], m.biases[l]
		width := m.sizes[l]
		for o := range out {
			row := W[o*width : (o+1)*width]
			z := bias[o]
			for i, w := range row {
				z += w * in[i]
			}
			switch {
			case l == last:
				out[o] = sigmoid(z)
			case z > 0:
				out[o] = z
			default:
				out[o] = 0 // buffers are reused, so write the ReLU zero
			}
		}
	}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// PredictProba returns P(y = +1 | x). It panics if x has the wrong width —
// a programming error.
func (m *MLP) PredictProba(x []float64) float64 {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("model: input width %d, want %d", len(x), m.inDim))
	}
	s := m.newScratch()
	m.forward(x, s)
	return s.output()
}

// predictChunk is the batch size one PredictBatch work item scores with a
// shared scratch; it amortizes scratch setup without starving the workers.
const predictChunk = 64

// PredictBatch returns P(y = +1) for every row, sharding the batch across
// the model's configured workers.
func (m *MLP) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	workers := m.resolveWorkers()
	if workers <= 1 || len(X) <= predictChunk {
		s := m.newScratch()
		for i, x := range X {
			m.forward(x, s)
			out[i] = s.output()
		}
		return out
	}
	nChunks := (len(X) + predictChunk - 1) / predictChunk
	chunks := make([]int, nChunks)
	for c := range chunks {
		chunks[c] = c
	}
	// The mapper writes disjoint slices of out and never errors.
	_, _ = mapreduce.Map(nil, mapreduce.Config{Workers: workers}, chunks, func(c int) (struct{}, error) {
		lo := c * predictChunk
		hi := lo + predictChunk
		if hi > len(X) {
			hi = len(X)
		}
		s := m.newScratch()
		for i := lo; i < hi; i++ {
			m.forward(X[i], s)
			out[i] = s.output()
		}
		return struct{}{}, nil
	})
	return out
}

// HiddenActivation returns the activation vector feeding the final
// prediction layer (the "output prior to the final softmax" the DeViSE and
// intermediate-fusion architectures consume, paper §5). For logistic
// regression this is the input itself.
func (m *MLP) HiddenActivation(x []float64) []float64 {
	if len(m.weights) == 1 {
		return x
	}
	s := m.newScratch()
	m.forward(x, s)
	return s.acts[len(s.acts)-2]
}

// PredictFromHidden applies only the final prediction layer to a hidden
// activation vector — used at DeViSE inference, where the frozen old-
// modality head scores projected new-modality embeddings.
func (m *MLP) PredictFromHidden(h []float64) float64 {
	l := len(m.weights) - 1
	z := m.biases[l][0]
	for i, w := range m.weights[l][:m.sizes[l]] {
		z += w * h[i]
	}
	return sigmoid(z)
}
