// Package model implements the discriminative end models the paper's TFX
// pipelines train (§6.3): logistic regression and small fully-connected
// neural networks, trained with a noise-aware cross-entropy loss that
// accepts probabilistic labels from the weak-supervision step, plus the
// machinery the fusion architectures need (access to pre-prediction-layer
// activations, linear projections).
package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Config controls training.
type Config struct {
	// Hidden lists hidden-layer widths; empty trains logistic regression.
	Hidden []int
	// Epochs is the number of passes over the training data (default 8).
	Epochs int
	// BatchSize is the minibatch size (default 32).
	BatchSize int
	// LearningRate is Adam's step size (default 0.01).
	LearningRate float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
	// Seed drives initialization and shuffling.
	Seed int64
	// PositiveWeight scales the loss of positive-leaning targets to
	// counter class imbalance; <= 0 means 1 (unweighted).
	PositiveWeight float64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.PositiveWeight <= 0 {
		c.PositiveWeight = 1
	}
	return c
}

// MLP is a feed-forward binary classifier: zero or more ReLU hidden layers
// followed by a sigmoid output unit. With no hidden layers it is logistic
// regression.
type MLP struct {
	weights [][][]float64 // weights[l][out][in]
	biases  [][]float64   // biases[l][out]
	inDim   int
}

// New initializes an untrained network for inDim inputs.
func New(inDim int, hidden []int, seed int64) (*MLP, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("model: input dimension must be positive, got %d", inDim)
	}
	for _, h := range hidden {
		if h <= 0 {
			return nil, fmt.Errorf("model: hidden width must be positive, got %d", h)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{inDim: inDim}
	sizes := append(append([]int{inDim}, hidden...), 1)
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2 / float64(in))
		W := make([][]float64, out)
		for o := range W {
			W[o] = make([]float64, in)
			for i := range W[o] {
				W[o][i] = rng.NormFloat64() * scale
			}
		}
		m.weights = append(m.weights, W)
		m.biases = append(m.biases, make([]float64, out))
	}
	return m, nil
}

// InDim returns the expected input width.
func (m *MLP) InDim() int { return m.inDim }

// HiddenDim returns the width of the activation vector feeding the final
// prediction layer: the last hidden width, or the input width for logistic
// regression.
func (m *MLP) HiddenDim() int {
	if len(m.weights) == 1 {
		return m.inDim
	}
	return len(m.weights[len(m.weights)-2])
}

// forward computes all layer activations; acts[0] is the input, acts[last]
// the sigmoid output (length 1).
func (m *MLP) forward(x []float64) [][]float64 {
	acts := make([][]float64, len(m.weights)+1)
	acts[0] = x
	for l := range m.weights {
		in := acts[l]
		out := make([]float64, len(m.weights[l]))
		for o, row := range m.weights[l] {
			z := m.biases[l][o]
			for i, w := range row {
				z += w * in[i]
			}
			if l == len(m.weights)-1 {
				out[o] = sigmoid(z)
			} else if z > 0 {
				out[o] = z
			}
		}
		acts[l+1] = out
	}
	return acts
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// PredictProba returns P(y = +1 | x). It panics if x has the wrong width —
// a programming error.
func (m *MLP) PredictProba(x []float64) float64 {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("model: input width %d, want %d", len(x), m.inDim))
	}
	acts := m.forward(x)
	return acts[len(acts)-1][0]
}

// PredictBatch returns P(y = +1) for every row.
func (m *MLP) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.PredictProba(x)
	}
	return out
}

// HiddenActivation returns the activation vector feeding the final
// prediction layer (the "output prior to the final softmax" the DeViSE and
// intermediate-fusion architectures consume, paper §5). For logistic
// regression this is the input itself.
func (m *MLP) HiddenActivation(x []float64) []float64 {
	if len(m.weights) == 1 {
		return x
	}
	acts := m.forward(x)
	return acts[len(acts)-2]
}

// PredictFromHidden applies only the final prediction layer to a hidden
// activation vector — used at DeViSE inference, where the frozen old-
// modality head scores projected new-modality embeddings.
func (m *MLP) PredictFromHidden(h []float64) float64 {
	l := len(m.weights) - 1
	z := m.biases[l][0]
	for i, w := range m.weights[l][0] {
		z += w * h[i]
	}
	return sigmoid(z)
}

// Train fits the network on rows X with soft targets in [0,1] (probabilistic
// labels; hard labels are 0/1) and optional per-example weights (nil means
// uniform). Uses Adam with minibatches and the noise-aware cross-entropy
// whose gradient at the output is simply p - target.
func Train(X [][]float64, targets []float64, sampleWeights []float64, cfg Config) (*MLP, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("model: no training data")
	}
	if len(targets) != len(X) {
		return nil, fmt.Errorf("model: %d rows vs %d targets", len(X), len(targets))
	}
	if sampleWeights != nil && len(sampleWeights) != len(X) {
		return nil, fmt.Errorf("model: %d rows vs %d weights", len(X), len(sampleWeights))
	}
	for i, t := range targets {
		if t < 0 || t > 1 || math.IsNaN(t) {
			return nil, fmt.Errorf("model: target[%d] = %v outside [0,1]", i, t)
		}
	}
	cfg = cfg.withDefaults()
	m, err := New(len(X[0]), cfg.Hidden, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opt := newAdam(m, cfg.LearningRate)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			m.step(X, targets, sampleWeights, order[start:end], opt, cfg)
		}
	}
	return m, nil
}

// step accumulates gradients over one minibatch and applies an Adam update.
func (m *MLP) step(X [][]float64, targets, sampleWeights []float64, batch []int, opt *adam, cfg Config) {
	gradW, gradB := opt.zeroedGrads()
	var totalWeight float64
	for _, idx := range batch {
		x, target := X[idx], targets[idx]
		w := 1.0
		if sampleWeights != nil {
			w = sampleWeights[idx]
		}
		// Noise-aware class weighting: weight by the target's positive
		// mass rather than a hard label.
		w *= 1 + (cfg.PositiveWeight-1)*target
		if w == 0 {
			continue
		}
		totalWeight += w
		acts := m.forward(x)
		// Output delta: dL/dz = p - target for sigmoid cross-entropy.
		delta := []float64{(acts[len(acts)-1][0] - target) * w}
		for l := len(m.weights) - 1; l >= 0; l-- {
			in := acts[l]
			for o, d := range delta {
				gradB[l][o] += d
				row := gradW[l][o]
				for i, v := range in {
					row[i] += d * v
				}
			}
			if l == 0 {
				break
			}
			// Backpropagate through the ReLU layer below.
			prev := make([]float64, len(in))
			for i := range prev {
				if in[i] <= 0 {
					continue // ReLU gradient is 0
				}
				var s float64
				for o, d := range delta {
					s += d * m.weights[l][o][i]
				}
				prev[i] = s
			}
			delta = prev
		}
	}
	if totalWeight == 0 {
		return
	}
	opt.apply(m, gradW, gradB, totalWeight, cfg.L2)
}

// adam holds Adam optimizer state matching the network's parameter shapes.
type adam struct {
	lr         float64
	t          int
	mW, vW     [][][]float64
	mB, vB     [][]float64
	gW         [][][]float64
	gB         [][]float64
	beta1      float64
	beta2      float64
	eps        float64
	shapesFrom *MLP
}

func newAdam(m *MLP, lr float64) *adam {
	a := &adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, shapesFrom: m}
	a.mW, a.mB = cloneShape(m)
	a.vW, a.vB = cloneShape(m)
	a.gW, a.gB = cloneShape(m)
	return a
}

func cloneShape(m *MLP) ([][][]float64, [][]float64) {
	W := make([][][]float64, len(m.weights))
	B := make([][]float64, len(m.biases))
	for l := range m.weights {
		W[l] = make([][]float64, len(m.weights[l]))
		for o := range W[l] {
			W[l][o] = make([]float64, len(m.weights[l][o]))
		}
		B[l] = make([]float64, len(m.biases[l]))
	}
	return W, B
}

// zeroedGrads returns the optimizer's reusable gradient buffers, zeroed.
func (a *adam) zeroedGrads() ([][][]float64, [][]float64) {
	for l := range a.gW {
		for o := range a.gW[l] {
			row := a.gW[l][o]
			for i := range row {
				row[i] = 0
			}
		}
		for o := range a.gB[l] {
			a.gB[l][o] = 0
		}
	}
	return a.gW, a.gB
}

func (a *adam) apply(m *MLP, gradW [][][]float64, gradB [][]float64, totalWeight, l2 float64) {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for l := range m.weights {
		for o := range m.weights[l] {
			for i := range m.weights[l][o] {
				g := gradW[l][o][i]/totalWeight + l2*m.weights[l][o][i]
				a.mW[l][o][i] = a.beta1*a.mW[l][o][i] + (1-a.beta1)*g
				a.vW[l][o][i] = a.beta2*a.vW[l][o][i] + (1-a.beta2)*g*g
				m.weights[l][o][i] -= a.lr * (a.mW[l][o][i] / c1) / (math.Sqrt(a.vW[l][o][i]/c2) + a.eps)
			}
			g := gradB[l][o] / totalWeight
			a.mB[l][o] = a.beta1*a.mB[l][o] + (1-a.beta1)*g
			a.vB[l][o] = a.beta2*a.vB[l][o] + (1-a.beta2)*g*g
			m.biases[l][o] -= a.lr * (a.mB[l][o] / c1) / (math.Sqrt(a.vB[l][o]/c2) + a.eps)
		}
	}
}

// Projection is a learned linear map between activation spaces — DeViSE's
// projection layer P (paper §5, Figure 4).
type Projection struct {
	W [][]float64 // W[out][in]
	b []float64
}

// FitProjection fits P minimizing mean squared error ||P(src) - dst||² by
// gradient descent. src rows map to dst rows.
func FitProjection(src, dst [][]float64, epochs int, lr float64, seed int64) (*Projection, error) {
	if len(src) == 0 || len(src) != len(dst) {
		return nil, fmt.Errorf("model: projection needs matched nonempty rows (%d vs %d)", len(src), len(dst))
	}
	inDim, outDim := len(src[0]), len(dst[0])
	if epochs <= 0 {
		epochs = 20
	}
	if lr <= 0 {
		lr = 0.05
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Projection{W: make([][]float64, outDim), b: make([]float64, outDim)}
	scale := math.Sqrt(1 / float64(inDim))
	for o := range p.W {
		p.W[o] = make([]float64, inDim)
		for i := range p.W[o] {
			p.W[o][i] = rng.NormFloat64() * scale
		}
	}
	order := make([]int, len(src))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, idx := range order {
			x, y := src[idx], dst[idx]
			for o := range p.W {
				pred := p.b[o]
				for i, w := range p.W[o] {
					pred += w * x[i]
				}
				g := pred - y[o]
				p.b[o] -= lr * g
				for i := range p.W[o] {
					p.W[o][i] -= lr * g * x[i]
				}
			}
		}
	}
	return p, nil
}

// Apply maps one vector through the projection.
func (p *Projection) Apply(x []float64) []float64 {
	out := make([]float64, len(p.W))
	for o := range p.W {
		v := p.b[o]
		for i, w := range p.W[o] {
			v += w * x[i]
		}
		out[o] = v
	}
	return out
}
