package model

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"crossmodal/internal/trace"
)

// numGradShards is the fixed number of per-minibatch gradient accumulators.
// It is deliberately independent of Config.Workers: each shard covers a
// fixed contiguous slice of the batch and the shards merge in index order,
// so the float additions performed are the same whether one goroutine
// processes all shards or eight process one each — bit-for-bit determinism
// for a given seed at any worker count. It also caps per-step parallelism.
const numGradShards = 8

// gradShard is one accumulator: a gradient buffer with the same flat layout
// as MLP.params, the shard's sample-weight subtotal, and a scratch arena for
// forward/backward passes. All of it is allocated once per training run.
type gradShard struct {
	grad  []float64
	total float64
	fresh bool // true until the first sample writes the buffer this step
	scr   *scratch
}

// trainer is the data-parallel minibatch engine. With more than one worker
// it keeps a persistent goroutine pool fed by an unbuffered shard-index
// channel, so a steady-state step performs zero heap allocations.
type trainer struct {
	m      *MLP
	opt    *adam
	cfg    Config
	shards [numGradShards]gradShard

	nWorkers int
	work     chan int                 // shard indices for the in-flight step
	wg       sync.WaitGroup           // completion of the in-flight step
	active   [numGradShards][]float64 // backing array for the per-step active-shard list

	// In-flight minibatch, published to workers via the work channel.
	X             [][]float64
	targets       []float64
	sampleWeights []float64
	batch         []int
}

func newTrainer(m *MLP, cfg Config) *trainer {
	t := &trainer{m: m, opt: newAdam(m, cfg.LearningRate), cfg: cfg}
	for s := range t.shards {
		t.shards[s].grad = make([]float64, len(m.params))
		t.shards[s].scr = m.newScratch()
	}
	t.nWorkers = cfg.Workers
	if t.nWorkers <= 0 {
		t.nWorkers = m.resolveWorkers()
	}
	if t.nWorkers > numGradShards {
		t.nWorkers = numGradShards
	}
	if t.nWorkers > 1 {
		t.work = make(chan int)
		for w := 0; w < t.nWorkers; w++ {
			go func() {
				for s := range t.work {
					t.runShard(s)
					t.wg.Done()
				}
			}()
		}
	}
	return t
}

// close releases the worker pool.
func (t *trainer) close() {
	if t.work != nil {
		close(t.work)
		t.work = nil
	}
}

// step accumulates gradients over one minibatch, shard-parallel, then merges
// them in fixed shard order and applies a single Adam update.
func (t *trainer) step(X [][]float64, targets, sampleWeights []float64, batch []int) {
	t.X, t.targets, t.sampleWeights, t.batch = X, targets, sampleWeights, batch
	if t.work == nil {
		for s := range t.shards {
			t.runShard(s)
		}
	} else {
		t.wg.Add(numGradShards)
		for s := 0; s < numGradShards; s++ {
			t.work <- s
		}
		t.wg.Wait()
	}

	// Gather the contributing shards in shard order (fixed regardless of
	// which worker ran what); the optimizer sums them on the fly, so the
	// merged gradient is never materialized.
	bufs := t.active[:0]
	var totalWeight float64
	for s := range t.shards {
		sh := &t.shards[s]
		if sh.total == 0 {
			continue // no contributing samples this step
		}
		totalWeight += sh.total
		bufs = append(bufs, sh.grad)
	}
	if totalWeight == 0 {
		return
	}
	t.opt.apply(t.m, bufs, totalWeight, t.cfg.L2)
}

// runShard zeroes shard s and accumulates its slice of the current batch:
// samples [s·n/S, (s+1)·n/S) for batch length n and S shards.
func (t *trainer) runShard(s int) {
	sh := &t.shards[s]
	sh.total = 0
	sh.fresh = true // the first sample overwrites instead of zero+add
	n := len(t.batch)
	lo, hi := s*n/numGradShards, (s+1)*n/numGradShards
	if lo == hi {
		return // empty shard; merge skips it via total == 0
	}
	for _, idx := range t.batch[lo:hi] {
		x, target := t.X[idx], t.targets[idx]
		w := 1.0
		if t.sampleWeights != nil {
			w = t.sampleWeights[idx]
		}
		// Noise-aware class weighting: weight by the target's positive
		// mass rather than a hard label.
		w *= 1 + (t.cfg.PositiveWeight-1)*target
		if w == 0 {
			continue
		}
		sh.total += w
		t.accumulate(sh, x, target, w)
		sh.fresh = false
	}
}

// accumulate backpropagates one sample into the shard's gradient buffer.
// All intermediates live in the shard's scratch arena — no allocations. A
// sample's gradient is dense over every parameter, so the shard's first
// sample overwrites the buffer (sparing a zeroing pass) and later ones add.
func (t *trainer) accumulate(sh *gradShard, x []float64, target, w float64) {
	m := t.m
	s := sh.scr
	m.forward(x, s)
	L := len(m.weights)
	// Output delta: dL/dz = p - target for sigmoid cross-entropy.
	s.deltas[L-1][0] = (s.output() - target) * w
	for l := L - 1; l >= 0; l-- {
		in := s.acts[l]
		delta := s.deltas[l]
		width := m.sizes[l]
		gW := sh.grad[m.wOff[l] : m.wOff[l]+width*len(delta)]
		gB := sh.grad[m.bOff[l] : m.bOff[l]+len(delta)]
		if sh.fresh {
			for o, d := range delta {
				gB[o] = d
				row := gW[o*width : (o+1)*width]
				for i, v := range in {
					row[i] = d * v
				}
			}
		} else {
			for o, d := range delta {
				gB[o] += d
				row := gW[o*width : (o+1)*width]
				for i, v := range in {
					row[i] += d * v
				}
			}
		}
		if l == 0 {
			break
		}
		// Backpropagate through the ReLU layer below.
		W := m.weights[l]
		prev := s.deltas[l-1]
		for i := range prev {
			if in[i] <= 0 {
				prev[i] = 0 // ReLU gradient is 0; buffer is reused
				continue
			}
			var sum float64
			for o, d := range delta {
				sum += d * W[o*width+i]
			}
			prev[i] = sum
		}
	}
}

// Train fits the network on rows X with soft targets in [0,1] (probabilistic
// labels; hard labels are 0/1) and optional per-example weights (nil means
// uniform). Uses Adam with minibatches and the noise-aware cross-entropy
// whose gradient at the output is simply p - target. Minibatches are
// gradient-sharded across cfg.Workers goroutines; the result is identical
// for any worker count.
func Train(ctx context.Context, X [][]float64, targets []float64, sampleWeights []float64, cfg Config) (*MLP, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("model: no training data")
	}
	if len(targets) != len(X) {
		return nil, fmt.Errorf("model: %d rows vs %d targets", len(X), len(targets))
	}
	if sampleWeights != nil && len(sampleWeights) != len(X) {
		return nil, fmt.Errorf("model: %d rows vs %d weights", len(X), len(sampleWeights))
	}
	for i, t := range targets {
		if t < 0 || t > 1 || math.IsNaN(t) {
			return nil, fmt.Errorf("model: target[%d] = %v outside [0,1]", i, t)
		}
	}
	cfg = cfg.withDefaults()
	ctx, span := trace.Start(ctx, "model.train")
	defer span.End()
	span.SetInt("rows", int64(len(X)))
	span.SetInt("features", int64(len(X[0])))
	span.SetInt("epochs", int64(cfg.Epochs))
	m, err := New(len(X[0]), cfg.Hidden, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m.workers = cfg.Workers
	t := newTrainer(m, cfg)
	defer t.close()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		_, epSpan := trace.Start(ctx, "model.epoch")
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			t.step(X, targets, sampleWeights, order[start:end])
			epSpan.Add("batches", 1)
		}
		epSpan.End()
	}
	return m, nil
}

// adam holds Adam optimizer state in flat arrays mirroring MLP.params.
type adam struct {
	lr    float64
	t     int
	m, v  []float64 // first and second moments
	beta1 float64
	beta2 float64
	eps   float64
}

func newAdam(net *MLP, lr float64) *adam {
	n := len(net.params)
	return &adam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: make([]float64, n), v: make([]float64, n),
	}
}

// apply performs one Adam update from the shard gradient buffers, summing
// them per parameter in shard order as it sweeps. Weight spans get L2 decay;
// bias spans do not.
func (a *adam) apply(net *MLP, bufs [][]float64, totalWeight, l2 float64) {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for l := range net.weights {
		a.span(net, bufs, totalWeight, net.wOff[l], net.wOff[l]+len(net.weights[l]), l2, c1, c2)
		a.span(net, bufs, totalWeight, net.bOff[l], net.bOff[l]+len(net.biases[l]), 0, c1, c2)
	}
}

// span updates params[lo:hi]; l2 == 0 skips the decay term entirely (biases)
// so the math matches the unregularized bias update exactly.
func (a *adam) span(net *MLP, bufs [][]float64, totalWeight float64, lo, hi int, l2, c1, c2 float64) {
	p := net.params
	head, rest := bufs[0], bufs[1:]
	for j := lo; j < hi; j++ {
		g := head[j]
		for _, b := range rest {
			g += b[j]
		}
		g /= totalWeight
		if l2 != 0 {
			g += l2 * p[j]
		}
		a.m[j] = a.beta1*a.m[j] + (1-a.beta1)*g
		a.v[j] = a.beta2*a.v[j] + (1-a.beta2)*g*g
		p[j] -= a.lr * (a.m[j] / c1) / (math.Sqrt(a.v[j]/c2) + a.eps)
	}
}
