//go:build race

package model

// raceEnabled gates allocation-count assertions: the race runtime
// instruments sync.Pool with extra allocations absent in production builds.
const raceEnabled = true
