package model

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"crossmodal/internal/metrics"
)

var ctxbg = context.Background()

// linearData generates a linearly separable-ish problem with label noise.
func linearData(n, dim int, noise float64, seed int64) ([][]float64, []float64, []int8) {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	X := make([][]float64, n)
	targets := make([]float64, n)
	labels := make([]int8, n)
	for i := range X {
		x := make([]float64, dim)
		var z float64
		for j := range x {
			x[j] = rng.NormFloat64()
			z += w[j] * x[j]
		}
		X[i] = x
		y := z+rng.NormFloat64()*noise > 0
		if y {
			targets[i], labels[i] = 1, 1
		} else {
			targets[i], labels[i] = 0, -1
		}
	}
	return X, targets, labels
}

// xorData generates the classic non-linear XOR problem.
func xorData(n int, seed int64) ([][]float64, []float64, []int8) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	targets := make([]float64, n)
	labels := make([]int8, n)
	for i := range X {
		a, b := rng.Float64() > 0.5, rng.Float64() > 0.5
		x := []float64{-1, -1}
		if a {
			x[0] = 1
		}
		if b {
			x[1] = 1
		}
		x[0] += rng.NormFloat64() * 0.2
		x[1] += rng.NormFloat64() * 0.2
		X[i] = x
		if a != b {
			targets[i], labels[i] = 1, 1
		} else {
			targets[i], labels[i] = 0, -1
		}
	}
	return X, targets, labels
}

func aucOf(t *testing.T, m *MLP, X [][]float64, labels []int8) float64 {
	t.Helper()
	return metrics.AUPRC(labels, m.PredictBatch(X))
}

func TestLogisticRegressionLearnsLinear(t *testing.T) {
	X, targets, labels := linearData(2000, 8, 0.2, 1)
	m, err := Train(ctxbg, X, targets, nil, Config{Seed: 2, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if auc := aucOf(t, m, X, labels); auc < 0.93 {
		t.Errorf("LR train AUPRC = %.3f, want > 0.93", auc)
	}
	Xt, _, lt := linearData(1000, 8, 0.2, 99)
	if auc := aucOf(t, m, Xt, lt); auc < 0.5 {
		// Different seed draws different true weights, so only check
		// it is not degenerate on its own distribution shape.
		t.Logf("held-out different-weights AUPRC = %.3f (informational)", auc)
	}
}

func TestMLPSolvesXOR(t *testing.T) {
	X, targets, labels := xorData(1500, 3)
	lr, err := Train(ctxbg, X, targets, nil, Config{Seed: 4, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	mlp, err := Train(ctxbg, X, targets, nil, Config{Hidden: []int{16}, Seed: 4, Epochs: 30, LearningRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	lrAUC, mlpAUC := aucOf(t, lr, X, labels), aucOf(t, mlp, X, labels)
	if mlpAUC < 0.95 {
		t.Errorf("MLP XOR AUPRC = %.3f, want > 0.95", mlpAUC)
	}
	if mlpAUC <= lrAUC {
		t.Errorf("MLP (%.3f) should beat LR (%.3f) on XOR", mlpAUC, lrAUC)
	}
}

func TestTrainSoftTargets(t *testing.T) {
	// Probabilistic labels: target 0.8 vs 0.2 along one feature.
	X := [][]float64{{1}, {1}, {-1}, {-1}}
	targets := []float64{0.8, 0.8, 0.2, 0.2}
	m, err := Train(ctxbg, X, targets, nil, Config{Seed: 1, Epochs: 800, BatchSize: 4, LearningRate: 0.05, L2: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	pPos := m.PredictProba([]float64{1})
	pNeg := m.PredictProba([]float64{-1})
	if math.Abs(pPos-0.8) > 0.1 || math.Abs(pNeg-0.2) > 0.1 {
		t.Errorf("soft-target calibration: p(+)=%.3f (want ≈0.8), p(-)=%.3f (want ≈0.2)", pPos, pNeg)
	}
}

func TestTrainSampleWeights(t *testing.T) {
	// Conflicting examples at the same x; weights should decide.
	X := [][]float64{{1}, {1}}
	targets := []float64{1, 0}
	m, err := Train(ctxbg, X, targets, []float64{10, 0.1}, Config{Seed: 1, Epochs: 200, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.PredictProba([]float64{1}); p < 0.7 {
		t.Errorf("weighted training ignored weights: p = %.3f", p)
	}
}

func TestTrainValidation(t *testing.T) {
	X := [][]float64{{1}}
	cases := []struct {
		name    string
		X       [][]float64
		targets []float64
		weights []float64
	}{
		{"empty", nil, nil, nil},
		{"target mismatch", X, []float64{1, 0}, nil},
		{"weight mismatch", X, []float64{1}, []float64{1, 2}},
		{"target out of range", X, []float64{1.5}, nil},
		{"target NaN", X, []float64{math.NaN()}, nil},
	}
	for _, tc := range cases {
		if _, err := Train(ctxbg, tc.X, tc.targets, tc.weights, Config{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := New(0, nil, 1); err == nil {
		t.Error("New(0 dims) should fail")
	}
	if _, err := New(3, []int{0}, 1); err == nil {
		t.Error("New with zero hidden width should fail")
	}
}

func TestPredictProbaPanicsOnWidth(t *testing.T) {
	m, _ := New(3, nil, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input width")
		}
	}()
	m.PredictProba([]float64{1})
}

func TestHiddenActivation(t *testing.T) {
	lr, _ := New(4, nil, 1)
	x := []float64{1, 2, 3, 4}
	h := lr.HiddenActivation(x)
	if len(h) != 4 {
		t.Fatalf("LR hidden dim = %d, want input dim 4", len(h))
	}
	if lr.HiddenDim() != 4 {
		t.Errorf("HiddenDim = %d", lr.HiddenDim())
	}
	mlp, _ := New(4, []int{7}, 1)
	h = mlp.HiddenActivation(x)
	if len(h) != 7 || mlp.HiddenDim() != 7 {
		t.Fatalf("MLP hidden dim = %d/%d, want 7", len(h), mlp.HiddenDim())
	}
	// PredictFromHidden(HiddenActivation(x)) must equal PredictProba(x).
	if got, want := mlp.PredictFromHidden(h), mlp.PredictProba(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictFromHidden = %v, PredictProba = %v", got, want)
	}
}

func TestTrainDeterministic(t *testing.T) {
	X, targets, _ := linearData(500, 4, 0.3, 7)
	a, _ := Train(ctxbg, X, targets, nil, Config{Seed: 11, Epochs: 3})
	b, _ := Train(ctxbg, X, targets, nil, Config{Seed: 11, Epochs: 3})
	for i := 0; i < 10; i++ {
		if a.PredictProba(X[i]) != b.PredictProba(X[i]) {
			t.Fatal("training not deterministic for equal seeds")
		}
	}
}

func TestPositiveWeightShiftsScores(t *testing.T) {
	// Imbalanced data: upweighting positives should raise positive-class
	// scores.
	X, targets, _ := linearData(2000, 4, 0.5, 13)
	// Make it imbalanced by flipping most positives to negatives.
	rng := rand.New(rand.NewSource(5))
	for i := range targets {
		if targets[i] == 1 && rng.Float64() < 0.8 {
			targets[i] = 0
		}
	}
	plain, _ := Train(ctxbg, X, targets, nil, Config{Seed: 3, Epochs: 5})
	boosted, _ := Train(ctxbg, X, targets, nil, Config{Seed: 3, Epochs: 5, PositiveWeight: 8})
	var meanPlain, meanBoost float64
	for i := range X {
		meanPlain += plain.PredictProba(X[i])
		meanBoost += boosted.PredictProba(X[i])
	}
	if meanBoost <= meanPlain {
		t.Errorf("PositiveWeight did not raise mean score: %.4f vs %.4f",
			meanBoost/float64(len(X)), meanPlain/float64(len(X)))
	}
}

func TestFitProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// dst = A·src + c, recoverable exactly.
	A := [][]float64{{1, -2}, {0.5, 3}}
	c := []float64{0.3, -0.7}
	var src, dst [][]float64
	for i := 0; i < 400; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := []float64{
			A[0][0]*x[0] + A[0][1]*x[1] + c[0],
			A[1][0]*x[0] + A[1][1]*x[1] + c[1],
		}
		src = append(src, x)
		dst = append(dst, y)
	}
	p, err := FitProjection(ctxbg, src, dst, 40, 0.05, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range src {
		got := p.Apply(src[i])
		for j := range got {
			d := got[j] - dst[i][j]
			mse += d * d
		}
	}
	mse /= float64(len(src))
	if mse > 0.01 {
		t.Errorf("projection MSE = %.5f, want < 0.01", mse)
	}
	if _, err := FitProjection(ctxbg, nil, nil, 1, 1, 1, 1); err == nil {
		t.Error("expected error for empty projection data")
	}
}
