package model

import (
	"fmt"
	"runtime"
	"testing"
)

// benchTrainData sizes the training benchmarks like the experiment suite's
// end models: a few thousand rows of a few-hundred-wide dense feature space.
func benchTrainData(n, dim int) ([][]float64, []float64) {
	X, targets, _ := linearData(n, dim, 0.2, 7)
	return X, targets
}

func benchmarkTrain(b *testing.B, hidden []int, workers int) {
	X, targets := benchTrainData(2000, 128)
	cfg := Config{Hidden: hidden, Epochs: 3, LearningRate: 0.02, Seed: 11, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ctxbg, X, targets, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelTrain(b *testing.B) {
	for _, tc := range []struct {
		name   string
		hidden []int
	}{
		{"lr", nil},
		{"mlp32", []int{32}},
	} {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				benchmarkTrain(b, tc.hidden, workers)
			})
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	X, targets := benchTrainData(4000, 128)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m, err := Train(ctxbg, X[:200], targets[:200], nil,
				Config{Hidden: []int{32}, Epochs: 1, Seed: 11, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(X)
			}
		})
	}
}

// benchWorkerCounts returns the worker counts worth benchmarking on this
// host: serial, and (when the host has more than one CPU) 2 and GOMAXPROCS.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		if n > 2 {
			counts = append(counts, 2)
		}
		counts = append(counts, n)
	}
	return counts
}
