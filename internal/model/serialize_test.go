package model

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// trainToy fits a small network on a linearly separable toy problem.
func trainToy(t *testing.T, hidden []int, seed int64) (*MLP, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n, dim := 400, 6
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		if row[0]+0.5*row[1] > 0 {
			y[i] = 1
		}
	}
	m, err := Train(ctxbg, X, y, nil, Config{Hidden: hidden, Epochs: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m, X
}

func TestMLPGobRoundTripExact(t *testing.T) {
	for _, tc := range []struct {
		name   string
		hidden []int
	}{
		{"lr", nil},
		{"mlp16", []int{16}},
		{"mlp8x4", []int{8, 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, X := trainToy(t, tc.hidden, 11)
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(m); err != nil {
				t.Fatal(err)
			}
			var got MLP
			if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
				t.Fatal(err)
			}
			wantP, gotP := m.Params(), got.Params()
			if len(wantP) != len(gotP) {
				t.Fatalf("params %d vs %d", len(wantP), len(gotP))
			}
			for i := range wantP {
				if wantP[i] != gotP[i] {
					t.Fatalf("param %d: %v != %v", i, wantP[i], gotP[i])
				}
			}
			for i, x := range X {
				if w, g := m.PredictProba(x), got.PredictProba(x); w != g {
					t.Fatalf("row %d: prediction %v != %v", i, w, g)
				}
			}
			// The batch path must agree bit-for-bit too.
			wb, gb := m.PredictBatch(X), got.PredictBatch(X)
			for i := range wb {
				if wb[i] != gb[i] {
					t.Fatalf("batch row %d: %v != %v", i, wb[i], gb[i])
				}
			}
		})
	}
}

func TestMLPGobDecodeRejectsBadPayload(t *testing.T) {
	m, _ := trainToy(t, []int{8}, 5)
	raw, err := m.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var ok MLP
	if err := ok.GobDecode(raw); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	var bad MLP
	if err := bad.GobDecode([]byte("not gob at all")); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestProjectionGobRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([][]float64, 50)
	dst := make([][]float64, 50)
	for i := range src {
		src[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		dst[i] = []float64{src[i][0] + src[i][1], src[i][2] * 2}
	}
	p, err := FitProjection(ctxbg, src, dst, 10, 0.05, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	var got Projection
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	for i, x := range src {
		w, g := p.Apply(x), got.Apply(x)
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("row %d out %d: %v != %v", i, j, w[j], g[j])
			}
		}
	}
}
