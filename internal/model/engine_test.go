package model

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestTrainWorkerCountInvariance: the same seed must produce bit-identical
// weights and predictions for any worker count, because the gradient shard
// partition and merge order are fixed (see numGradShards).
func TestTrainWorkerCountInvariance(t *testing.T) {
	X, targets, _ := linearData(600, 16, 0.3, 21)
	sampleWeights := make([]float64, len(X))
	rng := rand.New(rand.NewSource(4))
	for i := range sampleWeights {
		sampleWeights[i] = 0.5 + rng.Float64()
	}
	cfg := Config{Hidden: []int{8}, Seed: 11, Epochs: 3, PositiveWeight: 2}
	cfg.Workers = 1
	serial, err := Train(ctxbg, X, targets, sampleWeights, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Params()
	for _, workers := range []int{2, runtime.GOMAXPROCS(0), numGradShards + 3} {
		cfg.Workers = workers
		m, err := Train(ctxbg, X, targets, sampleWeights, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Params()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("workers=%d: param[%d] = %v, serial = %v (not bit-identical)", workers, j, got[j], want[j])
			}
		}
		for i := 0; i < 25; i++ {
			if a, b := m.PredictProba(X[i]), serial.PredictProba(X[i]); a != b {
				t.Fatalf("workers=%d: PredictProba(X[%d]) = %v, serial = %v", workers, i, a, b)
			}
		}
	}
}

// TestPredictBatchMatchesPredictProba: the chunked parallel batch path must
// agree exactly with the per-sample path.
func TestPredictBatchMatchesPredictProba(t *testing.T) {
	X, targets, _ := linearData(300, 12, 0.2, 9)
	m, err := Train(ctxbg, X, targets, nil, Config{Hidden: []int{6}, Seed: 2, Epochs: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(X)
	for i, x := range X {
		if p := m.PredictProba(x); p != batch[i] {
			t.Fatalf("PredictBatch[%d] = %v, PredictProba = %v", i, batch[i], p)
		}
	}
}

// TestStepAllocationFree: once the trainer's buffers exist, a training step
// must not allocate — per-sample activations, deltas, and gradients all live
// in preallocated arenas, and the parallel path reuses a persistent pool.
func TestStepAllocationFree(t *testing.T) {
	X, targets, _ := linearData(256, 32, 0.2, 3)
	for _, workers := range []int{1, 4} {
		cfg := Config{Hidden: []int{8}, Workers: workers}.withDefaults()
		m, err := New(len(X[0]), cfg.Hidden, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		tr := newTrainer(m, cfg)
		batch := make([]int, cfg.BatchSize)
		for i := range batch {
			batch[i] = i
		}
		tr.step(X, targets, nil, batch) // warm up
		allocs := testing.AllocsPerRun(50, func() {
			tr.step(X, targets, nil, batch)
		})
		tr.close()
		if allocs != 0 {
			t.Errorf("workers=%d: steady-state step allocates %v objects, want 0", workers, allocs)
		}
	}
}

// TestFitProjectionWorkerCountInvariance: projection rows evolve
// independently, so any stripe partition must give bit-identical results.
func TestFitProjectionWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var src, dst [][]float64
	for i := 0; i < 200; i++ {
		x := make([]float64, 6)
		y := make([]float64, 5)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		for j := range y {
			y[j] = rng.NormFloat64()
		}
		src = append(src, x)
		dst = append(dst, y)
	}
	serial, err := FitProjection(ctxbg, src, dst, 10, 0.03, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		p, err := FitProjection(ctxbg, src, dst, 10, 0.03, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range serial.w {
			if p.w[j] != serial.w[j] {
				t.Fatalf("workers=%d: w[%d] = %v, serial = %v", workers, j, p.w[j], serial.w[j])
			}
		}
		for j := range serial.b {
			if p.b[j] != serial.b[j] {
				t.Fatalf("workers=%d: b[%d] = %v, serial = %v", workers, j, p.b[j], serial.b[j])
			}
		}
	}
}

// TestApplyInto: the in-place projection application must match Apply.
func TestApplyInto(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}, {-1, 0.5}}
	dst := [][]float64{{0.5, 1, 2}, {1, 0, -1}, {2, 2, 2}}
	p, err := FitProjection(ctxbg, src, dst, 5, 0.05, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	for _, x := range src {
		p.ApplyInto(x, out)
		want := p.Apply(x)
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("ApplyInto[%d] = %v, Apply = %v", j, out[j], want[j])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong ApplyInto width")
		}
	}()
	p.ApplyInto(src[0], make([]float64, 2))
}
