package model

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Quantized inference: the serving hot path runs the forward pass in
// reduced precision over contiguous per-layer weight slabs instead of the
// float64 reference path. Weights are converted once, lazily, on first use
// (float32 copies, or int8 with per-output-row symmetric scales and
// float32 accumulation); the batch is processed in row blocks sized so one
// weight slab and one input block stay cache-resident together. Training,
// checkpointing, and the golden pipeline keep the float64 path — its
// bit-for-bit reproducibility is load-bearing there — while serving trades
// ~1e-7 (float32) or bounded ~1e-2 (int8) score divergence for throughput.

// Precision selects the arithmetic of the quantized forward pass.
type Precision int

const (
	// Float64 is the reference path (PredictBatch) — exact, and the only
	// precision training and the golden pipeline ever see.
	Float64 Precision = iota
	// Float32 runs blocked float32 GEMM over float32 weight slabs.
	Float32
	// Int8 stores weights as int8 with one symmetric scale per output row
	// and accumulates in float32.
	Int8
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "f64"
	case Float32:
		return "f32"
	case Int8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision maps the CLI/wire names to precisions.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "off":
		return Float64, nil
	case "f32", "float32":
		return Float32, nil
	case "int8":
		return Int8, nil
	default:
		return 0, fmt.Errorf("model: unknown precision %q (want f64, f32, or int8)", s)
	}
}

// Valid reports whether p is a known precision.
func (p Precision) Valid() bool { return p >= Float64 && p <= Int8 }

// Tolerance is the precision's divergence contract against the float64
// reference, the bound both the property tests and the serving registry's
// canary gate enforce: |quantized − float64| stays within tol, and the
// decision at 0.5 matches wherever the reference score has at least margin
// distance from 0.5 (margin 0 means decisions must match unconditionally).
func (p Precision) Tolerance() (tol, margin float64) {
	switch p {
	case Float32:
		return 1e-3, 0
	case Int8:
		return 5e-2, 5e-2
	default:
		return 0, 0
	}
}

// qBlockRows is the batch-block height: one block of inputs
// (qBlockRows × inDim float32) plus one layer's weight slab fit in L1/L2
// together, so each weight row loaded streams across the whole block.
const qBlockRows = 32

// qlayer is one layer's inference-ready parameters: weights flattened
// out×in row-major (the transposed layout a row-major X·Wᵀ GEMM wants),
// biases in float32, and for int8 the per-output-row dequantization scale.
type qlayer struct {
	in, out int
	wf      []float32 // Float32 engines
	wi      []int8    // Int8 engines
	scale   []float32 // Int8: dequant scale per output row
	bias    []float32
}

// qscratch is one forward pass's reusable arena: the float32 input block
// and two ping-pong activation blocks.
type qscratch struct {
	xin  []float32 // qBlockRows × inDim
	a, b []float32 // qBlockRows × max layer width
}

// qengine is a built quantized network for one precision. Engines are
// immutable after construction and safe for concurrent use; scratch arenas
// cycle through a pool so steady-state scoring allocates nothing.
type qengine struct {
	prec    Precision
	inDim   int
	layers  []qlayer
	scratch sync.Pool
}

// quantState holds an MLP's lazily built engines behind a pointer, so
// copying the MLP value (GobDecode does) shares rather than tears it.
type quantState struct {
	mu  sync.Mutex
	eng [Int8 + 1]atomic.Pointer[qengine]
}

func newQuantState() *quantState { return &quantState{} }

// engine returns the model's engine for p, building it on first use. The
// engine snapshots the parameters at build time: models are trained first
// and served after (Train constructs a fresh MLP), so a snapshot taken at
// first predict is the final parameters.
func (m *MLP) engine(p Precision) *qengine {
	qs := m.quant
	if e := qs.eng[p].Load(); e != nil {
		return e
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if e := qs.eng[p].Load(); e != nil {
		return e
	}
	e := m.buildEngine(p)
	qs.eng[p].Store(e)
	return e
}

// buildEngine converts the float64 parameters into precision-p slabs.
func (m *MLP) buildEngine(p Precision) *qengine {
	e := &qengine{prec: p, inDim: m.inDim, layers: make([]qlayer, len(m.weights))}
	maxW := 0
	for l := range m.weights {
		in, out := m.sizes[l], m.sizes[l+1]
		if out > maxW {
			maxW = out
		}
		ql := qlayer{in: in, out: out, bias: make([]float32, out)}
		for j, bv := range m.biases[l] {
			ql.bias[j] = float32(bv)
		}
		W := m.weights[l]
		switch p {
		case Float32:
			ql.wf = make([]float32, len(W))
			for i, w := range W {
				ql.wf[i] = float32(w)
			}
		case Int8:
			ql.wi = make([]int8, len(W))
			ql.scale = make([]float32, out)
			for j := 0; j < out; j++ {
				row := W[j*in : (j+1)*in]
				maxAbs := 0.0
				for _, w := range row {
					if a := math.Abs(w); a > maxAbs {
						maxAbs = a
					}
				}
				if maxAbs == 0 {
					ql.scale[j] = 1 // all-zero row: any scale dequantizes zeros
					continue
				}
				s := maxAbs / 127
				ql.scale[j] = float32(s)
				for i, w := range row {
					ql.wi[j*in+i] = int8(math.RoundToEven(w / s))
				}
			}
		}
		e.layers[l] = ql
	}
	inDim := m.inDim
	e.scratch = sync.Pool{New: func() any {
		return &qscratch{
			xin: make([]float32, qBlockRows*inDim),
			a:   make([]float32, qBlockRows*maxW),
			b:   make([]float32, qBlockRows*maxW),
		}
	}}
	return e
}

// PredictBatchQ returns P(y = +1) for every row through the precision-p
// engine. Float64 falls back to the reference PredictBatch.
func (m *MLP) PredictBatchQ(X [][]float64, p Precision) []float64 {
	if p == Float64 {
		return m.PredictBatch(X)
	}
	out := make([]float64, len(X))
	m.PredictBatchQInto(X, p, out)
	return out
}

// PredictBatchQInto scores X into out (len(out) == len(X)) through the
// precision-p engine without allocating in steady state: the engine is
// built on first use and arenas are pooled. p must be Float32 or Int8 —
// callers needing the float64 path use PredictBatch. Panics on misuse,
// like PredictProba on a bad width.
func (m *MLP) PredictBatchQInto(X [][]float64, p Precision, out []float64) {
	if p != Float32 && p != Int8 {
		panic(fmt.Sprintf("model: PredictBatchQInto precision %v, want f32 or int8", p))
	}
	if len(out) != len(X) {
		panic(fmt.Sprintf("model: PredictBatchQInto out length %d, want %d", len(out), len(X)))
	}
	e := m.engine(p)
	s := e.scratch.Get().(*qscratch)
	for lo := 0; lo < len(X); lo += qBlockRows {
		hi := lo + qBlockRows
		if hi > len(X) {
			hi = len(X)
		}
		e.forwardBlock(X[lo:hi], s, out[lo:hi])
	}
	e.scratch.Put(s)
}

// forwardBlock runs one row block through every layer. The input rows are
// flattened into the float32 arena once; each layer then streams its
// weight slab across the whole block (weight row hot in cache while the
// block's rows consume it) into the ping-pong activation arenas.
func (e *qengine) forwardBlock(X [][]float64, s *qscratch, out []float64) {
	rows := len(X)
	for r, x := range X {
		if len(x) != e.inDim {
			panic(fmt.Sprintf("model: input width %d, want %d", len(x), e.inDim))
		}
		dst := s.xin[r*e.inDim : (r+1)*e.inDim]
		for i, v := range x {
			dst[i] = float32(v)
		}
	}
	cur := s.xin
	ping := true // next destination arena: a, then b, alternating
	last := len(e.layers) - 1
	for l := range e.layers {
		dst := s.b
		if ping {
			dst = s.a
		}
		e.layers[l].forward(cur, rows, dst, l == last)
		cur, ping = dst, !ping
	}
	// The final layer has width 1: cur holds one probability per row.
	for r := 0; r < rows; r++ {
		out[r] = float64(cur[r])
	}
}

// forward computes one layer over a row block: out[r*l.out+j] =
// act(Σ_i x[r*l.in+i]·W[j,i] + bias[j]), sigmoid on the final layer, ReLU
// elsewhere. The j-outer loop keeps one weight row resident while it is
// dotted against every row of the block — the cache-blocking this engine
// exists for.
func (l *qlayer) forward(x []float32, rows int, out []float32, final bool) {
	for j := 0; j < l.out; j++ {
		bias := l.bias[j]
		var wf []float32
		var wi []int8
		var scale float32
		if l.wi != nil {
			wi = l.wi[j*l.in : (j+1)*l.in]
			scale = l.scale[j]
		} else {
			wf = l.wf[j*l.in : (j+1)*l.in]
		}
		for r := 0; r < rows; r++ {
			xr := x[r*l.in : (r+1)*l.in]
			var z float32
			if wi != nil {
				z = dotI8(wi, xr)*scale + bias
			} else {
				z = dotF32(wf, xr) + bias
			}
			idx := r*l.out + j
			switch {
			case final:
				out[idx] = float32(sigmoid(float64(z)))
			case z > 0:
				out[idx] = z
			default:
				out[idx] = 0
			}
		}
	}
}

// dotF32 is a 4-way unrolled float32 dot product.
func dotF32(w, x []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(w) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += w[i] * x[i]
		s1 += w[i+1] * x[i+1]
		s2 += w[i+2] * x[i+2]
		s3 += w[i+3] * x[i+3]
	}
	s := s0 + s1 + s2 + s3
	for i := n; i < len(w); i++ {
		s += w[i] * x[i]
	}
	return s
}

// dotI8 dots an int8 weight row against a float32 input row, accumulating
// in float32; the caller applies the row's dequantization scale once.
func dotI8(w []int8, x []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(w) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += float32(w[i]) * x[i]
		s1 += float32(w[i+1]) * x[i+1]
		s2 += float32(w[i+2]) * x[i+2]
		s3 += float32(w[i+3]) * x[i+3]
	}
	s := s0 + s1 + s2 + s3
	for i := n; i < len(w); i++ {
		s += float32(w[i]) * x[i]
	}
	return s
}
