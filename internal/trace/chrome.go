package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format ("JSON Array
// Format" with complete events), as consumed by chrome://tracing and
// Perfetto. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeDoc is the emitted JSON object form of the trace_event format.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every recorded span as Chrome trace_event JSON.
// Still-open spans are closed at the current clock in the export only. The
// output loads in chrome://tracing and ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.snapshot()
	doc := chromeDoc{
		TraceEvents: []chromeEvent{
			{Name: "process_name", Ph: "M", Pid: 1,
				Args: map[string]interface{}{"name": "crossmodal"}},
		},
		DisplayTimeUnit: "ms",
	}
	for _, rec := range spans {
		ev := chromeEvent{
			Name: rec.name,
			Ph:   "X",
			Pid:  1,
			Tid:  int(rec.tid),
			Ts:   float64(rec.start.Nanoseconds()) / 1e3,
			Dur:  float64((rec.end - rec.start).Nanoseconds()) / 1e3,
		}
		if len(rec.attrs) > 0 {
			ev.Args = make(map[string]interface{}, len(rec.attrs))
			for _, a := range rec.attrs {
				ev.Args[a.Key] = a.Value()
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	// Process-wide counters export as one instant event so they survive the
	// round trip into trace viewers.
	if counters := t.Counters(); len(counters) > 0 {
		args := make(map[string]interface{}, len(counters))
		for k, v := range counters {
			args[k] = v
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_counters", Ph: "i", Pid: 1, Tid: 1, Ts: 0, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
