// Package trace is the pipeline's zero-dependency structured tracing and
// stage-metrics layer. A Tracer records nestable spans — one per pipeline
// stage, carrying typed attributes and monotonic counters — parented through
// context.Context, and exports them as a human-readable stage tree
// (WriteSummary) or Chrome trace_event JSON loadable in chrome://tracing and
// Perfetto (WriteChromeTrace). Spans also tag the running goroutine with
// runtime/pprof labels, so CPU profiles taken during a traced run segment by
// stage.
//
// The package-level Start/Count/Set functions route through a process-wide
// default tracer. When no tracer is installed (the default) they are true
// no-ops: no allocations, no RNG draws, no reordering of work — a disabled
// binary is bit-identical to an untraced one (asserted by the golden
// pipeline test and AllocsPerRun benchmarks).
package trace

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// current is the process-wide default tracer; nil means tracing is disabled
// and every package-level entry point is a no-op.
var current atomic.Pointer[Tracer]

// SetDefault installs t as the process-wide tracer. Pass nil to disable
// tracing.
func SetDefault(t *Tracer) {
	if t == nil {
		current.Store(nil)
		return
	}
	current.Store(t)
}

// Default returns the installed tracer, or nil when tracing is disabled.
func Default() *Tracer { return current.Load() }

// Enabled reports whether a process-wide tracer is installed.
func Enabled() bool { return current.Load() != nil }

// attrKind discriminates the typed attribute union.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
	attrCount // like attrInt, but Add-accumulated (monotonic counter)
)

// Attr is one typed span attribute.
type Attr struct {
	Key   string
	kind  attrKind
	i     int64
	f     float64
	s     string
	count bool
}

// Value returns the attribute's value as an interface for export.
func (a Attr) Value() interface{} {
	switch a.kind {
	case attrFloat:
		return a.f
	case attrStr:
		return a.s
	default:
		return a.i
	}
}

// IsCounter reports whether the attribute is a monotonic counter (set via
// Add) rather than a plain attribute.
func (a Attr) IsCounter() bool { return a.kind == attrCount }

// spanRecord is the tracer's storage for one span.
type spanRecord struct {
	name   string
	parent int32 // span id of the parent; 0 = root
	tid    int32 // export lane (chrome tid)
	start  time.Duration
	end    time.Duration // -1 while open
	attrs  []Attr
}

// Tracer records spans. Safe for concurrent use; create with New.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	spans []spanRecord
	// lanes tracks the latest end time per export lane so sequential root
	// spans share a row in the Chrome view while overlapping ones (e.g.
	// concurrent serving batches) get their own.
	lanes []time.Duration
	// counters accumulates process-wide counts reported outside any span
	// (e.g. shed requests between batches).
	counters map[string]int64
}

// New returns an empty tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), counters: make(map[string]int64)}
}

// ctxKey carries the current span id through a context.
type ctxKey struct{}

// Span is a handle on one started span. The zero Span is a valid no-op, so
// the disabled path allocates nothing.
type Span struct {
	t  *Tracer
	id int32
	// prev restores the goroutine's pprof labels at End.
	prev context.Context
}

// Start opens a span on the default tracer, nested under the span carried by
// ctx (if any). The returned context carries the new span and its pprof
// stage label; pass it to child stages. When tracing is disabled the call
// returns its arguments' no-op equivalents without allocating.
func Start(ctx context.Context, name string) (context.Context, Span) {
	t := current.Load()
	if t == nil {
		return ctx, Span{}
	}
	return t.Start(ctx, name)
}

// Start opens a span on this tracer; see the package-level Start.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(ctxKey{}).(int32)
	now := time.Since(t.epoch)
	t.mu.Lock()
	id := int32(len(t.spans) + 1)
	var tid int32
	if parent > 0 && int(parent) <= len(t.spans) {
		tid = t.spans[parent-1].tid
	} else {
		parent = 0
		tid = t.laneForLocked(now)
	}
	t.spans = append(t.spans, spanRecord{name: name, parent: parent, tid: tid, start: now, end: -1})
	t.mu.Unlock()

	prev := ctx
	ctx = context.WithValue(ctx, ctxKey{}, id)
	ctx = pprof.WithLabels(ctx, pprof.Labels("stage", name))
	pprof.SetGoroutineLabels(ctx)
	return ctx, Span{t: t, id: id, prev: prev}
}

// laneForLocked assigns a root span to the first free export lane.
func (t *Tracer) laneForLocked(start time.Duration) int32 {
	for i, end := range t.lanes {
		if end >= 0 && end <= start {
			t.lanes[i] = -1 // lane busy until the span ends
			return int32(i + 1)
		}
	}
	t.lanes = append(t.lanes, -1)
	return int32(len(t.lanes))
}

// End closes the span and restores the goroutine's previous pprof labels.
// Ending the zero Span, or ending twice, is a no-op.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.epoch)
	s.t.mu.Lock()
	rec := &s.t.spans[s.id-1]
	if rec.end < 0 {
		rec.end = now
		if rec.parent == 0 && int(rec.tid) <= len(s.t.lanes) {
			s.t.lanes[rec.tid-1] = now
		}
	}
	s.t.mu.Unlock()
	if s.prev != nil {
		pprof.SetGoroutineLabels(s.prev)
	}
}

// setAttr inserts or replaces (or, for counters, accumulates into) the
// span's attribute named key.
func (s Span) setAttr(a Attr) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.id-1]
	for i := range rec.attrs {
		if rec.attrs[i].Key == a.Key {
			if a.kind == attrCount && rec.attrs[i].kind == attrCount {
				rec.attrs[i].i += a.i
			} else {
				rec.attrs[i] = a
			}
			s.t.mu.Unlock()
			return
		}
	}
	rec.attrs = append(rec.attrs, a)
	s.t.mu.Unlock()
}

// SetInt sets an integer attribute on the span.
func (s Span) SetInt(key string, v int64) { s.setAttr(Attr{Key: key, kind: attrInt, i: v}) }

// SetFloat sets a float attribute on the span.
func (s Span) SetFloat(key string, v float64) { s.setAttr(Attr{Key: key, kind: attrFloat, f: v}) }

// SetStr sets a string attribute on the span.
func (s Span) SetStr(key, v string) { s.setAttr(Attr{Key: key, kind: attrStr, s: v}) }

// Add accumulates a monotonic counter on the span (items in/out, edges,
// shed requests, ...). Counters with the same key sum across calls and are
// aggregated across same-named spans by WriteSummary.
func (s Span) Add(key string, delta int64) { s.setAttr(Attr{Key: key, kind: attrCount, i: delta}) }

// Count adds delta to the counter named key on the span carried by ctx, or
// to the tracer's process-wide counters when ctx carries no span. No-op
// (zero allocations) when tracing is disabled.
func Count(ctx context.Context, key string, delta int64) {
	t := current.Load()
	if t == nil {
		return
	}
	if ctx != nil {
		if id, ok := ctx.Value(ctxKey{}).(int32); ok {
			Span{t: t, id: id}.Add(key, delta)
			return
		}
	}
	t.mu.Lock()
	t.counters[key] += delta
	t.mu.Unlock()
}

// SetInt sets an integer attribute on the span carried by ctx; no-op when
// tracing is disabled or ctx carries no span.
func SetInt(ctx context.Context, key string, v int64) {
	t := current.Load()
	if t == nil || ctx == nil {
		return
	}
	if id, ok := ctx.Value(ctxKey{}).(int32); ok {
		Span{t: t, id: id}.SetInt(key, v)
	}
}

// Counters returns a copy of the tracer's process-wide (spanless) counters.
func (t *Tracer) Counters() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// snapshot copies the span table, closing still-open spans at the current
// clock so exports of a live tracer (e.g. a serving process) are valid.
func (t *Tracer) snapshot() []spanRecord {
	now := time.Since(t.epoch)
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]spanRecord, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if out[i].end < 0 {
			out[i].end = now
		}
		out[i].attrs = append([]Attr(nil), out[i].attrs...)
	}
	return out
}

// Len returns how many spans the tracer has recorded.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// SpanNames returns the distinct span names recorded so far, in first-seen
// order. Tests use it to assert stage coverage.
func (t *Tracer) SpanNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]bool, len(t.spans))
	var names []string
	for _, rec := range t.spans {
		if !seen[rec.name] {
			seen[rec.name] = true
			names = append(names, rec.name)
		}
	}
	return names
}
