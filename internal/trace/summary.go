package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// summaryNode aggregates same-named sibling spans into one stage-tree line:
// repeated stages (training epochs, serving batches) collapse to a count,
// a total duration, and summed counters.
type summaryNode struct {
	name     string
	count    int
	total    time.Duration
	firstIdx int // span table order of the first instance, for stable sorting
	attrs    []Attr
	children map[string]*summaryNode
}

func newSummaryNode(name string, idx int) *summaryNode {
	return &summaryNode{name: name, firstIdx: idx, children: make(map[string]*summaryNode)}
}

// merge folds one span instance's attributes in: counters sum, plain
// attributes keep the latest value.
func (n *summaryNode) merge(rec spanRecord) {
	n.count++
	n.total += rec.end - rec.start
	for _, a := range rec.attrs {
		found := false
		for i := range n.attrs {
			if n.attrs[i].Key == a.Key {
				if a.IsCounter() && n.attrs[i].IsCounter() {
					n.attrs[i].i += a.i
				} else {
					n.attrs[i] = a
				}
				found = true
				break
			}
		}
		if !found {
			n.attrs = append(n.attrs, a)
		}
	}
}

// WriteSummary renders the recorded spans as an indented stage tree:
//
//	pipeline.run                    2.41s
//	  featurize.text                0.52s   [points=2000]
//	  train                         0.61s
//	    train.epoch                 0.58s ×6  [batches=376]
//
// Same-named siblings aggregate into one line (×N). Process-wide counters
// recorded outside any span print at the end.
func (t *Tracer) WriteSummary(w io.Writer) error {
	spans := t.snapshot()
	root := newSummaryNode("", -1)
	nodeOf := make([]*summaryNode, len(spans)) // span id-1 → its aggregate node
	for i, rec := range spans {
		parent := root
		if rec.parent > 0 {
			parent = nodeOf[rec.parent-1]
		}
		child, ok := parent.children[rec.name]
		if !ok {
			child = newSummaryNode(rec.name, i)
			parent.children[rec.name] = child
		}
		child.merge(rec)
		nodeOf[i] = child
	}
	var total time.Duration
	for _, rec := range spans {
		if rec.parent == 0 && rec.end-rec.start > 0 {
			total += rec.end - rec.start
		}
	}
	if _, err := fmt.Fprintf(w, "TRACE SUMMARY (%d spans, root total %s)\n", len(spans), total.Round(time.Microsecond)); err != nil {
		return err
	}
	if err := writeNode(w, root, 0); err != nil {
		return err
	}
	counters := t.Counters()
	if len(counters) > 0 {
		keys := make([]string, 0, len(counters))
		for k := range counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if _, err := fmt.Fprintln(w, "process counters:"); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %-36s %d\n", k, counters[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeNode(w io.Writer, n *summaryNode, depth int) error {
	kids := make([]*summaryNode, 0, len(n.children))
	for _, c := range n.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(a, b int) bool { return kids[a].firstIdx < kids[b].firstIdx })
	for _, c := range kids {
		indent := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s%-*s %10s", indent, 34-len(indent), c.name, c.total.Round(time.Microsecond))
		if c.count > 1 {
			line += fmt.Sprintf(" ×%d", c.count)
		}
		if len(c.attrs) > 0 {
			parts := make([]string, len(c.attrs))
			for i, a := range c.attrs {
				parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value())
			}
			line += "  [" + strings.Join(parts, " ") + "]"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
