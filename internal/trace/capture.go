package trace

import (
	"fmt"
	"io"
	"os"
)

// Capture installs a fresh default tracer and returns a stop function that
// uninstalls it and writes the collected trace: Chrome trace_event JSON to
// chromePath (skipped when empty) and the stage-tree summary to summaryW
// (skipped when nil). It backs the -trace / -trace-summary flags of the
// command-line binaries; defer the stop in main.
//
// When both chromePath is empty and summaryW is nil no tracer is installed
// and the returned stop does nothing, so the binary keeps the zero-overhead
// disabled path.
func Capture(chromePath string, summaryW io.Writer) (stop func() error) {
	if chromePath == "" && summaryW == nil {
		return func() error { return nil }
	}
	t := New()
	SetDefault(t)
	return func() error {
		SetDefault(nil)
		if chromePath != "" {
			f, err := os.Create(chromePath)
			if err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			if err := t.WriteChromeTrace(f); err != nil {
				f.Close()
				return fmt.Errorf("trace: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		if summaryW != nil {
			if err := t.WriteSummary(summaryW); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		return nil
	}
}
