package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// install swaps in a fresh tracer for one test and removes it afterwards.
func install(t *testing.T) *Tracer {
	t.Helper()
	tr := New()
	SetDefault(tr)
	t.Cleanup(func() { SetDefault(nil) })
	return tr
}

func TestDisabledIsNoop(t *testing.T) {
	SetDefault(nil)
	ctx := context.Background()
	ctx2, sp := Start(ctx, "stage")
	if ctx2 != ctx {
		t.Error("disabled Start must return the context unchanged")
	}
	if sp != (Span{}) {
		t.Error("disabled Start must return the zero span")
	}
	sp.End()
	sp.Add("n", 1)
	sp.SetInt("k", 2)
	sp.SetFloat("f", 3)
	sp.SetStr("s", "x")
	Count(ctx, "c", 1)
	SetInt(ctx, "k", 1)
	if Enabled() {
		t.Error("Enabled() with no tracer installed")
	}
}

// TestDisabledHotPathAllocs is the tentpole guarantee: with tracing
// disabled, span start/end and counter bumps on the hot path allocate
// nothing.
func TestDisabledHotPathAllocs(t *testing.T) {
	SetDefault(nil)
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "hot")
		Count(c, "items", 1)
		sp.Add("n", 1)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled span start/end allocates %v per run, want 0", n)
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := install(t)
	ctx := context.Background()
	ctx, root := Start(ctx, "run")
	cctx, child := Start(ctx, "stage")
	child.SetInt("points", 42)
	child.Add("edges", 10)
	child.Add("edges", 5)
	Count(cctx, "edges", 3) // routes to the same span via ctx
	child.SetStr("kind", "early")
	child.SetFloat("rate", 0.5)
	child.End()
	root.End()

	spans := tr.snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].parent != 0 || spans[1].parent != 1 {
		t.Errorf("parents = %d,%d, want 0,1", spans[0].parent, spans[1].parent)
	}
	got := map[string]interface{}{}
	var counter int64
	for _, a := range spans[1].attrs {
		got[a.Key] = a.Value()
		if a.Key == "edges" {
			if !a.IsCounter() {
				t.Error("edges should be a counter")
			}
			counter = a.i
		}
	}
	if counter != 18 {
		t.Errorf("edges counter = %d, want 18 (10+5+3)", counter)
	}
	if got["points"] != int64(42) || got["kind"] != "early" || got["rate"] != 0.5 {
		t.Errorf("attrs = %v", got)
	}
	if spans[1].start < spans[0].start || spans[1].end > spans[0].end {
		t.Error("child span not contained in parent")
	}
}

func TestCountWithoutSpanGoesToProcessCounters(t *testing.T) {
	tr := install(t)
	Count(context.Background(), "shed", 2)
	Count(nil, "shed", 3)
	if got := tr.Counters()["shed"]; got != 5 {
		t.Errorf("process counter = %d, want 5", got)
	}
}

func TestEndTwiceKeepsFirstEnd(t *testing.T) {
	tr := install(t)
	_, sp := Start(context.Background(), "s")
	sp.End()
	first := tr.snapshot()[0].end
	time.Sleep(time.Millisecond)
	sp.End()
	if got := tr.snapshot()[0].end; got != first {
		t.Errorf("second End moved the end time: %v → %v", first, got)
	}
}

func TestRootLanes(t *testing.T) {
	tr := install(t)
	// Sequential roots share a lane; an overlapping root gets its own.
	_, a := Start(context.Background(), "a")
	a.End()
	_, b := Start(context.Background(), "b")
	_, c := Start(context.Background(), "c") // b still open → new lane
	b.End()
	c.End()
	spans := tr.snapshot()
	if spans[0].tid != spans[1].tid {
		t.Errorf("sequential roots on lanes %d vs %d, want shared", spans[0].tid, spans[1].tid)
	}
	if spans[1].tid == spans[2].tid {
		t.Error("overlapping roots share a lane")
	}
}

func TestChromeTraceSchema(t *testing.T) {
	tr := install(t)
	ctx, root := Start(context.Background(), "run")
	_, child := Start(ctx, "stage")
	child.Add("items", 7)
	child.End()
	root.End()
	Count(context.Background(), "orphan", 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The exported document must be loadable per the trace_event schema:
	// an object with a traceEvents array of events carrying name/ph/pid/tid
	// and, for complete events, numeric ts and dur.
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var complete, meta, instant int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("event %q has negative ts/dur", ev.Name)
			}
			if ev.Pid != 1 || ev.Tid < 1 {
				t.Errorf("event %q has bad pid/tid %d/%d", ev.Name, ev.Pid, ev.Tid)
			}
		case "M":
			meta++
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 2 || meta != 1 || instant != 1 {
		t.Errorf("events: %d complete, %d meta, %d instant", complete, meta, instant)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "stage" && ev.Args["items"] != float64(7) {
			t.Errorf("stage args = %v", ev.Args)
		}
	}
}

func TestSummaryAggregatesRepeatedStages(t *testing.T) {
	tr := install(t)
	ctx, run := Start(context.Background(), "run")
	for i := 0; i < 3; i++ {
		_, ep := Start(ctx, "epoch")
		ep.Add("batches", 4)
		ep.End()
	}
	run.End()
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "run") || !strings.Contains(out, "epoch") {
		t.Fatalf("summary missing stages:\n%s", out)
	}
	if !strings.Contains(out, "×3") {
		t.Errorf("summary should aggregate 3 epochs into ×3:\n%s", out)
	}
	if !strings.Contains(out, "batches=12") {
		t.Errorf("summary should sum counters across instances (want batches=12):\n%s", out)
	}
	if strings.Index(out, "run") > strings.Index(out, "epoch") {
		t.Errorf("parent should print before child:\n%s", out)
	}
}

func TestSpanNamesAndLen(t *testing.T) {
	tr := install(t)
	ctx, a := Start(context.Background(), "a")
	_, b := Start(ctx, "b")
	b.End()
	_, b2 := Start(ctx, "b")
	b2.End()
	a.End()
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	names := tr.SpanNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("SpanNames = %v", names)
	}
}

// TestConcurrentSpans drives many goroutines through Start/End/Count; run
// with -race (make race covers this package).
func TestConcurrentSpans(t *testing.T) {
	tr := install(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, sp := Start(context.Background(), "batch")
				Count(ctx, "items", 1)
				_, inner := Start(ctx, "featurize")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*50*2 {
		t.Errorf("Len = %d, want %d", tr.Len(), 8*50*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureWritesChromeAndSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	var summary bytes.Buffer
	stop := Capture(path, &summary)
	if !Enabled() {
		t.Fatal("Capture should install a tracer")
	}
	ctx, sp := Start(context.Background(), "stage")
	Count(ctx, "items", 3)
	sp.End()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("stop should uninstall the tracer")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("captured trace not valid JSON: %v", err)
	}
	if !strings.Contains(summary.String(), "stage") {
		t.Errorf("summary missing stage:\n%s", summary.String())
	}
}

func TestCaptureDisabledPath(t *testing.T) {
	stop := Capture("", nil)
	if Enabled() {
		t.Error("empty Capture must not install a tracer")
	}
	if err := stop(); err != nil {
		t.Error(err)
	}
}

func TestCaptureBadPath(t *testing.T) {
	stop := Capture(filepath.Join(t.TempDir(), "no", "such", "dir", "t.json"), nil)
	_, sp := Start(context.Background(), "s")
	sp.End()
	if err := stop(); err == nil {
		t.Error("expected error for unwritable trace path")
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	SetDefault(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "hot")
		Count(c, "items", 1)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New()
	SetDefault(tr)
	defer SetDefault(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "hot")
		Count(c, "items", 1)
		sp.End()
	}
}
