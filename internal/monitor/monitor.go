// Package monitor implements the online model-comparison methodology the
// paper sketches as the answer to "cross-modal vs fully supervised — which
// regime are we in?" (§7.4): train and deploy candidate models in parallel,
// then spend a small human-review budget — a combination of random and
// importance sampling over live traffic — to estimate each model's live
// precision/recall and the candidates' disagreement, with unbiased
// Horvitz–Thompson weighting.
package monitor

import (
	"fmt"
	"math"
	"math/rand"

	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// Oracle reveals a point's true label — the stand-in for a human reviewer.
type Oracle func(*synth.Point) int8

// Config controls a comparison run.
type Config struct {
	// Budget is the number of human reviews available (default 200).
	Budget int
	// ImportanceFraction is the share of the budget spent on importance
	// sampling — traffic where the candidates disagree or either flags a
	// positive — with the remainder sampled uniformly (default 0.7, the
	// paper's "combination of random and importance sampling").
	ImportanceFraction float64
	// Threshold converts scores into flag decisions (default 0.5).
	Threshold float64
	// Seed drives sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.ImportanceFraction < 0 || c.ImportanceFraction > 1 {
		c.ImportanceFraction = 0.7
	} else if c.ImportanceFraction == 0 {
		c.ImportanceFraction = 0.7
	}
	if c.Threshold <= 0 || c.Threshold >= 1 {
		c.Threshold = 0.5
	}
	return c
}

// ModelEstimate is one candidate's estimated live metrics.
type ModelEstimate struct {
	Name string
	// FlagRate is the fraction of traffic the model flags (exact; no
	// review needed).
	FlagRate float64
	// Precision is the estimated precision of its flags, from reviewed
	// flagged traffic (Horvitz–Thompson weighted).
	Precision float64
	// RecallProxy is the estimated share of all (estimated) positives the
	// model catches.
	RecallProxy float64
}

// Comparison is the outcome of one monitored comparison.
type Comparison struct {
	A, B ModelEstimate
	// Disagreement is the exact fraction of traffic where the candidates'
	// flag decisions differ.
	Disagreement float64
	// EstimatedPositiveRate is the Horvitz–Thompson estimate of the
	// traffic's true positive rate.
	EstimatedPositiveRate float64
	// Reviewed is the number of oracle calls actually spent.
	Reviewed int
}

// Compare scores live traffic with both candidates, spends the review budget
// per the sampling scheme, and returns weighted estimates. Traffic vectors
// must align with points.
func Compare(nameA string, a fusion.Predictor, nameB string, b fusion.Predictor, traffic []*synth.Point, vecs []*feature.Vector, oracle Oracle, cfg Config) (*Comparison, error) {
	cfg = cfg.withDefaults()
	if len(traffic) == 0 || len(traffic) != len(vecs) {
		return nil, fmt.Errorf("monitor: traffic %d points vs %d vectors", len(traffic), len(vecs))
	}
	if oracle == nil {
		return nil, fmt.Errorf("monitor: nil oracle")
	}
	n := len(traffic)
	scoresA := a.PredictBatch(vecs)
	scoresB := b.PredictBatch(vecs)
	flagsA := make([]bool, n)
	flagsB := make([]bool, n)
	var flaggedA, flaggedB, disagree int
	var interesting []int // flagged-by-either or disagreeing traffic
	for i := 0; i < n; i++ {
		flagsA[i] = scoresA[i] >= cfg.Threshold
		flagsB[i] = scoresB[i] >= cfg.Threshold
		if flagsA[i] {
			flaggedA++
		}
		if flagsB[i] {
			flaggedB++
		}
		if flagsA[i] != flagsB[i] {
			disagree++
		}
		if flagsA[i] || flagsB[i] {
			interesting = append(interesting, i)
		}
	}

	// Allocate the budget: importance samples from the interesting pool,
	// random samples from everything. Sampling is without replacement;
	// each stratum's inclusion probability is tracked for weighting.
	rng := xrand.New(cfg.Seed ^ 0x30b1)
	budget := cfg.Budget
	if budget > n {
		budget = n
	}
	impBudget := int(float64(budget) * cfg.ImportanceFraction)
	if impBudget > len(interesting) {
		impBudget = len(interesting)
	}
	rndBudget := budget - impBudget

	reviewed := make(map[int]int8, budget)
	review := func(idx int) {
		if _, done := reviewed[idx]; !done {
			reviewed[idx] = oracle(traffic[idx])
		}
	}
	impPick := samplePrefix(rng, interesting, impBudget)
	for _, idx := range impPick {
		review(idx)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for _, idx := range samplePrefix(rng, all, rndBudget) {
		review(idx)
	}

	// Inclusion probabilities per point: interesting points can enter via
	// either stratum; others only via the random stratum.
	pImp := 0.0
	if len(interesting) > 0 {
		pImp = float64(impBudget) / float64(len(interesting))
	}
	pRnd := float64(rndBudget) / float64(n)
	inclusion := func(i int) float64 {
		if flagsA[i] || flagsB[i] {
			return 1 - (1-pImp)*(1-pRnd)
		}
		return pRnd
	}

	// Horvitz–Thompson estimates.
	var posMass, totalMassCheck float64
	htPrecision := func(flags []bool) float64 {
		var hit, tot float64
		for idx, label := range reviewed {
			if !flags[idx] {
				continue
			}
			w := 1 / inclusion(idx)
			tot += w
			if label > 0 {
				hit += w
			}
		}
		if tot == 0 {
			return 0
		}
		return hit / tot
	}
	for idx, label := range reviewed {
		w := 1 / inclusion(idx)
		totalMassCheck += w
		if label > 0 {
			posMass += w
		}
	}
	estPosRate := 0.0
	if totalMassCheck > 0 {
		estPosRate = posMass / totalMassCheck
	}

	comp := &Comparison{
		Disagreement:          float64(disagree) / float64(n),
		EstimatedPositiveRate: estPosRate,
		Reviewed:              len(reviewed),
	}
	comp.A = ModelEstimate{
		Name:      nameA,
		FlagRate:  float64(flaggedA) / float64(n),
		Precision: htPrecision(flagsA),
	}
	comp.B = ModelEstimate{
		Name:      nameB,
		FlagRate:  float64(flaggedB) / float64(n),
		Precision: htPrecision(flagsB),
	}
	// Recall proxy: flagged-positive mass over all positive mass.
	if posMass > 0 {
		var caughtA, caughtB float64
		for idx, label := range reviewed {
			if label <= 0 {
				continue
			}
			w := 1 / inclusion(idx)
			if flagsA[idx] {
				caughtA += w
			}
			if flagsB[idx] {
				caughtB += w
			}
		}
		comp.A.RecallProxy = clamp01(caughtA / posMass)
		comp.B.RecallProxy = clamp01(caughtB / posMass)
	}
	return comp, nil
}

func clamp01(x float64) float64 { return math.Min(math.Max(x, 0), 1) }

// samplePrefix returns k distinct elements of pool, sampled uniformly.
func samplePrefix(rng *rand.Rand, pool []int, k int) []int {
	if k <= 0 {
		return nil
	}
	if k >= len(pool) {
		return append([]int(nil), pool...)
	}
	cp := append([]int(nil), pool...)
	rng.Shuffle(len(cp), func(a, b int) { cp[a], cp[b] = cp[b], cp[a] })
	return cp[:k]
}

// Winner returns the name of the candidate with the better reviewed
// precision at comparable flag rates, or "" when the difference is within
// margin (deploy either; keep monitoring).
func (c *Comparison) Winner(margin float64) string {
	diff := c.A.Precision - c.B.Precision
	if math.Abs(diff) <= margin {
		return ""
	}
	if diff > 0 {
		return c.A.Name
	}
	return c.B.Name
}
