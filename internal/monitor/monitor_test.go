package monitor

import (
	"math"
	"math/rand"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/synth"
)

// scripted is a deterministic predictor over a score table keyed by point
// index stored in the vector's "idx" numeric feature.
type scripted struct{ scores []float64 }

var testSchema = feature.MustSchema(feature.Def{Name: "idx", Kind: feature.Numeric, Set: "X", Servable: true})

func (s scripted) Predict(v *feature.Vector) float64 {
	return s.scores[int(v.Get("idx").Num)]
}

func (s scripted) PredictBatch(vs []*feature.Vector) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = s.Predict(v)
	}
	return out
}

// env builds synthetic traffic where the true label is known and two
// predictors with controlled quality: "good" scores positives higher with
// accuracy accGood; "bad" with accuracy accBad.
func env(t *testing.T, n int, posRate, accGood, accBad float64, seed int64) ([]*synth.Point, []*feature.Vector, scripted, scripted) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]*synth.Point, n)
	vecs := make([]*feature.Vector, n)
	good := scripted{scores: make([]float64, n)}
	bad := scripted{scores: make([]float64, n)}
	score := func(label int8, acc float64) float64 {
		correct := rng.Float64() < acc
		if (label > 0) == correct {
			return 0.6 + 0.4*rng.Float64()
		}
		return 0.4 * rng.Float64()
	}
	for i := 0; i < n; i++ {
		label := int8(-1)
		if rng.Float64() < posRate {
			label = 1
		}
		pts[i] = &synth.Point{ID: i, Label: label, Modality: synth.Image}
		v := feature.NewVector(testSchema)
		v.MustSet("idx", feature.NumericValue(float64(i)))
		vecs[i] = v
		good.scores[i] = score(label, accGood)
		bad.scores[i] = score(label, accBad)
	}
	return pts, vecs, good, bad
}

func truth(p *synth.Point) int8 { return p.Label }

func TestCompareRanksModels(t *testing.T) {
	pts, vecs, good, bad := env(t, 5000, 0.05, 0.95, 0.6, 1)
	comp, err := Compare("good", good, "bad", bad, pts, vecs, truth, Config{Budget: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if comp.A.Precision <= comp.B.Precision {
		t.Errorf("good model precision %.3f should beat bad %.3f", comp.A.Precision, comp.B.Precision)
	}
	if comp.Winner(0.02) != "good" {
		t.Errorf("Winner = %q, want good", comp.Winner(0.02))
	}
	if comp.Reviewed == 0 || comp.Reviewed > 600 {
		t.Errorf("reviewed = %d, want within budget", comp.Reviewed)
	}
	if comp.Disagreement <= 0 {
		t.Error("distinct models should disagree on some traffic")
	}
}

func TestCompareEstimatesPositiveRate(t *testing.T) {
	pts, vecs, good, bad := env(t, 8000, 0.08, 0.9, 0.7, 3)
	comp, err := Compare("a", good, "b", bad, pts, vecs, truth, Config{Budget: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comp.EstimatedPositiveRate-0.08) > 0.04 {
		t.Errorf("estimated positive rate %.3f, want ≈0.08 (HT weighting broken?)", comp.EstimatedPositiveRate)
	}
}

func TestCompareIdenticalModels(t *testing.T) {
	pts, vecs, good, _ := env(t, 2000, 0.1, 0.9, 0.9, 5)
	comp, err := Compare("a", good, "b", good, pts, vecs, truth, Config{Budget: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Disagreement != 0 {
		t.Errorf("identical models disagree %.3f", comp.Disagreement)
	}
	if comp.Winner(0.01) != "" {
		t.Errorf("Winner = %q, want tie", comp.Winner(0.01))
	}
	if comp.A.Precision != comp.B.Precision {
		t.Error("identical models should have identical estimates")
	}
}

func TestCompareValidation(t *testing.T) {
	pts, vecs, good, bad := env(t, 10, 0.5, 0.9, 0.5, 7)
	if _, err := Compare("a", good, "b", bad, nil, nil, truth, Config{}); err == nil {
		t.Error("expected error for empty traffic")
	}
	if _, err := Compare("a", good, "b", bad, pts, vecs[:5], truth, Config{}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := Compare("a", good, "b", bad, pts, vecs, nil, Config{}); err == nil {
		t.Error("expected error for nil oracle")
	}
}

func TestBudgetCap(t *testing.T) {
	pts, vecs, good, bad := env(t, 100, 0.2, 0.9, 0.6, 8)
	comp, err := Compare("a", good, "b", bad, pts, vecs, truth, Config{Budget: 10000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Reviewed > 100 {
		t.Errorf("reviewed %d of 100 points", comp.Reviewed)
	}
}

func TestRecallProxyOrdering(t *testing.T) {
	pts, vecs, good, bad := env(t, 6000, 0.06, 0.95, 0.55, 10)
	comp, err := Compare("good", good, "bad", bad, pts, vecs, truth, Config{Budget: 1200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if comp.A.RecallProxy <= comp.B.RecallProxy {
		t.Errorf("good recall proxy %.3f should beat bad %.3f", comp.A.RecallProxy, comp.B.RecallProxy)
	}
	for _, est := range []ModelEstimate{comp.A, comp.B} {
		if est.RecallProxy < 0 || est.RecallProxy > 1 {
			t.Errorf("%s recall proxy %v out of [0,1]", est.Name, est.RecallProxy)
		}
	}
}

func TestSamplePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := []int{1, 2, 3, 4, 5}
	got := samplePrefix(rng, pool, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatal("duplicate sample")
		}
		seen[v] = true
	}
	if got := samplePrefix(rng, pool, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := samplePrefix(rng, pool, 99); len(got) != 5 {
		t.Error("oversized k should return the whole pool")
	}
}
