package monitor

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/xrand"
)

// window draws n standard-normal samples shifted by mean.
func window(seed int64, n int, mean float64) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() + mean
	}
	return out
}

func TestKSStatBounds(t *testing.T) {
	a := window(1, 200, 0)
	if d := KSStat(a, a); d != 0 {
		t.Errorf("KS of a sample against itself = %v, want 0", d)
	}
	// Disjoint supports: empirical CDFs separate completely.
	lo := []float64{1, 2, 3, 4, 5}
	hi := []float64{10, 11, 12, 13, 14}
	if d := KSStat(lo, hi); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
	if d := KSStat(nil, hi); d != 0 {
		t.Errorf("KS with empty sample = %v, want 0", d)
	}
}

func TestKSStatDoesNotMutateInputs(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{5, 4}
	KSStat(a, b)
	if !reflect.DeepEqual(a, []float64{3, 1, 2}) || !reflect.DeepEqual(b, []float64{5, 4}) {
		t.Fatalf("KSStat mutated its inputs: %v %v", a, b)
	}
}

func TestKSPValueSanity(t *testing.T) {
	if p := KSPValue(0, 100, 100); p != 1 {
		t.Errorf("p-value at d=0 = %v, want 1", p)
	}
	if p := KSPValue(1, 300, 300); p > 1e-6 {
		t.Errorf("p-value at d=1 = %v, want ~0", p)
	}
	small := KSPValue(0.5, 300, 300)
	big := KSPValue(0.05, 300, 300)
	if small >= big {
		t.Errorf("p-value not decreasing in d: p(0.5)=%v >= p(0.05)=%v", small, big)
	}
}

func TestPSIIdenticalIsZero(t *testing.T) {
	a := window(7, 500, 0)
	if psi := PSIFromSamples(a, a, 10); psi > 1e-9 {
		t.Errorf("PSI of identical windows = %v, want ~0", psi)
	}
	if psi := PSI([]float64{10, 20, 30}, []float64{10, 20, 30}); psi != 0 {
		t.Errorf("PSI of identical counts = %v, want 0", psi)
	}
}

func TestPSIDetectsMixShift(t *testing.T) {
	ref := window(11, 500, 0)
	cur := window(12, 500, 1.2)
	if psi := PSIFromSamples(ref, cur, 10); psi < 0.25 {
		t.Errorf("PSI of a 1.2σ mean shift = %v, want > 0.25", psi)
	}
}

func TestHistEdgesCollapsesTies(t *testing.T) {
	ref := []float64{1, 1, 1, 1, 1, 1, 1, 1, 2, 3}
	edges := HistEdges(ref, 10)
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not strictly increasing: %v", edges)
		}
	}
	counts := HistCounts(edges, ref)
	var tot float64
	for _, c := range counts {
		tot += c
	}
	if tot != float64(len(ref)) {
		t.Errorf("counts sum to %v, want %d", tot, len(ref))
	}
}

// The detectors' false-positive rate over 1000 seeded identical-distribution
// windows stays bounded: the loop the lifecycle controller runs must not
// retrain on noise.
func TestNoDriftFalsePositiveRateBounded(t *testing.T) {
	cfg := DriftConfig{}
	fp := 0
	const trials = 1000
	for seed := int64(0); seed < trials; seed++ {
		ref := Snapshot{"x": window(seed*2+1, 300, 0)}
		cur := Snapshot{"x": window(seed*2+2, 300, 0)}
		vs := DetectDrift(cfg, ref, cur)
		if len(vs) != 1 {
			t.Fatalf("got %d verdicts, want 1", len(vs))
		}
		if vs[0].Drifted {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.02 {
		t.Errorf("false-positive rate %.3f over %d identical windows, want <= 0.02", rate, trials)
	}
}

// A known injected mean shift always trips, for every seed.
func TestInjectedShiftAlwaysDetected(t *testing.T) {
	cfg := DriftConfig{}
	for seed := int64(0); seed < 200; seed++ {
		ref := Snapshot{"x": window(seed*2+1, 300, 0)}
		cur := Snapshot{"x": window(seed*2+2, 300, 1.0)}
		vs := DetectDrift(cfg, ref, cur)
		if !vs[0].Drifted {
			t.Fatalf("seed %d: 1σ mean shift not detected (KS=%.3f p=%.4f PSI=%.3f)",
				seed, vs[0].KS, vs[0].KSP, vs[0].PSI)
		}
	}
}

// A tracker trips only after Consecutive drifted windows, and always within
// them once the shift is sustained.
func TestTrackerTripsWithinConsecutiveWindows(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		tr := NewTracker(DriftConfig{Consecutive: 2})
		tr.SetReference(Snapshot{"x": window(seed*100+1, 300, 0)})

		// One clean window, then a sustained shift.
		if _, tripped := tr.Observe(Snapshot{"x": window(seed*100+2, 300, 0)}); tripped {
			t.Fatalf("seed %d: tripped on a clean window", seed)
		}
		if _, tripped := tr.Observe(Snapshot{"x": window(seed*100+3, 300, 1.0)}); tripped {
			t.Fatalf("seed %d: tripped after a single drifted window with Consecutive=2", seed)
		}
		if _, tripped := tr.Observe(Snapshot{"x": window(seed*100+4, 300, 1.0)}); !tripped {
			t.Fatalf("seed %d: not tripped after 2 consecutive drifted windows", seed)
		}
		if got := tr.TrippedChannels(); len(got) != 1 || got[0] != "x" {
			t.Fatalf("seed %d: tripped channels = %v", seed, got)
		}
	}
}

func TestTrackerStreakResetsOnCleanWindow(t *testing.T) {
	tr := NewTracker(DriftConfig{Consecutive: 2})
	tr.SetReference(Snapshot{"x": window(1, 300, 0)})
	tr.Observe(Snapshot{"x": window(2, 300, 1.0)}) // streak 1
	tr.Observe(Snapshot{"x": window(3, 300, 0)})   // clean: resets
	if _, tripped := tr.Observe(Snapshot{"x": window(4, 300, 1.0)}); tripped {
		t.Fatal("tripped although the drift streak was broken by a clean window")
	}
}

func TestTrackerExtraVerdictsJoinStreaks(t *testing.T) {
	tr := NewTracker(DriftConfig{Consecutive: 2})
	tr.SetReference(Snapshot{"x": window(1, 300, 0)})
	hist := Verdict{Channel: "scores_hist", PSI: 0.9, Drifted: true}
	clean := Snapshot{"x": window(2, 300, 0)}
	if _, tripped := tr.Observe(clean, hist); tripped {
		t.Fatal("tripped after one extra-verdict window")
	}
	if _, tripped := tr.Observe(Snapshot{"x": window(3, 300, 0)}, hist); !tripped {
		t.Fatal("extra verdicts did not accumulate a streak")
	}
}

// Detection is a pure function of the window snapshots: replaying the same
// windows — in any within-window sample order — yields bit-identical
// verdicts.
func TestDetectDriftBitIdenticalReplay(t *testing.T) {
	cfg := DriftConfig{}
	ref := Snapshot{
		"a": window(21, 300, 0),
		"b": window(22, 300, 0),
	}
	cur := Snapshot{
		"a": window(23, 300, 0.5),
		"b": window(24, 300, 0),
	}
	first := DetectDrift(cfg, ref, cur)

	// Reverse every channel's sample order; multiset semantics must hold.
	shuffled := make(Snapshot, len(cur))
	for name, vals := range cur {
		rev := make([]float64, len(vals))
		for i, v := range vals {
			rev[len(vals)-1-i] = v
		}
		shuffled[name] = rev
	}
	second := DetectDrift(cfg, ref, shuffled)
	third := DetectDrift(cfg, ref, cur)

	for _, replay := range [][]Verdict{second, third} {
		if len(replay) != len(first) {
			t.Fatalf("verdict count changed across replays: %d vs %d", len(replay), len(first))
		}
		for i := range first {
			a, b := first[i], replay[i]
			if a.Channel != b.Channel || a.N != b.N || a.Drifted != b.Drifted ||
				math.Float64bits(a.KS) != math.Float64bits(b.KS) ||
				math.Float64bits(a.KSP) != math.Float64bits(b.KSP) ||
				math.Float64bits(a.PSI) != math.Float64bits(b.PSI) {
				t.Fatalf("verdict %d not bit-identical across replays: %+v vs %+v", i, a, b)
			}
		}
	}
}

func TestDetectDriftSkipsSmallChannels(t *testing.T) {
	ref := Snapshot{"x": window(1, 20, 0)}
	cur := Snapshot{"x": window(2, 20, 5)} // huge shift, tiny window
	vs := DetectDrift(DriftConfig{}, ref, cur)
	if vs[0].Drifted {
		t.Error("drifted on a window below MinSamples")
	}
	if vs[0].KSP != 1 {
		t.Errorf("skipped channel KSP = %v, want 1", vs[0].KSP)
	}
}

func TestNumericSnapshot(t *testing.T) {
	schema := feature.MustSchema(
		feature.Def{Name: "topic", Kind: feature.Categorical, Set: "C", Servable: true},
		feature.Def{Name: "reports", Kind: feature.Numeric, Set: "D", Servable: true},
	)
	var vecs []*feature.Vector
	for i := 0; i < 5; i++ {
		v := feature.NewVector(schema)
		if i < 4 { // one vector leaves the channel missing
			v.MustSet("reports", feature.NumericValue(float64(i)))
		}
		vecs = append(vecs, v)
	}
	snap := NumericSnapshot(vecs)
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d channels, want 1 (numeric only): %v", len(snap), snap)
	}
	if got := snap["reports"]; len(got) != 4 {
		t.Fatalf("reports channel has %d samples, want 4 (missing skipped)", len(got))
	}
	if len(NumericSnapshot(nil)) != 0 {
		t.Error("empty input should give an empty snapshot")
	}
}

func TestSummarize(t *testing.T) {
	vs := []Verdict{{Drifted: true}, {Drifted: false}, {Drifted: true}}
	if got := Summarize(vs); got != "2/3 channels drifted" {
		t.Errorf("Summarize = %q", got)
	}
}

// catWindow draws n single-token observations from a categorical mix given
// as cumulative weights over the token alphabet.
func catWindow(seed int64, n int, tokens []string, weights []float64) map[string]float64 {
	rng := xrand.New(seed)
	var total float64
	for _, w := range weights {
		total += w
	}
	counts := make(map[string]float64)
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		for j, w := range weights {
			if u -= w; u <= 0 {
				counts[tokens[j]]++
				break
			}
		}
	}
	return counts
}

func TestCatPSIIdenticalAndShifted(t *testing.T) {
	ref := map[string]float64{"a": 400, "b": 300, "c": 200}
	if psi := CatPSI(ref, ref); psi != 0 {
		t.Errorf("PSI of a window against itself = %v, want exactly 0", psi)
	}
	if psi := CatPSI(nil, ref); psi != 0 {
		t.Errorf("PSI with empty reference = %v, want 0", psi)
	}
	flipped := map[string]float64{"a": 200, "b": 300, "c": 400}
	if psi := CatPSI(ref, flipped); psi < 0.1 {
		t.Errorf("PSI under a mass flip = %v, want well above 0", psi)
	}
	// A token the reference never saw lands in the rare bucket and is
	// Laplace-smoothed, not exploded on an epsilon floor.
	novel := map[string]float64{"a": 380, "b": 300, "c": 200, "zzz": 20}
	psi := CatPSI(ref, novel)
	if psi <= 0 || psi > 0.25 {
		t.Errorf("PSI with a small novel token = %v, want small but positive", psi)
	}
}

func TestCatPSIRareCollapse(t *testing.T) {
	// Hundreds of sparse reference categories whose identities churn across
	// windows: per-category PSI would read the churn as drift, the collapsed
	// rare bucket must not.
	ref := map[string]float64{"big": 800}
	cur := map[string]float64{"big": 800}
	for i := 0; i < 200; i++ {
		ref[fmt.Sprintf("r%03d", i)] = 1
		cur[fmt.Sprintf("c%03d", i)] = 1
	}
	if psi := CatPSI(ref, cur); psi > 0.05 {
		t.Errorf("PSI over churning rare categories = %v, want ~0", psi)
	}
}

func TestCatPSIPure(t *testing.T) {
	ref := map[string]float64{"a": 100, "b": 3}
	cur := map[string]float64{"a": 80, "c": 25}
	refCopy := map[string]float64{"a": 100, "b": 3}
	curCopy := map[string]float64{"a": 80, "c": 25}
	p1 := CatPSI(ref, cur)
	p2 := CatPSI(ref, cur)
	if p1 != p2 {
		t.Errorf("CatPSI not deterministic: %v then %v", p1, p2)
	}
	if !reflect.DeepEqual(ref, refCopy) || !reflect.DeepEqual(cur, curCopy) {
		t.Errorf("CatPSI mutated its inputs: %v %v", ref, cur)
	}
}

func TestCategoricalSnapshot(t *testing.T) {
	schema := feature.MustSchema(
		feature.Def{Name: "topic", Kind: feature.Categorical, Set: "C", Servable: true},
		feature.Def{Name: "tags", Kind: feature.Categorical, Set: "C", Servable: true},
		feature.Def{Name: "reports", Kind: feature.Numeric, Set: "D", Servable: true},
	)
	var vecs []*feature.Vector
	for i := 0; i < 6; i++ {
		v := feature.NewVector(schema)
		v.MustSet("reports", feature.NumericValue(1))
		if i < 4 {
			v.MustSet("topic", feature.CategoricalValue("news"))
		} else if i == 4 {
			v.MustSet("topic", feature.CategoricalValue("sports", "news"))
		} // i == 5 leaves topic missing; tags never set
		vecs = append(vecs, v)
	}
	snap := CategoricalSnapshot(vecs)
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d channels, want 1 (tokenless and numeric omitted): %v", len(snap), snap)
	}
	topic := snap["topic"]
	if topic["news"] != 5 || topic["sports"] != 1 {
		t.Errorf("topic counts = %v, want news:5 sports:1", topic)
	}
	if len(CategoricalSnapshot(nil)) != 0 {
		t.Error("empty input should give an empty snapshot")
	}
}

func TestDetectCategoricalDriftTripsOnMixShift(t *testing.T) {
	tokens := []string{"a", "b", "c", "d"}
	cfg := DriftConfig{}
	ref := CatSnapshot{"topic": catWindow(1, 800, tokens, []float64{4, 3, 2, 1})}
	same := CatSnapshot{"topic": catWindow(2, 800, tokens, []float64{4, 3, 2, 1})}
	shifted := CatSnapshot{"topic": catWindow(3, 800, tokens, []float64{1, 2, 3, 4})}

	vs := DetectCategoricalDrift(cfg, ref, same)
	if len(vs) != 1 || vs[0].Drifted {
		t.Fatalf("same-distribution window flagged: %+v", vs)
	}
	if vs[0].KSP != 1 {
		t.Errorf("categorical verdict KSP = %v, want pinned 1", vs[0].KSP)
	}
	vs = DetectCategoricalDrift(cfg, ref, shifted)
	if len(vs) != 1 || !vs[0].Drifted {
		t.Fatalf("mix flip not flagged: %+v", vs)
	}
}

func TestDetectCategoricalDriftGates(t *testing.T) {
	cfg := DriftConfig{}
	// Under MinSamples on either side: verdict is emitted but never drifts.
	tiny := CatSnapshot{"topic": {"a": 3, "b": 2}}
	big := CatSnapshot{"topic": {"a": 500, "b": 10}}
	for _, pair := range [][2]CatSnapshot{{tiny, big}, {big, tiny}} {
		vs := DetectCategoricalDrift(cfg, pair[0], pair[1])
		if len(vs) != 1 || vs[0].Drifted || vs[0].PSI != 0 {
			t.Errorf("undersized window produced %+v, want quiet verdict", vs)
		}
	}
	// Channels missing from either side are skipped; order is sorted.
	ref := CatSnapshot{"b": {"x": 100}, "a": {"x": 100}, "refonly": {"x": 100}}
	cur := CatSnapshot{"a": {"x": 100}, "b": {"x": 100}, "curonly": {"x": 100}}
	vs := DetectCategoricalDrift(cfg, ref, cur)
	if len(vs) != 2 || vs[0].Channel != "a" || vs[1].Channel != "b" {
		t.Fatalf("verdicts = %+v, want sorted [a b]", vs)
	}
}
