package monitor

// Serving-time drift detection: two-sample Kolmogorov–Smirnov tests and the
// Population Stability Index over windowed snapshots of served feature
// vectors and model scores. The paper's deployment setting (§2.4, and the
// Drybell/TFX story it builds on) treats distribution shift as the normal
// operating condition; these detectors are the trigger that turns the static
// pipeline into the closed loop internal/lifecycle drives.
//
// Everything here is a pure function of its window snapshots: no clocks, no
// global state, order-insensitive within a window (samples are sorted or
// binned before comparison). The same pair of snapshots always yields the
// same verdicts bit for bit — the property the lifecycle golden test and the
// detector property suite depend on.

import (
	"fmt"
	"math"
	"sort"

	"crossmodal/internal/feature"
)

// Snapshot is one observation window: named channels (feature columns,
// score streams) mapped to their raw sampled values. Sample order within a
// channel carries no meaning.
type Snapshot map[string][]float64

// NumericSnapshot collects every non-missing numeric channel of vecs into a
// snapshot keyed by feature name. Vectors must share a schema.
func NumericSnapshot(vecs []*feature.Vector) Snapshot {
	snap := make(Snapshot)
	if len(vecs) == 0 {
		return snap
	}
	schema := vecs[0].Schema()
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		if d.Kind != feature.Numeric {
			continue
		}
		var vals []float64
		for _, v := range vecs {
			if val := v.At(i); !val.Missing {
				vals = append(vals, val.Num)
			}
		}
		if len(vals) > 0 {
			snap[d.Name] = vals
		}
	}
	return snap
}

// CatSnapshot is one observation window over categorical channels: channel
// name → category token → occurrence count. Counts, not samples, because a
// categorical feature is a set-valued observation and only its token
// frequencies are comparable across windows.
type CatSnapshot map[string]map[string]float64

// CategoricalSnapshot counts every category token of every non-missing
// categorical channel of vecs, keyed by feature name. Vectors must share a
// schema. Channels with no observed tokens are omitted.
func CategoricalSnapshot(vecs []*feature.Vector) CatSnapshot {
	snap := make(CatSnapshot)
	if len(vecs) == 0 {
		return snap
	}
	schema := vecs[0].Schema()
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		if d.Kind != feature.Categorical {
			continue
		}
		counts := make(map[string]float64)
		for _, v := range vecs {
			if val := v.At(i); !val.Missing {
				for _, cat := range val.Categories {
					counts[cat]++
				}
			}
		}
		if len(counts) > 0 {
			snap[d.Name] = counts
		}
	}
	return snap
}

// CatPSI returns the PSI between two category frequency maps. Categories
// rare in the reference (count < 10) are collapsed into one bucket — PSI over
// hundreds of sparse categories measures sampling noise, not shift — and
// both sides are Laplace-smoothed so a token new to either window
// contributes in proportion to its mass instead of exploding on an epsilon
// floor. Order-independent and pure.
func CatPSI(ref, cur map[string]float64) float64 {
	if len(ref) == 0 || len(cur) == 0 {
		return 0
	}
	const (
		rareMin = 10
		pseudo  = 0.5
	)
	bucket := func(cat string) string {
		if ref[cat] < rareMin {
			return "\x00rare" // no service emits NUL-prefixed category names
		}
		return cat
	}
	refB := make(map[string]float64, len(ref))
	curB := make(map[string]float64, len(cur))
	seen := make(map[string]bool, len(ref)+len(cur))
	var union []string
	for cat, n := range ref {
		b := bucket(cat)
		refB[b] += n
		if !seen[b] {
			seen[b] = true
			union = append(union, b)
		}
	}
	for cat, n := range cur {
		b := bucket(cat)
		curB[b] += n
		if !seen[b] {
			seen[b] = true
			union = append(union, b)
		}
	}
	sort.Strings(union)
	var refTot, curTot float64
	for _, b := range union {
		refTot += refB[b] + pseudo
		curTot += curB[b] + pseudo
	}
	var psi float64
	for _, b := range union {
		p := (refB[b] + pseudo) / refTot
		q := (curB[b] + pseudo) / curTot
		psi += (q - p) * math.Log(q/p)
	}
	return psi
}

// DetectCategoricalDrift compares current categorical frequencies against
// the reference, one verdict per channel present in both, in channel-name
// order. KS does not apply to unordered categories, so KSP is pinned to 1
// and the PSI threshold alone decides. Pure, like DetectDrift.
func DetectCategoricalDrift(cfg DriftConfig, ref, cur CatSnapshot) []Verdict {
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := ref[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	verdicts := make([]Verdict, 0, len(names))
	for _, name := range names {
		var refTot, curTot float64
		for _, n := range ref[name] {
			refTot += n
		}
		for _, n := range cur[name] {
			curTot += n
		}
		v := Verdict{Channel: name, N: int(curTot), KSP: 1}
		if int(refTot) >= cfg.MinSamples && int(curTot) >= cfg.MinSamples {
			v.PSI = CatPSI(ref[name], cur[name])
			v.Drifted = v.PSI > cfg.PSIThreshold
		}
		verdicts = append(verdicts, v)
	}
	return verdicts
}

// DriftConfig tunes the detectors.
type DriftConfig struct {
	// KSAlpha is the significance level of the KS test: a channel drifts
	// when the asymptotic p-value of its KS statistic falls below it
	// (default 0.005 — conservative, because many channels are tested per
	// window).
	KSAlpha float64
	// PSIThreshold flags a channel when its PSI against the reference
	// window exceeds it (default 0.25, the conventional "significant
	// shift" cut).
	PSIThreshold float64
	// Bins is the histogram resolution for PSI, with edges at reference
	// quantiles (default 10).
	Bins int
	// MinSamples skips channels with fewer samples than this on either
	// side — tiny windows make both tests meaningless (default 50).
	MinSamples int
	// Consecutive is how many successive drifted windows a channel needs
	// before a Tracker trips (default 2; a single odd window self-heals).
	Consecutive int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.KSAlpha <= 0 {
		c.KSAlpha = 0.005
	}
	if c.PSIThreshold <= 0 {
		c.PSIThreshold = 0.25
	}
	if c.Bins <= 1 {
		c.Bins = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 50
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 2
	}
	return c
}

// Verdict is one channel's drift decision for one window.
type Verdict struct {
	Channel string  `json:"channel"`
	N       int     `json:"n"` // current-window sample count
	KS      float64 `json:"ks"`
	KSP     float64 `json:"ksp"` // asymptotic p-value of KS
	PSI     float64 `json:"psi"`
	Drifted bool    `json:"drifted"`
}

// KSStat returns the two-sample Kolmogorov–Smirnov statistic: the maximum
// distance between the empirical CDFs of a and b. Inputs are not modified.
// Returns 0 when either sample is empty.
func KSStat(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	var d float64
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value of a two-sample KS statistic d at
// sample sizes na and nb, via the Kolmogorov distribution with the
// Stephens small-sample correction. Accurate enough for thresholding at
// conventional alphas; exact tables are unnecessary at serving window sizes.
func KSPValue(d float64, na, nb int) float64 {
	if na <= 0 || nb <= 0 || d <= 0 {
		return 1
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	if lambda < 1e-9 {
		return 1
	}
	// Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²); terms decay fast.
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		sum += sign * term
		if term < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// HistEdges returns bins-1 interior cut points at the quantiles of ref, for
// binning both windows on the reference distribution's own scale. Duplicate
// cuts (heavy ties) are collapsed.
func HistEdges(ref []float64, bins int) []float64 {
	if bins < 2 || len(ref) == 0 {
		return nil
	}
	sorted := append([]float64(nil), ref...)
	sort.Float64s(sorted)
	var edges []float64
	for k := 1; k < bins; k++ {
		cut := sorted[len(sorted)*k/bins]
		if len(edges) == 0 || cut > edges[len(edges)-1] {
			edges = append(edges, cut)
		}
	}
	return edges
}

// HistCounts bins xs by edges (len(edges)+1 buckets; bucket i holds values
// in (edges[i-1], edges[i]]).
func HistCounts(edges, xs []float64) []float64 {
	counts := make([]float64, len(edges)+1)
	for _, x := range xs {
		i := sort.SearchFloat64s(edges, x)
		// SearchFloat64s finds the first edge >= x; values equal to an edge
		// belong to that edge's bucket.
		counts[i]++
	}
	return counts
}

// PSI returns the Population Stability Index between two aligned count
// vectors: Σ (pᵢ−qᵢ)·ln(pᵢ/qᵢ) over normalized proportions, with epsilon
// smoothing so empty buckets stay finite. By convention <0.1 is stable,
// 0.1–0.25 moderate, >0.25 a significant shift.
func PSI(refCounts, curCounts []float64) float64 {
	if len(refCounts) != len(curCounts) || len(refCounts) == 0 {
		return 0
	}
	const eps = 1e-6
	var refTot, curTot float64
	for i := range refCounts {
		refTot += refCounts[i]
		curTot += curCounts[i]
	}
	if refTot == 0 || curTot == 0 {
		return 0
	}
	var psi float64
	for i := range refCounts {
		p := math.Max(refCounts[i]/refTot, eps)
		q := math.Max(curCounts[i]/curTot, eps)
		psi += (q - p) * math.Log(q/p)
	}
	return psi
}

// PSIFromSamples bins both windows on ref's quantile edges and returns their
// PSI.
func PSIFromSamples(ref, cur []float64, bins int) float64 {
	edges := HistEdges(ref, bins)
	if len(edges) == 0 {
		return 0
	}
	return PSI(HistCounts(edges, ref), HistCounts(edges, cur))
}

// DetectDrift compares the current window against the reference window
// channel by channel and returns a verdict per channel present in both, in
// channel-name order. A channel drifts when the KS test rejects at KSAlpha
// or the PSI exceeds PSIThreshold. Pure: the same (cfg, ref, cur) always
// returns the same verdicts.
func DetectDrift(cfg DriftConfig, ref, cur Snapshot) []Verdict {
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := ref[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	verdicts := make([]Verdict, 0, len(names))
	for _, name := range names {
		r, c := ref[name], cur[name]
		v := Verdict{Channel: name, N: len(c)}
		if len(r) >= cfg.MinSamples && len(c) >= cfg.MinSamples {
			v.KS = KSStat(r, c)
			v.KSP = KSPValue(v.KS, len(r), len(c))
			v.PSI = PSIFromSamples(r, c, cfg.Bins)
			v.Drifted = v.KSP < cfg.KSAlpha || v.PSI > cfg.PSIThreshold
		} else {
			v.KSP = 1
		}
		verdicts = append(verdicts, v)
	}
	return verdicts
}

// Tracker accumulates per-channel drift streaks across windows against a
// fixed reference snapshot. It trips when any channel drifts Consecutive
// windows in a row — one noisy window self-heals, a sustained shift does
// not. Not safe for concurrent use.
type Tracker struct {
	cfg    DriftConfig
	ref    Snapshot
	streak map[string]int
}

// NewTracker builds a tracker; call SetReference before Observe.
func NewTracker(cfg DriftConfig) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), streak: make(map[string]int)}
}

// SetReference installs the baseline window and clears all streaks.
func (t *Tracker) SetReference(ref Snapshot) {
	t.ref = ref
	t.streak = make(map[string]int)
}

// HasReference reports whether a baseline is installed.
func (t *Tracker) HasReference() bool { return t.ref != nil }

// Observe scores one window against the reference. extra verdicts (e.g.
// computed from a serving-metrics histogram rather than raw samples) join
// streak tracking under their own channel names. Returns all verdicts and
// whether any channel's streak has reached Consecutive.
func (t *Tracker) Observe(cur Snapshot, extra ...Verdict) ([]Verdict, bool) {
	if t.ref == nil {
		panic("monitor: Tracker.Observe before SetReference")
	}
	verdicts := DetectDrift(t.cfg, t.ref, cur)
	verdicts = append(verdicts, extra...)
	tripped := false
	for _, v := range verdicts {
		if v.Drifted {
			t.streak[v.Channel]++
			if t.streak[v.Channel] >= t.cfg.Consecutive {
				tripped = true
			}
		} else {
			delete(t.streak, v.Channel)
		}
	}
	return verdicts, tripped
}

// TrippedChannels returns the channels at or past the consecutive
// threshold, sorted.
func (t *Tracker) TrippedChannels() []string {
	var out []string
	for name, n := range t.streak {
		if n >= t.cfg.Consecutive {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Summarize formats a verdict set compactly for event logs.
func Summarize(vs []Verdict) string {
	drifted := 0
	for _, v := range vs {
		if v.Drifted {
			drifted++
		}
	}
	return fmt.Sprintf("%d/%d channels drifted", drifted, len(vs))
}
