package xrand

import (
	"math/rand"
	"testing"
)

// TestGoldenStream pins the splitmix64 output for a fixed seed. Recorded
// experiment expectations depend on these streams: if this test fails, the
// generator changed and every recorded metric must be regenerated (see
// EXPERIMENTS.md).
func TestGoldenStream(t *testing.T) {
	s := NewSource(1)
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("Uint64() #%d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds produced identical first outputs")
	}
	// Sequential seeds must decorrelate (the whole point of the mixer).
	if New(7).Float64() == New(8).Float64() {
		t.Error("sequential seeds produced identical Float64")
	}
}

func TestSeedResets(t *testing.T) {
	s := NewSource(5)
	first := s.Uint64()
	s.Uint64()
	s.Seed(5)
	if got := s.Uint64(); got != first {
		t.Errorf("Seed(5) did not reset the stream: %#x vs %#x", got, first)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := NewSource(-99)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63() = %d, want non-negative", v)
		}
	}
}

// TestUniformity is a coarse sanity check that the source drives math/rand
// acceptably: mean of Float64 near 0.5, Intn(k) hits every residue.
func TestUniformity(t *testing.T) {
	rng := New(3)
	var sum float64
	const n = 20000
	hits := make([]int, 8)
	for i := 0; i < n; i++ {
		sum += rng.Float64()
		hits[rng.Intn(8)]++
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
	for r, h := range hits {
		if h < n/8/2 {
			t.Errorf("Intn(8) residue %d hit %d times, want ~%d", r, h, n/8)
		}
	}
}

func TestHashString(t *testing.T) {
	if HashString(1, "a") == HashString(1, "b") {
		t.Error("different strings should give different sub-seeds")
	}
	if HashString(1, "a") == HashString(2, "a") {
		t.Error("different seeds should give different sub-seeds")
	}
	if HashString(1, "a") != HashString(1, "a") {
		t.Error("sub-seed not deterministic")
	}
}

// TestConstructionCheap asserts O(1) construction cost: building a Rand
// allocates only the Rand and Source structs, not a large seeded state.
func TestConstructionCheap(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		_ = New(123)
	})
	if allocs > 2 {
		t.Errorf("New allocates %v objects, want <= 2", allocs)
	}
}

func BenchmarkNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = New(int64(i))
	}
}

func BenchmarkLegacyNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rand.New(rand.NewSource(int64(i)))
	}
}
