// Package xrand provides a cheap, deterministic pseudo-random source for
// per-item RNG streams.
//
// The curation layer derives an independent RNG per data point, per
// observation channel, and per graph vertex. The legacy math/rand source
// seeds a 607-word lagged-Fibonacci state on construction — ~37% of a full
// pipeline run's CPU samples when a fresh source is built per item. The
// splitmix64 generator used here has a single uint64 of state, so
// construction is O(1), and its output mixing function decorrelates even
// sequential seeds, which makes it safe to derive stream seeds by hashing
// (seed ^ itemIndex)-style expressions. Each New call returns a private
// *rand.Rand, so per-goroutine use is race-free by construction.
//
// splitmix64 is the seeding generator recommended by Vigna
// (https://prng.di.unimi.it/splitmix64.c): a Weyl sequence with increment
// 0x9e3779b97f4a7c15 passed through a variant of the MurmurHash3 finalizer.
// It is deterministic and stable: the streams produced for a given seed are
// pinned by golden tests and must not change silently, since recorded
// experiment expectations depend on them.
package xrand

import "math/rand"

// gamma is the golden-ratio Weyl increment of splitmix64.
const gamma = 0x9e3779b97f4a7c15

// Source is a splitmix64 generator implementing math/rand.Source64.
// The zero value is a valid source seeded with 0.
type Source struct {
	state uint64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a splitmix64 source for the given seed. Unlike the
// legacy math/rand source, construction is O(1).
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// New returns a *rand.Rand backed by a fresh splitmix64 source.
// It is the drop-in replacement for rand.New(rand.NewSource(seed)) on hot
// per-item paths.
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// Uint64 advances the Weyl sequence and returns the mixed state.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	return Mix(s.state)
}

// Int63 returns a non-negative 63-bit value (math/rand.Source).
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed resets the source to the given seed (math/rand.Source).
func (s *Source) Seed(seed int64) {
	s.state = uint64(seed)
}

// Mix applies the splitmix64 output mixing function: a bijective avalanche
// over uint64, useful on its own for deriving decorrelated sub-seeds from
// structured inputs (seed ^ index, hashed channel names, ...).
func Mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString folds s into seed with FNV-1a and mixes the result, producing
// a decorrelated sub-seed for a named stream (an observation channel, a
// stage name). The same (seed, s) pair always yields the same sub-seed.
func HashString(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return Mix(seed ^ h)
}
