package experiments

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// The suite is expensive to build; share one small-scale instance.
var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func smallSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(Config{Scale: 0.15, Seed: 5})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestNewSuiteDefaults(t *testing.T) {
	s, err := NewSuite(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Scale != 1.0 || s.cfg.Seed == 0 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

func TestAllTasks(t *testing.T) {
	tasks := AllTasks()
	if len(tasks) != 5 || tasks[0] != "CT1" || tasks[4] != "CT5" {
		t.Fatalf("AllTasks = %v", tasks)
	}
}

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	rows, err := s.Table1(context.Background(), []string{"CT1", "CT4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].LabeledText <= 0 || rows[0].PositiveRate <= 0 {
		t.Errorf("bad row: %+v", rows[0])
	}
	// CT4 is the most imbalanced task.
	if rows[1].PositiveRate >= rows[0].PositiveRate {
		t.Errorf("CT4 rate %.3f should be below CT1 %.3f", rows[1].PositiveRate, rows[0].PositiveRate)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "CT1") {
		t.Error("render missing task name")
	}
}

func TestTable2SingleTask(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	rows, err := s.Table2(context.Background(), []string{"CT1"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Text <= 0 || r.Image <= 0 || r.CrossModal <= 0 {
		t.Fatalf("non-positive relative AUPRCs: %+v", r)
	}
	// The cross-modal model should not lose to text-only inference
	// (paper finding 4) — allow slack at this tiny scale.
	if r.CrossModal < 0.7*r.Text {
		t.Errorf("cross-modal %.2f far below text %.2f", r.CrossModal, r.Text)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Cross-Over") {
		t.Error("render missing header")
	}
}

func TestTable3SingleTask(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	rows, err := s.Table3(context.Background(), []string{"CT1"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	for name, v := range map[string]float64{"precision": r.Precision, "recall": r.Recall, "f1": r.F1, "auprc": r.AUPRC} {
		if v <= 0 {
			t.Errorf("%s ratio = %v, want positive", name, v)
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "×") {
		t.Error("render missing ratio marks")
	}
}

func TestFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	series, err := s.Figure5(context.Background(), "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2 panels", len(series))
	}
	for _, panel := range series {
		if panel.CrossModal <= 0 || len(panel.Supervised) == 0 {
			t.Errorf("degenerate panel %q: %+v", panel.Label, panel)
		}
	}
	var buf bytes.Buffer
	RenderFigure5(&buf, series)
	if !strings.Contains(buf.String(), "Hand-labeled") {
		t.Error("render missing budget column")
	}
}

func TestFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	steps, err := s.Figure6(context.Background(), "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 8 {
		t.Fatalf("steps = %d, want 8", len(steps))
	}
	if steps[0].Label() != "T+A (no image)" {
		t.Errorf("first label = %q", steps[0].Label())
	}
	// The full configuration should outperform the text-A-only start
	// (paper: 0.22 → 1.52).
	if steps[7].Relative <= steps[0].Relative {
		t.Errorf("adding features and data should help: first %.2f, last %.2f",
			steps[0].Relative, steps[7].Relative)
	}
}

func TestFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	rows, err := s.Figure7(context.Background(), "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 prefixes", len(rows))
	}
	last := rows[3]
	if last.Both < last.TextOnly*0.7 {
		t.Errorf("joint %.2f far below text-only %.2f with all sets", last.Both, last.TextOnly)
	}
	var buf bytes.Buffer
	RenderFigure7(&buf, rows)
	if !strings.Contains(buf.String(), "ABCD") {
		t.Error("render missing set labels")
	}
}

func TestFusionComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	rows, err := s.FusionComparison(context.Background(), []string{"CT1"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Early <= 0 || r.Intermediate <= 0 || r.DeViSE <= 0 {
		t.Fatalf("non-positive architecture results: %+v", r)
	}
	// Early fusion should be at least competitive with DeViSE (paper:
	// early wins by 2.21× on average).
	if r.Early < 0.6*r.DeViSE {
		t.Errorf("early %.2f far below DeViSE %.2f", r.Early, r.DeViSE)
	}
}

func TestLFGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	rows, err := s.LFGeneration(context.Background(), "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Source != "mined" || rows[1].Source != "expert" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].CorpusExamined <= rows[1].CorpusExamined {
		t.Errorf("miner should examine more data: %d vs %d",
			rows[0].CorpusExamined, rows[1].CorpusExamined)
	}
	if rows[0].LFCount == 0 || rows[1].LFCount == 0 {
		t.Error("both sources should produce LFs")
	}
	var buf bytes.Buffer
	RenderLFGen(&buf, rows)
	if !strings.Contains(buf.String(), "mined") {
		t.Error("render missing source")
	}
}

func TestRawVsFeatures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	res, err := s.RawVsFeatures(context.Background(), "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if res.RawOnly != 1.0 {
		t.Errorf("raw baseline = %v, want 1.0 by construction", res.RawOnly)
	}
	// The paper finds the feature space beats the raw embedding.
	if res.Features < 1.0 {
		t.Errorf("feature model %.2f should beat the embedding baseline", res.Features)
	}
}

func TestRatio(t *testing.T) {
	if got := ratio(2, 1); got != 2 {
		t.Errorf("ratio = %v", got)
	}
	if got := ratio(0, 0); got != 1 {
		t.Errorf("ratio(0,0) = %v, want 1", got)
	}
	if got := ratio(1, 0); got != 999 {
		t.Errorf("ratio(1,0) = %v, want 999 sentinel", got)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	rows, err := s.Ablations(context.Background(), "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 variants", len(rows))
	}
	if rows[0].Name != "full pipeline (default)" {
		t.Errorf("first row = %q", rows[0].Name)
	}
	for _, r := range rows {
		if r.EndAUPRC <= 0 {
			t.Errorf("variant %q has non-positive AUPRC", r.Name)
		}
	}
	var buf bytes.Buffer
	RenderAblations(&buf, rows)
	if !strings.Contains(buf.String(), "majority vote") {
		t.Error("render missing variants")
	}
}
