package experiments

import (
	"context"
	"fmt"
	"io"

	"crossmodal/internal/core"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// Table1Row reports one task's corpus statistics (paper Table 1).
type Table1Row struct {
	Task           string
	LabeledText    int
	UnlabeledImage int
	LabeledImage   int // test set
	PositiveRate   float64
}

// Table1 regenerates the dataset-statistics table. It only needs datasets,
// not curations, so it is cheap.
func (s *Suite) Table1(ctx context.Context, tasks []string) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range tasks {
		task, err := synth.TaskByName(name)
		if err != nil {
			return nil, err
		}
		ds, err := synth.BuildDataset(s.world, task, s.datasetConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Task:           name,
			LabeledText:    len(ds.LabeledText),
			UnlabeledImage: len(ds.UnlabeledImage),
			LabeledImage:   len(ds.TestImage),
			PositiveRate:   synth.PositiveRate(ds.TestImage),
		})
	}
	return rows, nil
}

// RenderTable1 writes the rows as a markdown table.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "| Task | n_lbd,text | n_unlbd,image | n_lbd,image | % Pos |")
	fmt.Fprintln(w, "|------|-----------:|--------------:|------------:|------:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d | %d | %d | %.1f%% |\n",
			r.Task, r.LabeledText, r.UnlabeledImage, r.LabeledImage, 100*r.PositiveRate)
	}
}

// Table2Row reports one task's end-to-end comparison (paper Table 2):
// baseline-relative AUPRC of the fully supervised text model, the weakly
// supervised image model, and the cross-modal model, plus the hand-label
// budget at which a fully supervised image model catches the cross-modal
// one (0 = beyond the pool).
type Table2Row struct {
	Task       string
	Text       float64
	Image      float64
	CrossModal float64
	CrossOver  int
}

// Table2 regenerates the end-to-end comparison.
func (s *Suite) Table2(ctx context.Context, tasks []string) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range tasks {
		tc, err := s.ctxFor(ctx, name)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Task: name}

		spec := tc.pipe.DefaultTrainSpec()
		spec.UseText, spec.UseImage = true, false
		text, err := tc.trainAndEval(ctx, tc.curation, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s text model: %w", name, err)
		}
		row.Text = tc.relative(text)

		spec.UseText, spec.UseImage = false, true
		image, err := tc.trainAndEval(ctx, tc.curation, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s image model: %w", name, err)
		}
		row.Image = tc.relative(image)

		spec.UseText, spec.UseImage = true, true
		cross, err := tc.trainAndEval(ctx, tc.curation, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s cross-modal model: %w", name, err)
		}
		row.CrossModal = tc.relative(cross)

		schema := tc.pipe.SchemaFor(resource.ABCD, true, false)
		curve, err := tc.supervisedCurve(ctx, tc.budgets(), schema)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s supervised curve: %w", name, err)
		}
		row.CrossOver = core.CrossOver(curve, row.CrossModal)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 writes the rows as a markdown table.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "| Task | Text | Image | Cross-Modal | Cross-Over |")
	fmt.Fprintln(w, "|------|-----:|------:|------------:|-----------:|")
	for _, r := range rows {
		co := "beyond pool"
		if r.CrossOver > 0 {
			co = fmt.Sprintf("%d examples", r.CrossOver)
		}
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %.2f | %s |\n",
			r.Task, r.Text, r.Image, r.CrossModal, co)
	}
}

// Table3Row reports label propagation's relative improvement of the
// training-data curation step (paper Table 3): each column is the ratio of
// the with-propagation metric to the mined-LFs-only metric.
type Table3Row struct {
	Task      string
	Precision float64
	Recall    float64
	F1        float64
	AUPRC     float64
}

// Table3 regenerates the label-propagation ablation.
func (s *Suite) Table3(ctx context.Context, tasks []string) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range tasks {
		tc, err := s.ctxFor(ctx, name)
		if err != nil {
			return nil, err
		}
		noProp, err := s.noPropCuration(ctx, tc)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s no-prop curation: %w", name, err)
		}
		spec := tc.pipe.DefaultTrainSpec()
		withAUPRC, err := tc.trainAndEval(ctx, tc.curation, spec)
		if err != nil {
			return nil, err
		}
		withoutAUPRC, err := tc.trainAndEval(ctx, noProp, spec)
		if err != nil {
			return nil, err
		}
		with, without := tc.curation.Report, noProp.Report
		rows = append(rows, Table3Row{
			Task:      name,
			Precision: ratio(with.WSPrecision, without.WSPrecision),
			Recall:    ratio(with.WSRecall, without.WSRecall),
			F1:        ratio(with.WSF1, without.WSF1),
			AUPRC:     ratio(withAUPRC, withoutAUPRC),
		})
	}
	return rows, nil
}

// ratioCell renders a ratio, showing the division-by-zero sentinel as ∞
// (the metric went from zero to nonzero — e.g. label propagation enabling
// recall where mined LFs alone had none).
func ratioCell(r float64) string {
	if r >= 999 {
		return "∞ (from 0)"
	}
	return fmt.Sprintf("%.2f×", r)
}

// ratio returns a/b guarding division by zero: 1 when both are zero (no
// change), +Inf-avoiding large value when only b is zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 999
	}
	return a / b
}

// RenderTable3 writes the rows as a markdown table.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "| Task | Precision | Recall | F1 | AUPRC |")
	fmt.Fprintln(w, "|------|----------:|-------:|---:|------:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			r.Task, ratioCell(r.Precision), ratioCell(r.Recall), ratioCell(r.F1), ratioCell(r.AUPRC))
	}
}
