package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"crossmodal/internal/core"
)

// StreamScaleResult summarizes one streamed-curation run against the cached
// in-memory curation of the same task: corpus sizes, per-stage wall-clock,
// and whether the streamed probabilistic labels are bit-identical to the
// in-memory ones (they must be — the streamed path's contract).
type StreamScaleResult struct {
	Task                string
	TextRows, ImageRows int
	Chunks              int
	BitIdentical        bool
	WSF1, WSCoverage    float64
	Stages              []StageTiming
}

// StageTiming is one pipeline stage's wall-clock share.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// streamStageOrder fixes the rendered stage order (map iteration is not
// deterministic).
var streamStageOrder = []string{"ingest", "lf-generation", "lf-apply", "label-propagation", "label-model"}

// StreamScale runs the disk-backed streaming curation path on one task at
// the suite's scale and checks it against the cached in-memory curation.
// The feature store lives in a temp directory that is removed afterwards —
// the experiment measures the streaming machinery, not the artifacts.
func (s *Suite) StreamScale(ctx context.Context, taskName string) (*StreamScaleResult, error) {
	tc, err := s.ctxFor(ctx, taskName)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "crossmodal-streamscale-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	sc, err := tc.pipe.CurateStreamed(ctx, s.world, tc.task, s.datasetConfig(), core.StreamOptions{
		Dir: dir, ChunkSize: 2048,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: streamed curate %s: %w", taskName, err)
	}
	defer sc.Close()

	bit := len(sc.ProbLabels) == len(tc.curation.ProbLabels) &&
		sc.Report.LFCount == tc.curation.Report.LFCount &&
		sc.Report.PropIters == tc.curation.Report.PropIters
	if bit {
		for i := range sc.ProbLabels {
			if math.Float64bits(sc.ProbLabels[i]) != math.Float64bits(tc.curation.ProbLabels[i]) ||
				sc.Covered[i] != tc.curation.Covered[i] {
				bit = false
				break
			}
		}
	}

	res := &StreamScaleResult{
		Task:         taskName,
		TextRows:     sc.Text.Rows(),
		ImageRows:    sc.Image.Rows(),
		Chunks:       sc.Text.Chunks() + sc.Image.Chunks(),
		BitIdentical: bit,
		WSF1:         sc.Report.WSF1,
		WSCoverage:   sc.Report.WSCoverage,
	}
	for _, name := range streamStageOrder {
		if d, ok := sc.Report.Timings[name]; ok {
			res.Stages = append(res.Stages, StageTiming{Name: name, Duration: d})
		}
	}
	return res, nil
}

// RenderStreamScale writes the streamed-curation summary.
func RenderStreamScale(w io.Writer, r *StreamScaleResult) {
	verdict := "bit-identical to the in-memory pipeline"
	if !r.BitIdentical {
		verdict = "DIVERGED from the in-memory pipeline (bug!)"
	}
	fmt.Fprintf(w, "Streamed curation on %s: %d text + %d image rows over %d store chunks, %s.\n",
		r.Task, r.TextRows, r.ImageRows, r.Chunks, verdict)
	fmt.Fprintf(w, "WS quality: F1 %.3f at %.0f%% coverage.\n\n", r.WSF1, 100*r.WSCoverage)
	fmt.Fprintf(w, "| stage | wall-clock |\n|---|---|\n")
	for _, st := range r.Stages {
		fmt.Fprintf(w, "| %s | %s |\n", st.Name, st.Duration.Round(time.Millisecond))
	}
}
