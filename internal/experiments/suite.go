// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) on the synthetic substrate: Table 1 (task statistics),
// Table 2 (end-to-end relative AUPRC and cross-over points), Table 3 (label
// propagation lift), Figure 5 (hand-label budget cross-over curves), Figure
// 6 (organizational-resource factor analysis), Figure 7 (modality lesion
// study), the §6.6 fusion-architecture comparison, and the §6.7.1 automatic
// vs expert LF comparison.
//
// All AUPRC numbers are reported relative to the paper's baseline: a fully
// supervised image model trained on only the pre-trained image embedding
// (§6.3). Absolute values depend on the synthetic substrate; the paper's
// qualitative shape — who wins, roughly by what factor, where cross-overs
// fall — is the reproduction target (see DESIGN.md).
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"crossmodal/internal/core"
	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

// Config sizes and seeds the experiment suite.
type Config struct {
	// Scale multiplies the default corpus sizes (1.0 reproduces the
	// headline numbers; smaller values give fast smoke runs).
	Scale float64
	// Seed drives the world and all dataset sampling.
	Seed int64
	// Workers parallelizes featurization and LF application.
	Workers int
	// StoreDir, when set, routes curation through the disk-backed streaming
	// path rooted there (one subdirectory per task). Chunks featurized on a
	// previous run at the same scale and seed are reused instead of being
	// recomputed, and the result is bit-identical to the in-memory path.
	StoreDir string
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Seed: 17}
}

// Suite holds the world, resource library and per-task caches shared by all
// experiments.
type Suite struct {
	cfg   Config
	world *synth.World
	lib   *resource.Library

	mu     sync.Mutex
	tasks  map[string]*taskContext
	reused int // store chunks whose featurization was skipped (StoreDir runs)
}

// taskContext caches the expensive artifacts for one classification task.
type taskContext struct {
	task       *synth.Task
	ds         *synth.Dataset
	pipe       *core.Pipeline
	curation   *core.Curation // with label propagation (pipeline default)
	noProp     *core.Curation // without label propagation (Table 3 ablation)
	testVecs   []*feature.Vector
	testLabels []int8
	baseline   float64 // AUPRC of the embedding-only supervised model
}

// NewSuite builds a suite.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 17
	}
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		return nil, err
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		return nil, err
	}
	return &Suite{cfg: cfg, world: world, lib: lib, tasks: make(map[string]*taskContext)}, nil
}

// World returns the suite's synthetic world.
func (s *Suite) World() *synth.World { return s.world }

// Library returns the suite's resource library.
func (s *Suite) Library() *resource.Library { return s.lib }

// datasetConfig scales the default corpus sizes.
func (s *Suite) datasetConfig() synth.DatasetConfig {
	base := synth.DefaultDatasetConfig()
	base.Seed = s.cfg.Seed
	scale := func(n int) int {
		v := int(float64(n) * s.cfg.Scale)
		if v < 200 {
			v = 200
		}
		return v
	}
	base.NumText = scale(base.NumText)
	base.NumUnlabeledImage = scale(base.NumUnlabeledImage)
	base.NumHandLabelPool = scale(base.NumHandLabelPool)
	base.NumTest = scale(base.NumTest)
	return base
}

// endModelConfig is the logistic-regression end model used by most
// experiments (the paper deploys LR or small DNNs, §6.3). workers shards
// minibatches across goroutines; 0 inherits the pipeline's Workers knob
// when the config flows through core, or GOMAXPROCS otherwise.
func endModelConfig(workers int) model.Config {
	return model.Config{Epochs: 6, LearningRate: 0.02, Seed: 11, Workers: workers}
}

// pipelineOptions returns the default pipeline configuration, sized to the
// suite scale.
func (s *Suite) pipelineOptions() core.Options {
	o := core.DefaultOptions()
	o.Workers = s.cfg.Workers
	o.Model = endModelConfig(s.cfg.Workers)
	o.Seed = s.cfg.Seed
	if s.cfg.Scale < 1 {
		o.MaxGraphSeeds = int(float64(o.MaxGraphSeeds) * s.cfg.Scale)
		o.GraphDevNodes = int(float64(o.GraphDevNodes) * s.cfg.Scale)
		if o.MaxGraphSeeds < 200 {
			o.MaxGraphSeeds = 200
		}
		if o.GraphDevNodes < 100 {
			o.GraphDevNodes = 100
		}
	}
	return o
}

// ctxFor returns (building and caching on first use) the task context.
func (s *Suite) ctxFor(ctx context.Context, taskName string) (*taskContext, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tc, ok := s.tasks[taskName]; ok {
		return tc, nil
	}
	task, err := synth.TaskByName(taskName)
	if err != nil {
		return nil, err
	}
	ds, err := synth.BuildDataset(s.world, task, s.datasetConfig())
	if err != nil {
		return nil, err
	}
	pipe, err := core.NewPipeline(s.lib, s.pipelineOptions())
	if err != nil {
		return nil, err
	}
	cur, err := s.curate(ctx, pipe, ds)
	if err != nil {
		return nil, fmt.Errorf("experiments: curate %s: %w", taskName, err)
	}
	testVecs, err := pipe.Featurize(ctx, ds.TestImage)
	if err != nil {
		return nil, err
	}
	tc := &taskContext{
		task:       task,
		ds:         ds,
		pipe:       pipe,
		curation:   cur,
		testVecs:   testVecs,
		testLabels: synth.Labels(ds.TestImage),
	}
	// Baseline: fully supervised image model on the pre-trained embedding
	// only, trained on the whole hand-label pool (§6.3).
	basePred, err := pipe.TrainSupervised(ctx, ds.HandLabelPool, pipe.EmbeddingOnlySchema(), endModelConfig(s.cfg.Workers))
	if err != nil {
		return nil, err
	}
	tc.baseline = tc.evaluate(ctx, basePred)
	if tc.baseline <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline for %s", taskName)
	}
	s.tasks[taskName] = tc
	return tc, nil
}

// noPropCuration lazily computes the curation ablation without label
// propagation.
func (s *Suite) noPropCuration(ctx context.Context, tc *taskContext) (*core.Curation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tc.noProp != nil {
		return tc.noProp, nil
	}
	opts := s.pipelineOptions()
	opts.UseLabelProp = false
	pipe, err := core.NewPipeline(s.lib, opts)
	if err != nil {
		return nil, err
	}
	cur, err := s.curate(ctx, pipe, tc.ds)
	if err != nil {
		return nil, err
	}
	tc.noProp = cur
	return cur, nil
}

// curate runs one curation, in memory by default or through the disk-backed
// streaming path when Config.StoreDir is set. The streamed path spills
// featurized chunks under StoreDir/<task> and, on later runs against the
// same store (including the no-propagation ablation, whose featurization is
// identical), reuses committed chunks instead of recomputing them; with
// GraphWindow 0 its output is bit-identical to Pipeline.Curate.
func (s *Suite) curate(ctx context.Context, pipe *core.Pipeline, ds *synth.Dataset) (*core.Curation, error) {
	if s.cfg.StoreDir == "" {
		return pipe.Curate(ctx, ds)
	}
	sc, err := pipe.CurateStreamed(ctx, s.world, ds.Task, s.datasetConfig(), core.StreamOptions{
		Dir:       filepath.Join(s.cfg.StoreDir, ds.Task.Name),
		ChunkSize: 2048,
		Resume:    true,
	})
	if err != nil {
		return nil, err
	}
	cur, merr := sc.Materialize(ctx)
	s.reused += sc.ReusedChunks
	if cerr := sc.Close(); merr == nil {
		merr = cerr
	}
	if merr != nil {
		return nil, merr
	}
	// Materialize only carries the corpora the stores hold; the experiments
	// need the full generated dataset (e.g. UnlabeledImage ground truth).
	cur.Dataset = ds
	return cur, nil
}

// ReusedChunks reports how many featurized store chunks were reused from
// Config.StoreDir across all curations so far (always 0 without a store).
func (s *Suite) ReusedChunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reused
}

// evaluate returns a predictor's AUPRC on the cached test set.
func (tc *taskContext) evaluate(ctx context.Context, pred fusion.Predictor) float64 {
	_, span := trace.Start(ctx, "eval")
	defer span.End()
	span.SetInt("points", int64(len(tc.testVecs)))
	auprc := metrics.AUPRC(tc.testLabels, pred.PredictBatch(tc.testVecs))
	span.SetFloat("auprc", auprc)
	return auprc
}

// relative converts an absolute AUPRC to the baseline-relative form.
func (tc *taskContext) relative(auprc float64) float64 {
	return metrics.Relative(auprc, tc.baseline)
}

// trainAndEval trains one variant from the curation and evaluates it.
func (tc *taskContext) trainAndEval(ctx context.Context, cur *core.Curation, spec core.TrainSpec) (float64, error) {
	pred, err := tc.pipe.Train(ctx, cur, spec)
	if err != nil {
		return 0, err
	}
	return tc.evaluate(ctx, pred), nil
}

// budgets returns the hand-label budget ladder used by the cross-over
// experiments: a geometric sweep over the pool.
func (tc *taskContext) budgets() []int {
	pool := len(tc.ds.HandLabelPool)
	fracs := []float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}
	var out []int
	for _, f := range fracs {
		n := int(float64(pool) * f)
		if n >= 20 && (len(out) == 0 || n > out[len(out)-1]) {
			out = append(out, n)
		}
	}
	return out
}

// supervisedCurve trains fully supervised image models at each budget over
// the given schema and returns baseline-relative AUPRCs.
func (tc *taskContext) supervisedCurve(ctx context.Context, budgets []int, schema *feature.Schema) ([]core.BudgetPoint, error) {
	curve, err := tc.pipe.SupervisedCurve(ctx, tc.ds.HandLabelPool, tc.ds.TestImage, budgets, schema, endModelConfig(0))
	if err != nil {
		return nil, err
	}
	for i := range curve {
		curve[i].AUPRC = tc.relative(curve[i].AUPRC)
	}
	return curve, nil
}

// AllTasks lists the evaluation tasks in order.
func AllTasks() []string {
	tasks := synth.StandardTasks()
	names := make([]string, len(tasks))
	for i, t := range tasks {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}
