package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"crossmodal/internal/core"
	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/resource"
)

// Figure5Series is one panel of paper Figure 5: the fully supervised
// hand-label budget curve against the (flat) cross-modal pipeline line, for
// one end-model feature configuration. LFs always use all four service sets;
// the bottom panel removes set D from the end models, simulating nonservable
// features (the paper's bottom panel removes C and D).
type Figure5Series struct {
	Label      string
	Sets       []string
	CrossModal float64 // baseline-relative AUPRC of the cross-modal pipeline
	Supervised []core.BudgetPoint
	CrossOver  int
}

// Figure5 regenerates both panels for the given task (the paper uses CT1).
func (s *Suite) Figure5(ctx context.Context, taskName string) ([]Figure5Series, error) {
	tc, err := s.ctxFor(ctx, taskName)
	if err != nil {
		return nil, err
	}
	panels := []struct {
		label string
		sets  []string
	}{
		{"ABCD (all features servable)", resource.ABCD},
		{"ABC (set D nonservable: LFs only)", []string{resource.SetA, resource.SetB, resource.SetC}},
	}
	var out []Figure5Series
	for _, panel := range panels {
		spec := tc.pipe.DefaultTrainSpec()
		spec.ModelSets = panel.sets
		cross, err := tc.trainAndEval(ctx, tc.curation, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure5 %s cross-modal: %w", panel.label, err)
		}
		schema := tc.pipe.SchemaFor(panel.sets, true, false)
		curve, err := tc.supervisedCurve(ctx, tc.budgets(), schema)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure5 %s curve: %w", panel.label, err)
		}
		rel := tc.relative(cross)
		out = append(out, Figure5Series{
			Label:      panel.label,
			Sets:       panel.sets,
			CrossModal: rel,
			Supervised: curve,
			CrossOver:  core.CrossOver(curve, rel),
		})
	}
	return out, nil
}

// RenderFigure5 writes the series as markdown tables.
func RenderFigure5(w io.Writer, series []Figure5Series) {
	for _, s := range series {
		fmt.Fprintf(w, "\nEnd-model features %s — cross-modal relative AUPRC %.2f", s.Label, s.CrossModal)
		if s.CrossOver > 0 {
			fmt.Fprintf(w, ", cross-over at %d hand-labeled examples\n", s.CrossOver)
		} else {
			fmt.Fprintf(w, ", no cross-over within the pool\n")
		}
		fmt.Fprintln(w, "\n| Hand-labeled examples | Fully supervised | Cross-modal |")
		fmt.Fprintln(w, "|----------------------:|----------------:|------------:|")
		for _, pt := range s.Supervised {
			fmt.Fprintf(w, "| %d | %.2f | %.2f |\n", pt.Budget, pt.AUPRC, s.CrossModal)
		}
	}
}

// Figure6Step is one bar of the paper's Figure 6 factor analysis: service
// sets are added alternately to the text and image sides.
type Figure6Step struct {
	TextSets  []string
	ImageSets []string // nil means no image data used
	Relative  float64
}

// Label renders the step like the paper's x-axis ("T + AB / I + A").
func (st Figure6Step) Label() string {
	label := "T+" + strings.Join(st.TextSets, "")
	if st.ImageSets == nil {
		return label + " (no image)"
	}
	return label + " / I+" + strings.Join(st.ImageSets, "")
}

// Figure6 regenerates the factor analysis for one task (the paper uses CT1):
// starting from text with set A only, each step adds a feature set to one
// modality. Weak supervision always uses all sets (they are nonservable for
// the restricted end models).
func (s *Suite) Figure6(ctx context.Context, taskName string) ([]Figure6Step, error) {
	tc, err := s.ctxFor(ctx, taskName)
	if err != nil {
		return nil, err
	}
	steps := []Figure6Step{
		{TextSets: []string{"A"}, ImageSets: nil},
		{TextSets: []string{"A"}, ImageSets: []string{"A"}},
		{TextSets: []string{"A", "B"}, ImageSets: []string{"A"}},
		{TextSets: []string{"A", "B"}, ImageSets: []string{"A", "B"}},
		{TextSets: []string{"A", "B", "C"}, ImageSets: []string{"A", "B"}},
		{TextSets: []string{"A", "B", "C"}, ImageSets: []string{"A", "B", "C"}},
		{TextSets: []string{"A", "B", "C", "D"}, ImageSets: []string{"A", "B", "C"}},
		{TextSets: []string{"A", "B", "C", "D"}, ImageSets: []string{"A", "B", "C", "D"}},
	}
	for i := range steps {
		auprc, err := s.trainMasked(ctx, tc, steps[i].TextSets, steps[i].ImageSets, steps[i].ImageSets != nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure6 step %d: %w", i, err)
		}
		steps[i].Relative = tc.relative(auprc)
	}
	return steps, nil
}

// trainMasked trains an early-fusion model where the text corpus sees
// textSets (plus text-specific features) and the image corpus sees imageSets
// (plus image-specific features); the end-model schema is their union. This
// implements the per-modality feature-set configurations of Figures 6 and 7.
func (s *Suite) trainMasked(ctx context.Context, tc *taskContext, textSets, imageSets []string, useImage bool) (float64, error) {
	lib := tc.pipe.Library()
	textSchema := lib.Schema().Sets(append(append([]string{}, textSets...), resource.TextSet)...).Servable()
	var imageSchema *feature.Schema
	union := map[string]bool{}
	for _, set := range textSets {
		union[set] = true
	}
	if useImage {
		imageSchema = lib.Schema().Sets(append(append([]string{}, imageSets...), resource.ImageSet)...).Servable()
		for _, set := range imageSets {
			union[set] = true
		}
	}
	var unionSets []string
	for set := range union {
		unionSets = append(unionSets, set)
	}
	endSchema := tc.pipe.SchemaFor(unionSets, useImage, true)

	cur := tc.curation
	textTargets := make([]float64, len(cur.TextLabels))
	for i, l := range cur.TextLabels {
		if l > 0 {
			textTargets[i] = 1
		}
	}
	corpora := []fusion.Corpus{{
		Name:    "text",
		Vectors: maskVectors(cur.TextVecs, textSchema),
		Targets: textTargets,
	}}
	if useImage {
		var vecs []*feature.Vector
		var targets []float64
		for i, v := range cur.ImageVecs {
			if cur.Covered[i] {
				vecs = append(vecs, v.Reproject(imageSchema))
				targets = append(targets, cur.ProbLabels[i])
			}
		}
		corpora = append(corpora, fusion.Corpus{Name: "image", Vectors: vecs, Targets: targets})
	}
	pred, err := fusion.TrainEarly(ctx, corpora, fusion.Config{Schema: endSchema, Model: endModelConfig(s.cfg.Workers)})
	if err != nil {
		return 0, err
	}
	// Test vectors are masked to the image-side view.
	testSchema := textSchema
	if useImage {
		testSchema = imageSchema
	}
	masked := maskVectors(tc.testVecs, testSchema)
	return metricsAUPRC(tc.testLabels, pred, masked), nil
}

func maskVectors(vecs []*feature.Vector, schema *feature.Schema) []*feature.Vector {
	out := make([]*feature.Vector, len(vecs))
	for i, v := range vecs {
		out[i] = v.Reproject(schema)
	}
	return out
}

func metricsAUPRC(labels []int8, pred fusion.Predictor, vecs []*feature.Vector) float64 {
	return auprcOf(labels, pred.PredictBatch(vecs))
}

// RenderFigure6 writes the steps as a markdown table.
func RenderFigure6(w io.Writer, steps []Figure6Step) {
	fmt.Fprintln(w, "| Configuration | Relative AUPRC |")
	fmt.Fprintln(w, "|---------------|---------------:|")
	for _, st := range steps {
		fmt.Fprintf(w, "| %s | %.2f |\n", st.Label(), st.Relative)
	}
}

// Figure7Row is one service-prefix column of the paper's Figure 7 lesion
// study: text-only, image-only, and joint models under the same feature
// sets.
type Figure7Row struct {
	Sets      []string
	TextOnly  float64
	ImageOnly float64
	Both      float64
}

// Figure7 regenerates the modality lesion study for one task.
func (s *Suite) Figure7(ctx context.Context, taskName string) ([]Figure7Row, error) {
	tc, err := s.ctxFor(ctx, taskName)
	if err != nil {
		return nil, err
	}
	prefixes := [][]string{
		{"A"},
		{"A", "B"},
		{"A", "B", "C"},
		{"A", "B", "C", "D"},
	}
	var rows []Figure7Row
	for _, sets := range prefixes {
		row := Figure7Row{Sets: sets}

		textOnly, err := s.trainMasked(ctx, tc, sets, nil, false)
		if err != nil {
			return nil, err
		}
		row.TextOnly = tc.relative(textOnly)

		spec := tc.pipe.DefaultTrainSpec()
		spec.ModelSets = sets
		spec.UseText, spec.UseImage = false, true
		imageOnly, err := tc.trainAndEval(ctx, tc.curation, spec)
		if err != nil {
			return nil, err
		}
		row.ImageOnly = tc.relative(imageOnly)

		both, err := s.trainMasked(ctx, tc, sets, sets, true)
		if err != nil {
			return nil, err
		}
		row.Both = tc.relative(both)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure7 writes the rows as a markdown table.
func RenderFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintln(w, "| Services | Text only | Image only | Text + Image |")
	fmt.Fprintln(w, "|----------|----------:|-----------:|-------------:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %.2f |\n",
			strings.Join(r.Sets, ""), r.TextOnly, r.ImageOnly, r.Both)
	}
}
