package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"crossmodal/internal/core"
	"crossmodal/internal/synth"
)

func TestManifestShape(t *testing.T) {
	m := Manifest()
	if len(m) != 11 {
		t.Fatalf("manifest has %d experiments, want 11", len(m))
	}
	seen := make(map[string]bool)
	for _, e := range m {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete manifest entry: %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestLookupExperiment(t *testing.T) {
	e, err := LookupExperiment("table2")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "table2" || e.Run == nil {
		t.Errorf("lookup returned %+v", e)
	}
	if _, err := LookupExperiment("table9"); err == nil {
		t.Error("lookup accepted an unknown name")
	} else if !strings.Contains(err.Error(), "table9") {
		t.Errorf("error %q does not name the unknown experiment", err)
	}
}

func TestExperimentNamesMatchManifestOrder(t *testing.T) {
	names := ExperimentNames()
	m := Manifest()
	if len(names) != len(m) {
		t.Fatalf("names = %d entries, manifest = %d", len(names), len(m))
	}
	for i, e := range m {
		if names[i] != e.Name {
			t.Errorf("names[%d] = %q, manifest[%d].Name = %q", i, names[i], i, e.Name)
		}
	}
}

// TestDatasetConfigScaleClamps: corpus sizes scale linearly but never drop
// below the floor that keeps the pipeline statistically meaningful.
func TestDatasetConfigScaleClamps(t *testing.T) {
	base := synth.DefaultDatasetConfig()

	tiny := &Suite{cfg: Config{Scale: 0.0001, Seed: 7}}
	got := tiny.datasetConfig()
	for name, v := range map[string]int{
		"NumText":           got.NumText,
		"NumUnlabeledImage": got.NumUnlabeledImage,
		"NumHandLabelPool":  got.NumHandLabelPool,
		"NumTest":           got.NumTest,
	} {
		if v != 200 {
			t.Errorf("scale 0.0001: %s = %d, want floor 200", name, v)
		}
	}
	if got.Seed != 7 {
		t.Errorf("seed not propagated: %d", got.Seed)
	}

	full := &Suite{cfg: Config{Scale: 1.0, Seed: 7}}
	got = full.datasetConfig()
	if got.NumText != base.NumText || got.NumTest != base.NumTest {
		t.Errorf("scale 1.0 changed sizes: %+v vs default %+v", got, base)
	}

	half := &Suite{cfg: Config{Scale: 0.5, Seed: 7}}
	got = half.datasetConfig()
	if want := base.NumText / 2; got.NumText != want && got.NumText != 200 {
		t.Errorf("scale 0.5: NumText = %d, want %d", got.NumText, want)
	}
}

// TestPipelineOptionsScaleClamps: the label-propagation graph shrinks with
// scale but keeps enough seeds and dev nodes to function, and never grows
// past the defaults.
func TestPipelineOptionsScaleClamps(t *testing.T) {
	def := core.DefaultOptions()

	tiny := &Suite{cfg: Config{Scale: 0.0001, Seed: 7, Workers: 3}}
	o := tiny.pipelineOptions()
	if o.MaxGraphSeeds != 200 {
		t.Errorf("MaxGraphSeeds = %d, want floor 200", o.MaxGraphSeeds)
	}
	if o.GraphDevNodes != 100 {
		t.Errorf("GraphDevNodes = %d, want floor 100", o.GraphDevNodes)
	}
	if o.Workers != 3 {
		t.Errorf("Workers = %d, want 3", o.Workers)
	}
	if o.Seed != 7 {
		t.Errorf("Seed = %d, want 7", o.Seed)
	}

	full := &Suite{cfg: Config{Scale: 1.0, Seed: 7}}
	o = full.pipelineOptions()
	if o.MaxGraphSeeds != def.MaxGraphSeeds || o.GraphDevNodes != def.GraphDevNodes {
		t.Errorf("scale 1.0 changed graph sizes: %d/%d, want %d/%d",
			o.MaxGraphSeeds, o.GraphDevNodes, def.MaxGraphSeeds, def.GraphDevNodes)
	}

	big := &Suite{cfg: Config{Scale: 4.0, Seed: 7}}
	o = big.pipelineOptions()
	if o.MaxGraphSeeds != def.MaxGraphSeeds {
		t.Errorf("scale > 1 should not inflate MaxGraphSeeds: %d", o.MaxGraphSeeds)
	}
}

// TestManifestSmoke runs every declared experiment end to end at tiny scale
// on one task and requires each to render finite, non-empty markdown. This
// is the guarantee that a manifest entry is actually runnable — not just
// named.
func TestManifestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := smallSuite(t)
	ctx := context.Background()
	for _, e := range Manifest() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(ctx, &buf, s, []string{"CT1"}); err != nil {
				t.Fatalf("experiment %q failed: %v", e.Name, err)
			}
			out := buf.String()
			if strings.TrimSpace(out) == "" {
				t.Fatalf("experiment %q rendered nothing", e.Name)
			}
			for _, bad := range []string{"NaN", "Inf", "-Inf"} {
				if strings.Contains(out, bad) {
					t.Errorf("experiment %q emitted %s:\n%s", e.Name, bad, out)
				}
			}
		})
	}
}
