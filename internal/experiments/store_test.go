package experiments

import (
	"context"
	"math"
	"testing"
)

// TestStoreDirBitIdentityAndReuse pins the -store contract: a suite routed
// through a disk-backed feature store produces bit-identical curations to
// the regenerating in-memory suite, and later runs over the same store
// (including the no-propagation ablation) reuse the featurized chunks
// instead of recomputing them.
func TestStoreDirBitIdentityAndReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several curations")
	}
	ctx := context.Background()
	cfg := Config{Scale: 0.04, Seed: 5}

	mem, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcMem, err := mem.ctxFor(ctx, "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if mem.ReusedChunks() != 0 {
		t.Errorf("in-memory suite reports %d reused chunks, want 0", mem.ReusedChunks())
	}

	storeCfg := cfg
	storeCfg.StoreDir = t.TempDir()
	cold, err := NewSuite(storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	tcCold, err := cold.ctxFor(ctx, "CT1")
	if err != nil {
		t.Fatal(err)
	}
	if cold.ReusedChunks() != 0 {
		t.Errorf("cold store run reused %d chunks, want 0", cold.ReusedChunks())
	}
	sameCuration(t, "cold store vs in-memory", tcMem, tcCold)

	warm, err := NewSuite(storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	tcWarm, err := warm.ctxFor(ctx, "CT1")
	if err != nil {
		t.Fatal(err)
	}
	afterCtx := warm.ReusedChunks()
	if afterCtx == 0 {
		t.Fatal("second run over the same store reused no featurized chunks")
	}
	sameCuration(t, "warm store vs in-memory", tcMem, tcWarm)

	// The ablation's featurization is identical, so it reuses the same store.
	if _, err := warm.noPropCuration(ctx, tcWarm); err != nil {
		t.Fatal(err)
	}
	if got := warm.ReusedChunks(); got <= afterCtx {
		t.Errorf("no-prop ablation reused no chunks: %d after vs %d before", got, afterCtx)
	}
}

// sameCuration asserts two task contexts hold bitwise-identical curations.
func sameCuration(t *testing.T, label string, a, b *taskContext) {
	t.Helper()
	ca, cb := a.curation, b.curation
	if ca.Report.LFCount != cb.Report.LFCount {
		t.Errorf("%s: LF count %d vs %d", label, ca.Report.LFCount, cb.Report.LFCount)
	}
	if len(ca.ProbLabels) != len(cb.ProbLabels) {
		t.Fatalf("%s: %d vs %d prob labels", label, len(ca.ProbLabels), len(cb.ProbLabels))
	}
	for i := range ca.ProbLabels {
		if math.Float64bits(ca.ProbLabels[i]) != math.Float64bits(cb.ProbLabels[i]) {
			t.Fatalf("%s: prob label %d diverged: %v vs %v", label, i, ca.ProbLabels[i], cb.ProbLabels[i])
		}
		if ca.Covered[i] != cb.Covered[i] {
			t.Fatalf("%s: coverage bit %d diverged", label, i)
		}
	}
	if a.baseline != b.baseline {
		t.Errorf("%s: baseline AUPRC %v vs %v", label, a.baseline, b.baseline)
	}
}
