package experiments

import (
	"context"
	"fmt"
	"io"

	"crossmodal/internal/core"
	"crossmodal/internal/labelmodel"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/metrics"
	"crossmodal/internal/mining"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

func auprcOf(labels []int8, scores []float64) float64 {
	return metrics.AUPRC(labels, scores)
}

// FusionRow compares the three multi-modal architectures on one task
// (paper §6.6: early fusion beats intermediate fusion by up to 1.22× and
// DeViSE by up to 5.52×).
type FusionRow struct {
	Task         string
	Early        float64 // baseline-relative AUPRC
	Intermediate float64
	DeViSE       float64
}

// FusionComparison trains all three architectures (with a small hidden
// layer, so the intermediate embeddings and DeViSE projections are
// meaningful) from each task's cached curation.
func (s *Suite) FusionComparison(ctx context.Context, tasks []string) ([]FusionRow, error) {
	var rows []FusionRow
	for _, name := range tasks {
		tc, err := s.ctxFor(ctx, name)
		if err != nil {
			return nil, err
		}
		mcfg := model.Config{Hidden: []int{16}, Epochs: 5, LearningRate: 0.02, Seed: 11}
		row := FusionRow{Task: name}
		for _, arch := range []struct {
			kind core.FusionKind
			dst  *float64
		}{
			{core.EarlyFusion, &row.Early},
			{core.IntermediateFusion, &row.Intermediate},
			{core.DeViSE, &row.DeViSE},
		} {
			spec := tc.pipe.DefaultTrainSpec()
			spec.Fusion = arch.kind
			spec.Model = mcfg
			auprc, err := tc.trainAndEval(ctx, tc.curation, spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s: %w", name, arch.kind, err)
			}
			*arch.dst = tc.relative(auprc)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFusion writes the rows as a markdown table.
func RenderFusion(w io.Writer, rows []FusionRow) {
	fmt.Fprintln(w, "| Task | Early | Intermediate | DeViSE | Early/Inter | Early/DeViSE |")
	fmt.Fprintln(w, "|------|------:|-------------:|-------:|------------:|-------------:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %.2f | %.2f× | %.2f× |\n",
			r.Task, r.Early, r.Intermediate, r.DeViSE,
			ratio(r.Early, r.Intermediate), ratio(r.Early, r.DeViSE))
	}
}

// LFGenResult compares automatically mined LFs against simulated-expert LFs
// on one task (paper §6.7.1). CorpusExamined captures the paper's central
// asymmetry: the miner scans the full labeled corpus, the expert a small
// sample; wall-clock authoring time cannot be reproduced and is reported as
// this coverage asymmetry instead (see DESIGN.md).
type LFGenResult struct {
	Source         string
	LFCount        int
	CorpusExamined int
	// Weak-supervision label quality on the unlabeled image corpus,
	// against hidden ground truth.
	Precision, Recall, F1, Coverage float64
	// EndAUPRC is the baseline-relative AUPRC of the cross-modal model
	// trained on these labels.
	EndAUPRC float64
}

// LFGeneration runs the mined-vs-expert comparison for one task. Both
// variants run without label propagation so the comparison isolates LF
// authorship.
func (s *Suite) LFGeneration(ctx context.Context, taskName string) ([]LFGenResult, error) {
	tc, err := s.ctxFor(ctx, taskName)
	if err != nil {
		return nil, err
	}
	cur := tc.curation
	lfSchema := tc.pipe.Library().Schema().Sets(resource.ABCD...)
	textVecs := maskVectors(cur.TextVecs, lfSchema)
	imageVecs := maskVectors(cur.ImageVecs, lfSchema)
	mrCfg := mapreduce.Config{Workers: s.cfg.Workers}

	var out []LFGenResult
	for _, source := range []string{"mined", "expert"} {
		var lfs []*lf.LF
		examined := len(textVecs)
		switch source {
		case "mined":
			mined, _, err := mining.Mine(ctx, mrCfg, mining.DefaultConfig(), textVecs, cur.TextLabels)
			if err != nil {
				return nil, err
			}
			lfs = mined
		case "expert":
			expert := lf.DefaultExpert()
			examined = expert.SampleSize
			rng := xrand.New(s.cfg.Seed ^ 0xe4be27)
			authored, err := expert.Develop(textVecs, cur.TextLabels, rng)
			if err != nil {
				return nil, fmt.Errorf("experiments: expert LFs: %w", err)
			}
			lfs = authored
		}
		devMatrix, err := lf.Apply(ctx, mrCfg, lfs, textVecs)
		if err != nil {
			return nil, err
		}
		matrix, err := lf.Apply(ctx, mrCfg, lfs, imageVecs)
		if err != nil {
			return nil, err
		}
		lm, err := labelmodel.FitSupervised(ctx, devMatrix, cur.TextLabels, labelmodel.Config{
			ClassBalance: metrics.BaseRate(cur.TextLabels),
		})
		if err != nil {
			return nil, err
		}
		probs, err := lm.Predict(matrix)
		if err != nil {
			return nil, err
		}
		covered := labelmodel.Covered(matrix)
		res := LFGenResult{
			Source:         source,
			LFCount:        len(lfs),
			CorpusExamined: examined,
			Coverage:       metrics.Coverage(flattenVotes(matrix)),
		}
		res.Precision, res.Recall, res.F1 = wsAgainstTruth(probs, covered, tc.ds.UnlabeledImage)

		// Train the cross-modal end model on this curation variant.
		variant := *cur
		variant.ProbLabels = probs
		variant.Covered = covered
		auprc, err := tc.trainAndEval(ctx, &variant, tc.pipe.DefaultTrainSpec())
		if err != nil {
			return nil, err
		}
		res.EndAUPRC = tc.relative(auprc)
		out = append(out, res)
	}
	return out, nil
}

// flattenVotes returns one per-point vote summary (non-abstain if any LF
// voted) for coverage computation.
func flattenVotes(m *lf.Matrix) []int8 {
	out := make([]int8, m.NumPoints())
	for i, row := range m.Votes {
		for _, v := range row {
			if v != 0 {
				out[i] = 1
				break
			}
		}
	}
	return out
}

// wsAgainstTruth mirrors the pipeline's WS quality diagnostic.
func wsAgainstTruth(probs []float64, covered []bool, pts []*synth.Point) (precision, recall, f1 float64) {
	var c metrics.Confusion
	for i, pt := range pts {
		if !covered[i] {
			if pt.Label > 0 {
				c.FN++
			} else {
				c.TN++
			}
			continue
		}
		pred := int8(-1)
		if probs[i] >= 0.5 {
			pred = 1
		}
		c.Add(pt.Label, pred)
	}
	return c.Precision(), c.Recall(), c.F1()
}

// RenderLFGen writes the comparison as a markdown table.
func RenderLFGen(w io.Writer, rows []LFGenResult) {
	fmt.Fprintln(w, "| Source | LFs | Corpus examined | WS precision | WS recall | WS F1 | Coverage | End AUPRC |")
	fmt.Fprintln(w, "|--------|----:|----------------:|-------------:|----------:|------:|---------:|----------:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d | %d | %.3f | %.3f | %.3f | %.3f | %.2f |\n",
			r.Source, r.LFCount, r.CorpusExamined, r.Precision, r.Recall, r.F1, r.Coverage, r.EndAUPRC)
	}
}

// RawVsFeaturesResult compares the organizational-resource feature space
// against the raw pre-trained embedding (paper §6.6: the curated features
// outperform a CNN-materialized embedding by up to 1.54×).
type RawVsFeaturesResult struct {
	Task       string
	Features   float64 // relative AUPRC, fully supervised image model on ABCD features
	RawOnly    float64 // relative AUPRC of the embedding-only model (1.0 by construction)
	FeatureAdv float64 // Features / RawOnly
}

// RawVsFeatures trains a fully supervised image model on the service
// features (plus image-specific ones) against the embedding-only baseline.
func (s *Suite) RawVsFeatures(ctx context.Context, taskName string) (RawVsFeaturesResult, error) {
	tc, err := s.ctxFor(ctx, taskName)
	if err != nil {
		return RawVsFeaturesResult{}, err
	}
	schema := tc.pipe.SchemaFor(resource.ABCD, true, false)
	pred, err := tc.pipe.TrainSupervised(ctx, tc.ds.HandLabelPool, schema, endModelConfig(0))
	if err != nil {
		return RawVsFeaturesResult{}, err
	}
	features := tc.relative(tc.evaluate(ctx, pred))
	return RawVsFeaturesResult{
		Task:       taskName,
		Features:   features,
		RawOnly:    1.0,
		FeatureAdv: features,
	}, nil
}

// RenderRawVsFeatures writes the comparison.
func RenderRawVsFeatures(w io.Writer, r RawVsFeaturesResult) {
	fmt.Fprintf(w, "Fully supervised image models on %s: service features %.2f vs raw embedding %.2f (features %.2f× better)\n",
		r.Task, r.Features, r.RawOnly, r.FeatureAdv)
}
