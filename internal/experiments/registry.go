package experiments

import (
	"context"
	"fmt"
	"io"
)

// Experiment is one named, runnable unit of the paper's evaluation: it
// computes its result through a Suite and renders it as markdown.
type Experiment struct {
	// Name is the selector used by the -run flag (e.g. "table2").
	Name string
	// Title is the markdown section heading.
	Title string
	// Run computes and renders the experiment. tasks is the task subset for
	// multi-task experiments; single-task experiments (the figures and the
	// CT1 case studies) run on tasks[0].
	Run func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error
}

// Manifest declares every experiment in presentation order. cmd/experiments
// dispatches from this list and the experiments test sweep executes it end
// to end, so an experiment added here is automatically runnable, listed in
// -run validation, and smoke-tested.
func Manifest() []Experiment {
	return []Experiment{
		{
			Name:  "table1",
			Title: "Table 1 — task statistics",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				rows, err := s.Table1(ctx, tasks)
				if err != nil {
					return err
				}
				RenderTable1(w, rows)
				return nil
			},
		},
		{
			Name:  "table2",
			Title: "Table 2 — end-to-end relative AUPRC and cross-over points",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				rows, err := s.Table2(ctx, tasks)
				if err != nil {
					return err
				}
				RenderTable2(w, rows)
				return nil
			},
		},
		{
			Name:  "table3",
			Title: "Table 3 — label-propagation lift",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				rows, err := s.Table3(ctx, tasks)
				if err != nil {
					return err
				}
				RenderTable3(w, rows)
				return nil
			},
		},
		{
			Name:  "figure5",
			Title: "Figure 5 — hand-label budget cross-over",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				series, err := s.Figure5(ctx, tasks[0])
				if err != nil {
					return err
				}
				RenderFigure5(w, series)
				return nil
			},
		},
		{
			Name:  "figure6",
			Title: "Figure 6 — organizational-resource factor analysis",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				steps, err := s.Figure6(ctx, tasks[0])
				if err != nil {
					return err
				}
				RenderFigure6(w, steps)
				return nil
			},
		},
		{
			Name:  "figure7",
			Title: "Figure 7 — modality lesion study",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				rows, err := s.Figure7(ctx, tasks[0])
				if err != nil {
					return err
				}
				RenderFigure7(w, rows)
				return nil
			},
		},
		{
			Name:  "fusion",
			Title: "§6.6 — fusion architecture comparison",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				rows, err := s.FusionComparison(ctx, tasks)
				if err != nil {
					return err
				}
				RenderFusion(w, rows)
				return nil
			},
		},
		{
			Name:  "lfgen",
			Title: "§6.7.1 — automatic vs expert LF generation",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				rows, err := s.LFGeneration(ctx, tasks[0])
				if err != nil {
					return err
				}
				RenderLFGen(w, rows)
				return nil
			},
		},
		{
			Name:  "ablations",
			Title: "Design-choice ablations",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				rows, err := s.Ablations(ctx, tasks[0])
				if err != nil {
					return err
				}
				RenderAblations(w, rows)
				return nil
			},
		},
		{
			Name:  "streamscale",
			Title: "Streaming curation at scale — disk-backed vs in-memory",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				res, err := s.StreamScale(ctx, tasks[0])
				if err != nil {
					return err
				}
				RenderStreamScale(w, res)
				if !res.BitIdentical {
					return fmt.Errorf("experiments: streamed curation diverged from in-memory on %s", res.Task)
				}
				return nil
			},
		},
		{
			Name:  "rawvsfeat",
			Title: "§6.6 — feature space vs raw embedding",
			Run: func(ctx context.Context, w io.Writer, s *Suite, tasks []string) error {
				res, err := s.RawVsFeatures(ctx, tasks[0])
				if err != nil {
					return err
				}
				RenderRawVsFeatures(w, res)
				return nil
			},
		},
	}
}

// ExperimentNames returns the manifest's experiment names in order.
func ExperimentNames() []string {
	m := Manifest()
	names := make([]string, len(m))
	for i, e := range m {
		names[i] = e.Name
	}
	return names
}

// LookupExperiment returns the named experiment from the manifest.
func LookupExperiment(name string) (Experiment, error) {
	for _, e := range Manifest() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, ExperimentNames())
}
