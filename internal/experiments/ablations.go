package experiments

import (
	"context"
	"fmt"
	"io"

	"crossmodal/internal/core"
)

// AblationRow reports one design-choice ablation: the full pipeline with one
// component replaced or removed, on one task.
type AblationRow struct {
	Name string
	// WSF1 is the curated labels' F1 against hidden truth.
	WSF1 float64
	// EndAUPRC is the cross-modal model's baseline-relative AUPRC.
	EndAUPRC float64
}

// Ablations runs the design-choice ablations DESIGN.md calls out, on one
// task: the dev-anchored label model vs unsupervised EM vs majority vote,
// learned vs uniform propagation-graph feature weights, LF deduplication on
// vs off, and order-1 vs order-2 itemset mining. Each variant re-runs the
// curation with a single switch flipped.
func (s *Suite) Ablations(ctx context.Context, taskName string) ([]AblationRow, error) {
	tc, err := s.ctxFor(ctx, taskName)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name   string
		modify func(*core.Options)
	}{
		{"full pipeline (default)", func(*core.Options) {}},
		{"label model: unsupervised EM", func(o *core.Options) { o.UseEMLabelModel = true }},
		{"label model: majority vote", func(o *core.Options) { o.UseGenerative = false }},
		{"graph: uniform feature weights", func(o *core.Options) { o.UniformGraphWeights = true }},
		{"LF dedup: off", func(o *core.Options) { o.DisableLFDedup = true }},
		{"mining: order-2 itemsets", func(o *core.Options) { o.Mining.MaxOrder = 2 }},
		{"no label propagation", func(o *core.Options) { o.UseLabelProp = false }},
		{"expert LFs instead of mining", func(o *core.Options) { o.LFSource = core.ExpertLFs }},
	}
	var rows []AblationRow
	for _, variant := range variants {
		opts := s.pipelineOptions()
		variant.modify(&opts)
		pipe, err := core.NewPipeline(s.lib, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", variant.name, err)
		}
		var cur *core.Curation
		if variant.name == "full pipeline (default)" {
			cur = tc.curation // reuse the cached default curation
		} else {
			cur, err = pipe.Curate(ctx, tc.ds)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %q curate: %w", variant.name, err)
			}
		}
		auprc, err := tc.trainAndEval(ctx, cur, pipe.DefaultTrainSpec())
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q train: %w", variant.name, err)
		}
		rows = append(rows, AblationRow{
			Name:     variant.name,
			WSF1:     cur.Report.WSF1,
			EndAUPRC: tc.relative(auprc),
		})
	}
	return rows, nil
}

// RenderAblations writes the rows as a markdown table.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "| Variant | WS label F1 | End AUPRC |")
	fmt.Fprintln(w, "|---------|------------:|----------:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %.3f | %.2f |\n", r.Name, r.WSF1, r.EndAUPRC)
	}
}
