// Package metrics implements the evaluation metrics the paper reports:
// area under the precision-recall curve (AUPRC, the headline offline metric,
// §6.3), precision / recall / F1 at a threshold, coverage, and relative
// AUPRC against a baseline model.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Confusion counts binary outcomes at a fixed decision threshold.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (label, prediction) outcome; labels and predictions are
// +1 / -1.
func (c *Confusion) Add(label, pred int8) {
	switch {
	case label > 0 && pred > 0:
		c.TP++
	case label > 0:
		c.FN++
	case pred > 0:
		c.FP++
	default:
		c.TN++
	}
}

// Precision returns TP / (TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP+FN), or 0 when there are no true positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 if both are 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct outcomes.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// String renders the counts compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d p=%.3f r=%.3f f1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// Evaluate builds a confusion matrix from parallel label/prediction slices.
// It panics on length mismatch — a programming error.
func Evaluate(labels, preds []int8) Confusion {
	if len(labels) != len(preds) {
		panic(fmt.Sprintf("metrics: %d labels vs %d predictions", len(labels), len(preds)))
	}
	var c Confusion
	for i := range labels {
		c.Add(labels[i], preds[i])
	}
	return c
}

// PRPoint is one operating point on a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision-recall curve by sweeping the decision
// threshold over the distinct scores, highest first. Ties in score are
// handled jointly (all points at a score enter together). NaN scores rank
// below every real score and form a single tie group of their own — a
// scorer that emits NaN has abstained as hard as possible, so those points
// enter the curve last rather than poisoning the sweep. It panics on length
// mismatch and returns nil when there are no positive labels.
func PRCurve(labels []int8, scores []float64) []PRPoint {
	if len(labels) != len(scores) {
		panic(fmt.Sprintf("metrics: %d labels vs %d scores", len(labels), len(scores)))
	}
	totalPos := 0
	for _, l := range labels {
		if l > 0 {
			totalPos++
		}
	}
	if totalPos == 0 || len(labels) == 0 {
		return nil
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if math.IsNaN(sa) {
			return false // NaN sinks to the end
		}
		if math.IsNaN(sb) {
			return true
		}
		return sa > sb
	})

	var curve []PRPoint
	tp, fp := 0, 0
	i := 0
	for i < len(idx) {
		j := i
		threshold := scores[idx[i]]
		// sameScore must treat NaN as tied with NaN, or the group would be
		// empty and the sweep would never advance.
		for j < len(idx) && (scores[idx[j]] == threshold ||
			(math.IsNaN(threshold) && math.IsNaN(scores[idx[j]]))) {
			if labels[idx[j]] > 0 {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, PRPoint{
			Threshold: threshold,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalPos),
		})
		i = j
	}
	return curve
}

// AUPRC returns the area under the precision-recall curve computed by the
// average-precision estimator: sum over curve steps of precision × Δrecall.
// Returns 0 when there are no positive labels.
func AUPRC(labels []int8, scores []float64) float64 {
	curve := PRCurve(labels, scores)
	if curve == nil {
		return 0
	}
	var area, prevRecall float64
	for _, pt := range curve {
		area += pt.Precision * (pt.Recall - prevRecall)
		prevRecall = pt.Recall
	}
	return area
}

// BestF1 returns the maximum F1 over all thresholds of the PR curve and the
// threshold attaining it.
func BestF1(labels []int8, scores []float64) (f1, threshold float64) {
	for _, pt := range PRCurve(labels, scores) {
		if pt.Precision+pt.Recall == 0 {
			continue
		}
		f := 2 * pt.Precision * pt.Recall / (pt.Precision + pt.Recall)
		if f > f1 {
			f1, threshold = f, pt.Threshold
		}
	}
	return f1, threshold
}

// Relative expresses value as a multiple of baseline, the form in which the
// paper reports every AUPRC (relative to the fully supervised
// embeddings-only image model). A non-positive baseline yields 0.
func Relative(value, baseline float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return value / baseline
}

// BootstrapAUPRC returns the mean and approximate 95% confidence interval of
// AUPRC over rounds bootstrap resamples.
func BootstrapAUPRC(labels []int8, scores []float64, rounds int, seed int64) (mean, lo, hi float64) {
	if rounds <= 0 || len(labels) == 0 {
		return 0, 0, 0
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, 0, rounds)
	rl := make([]int8, len(labels))
	rs := make([]float64, len(scores))
	for r := 0; r < rounds; r++ {
		for i := range rl {
			j := rng.Intn(len(labels))
			rl[i], rs[i] = labels[j], scores[j]
		}
		vals = append(vals, AUPRC(rl, rs))
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	loIdx := int(0.025 * float64(rounds))
	hiIdx := int(0.975*float64(rounds)) - 1
	if hiIdx < 0 {
		hiIdx = 0
	}
	return sum / float64(rounds), vals[loIdx], vals[hiIdx]
}

// Coverage returns the fraction of votes that are non-abstaining (non-zero),
// the weak-supervision coverage metric (paper §4.1).
func Coverage(votes []int8) float64 {
	if len(votes) == 0 {
		return 0
	}
	n := 0
	for _, v := range votes {
		if v != 0 {
			n++
		}
	}
	return float64(n) / float64(len(votes))
}

// BaseRate returns the fraction of positive labels; a random classifier's
// expected AUPRC.
func BaseRate(labels []int8) float64 {
	if len(labels) == 0 {
		return 0
	}
	n := 0
	for _, l := range labels {
		if l > 0 {
			n++
		}
	}
	return float64(n) / float64(len(labels))
}

// CrossEntropy returns the mean binary cross-entropy of probabilistic
// predictions probs against soft targets (both in [0,1]), clamping
// probabilities away from {0,1} for stability. It panics on length mismatch.
func CrossEntropy(targets, probs []float64) float64 {
	if len(targets) != len(probs) {
		panic(fmt.Sprintf("metrics: %d targets vs %d probs", len(targets), len(probs)))
	}
	if len(targets) == 0 {
		return 0
	}
	const eps = 1e-12
	var sum float64
	for i, y := range targets {
		p := math.Min(math.Max(probs[i], eps), 1-eps)
		sum -= y*math.Log(p) + (1-y)*math.Log(1-p)
	}
	return sum / float64(len(targets))
}
