package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusion(t *testing.T) {
	var c Confusion
	// 2 TP, 1 FP, 1 FN, 3 TN
	pairs := [][2]int8{{1, 1}, {1, 1}, {-1, 1}, {1, -1}, {-1, -1}, {-1, -1}, {-1, -1}}
	for _, p := range pairs {
		c.Add(p[0], p[1])
	}
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 3 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-5.0/7) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestConfusionZeroDivision(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should yield all zeros")
	}
}

func TestEvaluate(t *testing.T) {
	c := Evaluate([]int8{1, -1}, []int8{1, 1})
	if c.TP != 1 || c.FP != 1 {
		t.Errorf("Evaluate = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Evaluate([]int8{1}, nil)
}

func TestAUPRCPerfectClassifier(t *testing.T) {
	labels := []int8{1, 1, -1, -1, -1}
	scores := []float64{0.9, 0.8, 0.3, 0.2, 0.1}
	if got := AUPRC(labels, scores); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AUPRC = %v, want 1", got)
	}
}

func TestAUPRCWorstClassifier(t *testing.T) {
	labels := []int8{-1, -1, -1, -1, 1}
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.1}
	// The single positive is ranked last: precision at its recall step is 1/5.
	if got := AUPRC(labels, scores); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("worst AUPRC = %v, want 0.2", got)
	}
}

func TestAUPRCRandomApproachesBaseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	labels := make([]int8, n)
	scores := make([]float64, n)
	for i := range labels {
		if rng.Float64() < 0.1 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
		scores[i] = rng.Float64()
	}
	got := AUPRC(labels, scores)
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("random AUPRC = %v, want ≈ base rate 0.1", got)
	}
}

func TestAUPRCNoPositives(t *testing.T) {
	if got := AUPRC([]int8{-1, -1}, []float64{0.5, 0.6}); got != 0 {
		t.Errorf("no-positive AUPRC = %v, want 0", got)
	}
	if got := AUPRC(nil, nil); got != 0 {
		t.Errorf("empty AUPRC = %v, want 0", got)
	}
}

func TestAUPRCTieHandling(t *testing.T) {
	// All scores identical: a single step with precision = base rate.
	labels := []int8{1, -1, -1, -1}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	if got := AUPRC(labels, scores); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("tied AUPRC = %v, want 0.25", got)
	}
}

func TestAUPRCBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		labels := make([]int8, len(raw))
		scores := make([]float64, len(raw))
		hasPos := false
		for i, r := range raw {
			if r%3 == 0 {
				labels[i] = 1
				hasPos = true
			} else {
				labels[i] = -1
			}
			scores[i] = float64(r%97) / 97
		}
		a := AUPRC(labels, scores)
		if !hasPos {
			return a == 0
		}
		return a >= 0 && a <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := make([]int8, 500)
	scores := make([]float64, 500)
	for i := range labels {
		labels[i] = int8(1 - 2*(rng.Intn(2)))
		scores[i] = rng.NormFloat64()
	}
	curve := PRCurve(labels, scores)
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatal("recall must be nondecreasing along the curve")
		}
		if curve[i].Threshold >= curve[i-1].Threshold {
			t.Fatal("thresholds must strictly decrease")
		}
	}
	if last := curve[len(curve)-1].Recall; math.Abs(last-1) > 1e-12 {
		t.Errorf("final recall = %v, want 1", last)
	}
}

func TestBestF1(t *testing.T) {
	labels := []int8{1, 1, -1, -1}
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	f1, thr := BestF1(labels, scores)
	if math.Abs(f1-1) > 1e-12 {
		t.Errorf("best F1 = %v, want 1", f1)
	}
	if thr != 0.8 {
		t.Errorf("best threshold = %v, want 0.8", thr)
	}
}

func TestRelative(t *testing.T) {
	if got := Relative(1.5, 1.0); got != 1.5 {
		t.Errorf("Relative = %v", got)
	}
	if got := Relative(1.5, 0); got != 0 {
		t.Errorf("Relative with zero baseline = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	if got := Coverage([]int8{1, 0, -1, 0}); got != 0.5 {
		t.Errorf("Coverage = %v, want 0.5", got)
	}
	if got := Coverage(nil); got != 0 {
		t.Errorf("Coverage(nil) = %v", got)
	}
}

func TestBaseRate(t *testing.T) {
	if got := BaseRate([]int8{1, -1, -1, -1}); got != 0.25 {
		t.Errorf("BaseRate = %v", got)
	}
}

func TestCrossEntropy(t *testing.T) {
	// Perfect confident predictions approach zero loss.
	if got := CrossEntropy([]float64{1, 0}, []float64{1, 0}); got > 1e-9 {
		t.Errorf("perfect CE = %v", got)
	}
	// Uniform predictions give ln 2.
	if got := CrossEntropy([]float64{1, 0}, []float64{0.5, 0.5}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("uniform CE = %v, want ln2", got)
	}
	// Soft targets are supported.
	got := CrossEntropy([]float64{0.7}, []float64{0.7})
	want := -(0.7*math.Log(0.7) + 0.3*math.Log(0.3))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("soft CE = %v, want %v", got, want)
	}
}

func TestBootstrapAUPRC(t *testing.T) {
	labels := []int8{1, 1, 1, -1, -1, -1, -1, -1}
	scores := []float64{0.9, 0.8, 0.4, 0.6, 0.3, 0.2, 0.1, 0.05}
	mean, lo, hi := BootstrapAUPRC(labels, scores, 200, 1)
	if !(lo <= mean && mean <= hi) {
		t.Errorf("bootstrap ordering violated: lo=%v mean=%v hi=%v", lo, mean, hi)
	}
	point := AUPRC(labels, scores)
	if math.Abs(mean-point) > 0.2 {
		t.Errorf("bootstrap mean %v far from point estimate %v", mean, point)
	}
	if m, _, _ := BootstrapAUPRC(nil, nil, 10, 1); m != 0 {
		t.Error("empty bootstrap should be 0")
	}
}
