package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusion(t *testing.T) {
	var c Confusion
	// 2 TP, 1 FP, 1 FN, 3 TN
	pairs := [][2]int8{{1, 1}, {1, 1}, {-1, 1}, {1, -1}, {-1, -1}, {-1, -1}, {-1, -1}}
	for _, p := range pairs {
		c.Add(p[0], p[1])
	}
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 3 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-5.0/7) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestConfusionZeroDivision(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should yield all zeros")
	}
}

func TestEvaluate(t *testing.T) {
	c := Evaluate([]int8{1, -1}, []int8{1, 1})
	if c.TP != 1 || c.FP != 1 {
		t.Errorf("Evaluate = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Evaluate([]int8{1}, nil)
}

func TestAUPRCPerfectClassifier(t *testing.T) {
	labels := []int8{1, 1, -1, -1, -1}
	scores := []float64{0.9, 0.8, 0.3, 0.2, 0.1}
	if got := AUPRC(labels, scores); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AUPRC = %v, want 1", got)
	}
}

func TestAUPRCWorstClassifier(t *testing.T) {
	labels := []int8{-1, -1, -1, -1, 1}
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.1}
	// The single positive is ranked last: precision at its recall step is 1/5.
	if got := AUPRC(labels, scores); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("worst AUPRC = %v, want 0.2", got)
	}
}

func TestAUPRCRandomApproachesBaseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	labels := make([]int8, n)
	scores := make([]float64, n)
	for i := range labels {
		if rng.Float64() < 0.1 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
		scores[i] = rng.Float64()
	}
	got := AUPRC(labels, scores)
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("random AUPRC = %v, want ≈ base rate 0.1", got)
	}
}

func TestAUPRCNoPositives(t *testing.T) {
	if got := AUPRC([]int8{-1, -1}, []float64{0.5, 0.6}); got != 0 {
		t.Errorf("no-positive AUPRC = %v, want 0", got)
	}
	if got := AUPRC(nil, nil); got != 0 {
		t.Errorf("empty AUPRC = %v, want 0", got)
	}
}

func TestAUPRCTieHandling(t *testing.T) {
	// All scores identical: a single step with precision = base rate.
	labels := []int8{1, -1, -1, -1}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	if got := AUPRC(labels, scores); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("tied AUPRC = %v, want 0.25", got)
	}
}

func TestAUPRCBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		labels := make([]int8, len(raw))
		scores := make([]float64, len(raw))
		hasPos := false
		for i, r := range raw {
			if r%3 == 0 {
				labels[i] = 1
				hasPos = true
			} else {
				labels[i] = -1
			}
			scores[i] = float64(r%97) / 97
		}
		a := AUPRC(labels, scores)
		if !hasPos {
			return a == 0
		}
		return a >= 0 && a <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := make([]int8, 500)
	scores := make([]float64, 500)
	for i := range labels {
		labels[i] = int8(1 - 2*(rng.Intn(2)))
		scores[i] = rng.NormFloat64()
	}
	curve := PRCurve(labels, scores)
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatal("recall must be nondecreasing along the curve")
		}
		if curve[i].Threshold >= curve[i-1].Threshold {
			t.Fatal("thresholds must strictly decrease")
		}
	}
	if last := curve[len(curve)-1].Recall; math.Abs(last-1) > 1e-12 {
		t.Errorf("final recall = %v, want 1", last)
	}
}

func TestBestF1(t *testing.T) {
	labels := []int8{1, 1, -1, -1}
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	f1, thr := BestF1(labels, scores)
	if math.Abs(f1-1) > 1e-12 {
		t.Errorf("best F1 = %v, want 1", f1)
	}
	if thr != 0.8 {
		t.Errorf("best threshold = %v, want 0.8", thr)
	}
}

func TestRelative(t *testing.T) {
	if got := Relative(1.5, 1.0); got != 1.5 {
		t.Errorf("Relative = %v", got)
	}
	if got := Relative(1.5, 0); got != 0 {
		t.Errorf("Relative with zero baseline = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	if got := Coverage([]int8{1, 0, -1, 0}); got != 0.5 {
		t.Errorf("Coverage = %v, want 0.5", got)
	}
	if got := Coverage(nil); got != 0 {
		t.Errorf("Coverage(nil) = %v", got)
	}
}

func TestBaseRate(t *testing.T) {
	if got := BaseRate([]int8{1, -1, -1, -1}); got != 0.25 {
		t.Errorf("BaseRate = %v", got)
	}
}

func TestCrossEntropy(t *testing.T) {
	// Perfect confident predictions approach zero loss.
	if got := CrossEntropy([]float64{1, 0}, []float64{1, 0}); got > 1e-9 {
		t.Errorf("perfect CE = %v", got)
	}
	// Uniform predictions give ln 2.
	if got := CrossEntropy([]float64{1, 0}, []float64{0.5, 0.5}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("uniform CE = %v, want ln2", got)
	}
	// Soft targets are supported.
	got := CrossEntropy([]float64{0.7}, []float64{0.7})
	want := -(0.7*math.Log(0.7) + 0.3*math.Log(0.3))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("soft CE = %v, want %v", got, want)
	}
}

func TestBootstrapAUPRC(t *testing.T) {
	labels := []int8{1, 1, 1, -1, -1, -1, -1, -1}
	scores := []float64{0.9, 0.8, 0.4, 0.6, 0.3, 0.2, 0.1, 0.05}
	mean, lo, hi := BootstrapAUPRC(labels, scores, 200, 1)
	if !(lo <= mean && mean <= hi) {
		t.Errorf("bootstrap ordering violated: lo=%v mean=%v hi=%v", lo, mean, hi)
	}
	point := AUPRC(labels, scores)
	if math.Abs(mean-point) > 0.2 {
		t.Errorf("bootstrap mean %v far from point estimate %v", mean, point)
	}
	if m, _, _ := BootstrapAUPRC(nil, nil, 10, 1); m != 0 {
		t.Error("empty bootstrap should be 0")
	}
}

// Edge-case coverage for the curves the serving canary validation reuses
// (internal/serve validates reloaded models on a labeled canary batch).

func TestPRCurveEmptyInput(t *testing.T) {
	if got := PRCurve(nil, nil); got != nil {
		t.Errorf("empty PRCurve = %v, want nil", got)
	}
	if got := AUPRC(nil, nil); got != 0 {
		t.Errorf("empty AUPRC = %v, want 0", got)
	}
	if f1, th := BestF1(nil, nil); f1 != 0 || th != 0 {
		t.Errorf("empty BestF1 = %v @ %v, want 0 @ 0", f1, th)
	}
}

func TestPRCurveSingleClass(t *testing.T) {
	// All-negative labels: no positives → nil curve, 0 AUPRC.
	if got := PRCurve([]int8{-1, -1, -1}, []float64{0.1, 0.5, 0.9}); got != nil {
		t.Errorf("all-negative PRCurve = %v, want nil", got)
	}
	// All-positive labels: precision pinned at 1 for every threshold.
	curve := PRCurve([]int8{1, 1, 1}, []float64{0.9, 0.5, 0.1})
	if len(curve) != 3 {
		t.Fatalf("all-positive curve has %d points, want 3", len(curve))
	}
	for _, pt := range curve {
		if pt.Precision != 1 {
			t.Errorf("all-positive precision = %v at threshold %v", pt.Precision, pt.Threshold)
		}
	}
	if last := curve[len(curve)-1]; last.Recall != 1 {
		t.Errorf("all-positive final recall = %v, want 1", last.Recall)
	}
	if auc := AUPRC([]int8{1, 1, 1}, []float64{0.9, 0.5, 0.1}); auc != 1 {
		t.Errorf("all-positive AUPRC = %v, want 1", auc)
	}
}

func TestPRCurveNaNScores(t *testing.T) {
	// Before the NaN fix this looped forever: NaN == NaN is false, so the
	// tie-group scan never advanced. NaN scores now sink below every real
	// score as one tie group.
	nan := math.NaN()
	labels := []int8{1, -1, 1, -1}
	scores := []float64{0.9, 0.4, nan, nan}
	curve := PRCurve(labels, scores)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3 (0.9, 0.4, NaN group): %v", len(curve), curve)
	}
	if curve[0].Threshold != 0.9 || curve[0].Precision != 1 {
		t.Errorf("first point %+v, want threshold 0.9 precision 1", curve[0])
	}
	if !math.IsNaN(curve[2].Threshold) {
		t.Errorf("last threshold %v, want NaN group", curve[2].Threshold)
	}
	if curve[2].Recall != 1 {
		t.Errorf("final recall %v, want 1 (NaN points still counted)", curve[2].Recall)
	}
	// All-NaN scores: one tie group holding everything.
	curve = PRCurve([]int8{1, -1}, []float64{nan, nan})
	if len(curve) != 1 || curve[0].Recall != 1 || curve[0].Precision != 0.5 {
		t.Errorf("all-NaN curve = %+v, want one point r=1 p=0.5", curve)
	}
	// AUPRC must stay finite with NaNs present.
	if auc := AUPRC(labels, scores); math.IsNaN(auc) || auc < 0 || auc > 1 {
		t.Errorf("AUPRC with NaN scores = %v, want finite in [0,1]", auc)
	}
}

func TestConfusionEmptyAndSingleClass(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Errorf("zero confusion should report all-zero metrics: %v", c)
	}
	// Single-class all-negative stream: everything lands in TN/FP.
	neg := Evaluate([]int8{-1, -1, -1}, []int8{-1, 1, -1})
	if neg.TP != 0 || neg.FN != 0 || neg.TN != 2 || neg.FP != 1 {
		t.Errorf("all-negative confusion = %+v", neg)
	}
	if neg.Recall() != 0 || neg.F1() != 0 {
		t.Errorf("all-negative recall/F1 should be 0: %v", neg)
	}
	// Single-class all-positive stream: everything lands in TP/FN.
	pos := Evaluate([]int8{1, 1, 1}, []int8{1, -1, 1})
	if pos.TP != 2 || pos.FN != 1 || pos.FP != 0 || pos.TN != 0 {
		t.Errorf("all-positive confusion = %+v", pos)
	}
	if pos.Precision() != 1 {
		t.Errorf("all-positive precision = %v, want 1", pos.Precision())
	}
}
