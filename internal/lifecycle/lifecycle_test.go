package lifecycle

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossmodal/internal/core"
	"crossmodal/internal/faulty"
	"crossmodal/internal/featurestore"
	"crossmodal/internal/fusion"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/serve"
	"crossmodal/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// Episode geometry shared by every test: the cmd/lifecycle defaults, so the
// golden log pins the same episode an operator's first `lifecycle` run
// replays.
const (
	epSeed        = 17
	epWindow      = 300
	epWindows     = 8
	epDriftWindow = 3
	epShift       = 2.5
	epDecay       = 0.35
)

// episode is one fully wired drift episode: drifting traffic, a serving
// stack replaying it, a pipeline for retraining, and a bootstrap incumbent
// installed through the registry.
type episode struct {
	traffic  *synth.Traffic
	store    *featurestore.Store
	pipe     *core.Pipeline
	srv      *serve.Server
	ts       *httptest.Server
	inc      fusion.Predictor
	bootPath string
	dir      string
}

type epOpts struct {
	simDrift bool
	// pipeLib, when set, builds the retraining pipeline over this library
	// instead of the serving one (the chaos test wraps it with fault
	// injection so only retraining sees the failures).
	pipeLib *resource.Library
}

func newEpisode(t *testing.T, o epOpts) *episode {
	t.Helper()
	task, err := synth.TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}
	world := synth.MustWorld(synth.DefaultConfig())
	sched := synth.DriftSchedule{Seed: epSeed, Epochs: []synth.Epoch{{N: epWindows * epWindow}}}
	if o.simDrift {
		sched.Epochs = []synth.Epoch{
			{N: epDriftWindow * epWindow},
			{N: (epWindows - epDriftWindow) * epWindow, TopicShift: epShift, URLShift: epShift * 0.75, Decay: epDecay},
		}
	}
	traffic, err := synth.NewTraffic(world, task, sched)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	store, err := featurestore.New(lib, 65536)
	if err != nil {
		t.Fatal(err)
	}
	pipeLib := o.pipeLib
	if pipeLib == nil {
		pipeLib = lib
	}
	opts := core.DefaultOptions()
	opts.StreamMining = true
	opts.Workers = 1
	opts.Seed = epSeed
	opts.MaxGraphSeeds = 1200
	opts.GraphDevNodes = 500
	opts.Graph.MaxCandidates = 120
	opts.Model = model.Config{Epochs: 5, LearningRate: 0.02, Seed: epSeed, Workers: 1}
	pipe, err := core.NewPipeline(pipeLib, opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ds, err := traffic.FreshDataset(0, epDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := pipe.Curate(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := pipe.Train(ctx, cur, pipe.DefaultTrainSpec())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bootPath := filepath.Join(dir, "bootstrap.xma")
	if err := fusion.SaveFileLineage(bootPath, inc, &fusion.Lineage{
		Task: task.Name, Trigger: "bootstrap", Seed: epSeed,
	}); err != nil {
		t.Fatal(err)
	}

	canary := make([]*synth.Point, 48)
	for i := range canary {
		canary[i] = traffic.Point(1<<30 + i)
	}
	srv, err := serve.New(serve.Config{
		Store:   store,
		World:   world,
		Seed:    epSeed,
		Workers: 1,
		PointSource: func(id int, _ synth.Modality, _ int) *synth.Point {
			return traffic.Point(id)
		},
	}, canary)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if _, err := srv.Registry().LoadArtifact(bootPath); err != nil {
		t.Fatal(err)
	}
	return &episode{
		traffic: traffic, store: store, pipe: pipe, srv: srv, ts: ts,
		inc: inc, bootPath: bootPath, dir: dir,
	}
}

// epDatasetConfig mirrors cmd/lifecycle's -scale 0.05 sizing.
func epDatasetConfig() synth.DatasetConfig {
	cfg := synth.DefaultDatasetConfig()
	cfg.Seed = epSeed
	cfg.NumText = 1000
	cfg.NumUnlabeledImage = 400
	cfg.NumHandLabelPool = 400
	cfg.NumTest = 250
	return cfg
}

func (ep *episode) controllerConfig() Config {
	return Config{
		Traffic:       ep.traffic,
		Store:         ep.store,
		Pipe:          ep.pipe,
		BaseURL:       ep.ts.URL,
		Incumbent:     ep.inc,
		IncumbentPath: ep.bootPath,
		WindowSize:    epWindow,
		Retrain:       epDatasetConfig(),
		ArtifactDir:   ep.dir,
		Seed:          epSeed,
	}
}

// TestLifecycleGolden replays the fixed-seed drift episode end to end and
// pins the complete event log against testdata/golden_lifecycle.json. Run
// with -update to rewrite the golden after an intentional behavior change.
func TestLifecycleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ep := newEpisode(t, epOpts{simDrift: true})
	ctrl, err := New(ep.controllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if res.Detections == 0 {
		t.Fatal("injected drift was never detected")
	}
	if res.Promotions == 0 {
		t.Fatal("no candidate was promoted")
	}
	if res.FinalSeq < 2 {
		t.Fatalf("final seq %d, want >= 2 (bootstrap is seq 1)", res.FinalSeq)
	}

	// The hot swap must be visible in the serving registry, carrying the
	// drift lineage.
	cur := ep.srv.Registry().Current()
	if cur == nil {
		t.Fatal("registry empty after run")
	}
	if cur.Seq != res.FinalSeq {
		t.Errorf("registry seq %d != result final seq %d", cur.Seq, res.FinalSeq)
	}
	if cur.Lineage == nil {
		t.Fatal("promoted artifact lost its lineage")
	}
	if !strings.HasPrefix(cur.Lineage.Trigger, "drift:") {
		t.Errorf("promoted lineage trigger %q, want drift:*", cur.Lineage.Trigger)
	}
	if cur.Lineage.Parent != ep.bootPath {
		t.Errorf("promoted lineage parent %q, want %q", cur.Lineage.Parent, ep.bootPath)
	}

	got, err := json.MarshalIndent(res.Events, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "golden_lifecycle.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("event log deviates from golden (run with -update if intentional)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLifecycleZeroDriftStaysQuiet is the control arm: on a static world the
// controller must never retrain — the false-alarm budget of the detectors
// composed with the Consecutive streak requirement.
func TestLifecycleZeroDriftStaysQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ep := newEpisode(t, epOpts{simDrift: false})
	ctrl, err := New(ep.controllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections != 0 || res.Retrains != 0 || res.Promotions != 0 {
		t.Fatalf("static world: detections=%d retrains=%d promotions=%d, want all zero\nevents: %+v",
			res.Detections, res.Retrains, res.Promotions, res.Events)
	}
	for _, e := range res.Events {
		if e.Type != EventReference {
			t.Errorf("unexpected %s event on static world: %+v", e.Type, e)
		}
	}
	if got := ep.srv.Registry().Current().Seq; got != 1 {
		t.Errorf("registry seq %d after quiet run, want 1 (bootstrap untouched)", got)
	}
}

// TestLifecycleCrashMidRetrainConverges is the chaos rider's crash arm: the
// first two training attempts at the first tripped window die (simulated
// process crash before any artifact is written). The incumbent must keep
// serving, the failures must be logged, and the controller must converge on
// the retry.
func TestLifecycleCrashMidRetrainConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ep := newEpisode(t, epOpts{simDrift: true})
	cfg := ep.controllerConfig()
	var crashes int
	firstTrip := -1
	cfg.RetrainHook = func(window, attempt int) error {
		if firstTrip < 0 {
			firstTrip = window
		}
		if window == firstTrip && attempt <= 2 {
			crashes++
			return fmt.Errorf("simulated crash mid-retrain")
		}
		return nil
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if crashes != 2 {
		t.Fatalf("hook crashed %d times, want 2", crashes)
	}
	var errEvents, retrainEvents int
	for _, e := range res.Events {
		switch e.Type {
		case EventRetrainError:
			errEvents++
		case EventRetrain:
			retrainEvents++
		}
	}
	if errEvents != 2 {
		t.Errorf("%d retrain-error events, want 2", errEvents)
	}
	if retrainEvents == 0 {
		t.Error("controller never recovered with a successful retrain")
	}
	if res.Promotions == 0 {
		t.Error("controller did not converge to a promotion after crashes")
	}
	// The incumbent was never displaced by a crashed attempt: every serving
	// generation in the registry came from a completed, checksummed artifact.
	cur := ep.srv.Registry().Current()
	if cur == nil {
		t.Fatal("registry empty after chaos run")
	}
	if _, _, _, err := fusion.LoadFileLineage(cur.Path); err != nil {
		t.Errorf("serving artifact %s does not load cleanly: %v", cur.Path, err)
	}
}

// TestLifecycleFaultyResourcesKeepServing is the chaos rider's resource arm:
// the retraining pipeline's library browns out (errors degrade observations
// to missing, partial responses truncate them) while the serving stack stays
// healthy. The loop must complete without error, the incumbent must never
// stop serving, and anything promoted must be a complete artifact.
func TestLifecycleFaultyResourcesKeepServing(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	world := synth.MustWorld(synth.DefaultConfig())
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	flib, _, err := faulty.WrapLibrary(lib, faulty.Schedule{
		Seed:        99,
		ErrorRate:   0.05,
		PartialRate: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := newEpisode(t, epOpts{simDrift: true, pipeLib: flib})
	ctrl, err := New(ep.controllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 {
		t.Error("drift not detected despite healthy serving path")
	}
	// Whether the degraded candidates pass shadow scoring is the gate's
	// call; what must hold is that serving never regressed to a partial
	// artifact and the registry stayed consistent.
	cur := ep.srv.Registry().Current()
	if cur == nil {
		t.Fatal("registry empty after chaos run")
	}
	if res.Promotions == 0 && cur.Seq != 1 {
		t.Errorf("no promotions but registry seq %d", cur.Seq)
	}
	if res.Promotions > 0 && cur.Seq < 2 {
		t.Errorf("%d promotions but registry seq %d", res.Promotions, cur.Seq)
	}
	if _, _, _, err := fusion.LoadFileLineage(cur.Path); err != nil {
		t.Errorf("serving artifact %s does not load cleanly: %v", cur.Path, err)
	}
	for _, e := range res.Events {
		if e.Type == EventPromote {
			p := filepath.Join(ep.dir, e.Detail)
			if _, _, lg, err := fusion.LoadFileLineage(p); err != nil || lg == nil {
				t.Errorf("promoted artifact %s incomplete: lineage=%v err=%v", p, lg, err)
			}
		}
	}
}

// TestControllerConfigValidation pins the fail-fast paths.
func TestControllerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	ep := Config{BaseURL: "x", ArtifactDir: "y"}
	if _, err := New(ep); err == nil {
		t.Error("config without traffic accepted")
	}
}

// TestParseScoreBuckets pins the /metrics scrape against the exposition
// format internal/serve writes.
func TestParseScoreBuckets(t *testing.T) {
	metrics := "# HELP serve_scores\n" +
		"serve_scores_bucket{le=\"0.05\"} 3\n" +
		"serve_scores_bucket{le=\"0.1\"} 7\n" +
		"serve_scores_bucket{le=\"+Inf\"} 10\n" +
		"serve_scores_count 10\n"
	cum, err := ParseScoreBuckets(metrics)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 10}
	if len(cum) != len(want) {
		t.Fatalf("got %v, want %v", cum, want)
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("got %v, want %v", cum, want)
		}
	}
	if _, err := ParseScoreBuckets("nothing here"); err == nil {
		t.Error("metrics without buckets accepted")
	}
}

// TestDiffCounts pins cumulative-to-window de-accumulation, including the
// restart fallback.
func TestDiffCounts(t *testing.T) {
	prev := []float64{3, 7, 10}
	cum := []float64{5, 12, 20}
	got := diffCounts(prev, cum)
	want := []float64{2, 3, 5} // per-bucket deltas of the cumulative diff
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diffCounts = %v, want %v", got, want)
		}
	}
	// Length mismatch (server restarted with different buckets): de-cumulate
	// the current snapshot from zero.
	got = diffCounts([]float64{1}, []float64{4, 6, 6})
	want = []float64{4, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restart diffCounts = %v, want %v", got, want)
		}
	}
}

// TestScoreQuantile pins the adaptive shadow threshold helper.
func TestScoreQuantile(t *testing.T) {
	if got := scoreQuantile(nil, 0.9); got != 0.5 {
		t.Errorf("empty quantile = %v, want 0.5", got)
	}
	s := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if got := scoreQuantile(s, 0.5); got != 0.5 {
		t.Errorf("median = %v, want 0.5", got)
	}
	if got := scoreQuantile([]float64{0, 0, 0}, 0.9); got != 0.01 {
		t.Errorf("all-zero quantile = %v, want clamped 0.01", got)
	}
}

// TestChannelsOf pins the smoke-test helper.
func TestChannelsOf(t *testing.T) {
	events := []Event{
		{Type: EventDrift, Channel: "b,a"},
		{Type: EventDrift, Channel: "a,c"},
		{Type: EventPromote, Channel: "z"},
	}
	got := ChannelsOf(events)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("ChannelsOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChannelsOf = %v, want %v", got, want)
		}
	}
}
