// Package lifecycle closes the loop the paper's deployment story assumes
// around the static pipeline: a controller that watches serving-time feature
// and score distributions for drift, triggers streamed re-mining and
// retraining on a fresh window when a detector trips, shadow-scores the
// candidate against the incumbent on live-replayed traffic, and promotes it
// through the serving registry's canary-validated hot swap only on metric
// non-regression. Snorkel DryBell runs on TFX precisely so models are
// re-mined and refreshed as the organization's data shifts (§2.4);
// "Changing Modalities" treats that shift as the normal operating
// condition. This package is the composition layer over internal/monitor
// (detection + shadow comparison), internal/core (re-mine + retrain),
// internal/fusion (lineage-stamped artifacts), and internal/serve
// (canary-gated /admin/reload).
//
// Everything is virtual-time deterministic: windows are counted, not
// clocked; every seed derives from (Config.Seed, window, attempt); events
// carry no timestamps. The same traffic schedule replays the same event log
// bit for bit — the property the golden lifecycle test pins.
package lifecycle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"crossmodal/internal/core"
	"crossmodal/internal/featurestore"
	"crossmodal/internal/fusion"
	"crossmodal/internal/monitor"
	"crossmodal/internal/synth"
)

// Event types, in the order a full episode emits them.
const (
	EventReference    = "reference"     // baseline window installed
	EventDrift        = "drift"         // tracker tripped
	EventRetrain      = "retrain"       // candidate trained
	EventRetrainError = "retrain-error" // training attempt failed (chaos, crash)
	EventShadow       = "shadow"        // candidate vs incumbent comparison done
	EventPromote      = "promote"       // candidate hot-swapped (Seq bump)
	EventReject       = "reject"        // candidate regressed in shadow; kept incumbent
	EventRollback     = "rollback"      // serving canary refused the artifact
)

// Event is one entry of the controller's decision log. No wall-clock
// anywhere: Window is the virtual time base.
type Event struct {
	Window  int    `json:"window"`
	Type    string `json:"type"`
	Channel string `json:"channel,omitempty"` // drifted channels, comma-joined
	Detail  string `json:"detail,omitempty"`
	Seq     uint64 `json:"seq,omitempty"` // serving generation after a promote
}

// Config assembles a Controller.
type Config struct {
	// Traffic is the drifting world the server replays; the server's
	// Config.PointSource must be Traffic-derived so both see the same
	// points.
	Traffic *synth.Traffic
	// Store is the serving featurestore; the controller taps its served
	// vectors for feature-drift snapshots.
	Store *featurestore.Store
	// Pipe re-mines and retrains candidates (StreamMining should be on).
	Pipe *core.Pipeline
	// BaseURL is the serving endpoint ("http://127.0.0.1:port").
	BaseURL string
	// Client performs HTTP; nil uses http.DefaultClient.
	Client *http.Client

	// Incumbent is the currently serving model (the bootstrap artifact),
	// and IncumbentPath its artifact path — the shadow baseline and the
	// Parent stamped into candidate lineage.
	Incumbent     fusion.Predictor
	IncumbentPath string

	// WindowSize is the number of traffic points per observation window
	// (default 400); BatchSize how many points ride one /predict request
	// (default 32).
	WindowSize int
	BatchSize  int

	// Detect tunes the drift detectors; Shadow the candidate-vs-incumbent
	// comparison (its Seed is re-derived per window).
	Detect monitor.DriftConfig
	Shadow monitor.Config

	// PrecisionMargin and RecallMargin bound the regression a candidate may
	// show in shadow scoring and still promote (default 0.1 each).
	PrecisionMargin float64
	RecallMargin    float64

	// Retrain sizes the fresh dataset each retraining attempt draws; its
	// Seed field is overridden per (window, attempt).
	Retrain synth.DatasetConfig
	// MaxRetrainAttempts bounds back-to-back training attempts per tripped
	// window before giving up until the next trip (default 3).
	MaxRetrainAttempts int
	// CooldownWindows suppresses new retrains for this many windows after
	// a promotion or rejection, letting the new baseline settle (default 2).
	CooldownWindows int

	// ArtifactDir receives candidate artifacts.
	ArtifactDir string
	// Seed drives every controller decision stream.
	Seed int64

	// RetrainHook, when set, runs before each training attempt; an error
	// simulates a crash mid-retrain (the chaos rider's seam). The attempt
	// is logged as retrain-error and retried.
	RetrainHook func(window, attempt int) error
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 400
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.PrecisionMargin <= 0 {
		c.PrecisionMargin = 0.1
	}
	if c.RecallMargin <= 0 {
		c.RecallMargin = 0.1
	}
	if c.MaxRetrainAttempts <= 0 {
		c.MaxRetrainAttempts = 3
	}
	if c.CooldownWindows <= 0 {
		c.CooldownWindows = 2
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Traffic == nil:
		return fmt.Errorf("lifecycle: nil traffic")
	case c.Store == nil:
		return fmt.Errorf("lifecycle: nil featurestore")
	case c.Pipe == nil:
		return fmt.Errorf("lifecycle: nil pipeline")
	case c.BaseURL == "":
		return fmt.Errorf("lifecycle: empty base URL")
	case c.Incumbent == nil:
		return fmt.Errorf("lifecycle: nil incumbent model")
	case c.ArtifactDir == "":
		return fmt.Errorf("lifecycle: empty artifact dir")
	}
	return nil
}

// Result summarizes one controller run.
type Result struct {
	Events     []Event `json:"events"`
	Windows    int     `json:"windows"`
	Detections int     `json:"detections"`
	Retrains   int     `json:"retrains"`
	Promotions int     `json:"promotions"`
	Rejections int     `json:"rejections"`
	FinalSeq   uint64  `json:"final_seq"`
}

// Controller drives the closed loop. Not safe for concurrent use.
type Controller struct {
	cfg     Config
	tracker *monitor.Tracker

	incumbent     fusion.Predictor
	incumbentPath string

	catRef    monitor.CatSnapshot // reference categorical frequencies
	refCounts []float64           // reference window's serve_scores per-bucket counts
	prevCum   []float64           // cumulative bucket counts at the last window edge

	cooldown int
	needRef  bool // rebaseline on the next window (startup, post-promotion)

	res Result
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:           cfg,
		tracker:       monitor.NewTracker(cfg.Detect),
		incumbent:     cfg.Incumbent,
		incumbentPath: cfg.IncumbentPath,
		needRef:       true,
	}, nil
}

// Run replays the full traffic schedule window by window and returns the
// event log. The featurestore's sampling tap is enabled for the duration.
func (c *Controller) Run(ctx context.Context) (*Result, error) {
	windows := c.cfg.Traffic.Total() / c.cfg.WindowSize
	if windows == 0 {
		return nil, fmt.Errorf("lifecycle: traffic (%d points) smaller than one window (%d)",
			c.cfg.Traffic.Total(), c.cfg.WindowSize)
	}
	c.cfg.Store.EnableSampling(c.cfg.WindowSize)
	defer c.cfg.Store.EnableSampling(0)

	// Prime the cumulative score-histogram baseline so window 0's diff is
	// against the pre-run state (the bootstrap canary scores land there).
	cum, err := c.fetchScoreCum(ctx)
	if err != nil {
		return nil, err
	}
	c.prevCum = cum

	for w := 0; w < windows; w++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := c.step(ctx, w); err != nil {
			return nil, fmt.Errorf("lifecycle: window %d: %w", w, err)
		}
	}
	c.res.Windows = windows
	out := c.res
	return &out, nil
}

// step observes one traffic window and reacts.
func (c *Controller) step(ctx context.Context, w int) error {
	c.cfg.Store.DrainSample() // discard anything recorded between windows

	pts := c.cfg.Traffic.Window(w*c.cfg.WindowSize, c.cfg.WindowSize)
	scores, err := c.scoreWindow(ctx, pts)
	if err != nil {
		return err
	}

	vecs := c.cfg.Store.DrainSample()
	snap := monitor.NumericSnapshot(vecs)
	snap["serve_score"] = scores
	cat := monitor.CategoricalSnapshot(vecs)

	cum, err := c.fetchScoreCum(ctx)
	if err != nil {
		return err
	}
	counts := diffCounts(c.prevCum, cum)
	c.prevCum = cum

	if c.needRef {
		c.tracker.SetReference(snap)
		c.catRef = cat
		c.refCounts = counts
		c.needRef = false
		c.emit(Event{Window: w, Type: EventReference,
			Detail: fmt.Sprintf("%d channels, %d points", len(snap)+len(cat), len(pts))})
		return nil
	}

	// The categorical channels (topic mix, URL groups, rule firings) and the
	// /metrics score histogram have no raw-sample form, so they ride along as
	// extra verdicts and share the tracker's streak logic.
	extra := monitor.DetectCategoricalDrift(c.cfg.Detect, c.catRef, cat)
	thr := c.cfg.Detect.PSIThreshold
	if thr <= 0 {
		thr = 0.25 // monitor.DriftConfig's own default
	}
	psi := monitor.PSI(c.refCounts, counts)
	extra = append(extra, monitor.Verdict{Channel: "scores_hist", N: len(scores), KSP: 1, PSI: psi, Drifted: psi > thr})
	verdicts, tripped := c.tracker.Observe(snap, extra...)

	if c.cooldown > 0 {
		c.cooldown--
		return nil
	}
	if !tripped {
		return nil
	}

	channels := strings.Join(c.tracker.TrippedChannels(), ",")
	c.res.Detections++
	c.emit(Event{Window: w, Type: EventDrift, Channel: channels,
		Detail: monitor.Summarize(verdicts)})
	return c.retrainAndMaybePromote(ctx, w, pts, channels)
}

// retrainAndMaybePromote runs the re-mine → retrain → shadow → promote arm
// of the loop, retrying training up to MaxRetrainAttempts.
func (c *Controller) retrainAndMaybePromote(ctx context.Context, w int, pts []*synth.Point, channels string) error {
	for attempt := 1; attempt <= c.cfg.MaxRetrainAttempts; attempt++ {
		if hook := c.cfg.RetrainHook; hook != nil {
			if err := hook(w, attempt); err != nil {
				c.emit(Event{Window: w, Type: EventRetrainError,
					Detail: fmt.Sprintf("attempt %d: %v", attempt, err)})
				continue
			}
		}
		cand, lfCount, err := c.retrain(ctx, w, attempt)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			c.emit(Event{Window: w, Type: EventRetrainError,
				Detail: fmt.Sprintf("attempt %d: %v", attempt, err)})
			continue
		}
		c.res.Retrains++
		c.emit(Event{Window: w, Type: EventRetrain,
			Detail: fmt.Sprintf("attempt %d, %d LFs", attempt, lfCount)})
		return c.shadowAndPromote(ctx, w, pts, channels, cand)
	}
	// Out of attempts: give up until the next trip. The streak persists,
	// so a sustained shift re-trips on the next window.
	return nil
}

// retrain draws a fresh dataset from the current traffic regime and runs
// curation + training. The dataset seed differs per (window, attempt) so a
// retry is a genuinely fresh draw.
func (c *Controller) retrain(ctx context.Context, w, attempt int) (fusion.Predictor, int, error) {
	epoch := c.cfg.Traffic.EpochOf((w+1)*c.cfg.WindowSize - 1)
	dsCfg := c.cfg.Retrain
	dsCfg.Seed = c.cfg.Seed ^ int64(w)<<8 ^ int64(attempt)
	ds, err := c.cfg.Traffic.FreshDataset(epoch, dsCfg)
	if err != nil {
		return nil, 0, err
	}
	cur, err := c.cfg.Pipe.Curate(ctx, ds)
	if err != nil {
		return nil, 0, err
	}
	cand, err := c.cfg.Pipe.Train(ctx, cur, c.cfg.Pipe.DefaultTrainSpec())
	if err != nil {
		return nil, 0, err
	}
	return cand, cur.Report.LFCount, nil
}

// shadowAndPromote compares the candidate against the incumbent on the
// tripped window's live traffic and promotes through /admin/reload on
// non-regression.
func (c *Controller) shadowAndPromote(ctx context.Context, w int, pts []*synth.Point, channels string, cand fusion.Predictor) error {
	vecs, err := c.cfg.Pipe.Featurize(ctx, pts)
	if err != nil {
		return err
	}
	shadowCfg := c.cfg.Shadow
	shadowCfg.Seed = c.cfg.Seed ^ int64(w)<<16
	if shadowCfg.Threshold <= 0 {
		// A fixed 0.5 cut can sit above everything a low-base-rate model
		// emits, making every estimate vacuously zero. Anchor the flag
		// threshold to the incumbent's own score distribution on this
		// window instead: flag its top decile.
		shadowCfg.Threshold = scoreQuantile(c.incumbent.PredictBatch(vecs), 0.9)
	}
	cmp, err := monitor.Compare("incumbent", c.incumbent, "candidate", cand,
		pts, vecs, func(p *synth.Point) int8 { return p.Label }, shadowCfg)
	if err != nil {
		return err
	}
	inc, cnd := cmp.A, cmp.B
	c.emit(Event{Window: w, Type: EventShadow,
		Detail: fmt.Sprintf("incumbent p=%.3f r=%.3f, candidate p=%.3f r=%.3f, disagree=%.3f",
			inc.Precision, inc.RecallProxy, cnd.Precision, cnd.RecallProxy, cmp.Disagreement)})

	pass := cnd.Precision >= inc.Precision-c.cfg.PrecisionMargin &&
		cnd.RecallProxy >= inc.RecallProxy-c.cfg.RecallMargin
	if !pass {
		c.res.Rejections++
		c.cooldown = c.cfg.CooldownWindows
		c.emit(Event{Window: w, Type: EventReject,
			Detail: fmt.Sprintf("candidate regressed beyond margins (p %.3f vs %.3f, r %.3f vs %.3f)",
				cnd.Precision, inc.Precision, cnd.RecallProxy, inc.RecallProxy)})
		return nil
	}

	path := filepath.Join(c.cfg.ArtifactDir, fmt.Sprintf("candidate-w%03d.xma", w))
	lg := &fusion.Lineage{
		Task:    c.cfg.Traffic.Task().Name,
		Trigger: "drift:" + channels,
		Window:  w,
		Parent:  c.incumbentPath,
		Seed:    c.cfg.Seed ^ int64(w)<<8,
	}
	if err := fusion.SaveFileLineage(path, cand, lg); err != nil {
		return err
	}
	seq, reloadErr := c.reload(ctx, path)
	if reloadErr != nil {
		// The serving canary refused the artifact: the incumbent keeps
		// serving untouched. Cool down rather than hammering the gate.
		c.res.Rejections++
		c.cooldown = c.cfg.CooldownWindows
		c.emit(Event{Window: w, Type: EventRollback,
			Detail: fmt.Sprintf("serving canary refused artifact: %v", reloadErr)})
		return nil
	}
	c.res.Promotions++
	c.res.FinalSeq = seq
	c.incumbent = cand
	c.incumbentPath = path
	c.cooldown = c.cfg.CooldownWindows
	// The world under the model changed and so did the model: rebaseline
	// detection on the next window.
	c.needRef = true
	c.emit(Event{Window: w, Type: EventPromote, Channel: channels, Seq: seq,
		Detail: filepath.Base(path)})
	return nil
}

// scoreWindow posts the window's points through /predict in BatchSize
// chunks and returns their scores in traffic order.
func (c *Controller) scoreWindow(ctx context.Context, pts []*synth.Point) ([]float64, error) {
	scores := make([]float64, 0, len(pts))
	for lo := 0; lo < len(pts); lo += c.cfg.BatchSize {
		hi := lo + c.cfg.BatchSize
		if hi > len(pts) {
			hi = len(pts)
		}
		batch := struct {
			Points []map[string]any `json:"points"`
		}{}
		for _, p := range pts[lo:hi] {
			batch.Points = append(batch.Points, map[string]any{"id": p.ID, "modality": string(p.Modality)})
		}
		body, err := json.Marshal(batch)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/predict", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("predict: %d %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
		var pr struct {
			Scores []float64 `json:"scores"`
		}
		if err := json.Unmarshal(raw, &pr); err != nil {
			return nil, err
		}
		if len(pr.Scores) != hi-lo {
			return nil, fmt.Errorf("predict returned %d scores for %d points", len(pr.Scores), hi-lo)
		}
		scores = append(scores, pr.Scores...)
	}
	return scores, nil
}

// reload POSTs /admin/reload and returns the new serving generation.
func (c *Controller) reload(ctx context.Context, path string) (uint64, error) {
	body, err := json.Marshal(map[string]string{"path": path})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/admin/reload", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%d %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var rr struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(raw, &rr); err != nil {
		return 0, err
	}
	return rr.Seq, nil
}

// fetchScoreCum scrapes the cumulative serve_scores bucket counts from
// /metrics, in bucket order (including +Inf).
func (c *Controller) fetchScoreCum(ctx context.Context) ([]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	return ParseScoreBuckets(string(raw))
}

// ParseScoreBuckets extracts the cumulative serve_scores histogram buckets
// from a /metrics exposition, in exposition order.
func ParseScoreBuckets(metrics string) ([]float64, error) {
	var cum []float64
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, "serve_scores_bucket{le=") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("lifecycle: malformed bucket line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("lifecycle: malformed bucket count %q: %w", line, err)
		}
		cum = append(cum, v)
	}
	if len(cum) == 0 {
		return nil, fmt.Errorf("lifecycle: /metrics exposes no serve_scores buckets")
	}
	return cum, nil
}

// diffCounts converts two cumulative bucket snapshots into this window's
// per-bucket counts. Mismatched lengths (a restarted server) yield the
// current snapshot de-cumulated from zero.
func diffCounts(prevCum, cum []float64) []float64 {
	counts := make([]float64, len(cum))
	var prevTotal float64
	for i, v := range cum {
		base := 0.0
		if i < len(prevCum) && len(prevCum) == len(cum) {
			base = prevCum[i]
		}
		counts[i] = (v - base) - prevTotal
		prevTotal += counts[i]
		if counts[i] < 0 {
			counts[i] = 0
		}
	}
	return counts
}

// scoreQuantile returns the q-quantile of scores (sorted copy, nearest
// rank), clamped into (0, 1) so it is always a usable flag threshold.
func scoreQuantile(scores []float64, q float64) float64 {
	if len(scores) == 0 {
		return 0.5
	}
	s := append([]float64(nil), scores...)
	sort.Float64s(s)
	v := s[int(q*float64(len(s)-1))]
	return math.Min(math.Max(v, 0.01), 0.99)
}

// emit appends one event to the log.
func (c *Controller) emit(e Event) {
	c.res.Events = append(c.res.Events, e)
}

// ChannelsOf lists the distinct channels named by a run's drift events,
// sorted — a convenience for smoke-test assertions.
func ChannelsOf(events []Event) []string {
	set := map[string]bool{}
	for _, e := range events {
		if e.Type == EventDrift && e.Channel != "" {
			for _, ch := range strings.Split(e.Channel, ",") {
				set[ch] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for ch := range set {
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}
