// Package labelmodel implements the weak-supervision generative model that
// denoises labeling-function votes into probabilistic training labels
// (paper §4.1, step 3; the stand-in for Snorkel Drybell's generative model).
//
// The model is the conditionally-independent LF model: for each LF j and
// each class y ∈ {+1, -1}, an unknown multinomial θ_j(v | y) over votes
// v ∈ {+1, -1, abstain}. This class-conditional parameterization matters in
// the paper's heavily class-imbalanced tasks: a positive LF that fires on
// 25% of positives but only 1% of negatives has low raw precision at a 4%
// base rate yet carries a 25× likelihood ratio — exactly the kind of LF
// frequent itemset mining produces. Parameters are estimated from the
// agreement structure of the vote matrix by expectation-maximization,
// without ground-truth labels; the fitted model returns each point's
// posterior P(y = +1 | votes), the probabilistic label used to train the
// discriminative end model with a noise-aware loss.
package labelmodel

import (
	"context"
	"fmt"
	"math"

	"crossmodal/internal/lf"
	"crossmodal/internal/trace"
)

// Config controls EM fitting.
type Config struct {
	// MaxIters bounds EM iterations (default 100).
	MaxIters int
	// Tol stops EM when the largest parameter change falls below it
	// (default 1e-5).
	Tol float64
	// ClassBalance fixes the prior P(y=+1). Weak-supervision deployments
	// on imbalanced tasks supply this (it is far easier to estimate than
	// labels); <= 0 lets EM learn it.
	ClassBalance float64
	// Smoothing is the Dirichlet pseudo-count added in the M step
	// (default 1). It also encodes the better-than-random prior: the
	// pseudo-count mass for an LF's "correct" vote is doubled.
	Smoothing float64
}

func (c Config) withDefaults() Config {
	if c.MaxIters <= 0 {
		c.MaxIters = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-5
	}
	if c.Smoothing <= 0 {
		c.Smoothing = 1
	}
	return c
}

// voteIndex maps a vote to a θ slot.
func voteIndex(v int8) int {
	switch {
	case v > 0:
		return 0
	case v < 0:
		return 1
	default:
		return 2
	}
}

// Model is a fitted generative label model.
type Model struct {
	// ThetaPos[j] and ThetaNeg[j] are LF j's vote distributions
	// [P(+1|y), P(-1|y), P(abstain|y)] conditioned on y=+1 and y=-1.
	ThetaPos, ThetaNeg [][3]float64
	// Prior is P(y = +1).
	Prior float64
	// Iters is how many EM iterations ran.
	Iters int
	// Names are the LF names, aligned with the parameters.
	Names []string
}

// Accuracy returns LF j's implied accuracy P(vote = y | vote ≠ 0) under the
// model and its prior — the scalar Snorkel-style diagnostic.
func (mod *Model) Accuracy(j int) float64 {
	p := mod.Prior
	correct := p*mod.ThetaPos[j][0] + (1-p)*mod.ThetaNeg[j][1]
	voted := p*(mod.ThetaPos[j][0]+mod.ThetaPos[j][1]) + (1-p)*(mod.ThetaNeg[j][0]+mod.ThetaNeg[j][1])
	if voted == 0 {
		return 0
	}
	return correct / voted
}

// Propensity returns LF j's implied vote rate P(vote ≠ 0).
func (mod *Model) Propensity(j int) float64 {
	p := mod.Prior
	return 1 - (p*mod.ThetaPos[j][2] + (1-p)*mod.ThetaNeg[j][2])
}

// FitGenerative fits the model to a vote matrix by EM.
func FitGenerative(ctx context.Context, m *lf.Matrix, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n, k := m.NumPoints(), m.NumLFs()
	if n == 0 || k == 0 {
		return nil, fmt.Errorf("labelmodel: empty vote matrix (%dx%d)", n, k)
	}
	_, span := trace.Start(ctx, "labelmodel.em")
	defer span.End()
	span.SetInt("points", int64(n))
	span.SetInt("lfs", int64(k))
	model := &Model{
		ThetaPos: make([][3]float64, k),
		ThetaNeg: make([][3]float64, k),
		Prior:    cfg.ClassBalance,
		Names:    append([]string(nil), m.Names...),
	}
	if model.Prior <= 0 || model.Prior >= 1 {
		model.Prior = 0.5
	}
	defer func() { span.SetInt("iters", int64(model.Iters)) }()

	// Initialization: each LF's empirical vote distribution, tilted toward
	// correctness (an LF's vote is assumed more likely under the matching
	// class — the better-than-random assumption).
	for j := 0; j < k; j++ {
		var counts [3]float64
		for i := 0; i < n; i++ {
			counts[voteIndex(m.Votes[i][j])]++
		}
		total := counts[0] + counts[1] + counts[2] + 3
		const tilt = 3
		model.ThetaPos[j] = normalize3([3]float64{
			(counts[0] + 1) * tilt, counts[1] + 1, counts[2] + 1,
		}, total+(tilt-1)*(counts[0]+1))
		model.ThetaNeg[j] = normalize3([3]float64{
			counts[0] + 1, (counts[1] + 1) * tilt, counts[2] + 1,
		}, total+(tilt-1)*(counts[1]+1))
	}

	post := make([]float64, n)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		model.Iters = iter
		model.posterior(m, post)

		var maxDelta float64
		if cfg.ClassBalance <= 0 {
			var sum float64
			for _, p := range post {
				sum += p
			}
			newPrior := clamp(sum/float64(n), 0.001, 0.999)
			maxDelta = math.Abs(newPrior - model.Prior)
			model.Prior = newPrior
		}
		s := cfg.Smoothing
		for j := 0; j < k; j++ {
			// Pseudo-counts: s for every vote, an extra s on the
			// class-correct vote.
			pos := [3]float64{2 * s, s, s}
			neg := [3]float64{s, 2 * s, s}
			for i := 0; i < n; i++ {
				vi := voteIndex(m.Votes[i][j])
				pos[vi] += post[i]
				neg[vi] += 1 - post[i]
			}
			newPos := normalize3(pos, pos[0]+pos[1]+pos[2])
			newNeg := normalize3(neg, neg[0]+neg[1]+neg[2])
			newPos, newNeg = enforceBetterThanRandom(newPos, newNeg)
			for v := 0; v < 3; v++ {
				maxDelta = math.Max(maxDelta, math.Abs(newPos[v]-model.ThetaPos[j][v]))
				maxDelta = math.Max(maxDelta, math.Abs(newNeg[v]-model.ThetaNeg[j][v]))
			}
			model.ThetaPos[j], model.ThetaNeg[j] = newPos, newNeg
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	return model, nil
}

// enforceBetterThanRandom projects the vote distributions onto the
// weak-supervision assumption that no LF's vote is evidence *against* the
// class it names: P(vote=+1|y=+1) >= P(vote=+1|y=-1) and symmetrically for
// negative votes. Without this constraint, EM can invert a sparse positive
// LF in a heavily imbalanced matrix (nothing corroborates it, so explaining
// its votes as noise raises the likelihood) — the exact regime of mined LFs
// over mutually exclusive category values.
func enforceBetterThanRandom(pos, neg [3]float64) ([3]float64, [3]float64) {
	if pos[0] < neg[0] {
		m := math.Sqrt(pos[0] * neg[0])
		pos[0], neg[0] = m, m
	}
	if neg[1] < pos[1] {
		m := math.Sqrt(pos[1] * neg[1])
		pos[1], neg[1] = m, m
	}
	pos = normalize3(pos, pos[0]+pos[1]+pos[2])
	neg = normalize3(neg, neg[0]+neg[1]+neg[2])
	return pos, neg
}

func normalize3(v [3]float64, total float64) [3]float64 {
	if total <= 0 {
		return [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	}
	return [3]float64{v[0] / total, v[1] / total, v[2] / total}
}

// posterior fills out[i] = P(y_i = +1 | votes_i) under the current
// parameters, in log space for stability. Abstains carry (weak) evidence
// through the abstain slots of θ.
func (mod *Model) posterior(m *lf.Matrix, out []float64) {
	logPrior := math.Log(mod.Prior)
	logPriorNeg := math.Log(1 - mod.Prior)
	for i := range m.Votes {
		lp, ln := logPrior, logPriorNeg
		for j, v := range m.Votes[i] {
			vi := voteIndex(v)
			lp += math.Log(mod.ThetaPos[j][vi])
			ln += math.Log(mod.ThetaNeg[j][vi])
		}
		out[i] = 1 / (1 + math.Exp(ln-lp))
	}
}

func clamp(x, lo, hi float64) float64 {
	return math.Min(math.Max(x, lo), hi)
}

// Predict returns the posterior probabilistic labels P(y=+1|votes) for every
// row of the matrix.
func (mod *Model) Predict(m *lf.Matrix) ([]float64, error) {
	if m.NumLFs() != len(mod.ThetaPos) {
		return nil, fmt.Errorf("labelmodel: matrix has %d LFs, model has %d", m.NumLFs(), len(mod.ThetaPos))
	}
	out := make([]float64, m.NumPoints())
	mod.posterior(m, out)
	return out, nil
}

// FitSupervised estimates the label model's class-conditional vote
// distributions directly from a labeled development matrix (the paper's
// §4.2 move: labeled data of existing modalities serves as the development
// set). This anchors each LF's reliability in observed counts instead of
// EM's agreement heuristics, which matters when a high-coverage LF (such as
// the propagation LF) would otherwise dominate the agreement structure.
// classBalance fixes the prior; <= 0 uses the dev positive rate.
func FitSupervised(ctx context.Context, m *lf.Matrix, labels []int8, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n, k := m.NumPoints(), m.NumLFs()
	if n == 0 || k == 0 {
		return nil, fmt.Errorf("labelmodel: empty vote matrix (%dx%d)", n, k)
	}
	_, span := trace.Start(ctx, "labelmodel.supervised")
	defer span.End()
	span.SetInt("points", int64(n))
	span.SetInt("lfs", int64(k))
	if len(labels) != n {
		return nil, fmt.Errorf("labelmodel: %d votes vs %d labels", n, len(labels))
	}
	var nPos, nNeg float64
	for _, l := range labels {
		if l > 0 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, fmt.Errorf("labelmodel: dev set needs both classes (%v+/%v-)", nPos, nNeg)
	}
	model := &Model{
		ThetaPos: make([][3]float64, k),
		ThetaNeg: make([][3]float64, k),
		Prior:    cfg.ClassBalance,
		Iters:    1,
		Names:    append([]string(nil), m.Names...),
	}
	if model.Prior <= 0 || model.Prior >= 1 {
		model.Prior = nPos / float64(n)
	}
	s := cfg.Smoothing
	for j := 0; j < k; j++ {
		pos := [3]float64{2 * s, s, s}
		neg := [3]float64{s, 2 * s, s}
		for i := 0; i < n; i++ {
			vi := voteIndex(m.Votes[i][j])
			if labels[i] > 0 {
				pos[vi]++
			} else {
				neg[vi]++
			}
		}
		newPos := normalize3(pos, pos[0]+pos[1]+pos[2])
		newNeg := normalize3(neg, neg[0]+neg[1]+neg[2])
		model.ThetaPos[j], model.ThetaNeg[j] = enforceBetterThanRandom(newPos, newNeg)
	}
	return model, nil
}

// MajorityVote returns the baseline probabilistic labels from unweighted
// voting: (1 + mean vote) / 2 over non-abstaining LFs; points with no votes
// get 0.5.
func MajorityVote(m *lf.Matrix) []float64 {
	out := make([]float64, m.NumPoints())
	for i, row := range m.Votes {
		var sum, n float64
		for _, v := range row {
			if v != 0 {
				sum += float64(v)
				n++
			}
		}
		if n == 0 {
			out[i] = 0.5
			continue
		}
		out[i] = (1 + sum/n) / 2
	}
	return out
}

// Covered reports which points received at least one non-abstain vote.
// Training the end model typically uses covered points only.
func Covered(m *lf.Matrix) []bool {
	out := make([]bool, m.NumPoints())
	for i, row := range m.Votes {
		for _, v := range row {
			if v != 0 {
				out[i] = true
				break
			}
		}
	}
	return out
}

// HardLabels thresholds probabilistic labels at cut into +1/-1 votes
// (0 is never produced); useful for computing the generative model's
// precision/recall/F1 against a labeled set (paper §6.7).
func HardLabels(probs []float64, cut float64) []int8 {
	out := make([]int8, len(probs))
	for i, p := range probs {
		if p >= cut {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
