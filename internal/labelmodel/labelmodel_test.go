package labelmodel

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"crossmodal/internal/lf"
)

var ctxbg = context.Background()

// plant builds a vote matrix from true labels and per-LF accuracies and
// propensities (propensity is label-independent here).
func plant(n int, accs, props []float64, posRate float64, seed int64) (*lf.Matrix, []int8) {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int8, n)
	votes := make([][]int8, n)
	names := make([]string, len(accs))
	for j := range names {
		names[j] = "lf" + string(rune('A'+j))
	}
	for i := 0; i < n; i++ {
		labels[i] = -1
		if rng.Float64() < posRate {
			labels[i] = 1
		}
		row := make([]int8, len(accs))
		for j := range accs {
			if rng.Float64() >= props[j] {
				continue // abstain
			}
			if rng.Float64() < accs[j] {
				row[j] = labels[i]
			} else {
				row[j] = -labels[i]
			}
		}
		votes[i] = row
	}
	return &lf.Matrix{Votes: votes, Names: names}, labels
}

func TestFitRecoversAccuracies(t *testing.T) {
	accs := []float64{0.9, 0.75, 0.6}
	props := []float64{0.8, 0.7, 0.9}
	m, _ := plant(20000, accs, props, 0.5, 1)
	model, err := FitGenerative(ctxbg, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range accs {
		if got := model.Accuracy(j); math.Abs(got-want) > 0.05 {
			t.Errorf("accuracy[%d] = %.3f, want ≈%.3f", j, got, want)
		}
	}
	for j, want := range props {
		if got := model.Propensity(j); math.Abs(got-want) > 0.03 {
			t.Errorf("propensity[%d] = %.3f, want ≈%.3f", j, got, want)
		}
	}
	if math.Abs(model.Prior-0.5) > 0.05 {
		t.Errorf("learned prior = %.3f, want ≈0.5", model.Prior)
	}
}

func TestFitImbalancedWithClassBalance(t *testing.T) {
	accs := []float64{0.85, 0.8, 0.7, 0.65}
	props := []float64{0.6, 0.5, 0.7, 0.4}
	m, labels := plant(30000, accs, props, 0.05, 2)
	model, err := FitGenerative(ctxbg, m, Config{ClassBalance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := model.Predict(m)
	if err != nil {
		t.Fatal(err)
	}
	// The model's probabilistic labels must beat majority vote on
	// agreement with truth among covered points.
	mv := MajorityVote(m)
	covered := Covered(m)
	var modelRight, mvRight, tot float64
	for i := range labels {
		if !covered[i] {
			continue
		}
		tot++
		if (probs[i] >= 0.5) == (labels[i] > 0) {
			modelRight++
		}
		if (mv[i] >= 0.5) == (labels[i] > 0) {
			mvRight++
		}
	}
	if modelRight < mvRight {
		t.Errorf("generative model accuracy %.4f below majority vote %.4f", modelRight/tot, mvRight/tot)
	}
	if model.Prior != 0.05 {
		t.Errorf("fixed prior changed: %v", model.Prior)
	}
}

// TestLowPrecisionHighLiftLF plants the imbalanced regime the paper's mined
// LFs live in: an LF firing on 30% of positives and 1% of negatives at a 4%
// base rate has precision ~0.55 but a 30x likelihood ratio; the model must
// credit its positive votes.
func TestLowPrecisionHighLiftLF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 30000
	votes := make([][]int8, n)
	labels := make([]int8, n)
	for i := 0; i < n; i++ {
		labels[i] = -1
		if rng.Float64() < 0.04 {
			labels[i] = 1
		}
		row := make([]int8, 2)
		// LF0: positive detector, fires + on 30% of positives, 1% of negs.
		if labels[i] > 0 && rng.Float64() < 0.3 || labels[i] < 0 && rng.Float64() < 0.01 {
			row[0] = 1
		}
		// LF1: negative detector, fires - on 20% of negs, 2% of positives.
		if labels[i] < 0 && rng.Float64() < 0.2 || labels[i] > 0 && rng.Float64() < 0.02 {
			row[1] = -1
		}
		votes[i] = row
	}
	m := &lf.Matrix{Votes: votes, Names: []string{"pos", "neg"}}
	model, err := FitGenerative(ctxbg, m, Config{ClassBalance: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := model.Predict(m)
	if err != nil {
		t.Fatal(err)
	}
	// Points where the positive LF fired should get posteriors far above
	// the prior.
	var fired, firedSum, quiet, quietSum float64
	for i := range probs {
		if votes[i][0] > 0 {
			fired++
			firedSum += probs[i]
		} else {
			quiet++
			quietSum += probs[i]
		}
	}
	if firedSum/fired < 5*0.04 {
		t.Errorf("posterior on fired points %.3f should be >> prior 0.04", firedSum/fired)
	}
	if quietSum/quiet > 0.1 {
		t.Errorf("posterior on quiet points %.3f should stay near prior", quietSum/quiet)
	}
}

func TestPosteriorWeighsAccurateLFsMore(t *testing.T) {
	accs := []float64{0.95, 0.6, 0.9}
	props := []float64{0.9, 0.9, 0.9}
	m, _ := plant(20000, accs, props, 0.5, 3)
	model, err := FitGenerative(ctxbg, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Accuracy(0) <= model.Accuracy(1) {
		t.Fatalf("EM did not order accuracies: %v vs %v", model.Accuracy(0), model.Accuracy(1))
	}
	// Conflict rows: LF0 says +, LF1 says -, LF2 abstains.
	conflict := &lf.Matrix{Votes: [][]int8{{1, -1, 0}}, Names: m.Names}
	probs, err := model.Predict(conflict)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] <= 0.5 {
		t.Errorf("conflict posterior %.3f should side with the accurate LF", probs[0])
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	model := &Model{ThetaPos: make([][3]float64, 1), ThetaNeg: make([][3]float64, 1), Prior: 0.5}
	m := &lf.Matrix{Votes: [][]int8{{1, -1}}, Names: []string{"a", "b"}}
	if _, err := model.Predict(m); err == nil {
		t.Error("expected LF-count mismatch error")
	}
}

func TestFitEmptyMatrix(t *testing.T) {
	if _, err := FitGenerative(ctxbg, &lf.Matrix{}, Config{}); err == nil {
		t.Error("expected error for empty matrix")
	}
}

func TestAdversarialLFDoesNotPoisonModel(t *testing.T) {
	// One good LF and one anti-correlated LF: overall prediction quality
	// must remain high (the model may legitimately invert the bad LF).
	accs := []float64{0.9, 0.15}
	props := []float64{0.9, 0.9}
	m, labels := plant(10000, accs, props, 0.5, 4)
	model, err := FitGenerative(ctxbg, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := model.Predict(m)
	right := 0
	for i := range labels {
		if (probs[i] >= 0.5) == (labels[i] > 0) {
			right++
		}
	}
	if acc := float64(right) / float64(len(labels)); acc < 0.85 {
		t.Errorf("model accuracy %.3f with adversarial LF, want > 0.85", acc)
	}
}

func TestMajorityVote(t *testing.T) {
	m := &lf.Matrix{Votes: [][]int8{
		{1, 1, -1},
		{0, 0, 0},
		{-1, -1, 0},
	}, Names: []string{"a", "b", "c"}}
	got := MajorityVote(m)
	want := []float64{(1 + 1.0/3) / 2, 0.5, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MajorityVote[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCovered(t *testing.T) {
	m := &lf.Matrix{Votes: [][]int8{{0, 0}, {0, 1}}, Names: []string{"a", "b"}}
	got := Covered(m)
	if got[0] || !got[1] {
		t.Errorf("Covered = %v", got)
	}
}

func TestHardLabels(t *testing.T) {
	got := HardLabels([]float64{0.9, 0.5, 0.1}, 0.5)
	want := []int8{1, 1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("HardLabels[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFitConvergesAndStops(t *testing.T) {
	m, _ := plant(5000, []float64{0.9, 0.8}, []float64{0.9, 0.9}, 0.5, 5)
	model, err := FitGenerative(ctxbg, m, Config{MaxIters: 500, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if model.Iters >= 500 {
		t.Errorf("EM did not converge in %d iterations", model.Iters)
	}
}

func TestFitDeterministic(t *testing.T) {
	m, _ := plant(3000, []float64{0.9, 0.7}, []float64{0.8, 0.8}, 0.3, 6)
	a, _ := FitGenerative(ctxbg, m, Config{})
	b, _ := FitGenerative(ctxbg, m, Config{})
	for j := range a.ThetaPos {
		if a.ThetaPos[j] != b.ThetaPos[j] || a.ThetaNeg[j] != b.ThetaNeg[j] {
			t.Fatal("EM not deterministic")
		}
	}
}
