package faulty

import (
	"context"
	"errors"
	"testing"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

func testLibrary(t *testing.T) *resource.Library {
	t.Helper()
	w := synth.MustWorld(synth.DefaultConfig())
	lib, err := resource.StandardLibrary(w)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func testPoints(t *testing.T, lib *resource.Library, n int) []*synth.Point {
	t.Helper()
	task, _ := synth.TaskByName("CT1")
	ds, err := synth.BuildDataset(lib.World(), task, synth.DatasetConfig{
		Seed: 11, NumText: n, NumUnlabeledImage: n, NumHandLabelPool: 1, NumTest: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return append(ds.LabeledText, ds.UnlabeledImage...)
}

// quiet is a fast retry policy for tests: no real sleeping, no breaker.
func quiet() resource.Policy {
	return resource.Policy{
		MaxAttempts:      3,
		BreakerThreshold: -1,
		Sleep:            func(time.Duration) {},
	}
}

// vectorsEqual compares two vectors feature by feature, bit for bit.
func vectorsEqual(t *testing.T, schema *feature.Schema, a, b *feature.Vector) bool {
	t.Helper()
	for i := 0; i < schema.Len(); i++ {
		va, vb := a.At(i), b.At(i)
		if va.Missing != vb.Missing || va.Num != vb.Num ||
			len(va.Categories) != len(vb.Categories) || len(va.Vec) != len(vb.Vec) {
			return false
		}
		for j := range va.Categories {
			if va.Categories[j] != vb.Categories[j] {
				return false
			}
		}
		for j := range va.Vec {
			if va.Vec[j] != vb.Vec[j] {
				return false
			}
		}
	}
	return true
}

// TestZeroRateScheduleIsBitIdentical: an all-zero schedule under full guards
// must reproduce the unwrapped, unchecked pipeline exactly — fault injection
// off is indistinguishable from fault injection absent.
func TestZeroRateScheduleIsBitIdentical(t *testing.T) {
	lib := testLibrary(t)
	pts := testPoints(t, lib, 40)

	wrapped, injs, err := WrapLibrary(lib, Schedule{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	glib := wrapped.WithGuards(quiet(), nil)
	ctx := context.Background()
	for _, p := range pts {
		want := lib.FeaturizePoint(p)
		got, failed, err := glib.FeaturizePointChecked(ctx, p)
		if err != nil || len(failed) != 0 {
			t.Fatalf("point %d: err=%v failed=%v", p.ID, err, failed)
		}
		if !vectorsEqual(t, lib.Schema(), want, got) {
			t.Fatalf("point %d: zero-rate vector differs from unchecked pipeline", p.ID)
		}
	}
	for _, in := range injs {
		st := in.Stats()
		if st.Errors+st.Latencies+st.Partials+st.Flaps != 0 {
			t.Fatalf("injector %s injected faults at zero rates: %+v", in.Def().Name, st)
		}
	}
}

// TestInjectionIsDeterministic: two identically seeded stacks make identical
// decisions — same failed channels, same counters.
func TestInjectionIsDeterministic(t *testing.T) {
	sched := Schedule{Seed: 7, ErrorRate: 0.3}
	run := func() ([][]string, []Stats) {
		lib := testLibrary(t)
		pts := testPoints(t, lib, 30)
		wrapped, injs, err := WrapLibrary(lib, sched)
		if err != nil {
			t.Fatal(err)
		}
		glib := wrapped.WithGuards(quiet(), nil)
		var fails [][]string
		for _, p := range pts {
			_, failed, _ := glib.FeaturizePointChecked(context.Background(), p)
			fails = append(fails, failed)
		}
		stats := make([]Stats, len(injs))
		for i, in := range injs {
			stats[i] = in.Stats()
		}
		return fails, stats
	}
	fails1, stats1 := run()
	fails2, stats2 := run()
	for i := range fails1 {
		if len(fails1[i]) != len(fails2[i]) {
			t.Fatalf("point %d: run1 failed %v, run2 failed %v", i, fails1[i], fails2[i])
		}
		for j := range fails1[i] {
			if fails1[i][j] != fails2[i][j] {
				t.Fatalf("point %d: run1 failed %v, run2 failed %v", i, fails1[i], fails2[i])
			}
		}
	}
	for i := range stats1 {
		if stats1[i] != stats2[i] {
			t.Fatalf("injector %d: stats %+v vs %+v", i, stats1[i], stats2[i])
		}
	}
}

// TestDecideReplayPredictsOutcomes: walking Schedule.Decide offline predicts
// exactly which channels fail after the guard's retry budget — the property
// the serve-level counter-matching test is built on.
func TestDecideReplayPredictsOutcomes(t *testing.T) {
	lib := testLibrary(t)
	pts := testPoints(t, lib, 50)
	sched := Schedule{Seed: 21, ErrorRate: 0.35}
	wrapped, _, err := WrapLibrary(lib, sched)
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 3
	pol := quiet()
	pol.MaxAttempts = attempts
	glib := wrapped.WithGuards(pol, nil)

	resources := lib.Resources()
	for _, p := range pts {
		var predicted []string
		for _, r := range resources {
			if !resource.Applicable(r, p) {
				continue
			}
			if sched.FailsAttempts(p.Seed, r.Def().Name, 0, attempts) {
				predicted = append(predicted, r.Def().Name)
			}
		}
		_, failed, err := glib.FeaturizePointChecked(context.Background(), p)
		if err != nil {
			// Predicted too: every applicable channel failed.
			applicable := 0
			for _, r := range resources {
				if resource.Applicable(r, p) {
					applicable++
				}
			}
			if len(predicted) != applicable {
				t.Fatalf("point %d errored (%v) but replay predicted only %d/%d channels failing",
					p.ID, err, len(predicted), applicable)
			}
			continue
		}
		if len(failed) != len(predicted) {
			t.Fatalf("point %d: failed %v, replay predicted %v", p.ID, failed, predicted)
		}
		for i := range failed {
			if failed[i] != predicted[i] {
				t.Fatalf("point %d: failed %v, replay predicted %v", p.ID, failed, predicted)
			}
		}
	}
}

// TestRetriesRescueSomeCalls: with error-only injection and retries enabled,
// some calls must fail attempt 0 and succeed on a retry (the attempt-keyed
// dice re-roll), observable as clean points whose injectors saw errors.
func TestRetriesRescueSomeCalls(t *testing.T) {
	lib := testLibrary(t)
	pts := testPoints(t, lib, 50)
	sched := Schedule{Seed: 3, ErrorRate: 0.3}
	rescued := 0
	for _, p := range pts {
		for _, r := range lib.Resources() {
			if !resource.Applicable(r, p) {
				continue
			}
			first := sched.Decide(p.Seed, r.Def().Name, 0).Mode
			if first == ModeError && !sched.FailsAttempts(p.Seed, r.Def().Name, 0, 3) {
				rescued++
			}
		}
	}
	if rescued == 0 {
		t.Fatal("no call is rescued by retries under this schedule; attempt keying is broken")
	}
}

// TestPartialModeDegradesShapes: partial results keep schema-legal shapes —
// fewer categories, missing numerics, zero-tailed embeddings — and are
// reported as successes.
func TestPartialModeDegradesShapes(t *testing.T) {
	lib := testLibrary(t)
	pts := testPoints(t, lib, 30)
	wrapped, injs, err := WrapLibrary(lib, Schedule{Seed: 13, PartialRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	glib := wrapped.WithGuards(quiet(), nil)
	schema := lib.Schema()
	for _, p := range pts {
		clean := lib.FeaturizePoint(p)
		got, failed, err := glib.FeaturizePointChecked(context.Background(), p)
		if err != nil || len(failed) != 0 {
			t.Fatalf("point %d: partial mode must not error (err=%v failed=%v)", p.ID, err, failed)
		}
		for i := 0; i < schema.Len(); i++ {
			cv, gv := clean.At(i), got.At(i)
			if cv.Missing {
				continue
			}
			switch schema.Def(i).Kind {
			case feature.Categorical:
				if !gv.Missing && len(gv.Categories) > len(cv.Categories) {
					t.Fatalf("point %d %s: partial grew categories", p.ID, schema.Def(i).Name)
				}
			case feature.Numeric:
				if !gv.Missing {
					t.Fatalf("point %d %s: partial numeric survived", p.ID, schema.Def(i).Name)
				}
			case feature.Embedding:
				if len(gv.Vec) != len(cv.Vec) {
					t.Fatalf("point %d %s: partial embedding changed dim", p.ID, schema.Def(i).Name)
				}
				for j := len(gv.Vec) / 2; j < len(gv.Vec); j++ {
					if gv.Vec[j] != 0 {
						t.Fatalf("point %d %s: partial embedding tail not zeroed", p.ID, schema.Def(i).Name)
					}
				}
			}
		}
	}
	total := Stats{}
	for _, in := range injs {
		total.Add(in.Stats())
	}
	if total.Partials == 0 {
		t.Fatal("partial faults not counted")
	}
	if total.Errors != 0 || total.Latencies != 0 {
		t.Fatalf("partial-only schedule injected other modes: %+v", total)
	}
}

// TestFlapWindows: the first FlapOpen of every FlapPeriod calls fail.
func TestFlapWindows(t *testing.T) {
	lib := testLibrary(t)
	pts := testPoints(t, lib, 8)
	r := lib.Resources()[0]
	in := Wrap(r, Schedule{Seed: 5, FlapPeriod: 4, FlapOpen: 2})
	ctx := context.Background()
	var outcomes []bool
	for call := 0; call < 8; call++ {
		p := pts[call%len(pts)]
		if !resource.Applicable(r, p) {
			p = pts[(call+1)%len(pts)]
		}
		_, err := in.CheckPoint(ctx, p)
		outcomes = append(outcomes, err == nil)
	}
	want := []bool{false, false, true, true, false, false, true, true}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("call %d ok=%v, want %v (outcomes %v)", i+1, outcomes[i], want[i], outcomes)
		}
	}
	if st := in.Stats(); st.Flaps != 4 {
		t.Fatalf("flaps = %d, want 4", st.Flaps)
	}
}

// TestLatencyModeRespectsContext: injected latency that outlives the
// caller's timeout surfaces as a context error, not a hang.
func TestLatencyModeRespectsContext(t *testing.T) {
	lib := testLibrary(t)
	pts := testPoints(t, lib, 4)
	r := lib.Resources()[0]
	in := Wrap(r, Schedule{Seed: 5, LatencyRate: 1, LatencyMin: time.Second, LatencyMax: time.Second})
	p := pts[0]
	if !resource.Applicable(r, p) {
		p = pts[1]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := in.CheckPoint(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("CheckPoint held the full injected latency (%v) past cancellation", elapsed)
	}
}

// TestChaosFeaturizeRaceClean drives the full 30% error/latency/partial mix
// through parallel checked featurization: no panics, no deadlocks, bounded
// retries, every point either degrades or errors with ErrUnavailable.
func TestChaosFeaturizeRaceClean(t *testing.T) {
	lib := testLibrary(t)
	pts := testPoints(t, lib, 60)
	wrapped, injs, err := WrapLibrary(lib, Schedule{
		Seed:        31,
		ErrorRate:   0.10,
		LatencyRate: 0.10,
		LatencyMin:  50 * time.Microsecond,
		LatencyMax:  200 * time.Microsecond,
		PartialRate: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := quiet()
	pol.Timeout = 50 * time.Millisecond
	pol.BreakerThreshold = 50 // present but hard to trip at this rate
	glib := wrapped.WithGuards(pol, nil)

	checked, err := glib.FeaturizeChecked(context.Background(), mapreduce.Config{Workers: 8}, pts)
	if err != nil {
		t.Fatalf("batch featurize: %v", err)
	}
	for i, c := range checked {
		if c.Err != nil {
			if !errors.Is(c.Err, resource.ErrUnavailable) {
				t.Fatalf("point %d: unexpected error class: %v", pts[i].ID, c.Err)
			}
			continue
		}
		if c.Vec == nil {
			t.Fatalf("point %d: no error and no vector", pts[i].ID)
		}
	}
	// Bounded retries: a guard can retry at most MaxAttempts-1 times per
	// call, so total service calls ≤ guarded calls × MaxAttempts.
	var guardCalls, guardRetries uint64
	for _, gs := range glib.GuardStatuses() {
		guardCalls += gs.Calls
		guardRetries += gs.Retries
	}
	if guardRetries > guardCalls*uint64(pol.MaxAttempts-1) {
		t.Fatalf("retries %d exceed bound %d", guardRetries, guardCalls*uint64(pol.MaxAttempts-1))
	}
	var injCalls uint64
	for _, in := range injs {
		injCalls += in.Stats().Calls
	}
	if injCalls > guardCalls*uint64(pol.MaxAttempts) {
		t.Fatalf("service calls %d exceed retry-bounded maximum %d", injCalls, guardCalls*uint64(pol.MaxAttempts))
	}
}
