// Package faulty is a deterministic, seedable fault-injection layer for
// organizational resources. It wraps a resource.Resource as a
// resource.Fallible whose service calls fail, stall, or return partial
// results on a schedule derived entirely from internal/xrand streams — so
// every chaos run replays bit-for-bit, and a test can predict exactly which
// calls a schedule will fail by replaying Schedule.Decide offline.
//
// Design constraints the rest of the stack depends on:
//
//   - Fault decisions never touch the point's observation RNG streams. A
//     successful call (including one that succeeds after retries) returns
//     exactly the bytes the unwrapped resource would have, and a schedule
//     with all-zero rates is bit-identical to no injection at all.
//   - Decisions are keyed on (schedule seed, point seed, resource, attempt
//     ordinal), where the attempt ordinal counts calls for that (point,
//     resource) pair. Retry N of a failing call therefore re-rolls the dice
//     deterministically — retries can genuinely rescue a call, and a
//     replayer that walks attempt ordinals 0..k reproduces the outcome.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// ErrInjected is the root of every injected failure.
var ErrInjected = errors.New("faulty: injected failure")

// Mode classifies one call's injected fault.
type Mode int

const (
	// ModeNone: the call proceeds normally.
	ModeNone Mode = iota
	// ModeError: the call fails with ErrInjected.
	ModeError
	// ModeLatency: the call succeeds after an injected delay (which the
	// caller's per-attempt timeout may turn into a failure).
	ModeLatency
	// ModePartial: the call succeeds with a degraded value — categories
	// dropped, numerics missing, embedding tail zeroed — and no error, the
	// way throttled services silently truncate responses.
	ModePartial
)

// String renders the mode for test output.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModePartial:
		return "partial"
	default:
		return "unknown"
	}
}

// Decision is one call's fate under a schedule.
type Decision struct {
	Mode    Mode
	Latency time.Duration // set for ModeLatency
}

// Schedule is a deterministic fault plan. Rates are probabilities in [0,1]
// evaluated in order error, latency, partial from a single uniform draw, so
// ErrorRate+LatencyRate+PartialRate must be <= 1.
type Schedule struct {
	// Seed drives every decision; two injectors with equal seeds and rates
	// make identical decisions.
	Seed uint64
	// ErrorRate is the probability a call fails outright.
	ErrorRate float64
	// LatencyRate is the probability a call is delayed by a duration
	// uniform in [LatencyMin, LatencyMax] (defaults 1ms..5ms).
	LatencyRate float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// PartialRate is the probability a call silently degrades its result.
	PartialRate float64
	// FlapPeriod > 0 makes the service flap: of every FlapPeriod calls (a
	// per-injector global call counter), the first FlapOpen fail outright.
	// Flap is evaluated before the per-call dice and does not consume an
	// attempt ordinal, so it models a hard outage window rather than
	// per-call noise. Under concurrency the counter is atomic but call
	// interleaving decides which caller lands in the window.
	FlapPeriod int
	FlapOpen   int
}

// latencyBounds applies the latency defaults.
func (s Schedule) latencyBounds() (lo, hi time.Duration) {
	lo, hi = s.LatencyMin, s.LatencyMax
	if lo <= 0 {
		lo = time.Millisecond
	}
	if hi < lo {
		hi = 5 * time.Millisecond
		if hi < lo {
			hi = lo
		}
	}
	return lo, hi
}

// golden gamma: the splitmix64 increment, reused to stride attempt ordinals
// through the decision keyspace.
const gamma = 0x9e3779b97f4a7c15

// key collapses (schedule seed, resource, point seed) into the per-pair
// decision key.
func (s Schedule) key(pointSeed uint64, res string) uint64 {
	return xrand.Mix(xrand.HashString(s.Seed, res) ^ (pointSeed * gamma))
}

// Decide returns the fate of attempt ordinal attempt (0-based) of the
// (point, resource) pair. It is pure: tests replay it to predict exactly
// which calls a schedule fails, how often retries rescue them, and what the
// resulting degradation counters must read.
func (s Schedule) Decide(pointSeed uint64, res string, attempt int) Decision {
	k := s.key(pointSeed, res)
	draw := xrand.Mix(k + gamma*uint64(attempt+1))
	u := float64(draw>>11) / (1 << 53)
	switch {
	case u < s.ErrorRate:
		return Decision{Mode: ModeError}
	case u < s.ErrorRate+s.LatencyRate:
		lo, hi := s.latencyBounds()
		span := uint64(hi - lo + 1)
		lat := lo + time.Duration(xrand.Mix(draw)%span)
		return Decision{Mode: ModeLatency, Latency: lat}
	case u < s.ErrorRate+s.LatencyRate+s.PartialRate:
		return Decision{Mode: ModePartial}
	default:
		return Decision{}
	}
}

// FailsAttempts reports whether attempts first..first+n-1 of the (point,
// resource) pair are all ModeError — i.e. whether a caller retrying n times
// from ordinal first exhausts its budget (ignoring latency-induced
// timeouts, which depend on the caller's Policy.Timeout).
func (s Schedule) FailsAttempts(pointSeed uint64, res string, first, n int) bool {
	for a := first; a < first+n; a++ {
		if s.Decide(pointSeed, res, a).Mode != ModeError {
			return false
		}
	}
	return true
}

// Stats counts what one injector actually did.
type Stats struct {
	Calls     uint64 // CheckPoint calls received
	Errors    uint64 // ModeError faults injected (dice)
	Latencies uint64 // ModeLatency faults injected
	Partials  uint64 // ModePartial faults injected
	Flaps     uint64 // calls failed by a flap window
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Calls += other.Calls
	s.Errors += other.Errors
	s.Latencies += other.Latencies
	s.Partials += other.Partials
	s.Flaps += other.Flaps
}

// Injector wraps one resource with a fault schedule. It implements
// resource.Fallible; the plain Observe path delegates untouched (faults
// only exist on the checked path, mirroring how the infallible simulation
// never sees them).
type Injector struct {
	inner resource.Resource
	sched Schedule
	name  string

	calls atomic.Uint64 // global ordinal, drives flap windows

	mu       sync.Mutex
	attempts map[uint64]int // point seed → next attempt ordinal

	errors    atomic.Uint64
	latencies atomic.Uint64
	partials  atomic.Uint64
	flaps     atomic.Uint64
}

// Wrap builds an injector over r.
func Wrap(r resource.Resource, s Schedule) *Injector {
	return &Injector{
		inner:    r,
		sched:    s,
		name:     r.Def().Name,
		attempts: make(map[uint64]int),
	}
}

// Def implements resource.Resource.
func (in *Injector) Def() feature.Def { return in.inner.Def() }

// Supports implements resource.Resource.
func (in *Injector) Supports(m synth.Modality) bool { return in.inner.Supports(m) }

// Observe implements resource.Resource by delegating fault-free: the
// unchecked featurization path is never injected, preserving the infallible
// pipeline bit-for-bit.
func (in *Injector) Observe(e *synth.Entity, m synth.Modality, rng *rand.Rand) feature.Value {
	return in.inner.Observe(e, m, rng)
}

// Schedule returns the injector's fault plan (for offline replay in tests).
func (in *Injector) Schedule() Schedule { return in.sched }

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:     in.calls.Load(),
		Errors:    in.errors.Load(),
		Latencies: in.latencies.Load(),
		Partials:  in.partials.Load(),
		Flaps:     in.flaps.Load(),
	}
}

// nextAttempt returns and advances the attempt ordinal for a point.
func (in *Injector) nextAttempt(pointSeed uint64) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	a := in.attempts[pointSeed]
	in.attempts[pointSeed] = a + 1
	return a
}

// CheckPoint implements resource.Fallible: one full service call for p,
// subjected to the schedule.
func (in *Injector) CheckPoint(ctx context.Context, p *synth.Point) (feature.Value, error) {
	n := in.calls.Add(1)
	if in.sched.FlapPeriod > 0 && in.sched.FlapOpen > 0 &&
		int((n-1)%uint64(in.sched.FlapPeriod)) < in.sched.FlapOpen {
		in.flaps.Add(1)
		return feature.Value{Missing: true},
			fmt.Errorf("faulty: %s: flap window (call %d): %w", in.name, n, ErrInjected)
	}
	attempt := in.nextAttempt(p.Seed)
	d := in.sched.Decide(p.Seed, in.name, attempt)
	switch d.Mode {
	case ModeError:
		in.errors.Add(1)
		return feature.Value{Missing: true},
			fmt.Errorf("faulty: %s: point %d attempt %d: %w", in.name, p.ID, attempt, ErrInjected)
	case ModeLatency:
		in.latencies.Add(1)
		t := time.NewTimer(d.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return feature.Value{Missing: true}, ctx.Err()
		}
	}
	val := resource.ObservePoint(in.inner, p)
	if d.Mode == ModePartial {
		in.partials.Add(1)
		val = degrade(val, in.inner.Def())
	}
	return val, nil
}

// degrade truncates a value the way a throttled service truncates a
// response: half the categories vanish, numerics drop entirely, the tail of
// an embedding zeroes out. Deterministic in the input value, and
// shape-preserving so the schema still accepts it.
func degrade(v feature.Value, d feature.Def) feature.Value {
	if v.Missing {
		return v
	}
	switch d.Kind {
	case feature.Categorical:
		if len(v.Categories) <= 1 {
			return feature.MissingValue()
		}
		keep := (len(v.Categories) + 1) / 2
		return feature.CategoricalValue(v.Categories[:keep]...)
	case feature.Numeric:
		return feature.MissingValue()
	case feature.Embedding:
		vec := append([]float64(nil), v.Vec...)
		for i := len(vec) / 2; i < len(vec); i++ {
			vec[i] = 0
		}
		return feature.EmbeddingValue(vec)
	default:
		return feature.MissingValue()
	}
}

// WrapLibrary rebuilds lib with every resource wrapped by an injector under
// sched, returning the wrapped library (unguarded — callers layer
// WithGuards on top) and the injectors in schema order for counter access.
func WrapLibrary(lib *resource.Library, sched Schedule) (*resource.Library, []*Injector, error) {
	inner := lib.Resources()
	wrapped := make([]resource.Resource, len(inner))
	injs := make([]*Injector, len(inner))
	for i, r := range inner {
		injs[i] = Wrap(r, sched)
		wrapped[i] = injs[i]
	}
	out, err := resource.NewLibrary(lib.World(), wrapped...)
	if err != nil {
		return nil, nil, err
	}
	return out, injs, nil
}
