// Package profiling wires the standard pprof profiles into the command-line
// binaries, so pipeline hot spots can be inspected on real runs
// (`go tool pprof <binary> <profile>`) rather than only on benchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the flag values: cpuPath enables CPU profiling
// now, memPath schedules a heap profile at stop time. Empty paths disable
// the corresponding profile. The returned stop function must run before the
// process exits (defer it in main) and reports any write failure.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
