package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i) * 1.000001
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
	}
}

func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(mem); err != nil || info.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("expected error for uncreatable CPU profile path")
	}
}

func TestStopBadMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("expected error for uncreatable heap profile path")
	}
}

// TestStartTwiceSequential: a stopped profiler must be restartable — the
// commands defer stop and may be invoked back to back in tests.
func TestStartTwiceSequential(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		stop, err := Start(filepath.Join(dir, "cpu"), "")
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := stop(); err != nil {
			t.Fatalf("round %d stop: %v", i, err)
		}
	}
}
