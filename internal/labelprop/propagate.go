package labelprop

import (
	"context"
	"fmt"
	"math"
	"sort"

	"crossmodal/internal/mapreduce"
	"crossmodal/internal/trace"
)

// PropConfig controls the propagation iteration.
type PropConfig struct {
	// MaxIters bounds Jacobi iterations (default 50).
	MaxIters int
	// Tol stops iteration when the largest score change falls below it
	// (default 1e-4).
	Tol float64
	// Prior is the resting score of vertices with no labeled influence,
	// typically the class base rate (default 0.5).
	Prior float64
	// Shards is the number of parallel shards per iteration — the
	// "streaming, distributed" Expander execution mode on goroutines
	// (default 4).
	Shards int
}

func (c PropConfig) withDefaults() PropConfig {
	if c.MaxIters <= 0 {
		c.MaxIters = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.Prior <= 0 || c.Prior >= 1 {
		c.Prior = 0.5
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	return c
}

// Result holds converged propagation scores.
type Result struct {
	// Scores[i] is vertex i's propagated probability of being positive;
	// seed vertices keep their seed value (the Zhu–Ghahramani clamp).
	Scores []float64
	// Reached[i] reports whether any labeled influence arrived at vertex
	// i (unreached vertices sit at the prior and carry no information).
	Reached []bool
	// Iters is the number of iterations run.
	Iters int
}

// Propagate runs clamped label propagation: seeds maps vertex index to its
// fixed label score in [0,1] (1 = positive, 0 = negative); every other
// vertex converges to the weighted average of its neighbors.
func Propagate(ctx context.Context, g *Graph, seeds map[int]float64, cfg PropConfig) (*Result, error) {
	return PropagateWarm(ctx, g, seeds, cfg, nil)
}

// PropagateWarm is Propagate with a warm start: non-seed vertex i begins at
// prev[i] (its score from an earlier propagation over a prefix of this
// graph) instead of the prior when i < len(prev) and prev[i] lies in [0,1].
// The clamped system has a unique fixed point on the reached component, so
// the converged result matches a cold Propagate to within Tol — warm
// starting only cuts the iterations needed to get there, which is what lets
// the streaming pipeline restart propagation cheaply after each graph delta.
func PropagateWarm(ctx context.Context, g *Graph, seeds map[int]float64, cfg PropConfig, prev []float64) (*Result, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("labelprop: empty graph")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("labelprop: no seed labels")
	}
	ctx, span := trace.Start(ctx, "labelprop.propagate")
	defer span.End()
	span.SetInt("vertices", int64(n))
	span.SetInt("seeds", int64(len(seeds)))
	for v, s := range seeds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("labelprop: seed vertex %d out of range [0,%d)", v, n)
		}
		if s < 0 || s > 1 {
			return nil, fmt.Errorf("labelprop: seed score %v for vertex %d out of [0,1]", s, v)
		}
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	reached := make([]bool, n)
	// Seed membership hoisted out of the Jacobi inner loop: isSeed[i]
	// replaces a per-vertex-per-iteration map lookup.
	isSeed := make([]bool, n)
	for i := range cur {
		if i < len(prev) && prev[i] >= 0 && prev[i] <= 1 {
			cur[i] = prev[i]
		} else {
			cur[i] = cfg.Prior
		}
	}
	if len(prev) > 0 {
		span.SetInt("warm_scores", int64(len(prev)))
	}
	for v, s := range seeds {
		cur[v] = s
		reached[v] = true
		isSeed[v] = true
	}
	// Unreached vertices in ascending order; the frontier scan compacts this
	// list instead of rescanning all n vertices every iteration.
	unreached := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !reached[i] {
			unreached = append(unreached, i)
		}
	}

	// Shard vertices for parallel Jacobi sweeps.
	shardIDs := make([]int, cfg.Shards)
	for s := range shardIDs {
		shardIDs[s] = s
	}
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		res.Iters = iter
		deltas, err := mapreduce.Map(ctx, mapreduce.Config{Workers: cfg.Shards}, shardIDs, func(s int) (float64, error) {
			var maxDelta float64
			for i := s; i < n; i += cfg.Shards {
				if isSeed[i] {
					next[i] = cur[i]
					continue
				}
				var num, den float64
				hit := false
				for _, e := range g.Neighbors(i) {
					if reached[e.To] {
						num += e.Weight * cur[e.To]
						den += e.Weight
						hit = true
					}
				}
				if !hit {
					next[i] = cfg.Prior
					continue
				}
				next[i] = num / den
				if d := math.Abs(next[i] - cur[i]); d > maxDelta {
					maxDelta = d
				}
			}
			return maxDelta, nil
		})
		if err != nil {
			return nil, err
		}
		// Mark newly reached vertices after the sweep (frontier grows one
		// hop per iteration). The scan walks only still-unreached vertices,
		// in ascending order with reached updated live — exactly the order
		// a full 0..n-1 sweep would visit them — and compacts survivors in
		// place.
		newlyReached := false
		remaining := unreached[:0]
		for _, i := range unreached {
			hit := false
			for _, e := range g.Neighbors(i) {
				if reached[e.To] {
					hit = true
					break
				}
			}
			if hit {
				reached[i] = true
				newlyReached = true
			} else {
				remaining = append(remaining, i)
			}
		}
		unreached = remaining
		cur, next = next, cur
		var maxDelta float64
		for _, d := range deltas {
			if d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < cfg.Tol && !newlyReached {
			break
		}
	}
	res.Scores = cur
	res.Reached = reached
	span.SetInt("iters", int64(res.Iters))
	return res, nil
}

// Cuts are score thresholds turning propagation scores into LF votes:
// score >= Pos votes positive, score <= Neg votes negative.
type Cuts struct {
	Pos, Neg float64
}

// ChooseCuts tunes vote thresholds on held-out labeled scores (the paper
// tunes against the old-modality development set): Pos is the lowest score
// whose precision over dev positives reaches posPrecision, Neg the highest
// score whose precision over dev negatives reaches negPrecision. When no
// threshold reaches the target the corresponding cut degrades to the best
// achievable one.
func ChooseCuts(scores []float64, labels []int8, posPrecision, negPrecision float64) (Cuts, error) {
	if len(scores) != len(labels) {
		return Cuts{}, fmt.Errorf("labelprop: %d scores vs %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return Cuts{}, fmt.Errorf("labelprop: no dev scores")
	}
	type pair struct {
		s float64
		l int8
	}
	pairs := make([]pair, len(scores))
	for i := range scores {
		pairs[i] = pair{scores[i], labels[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].s > pairs[b].s })

	cuts := Cuts{Pos: math.Inf(1), Neg: math.Inf(-1)}
	// Descending sweep for the positive cut.
	bestPrec, pos := -1.0, 0
	bestCut := pairs[0].s
	for i, p := range pairs {
		if p.l > 0 {
			pos++
		}
		prec := float64(pos) / float64(i+1)
		if prec > bestPrec {
			bestPrec, bestCut = prec, p.s
		}
		if prec >= posPrecision && pos > 0 {
			cuts.Pos = p.s
		}
	}
	if math.IsInf(cuts.Pos, 1) {
		cuts.Pos = bestCut
	}
	// Ascending sweep for the negative cut.
	bestPrec, neg := -1.0, 0
	bestCut = pairs[len(pairs)-1].s
	for i := len(pairs) - 1; i >= 0; i-- {
		p := pairs[i]
		if p.l < 0 {
			neg++
		}
		prec := float64(neg) / float64(len(pairs)-i)
		if prec > bestPrec {
			bestPrec, bestCut = prec, p.s
		}
		if prec >= negPrecision && neg > 0 {
			cuts.Neg = p.s
		}
	}
	if math.IsInf(cuts.Neg, -1) {
		cuts.Neg = bestCut
	}
	if cuts.Neg >= cuts.Pos {
		// Degenerate overlap: separate the cuts at their midpoint so the
		// LF never votes both ways.
		mid := (cuts.Neg + cuts.Pos) / 2
		cuts.Pos = math.Nextafter(mid, math.Inf(1))
		cuts.Neg = math.Nextafter(mid, math.Inf(-1))
	}
	return cuts, nil
}
