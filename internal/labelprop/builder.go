package labelprop

import (
	"context"
	"math/rand"
	"sort"
	"sync"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/trace"
	"crossmodal/internal/xrand"
)

// GraphDelta is one batch of graph changes produced by Builder.ApplyDelta:
// directed adjacency for appended vertices plus recomputed directed
// adjacency for the existing vertices whose candidate sets the new
// vertices changed.
type GraphDelta struct {
	// Appended holds the directed edge selections of the new vertices, in
	// ascending vertex order starting at the graph's previous vertex count.
	Appended [][]Edge
	// Updated maps an existing vertex to its recomputed directed edge
	// selection.
	Updated map[int][]Edge
}

// ApplyDelta folds one delta into the graph: appended vertices extend the
// directed selection lists, updated vertices replace theirs, and the
// symmetric adjacency is rebuilt from the directed lists. Rebuilding is
// O(edges) — independent of how small the delta is — which keeps the
// incremental path simple and exactly equivalent to a full build; the
// savings live in not re-scoring unaffected vertices' candidates, which is
// where construction time actually goes.
func (g *Graph) ApplyDelta(d *GraphDelta) {
	g.directed = append(g.directed, d.Appended...)
	for i, es := range d.Updated {
		g.directed[i] = es
	}
	g.adj = symmetrize(g.directed)
}

type builderMode int

const (
	modeAllPairs builderMode = iota
	modeBlocked
	modeLSH
)

// Builder constructs a similarity graph incrementally. Feeding the whole
// corpus through one ApplyDelta is exactly BuildGraph (which is now
// implemented this way); feeding it in chunks produces a bit-identical
// graph, because every per-vertex decision — candidate enumeration order,
// sampling RNG, edge scoring, top-K truncation — depends only on (Seed,
// vertex index, final candidate index state), and the candidate indexes
// (block table or LSH buckets) grow append-only in vertex order.
//
// The streaming pipeline uses this to fold each spilled chunk's graph
// window into the propagation graph without rebuilding from scratch.
type Builder struct {
	cfg  GraphConfig
	kern *feature.SimKernel
	vecs []*feature.Vector
	g    *Graph
	mode builderMode

	// blocked-mode state: "feat=cat" → vertices, plus per-vertex keys.
	blockIndex map[string][]int
	vertexKeys [][]string

	// LSH-mode state: the salt set (fixed by Seed, independent of corpus
	// size — what makes the index appendable) and the growing bucket index.
	hasher *lshHasher
	lsh    *lshIndex
}

// NewBuilder prepares an incremental builder for vectors of the given
// schema. Scales (and cfg.Weights) are fixed for the builder's lifetime;
// fit them over the full corpus first (feature.ScalesAccum) so chunked and
// whole-corpus builds see the same kernel.
func NewBuilder(schema *feature.Schema, cfg GraphConfig, scales feature.Scales) (*Builder, error) {
	cfg = cfg.withDefaults()
	b := &Builder{
		cfg:  cfg,
		kern: feature.NewSimKernel(schema, scales, cfg.Weights),
		g:    &Graph{},
	}
	switch {
	case cfg.LSH.Enable && !cfg.Exact:
		h, err := newLSHHasher(schema, cfg)
		if err != nil {
			return nil, err
		}
		b.mode = modeLSH
		b.hasher = h
		b.lsh = &lshIndex{bands: h.bands, rows: h.rows, buckets: make(map[uint64][]int)}
	case len(cfg.BlockFeatures) == 0:
		b.mode = modeAllPairs
	default:
		b.mode = modeBlocked
		b.blockIndex = make(map[string][]int)
	}
	return b, nil
}

// NumVertices returns the number of vertices applied so far.
func (b *Builder) NumVertices() int { return len(b.vecs) }

// Graph returns the graph over all applied vertices. The same *Graph is
// updated in place by subsequent deltas.
func (b *Builder) Graph() *Graph { return b.g }

// ApplyDelta appends newVecs as vertices and updates the graph: candidate
// indexes grow in place, then directed edges are recomputed for the new
// vertices and for every existing vertex whose candidate set changed
// (all-pairs mode: all of them; blocked/LSH modes: only vertices sharing a
// block key or signature bucket with a new vertex).
func (b *Builder) ApplyDelta(ctx context.Context, newVecs []*feature.Vector) error {
	if len(newVecs) == 0 {
		return nil
	}
	ctx, span := trace.Start(ctx, "labelprop.apply_delta")
	defer span.End()
	base := len(b.vecs)
	b.vecs = append(b.vecs, newVecs...)
	n := len(b.vecs)

	var affected []int
	switch b.mode {
	case modeAllPairs:
		affected = make([]int, base)
		for i := range affected {
			affected[i] = i
		}
	case modeBlocked:
		mark := make([]bool, base)
		for k, v := range newVecs {
			keys := blockKeys(v, b.cfg.BlockFeatures)
			b.vertexKeys = append(b.vertexKeys, keys)
			for _, key := range keys {
				for _, j := range b.blockIndex[key] {
					if j < base && !mark[j] {
						mark[j] = true
						affected = append(affected, j)
					}
				}
				b.blockIndex[key] = append(b.blockIndex[key], base+k)
			}
		}
	case modeLSH:
		bands := b.lsh.bands
		// Sign the new vertices in parallel (disjoint writes keep the
		// result worker-invariant), then grow the bucket table serially in
		// vertex order — the same order a from-scratch index build uses,
		// so bucket contents (and hence candidate enumeration) match a
		// full rebuild exactly.
		keys := make([][]uint64, len(newVecs))
		ids := make([]int, len(newVecs))
		for i := range ids {
			ids[i] = i
		}
		if _, err := mapreduce.Map(ctx, mapreduce.Config{Workers: b.cfg.Workers}, ids, func(k int) (struct{}, error) {
			keys[k] = b.hasher.sign(newVecs[k])
			return struct{}{}, nil
		}); err != nil {
			return err
		}
		b.lsh.keys = append(b.lsh.keys, make([]uint64, len(newVecs)*bands)...)
		b.lsh.indexed = append(b.lsh.indexed, make([]bool, len(newVecs))...)
		mark := make([]bool, base)
		for k := range newVecs {
			if keys[k] == nil {
				continue
			}
			i := base + k
			b.lsh.indexed[i] = true
			copy(b.lsh.keys[i*bands:], keys[k])
			for _, key := range keys[k] {
				for _, j := range b.lsh.buckets[key] {
					if j < base && !mark[j] {
						mark[j] = true
						affected = append(affected, j)
					}
				}
				b.lsh.buckets[key] = append(b.lsh.buckets[key], i)
			}
		}
	}
	sort.Ints(affected)

	recompute := make([]int, 0, len(affected)+len(newVecs))
	recompute = append(recompute, affected...)
	for i := base; i < n; i++ {
		recompute = append(recompute, i)
	}

	candidates := b.candidateFunc()
	scratch := sync.Pool{New: func() any {
		return &dedupeSet{stamp: make([]int32, n)}
	}}
	edges, err := mapreduce.Map(ctx, mapreduce.Config{Workers: b.cfg.Workers}, recompute, func(i int) ([]Edge, error) {
		seen := scratch.Get().(*dedupeSet)
		defer scratch.Put(seen)
		rng := xrand.New(b.cfg.Seed ^ int64(i)*0x9e3779b9)
		var es []Edge
		for _, j := range candidates(i, rng, seen) {
			w := b.kern.Weighted(b.vecs[i], b.vecs[j])
			if w >= b.cfg.MinWeight {
				es = append(es, Edge{To: j, Weight: w})
			}
		}
		sort.Slice(es, func(a, c int) bool {
			if es[a].Weight != es[c].Weight {
				return es[a].Weight > es[c].Weight
			}
			return es[a].To < es[c].To
		})
		if len(es) > b.cfg.K {
			es = es[:b.cfg.K]
		}
		return es, nil
	})
	if err != nil {
		return err
	}

	delta := &GraphDelta{
		Appended: make([][]Edge, n-base),
		Updated:  make(map[int][]Edge, len(affected)),
	}
	for idx, i := range recompute {
		if i >= base {
			delta.Appended[i-base] = edges[idx]
		} else {
			delta.Updated[i] = edges[idx]
		}
	}
	b.g.ApplyDelta(delta)
	span.SetInt("added", int64(len(newVecs)))
	span.SetInt("updated", int64(len(affected)))
	span.SetInt("vertices", int64(n))
	return nil
}

// candidateFunc returns the per-vertex candidate generator for the
// builder's current index state. The closures read the live indexes, so
// one call per ApplyDelta suffices.
func (b *Builder) candidateFunc() func(i int, rng *rand.Rand, seen *dedupeSet) []int {
	switch b.mode {
	case modeLSH:
		return b.lsh.candidatesFor(b.cfg.MaxCandidates)
	case modeAllPairs:
		return func(i int, _ *rand.Rand, seen *dedupeSet) []int {
			out := seen.buf[:0]
			for j := 0; j < len(b.vecs); j++ {
				if j != i {
					out = append(out, j)
				}
			}
			seen.buf = out
			return out
		}
	default:
		return func(i int, rng *rand.Rand, seen *dedupeSet) []int {
			seen.reset()
			for _, key := range b.vertexKeys[i] {
				for _, j := range b.blockIndex[key] {
					if j != i {
						seen.add(j)
					}
				}
			}
			out := seen.buf
			if len(out) > b.cfg.MaxCandidates {
				rng.Shuffle(len(out), func(a, c int) { out[a], out[c] = out[c], out[a] })
				out = out[:b.cfg.MaxCandidates]
				sort.Ints(out)
			}
			return out
		}
	}
}

// lshInfo exposes the derived banding for BuildGraph's trace span.
func (b *Builder) lshInfo() (bands, rows int, ok bool) {
	if b.mode != modeLSH {
		return 0, 0, false
	}
	return b.lsh.bands, b.lsh.rows, true
}
