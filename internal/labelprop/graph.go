// Package labelprop implements label propagation (Zhu & Ghahramani) over a
// similarity graph induced by the common feature space — the paper's
// mechanism for finding borderline positive and negative examples that
// itemset-mined LFs miss (§4.4), standing in for Google's Expander platform.
//
// Vertices are data points of all modalities; edge weights follow paper
// Algorithm 1 (Jaccard similarity on categorical features, normalized
// distance on numeric features, extended with cosine similarity on
// embeddings, which exist only for the new modality but are exactly the
// "features that are difficult to construct LFs with" the paper feeds the
// graph). Labels of old-modality points propagate along edges until
// convergence; the converged score becomes a threshold LF and a nonservable
// feature.
package labelprop

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
)

// GraphConfig controls kNN graph construction.
type GraphConfig struct {
	// K is the number of neighbors kept per vertex (default 10).
	K int
	// BlockFeatures names the categorical features used to block candidate
	// generation: only pairs sharing at least one category on a blocking
	// feature are scored, which keeps construction far below O(n²).
	// Empty means exact all-pairs construction (small inputs only).
	BlockFeatures []string
	// MaxCandidates caps the number of scored candidates per vertex when
	// blocking (default 300); candidates beyond the cap are sampled
	// deterministically from Seed.
	MaxCandidates int
	// MinWeight drops edges with weight below it (default 0.05).
	MinWeight float64
	// Weights are optional per-feature importance multipliers for edge
	// similarity (see FitFeatureWeights); nil means uniform.
	Weights feature.Weights
	// Seed drives candidate sampling.
	Seed int64
	// Workers parallelizes per-vertex neighbor search.
	Workers int
}

func (c GraphConfig) withDefaults() GraphConfig {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 300
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.05
	}
	return c
}

// Edge is one weighted neighbor link.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a symmetric weighted kNN graph over data points.
type Graph struct {
	adj [][]Edge
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// Neighbors returns vertex i's adjacency list (shared slice; do not modify).
func (g *Graph) Neighbors(i int) []Edge { return g.adj[i] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// BuildGraph constructs the similarity graph over vecs. All vectors must
// share one schema. Scales should be fitted on the same corpus
// (feature.FitScales) so numeric similarities are calibrated.
func BuildGraph(ctx context.Context, cfg GraphConfig, vecs []*feature.Vector, scales feature.Scales) (*Graph, error) {
	cfg = cfg.withDefaults()
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("labelprop: no vertices")
	}

	// Candidate sets per vertex: blocked by shared categorical values, or
	// all-pairs when no blocking features are configured.
	var candidatesFor func(i int, rng *rand.Rand) []int
	if len(cfg.BlockFeatures) == 0 {
		candidatesFor = func(i int, _ *rand.Rand) []int {
			out := make([]int, 0, n-1)
			for j := 0; j < n; j++ {
				if j != i {
					out = append(out, j)
				}
			}
			return out
		}
	} else {
		index := buildBlockIndex(vecs, cfg.BlockFeatures)
		candidatesFor = func(i int, rng *rand.Rand) []int {
			seen := map[int]bool{}
			var out []int
			for _, key := range blockKeys(vecs[i], cfg.BlockFeatures) {
				for _, j := range index[key] {
					if j != i && !seen[j] {
						seen[j] = true
						out = append(out, j)
					}
				}
			}
			if len(out) > cfg.MaxCandidates {
				rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
				out = out[:cfg.MaxCandidates]
				sort.Ints(out)
			}
			return out
		}
	}

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	directed, err := mapreduce.Map(ctx, mapreduce.Config{Workers: cfg.Workers}, ids, func(i int) ([]Edge, error) {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9e3779b9))
		var edges []Edge
		for _, j := range candidatesFor(i, rng) {
			w := feature.WeightedSimilarity(vecs[i], vecs[j], scales, cfg.Weights)
			if w >= cfg.MinWeight {
				edges = append(edges, Edge{To: j, Weight: w})
			}
		}
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].Weight != edges[b].Weight {
				return edges[a].Weight > edges[b].Weight
			}
			return edges[a].To < edges[b].To
		})
		if len(edges) > cfg.K {
			edges = edges[:cfg.K]
		}
		return edges, nil
	})
	if err != nil {
		return nil, err
	}

	// Symmetrize: keep an edge if either endpoint selected it.
	adj := make([][]Edge, n)
	type key struct{ a, b int }
	seen := make(map[key]bool)
	add := func(a, b int, w float64) {
		k := key{a, b}
		if a > b {
			k = key{b, a}
		}
		if seen[k] {
			return
		}
		seen[k] = true
		adj[a] = append(adj[a], Edge{To: b, Weight: w})
		adj[b] = append(adj[b], Edge{To: a, Weight: w})
	}
	for i, edges := range directed {
		for _, e := range edges {
			add(i, e.To, e.Weight)
		}
	}
	for i := range adj {
		es := adj[i]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
	}
	return &Graph{adj: adj}, nil
}

// buildBlockIndex maps "feat=cat" keys to the vertices carrying them.
func buildBlockIndex(vecs []*feature.Vector, feats []string) map[string][]int {
	index := make(map[string][]int)
	for i, v := range vecs {
		for _, key := range blockKeys(v, feats) {
			index[key] = append(index[key], i)
		}
	}
	return index
}

func blockKeys(v *feature.Vector, feats []string) []string {
	var keys []string
	for _, f := range feats {
		val := v.Get(f)
		if val.Missing {
			continue
		}
		for _, c := range val.Categories {
			keys = append(keys, f+"="+c)
		}
	}
	return keys
}
