// Package labelprop implements label propagation (Zhu & Ghahramani) over a
// similarity graph induced by the common feature space — the paper's
// mechanism for finding borderline positive and negative examples that
// itemset-mined LFs miss (§4.4), standing in for Google's Expander platform.
//
// Vertices are data points of all modalities; edge weights follow paper
// Algorithm 1 (Jaccard similarity on categorical features, normalized
// distance on numeric features, extended with cosine similarity on
// embeddings, which exist only for the new modality but are exactly the
// "features that are difficult to construct LFs with" the paper feeds the
// graph). Labels of old-modality points propagate along edges until
// convergence; the converged score becomes a threshold LF and a nonservable
// feature.
package labelprop

import (
	"context"
	"fmt"
	"sort"

	"crossmodal/internal/feature"
	"crossmodal/internal/trace"
)

// GraphConfig controls kNN graph construction.
type GraphConfig struct {
	// K is the number of neighbors kept per vertex (default 10).
	K int
	// BlockFeatures names the categorical features used to block candidate
	// generation: only pairs sharing at least one category on a blocking
	// feature are scored, which keeps construction far below O(n²).
	// Empty means exact all-pairs construction (small inputs only).
	BlockFeatures []string
	// MaxCandidates caps the number of scored candidates per vertex when
	// blocking (default 300); candidates beyond the cap are sampled
	// deterministically from Seed.
	MaxCandidates int
	// MinWeight drops edges with weight below it (default 0.05).
	MinWeight float64
	// Weights are optional per-feature importance multipliers for edge
	// similarity (see FitFeatureWeights); nil means uniform.
	Weights feature.Weights
	// Seed drives candidate sampling.
	Seed int64
	// Workers parallelizes per-vertex neighbor search. The graph is
	// identical for every worker count (asserted by tests): per-vertex
	// work depends only on the vertex index and Seed.
	Workers int
	// LSH enables MinHash-LSH approximate candidate generation (see
	// LSHConfig): candidates come from signature-band collisions instead
	// of block scans, then are re-scored with the exact kernel. The zero
	// value is disabled.
	LSH LSHConfig
	// Exact forces the exact candidate paths (all-pairs or blocked) even
	// when LSH is enabled — the escape hatch pinning today's output
	// bit-for-bit.
	Exact bool
}

func (c GraphConfig) withDefaults() GraphConfig {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 300
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.05
	}
	return c
}

// Edge is one weighted neighbor link.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a symmetric weighted kNN graph over data points. The directed
// per-vertex selections are retained alongside the symmetrized adjacency so
// ApplyDelta can fold in new vertices without recomputing old selections.
type Graph struct {
	adj      [][]Edge
	directed [][]Edge
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// Neighbors returns vertex i's adjacency list (shared slice; do not modify).
func (g *Graph) Neighbors(i int) []Edge { return g.adj[i] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// dedupeSet is a reusable epoch-stamped membership set: stamp[j] == epoch
// means j is in the set. Bumping the epoch clears the set in O(1), so one
// allocation serves every vertex a worker processes — the per-vertex
// map[int]bool this replaces was the blocked path's main allocation churn.
type dedupeSet struct {
	stamp []int32
	epoch int32
	buf   []int // reusable candidate buffer
}

func (s *dedupeSet) reset() {
	s.epoch++
	if s.epoch == 0 { // wrapped: clear stamps once every 2^31 resets
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.buf = s.buf[:0]
}

func (s *dedupeSet) add(j int) bool {
	if s.stamp[j] == s.epoch {
		return false
	}
	s.stamp[j] = s.epoch
	s.buf = append(s.buf, j)
	return true
}

// BuildGraph constructs the similarity graph over vecs. All vectors must
// share one schema. Scales should be fitted on the same corpus
// (feature.FitScales) so numeric similarities are calibrated. It is one
// Builder delta over the whole corpus; chunked construction through
// Builder.ApplyDelta yields a bit-identical graph.
func BuildGraph(ctx context.Context, cfg GraphConfig, vecs []*feature.Vector, scales feature.Scales) (*Graph, error) {
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("labelprop: no vertices")
	}
	ctx, span := trace.Start(ctx, "labelprop.build_graph")
	defer span.End()
	span.SetInt("vertices", int64(n))
	b, err := NewBuilder(vecs[0].Schema(), cfg, scales)
	if err != nil {
		return nil, err
	}
	if bands, rows, ok := b.lshInfo(); ok {
		span.SetInt("lsh_bands", int64(bands))
		span.SetInt("lsh_rows", int64(rows))
	}
	if err := b.ApplyDelta(ctx, vecs); err != nil {
		return nil, err
	}
	g := b.Graph()
	span.SetInt("edges", int64(g.NumEdges()))
	return g, nil
}

// symmetrize keeps an edge if either endpoint selected it. Each vertex's
// final list is the merge of its own selections with the mirrored selections
// of its in-neighbors, deduplicated after a per-vertex sort — no global
// pair-keyed map. Similarity is symmetric, so when both directions selected
// an edge the duplicate entries carry equal weights and collapsing keeps
// either.
func symmetrize(directed [][]Edge) [][]Edge {
	n := len(directed)
	deg := make([]int, n)
	for i, es := range directed {
		deg[i] += len(es)
		for _, e := range es {
			deg[e.To]++
		}
	}
	adj := make([][]Edge, n)
	for i := range adj {
		adj[i] = make([]Edge, 0, deg[i])
	}
	for i, es := range directed {
		for _, e := range es {
			adj[i] = append(adj[i], e)
			adj[e.To] = append(adj[e.To], Edge{To: i, Weight: e.Weight})
		}
	}
	for i := range adj {
		es := adj[i]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
		// Collapse double-selected edges (equal To ⇒ equal weight).
		out := es[:0]
		for _, e := range es {
			if len(out) > 0 && out[len(out)-1].To == e.To {
				continue
			}
			out = append(out, e)
		}
		adj[i] = out
	}
	return adj
}

func blockKeys(v *feature.Vector, feats []string) []string {
	var keys []string
	for _, f := range feats {
		val := v.Get(f)
		if val.Missing {
			continue
		}
		for _, c := range val.Categories {
			keys = append(keys, f+"="+c)
		}
	}
	return keys
}
