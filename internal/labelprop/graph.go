// Package labelprop implements label propagation (Zhu & Ghahramani) over a
// similarity graph induced by the common feature space — the paper's
// mechanism for finding borderline positive and negative examples that
// itemset-mined LFs miss (§4.4), standing in for Google's Expander platform.
//
// Vertices are data points of all modalities; edge weights follow paper
// Algorithm 1 (Jaccard similarity on categorical features, normalized
// distance on numeric features, extended with cosine similarity on
// embeddings, which exist only for the new modality but are exactly the
// "features that are difficult to construct LFs with" the paper feeds the
// graph). Labels of old-modality points propagate along edges until
// convergence; the converged score becomes a threshold LF and a nonservable
// feature.
package labelprop

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/trace"
	"crossmodal/internal/xrand"
)

// GraphConfig controls kNN graph construction.
type GraphConfig struct {
	// K is the number of neighbors kept per vertex (default 10).
	K int
	// BlockFeatures names the categorical features used to block candidate
	// generation: only pairs sharing at least one category on a blocking
	// feature are scored, which keeps construction far below O(n²).
	// Empty means exact all-pairs construction (small inputs only).
	BlockFeatures []string
	// MaxCandidates caps the number of scored candidates per vertex when
	// blocking (default 300); candidates beyond the cap are sampled
	// deterministically from Seed.
	MaxCandidates int
	// MinWeight drops edges with weight below it (default 0.05).
	MinWeight float64
	// Weights are optional per-feature importance multipliers for edge
	// similarity (see FitFeatureWeights); nil means uniform.
	Weights feature.Weights
	// Seed drives candidate sampling.
	Seed int64
	// Workers parallelizes per-vertex neighbor search. The graph is
	// identical for every worker count (asserted by tests): per-vertex
	// work depends only on the vertex index and Seed.
	Workers int
	// LSH enables MinHash-LSH approximate candidate generation (see
	// LSHConfig): candidates come from signature-band collisions instead
	// of block scans, then are re-scored with the exact kernel. The zero
	// value is disabled.
	LSH LSHConfig
	// Exact forces the exact candidate paths (all-pairs or blocked) even
	// when LSH is enabled — the escape hatch pinning today's output
	// bit-for-bit.
	Exact bool
}

func (c GraphConfig) withDefaults() GraphConfig {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 300
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.05
	}
	return c
}

// Edge is one weighted neighbor link.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a symmetric weighted kNN graph over data points.
type Graph struct {
	adj [][]Edge
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// Neighbors returns vertex i's adjacency list (shared slice; do not modify).
func (g *Graph) Neighbors(i int) []Edge { return g.adj[i] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// dedupeSet is a reusable epoch-stamped membership set: stamp[j] == epoch
// means j is in the set. Bumping the epoch clears the set in O(1), so one
// allocation serves every vertex a worker processes — the per-vertex
// map[int]bool this replaces was the blocked path's main allocation churn.
type dedupeSet struct {
	stamp []int32
	epoch int32
	buf   []int // reusable candidate buffer
}

func (s *dedupeSet) reset() {
	s.epoch++
	if s.epoch == 0 { // wrapped: clear stamps once every 2^31 resets
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.buf = s.buf[:0]
}

func (s *dedupeSet) add(j int) bool {
	if s.stamp[j] == s.epoch {
		return false
	}
	s.stamp[j] = s.epoch
	s.buf = append(s.buf, j)
	return true
}

// BuildGraph constructs the similarity graph over vecs. All vectors must
// share one schema. Scales should be fitted on the same corpus
// (feature.FitScales) so numeric similarities are calibrated.
func BuildGraph(ctx context.Context, cfg GraphConfig, vecs []*feature.Vector, scales feature.Scales) (*Graph, error) {
	cfg = cfg.withDefaults()
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("labelprop: no vertices")
	}
	ctx, span := trace.Start(ctx, "labelprop.build_graph")
	defer span.End()
	span.SetInt("vertices", int64(n))
	// Resolve the name-keyed scale/weight maps to index-aligned slices
	// once; the per-pair path is then allocation- and map-free.
	kern := feature.NewSimKernel(vecs[0].Schema(), scales, cfg.Weights)

	// Candidate sets per vertex: LSH band collisions when enabled, blocked
	// by shared categorical values, or all-pairs when no blocking features
	// are configured.
	var candidatesFor func(i int, rng *rand.Rand, seen *dedupeSet) []int
	if cfg.LSH.Enable && !cfg.Exact {
		index, err := buildLSHIndex(ctx, cfg, vecs)
		if err != nil {
			return nil, err
		}
		span.SetInt("lsh_bands", int64(index.bands))
		span.SetInt("lsh_rows", int64(index.rows))
		candidatesFor = index.candidatesFor(cfg.MaxCandidates)
	} else if len(cfg.BlockFeatures) == 0 {
		candidatesFor = func(i int, _ *rand.Rand, seen *dedupeSet) []int {
			out := seen.buf[:0]
			for j := 0; j < n; j++ {
				if j != i {
					out = append(out, j)
				}
			}
			seen.buf = out
			return out
		}
	} else {
		index := buildBlockIndex(vecs, cfg.BlockFeatures)
		// Block keys per vertex are computed once up front instead of
		// re-deriving (and re-allocating) the "feat=cat" strings inside
		// the parallel per-vertex search.
		vertexKeys := make([][]string, n)
		for i, v := range vecs {
			vertexKeys[i] = blockKeys(v, cfg.BlockFeatures)
		}
		candidatesFor = func(i int, rng *rand.Rand, seen *dedupeSet) []int {
			seen.reset()
			for _, key := range vertexKeys[i] {
				for _, j := range index[key] {
					if j != i {
						seen.add(j)
					}
				}
			}
			out := seen.buf
			if len(out) > cfg.MaxCandidates {
				rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
				out = out[:cfg.MaxCandidates]
				sort.Ints(out)
			}
			return out
		}
	}

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	// Worker-local scratch (stamp array + candidate buffer), reused across
	// the vertices a worker processes.
	scratch := sync.Pool{New: func() any {
		return &dedupeSet{stamp: make([]int32, n)}
	}}
	directed, err := mapreduce.Map(ctx, mapreduce.Config{Workers: cfg.Workers}, ids, func(i int) ([]Edge, error) {
		seen := scratch.Get().(*dedupeSet)
		defer scratch.Put(seen)
		rng := xrand.New(cfg.Seed ^ int64(i)*0x9e3779b9)
		var edges []Edge
		for _, j := range candidatesFor(i, rng, seen) {
			w := kern.Weighted(vecs[i], vecs[j])
			if w >= cfg.MinWeight {
				edges = append(edges, Edge{To: j, Weight: w})
			}
		}
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].Weight != edges[b].Weight {
				return edges[a].Weight > edges[b].Weight
			}
			return edges[a].To < edges[b].To
		})
		if len(edges) > cfg.K {
			edges = edges[:cfg.K]
		}
		return edges, nil
	})
	if err != nil {
		return nil, err
	}
	g := &Graph{adj: symmetrize(directed)}
	span.SetInt("edges", int64(g.NumEdges()))
	return g, nil
}

// symmetrize keeps an edge if either endpoint selected it. Each vertex's
// final list is the merge of its own selections with the mirrored selections
// of its in-neighbors, deduplicated after a per-vertex sort — no global
// pair-keyed map. Similarity is symmetric, so when both directions selected
// an edge the duplicate entries carry equal weights and collapsing keeps
// either.
func symmetrize(directed [][]Edge) [][]Edge {
	n := len(directed)
	deg := make([]int, n)
	for i, es := range directed {
		deg[i] += len(es)
		for _, e := range es {
			deg[e.To]++
		}
	}
	adj := make([][]Edge, n)
	for i := range adj {
		adj[i] = make([]Edge, 0, deg[i])
	}
	for i, es := range directed {
		for _, e := range es {
			adj[i] = append(adj[i], e)
			adj[e.To] = append(adj[e.To], Edge{To: i, Weight: e.Weight})
		}
	}
	for i := range adj {
		es := adj[i]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
		// Collapse double-selected edges (equal To ⇒ equal weight).
		out := es[:0]
		for _, e := range es {
			if len(out) > 0 && out[len(out)-1].To == e.To {
				continue
			}
			out = append(out, e)
		}
		adj[i] = out
	}
	return adj
}

// buildBlockIndex maps "feat=cat" keys to the vertices carrying them.
func buildBlockIndex(vecs []*feature.Vector, feats []string) map[string][]int {
	index := make(map[string][]int)
	for i, v := range vecs {
		for _, key := range blockKeys(v, feats) {
			index[key] = append(index[key], i)
		}
	}
	return index
}

func blockKeys(v *feature.Vector, feats []string) []string {
	var keys []string
	for _, f := range feats {
		val := v.Get(f)
		if val.Missing {
			continue
		}
		for _, c := range val.Categories {
			keys = append(keys, f+"="+c)
		}
	}
	return keys
}
