package labelprop

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"crossmodal/internal/feature"
)

var schema = feature.MustSchema(
	feature.Def{Name: "topic", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "score", Kind: feature.Numeric, Set: "D", Servable: true},
	feature.Def{Name: "emb", Kind: feature.Embedding, Set: "I", Servable: true, Dim: 2},
)

// clusterVecs builds two clusters: topic "a" near embedding (1,0), topic "b"
// near (0,1). Returns vectors and cluster assignments.
func clusterVecs(n int, seed int64) ([]*feature.Vector, []int) {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]*feature.Vector, n)
	clusters := make([]int, n)
	for i := range vecs {
		v := feature.NewVector(schema)
		c := i % 2
		clusters[i] = c
		if c == 0 {
			v.MustSet("topic", feature.CategoricalValue("a"))
			v.MustSet("emb", feature.EmbeddingValue([]float64{1 + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1}))
			v.MustSet("score", feature.NumericValue(1+rng.NormFloat64()*0.1))
		} else {
			v.MustSet("topic", feature.CategoricalValue("b"))
			v.MustSet("emb", feature.EmbeddingValue([]float64{rng.NormFloat64() * 0.1, 1 + rng.NormFloat64()*0.1}))
			v.MustSet("score", feature.NumericValue(5+rng.NormFloat64()*0.1))
		}
		vecs[i] = v
	}
	return vecs, clusters
}

func TestBuildGraphExact(t *testing.T) {
	vecs, clusters := clusterVecs(40, 1)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 5}, vecs, feature.FitScales(schema, vecs))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 40 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// Neighbors should overwhelmingly come from the same cluster.
	same, total := 0, 0
	for i := 0; i < g.NumVertices(); i++ {
		for _, e := range g.Neighbors(i) {
			total++
			if clusters[i] == clusters[e.To] {
				same++
			}
		}
	}
	if frac := float64(same) / float64(total); frac < 0.9 {
		t.Errorf("same-cluster edge fraction = %.3f, want > 0.9", frac)
	}
}

func TestBuildGraphBlockedMatchesClusters(t *testing.T) {
	vecs, clusters := clusterVecs(200, 2)
	g, err := BuildGraph(context.Background(), GraphConfig{
		K: 5, BlockFeatures: []string{"topic"}, MaxCandidates: 50, Seed: 3,
	}, vecs, feature.FitScales(schema, vecs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumVertices(); i++ {
		for _, e := range g.Neighbors(i) {
			if clusters[i] != clusters[e.To] {
				t.Fatalf("blocked graph linked across clusters: %d-%d", i, e.To)
			}
		}
	}
}

func TestGraphSymmetry(t *testing.T) {
	vecs, _ := clusterVecs(60, 4)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 4}, vecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumVertices(); i++ {
		for _, e := range g.Neighbors(i) {
			found := false
			for _, back := range g.Neighbors(e.To) {
				if back.To == i {
					if math.Abs(back.Weight-e.Weight) > 1e-12 {
						t.Fatalf("asymmetric weight %v vs %v", back.Weight, e.Weight)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no reverse", i, e.To)
			}
		}
	}
}

func TestBuildGraphEmpty(t *testing.T) {
	if _, err := BuildGraph(context.Background(), GraphConfig{}, nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestPropagateTwoClusters(t *testing.T) {
	vecs, clusters := clusterVecs(100, 5)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 6}, vecs, feature.FitScales(schema, vecs))
	if err != nil {
		t.Fatal(err)
	}
	// Seed one positive in cluster 0, one negative in cluster 1.
	seeds := map[int]float64{}
	for i, c := range clusters {
		if c == 0 && len(seeds) == 0 {
			seeds[i] = 1
		} else if c == 1 {
			seeds[i] = 0
			break
		}
	}
	res, err := Propagate(context.Background(), g, seeds, PropConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clusters {
		if _, isSeed := seeds[i]; isSeed || !res.Reached[i] {
			continue
		}
		if c == 0 && res.Scores[i] < 0.6 {
			t.Errorf("cluster-0 vertex %d score %.3f, want high", i, res.Scores[i])
		}
		if c == 1 && res.Scores[i] > 0.4 {
			t.Errorf("cluster-1 vertex %d score %.3f, want low", i, res.Scores[i])
		}
	}
}

func TestPropagateClampsSeeds(t *testing.T) {
	vecs, _ := clusterVecs(30, 6)
	g, _ := BuildGraph(context.Background(), GraphConfig{K: 4}, vecs, nil)
	seeds := map[int]float64{0: 1, 1: 0}
	res, err := Propagate(context.Background(), g, seeds, PropConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] != 1 || res.Scores[1] != 0 {
		t.Errorf("seed scores drifted: %v, %v", res.Scores[0], res.Scores[1])
	}
}

func TestPropagateScoresBounded(t *testing.T) {
	vecs, _ := clusterVecs(80, 7)
	g, _ := BuildGraph(context.Background(), GraphConfig{K: 5}, vecs, nil)
	seeds := map[int]float64{0: 1, 3: 0, 7: 1}
	res, err := Propagate(context.Background(), g, seeds, PropConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v out of [0,1]", i, s)
		}
	}
}

func TestPropagateValidation(t *testing.T) {
	vecs, _ := clusterVecs(10, 8)
	g, _ := BuildGraph(context.Background(), GraphConfig{K: 2}, vecs, nil)
	ctx := context.Background()
	if _, err := Propagate(ctx, g, nil, PropConfig{}); err == nil {
		t.Error("expected error for no seeds")
	}
	if _, err := Propagate(ctx, g, map[int]float64{99: 1}, PropConfig{}); err == nil {
		t.Error("expected error for out-of-range seed")
	}
	if _, err := Propagate(ctx, g, map[int]float64{0: 2}, PropConfig{}); err == nil {
		t.Error("expected error for out-of-range score")
	}
}

func TestPropagateUnreachedStayAtPrior(t *testing.T) {
	// Two disconnected components: seeds only in the first.
	a := feature.NewVector(schema)
	a.MustSet("topic", feature.CategoricalValue("a"))
	b := feature.NewVector(schema)
	b.MustSet("topic", feature.CategoricalValue("b"))
	vecs := []*feature.Vector{a, a.Clone(), b, b.Clone()}
	g, err := BuildGraph(context.Background(), GraphConfig{K: 2, MinWeight: 0.5}, vecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Propagate(context.Background(), g, map[int]float64{0: 1}, PropConfig{Prior: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached[2] || res.Reached[3] {
		t.Fatal("disconnected vertices marked reached")
	}
	if res.Scores[2] != 0.25 || res.Scores[3] != 0.25 {
		t.Errorf("unreached scores = %v, %v; want prior 0.25", res.Scores[2], res.Scores[3])
	}
	if !res.Reached[1] || res.Scores[1] < 0.9 {
		t.Errorf("connected twin should converge to seed: reached=%v score=%v", res.Reached[1], res.Scores[1])
	}
}

func TestChooseCuts(t *testing.T) {
	scores := []float64{0.95, 0.9, 0.85, 0.6, 0.4, 0.15, 0.1, 0.05}
	labels := []int8{1, 1, -1, 1, -1, -1, -1, -1}
	cuts, err := ChooseCuts(scores, labels, 0.6, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if cuts.Pos > 0.9 || cuts.Pos < 0.05 {
		t.Errorf("Pos cut = %v", cuts.Pos)
	}
	if cuts.Neg >= cuts.Pos {
		t.Errorf("cuts overlap: %+v", cuts)
	}
	// Vote quality at the chosen cuts.
	var posRight, posVotes int
	for i, s := range scores {
		if s >= cuts.Pos {
			posVotes++
			if labels[i] > 0 {
				posRight++
			}
		}
	}
	if posVotes == 0 || float64(posRight)/float64(posVotes) < 0.6 {
		t.Errorf("positive cut precision %d/%d below target", posRight, posVotes)
	}
}

func TestChooseCutsErrors(t *testing.T) {
	if _, err := ChooseCuts(nil, nil, 0.9, 0.9); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ChooseCuts([]float64{1}, []int8{1, 1}, 0.9, 0.9); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestChooseCutsDegenerateOverlap(t *testing.T) {
	// All positives score low and negatives high: raw cuts would invert.
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int8{1, 1, -1, -1}
	cuts, err := ChooseCuts(scores, labels, 0.99, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if cuts.Neg >= cuts.Pos {
		t.Errorf("degenerate cuts not separated: %+v", cuts)
	}
}
