package labelprop

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crossmodal/internal/feature"
	"crossmodal/internal/xrand"
)

// MinHash-LSH approximate candidate generation for BuildGraph. The blocked
// path scans every vertex sharing a blocking category, so its per-vertex
// cost grows with block size — O(n²/blocks)-flavored on corpora whose
// blocking features are coarse. LSH replaces the block scan with bucket
// lookups: each vertex's categorical intern-ID sets (the exact sets
// feature.SimKernel intersects) are MinHash-signed, the signature is cut
// into bands, and only vertices colliding in at least one band become
// candidates. Candidates are still re-scored with the exact kernel, so
// edge weights are bit-identical to the exact paths — only recall over
// which edges exist can differ.

// LSHConfig configures approximate candidate generation. The zero value is
// disabled, so existing GraphConfigs (and recorded golden outputs) are
// untouched.
type LSHConfig struct {
	// Enable turns the LSH candidate path on. GraphConfig.Exact overrides
	// it, forcing the exact all-pairs/blocked paths bit-for-bit.
	Enable bool
	// Threshold is the Jaccard similarity at which pairs should start
	// colliding with high probability (default 0.4). Band/row parameters
	// derive from it; pairs well above it collide almost surely, pairs
	// well below almost never.
	Threshold float64
	// MaxHashes budgets the MinHash signature length (default 64); the
	// derived banding uses the largest bands×rows product that fits.
	MaxHashes int
	// Bands and Rows override the derived banding when both are positive.
	Bands, Rows int
	// Features names the categorical features hashed into signatures;
	// empty hashes every categorical feature in the schema.
	Features []string
}

func (c LSHConfig) withDefaults() LSHConfig {
	if c.Threshold <= 0 || c.Threshold >= 1 {
		c.Threshold = 0.4
	}
	if c.MaxHashes <= 0 {
		c.MaxHashes = 64
	}
	if c.Bands <= 0 || c.Rows <= 0 {
		c.Bands, c.Rows = deriveBanding(c.Threshold, c.MaxHashes)
	}
	return c
}

// deriveBanding picks b bands of r rows (b·r ≤ maxHashes) from the target
// similarity threshold. A pair with Jaccard J collides in at least one band
// with probability 1-(1-J^r)^b, an S-curve steepest near (1/b)^(1/r); that
// knee grows with r, so the derivation takes the largest r whose knee stays
// at or below the target — the most junk-suppressing banding that still
// catches pairs at the threshold with high probability.
func deriveBanding(threshold float64, maxHashes int) (bands, rows int) {
	bands, rows = maxHashes, 1
	for r := 2; r <= maxHashes; r++ {
		b := maxHashes / r
		if b < 2 {
			break
		}
		if math.Pow(1/float64(b), 1/float64(r)) <= threshold {
			bands, rows = b, r
		}
	}
	return bands, rows
}

// lshIndex holds per-vertex band keys and the bucket table mapping a band
// key to the vertices that produced it. Builder.ApplyDelta grows it in
// place: the hash salts depend only on the graph seed (never on corpus
// size), and buckets append vertices in ascending order, so an
// incrementally grown index is identical to one built from scratch.
type lshIndex struct {
	bands, rows int
	keys        []uint64 // vertex i's band keys at [i*bands, (i+1)*bands)
	indexed     []bool   // false: no hashed elements (vertex gets no candidates)
	buckets     map[uint64][]int
}

// lshHasher is the corpus-independent signing state: which categorical
// features feed signatures and the per-hash/band/feature salts, all
// derived from the graph seed alone.
type lshHasher struct {
	bands, rows int
	feats       []int
	salts       []uint64
	bandSalt    []uint64
	featSalt    []uint64
}

// newLSHHasher resolves the signed features and derives the salt set from
// cfg.Seed.
func newLSHHasher(schema *feature.Schema, cfg GraphConfig) (*lshHasher, error) {
	lcfg := cfg.LSH.withDefaults()
	var feats []int
	if len(lcfg.Features) == 0 {
		for i := 0; i < schema.Len(); i++ {
			if schema.Def(i).Kind == feature.Categorical {
				feats = append(feats, i)
			}
		}
	} else {
		for _, name := range lcfg.Features {
			i, ok := schema.Index(name)
			if !ok {
				return nil, fmt.Errorf("labelprop: LSH feature %q not in schema", name)
			}
			if schema.Def(i).Kind != feature.Categorical {
				return nil, fmt.Errorf("labelprop: LSH feature %q is not categorical", name)
			}
			feats = append(feats, i)
		}
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("labelprop: LSH needs at least one categorical feature")
	}

	bands, rows := lcfg.Bands, lcfg.Rows
	H := bands * rows
	// Hash salts derive from the graph seed so signatures are reproducible
	// per (Seed, vertex) — the same contract the candidate sampler has.
	base := xrand.Mix(uint64(cfg.Seed) ^ 0xc2b2ae3d27d4eb4f)
	h := &lshHasher{bands: bands, rows: rows, feats: feats}
	h.salts = make([]uint64, H)
	for k := range h.salts {
		h.salts[k] = xrand.Mix(base + uint64(k+1)*0x9e3779b97f4a7c15)
	}
	h.bandSalt = make([]uint64, bands)
	for b := range h.bandSalt {
		h.bandSalt[b] = xrand.Mix(base ^ uint64(b+1)*0xff51afd7ed558ccd)
	}
	h.featSalt = make([]uint64, len(feats))
	for fi, f := range feats {
		h.featSalt[fi] = xrand.Mix(uint64(f+1) * 0x2545f4914f6cdd1d)
	}
	return h, nil
}

// sign MinHash-signs one vector and returns its band keys, or nil when the
// vector has no hashed categorical content (such vertices get no
// candidates, matching the blocked path's treatment of unblockable
// vertices).
func (h *lshHasher) sign(v *feature.Vector) []uint64 {
	H := h.bands * h.rows
	sig := make([]uint64, H)
	for k := range sig {
		sig[k] = math.MaxUint64
	}
	any := false
	for fi, f := range h.feats {
		for _, id := range v.At(f).InternedCategories() {
			any = true
			elem := xrand.Mix(h.featSalt[fi] ^ (uint64(id) + 0x9e3779b97f4a7c15))
			for k, salt := range h.salts {
				if hv := xrand.Mix(elem ^ salt); hv < sig[k] {
					sig[k] = hv
				}
			}
		}
	}
	if !any {
		return nil
	}
	keys := make([]uint64, h.bands)
	for b := 0; b < h.bands; b++ {
		key := h.bandSalt[b]
		for r := 0; r < h.rows; r++ {
			key = xrand.Mix(key ^ sig[b*h.rows+r])
		}
		keys[b] = key
	}
	return keys
}

// candidatesFor returns the LSH candidate generator: the union of the
// vertex's band buckets, deduplicated through the shared epoch-stamped set
// and capped with the same deterministic per-vertex sampling the blocked
// path uses — so worker invariance and seed determinism carry over
// unchanged.
func (x *lshIndex) candidatesFor(maxCandidates int) func(i int, rng *rand.Rand, seen *dedupeSet) []int {
	return func(i int, rng *rand.Rand, seen *dedupeSet) []int {
		seen.reset()
		if !x.indexed[i] {
			return seen.buf
		}
		for b := 0; b < x.bands; b++ {
			for _, j := range x.buckets[x.keys[i*x.bands+b]] {
				if j != i {
					seen.add(j)
				}
			}
		}
		out := seen.buf
		if len(out) > maxCandidates {
			rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
			out = out[:maxCandidates]
			sort.Ints(out)
		}
		return out
	}
}

// Recall reports the fraction of ref's edges also present in g — the
// quality metric for approximate graph construction (edge weights cannot
// differ, only membership). Both graphs must cover the same vertices;
// adjacency lists are sorted by vertex (symmetrize's postcondition), so
// the comparison is a linear merge. An empty reference has recall 1.
func Recall(ref, g *Graph) float64 {
	total, hit := 0, 0
	for i := range ref.adj {
		gs := g.adj[i]
		j := 0
		for _, e := range ref.adj[i] {
			total++
			for j < len(gs) && gs[j].To < e.To {
				j++
			}
			if j < len(gs) && gs[j].To == e.To {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
