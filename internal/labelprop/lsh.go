package labelprop

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/xrand"
)

// MinHash-LSH approximate candidate generation for BuildGraph. The blocked
// path scans every vertex sharing a blocking category, so its per-vertex
// cost grows with block size — O(n²/blocks)-flavored on corpora whose
// blocking features are coarse. LSH replaces the block scan with bucket
// lookups: each vertex's categorical intern-ID sets (the exact sets
// feature.SimKernel intersects) are MinHash-signed, the signature is cut
// into bands, and only vertices colliding in at least one band become
// candidates. Candidates are still re-scored with the exact kernel, so
// edge weights are bit-identical to the exact paths — only recall over
// which edges exist can differ.

// LSHConfig configures approximate candidate generation. The zero value is
// disabled, so existing GraphConfigs (and recorded golden outputs) are
// untouched.
type LSHConfig struct {
	// Enable turns the LSH candidate path on. GraphConfig.Exact overrides
	// it, forcing the exact all-pairs/blocked paths bit-for-bit.
	Enable bool
	// Threshold is the Jaccard similarity at which pairs should start
	// colliding with high probability (default 0.4). Band/row parameters
	// derive from it; pairs well above it collide almost surely, pairs
	// well below almost never.
	Threshold float64
	// MaxHashes budgets the MinHash signature length (default 64); the
	// derived banding uses the largest bands×rows product that fits.
	MaxHashes int
	// Bands and Rows override the derived banding when both are positive.
	Bands, Rows int
	// Features names the categorical features hashed into signatures;
	// empty hashes every categorical feature in the schema.
	Features []string
}

func (c LSHConfig) withDefaults() LSHConfig {
	if c.Threshold <= 0 || c.Threshold >= 1 {
		c.Threshold = 0.4
	}
	if c.MaxHashes <= 0 {
		c.MaxHashes = 64
	}
	if c.Bands <= 0 || c.Rows <= 0 {
		c.Bands, c.Rows = deriveBanding(c.Threshold, c.MaxHashes)
	}
	return c
}

// deriveBanding picks b bands of r rows (b·r ≤ maxHashes) from the target
// similarity threshold. A pair with Jaccard J collides in at least one band
// with probability 1-(1-J^r)^b, an S-curve steepest near (1/b)^(1/r); that
// knee grows with r, so the derivation takes the largest r whose knee stays
// at or below the target — the most junk-suppressing banding that still
// catches pairs at the threshold with high probability.
func deriveBanding(threshold float64, maxHashes int) (bands, rows int) {
	bands, rows = maxHashes, 1
	for r := 2; r <= maxHashes; r++ {
		b := maxHashes / r
		if b < 2 {
			break
		}
		if math.Pow(1/float64(b), 1/float64(r)) <= threshold {
			bands, rows = b, r
		}
	}
	return bands, rows
}

// lshIndex holds per-vertex band keys and the bucket table mapping a band
// key to the vertices that produced it.
type lshIndex struct {
	bands, rows int
	keys        []uint64 // vertex i's band keys at [i*bands, (i+1)*bands)
	indexed     []bool   // false: no hashed elements (vertex gets no candidates)
	buckets     map[uint64][]int
}

// buildLSHIndex signs every vertex and fills the bucket table. Signature
// computation is sharded across workers (disjoint writes, so the index is
// identical for any worker count); the bucket table is built serially in
// vertex order, keeping candidate enumeration deterministic.
func buildLSHIndex(ctx context.Context, cfg GraphConfig, vecs []*feature.Vector) (*lshIndex, error) {
	lcfg := cfg.LSH.withDefaults()
	schema := vecs[0].Schema()
	var feats []int
	if len(lcfg.Features) == 0 {
		for i := 0; i < schema.Len(); i++ {
			if schema.Def(i).Kind == feature.Categorical {
				feats = append(feats, i)
			}
		}
	} else {
		for _, name := range lcfg.Features {
			i, ok := schema.Index(name)
			if !ok {
				return nil, fmt.Errorf("labelprop: LSH feature %q not in schema", name)
			}
			if schema.Def(i).Kind != feature.Categorical {
				return nil, fmt.Errorf("labelprop: LSH feature %q is not categorical", name)
			}
			feats = append(feats, i)
		}
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("labelprop: LSH needs at least one categorical feature")
	}

	bands, rows := lcfg.Bands, lcfg.Rows
	H := bands * rows
	// Hash salts derive from the graph seed so signatures are reproducible
	// per (Seed, vertex) — the same contract the candidate sampler has.
	base := xrand.Mix(uint64(cfg.Seed) ^ 0xc2b2ae3d27d4eb4f)
	salts := make([]uint64, H)
	for k := range salts {
		salts[k] = xrand.Mix(base + uint64(k+1)*0x9e3779b97f4a7c15)
	}
	bandSalt := make([]uint64, bands)
	for b := range bandSalt {
		bandSalt[b] = xrand.Mix(base ^ uint64(b+1)*0xff51afd7ed558ccd)
	}
	featSalt := make([]uint64, len(feats))
	for fi, f := range feats {
		featSalt[fi] = xrand.Mix(uint64(f+1) * 0x2545f4914f6cdd1d)
	}

	n := len(vecs)
	idx := &lshIndex{
		bands:   bands,
		rows:    rows,
		keys:    make([]uint64, n*bands),
		indexed: make([]bool, n),
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	scratch := sync.Pool{New: func() any {
		s := make([]uint64, H)
		return &s
	}}
	_, err := mapreduce.Map(ctx, mapreduce.Config{Workers: cfg.Workers}, ids, func(i int) (struct{}, error) {
		sigp := scratch.Get().(*[]uint64)
		defer scratch.Put(sigp)
		sig := *sigp
		for k := range sig {
			sig[k] = math.MaxUint64
		}
		any := false
		for fi, f := range feats {
			for _, id := range vecs[i].At(f).InternedCategories() {
				any = true
				elem := xrand.Mix(featSalt[fi] ^ (uint64(id) + 0x9e3779b97f4a7c15))
				for k, salt := range salts {
					if h := xrand.Mix(elem ^ salt); h < sig[k] {
						sig[k] = h
					}
				}
			}
		}
		if !any {
			// No categorical content to hash: the vertex gets no candidates,
			// matching the blocked path's treatment of unblockable vertices.
			return struct{}{}, nil
		}
		idx.indexed[i] = true
		for b := 0; b < bands; b++ {
			key := bandSalt[b]
			for r := 0; r < rows; r++ {
				key = xrand.Mix(key ^ sig[b*rows+r])
			}
			idx.keys[i*bands+b] = key
		}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	idx.buckets = make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		if !idx.indexed[i] {
			continue
		}
		for b := 0; b < bands; b++ {
			key := idx.keys[i*bands+b]
			idx.buckets[key] = append(idx.buckets[key], i)
		}
	}
	return idx, nil
}

// candidatesFor returns the LSH candidate generator: the union of the
// vertex's band buckets, deduplicated through the shared epoch-stamped set
// and capped with the same deterministic per-vertex sampling the blocked
// path uses — so worker invariance and seed determinism carry over
// unchanged.
func (x *lshIndex) candidatesFor(maxCandidates int) func(i int, rng *rand.Rand, seen *dedupeSet) []int {
	return func(i int, rng *rand.Rand, seen *dedupeSet) []int {
		seen.reset()
		if !x.indexed[i] {
			return seen.buf
		}
		for b := 0; b < x.bands; b++ {
			for _, j := range x.buckets[x.keys[i*x.bands+b]] {
				if j != i {
					seen.add(j)
				}
			}
		}
		out := seen.buf
		if len(out) > maxCandidates {
			rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
			out = out[:maxCandidates]
			sort.Ints(out)
		}
		return out
	}
}

// Recall reports the fraction of ref's edges also present in g — the
// quality metric for approximate graph construction (edge weights cannot
// differ, only membership). Both graphs must cover the same vertices;
// adjacency lists are sorted by vertex (symmetrize's postcondition), so
// the comparison is a linear merge. An empty reference has recall 1.
func Recall(ref, g *Graph) float64 {
	total, hit := 0, 0
	for i := range ref.adj {
		gs := g.adj[i]
		j := 0
		for _, e := range ref.adj[i] {
			total++
			for j < len(gs) && gs[j].To < e.To {
				j++
			}
			if j < len(gs) && gs[j].To == e.To {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
