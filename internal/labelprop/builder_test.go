package labelprop

import (
	"context"
	"math"
	"testing"

	"crossmodal/internal/feature"
)

// applyChunked feeds vecs to a fresh Builder in chunks of the given size
// and returns the builder.
func applyChunked(t *testing.T, cfg GraphConfig, vecs []*feature.Vector, scales feature.Scales, chunk int) *Builder {
	t.Helper()
	b, err := NewBuilder(vecs[0].Schema(), cfg, scales)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(vecs); lo += chunk {
		hi := lo + chunk
		if hi > len(vecs) {
			hi = len(vecs)
		}
		if err := b.ApplyDelta(context.Background(), vecs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// TestBuilderDeltaMatchesBuildGraph is the delta-equivalence property the
// streaming pipeline's correctness rests on: N ApplyDelta calls over chunks
// must produce a graph bit-identical (exact edge sets and weight bits) to
// one BuildGraph over the concatenation — in all three candidate modes and
// at every chunking, including chunk size 1.
func TestBuilderDeltaMatchesBuildGraph(t *testing.T) {
	vecs := sweepVecs(240, 77)
	scales := feature.FitScales(sweepSchema, vecs)
	for _, tc := range []struct {
		name string
		cfg  GraphConfig
	}{
		{"allpairs", GraphConfig{K: 5, Seed: 3, Workers: 2}},
		{"blocked", GraphConfig{K: 5, Seed: 3, Workers: 2, BlockFeatures: []string{"topic"}, MaxCandidates: 40}},
		{"lsh", GraphConfig{K: 5, Seed: 3, Workers: 2, LSH: LSHConfig{Enable: true}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := BuildGraph(context.Background(), tc.cfg, vecs, scales)
			if err != nil {
				t.Fatal(err)
			}
			if want.NumEdges() == 0 {
				t.Fatal("reference graph has no edges; test has no teeth")
			}
			for _, chunk := range []int{1, 7, 64, len(vecs)} {
				b := applyChunked(t, tc.cfg, vecs, scales, chunk)
				if err := graphEqual(want, b.Graph()); err != nil {
					t.Errorf("chunk=%d: %v", chunk, err)
				}
			}
		})
	}
}

// TestBuilderPrefixesMatchBuildGraph strengthens the property: after every
// chunk boundary the builder's graph must equal a from-scratch BuildGraph
// over the prefix seen so far — incremental state is never merely
// "eventually consistent".
func TestBuilderPrefixesMatchBuildGraph(t *testing.T) {
	vecs := sweepVecs(160, 78)
	scales := feature.FitScales(sweepSchema, vecs)
	for _, tc := range []struct {
		name string
		cfg  GraphConfig
	}{
		{"blocked", GraphConfig{K: 4, Seed: 9, Workers: 2, BlockFeatures: []string{"topic"}, MaxCandidates: 30}},
		{"lsh", GraphConfig{K: 4, Seed: 9, Workers: 2, LSH: LSHConfig{Enable: true}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, err := NewBuilder(sweepSchema, tc.cfg, scales)
			if err != nil {
				t.Fatal(err)
			}
			const chunk = 40
			for lo := 0; lo < len(vecs); lo += chunk {
				if err := b.ApplyDelta(context.Background(), vecs[lo:lo+chunk]); err != nil {
					t.Fatal(err)
				}
				want, err := BuildGraph(context.Background(), tc.cfg, vecs[:lo+chunk], scales)
				if err != nil {
					t.Fatal(err)
				}
				if err := graphEqual(want, b.Graph()); err != nil {
					t.Errorf("prefix %d: %v", lo+chunk, err)
				}
			}
		})
	}
}

// TestBuilderEmptyDelta: a zero-length delta is a no-op.
func TestBuilderEmptyDelta(t *testing.T) {
	vecs, _ := clusterVecs(30, 21)
	scales := feature.FitScales(schema, vecs)
	cfg := GraphConfig{K: 3, Seed: 1}
	b, err := NewBuilder(schema, cfg, scales)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyDelta(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if b.NumVertices() != 0 {
		t.Fatalf("empty delta added %d vertices", b.NumVertices())
	}
	if err := b.ApplyDelta(context.Background(), vecs); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyDelta(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	want, err := BuildGraph(context.Background(), cfg, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphEqual(want, b.Graph()); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderLSHConfigError: hasher construction failures surface from
// NewBuilder, not first use.
func TestBuilderLSHConfigError(t *testing.T) {
	cfg := GraphConfig{LSH: LSHConfig{Enable: true, Features: []string{"nope"}}}
	if _, err := NewBuilder(sweepSchema, cfg, nil); err == nil {
		t.Fatal("bad LSH feature did not fail NewBuilder")
	}
}

// TestPropagateWarm: warm-starting from converged scores must land on the
// same fixed point (the clamped system's solution is unique on the reached
// component) without exceeding the cold iteration count, and the reached
// set — a pure graph property — must be identical.
func TestPropagateWarm(t *testing.T) {
	vecs, clusters := clusterVecs(120, 31)
	scales := feature.FitScales(schema, vecs)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 6, Seed: 2}, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int]float64{}
	for i, c := range clusters {
		if len(seeds) < 6 && c == 0 {
			seeds[i] = 1
		} else if len(seeds) < 12 && c == 1 {
			seeds[i] = 0
		}
	}
	cfg := PropConfig{Tol: 1e-6}
	cold, err := Propagate(context.Background(), g, seeds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := PropagateWarm(context.Background(), g, seeds, cfg, cold.Scores)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iters > cold.Iters {
		t.Errorf("warm start took %d iters, cold took %d", warm.Iters, cold.Iters)
	}
	for i := range cold.Scores {
		if warm.Reached[i] != cold.Reached[i] {
			t.Fatalf("vertex %d: warm reached %v, cold %v", i, warm.Reached[i], cold.Reached[i])
		}
		if d := math.Abs(warm.Scores[i] - cold.Scores[i]); d > 1e-4 {
			t.Errorf("vertex %d: warm score %v vs cold %v (|Δ|=%g)", i, warm.Scores[i], cold.Scores[i], d)
		}
	}
}

// TestPropagateWarmFromPrefix mirrors the streaming use: propagate over a
// prefix graph, grow the graph, then warm-start the full run from the
// prefix scores. The converged scores must match a cold full run.
func TestPropagateWarmFromPrefix(t *testing.T) {
	vecs, clusters := clusterVecs(160, 32)
	scales := feature.FitScales(schema, vecs)
	cfg := GraphConfig{K: 6, Seed: 4}
	const prefix = 100

	b, err := NewBuilder(schema, cfg, scales)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyDelta(context.Background(), vecs[:prefix]); err != nil {
		t.Fatal(err)
	}
	seeds := map[int]float64{}
	for i, c := range clusters[:prefix] {
		if len(seeds) < 4 && c == 0 {
			seeds[i] = 1
		} else if len(seeds) < 8 && c == 1 {
			seeds[i] = 0
		}
	}
	pcfg := PropConfig{Tol: 1e-7, MaxIters: 200}
	prev, err := Propagate(context.Background(), b.Graph(), seeds, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := b.ApplyDelta(context.Background(), vecs[prefix:]); err != nil {
		t.Fatal(err)
	}
	warm, err := PropagateWarm(context.Background(), b.Graph(), seeds, pcfg, prev.Scores)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Propagate(context.Background(), b.Graph(), seeds, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Scores {
		if warm.Reached[i] != cold.Reached[i] {
			t.Fatalf("vertex %d: warm reached %v, cold %v", i, warm.Reached[i], cold.Reached[i])
		}
		if d := math.Abs(warm.Scores[i] - cold.Scores[i]); d > 1e-4 {
			t.Errorf("vertex %d: warm score %v vs cold %v (|Δ|=%g)", i, warm.Scores[i], cold.Scores[i], d)
		}
	}
}

// TestPropagateWarmIgnoresGarbagePrev: out-of-range or NaN warm scores fall
// back to the prior instead of poisoning the iteration.
func TestPropagateWarmIgnoresGarbagePrev(t *testing.T) {
	vecs, _ := clusterVecs(40, 33)
	scales := feature.FitScales(schema, vecs)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 4, Seed: 5}, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int]float64{0: 1, 1: 0}
	prev := make([]float64, 40)
	for i := range prev {
		switch i % 3 {
		case 0:
			prev[i] = math.NaN()
		case 1:
			prev[i] = -7
		default:
			prev[i] = 42
		}
	}
	warm, err := PropagateWarm(context.Background(), g, seeds, PropConfig{}, prev)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Propagate(context.Background(), g, seeds, PropConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Scores {
		if math.Float64bits(warm.Scores[i]) != math.Float64bits(cold.Scores[i]) {
			t.Fatalf("vertex %d: garbage warm scores changed result: %v vs %v", i, warm.Scores[i], cold.Scores[i])
		}
	}
}
