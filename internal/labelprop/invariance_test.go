package labelprop

import (
	"context"
	"fmt"
	"testing"

	"crossmodal/internal/feature"
)

func graphEqual(a, b *Graph) error {
	if a.NumVertices() != b.NumVertices() {
		return fmt.Errorf("vertex counts differ: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	for i := 0; i < a.NumVertices(); i++ {
		ea, eb := a.Neighbors(i), b.Neighbors(i)
		if len(ea) != len(eb) {
			return fmt.Errorf("vertex %d: %d vs %d neighbors", i, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				return fmt.Errorf("vertex %d neighbor %d: %+v vs %+v", i, j, ea[j], eb[j])
			}
		}
	}
	return nil
}

// TestBuildGraphWorkerInvariance requires the graph to be bit-identical for
// every worker count, on both the all-pairs and blocked paths. Per-vertex
// RNGs are derived from (Seed, vertex index) alone and mapreduce preserves
// input order, so nothing may depend on scheduling.
func TestBuildGraphWorkerInvariance(t *testing.T) {
	vecs, _ := clusterVecs(150, 11)
	scales := feature.FitScales(schema, vecs)
	for _, cfg := range []GraphConfig{
		{K: 5, Seed: 3},
		{K: 5, Seed: 3, BlockFeatures: []string{"topic"}, MaxCandidates: 40},
	} {
		name := "allpairs"
		if len(cfg.BlockFeatures) > 0 {
			name = "blocked"
		}
		base := cfg
		base.Workers = 1
		ref, err := BuildGraph(context.Background(), base, vecs, scales)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			c := cfg
			c.Workers = workers
			g, err := BuildGraph(context.Background(), c, vecs, scales)
			if err != nil {
				t.Fatal(err)
			}
			if err := graphEqual(ref, g); err != nil {
				t.Errorf("%s: Workers=%d differs from Workers=1: %v", name, workers, err)
			}
		}
	}
}

// TestBuildGraphSeedDeterminism pins same-seed reproducibility and checks
// different seeds actually change the blocked candidate sampling.
func TestBuildGraphSeedDeterminism(t *testing.T) {
	vecs, _ := clusterVecs(150, 12)
	scales := feature.FitScales(schema, vecs)
	cfg := GraphConfig{K: 3, Seed: 9, BlockFeatures: []string{"topic"}, MaxCandidates: 20, Workers: 4}
	a, err := BuildGraph(context.Background(), cfg, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGraph(context.Background(), cfg, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphEqual(a, b); err != nil {
		t.Errorf("same seed not reproducible: %v", err)
	}
	cfg.Seed = 10
	c, err := BuildGraph(context.Background(), cfg, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	if graphEqual(a, c) == nil {
		t.Error("changing the seed left the sampled graph identical")
	}
}

// TestPropagateReachedMatchesBFS checks the compacting frontier scan marks
// exactly the vertices reachable from the seed set once iteration runs to
// convergence.
func TestPropagateReachedMatchesBFS(t *testing.T) {
	vecs, _ := clusterVecs(120, 13)
	scales := feature.FitScales(schema, vecs)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 4, Seed: 5}, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int]float64{0: 1, 1: 0, 7: 1}
	res, err := Propagate(context.Background(), g, seeds, PropConfig{MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Reference BFS over the undirected graph from the seed vertices.
	want := make([]bool, g.NumVertices())
	queue := make([]int, 0, len(seeds))
	for v := range seeds {
		want[v] = true
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(v) {
			if !want[e.To] {
				want[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	for i := range want {
		if res.Reached[i] != want[i] {
			t.Errorf("vertex %d: Reached=%v, BFS says %v", i, res.Reached[i], want[i])
		}
	}
}

// TestPropagateShardInvariance requires identical scores for every shard
// count: sharding splits a Jacobi sweep, which reads only the previous
// iteration's values.
func TestPropagateShardInvariance(t *testing.T) {
	vecs, _ := clusterVecs(120, 14)
	scales := feature.FitScales(schema, vecs)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 4, Seed: 6}, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int]float64{0: 1, 1: 0, 10: 1, 33: 0}
	ref, err := Propagate(context.Background(), g, seeds, PropConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 5, 16} {
		res, err := Propagate(context.Background(), g, seeds, PropConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if res.Iters != ref.Iters {
			t.Errorf("Shards=%d: %d iters vs %d", shards, res.Iters, ref.Iters)
		}
		for i := range ref.Scores {
			if res.Scores[i] != ref.Scores[i] {
				t.Fatalf("Shards=%d: score[%d] = %v vs %v", shards, i, res.Scores[i], ref.Scores[i])
			}
			if res.Reached[i] != ref.Reached[i] {
				t.Fatalf("Shards=%d: reached[%d] = %v vs %v", shards, i, res.Reached[i], ref.Reached[i])
			}
		}
	}
}

func benchGraphInputs(b *testing.B, n int) ([]*feature.Vector, feature.Scales) {
	b.Helper()
	vecs, _ := clusterVecs(n, 17)
	return vecs, feature.FitScales(schema, vecs)
}

func BenchmarkBuildGraph(b *testing.B) {
	for _, mode := range []string{"allpairs", "blocked"} {
		b.Run(mode, func(b *testing.B) {
			vecs, scales := benchGraphInputs(b, 600)
			cfg := GraphConfig{K: 8, Seed: 3, Workers: 1}
			if mode == "blocked" {
				cfg.BlockFeatures = []string{"topic"}
				cfg.MaxCandidates = 150
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildGraph(context.Background(), cfg, vecs, scales); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPropagate(b *testing.B) {
	vecs, scales := benchGraphInputs(b, 600)
	g, err := BuildGraph(context.Background(), GraphConfig{K: 8, Seed: 3, Workers: 1}, vecs, scales)
	if err != nil {
		b.Fatal(err)
	}
	seeds := make(map[int]float64)
	for i := 0; i < 60; i++ {
		seeds[i*10] = float64(i % 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Propagate(context.Background(), g, seeds, PropConfig{Shards: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
