package labelprop

import (
	"fmt"

	"crossmodal/internal/feature"
	"crossmodal/internal/xrand"
)

// FitFeatureWeights learns per-feature importance weights for graph edges
// from a labeled development corpus: a feature deserves weight to the extent
// that high similarity under it predicts shared labels. The paper leaves
// "how to best weight and value candidate organizational resources" manual
// (§6.5); this estimator automates the graph's share of that decision.
//
// Method: sample positive–positive and positive–negative dev pairs; each
// feature's raw weight is the margin between its mean similarity on same-
// label pairs and on mixed pairs, floored at zero. Weights are normalized to
// mean 1 over the fitted features. Features never observed in the dev corpus
// (e.g. new-modality-only embeddings) receive weight 1 — neutral, so the
// unstructured features the paper feeds the graph stay active.
func FitFeatureWeights(vecs []*feature.Vector, labels []int8, scales feature.Scales, pairs int, seed int64) (feature.Weights, error) {
	if len(vecs) != len(labels) {
		return nil, fmt.Errorf("labelprop: %d vectors vs %d labels", len(vecs), len(labels))
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("labelprop: empty corpus for weight fitting")
	}
	if pairs <= 0 {
		pairs = 10000
	}
	var pos, neg []int
	for i, l := range labels {
		if l > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < 2 || len(neg) < 1 {
		return nil, fmt.Errorf("labelprop: weight fitting needs >=2 positives and >=1 negative (%d/%d)", len(pos), len(neg))
	}
	schema := vecs[0].Schema()
	rng := xrand.New(seed)
	kern := feature.NewSimKernel(schema, scales, nil)

	type acc struct {
		sameSum, sameN   float64
		mixedSum, mixedN float64
	}
	accs := make([]acc, schema.Len())
	for k := 0; k < pairs; k++ {
		i := pos[rng.Intn(len(pos))]
		var j int
		same := k%2 == 0
		if same {
			j = pos[rng.Intn(len(pos))]
			if j == i {
				continue
			}
		} else {
			j = neg[rng.Intn(len(neg))]
		}
		for f := 0; f < schema.Len(); f++ {
			s, ok := kern.Similarity(vecs[i], vecs[j], f)
			if !ok {
				continue
			}
			if same {
				accs[f].sameSum += s
				accs[f].sameN++
			} else {
				accs[f].mixedSum += s
				accs[f].mixedN++
			}
		}
	}

	weights := make(feature.Weights, schema.Len())
	var sum float64
	var fitted int
	for f := 0; f < schema.Len(); f++ {
		a := accs[f]
		if a.sameN == 0 || a.mixedN == 0 {
			continue // never observed: stays at the neutral default 1
		}
		same := a.sameSum / a.sameN
		mixed := a.mixedSum / a.mixedN
		// Normalize the margin by the feature's overall similarity level
		// so sparse features (low absolute similarity everywhere, e.g.
		// multivalent object sets) compete fairly with dense ones.
		level := (same + mixed) / 2
		var margin float64
		if level > 1e-9 {
			margin = (same - mixed) / level
		}
		if margin < 0 {
			margin = 0
		}
		weights[schema.Def(f).Name] = margin
		sum += margin
		fitted++
	}
	if fitted == 0 || sum == 0 {
		// No feature discriminates: fall back to uniform.
		return feature.Weights{}, nil
	}
	mean := sum / float64(fitted)
	for name, w := range weights {
		// Floor at a small fraction of the mean so weak features still
		// connect otherwise-isolated points.
		norm := w / mean
		if norm < 0.02 {
			norm = 0.02
		}
		weights[name] = norm
	}
	return weights, nil
}
