package labelprop

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"crossmodal/internal/feature"
)

var sweepSchema = feature.MustSchema(
	feature.Def{Name: "topic", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "tags", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "score", Kind: feature.Numeric, Set: "D", Servable: true},
	feature.Def{Name: "emb", Kind: feature.Embedding, Set: "I", Servable: true, Dim: 8},
)

// sweepVecs builds a corpus shaped like the LSH motivation: coarse topics
// (8 values, so blocking scans n/8 vertices per query) but fine-grained
// similarity structure in ~24-member tag subclusters. Members of a
// subcluster share 4–6 of 6 base tags plus the topic (pairwise Jaccard
// ≥ 0.55 over hashed categorical elements); cross-subcluster overlap is
// rare (large tag vocabulary), so band collisions stay near subcluster
// size while blocks grow linearly with n.
func sweepVecs(n int, seed int64) []*feature.Vector {
	rng := rand.New(rand.NewSource(seed))
	const subSize = 24
	nSub := (n + subSize - 1) / subSize
	baseTags := make([][]string, nSub)
	centers := make([][]float64, nSub)
	scores := make([]float64, nSub)
	for s := range baseTags {
		tags := make([]string, 6)
		for t := range tags {
			tags[t] = "g" + strconv.Itoa(rng.Intn(4096))
		}
		baseTags[s] = tags
		c := make([]float64, 8)
		for d := range c {
			c[d] = rng.NormFloat64()
		}
		centers[s] = c
		scores[s] = rng.NormFloat64() * 10
	}
	vecs := make([]*feature.Vector, n)
	for i := range vecs {
		s := i / subSize
		v := feature.NewVector(sweepSchema)
		v.MustSet("topic", feature.CategoricalValue("t"+strconv.Itoa(s%8)))
		drop := rng.Intn(6)
		tags := make([]string, 0, 6)
		for t, tag := range baseTags[s] {
			if t != drop {
				tags = append(tags, tag)
			}
		}
		tags = append(tags, "x"+strconv.Itoa(rng.Intn(1<<30)))
		v.MustSet("tags", feature.CategoricalValue(tags...))
		emb := make([]float64, 8)
		for d := range emb {
			emb[d] = centers[s][d] + rng.NormFloat64()*0.05
		}
		v.MustSet("emb", feature.EmbeddingValue(emb))
		v.MustSet("score", feature.NumericValue(scores[s]+rng.NormFloat64()*0.1))
		vecs[i] = v
	}
	return vecs
}

func TestDeriveBanding(t *testing.T) {
	cases := []struct {
		threshold   string
		maxHashes   int
		bands, rows int
	}{
		{"0.05", 64, 64, 1}, // even r=2's knee (0.177) overshoots: stay at r=1
		{"0.2", 64, 32, 2},  // knee 0.177
		{"0.4", 64, 21, 3},  // knee 0.362
		{"0.55", 64, 16, 4}, // knee 0.5; r=5's knee 0.609 overshoots
		{"0.4", 32, 10, 3},  // knee (1/10)^(1/3) = 0.464 > 0.4 → r=2? no: 0.25 ≤ 0.4
		{"0.9", 8, 2, 4},    // tiny budget: b must stay ≥ 2
	}
	for _, c := range cases {
		th, _ := strconv.ParseFloat(c.threshold, 64)
		b, r := deriveBanding(th, c.maxHashes)
		if c.threshold == "0.4" && c.maxHashes == 32 {
			// (1/16)^(1/2)=0.25 ≤ 0.4, (1/10)^(1/3)=0.464 > 0.4 → (16,2).
			if b != 16 || r != 2 {
				t.Errorf("deriveBanding(0.4, 32) = (%d,%d), want (16,2)", b, r)
			}
			continue
		}
		if b != c.bands || r != c.rows {
			t.Errorf("deriveBanding(%s, %d) = (%d,%d), want (%d,%d)",
				c.threshold, c.maxHashes, b, r, c.bands, c.rows)
		}
	}
}

// TestLSHRecallFloor is the quality gate the ISSUE pins: at the default
// threshold, LSH must recover at least 95% of the edges the exact blocked
// path finds (blocking on the coarse topic, candidate cap lifted so the
// reference is sampling-free), and every edge both graphs share must carry
// the identical weight — LSH changes candidate generation, never scoring.
func TestLSHRecallFloor(t *testing.T) {
	const n = 960
	vecs := sweepVecs(n, 41)
	scales := feature.FitScales(sweepSchema, vecs)
	exact := GraphConfig{
		K: 10, Seed: 5, BlockFeatures: []string{"topic"}, MaxCandidates: n,
	}
	ref, err := BuildGraph(context.Background(), exact, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	approx := exact
	approx.BlockFeatures = nil
	approx.LSH = LSHConfig{Enable: true}
	g, err := BuildGraph(context.Background(), approx, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	if r := Recall(ref, g); r < 0.95 {
		t.Errorf("LSH recall = %.4f, want >= 0.95", r)
	}
	for i := 0; i < n; i++ {
		want := make(map[int]float64, len(ref.Neighbors(i)))
		for _, e := range ref.Neighbors(i) {
			want[e.To] = e.Weight
		}
		for _, e := range g.Neighbors(i) {
			if w, ok := want[e.To]; ok && w != e.Weight {
				t.Fatalf("edge %d-%d: LSH weight %v vs exact %v", i, e.To, e.Weight, w)
			}
		}
	}
}

// TestLSHExactKnob pins the escape hatch: Exact: true must make LSH-enabled
// configs bit-identical to the legacy paths.
func TestLSHExactKnob(t *testing.T) {
	vecs, _ := clusterVecs(200, 3)
	scales := feature.FitScales(schema, vecs)
	for _, legacy := range []GraphConfig{
		{K: 5, Seed: 9},
		{K: 5, Seed: 9, BlockFeatures: []string{"topic"}, MaxCandidates: 40},
	} {
		ref, err := BuildGraph(context.Background(), legacy, vecs, scales)
		if err != nil {
			t.Fatal(err)
		}
		knobbed := legacy
		knobbed.LSH = LSHConfig{Enable: true}
		knobbed.Exact = true
		g, err := BuildGraph(context.Background(), knobbed, vecs, scales)
		if err != nil {
			t.Fatal(err)
		}
		if err := graphEqual(ref, g); err != nil {
			t.Errorf("Exact knob not bit-identical: %v", err)
		}
	}
}

// TestLSHWorkerInvariance extends the worker-invariance contract to the LSH
// path: signatures are per-vertex functions of (Seed, vertex), the bucket
// table is built serially, and sampling reuses the per-vertex RNG — so the
// graph may not depend on scheduling.
func TestLSHWorkerInvariance(t *testing.T) {
	vecs := sweepVecs(300, 17)
	scales := feature.FitScales(sweepSchema, vecs)
	cfg := GraphConfig{K: 6, Seed: 3, MaxCandidates: 30, LSH: LSHConfig{Enable: true}}
	base := cfg
	base.Workers = 1
	ref, err := BuildGraph(context.Background(), base, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		c := cfg
		c.Workers = workers
		g, err := BuildGraph(context.Background(), c, vecs, scales)
		if err != nil {
			t.Fatal(err)
		}
		if err := graphEqual(ref, g); err != nil {
			t.Errorf("Workers=%d differs from Workers=1: %v", workers, err)
		}
	}
	// Same seed reproduces; a different seed re-salts the hash family and
	// resamples candidates.
	again, err := BuildGraph(context.Background(), base, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphEqual(ref, again); err != nil {
		t.Errorf("same seed not reproducible: %v", err)
	}
	reseeded := base
	reseeded.Seed = 4
	other, err := BuildGraph(context.Background(), reseeded, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	if graphEqual(ref, other) == nil {
		t.Error("changing the seed left the LSH graph identical")
	}
}

// TestLSHSparseCategoricals covers vertices with nothing to hash: they are
// left out of the index and get no edges, without disturbing the rest.
func TestLSHSparseCategoricals(t *testing.T) {
	vecs, _ := clusterVecs(60, 7)
	// Strip the only categorical feature from the last 5 vertices.
	for i := 55; i < 60; i++ {
		v := feature.NewVector(schema)
		v.MustSet("emb", vecs[i].Get("emb"))
		v.MustSet("score", vecs[i].Get("score"))
		vecs[i] = v
	}
	scales := feature.FitScales(schema, vecs)
	g, err := BuildGraph(context.Background(), GraphConfig{
		K: 5, Seed: 1, LSH: LSHConfig{Enable: true},
	}, vecs, scales)
	if err != nil {
		t.Fatal(err)
	}
	for i := 55; i < 60; i++ {
		if len(g.Neighbors(i)) != 0 {
			t.Errorf("unhashable vertex %d has %d edges", i, len(g.Neighbors(i)))
		}
	}
	if g.NumEdges() == 0 {
		t.Error("hashable vertices built no edges")
	}
}

// TestLSHConfigErrors covers the misconfiguration paths.
func TestLSHConfigErrors(t *testing.T) {
	vecs, _ := clusterVecs(20, 7)
	scales := feature.FitScales(schema, vecs)
	for _, lsh := range []LSHConfig{
		{Enable: true, Features: []string{"nosuch"}},
		{Enable: true, Features: []string{"score"}}, // numeric, not hashable
	} {
		_, err := BuildGraph(context.Background(), GraphConfig{K: 3, LSH: lsh}, vecs, scales)
		if err == nil {
			t.Errorf("LSH %+v: expected error", lsh)
		}
	}
	embOnly := feature.MustSchema(
		feature.Def{Name: "emb", Kind: feature.Embedding, Set: "I", Servable: true, Dim: 2},
	)
	v := feature.NewVector(embOnly)
	v.MustSet("emb", feature.EmbeddingValue([]float64{1, 0}))
	_, err := BuildGraph(context.Background(), GraphConfig{
		K: 3, LSH: LSHConfig{Enable: true},
	}, []*feature.Vector{v, v}, nil)
	if err == nil {
		t.Error("schema without categorical features: expected error")
	}
}

// TestRecallMetric pins the Recall helper on hand-built graphs.
func TestRecallMetric(t *testing.T) {
	ref := &Graph{adj: [][]Edge{
		{{To: 1, Weight: 1}, {To: 2, Weight: 0.5}},
		{{To: 0, Weight: 1}},
		{{To: 0, Weight: 0.5}},
	}}
	if r := Recall(ref, ref); r != 1 {
		t.Errorf("self recall = %v", r)
	}
	half := &Graph{adj: [][]Edge{
		{{To: 1, Weight: 1}},
		{{To: 0, Weight: 1}},
		{},
	}}
	if r := Recall(ref, half); r != 0.5 {
		t.Errorf("recall = %v, want 0.5", r)
	}
	empty := &Graph{adj: [][]Edge{{}, {}, {}}}
	if r := Recall(empty, ref); r != 1 {
		t.Errorf("empty reference recall = %v, want 1", r)
	}
}

// TestSymmetrizeEdgeCases covers symmetrize directly: empty graph, single
// vertex, one-sided selections mirrored, and double selections collapsing
// to one edge.
func TestSymmetrizeEdgeCases(t *testing.T) {
	if adj := symmetrize([][]Edge{}); len(adj) != 0 {
		t.Errorf("empty graph symmetrized to %d vertices", len(adj))
	}
	if adj := symmetrize([][]Edge{{}}); len(adj) != 1 || len(adj[0]) != 0 {
		t.Errorf("single vertex symmetrized to %+v", adj)
	}
	// 0 selected 1; 1 selected nothing; both sides must end with the edge.
	adj := symmetrize([][]Edge{{{To: 1, Weight: 0.7}}, {}})
	if len(adj[0]) != 1 || adj[0][0] != (Edge{To: 1, Weight: 0.7}) {
		t.Errorf("vertex 0: %+v", adj[0])
	}
	if len(adj[1]) != 1 || adj[1][0] != (Edge{To: 0, Weight: 0.7}) {
		t.Errorf("vertex 1: %+v", adj[1])
	}
	// Mutual selection (equal weights, similarity is symmetric) collapses.
	adj = symmetrize([][]Edge{
		{{To: 1, Weight: 0.9}},
		{{To: 0, Weight: 0.9}},
	})
	if len(adj[0]) != 1 || len(adj[1]) != 1 {
		t.Errorf("mutual selection not collapsed: %+v", adj)
	}
	// Output must be sorted by To for every vertex.
	adj = symmetrize([][]Edge{
		{{To: 3, Weight: 0.5}, {To: 1, Weight: 0.4}},
		{},
		{{To: 0, Weight: 0.3}},
		{},
	})
	for i, es := range adj {
		for j := 1; j < len(es); j++ {
			if es[j-1].To >= es[j].To {
				t.Errorf("vertex %d adjacency not sorted: %+v", i, es)
			}
		}
	}
}

// TestDedupeSetFloodAndWraparound covers the epoch-stamped set directly: a
// flood of duplicate adds keeps one copy, and the epoch wrapping through
// int32 overflow clears stamps instead of resurrecting stale membership.
func TestDedupeSetFloodAndWraparound(t *testing.T) {
	s := &dedupeSet{stamp: make([]int32, 4)}
	s.reset()
	for i := 0; i < 1000; i++ {
		s.add(2)
	}
	if len(s.buf) != 1 || s.buf[0] != 2 {
		t.Fatalf("duplicate flood produced buf %v", s.buf)
	}
	s.reset()
	if len(s.buf) != 0 {
		t.Fatal("reset did not clear the buffer")
	}
	if !s.add(2) {
		t.Fatal("element from the previous epoch still marked present")
	}

	// Drive the epoch to the wraparound: stamp an element at the last
	// positive epoch, overflow into negative epochs, and ensure no reset
	// between now and the epoch's reuse ever sees the stale stamp.
	s = &dedupeSet{stamp: make([]int32, 2), epoch: (1 << 31) - 2}
	s.reset() // epoch = MaxInt32
	s.add(1)
	stale := s.stamp[1]
	s.reset() // epoch overflows to MinInt32
	if s.epoch == stale {
		t.Fatalf("epoch %d collides with stale stamp immediately after overflow", s.epoch)
	}
	if !s.add(1) {
		t.Fatal("post-overflow epoch rejects a fresh element")
	}
	// The wrap to zero must clear stamps and restart at 1, so the stale
	// MaxInt32 stamp can never match a future epoch.
	s = &dedupeSet{stamp: []int32{0, (1 << 31) - 1}, epoch: -1}
	s.reset()
	if s.epoch != 1 {
		t.Fatalf("epoch after zero-wrap = %d, want 1", s.epoch)
	}
	if s.stamp[1] != 0 {
		t.Fatalf("zero-wrap did not clear stamps: %v", s.stamp)
	}
	if !s.add(1) {
		t.Fatal("cleared element still marked present")
	}
}

// sweepRefs caches the sampling-free exact reference graph per corpus size
// so recall is computed once per size, not once per bench iteration.
var sweepRefs = map[int]*Graph{}

func sweepRecallRef(b *testing.B, n int, vecs []*feature.Vector, scales feature.Scales) *Graph {
	b.Helper()
	if g, ok := sweepRefs[n]; ok {
		return g
	}
	ref, err := BuildGraph(context.Background(), GraphConfig{
		K: 10, Seed: 7, BlockFeatures: []string{"topic"}, MaxCandidates: n,
	}, vecs, scales)
	if err != nil {
		b.Fatal(err)
	}
	sweepRefs[n] = ref
	return ref
}

// BenchmarkBuildGraphSweep sizes BuildGraph across 10³–10⁵ vertices for the
// three candidate paths. Blocked and LSH run their production configs
// (candidate cap 300); the reported "recall" metric compares each against
// the sampling-free exact blocked reference (computed for n ≤ 10⁴, where
// the reference is affordable). The LSH column also runs n = 10⁵, where
// block scans are the dominant blocked-path cost and bucket lookups keep
// per-vertex work near subcluster size.
func BenchmarkBuildGraphSweep(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000, 100000} {
		vecs := sweepVecs(n, 21)
		scales := feature.FitScales(sweepSchema, vecs)
		for _, mode := range []string{"allpairs", "blocked", "lsh"} {
			if mode == "allpairs" && n > 1000 {
				continue // O(n²): unaffordable beyond the smallest size
			}
			if mode == "blocked" && n > 50000 {
				continue // block scans already dominate at 5·10⁴
			}
			cfg := GraphConfig{K: 10, Seed: 7, Workers: 1}
			switch mode {
			case "blocked":
				cfg.BlockFeatures = []string{"topic"}
			case "lsh":
				cfg.LSH = LSHConfig{Enable: true}
			}
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				var ref *Graph
				if mode != "allpairs" && n <= 10000 {
					ref = sweepRecallRef(b, n, vecs, scales)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var g *Graph
				for i := 0; i < b.N; i++ {
					var err error
					if g, err = BuildGraph(context.Background(), cfg, vecs, scales); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if ref != nil {
					// After ResetTimer: it deletes user-reported metrics.
					b.ReportMetric(Recall(ref, g), "recall")
				}
			})
		}
	}
}
