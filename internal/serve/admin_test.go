package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// TestReloadNonexistentPathKeepsServing: a reload pointing at a missing
// artifact returns 422 and the serving generation is untouched.
func TestReloadNonexistentPathKeepsServing(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	path := saveArtifact(t, fx.modelA, "a.xma")
	if resp, body := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": path}); resp.StatusCode != http.StatusOK {
		t.Fatalf("install: %d %s", resp.StatusCode, body)
	}
	seqBefore := s.Registry().Current().Seq

	resp, body := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": path + ".missing"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing-path reload: %d %s, want 422", resp.StatusCode, body)
	}
	if got := s.Registry().Current().Seq; got != seqBefore {
		t.Fatalf("seq moved %d → %d on a failed reload", seqBefore, got)
	}
	// The old model still serves, bit-identically.
	resp, body = postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: 7}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after failed reload: %d %s", resp.StatusCode, body)
	}
}

// badCanaryVector builds a canary vector with a +Inf numeric feature. Inf
// survives the ReLU hidden layer (unlike NaN, which ReLU floors to 0), and
// mixed-sign output weights over Inf activations produce a NaN score — so
// any real model fails canary validation on it.
func badCanaryVector(t *testing.T) *feature.Vector {
	t.Helper()
	schema := fx.store.Library().Schema()
	v := feature.NewVector(schema)
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		if d.Servable && d.Kind == feature.Numeric {
			v.MustSet(d.Name, feature.NumericValue(math.Inf(1)))
			return v
		}
	}
	t.Fatal("standard schema has no servable numeric feature")
	return nil
}

// TestReloadMidCanaryFailureLeavesSeqUnchanged: a structurally valid
// artifact that fails canary validation is refused with 422, Seq does not
// advance, and the incumbent keeps serving.
func TestReloadMidCanaryFailureLeavesSeqUnchanged(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	pathA := saveArtifact(t, fx.modelA, "a.xma")
	if resp, body := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": pathA}); resp.StatusCode != http.StatusOK {
		t.Fatalf("install: %d %s", resp.StatusCode, body)
	}
	seqBefore := s.Registry().Current().Seq

	// Poison the canary batch: the next validation — and only it — fails.
	s.reg.canary = append(s.reg.canary, badCanaryVector(t))
	pathB := saveArtifact(t, fx.modelB, "b.xma")
	resp, body := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": pathB})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("canary-failing reload: %d %s, want 422", resp.StatusCode, body)
	}
	cur := s.Registry().Current()
	if cur.Seq != seqBefore {
		t.Fatalf("seq moved %d → %d on canary failure", seqBefore, cur.Seq)
	}
	if want := wantScore(t, fx.modelA, 3); cur.Model.Predict(mustVec(t, 3)) != want {
		t.Fatal("incumbent model changed despite rejected reload")
	}
}

// mustVec featurizes one fixture point through the shared store.
func mustVec(t *testing.T, id int) *feature.Vector {
	t.Helper()
	pt := DerivePoint(fx.world, fxSeed, id, synth.Image, 0)
	vecs, err := fx.store.Featurize(context.Background(), mapreduce.Config{}, []*synth.Point{pt})
	if err != nil {
		t.Fatal(err)
	}
	return vecs[0]
}

// TestShedResponsesCarryRetryAfterOne pins the exact Retry-After value on
// every shed path: queue-full, breaker-open, and not-ready all advertise a
// 1-second backoff.
func TestShedResponsesCarryRetryAfterOne(t *testing.T) {
	fixture(t)
	s := &Server{met: NewMetrics()}
	cases := []struct {
		name string
		err  error
		code int
	}{
		{"queue full", ErrQueueFull, http.StatusTooManyRequests},
		{"breaker open", resource.ErrBreakerOpen, http.StatusServiceUnavailable},
		{"not ready", errNotReady, http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.writeSubmitError(rec, tc.err)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.code)
		}
		if ra := rec.Header().Get("Retry-After"); ra != "1" {
			t.Errorf("%s: Retry-After = %q, want \"1\"", tc.name, ra)
		}
	}
	if s.met.ShedBreaker.Load() != 1 {
		t.Error("breaker shed not counted")
	}
}

// TestServeDeadlineShedCounted: a request whose budget is already exhausted
// when it reaches the batcher is shed with 504 and counted.
func TestServeDeadlineShedCounted(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{MaxWait: 20 * time.Millisecond}, time.Nanosecond)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: 1}}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-budget predict: %d %s, want 504", resp.StatusCode, body)
	}
	if s.met.ShedDeadline.Load() == 0 {
		t.Error("deadline shed not counted")
	}
}
