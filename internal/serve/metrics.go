package serve

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Observability for the serving path: lock-free counters, fixed-bucket
// histograms with quantile estimation, and a short sliding QPS window. All
// of it is stdlib-only and cheap enough to sit on every request; the
// /metrics endpoint renders a Prometheus-style text exposition.

// Histogram is a concurrency-safe fixed-bucket histogram. Bounds are upper
// bucket edges; observations above the last bound land in an implicit
// overflow bucket. Quantiles interpolate linearly inside a bucket, which is
// exact enough for p50/p95/p99 reporting at serving granularity.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(floatFrom(old)+v)) {
			break
		}
	}
	// Observations are non-negative (latencies, batch sizes), so the zero
	// initial max is a safe floor.
	for {
		old := h.max.Load()
		if floatFrom(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, floatBits(v)) {
			break
		}
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return floatFrom(h.sum.Load()) }

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h.total.Load() == 0 {
		return 0
	}
	return floatFrom(h.max.Load())
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the containing bucket. Observations in the overflow bucket report
// the max seen. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	lo := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= target && c > 0 {
			if i >= len(h.bounds) {
				return h.Max()
			}
			hi := h.bounds[i]
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
		if i < len(h.bounds) {
			lo = h.bounds[i]
		}
	}
	return h.Max()
}

// Buckets returns (upper bound, count) pairs including the overflow bucket
// (bound = +Inf rendered by the caller).
func (h *Histogram) Buckets() ([]float64, []uint64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// qpsWindowSlots is the size of the sliding per-second request window; the
// reported rate averages the most recent qpsWindowSeconds full seconds.
const (
	qpsWindowSlots   = 16
	qpsWindowSeconds = 10
)

// rateWindow counts events per wall-clock second in a small ring, reporting
// a trailing-window rate. A mutex is fine here: one tiny critical section
// per request is noise next to featurization.
type rateWindow struct {
	mu    sync.Mutex
	secs  [qpsWindowSlots]int64
	count [qpsWindowSlots]uint64
}

// Add records one event at time now.
func (w *rateWindow) Add(now time.Time) {
	sec := now.Unix()
	i := int(sec % qpsWindowSlots)
	w.mu.Lock()
	if w.secs[i] != sec {
		w.secs[i] = sec
		w.count[i] = 0
	}
	w.count[i]++
	w.mu.Unlock()
}

// Rate reports events/second over the trailing qpsWindowSeconds full
// seconds (the current partial second is excluded).
func (w *rateWindow) Rate(now time.Time) float64 {
	sec := now.Unix()
	var n uint64
	w.mu.Lock()
	for i := 0; i < qpsWindowSlots; i++ {
		if d := sec - w.secs[i]; d >= 1 && d <= qpsWindowSeconds {
			n += w.count[i]
		}
	}
	w.mu.Unlock()
	return float64(n) / qpsWindowSeconds
}

// Metrics aggregates the serving counters the ISSUE's observability layer
// calls for: QPS, queue depth (read live from the batcher), batch-size and
// latency distributions, and shed counts.
type Metrics struct {
	start time.Time

	Requests     atomic.Uint64 // HTTP /predict requests admitted to scoring
	Predictions  atomic.Uint64 // points scored (a request may carry several)
	ShedQueue    atomic.Uint64 // rejected: admission queue full
	ShedDeadline atomic.Uint64 // rejected: deadline expired before scoring
	ShedBreaker  atomic.Uint64 // rejected: resource circuit breaker open
	NotReady     atomic.Uint64 // rejected: no model loaded
	ClientErrors atomic.Uint64 // malformed requests
	Errors       atomic.Uint64 // internal scoring failures

	Latency   *Histogram // seconds per request
	BatchSize *Histogram // points per executed batch
	Scores    *Histogram // served model scores (drift detectors diff this)

	qps rateWindow
}

// NewMetrics builds the metric set with serving-scale bucket layouts.
func NewMetrics() *Metrics {
	return &Metrics{
		start: time.Now(),
		Latency: NewHistogram([]float64{
			0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005,
			0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5,
		}),
		BatchSize: NewHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		Scores:    NewHistogram(scoreBuckets()),
	}
}

// ObserveRequest records one completed scoring request.
func (m *Metrics) ObserveRequest(latency time.Duration, points int, now time.Time) {
	m.Requests.Add(1)
	m.Predictions.Add(uint64(points))
	m.Latency.Observe(latency.Seconds())
	m.qps.Add(now)
}

// QPS reports the trailing-window request rate.
func (m *Metrics) QPS(now time.Time) float64 { return m.qps.Rate(now) }

// WriteTo renders the Prometheus-style exposition. queueDepth and modelSeq
// are gauges owned elsewhere (batcher, registry) and passed in by the
// handler.
func (m *Metrics) WriteTo(w io.Writer, queueDepth int, modelKind string, modelSeq uint64) {
	now := time.Now()
	fmt.Fprintf(w, "serve_uptime_seconds %.3f\n", now.Sub(m.start).Seconds())
	fmt.Fprintf(w, "serve_requests_total %d\n", m.Requests.Load())
	fmt.Fprintf(w, "serve_predictions_total %d\n", m.Predictions.Load())
	fmt.Fprintf(w, "serve_shed_queue_total %d\n", m.ShedQueue.Load())
	fmt.Fprintf(w, "serve_shed_deadline_total %d\n", m.ShedDeadline.Load())
	fmt.Fprintf(w, "serve_shed_breaker_total %d\n", m.ShedBreaker.Load())
	fmt.Fprintf(w, "serve_not_ready_total %d\n", m.NotReady.Load())
	fmt.Fprintf(w, "serve_client_errors_total %d\n", m.ClientErrors.Load())
	fmt.Fprintf(w, "serve_errors_total %d\n", m.Errors.Load())
	fmt.Fprintf(w, "serve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "serve_qps_window %.2f\n", m.QPS(now))
	if up := now.Sub(m.start).Seconds(); up > 0 {
		fmt.Fprintf(w, "serve_qps_cumulative %.2f\n", float64(m.Requests.Load())/up)
	}
	if modelKind != "" {
		fmt.Fprintf(w, "serve_model_loaded{kind=%q} 1\n", modelKind)
	} else {
		fmt.Fprintf(w, "serve_model_loaded 0\n")
	}
	fmt.Fprintf(w, "serve_model_seq %d\n", modelSeq)
	writeHistogram(w, "serve_latency_seconds", m.Latency)
	writeHistogram(w, "serve_batch_size", m.BatchSize)
	writeHistogram(w, "serve_scores", m.Scores)
}

// scoreBuckets covers the probability range in 0.05 steps: fine enough for
// PSI over the score distribution, coarse enough to stay cheap per request.
func scoreBuckets() []float64 {
	var b []float64
	for x := 0.05; x < 0.999; x += 0.05 {
		b = append(b, math.Round(x*100)/100)
	}
	return b
}

// writeHistogram renders one histogram: count, sum, quantiles, and buckets.
func writeHistogram(w io.Writer, name string, h *Histogram) {
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_max %g\n", name, h.Max())
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", name, q, h.Quantile(q))
	}
	bounds, counts := h.Buckets()
	var cum uint64
	for i, c := range counts {
		cum += c
		if i < len(bounds) {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bounds[i], cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		}
	}
}
