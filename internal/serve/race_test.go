//go:build race

package serve

// raceEnabled gates allocation-count assertions: the race runtime
// instruments sync.Pool and channel ops with extra allocations that are not
// present in production builds.
const raceEnabled = true
