package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/model"
	"crossmodal/internal/synth"
)

// mustDecode unmarshals a JSON response body or fails the test.
func mustDecode(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
}

// quantCopy clones the fixture's early-fusion model through an artifact
// round trip (the fixture is shared and read-only) and stamps it with p.
func quantCopy(t *testing.T, p model.Precision) *fusion.EarlyModel {
	t.Helper()
	fixture(t)
	var buf bytes.Buffer
	if err := fusion.Save(&buf, fx.modelA); err != nil {
		t.Fatal(err)
	}
	got, _, err := fusion.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	em := got.(*fusion.EarlyModel)
	if err := em.SetServePrecision(p); err != nil {
		t.Fatal(err)
	}
	return em
}

// TestQuantizedServingEndToEnd installs the float64 model, scores a point
// over HTTP, hot-swaps in the same weights stamped float32, and asserts the
// served score stays within the quantization bound with the same decision.
func TestQuantizedServingEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	req := predictRequest{Points: []PointRequest{{ID: 42}}}
	resp, body := postJSON(t, ts.URL+"/predict", req)
	if resp.StatusCode != 200 {
		t.Fatalf("exact predict: %d %s", resp.StatusCode, body)
	}
	var exact predictResponse
	mustDecode(t, body, &exact)

	l, err := s.Registry().Install(quantCopy(t, model.Float32), "")
	if err != nil {
		t.Fatal(err)
	}
	if l.Precision != model.Float32 {
		t.Fatalf("installed precision = %v, want f32", l.Precision)
	}
	resp, body = postJSON(t, ts.URL+"/predict", req)
	if resp.StatusCode != 200 {
		t.Fatalf("quantized predict: %d %s", resp.StatusCode, body)
	}
	var quant predictResponse
	mustDecode(t, body, &quant)
	if quant.ModelSeq != l.Seq {
		t.Errorf("served seq %d, want %d", quant.ModelSeq, l.Seq)
	}
	d := math.Abs(quant.Scores[0] - exact.Scores[0])
	if d >= 1e-3 {
		t.Errorf("|quant-exact| = %g, want < 1e-3", d)
	}
	if (quant.Scores[0] >= 0.5) != (exact.Scores[0] >= 0.5) {
		t.Errorf("quantized serving flips the decision (%v vs %v)", quant.Scores[0], exact.Scores[0])
	}
}

// TestInstallExactKeepsReferencePath pins that a Float64-stamped (or plain)
// predictor takes the reference path: no quantized scorer is attached.
func TestInstallExactKeepsReferencePath(t *testing.T) {
	fixture(t)
	r := NewRegistry(nil)
	l, err := r.Install(fx.modelA, "")
	if err != nil {
		t.Fatal(err)
	}
	if l.Precision != model.Float64 || l.scoreInto != nil {
		t.Errorf("exact install got precision %v, scorer %v", l.Precision, l.scoreInto != nil)
	}
}

// divergentQuant is a predictor whose quantized path disagrees wildly with
// its float64 path — the failure mode the canary gate must refuse.
type divergentQuant struct{ base fusion.Predictor }

func (d *divergentQuant) Predict(v *feature.Vector) float64 { return d.base.Predict(v) }
func (d *divergentQuant) PredictBatch(vs []*feature.Vector) []float64 {
	return d.base.PredictBatch(vs)
}
func (d *divergentQuant) ServePrecision() model.Precision { return model.Int8 }
func (d *divergentQuant) PredictBatchQInto(vs []*feature.Vector, out []float64) {
	ref := d.base.PredictBatch(vs)
	for i := range out {
		out[i] = 1 - ref[i] // maximal divergence, decisions flipped
	}
}

// TestRegistryRejectsDivergentQuantization is the canary gate: a model whose
// reduced-precision path strays from its float64 reference must not swap in.
func TestRegistryRejectsDivergentQuantization(t *testing.T) {
	fixture(t)
	pts := make([]*synth.Point, 4)
	for i := range pts {
		pts[i] = DerivePoint(fx.world, fxSeed, 300+i, synth.Image, 0)
	}
	vecs, err := fx.store.Featurize(ctxbg, mapreduce.Config{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(vecs)
	if _, err := r.Install(&divergentQuant{base: fx.modelA}, ""); err == nil {
		t.Fatal("divergent quantized model passed canary validation")
	}
	if r.Ready() {
		t.Error("registry became ready from a rejected model")
	}
	// The same weights with a faithful quantized path install fine.
	if _, err := r.Install(quantCopy(t, model.Float32), ""); err != nil {
		t.Fatalf("faithful f32 model rejected: %v", err)
	}
}

// TestRegistryAcceptsInt8WithinTolerance pins the per-precision canary
// bound: an int8 engine legitimately diverges past f32's 1e-3 limit but
// stays within its own 5e-2 contract, so a faithfully int8-stamped model
// must pass the canary gate (a flat 1e-3 gate rejected every int8
// artifact).
func TestRegistryAcceptsInt8WithinTolerance(t *testing.T) {
	fixture(t)
	pts := make([]*synth.Point, 8)
	for i := range pts {
		pts[i] = DerivePoint(fx.world, fxSeed, 400+i, synth.Image, 0)
	}
	vecs, err := fx.store.Featurize(ctxbg, mapreduce.Config{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(vecs)
	l, err := r.Install(quantCopy(t, model.Int8), "")
	if err != nil {
		t.Fatalf("faithful int8 model rejected by canary: %v", err)
	}
	if l.Precision != model.Int8 || l.scoreInto == nil {
		t.Errorf("int8 install got precision %v, scorer %v", l.Precision, l.scoreInto != nil)
	}
}

// TestBuildPointCache pins the direct-mapped request-point cache: repeated
// builds return the identical cached point, and the cached point is exactly
// what DerivePoint renders.
func TestBuildPointCache(t *testing.T) {
	s, _ := newTestServer(t, BatcherConfig{}, time.Second)
	a := s.BuildPoint(7, synth.Image, 0)
	b := s.BuildPoint(7, synth.Image, 0)
	if a != b {
		t.Error("repeated BuildPoint did not return the cached point")
	}
	ref := DerivePoint(fx.world, fxSeed, 7, synth.Image, 0)
	if a.ID != ref.ID || a.Seed != ref.Seed || a.Modality != ref.Modality || a.Frames != ref.Frames || a.Entity.ID != ref.Entity.ID {
		t.Errorf("cached point %+v differs from derived %+v", a, ref)
	}
	// A different key must not serve point 7's data.
	c := s.BuildPoint(7, synth.Video, 3)
	if c.Modality != synth.Video || c.Frames != 3 || c.ID != 7 {
		t.Errorf("distinct key returned wrong point %+v", c)
	}
}

// TestBatcherSubmitZeroAllocs is the arena contract on the serving hot
// path: once pools are warm, a steady-state no-deadline Submit allocates
// nothing in the batcher (request, batch, points, and scores all reuse).
func TestBatcherSubmitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime adds bookkeeping allocations")
	}
	b := NewBatcher(BatcherConfig{MaxBatchSize: 8, MaxWait: time.Millisecond},
		func(_ context.Context, pts []*synth.Point, scores []float64) (uint64, error) {
			for i := range pts {
				scores[i] = 0.5
			}
			return 1, nil
		}, nil)
	defer b.Close()
	p := pt(1)
	if _, _, err := b.Submit(ctxbg, p, time.Time{}); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := b.Submit(ctxbg, p, time.Time{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("%v allocs per steady-state Submit, want 0", allocs)
	}
}
