package serve

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10) // 0.1 .. 10.0 uniform
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1.6 {
		t.Errorf("p50 = %v, want ~5 (bucket-resolution tolerance)", got)
	}
	if got := h.Quantile(0.99); got < 9 || got > 10 {
		t.Errorf("p99 = %v, want in [9,10]", got)
	}
	if got := h.Max(); got != 10 {
		t.Errorf("max = %v, want 10", got)
	}
	if got := h.Mean(); math.Abs(got-5.05) > 1e-9 {
		t.Errorf("mean = %v, want 5.05", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 200 {
		t.Errorf("overflow quantile = %v, want max 200", got)
	}
	_, counts := h.Buckets()
	if counts[len(counts)-1] != 2 {
		t.Errorf("overflow count = %d, want 2", counts[len(counts)-1])
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000 {
		t.Errorf("sum = %v, want 8000", h.Sum())
	}
}

func TestRateWindow(t *testing.T) {
	var w rateWindow
	base := time.Unix(1_000_000, 0)
	// 50 events in each of the 3 seconds before "now".
	for sec := int64(1); sec <= 3; sec++ {
		for i := 0; i < 50; i++ {
			w.Add(base.Add(time.Duration(sec) * time.Second))
		}
	}
	now := base.Add(4 * time.Second)
	got := w.Rate(now)
	want := 150.0 / qpsWindowSeconds
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("rate = %v, want %v", got, want)
	}
	// Events far in the past drop out of the window.
	if got := w.Rate(base.Add(1000 * time.Second)); got != 0 {
		t.Errorf("stale rate = %v, want 0", got)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest(3*time.Millisecond, 2, time.Now())
	m.ShedQueue.Add(4)
	var b strings.Builder
	m.WriteTo(&b, 7, "early", 3)
	out := b.String()
	for _, want := range []string{
		"serve_requests_total 1",
		"serve_predictions_total 2",
		"serve_shed_queue_total 4",
		"serve_queue_depth 7",
		"serve_model_loaded{kind=\"early\"} 1",
		"serve_model_seq 3",
		"serve_latency_seconds{quantile=\"0.5\"}",
		"serve_latency_seconds{quantile=\"0.95\"}",
		"serve_latency_seconds{quantile=\"0.99\"}",
		"serve_batch_size_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
