package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"crossmodal/internal/faulty"
	"crossmodal/internal/featurestore"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// newChaosServer builds a server whose featurestore sits on a fault-injected,
// guard-wrapped copy of the standard library. The model is installed directly
// (no canary) so startup cannot consume injection ordinals.
func newChaosServer(t *testing.T, sched faulty.Schedule, pol resource.Policy) (*Server, *featurestore.Store, *httptest.Server) {
	t.Helper()
	fixture(t)
	lib, err := resource.StandardLibrary(fx.world)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, _, err := faulty.WrapLibrary(lib, sched)
	if err != nil {
		t.Fatal(err)
	}
	store, err := featurestore.New(wrapped.WithGuards(pol, nil), 4096)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Store:   store,
		World:   fx.world,
		Seed:    fxSeed,
		Batcher: BatcherConfig{QueueDepth: 256},
		Workers: 1,
		Timeout: 5 * time.Second,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, store, ts
}

func quietGuardPolicy() resource.Policy {
	return resource.Policy{
		MaxAttempts:      3,
		BreakerThreshold: -1,
		Sleep:            func(time.Duration) {},
	}
}

// metricValue pulls one plain (unlabeled) gauge out of a /metrics body.
func metricValue(t *testing.T, body, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// TestChaosServeZeroFaultBitIdentical: the whole guarded serving stack at
// zero fault rates returns bit-identical scores to the plain fixture store.
func TestChaosServeZeroFaultBitIdentical(t *testing.T) {
	_, store, ts := newChaosServer(t, faulty.Schedule{Seed: 5000}, quietGuardPolicy())
	for id := 0; id < 8; id++ {
		resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: id}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict id %d: %d %s", id, resp.StatusCode, body)
		}
		var pr predictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if want := wantScore(t, fx.modelA, id); len(pr.Scores) != 1 || pr.Scores[0] != want {
			t.Fatalf("id %d: chaos-stack score %v, plain-stack %v", id, pr.Scores, want)
		}
	}
	if store.StaleServed() != 0 || store.DegradedServed() != 0 {
		t.Fatal("degradation counters moved at zero fault rate")
	}
}

// TestChaosServeDegradationCountersMatchSchedule drives sequential,
// unique-ID requests through an error-only schedule and checks that the
// store's degraded counter and the /metrics exposition both equal the count
// an offline replay of the schedule predicts.
func TestChaosServeDegradationCountersMatchSchedule(t *testing.T) {
	sched := faulty.Schedule{Seed: 6100, ErrorRate: 0.35}
	pol := quietGuardPolicy()
	_, store, ts := newChaosServer(t, sched, pol)

	lib, err := resource.StandardLibrary(fx.world)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	var wantDegraded, wantFailed int
	for id := 0; id < n; id++ {
		p := DerivePoint(fx.world, fxSeed, id, synth.Image, 0)
		applicable, failed := 0, 0
		for _, r := range lib.Resources() {
			if !resource.Applicable(r, p) {
				continue
			}
			applicable++
			if sched.FailsAttempts(p.Seed, r.Def().Name, 0, pol.MaxAttempts) {
				failed++
			}
		}
		switch {
		case failed == 0:
		case failed == applicable:
			wantFailed++
		default:
			wantDegraded++
		}
	}
	if wantDegraded == 0 {
		t.Fatal("schedule predicts no degradations; pick a different seed")
	}

	var gotFailed int
	for id := 0; id < n; id++ {
		resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: id}}})
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusInternalServerError:
			gotFailed++
		default:
			t.Fatalf("id %d: unexpected status %d %s", id, resp.StatusCode, body)
		}
	}
	if gotFailed != wantFailed {
		t.Fatalf("failed requests = %d, replay predicted %d", gotFailed, wantFailed)
	}
	if got := store.DegradedServed(); got != uint64(wantDegraded) {
		t.Fatalf("DegradedServed = %d, replay predicted %d", got, wantDegraded)
	}
	resp, metrics := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if got := metricValue(t, metrics, "serve_featurestore_degraded_served_total"); got != uint64(wantDegraded) {
		t.Fatalf("metrics degraded_served = %d, replay predicted %d", got, wantDegraded)
	}
	if got := metricValue(t, metrics, "serve_featurestore_stale_served_total"); got != 0 {
		t.Fatalf("metrics stale_served = %d with no TTL configured", got)
	}
}

// TestChaosServeShedsOnBreakerOpen: a dead resource fleet trips breakers;
// requests shed with 503 + Retry-After, the shed counter moves, and readyz
// stays 200 while reporting the open breakers.
func TestChaosServeShedsOnBreakerOpen(t *testing.T) {
	pol := resource.Policy{
		MaxAttempts:      3,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the whole test
		Sleep:            func(time.Duration) {},
	}
	s, _, ts := newChaosServer(t, faulty.Schedule{Seed: 6200, ErrorRate: 1}, pol)

	saw503 := false
	for id := 0; id < 6; id++ {
		resp, _ := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: id}}})
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			saw503 = true
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Fatalf("503 Retry-After = %q, want \"1\"", ra)
			}
		case http.StatusInternalServerError:
			// Pre-trip failures surface as plain unavailability.
		default:
			t.Fatalf("id %d: unexpected status %d", id, resp.StatusCode)
		}
	}
	if !saw503 {
		t.Fatal("no request was shed with 503 while breakers were open")
	}
	if s.Metrics().ShedBreaker.Load() == 0 {
		t.Fatal("serve_shed_breaker_total did not move")
	}
	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d; open breakers must degrade, not unready", resp.StatusCode)
	}
	if !strings.Contains(body, "breakers_open=") || strings.Contains(body, "breakers_open=0") {
		t.Fatalf("readyz body %q does not report open breakers", body)
	}
	resp, metrics := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if metricValue(t, metrics, "serve_breakers_open") == 0 {
		t.Fatal("serve_breakers_open gauge is 0 with dead resources")
	}
	if metricValue(t, metrics, "serve_shed_breaker_total") == 0 {
		t.Fatal("serve_shed_breaker_total metric is 0")
	}
	if !strings.Contains(metrics, `state="open"`) {
		t.Fatal("no per-resource breaker reports open state")
	}
}

// TestChaosServeRaceCleanUnderMixedFaults hammers /predict concurrently at a
// 30% mixed fault rate: every response must be a well-formed success or a
// mapped degradation status, retries stay bounded, and nothing panics or
// deadlocks (run with -race via make chaos).
func TestChaosServeRaceCleanUnderMixedFaults(t *testing.T) {
	sched := faulty.Schedule{
		Seed:        6300,
		ErrorRate:   0.10,
		LatencyRate: 0.10,
		LatencyMin:  50 * time.Microsecond,
		LatencyMax:  200 * time.Microsecond,
		PartialRate: 0.10,
	}
	pol := quietGuardPolicy()
	pol.BreakerThreshold = 100 // present, effectively untrippable at this rate
	pol.Timeout = time.Second
	s, store, ts := newChaosServer(t, sched, pol)

	const workers, perWorker = 6, 30
	var wg sync.WaitGroup
	statuses := make([]map[int]int, workers)
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		statuses[w] = map[int]int{}
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				raw := fmt.Sprintf(`{"points":[{"id":%d}]}`, id)
				resp, err := client.Post(ts.URL+"/predict", "application/json", strings.NewReader(raw))
				if err != nil {
					t.Errorf("worker %d req %d: %v", w, i, err)
					return
				}
				var pr predictResponse
				dec := json.NewDecoder(resp.Body)
				if resp.StatusCode == http.StatusOK {
					if err := dec.Decode(&pr); err != nil {
						t.Errorf("worker %d req %d: decode: %v", w, i, err)
					} else if len(pr.Scores) != 1 || math.IsNaN(pr.Scores[0]) {
						t.Errorf("worker %d req %d: bad scores %v", w, i, pr.Scores)
					}
				}
				resp.Body.Close()
				statuses[w][resp.StatusCode]++
			}
		}(w)
	}
	wg.Wait()

	total := map[int]int{}
	for _, m := range statuses {
		for code, n := range m {
			total[code] += n
		}
	}
	for code := range total {
		switch code {
		case http.StatusOK, http.StatusInternalServerError,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout,
			http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d in %v", code, total)
		}
	}
	if total[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded under 30%% faults: %v", total)
	}
	var calls, retries uint64
	maxAttempts := uint64(pol.MaxAttempts)
	for _, g := range store.Library().GuardStatuses() {
		calls += g.Calls
		retries += g.Retries
	}
	if retries > calls*(maxAttempts-1) {
		t.Fatalf("retries %d exceed bound %d", retries, calls*(maxAttempts-1))
	}
	_ = s
}
