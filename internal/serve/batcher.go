package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

// The micro-batcher is the serving-side twin of the training engine's batch
// parallelism: individual requests from many HTTP handler goroutines
// coalesce into batches that flow through featurestore.Store.Featurize and
// the predictor's batch path together, amortizing the parallel batch
// machinery (PR 1) across concurrent callers. Admission is a bounded queue —
// when the server falls behind, excess load is shed immediately with a
// retryable error instead of building an unbounded backlog (the classic
// load-shedding discipline of production serving stacks).
//
// The hot path is arena-style: request and batch structs cycle through
// sync.Pools and the score buffer belongs to the batch, so a steady-state
// request allocates nothing in the batcher. Dispatch is adaptive — a batch
// hands off immediately when an executor is idle (latency-bound traffic
// never pays the coalescing window) and only waits out MaxWait when all
// executors are busy (throughput-bound traffic batches up).

// Shedding and lifecycle errors. The HTTP layer maps these to status codes
// (429 for shed load, 503 before a model is loaded).
var (
	// ErrQueueFull means admission was refused because the bounded queue
	// was at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDeadline means the request's deadline expired while it waited in
	// the queue, so it was shed without being scored.
	ErrDeadline = errors.New("serve: deadline expired in queue")
	// ErrStopped means the batcher shut down before the request ran.
	ErrStopped = errors.New("serve: batcher stopped")
)

// BatcherConfig tunes the micro-batcher.
type BatcherConfig struct {
	// MaxBatchSize caps how many queued requests one batch execution
	// scores (default 64).
	MaxBatchSize int
	// MaxWait bounds how long the first request of a batch waits for
	// company when every executor is busy; with an idle executor the batch
	// dispatches immediately (default 2ms).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are shed
	// with ErrQueueFull (default 1024).
	QueueDepth int
	// Executors is the number of goroutines executing batches (default 1;
	// the batch itself already parallelizes internally via Workers knobs).
	Executors int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatchSize <= 0 {
		c.MaxBatchSize = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Executors <= 0 {
		c.Executors = 1
	}
	return c
}

// request is one enqueued point waiting to be scored. Requests cycle
// through a pool: a request is returned only from the paths that prove its
// done channel is empty (refused admission, or its response was received).
// A request abandoned to ctx cancellation is left to the garbage collector,
// because a late response may still land in its channel.
type request struct {
	pt       *synth.Point
	deadline time.Time // zero = no deadline
	done     chan response
}

// response is the terminal state of one request.
type response struct {
	score float64
	seq   uint64 // model sequence number that scored it
	err   error
}

// batch is one dispatch unit: the collected requests plus the reusable
// point and score buffers their execution fills. Batches cycle through a
// pool; the executor owns a batch from dispatch until it returns it.
type batch struct {
	reqs   []*request
	pts    []*synth.Point
	scores []float64
}

// ExecFunc scores one batch of points into scores (len(scores) ==
// len(pts)), returning the sequence number of the model that produced
// them. The scores buffer is owned by the caller and reused across batches.
// It must be safe for concurrent use when BatcherConfig.Executors > 1. ctx
// carries the batch's scoring budget — the latest deadline among the
// batch's live requests — so featurization work under it is abandoned once
// no request can still use the result.
type ExecFunc func(ctx context.Context, pts []*synth.Point, scores []float64) (uint64, error)

// Batcher coalesces single-point requests into batches. Create with
// NewBatcher, feed with Submit, stop with Close.
type Batcher struct {
	cfg       BatcherConfig
	exec      ExecFunc
	met       *Metrics
	queue     chan *request
	execQ     chan *batch
	stop      chan struct{}
	wg        sync.WaitGroup
	reqPool   sync.Pool
	batchPool sync.Pool
}

// NewBatcher starts the dispatcher and executor goroutines.
func NewBatcher(cfg BatcherConfig, exec ExecFunc, met *Metrics) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:   cfg,
		exec:  exec,
		met:   met,
		queue: make(chan *request, cfg.QueueDepth),
		execQ: make(chan *batch),
		stop:  make(chan struct{}),
	}
	b.wg.Add(1)
	go b.dispatch()
	for i := 0; i < cfg.Executors; i++ {
		b.wg.Add(1)
		go b.executor()
	}
	return b
}

// QueueDepth reports how many admitted requests are waiting to be batched.
func (b *Batcher) QueueDepth() int { return len(b.queue) }

func (b *Batcher) getBatch() *batch {
	if bt, ok := b.batchPool.Get().(*batch); ok {
		return bt
	}
	return &batch{
		reqs:   make([]*request, 0, b.cfg.MaxBatchSize),
		pts:    make([]*synth.Point, 0, b.cfg.MaxBatchSize),
		scores: make([]float64, b.cfg.MaxBatchSize),
	}
}

// putBatch clears the batch's pointers (so a pooled batch does not pin
// requests or points past its lifetime) and returns it to the pool.
func (b *Batcher) putBatch(bt *batch) {
	for i := range bt.reqs {
		bt.reqs[i] = nil
	}
	for i := range bt.pts {
		bt.pts[i] = nil
	}
	bt.reqs, bt.pts = bt.reqs[:0], bt.pts[:0]
	b.batchPool.Put(bt)
}

// Submit admits one point and blocks until it is scored, shed, or ctx ends.
// deadline zero means no deadline beyond ctx.
func (b *Batcher) Submit(ctx context.Context, pt *synth.Point, deadline time.Time) (float64, uint64, error) {
	select {
	case <-b.stop:
		return 0, 0, ErrStopped
	default:
	}
	req, ok := b.reqPool.Get().(*request)
	if !ok {
		req = &request{done: make(chan response, 1)}
	}
	req.pt, req.deadline = pt, deadline
	select {
	case b.queue <- req:
	default:
		req.pt = nil
		b.reqPool.Put(req) // never admitted: its channel is provably empty
		if b.met != nil {
			b.met.ShedQueue.Add(1)
			trace.Count(nil, "serve.shed_queue", 1)
		}
		return 0, 0, ErrQueueFull
	}
	select {
	case resp := <-req.done:
		req.pt = nil
		b.reqPool.Put(req) // answered: the buffered channel is empty again
		return resp.score, resp.seq, resp.err
	case <-ctx.Done():
		// The request is still in the pipeline; its eventual response is
		// dropped (done is buffered). The caller has already gone away. Do
		// NOT pool the request — the late response occupies its channel.
		return 0, 0, ctx.Err()
	}
}

// Close stops the batcher and fails any still-queued requests with
// ErrStopped. In-flight batches finish first.
func (b *Batcher) Close() {
	close(b.stop)
	b.wg.Wait()
	// Drain whatever was admitted but never dispatched.
	for {
		select {
		case req := <-b.queue:
			req.done <- response{err: ErrStopped}
		default:
			return
		}
	}
}

// dispatch collects requests into batches. A batch opens on its first
// request, greedily absorbs everything already queued, and then hands off
// immediately if an executor is free — the common idle-server case pays no
// wait. Only when all executors are busy does the batch hold its MaxWait
// window (more requests can only help a batch that must wait anyway).
func (b *Batcher) dispatch() {
	defer b.wg.Done()
	defer close(b.execQ)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
outer:
	for {
		var first *request
		select {
		case first = <-b.queue:
		case <-b.stop:
			return
		}
		bt := b.getBatch()
		bt.reqs = append(bt.reqs, first)
	drain:
		for len(bt.reqs) < b.cfg.MaxBatchSize {
			select {
			case req := <-b.queue:
				bt.reqs = append(bt.reqs, req)
			default:
				break drain
			}
		}
		if len(bt.reqs) < b.cfg.MaxBatchSize {
			select {
			case b.execQ <- bt: // an executor was idle: dispatch now
				continue
			case <-b.stop:
				b.failBatch(bt)
				return
			default: // all executors busy: collect while we wait
			}
			timer.Reset(b.cfg.MaxWait)
		collect:
			for len(bt.reqs) < b.cfg.MaxBatchSize {
				select {
				case req := <-b.queue:
					bt.reqs = append(bt.reqs, req)
				case b.execQ <- bt:
					// An executor freed up mid-window; it owns bt now.
					if !timer.Stop() {
						<-timer.C
					}
					continue outer
				case <-timer.C:
					break collect
				case <-b.stop:
					// Shutting down: run what we have, then exit.
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		select {
		case b.execQ <- bt:
		case <-b.stop:
			// Executors may already be gone; fail the batch directly.
			b.failBatch(bt)
			return
		}
		select {
		case <-b.stop:
			return
		default:
		}
	}
}

// failBatch answers every request in bt with ErrStopped.
func (b *Batcher) failBatch(bt *batch) {
	for _, req := range bt.reqs {
		req.done <- response{err: ErrStopped}
	}
}

// executor runs batches: expired requests are shed, the rest are scored in
// one ExecFunc call and answered individually.
func (b *Batcher) executor() {
	defer b.wg.Done()
	for bt := range b.execQ {
		b.run(bt)
	}
}

// run executes one batch and returns it to the pool.
func (b *Batcher) run(bt *batch) {
	sctx, span := trace.Start(context.Background(), "serve.batch")
	defer span.End()
	now := time.Now()
	live := bt.reqs[:0]
	for _, req := range bt.reqs {
		if !req.deadline.IsZero() && now.After(req.deadline) {
			if b.met != nil {
				b.met.ShedDeadline.Add(1)
			}
			span.Add("shed_deadline", 1)
			req.done <- response{err: fmt.Errorf("%w (late by %s)", ErrDeadline, now.Sub(req.deadline))}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		b.putBatch(bt)
		return
	}
	if b.met != nil {
		b.met.BatchSize.Observe(float64(len(live)))
	}
	bt.pts = bt.pts[:0]
	for _, req := range live {
		bt.pts = append(bt.pts, req.pt)
	}
	if cap(bt.scores) < len(live) {
		bt.scores = make([]float64, len(live))
	}
	scores := bt.scores[:len(live)]
	span.Add("items", int64(len(live)))
	// The batch runs under the latest deadline any live request still has;
	// requests without deadlines leave the batch unbounded.
	ctx := sctx
	var latest time.Time
	bounded := true
	for _, req := range live {
		if req.deadline.IsZero() {
			bounded = false
			break
		}
		if req.deadline.After(latest) {
			latest = req.deadline
		}
	}
	if bounded {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, latest)
		defer cancel()
	}
	seq, err := b.exec(ctx, bt.pts, scores)
	if err != nil {
		for _, req := range live {
			req.done <- response{err: err}
		}
		b.putBatch(bt)
		return
	}
	for i, req := range live {
		req.done <- response{score: scores[i], seq: seq}
	}
	b.putBatch(bt)
}
