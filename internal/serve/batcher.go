package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crossmodal/internal/synth"
	"crossmodal/internal/trace"
)

// The micro-batcher is the serving-side twin of the training engine's batch
// parallelism: individual requests from many HTTP handler goroutines
// coalesce into batches that flow through featurestore.Store.Featurize and
// Predictor.PredictBatch together, amortizing the parallel batch machinery
// (PR 1) across concurrent callers. Admission is a bounded queue — when the
// server falls behind, excess load is shed immediately with a retryable
// error instead of building an unbounded backlog (the classic
// load-shedding discipline of production serving stacks).

// Shedding and lifecycle errors. The HTTP layer maps these to status codes
// (429 for shed load, 503 before a model is loaded).
var (
	// ErrQueueFull means admission was refused because the bounded queue
	// was at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDeadline means the request's deadline expired while it waited in
	// the queue, so it was shed without being scored.
	ErrDeadline = errors.New("serve: deadline expired in queue")
	// ErrStopped means the batcher shut down before the request ran.
	ErrStopped = errors.New("serve: batcher stopped")
)

// BatcherConfig tunes the micro-batcher.
type BatcherConfig struct {
	// MaxBatchSize caps how many queued requests one batch execution
	// scores (default 64).
	MaxBatchSize int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch executes anyway (default 2ms).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are shed
	// with ErrQueueFull (default 1024).
	QueueDepth int
	// Executors is the number of goroutines executing batches (default 1;
	// the batch itself already parallelizes internally via Workers knobs).
	Executors int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatchSize <= 0 {
		c.MaxBatchSize = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Executors <= 0 {
		c.Executors = 1
	}
	return c
}

// request is one enqueued point waiting to be scored.
type request struct {
	pt       *synth.Point
	deadline time.Time // zero = no deadline
	done     chan response
}

// response is the terminal state of one request.
type response struct {
	score float64
	seq   uint64 // model sequence number that scored it
	err   error
}

// ExecFunc scores one batch of points and returns their scores plus the
// sequence number of the model that produced them. It must be safe for
// concurrent use when BatcherConfig.Executors > 1. ctx carries the batch's
// scoring budget — the latest deadline among the batch's live requests — so
// featurization work under it is abandoned once no request can still use
// the result.
type ExecFunc func(ctx context.Context, pts []*synth.Point) ([]float64, uint64, error)

// Batcher coalesces single-point requests into batches. Create with
// NewBatcher, feed with Submit, stop with Close.
type Batcher struct {
	cfg   BatcherConfig
	exec  ExecFunc
	met   *Metrics
	queue chan *request
	execQ chan []*request
	stop  chan struct{}
	wg    sync.WaitGroup
}

// NewBatcher starts the dispatcher and executor goroutines.
func NewBatcher(cfg BatcherConfig, exec ExecFunc, met *Metrics) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:   cfg,
		exec:  exec,
		met:   met,
		queue: make(chan *request, cfg.QueueDepth),
		execQ: make(chan []*request),
		stop:  make(chan struct{}),
	}
	b.wg.Add(1)
	go b.dispatch()
	for i := 0; i < cfg.Executors; i++ {
		b.wg.Add(1)
		go b.executor()
	}
	return b
}

// QueueDepth reports how many admitted requests are waiting to be batched.
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Submit admits one point and blocks until it is scored, shed, or ctx ends.
// deadline zero means no deadline beyond ctx.
func (b *Batcher) Submit(ctx context.Context, pt *synth.Point, deadline time.Time) (float64, uint64, error) {
	select {
	case <-b.stop:
		return 0, 0, ErrStopped
	default:
	}
	req := &request{pt: pt, deadline: deadline, done: make(chan response, 1)}
	select {
	case b.queue <- req:
	default:
		if b.met != nil {
			b.met.ShedQueue.Add(1)
			trace.Count(nil, "serve.shed_queue", 1)
		}
		return 0, 0, ErrQueueFull
	}
	select {
	case resp := <-req.done:
		return resp.score, resp.seq, resp.err
	case <-ctx.Done():
		// The request is still in the pipeline; its eventual response is
		// dropped (done is buffered). The caller has already gone away.
		return 0, 0, ctx.Err()
	}
}

// Close stops the batcher and fails any still-queued requests with
// ErrStopped. In-flight batches finish first.
func (b *Batcher) Close() {
	close(b.stop)
	b.wg.Wait()
	// Drain whatever was admitted but never dispatched.
	for {
		select {
		case req := <-b.queue:
			req.done <- response{err: ErrStopped}
		default:
			return
		}
	}
}

// dispatch collects requests into batches: a batch opens on its first
// request and closes when it reaches MaxBatchSize or MaxWait elapses.
func (b *Batcher) dispatch() {
	defer b.wg.Done()
	defer close(b.execQ)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *request
		select {
		case first = <-b.queue:
		case <-b.stop:
			return
		}
		batch := make([]*request, 1, b.cfg.MaxBatchSize)
		batch[0] = first
		timer.Reset(b.cfg.MaxWait)
	collect:
		for len(batch) < b.cfg.MaxBatchSize {
			select {
			case req := <-b.queue:
				batch = append(batch, req)
			case <-timer.C:
				break collect
			case <-b.stop:
				// Shutting down: run what we have, then exit.
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		select {
		case b.execQ <- batch:
		case <-b.stop:
			// Executors may already be gone; fail the batch directly.
			for _, req := range batch {
				req.done <- response{err: ErrStopped}
			}
			return
		}
		select {
		case <-b.stop:
			return
		default:
		}
	}
}

// executor runs batches: expired requests are shed, the rest are scored in
// one ExecFunc call and answered individually.
func (b *Batcher) executor() {
	defer b.wg.Done()
	for batch := range b.execQ {
		b.run(batch)
	}
}

// run executes one batch.
func (b *Batcher) run(batch []*request) {
	sctx, span := trace.Start(context.Background(), "serve.batch")
	defer span.End()
	now := time.Now()
	live := batch[:0]
	for _, req := range batch {
		if !req.deadline.IsZero() && now.After(req.deadline) {
			if b.met != nil {
				b.met.ShedDeadline.Add(1)
			}
			span.Add("shed_deadline", 1)
			req.done <- response{err: fmt.Errorf("%w (late by %s)", ErrDeadline, now.Sub(req.deadline))}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	if b.met != nil {
		b.met.BatchSize.Observe(float64(len(live)))
	}
	pts := make([]*synth.Point, len(live))
	for i, req := range live {
		pts[i] = req.pt
	}
	span.Add("items", int64(len(live)))
	// The batch runs under the latest deadline any live request still has;
	// requests without deadlines leave the batch unbounded.
	ctx := sctx
	var latest time.Time
	bounded := true
	for _, req := range live {
		if req.deadline.IsZero() {
			bounded = false
			break
		}
		if req.deadline.After(latest) {
			latest = req.deadline
		}
	}
	if bounded {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, latest)
		defer cancel()
	}
	scores, seq, err := b.exec(ctx, pts)
	if err != nil {
		for _, req := range live {
			req.done <- response{err: err}
		}
		return
	}
	for i, req := range live {
		req.done <- response{score: scores[i], seq: seq}
	}
}
