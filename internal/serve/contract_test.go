package serve

import (
	"reflect"
	"testing"

	"crossmodal/internal/mapreduce"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// TestDerivePointSeedContract pins DerivePoint to the same per-ID seed mix
// synth.BuildDataset stamps on corpus points. A drift here would make a
// served point featurize differently from the training corpus point with
// the same ID — silently, since both sides would still be self-consistent.
func TestDerivePointSeedContract(t *testing.T) {
	fixture(t)
	for _, id := range []int{0, 1, 17, 4095, 1 << 20} {
		p := DerivePoint(fx.world, fxSeed, id, synth.Image, 0)
		want := xrand.Mix(uint64(int64(fxSeed))<<20 ^ uint64(id))
		if p.Seed != want {
			t.Fatalf("id %d: Seed = %#x, want Mix(baseSeed<<20 ^ id) = %#x", id, p.Seed, want)
		}
		if p.ID != id || p.Modality != synth.Image {
			t.Fatalf("id %d: point fields %+v", id, p)
		}
	}
}

// TestDerivePointRestartDeterminism: a freshly constructed world (a
// "restarted server") must derive bit-identical points and features for the
// same (baseSeed, id) pairs.
func TestDerivePointRestartDeterminism(t *testing.T) {
	fixture(t)
	world2, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var pts1, pts2 []*synth.Point
	for id := 200; id < 210; id++ {
		pts1 = append(pts1, DerivePoint(fx.world, fxSeed, id, synth.Image, 0))
		pts2 = append(pts2, DerivePoint(world2, fxSeed, id, synth.Image, 0))
	}
	for i := range pts1 {
		if pts1[i].Seed != pts2[i].Seed {
			t.Fatalf("point %d: seeds differ across restarts", pts1[i].ID)
		}
		if !reflect.DeepEqual(pts1[i].Entity, pts2[i].Entity) {
			t.Fatalf("point %d: entities differ across restarts", pts1[i].ID)
		}
	}
	v1, err := fx.store.Featurize(ctxbg, mapreduce.Config{}, pts1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := fx.store.Featurize(ctxbg, mapreduce.Config{}, pts2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i].String() != v2[i].String() {
			t.Fatalf("point %d: features differ across restarts:\n%s\nvs\n%s",
				pts1[i].ID, v1[i], v2[i])
		}
	}
}

// TestDerivePointVideoFrames: frames pass through, and the video seed stream
// is distinct from the image one for the same ID.
func TestDerivePointVideoFrames(t *testing.T) {
	fixture(t)
	v := DerivePoint(fx.world, fxSeed, 31, synth.Video, 5)
	if v.Frames != 5 || v.Modality != synth.Video {
		t.Fatalf("video point = %+v", v)
	}
	img := DerivePoint(fx.world, fxSeed, 31, synth.Image, 0)
	if v.Seed != img.Seed {
		// Seed is modality-independent by design: it names the underlying
		// observation, and the modality picks the rendering.
		t.Fatalf("seed should be modality-independent: video %#x vs image %#x", v.Seed, img.Seed)
	}
}
