package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/featurestore"
	"crossmodal/internal/fusion"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/model"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

var ctxbg = context.Background()

const fxSeed = 17

// fx is the shared end-to-end fixture: one world, one resource library, one
// featurestore, and two distinct trained models (different init seeds, so
// their scores differ bit-for-bit on essentially every point). Building it
// once keeps the suite fast; everything in it is read-only after init.
var fx struct {
	once   sync.Once
	err    error
	world  *synth.World
	store  *featurestore.Store
	modelA fusion.Predictor // install generation 1
	modelB fusion.Predictor // hot-swap generation 2
}

func fixture(t *testing.T) {
	t.Helper()
	fx.once.Do(func() {
		fx.err = buildFixture()
	})
	if fx.err != nil {
		t.Fatal(fx.err)
	}
}

func buildFixture() error {
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		return err
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		return err
	}
	store, err := featurestore.New(lib, 4096)
	if err != nil {
		return err
	}
	task, err := synth.TaskByName("CT1")
	if err != nil {
		return err
	}
	ds, err := synth.BuildDataset(world, task, synth.DatasetConfig{
		Seed:               7,
		NumText:            50,
		NumUnlabeledImage:  50,
		NumHandLabelPool:   400,
		NumTest:            50,
		CalibrationSamples: 2000,
	})
	if err != nil {
		return err
	}
	vecs, err := store.Featurize(context.Background(), mapreduce.Config{}, ds.HandLabelPool)
	if err != nil {
		return err
	}
	targets := make([]float64, len(ds.HandLabelPool))
	for i, p := range ds.HandLabelPool {
		if p.Label > 0 {
			targets[i] = 1
		}
	}
	corpus := fusion.Corpus{Name: "hand", Vectors: vecs, Targets: targets}
	train := func(seed int64) (fusion.Predictor, error) {
		return fusion.TrainEarly(ctxbg, []fusion.Corpus{corpus}, fusion.Config{
			Schema: lib.Schema().Servable(),
			Model:  model.Config{Hidden: []int{8}, Epochs: 2, Seed: seed, LearningRate: 0.05},
		})
	}
	if fx.modelA, err = train(3); err != nil {
		return err
	}
	if fx.modelB, err = train(4); err != nil {
		return err
	}
	fx.world, fx.store = world, store
	return nil
}

// newTestServer builds a Server over the shared fixture with a canary batch,
// wraps it in an httptest.Server, and registers cleanup.
func newTestServer(t *testing.T, bc BatcherConfig, timeout time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	fixture(t)
	canary := make([]*synth.Point, 8)
	for i := range canary {
		canary[i] = DerivePoint(fx.world, fxSeed, 100+i, synth.Image, 0)
	}
	s, err := New(Config{
		Store:   fx.store,
		World:   fx.world,
		Seed:    fxSeed,
		Batcher: bc,
		Timeout: timeout,
	}, canary)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// wantScore computes the in-process ground truth for one served point.
func wantScore(t *testing.T, m fusion.Predictor, id int) float64 {
	t.Helper()
	pt := DerivePoint(fx.world, fxSeed, id, synth.Image, 0)
	vecs, err := fx.store.Featurize(context.Background(), mapreduce.Config{}, []*synth.Point{pt})
	if err != nil {
		t.Fatal(err)
	}
	return m.Predict(vecs[0])
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func saveArtifact(t *testing.T, m fusion.Predictor, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := fusion.SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServedPredictionsBitIdentical is the acceptance round trip: a saved
// EarlyModel artifact, loaded through POST /admin/reload and served over
// HTTP, must return bit-identical scores to calling Predict in-process on
// the model that was saved.
func TestServedPredictionsBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	path := saveArtifact(t, fx.modelA, "a.xma")

	resp, body := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}

	// Single-point requests (fast path) and one multi-point request
	// (fan-out path) must both match in-process Predict exactly.
	ids := []int{0, 1, 2, 3, 42, 9999}
	for _, id := range ids {
		resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: id}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict id %d: %d %s", id, resp.StatusCode, body)
		}
		var pr predictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if want := wantScore(t, fx.modelA, id); len(pr.Scores) != 1 || pr.Scores[0] != want {
			t.Errorf("id %d: served %v, in-process %v", id, pr.Scores, want)
		}
		if pr.Kind != fusion.KindEarly {
			t.Errorf("kind = %q", pr.Kind)
		}
	}
	batch := predictRequest{}
	for _, id := range ids {
		batch.Points = append(batch.Points, PointRequest{ID: id})
	}
	resp, body = postJSON(t, ts.URL+"/predict", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch predict: %d %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Scores) != len(ids) {
		t.Fatalf("batch returned %d scores for %d points", len(pr.Scores), len(ids))
	}
	for i, id := range ids {
		if want := wantScore(t, fx.modelA, id); pr.Scores[i] != want {
			t.Errorf("batch id %d: served %v, in-process %v", id, pr.Scores[i], want)
		}
	}
}

// TestHotSwapUnderLoadZeroFailures is the acceptance hot-swap test: while
// concurrent clients hammer /predict, an /admin/reload swaps model A for
// model B. Every request must succeed, and every returned score must be
// bit-identical to whichever model generation the response says scored it.
func TestHotSwapUnderLoadZeroFailures(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{QueueDepth: 4096}, 10*time.Second)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	pathB := saveArtifact(t, fx.modelB, "b.xma")

	const nIDs = 16
	wantA := make([]float64, nIDs)
	wantB := make([]float64, nIDs)
	for id := 0; id < nIDs; id++ {
		wantA[id] = wantScore(t, fx.modelA, id)
		wantB[id] = wantScore(t, fx.modelB, id)
		if wantA[id] == wantB[id] {
			t.Fatalf("fixture models agree on id %d; test cannot tell generations apart", id)
		}
	}

	const (
		workers     = 8
		perWorker   = 40
		swapAtTotal = workers * perWorker / 4
	)
	var done atomic.Int64
	var failures atomic.Int64
	var sawOld, sawNew atomic.Int64
	var wg sync.WaitGroup
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := (w*perWorker + i) % nIDs
				raw, _ := json.Marshal(predictRequest{Points: []PointRequest{{ID: id}}})
				resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(raw))
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d req %d: %v", w, i, err)
					continue
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || err != nil {
					failures.Add(1)
					t.Errorf("worker %d req %d: status %d err %v", w, i, resp.StatusCode, err)
					continue
				}
				var want float64
				switch pr.ModelSeq {
				case 1:
					want = wantA[id]
					sawOld.Add(1)
				case 2:
					want = wantB[id]
					sawNew.Add(1)
				default:
					failures.Add(1)
					t.Errorf("worker %d req %d: model seq %d", w, i, pr.ModelSeq)
					continue
				}
				if len(pr.Scores) != 1 || pr.Scores[0] != want {
					failures.Add(1)
					t.Errorf("worker %d req %d id %d: score %v, want %v (gen %d)", w, i, id, pr.Scores, want, pr.ModelSeq)
				}
				done.Add(1)
			}
		}(w)
	}

	// Swap once a quarter of the traffic has been served, so requests
	// straddle the reload in both directions.
	for done.Load() < swapAtTotal {
		time.Sleep(time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": pathB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hot-swap reload: %d %s", resp.StatusCode, body)
	}
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d in-flight requests failed across the hot swap", failures.Load(), workers*perWorker)
	}
	if sawOld.Load() == 0 || sawNew.Load() == 0 {
		t.Fatalf("swap not straddled: %d old-generation, %d new-generation responses", sawOld.Load(), sawNew.Load())
	}
}

// TestNotReadyBeforeModel pins the 503 surface before the first install.
func TestNotReadyBeforeModel(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, time.Second)

	resp, _ := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: 1}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("predict before model: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz before model: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz should be alive pre-model: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("readyz after install: %d", resp2.StatusCode)
	}
}

// TestReloadRejectsBadArtifact: a missing or corrupt artifact returns 422
// and the serving model keeps serving, untouched.
func TestReloadRejectsBadArtifact(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, time.Second)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}

	resp, _ := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": filepath.Join(t.TempDir(), "nope.xma")})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("missing artifact: %d, want 422", resp.StatusCode)
	}

	corrupt := filepath.Join(t.TempDir(), "corrupt.xma")
	good := saveArtifact(t, fx.modelA, "good.xma")
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": corrupt})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("corrupt artifact: %d, want 422", resp.StatusCode)
	}

	// Old model still serving, generation unchanged.
	if cur := s.Registry().Current(); cur == nil || cur.Seq != 1 {
		t.Fatalf("current after failed reloads: %+v", cur)
	}
	resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: 5}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after failed reloads: %d %s", resp.StatusCode, body)
	}
}

// nanModel is a Predictor whose scores are never valid probabilities; the
// canary gate must refuse to install it.
type nanModel struct{}

func (nanModel) Predict(*feature.Vector) float64 { return math.NaN() }
func (nanModel) PredictBatch(vs []*feature.Vector) []float64 {
	out := make([]float64, len(vs))
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}

func TestCanaryRejectsInvalidModel(t *testing.T) {
	s, _ := newTestServer(t, BatcherConfig{}, time.Second)
	if _, err := s.Registry().Install(nanModel{}, ""); err == nil {
		t.Fatal("canary validation accepted a NaN-scoring model")
	}
	if s.Registry().Ready() {
		t.Fatal("rejected model became current")
	}
}

// TestPredictShedsWith429 pins the admission-control surface: with a
// depth-1 queue, a singleton batcher, and the executor wedged, excess
// requests get 429 + Retry-After, and the counter matches.
func TestPredictShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	// Replace the server's batcher with one whose executor blocks until
	// released, so the pipeline wedges deterministically.
	block := make(chan struct{})
	s.bat.Close()
	s.bat = NewBatcher(BatcherConfig{MaxBatchSize: 1, MaxWait: time.Millisecond, QueueDepth: 1}, func(ctx context.Context, pts []*synth.Point, scores []float64) (uint64, error) {
		<-block
		return s.execBatch(ctx, pts, scores)
	}, s.met)
	defer func() {
		select {
		case <-block:
		default:
			close(block)
		}
	}()

	// Fill the pipeline: req 1 reaches the blocked executor, req 2 is held
	// by the dispatcher, req 3 sits in the depth-1 queue.
	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		id := i
		go func() {
			resp, _ := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: id}}})
			results <- resp.StatusCode
		}()
		time.Sleep(30 * time.Millisecond)
	}
	// The pipeline is full; the next request must be shed immediately.
	resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: 3}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.met.ShedQueue.Load(); got == 0 {
		t.Error("shed not counted")
	}
	close(block)
	for i := 0; i < 3; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("wedged request %d finished with %d, want 200", i, code)
		}
	}
}

// TestMetricsEndpointEndToEnd checks the exposition after live traffic.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 5; id++ {
		resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: id}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"serve_requests_total 5",
		"serve_predictions_total 5",
		fmt.Sprintf("serve_model_loaded{kind=%q} 1", fusion.KindEarly),
		"serve_model_seq 1",
		"serve_latency_seconds{quantile=\"0.99\"}",
		"serve_batch_size_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestBadRequestsAre400 pins client-error handling.
func TestBadRequestsAre400(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, time.Second)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"garbage":     "{not json",
		"empty":       `{"points":[]}`,
		"badmodality": `{"points":[{"id":1,"modality":"smell"}]}`,
	} {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, resp.StatusCode)
		}
	}
}
