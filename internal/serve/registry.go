package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/fusion"
	"crossmodal/internal/model"
)

// The registry owns the serving model. The current model lives behind an
// atomic.Pointer: request goroutines snapshot it wait-free, and a reload
// validates the incoming artifact on a canary batch and then swaps the
// pointer — in-flight batches keep scoring with the snapshot they took, so
// a hot-swap never drops or corrupts a request (paper §2.4's "deploy the
// fused model behind serving infra" without downtime).

// quantPredictor is the optional serving surface a predictor exposes when
// it can score through a reduced-precision engine (fusion.EarlyModel).
type quantPredictor interface {
	fusion.Predictor
	ServePrecision() model.Precision
	PredictBatchQInto(vs []*feature.Vector, out []float64)
}

// Loaded is one installed model generation. Immutable once published.
type Loaded struct {
	Model    fusion.Predictor
	Kind     string
	Path     string // artifact path, "" for in-process installs
	Seq      uint64 // monotone generation number, 1-based
	LoadedAt time.Time
	// Precision is the arithmetic the hot path scores with: the artifact's
	// stamped serve precision, or Float64 for predictors without one.
	Precision model.Precision
	// scoreInto is the quantized batch scorer, nil when Precision is
	// Float64 (execBatch then takes the reference PredictBatch path).
	scoreInto func(vs []*feature.Vector, out []float64)
	// Lineage is the artifact's provenance stamp, nil for artifacts
	// written without one (and for in-process installs).
	Lineage *fusion.Lineage
}

// Registry holds the current model and performs validated hot-swaps.
type Registry struct {
	cur    atomic.Pointer[Loaded]
	seq    atomic.Uint64
	mu     sync.Mutex // serializes reloads; readers never take it
	canary []*feature.Vector
}

// NewRegistry builds an empty registry. canary is the validation batch every
// incoming model must score sanely before it is swapped in; nil or empty
// skips validation.
func NewRegistry(canary []*feature.Vector) *Registry {
	return &Registry{canary: canary}
}

// Current returns the serving model, or nil before the first install.
// Callers must keep using the returned snapshot for a whole batch rather
// than re-reading, so a concurrent swap cannot split a batch across models.
func (r *Registry) Current() *Loaded { return r.cur.Load() }

// Ready reports whether a model is installed.
func (r *Registry) Ready() bool { return r.cur.Load() != nil }

// validate scores the canary batch with m and rejects models that return
// non-finite or out-of-range probabilities — the cheap liveness gate that
// catches shape-mismatched or corrupt artifacts before they take traffic.
// A model stamped with a reduced serve precision additionally has its
// quantized path gated against the float64 reference on the same canary:
// every score must agree within the precision's Tolerance (1e-3 for f32;
// 5e-2 for int8, decisions compared where the reference has margin), so a
// bad quantization can never take traffic the exact path would not.
func (r *Registry) validate(m fusion.Predictor) error {
	if len(r.canary) == 0 {
		return nil
	}
	scores := m.PredictBatch(r.canary)
	if len(scores) != len(r.canary) {
		return fmt.Errorf("serve: canary returned %d scores for %d points", len(scores), len(r.canary))
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 || s > 1 {
			return fmt.Errorf("serve: canary point %d scored %v, want a probability", i, s)
		}
	}
	if qp, ok := m.(quantPredictor); ok && qp.ServePrecision() != model.Float64 {
		prec := qp.ServePrecision()
		tol, margin := prec.Tolerance()
		q := make([]float64, len(r.canary))
		qp.PredictBatchQInto(r.canary, q)
		for i, s := range q {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 || s > 1 {
				return fmt.Errorf("serve: quantized canary point %d scored %v, want a probability", i, s)
			}
			if d := math.Abs(s - scores[i]); d > tol {
				return fmt.Errorf("serve: quantized canary point %d diverges by %g from float64 (%v limit %g)", i, d, prec, tol)
			}
			if math.Abs(scores[i]-0.5) >= margin && (s >= 0.5) != (scores[i] >= 0.5) {
				return fmt.Errorf("serve: quantized canary point %d flips the decision (%v vs %v)", i, s, scores[i])
			}
		}
	}
	return nil
}

// Install validates m on the canary batch and atomically makes it the
// serving model. path is recorded for observability only.
func (r *Registry) Install(m fusion.Predictor, path string) (*Loaded, error) {
	return r.install(m, path, nil)
}

func (r *Registry) install(m fusion.Predictor, path string, lg *fusion.Lineage) (*Loaded, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.validate(m); err != nil {
		return nil, err
	}
	kind := fusion.Kind(m)
	if kind == "" {
		kind = fmt.Sprintf("%T", m)
	}
	l := &Loaded{
		Model:    m,
		Kind:     kind,
		Path:     path,
		Seq:      r.seq.Add(1),
		LoadedAt: time.Now(),
		Lineage:  lg,
	}
	if qp, ok := m.(quantPredictor); ok && qp.ServePrecision() != model.Float64 {
		l.Precision = qp.ServePrecision()
		l.scoreInto = qp.PredictBatchQInto
	}
	r.cur.Store(l)
	return l, nil
}

// LoadArtifact reads a model artifact from disk, validates it on the canary
// batch, and hot-swaps it in, carrying any lineage stamp along. On any
// failure the previous model keeps serving untouched.
func (r *Registry) LoadArtifact(path string) (*Loaded, error) {
	m, _, lg, err := fusion.LoadFileLineage(path)
	if err != nil {
		return nil, err
	}
	return r.install(m, path, lg)
}
