// Package serve is the online inference subsystem: it exposes trained
// fusion models over HTTP with request micro-batching, atomic model
// hot-swap, bounded-queue admission control with deadline-aware load
// shedding, and a metrics surface.
//
// The paper's pipeline terminates in a production classifier serving live
// traffic (§2.4 deploys the fused model behind TFX-style serving infra);
// this package is that deployment stage. A request names a data point of
// the new modality; the server featurizes it through the shared
// featurestore (paper §2.3's precomputed-feature services), coalesces
// concurrent requests into batches for the parallel PredictBatch engine,
// and returns P(y = +1).
//
// Endpoints:
//
//	POST /predict       {"points":[{"id":1,"modality":"image"}]} → scores
//	POST /admin/reload  {"path":"model.xma"} → canary-validated hot swap
//	GET  /healthz       process liveness
//	GET  /readyz        model loaded and serving
//	GET  /metrics       counters, queue depth, latency/batch histograms
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"crossmodal/internal/featurestore"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// Config assembles a Server.
type Config struct {
	// Store featurizes request points (and caches hot ones).
	Store *featurestore.Store
	// World is the synthetic traffic source requests are sampled from;
	// it must match the world the loadgen or caller derives IDs against.
	World *synth.World
	// Seed is the base seed request points derive their observation
	// noise from, so a point ID always renders identically (and the
	// featurestore cache key — the ID — is sound).
	Seed int64
	// Batcher tunes micro-batching and admission control.
	Batcher BatcherConfig
	// Workers is the per-batch parallelism handed to featurization and
	// PredictBatch (0 = GOMAXPROCS).
	Workers int
	// PointSource, when set, overrides the default static-world derivation
	// of request points: the lifecycle simulator plugs in time-varying
	// traffic (synth.Traffic.Point) here so the same server stack serves a
	// drifting world. It must be deterministic in its arguments — points
	// are memoized by ID through the point cache and featurestore.
	PointSource func(id int, m synth.Modality, frames int) *synth.Point
	// Timeout is the per-request scoring budget; a request that cannot be
	// scored inside it is shed (default 500ms).
	Timeout time.Duration
}

func (c Config) validate() error {
	if c.Store == nil {
		return fmt.Errorf("serve: nil featurestore")
	}
	if c.World == nil {
		return fmt.Errorf("serve: nil world")
	}
	return nil
}

// ptCacheSize is the direct-mapped request-point cache size (power of two).
const ptCacheSize = 4096

// Server is the online inference service. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	cfg Config
	reg *Registry
	bat *Batcher
	met *Metrics
	mux *http.ServeMux
	// ptCache memoizes derived request points, direct-mapped by a hash of
	// (id, modality, frames). Points are immutable once derived and the
	// derivation is deterministic, so a stale or racing slot only costs a
	// redundant derive, never a wrong point.
	ptCache []atomic.Pointer[synth.Point]
}

// New builds a server with an empty registry: it is alive (healthz) but not
// ready (readyz) until a model is installed or reloaded. canary is the
// validation batch for hot swaps (may be nil).
func New(cfg Config, canary []*synth.Point) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	s := &Server{cfg: cfg, met: NewMetrics(), ptCache: make([]atomic.Pointer[synth.Point], ptCacheSize)}
	if len(canary) > 0 {
		vecs, err := cfg.Store.Featurize(context.Background(), mapreduce.Config{Workers: cfg.Workers}, canary)
		if err != nil {
			return nil, fmt.Errorf("serve: featurize canary: %w", err)
		}
		s.reg = NewRegistry(vecs)
	} else {
		s.reg = NewRegistry(nil)
	}
	s.bat = NewBatcher(cfg.Batcher, s.execBatch, s.met)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Registry exposes the model registry (startup installs, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the metric set.
func (s *Server) Metrics() *Metrics { return s.met }

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the batcher. The handler keeps answering health and metrics
// but sheds predictions.
func (s *Server) Close() { s.bat.Close() }

// DerivePoint renders a (seed, id) pair into the synthetic data point it
// names: the entity and observation noise derive deterministically, with the
// same seed mix synth.BuildDataset uses for corpus points, so the same ID
// always featurizes identically — in this process, in a restarted one, and
// in a test comparing against in-process Predict. cmd/serve uses it to build
// the canary batch before the server exists.
func DerivePoint(w *synth.World, baseSeed int64, id int, m synth.Modality, frames int) *synth.Point {
	seed := xrand.Mix(uint64(baseSeed)<<20 ^ uint64(id))
	rng := xrand.New(int64(seed))
	return &synth.Point{
		ID:       id,
		Entity:   w.SampleEntity(rng, m, id),
		Modality: m,
		Seed:     seed,
		Frames:   frames,
	}
}

// BuildPoint renders a request into the data point it names under the
// server's base seed, memoized through the direct-mapped point cache so a
// hot ID costs a few loads instead of re-rendering entity and noise state.
func (s *Server) BuildPoint(id int, m synth.Modality, frames int) *synth.Point {
	h := xrand.Mix(xrand.HashString(uint64(id)<<17^uint64(frames), string(m)))
	slot := &s.ptCache[h&(ptCacheSize-1)]
	if p := slot.Load(); p != nil && p.ID == id && p.Modality == m && p.Frames == frames {
		return p
	}
	var p *synth.Point
	if s.cfg.PointSource != nil {
		p = s.cfg.PointSource(id, m, frames)
	} else {
		p = DerivePoint(s.cfg.World, s.cfg.Seed, id, m, frames)
	}
	slot.Store(p)
	return p
}

// execBatch is the batcher's ExecFunc: snapshot the model once, featurize
// the whole batch through the store under the batch's deadline, score it
// into the batcher-owned buffer — through the model's quantized serving
// path when the installed artifact was stamped with one, the float64
// reference path otherwise.
func (s *Server) execBatch(ctx context.Context, pts []*synth.Point, scores []float64) (uint64, error) {
	cur := s.reg.Current()
	if cur == nil {
		return 0, errNotReady
	}
	vecs, err := s.cfg.Store.Featurize(ctx, mapreduce.Config{Workers: s.cfg.Workers}, pts)
	if err != nil {
		return 0, err
	}
	if cur.scoreInto != nil {
		cur.scoreInto(vecs, scores)
	} else {
		copy(scores, cur.Model.PredictBatch(vecs))
	}
	for _, sc := range scores[:len(pts)] {
		s.met.Scores.Observe(sc)
	}
	return cur.Seq, nil
}

// errNotReady maps to 503: the server is up but has no model yet.
var errNotReady = errors.New("serve: no model loaded")

// PointRequest names one data point to score.
type PointRequest struct {
	ID       int    `json:"id"`
	Modality string `json:"modality,omitempty"` // default "image"
	Frames   int    `json:"frames,omitempty"`
}

// predictRequest is the /predict body: a batch of points (or exactly one).
type predictRequest struct {
	Points []PointRequest `json:"points"`
}

// predictResponse is the /predict reply.
type predictResponse struct {
	Scores   []float64 `json:"scores"`
	ModelSeq uint64    `json:"model_seq"`
	Kind     string    `json:"kind"`
}

// parseModality maps the wire modality to synth's; "" defaults to image
// (the new modality the paper adapts to).
func parseModality(s string) (synth.Modality, error) {
	switch s {
	case "", "image":
		return synth.Image, nil
	case "text":
		return synth.Text, nil
	case "video":
		return synth.Video, nil
	default:
		return "", fmt.Errorf("unknown modality %q", s)
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.reg.Ready() {
		s.met.NotReady.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.met.ClientErrors.Add(1)
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Points) == 0 {
		s.met.ClientErrors.Add(1)
		http.Error(w, "no points", http.StatusBadRequest)
		return
	}
	pts := make([]*synth.Point, len(req.Points))
	for i, p := range req.Points {
		m, err := parseModality(p.Modality)
		if err != nil {
			s.met.ClientErrors.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pts[i] = s.BuildPoint(p.ID, m, p.Frames)
	}
	deadline := start.Add(s.cfg.Timeout)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	type pending struct {
		score float64
		seq   uint64
		err   error
	}
	results := make([]pending, len(pts))
	if len(pts) == 1 {
		// Fast path: the overwhelmingly common single-point request costs
		// no extra goroutine.
		score, seq, err := s.bat.Submit(ctx, pts[0], deadline)
		results[0] = pending{score: score, seq: seq, err: err}
	} else {
		// Submit every point before waiting on any, so one request's
		// points land in the same dispatch window and batch together.
		done := make(chan struct{}, len(pts))
		for i, pt := range pts {
			go func(i int, pt *synth.Point) {
				score, seq, err := s.bat.Submit(ctx, pt, deadline)
				results[i] = pending{score: score, seq: seq, err: err}
				done <- struct{}{}
			}(i, pt)
		}
		for range pts {
			<-done
		}
	}

	resp := predictResponse{Scores: make([]float64, len(results))}
	for _, res := range results {
		if res.err != nil {
			s.writeSubmitError(w, res.err)
			return
		}
	}
	for i, res := range results {
		resp.Scores[i] = res.score
		if res.seq > resp.ModelSeq {
			resp.ModelSeq = res.seq
		}
	}
	if cur := s.reg.Current(); cur != nil {
		resp.Kind = cur.Kind
	}
	s.met.ObserveRequest(time.Since(start), len(req.Points), time.Now())
	writeJSON(w, http.StatusOK, resp)
}

// writeSubmitError maps batcher errors to HTTP statuses: shed load is 429
// with a Retry-After hint, readiness and open breakers are 503, timeouts
// are 504.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, resource.ErrBreakerOpen):
		// The resources behind featurization are browning out; hammering
		// them helps nobody. Shed and ask the client to come back after
		// the breaker's cooldown has had a chance to probe.
		s.met.ShedBreaker.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		s.met.ShedDeadline.Add(1)
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, errNotReady):
		s.met.NotReady.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		s.met.ClientErrors.Add(1)
	default:
		s.met.Errors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// reloadRequest is the /admin/reload body.
type reloadRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Path == "" {
		http.Error(w, "missing artifact path", http.StatusBadRequest)
		return
	}
	l, err := s.reg.LoadArtifact(req.Path)
	if err != nil {
		// The old model (if any) keeps serving; tell the operator why the
		// new one was refused.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := map[string]any{
		"seq":       l.Seq,
		"kind":      l.Kind,
		"path":      l.Path,
		"precision": l.Precision.String(),
	}
	if l.Lineage != nil {
		resp["trigger"] = l.Lineage.Trigger
		resp["parent"] = l.Lineage.Parent
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// breakersOpen counts resources whose breaker is not closed (0 for an
// unguarded library, where no breakers exist).
func (s *Server) breakersOpen() int {
	n := 0
	for _, g := range s.cfg.Store.Library().GuardStatuses() {
		if g.State != resource.BreakerClosed {
			n++
		}
	}
	return n
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.reg.Ready() {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	// Open breakers degrade but do not unready the server: cached and
	// partially featurized traffic still serves, so stay in rotation and
	// let the gauge tell the operator which resources are browning out.
	cur := s.reg.Current()
	fmt.Fprintf(w, "ready kind=%s seq=%d breakers_open=%d\n", cur.Kind, cur.Seq, s.breakersOpen())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var kind string
	var seq uint64
	if cur := s.reg.Current(); cur != nil {
		kind, seq = cur.Kind, cur.Seq
	}
	s.met.WriteTo(w, s.bat.QueueDepth(), kind, seq)
	s.writeDegradationMetrics(w)
}

// writeDegradationMetrics renders the featurestore degradation counters and
// per-resource breaker health: the serving-side view of organizational
// resources failing under it.
func (s *Server) writeDegradationMetrics(w io.Writer) {
	hits, misses, evicted := s.cfg.Store.Stats()
	fmt.Fprintf(w, "serve_featurestore_hits_total %d\n", hits)
	fmt.Fprintf(w, "serve_featurestore_misses_total %d\n", misses)
	fmt.Fprintf(w, "serve_featurestore_evicted_total %d\n", evicted)
	fmt.Fprintf(w, "serve_featurestore_stale_served_total %d\n", s.cfg.Store.StaleServed())
	fmt.Fprintf(w, "serve_featurestore_degraded_served_total %d\n", s.cfg.Store.DegradedServed())
	fmt.Fprintf(w, "serve_breakers_open %d\n", s.breakersOpen())
	for _, g := range s.cfg.Store.Library().GuardStatuses() {
		fmt.Fprintf(w, "serve_resource_breaker_state{resource=%q,state=%q} %d\n",
			g.Name, g.State.String(), int(g.State))
		fmt.Fprintf(w, "serve_resource_breaker_opens_total{resource=%q} %d\n", g.Name, g.Opens)
		fmt.Fprintf(w, "serve_resource_calls_total{resource=%q} %d\n", g.Name, g.Calls)
		fmt.Fprintf(w, "serve_resource_retries_total{resource=%q} %d\n", g.Name, g.Retries)
		fmt.Fprintf(w, "serve_resource_failures_total{resource=%q} %d\n", g.Name, g.Failures)
		fmt.Fprintf(w, "serve_resource_breaker_rejects_total{resource=%q} %d\n", g.Name, g.BreakerRejects)
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
