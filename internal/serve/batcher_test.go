package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossmodal/internal/synth"
)

// countingExec records the batch sizes it was handed and scores every point
// with its ID.
type countingExec struct {
	mu      sync.Mutex
	batches []int
	block   chan struct{} // when non-nil, exec waits on it
}

func (e *countingExec) exec(_ context.Context, pts []*synth.Point, scores []float64) (uint64, error) {
	if e.block != nil {
		<-e.block
	}
	e.mu.Lock()
	e.batches = append(e.batches, len(pts))
	e.mu.Unlock()
	for i, p := range pts {
		scores[i] = float64(p.ID)
	}
	return 1, nil
}

func (e *countingExec) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.batches...)
}

func pt(id int) *synth.Point { return &synth.Point{ID: id} }

func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	exec := &countingExec{}
	b := NewBatcher(BatcherConfig{MaxBatchSize: 64, MaxWait: 20 * time.Millisecond}, exec.exec, nil)
	defer b.Close()

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scores[i], _, errs[i] = b.Submit(context.Background(), pt(i), time.Time{})
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if scores[i] != float64(i) {
			t.Fatalf("request %d scored %v", i, scores[i])
		}
	}
	sizes := exec.batchSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != n {
		t.Fatalf("executed %d points across %v, want %d", total, sizes, n)
	}
	// 32 concurrent requests inside one 20ms window must not run as 32
	// singleton batches; coalescing is the whole point.
	if len(sizes) == n {
		t.Errorf("no coalescing happened: batches %v", sizes)
	}
}

func TestBatcherMaxBatchSize(t *testing.T) {
	exec := &countingExec{}
	b := NewBatcher(BatcherConfig{MaxBatchSize: 4, MaxWait: 50 * time.Millisecond, QueueDepth: 64}, exec.exec, nil)
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := b.Submit(context.Background(), pt(i), time.Time{}); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for _, s := range exec.batchSizes() {
		if s > 4 {
			t.Errorf("batch of %d exceeds MaxBatchSize 4", s)
		}
	}
}

func TestBatcherMaxWaitFlushesPartialBatch(t *testing.T) {
	exec := &countingExec{}
	b := NewBatcher(BatcherConfig{MaxBatchSize: 1024, MaxWait: 5 * time.Millisecond}, exec.exec, nil)
	defer b.Close()
	start := time.Now()
	if _, _, err := b.Submit(context.Background(), pt(1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("single request waited %v; MaxWait flush broken", elapsed)
	}
	if sizes := exec.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batches = %v, want [1]", sizes)
	}
}

func TestBatcherShedsWhenQueueFull(t *testing.T) {
	block := make(chan struct{})
	exec := &countingExec{block: block}
	var met = NewMetrics()
	b := NewBatcher(BatcherConfig{MaxBatchSize: 1, MaxWait: time.Millisecond, QueueDepth: 2}, exec.exec, met)
	defer func() { close(block); b.Close() }()

	// Saturate: the executor blocks, the dispatcher holds batches, the
	// queue fills. Submit from goroutines until ErrQueueFull shows up.
	var full atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_, _, err := b.Submit(ctx, pt(i), time.Time{})
			if errors.Is(err, ErrQueueFull) {
				full.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if full.Load() == 0 {
		t.Error("no request was shed with a depth-2 queue and a blocked executor")
	}
	if met.ShedQueue.Load() != uint64(full.Load()) {
		t.Errorf("shed counter %d vs %d observed errors", met.ShedQueue.Load(), full.Load())
	}
}

func TestBatcherShedsExpiredDeadlines(t *testing.T) {
	block := make(chan struct{})
	exec := &countingExec{block: block}
	met := NewMetrics()
	b := NewBatcher(BatcherConfig{MaxBatchSize: 8, MaxWait: time.Millisecond, QueueDepth: 64, Executors: 1}, exec.exec, met)
	defer b.Close()

	// First batch occupies the executor long enough for the second
	// request's deadline to lapse in the queue.
	var wg sync.WaitGroup
	wg.Add(2)
	var err1, err2 error
	go func() {
		defer wg.Done()
		_, _, err1 = b.Submit(context.Background(), pt(1), time.Time{})
	}()
	time.Sleep(20 * time.Millisecond) // let request 1 reach the blocked executor
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _, err2 = b.Submit(ctx, pt(2), time.Now().Add(10*time.Millisecond))
	}()
	time.Sleep(50 * time.Millisecond) // request 2's deadline expires while queued
	close(block)
	wg.Wait()
	if err1 != nil {
		t.Errorf("request 1: %v", err1)
	}
	if !errors.Is(err2, ErrDeadline) {
		t.Errorf("request 2 err = %v, want ErrDeadline", err2)
	}
	if met.ShedDeadline.Load() == 0 {
		t.Error("deadline shed not counted")
	}
}

func TestBatcherCloseFailsPending(t *testing.T) {
	exec := &countingExec{}
	b := NewBatcher(BatcherConfig{MaxWait: time.Millisecond}, exec.exec, nil)
	if _, _, err := b.Submit(context.Background(), pt(1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, _, err := b.Submit(context.Background(), pt(2), time.Time{}); !errors.Is(err, ErrStopped) {
		t.Errorf("post-close submit err = %v, want ErrStopped", err)
	}
}
