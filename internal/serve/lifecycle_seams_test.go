package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crossmodal/internal/fusion"
	"crossmodal/internal/synth"
)

// The lifecycle controller plugs time-varying traffic into the server via
// Config.PointSource; BuildPoint must route through it and still memoize.
func TestPointSourceOverride(t *testing.T) {
	fixture(t)
	calls := 0
	s, err := New(Config{
		Store: fx.store,
		World: fx.world,
		Seed:  fxSeed,
		PointSource: func(id int, m synth.Modality, frames int) *synth.Point {
			calls++
			// Derive under a different base seed than the server's, so the
			// override is observable in the point's own seed.
			return DerivePoint(fx.world, fxSeed+1, id, m, frames)
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p1 := s.BuildPoint(5, synth.Image, 0)
	p2 := s.BuildPoint(5, synth.Image, 0)
	if p1 != p2 {
		t.Error("BuildPoint did not memoize the sourced point")
	}
	if calls != 1 {
		t.Errorf("PointSource called %d times for one hot ID, want 1", calls)
	}
	want := DerivePoint(fx.world, fxSeed+1, 5, synth.Image, 0)
	if p1.Seed != want.Seed {
		t.Errorf("BuildPoint ignored PointSource: seed %d, want %d", p1.Seed, want.Seed)
	}
	def := DerivePoint(fx.world, fxSeed, 5, synth.Image, 0)
	if p1.Seed == def.Seed {
		t.Error("sourced point matches the default derivation; override had no effect")
	}
}

// Served scores land in the serve_scores histogram so drift detectors can
// diff the distribution between windows from /metrics alone.
func TestScoreHistogramObserved(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	if _, err := s.Registry().Install(fx.modelA, ""); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().Scores.Count()
	ids := []int{0, 1, 2, 3}
	for _, id := range ids {
		resp, body := postJSON(t, ts.URL+"/predict", predictRequest{Points: []PointRequest{{ID: id}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict id %d: %d %s", id, resp.StatusCode, body)
		}
	}
	if got := s.Metrics().Scores.Count() - before; got != uint64(len(ids)) {
		t.Errorf("score histogram observed %d scores for %d predictions", got, len(ids))
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, "serve_scores_count") || !strings.Contains(text, "serve_scores_bucket{le=\"0.5\"}") {
		t.Error("/metrics does not expose the serve_scores histogram")
	}
}

// A lineage-stamped artifact survives the reload path: the registry carries
// the stamp and /admin/reload reports the trigger.
func TestReloadCarriesLineage(t *testing.T) {
	s, ts := newTestServer(t, BatcherConfig{}, 5*time.Second)
	path := filepath.Join(t.TempDir(), "model.xma")
	lg := &fusion.Lineage{Task: "CT1", Trigger: "drift:reports", Window: 3, Parent: "prev.xma"}
	if err := fusion.SaveFileLineage(path, fx.modelA, lg); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	var rr map[string]any
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr["trigger"] != "drift:reports" || rr["parent"] != "prev.xma" {
		t.Errorf("reload response missing lineage: %v", rr)
	}
	cur := s.Registry().Current()
	if cur.Lineage == nil || cur.Lineage.Window != 3 || cur.Lineage.Task != "CT1" {
		t.Errorf("registry lineage = %+v", cur.Lineage)
	}

	// A v1 artifact (no lineage) still loads, with a nil stamp.
	plain := saveArtifact(t, fx.modelB, "plain.xma")
	resp, body = postJSON(t, ts.URL+"/admin/reload", map[string]string{"path": plain})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload v1: %d %s", resp.StatusCode, body)
	}
	if cur := s.Registry().Current(); cur.Lineage != nil {
		t.Errorf("v1 artifact carried lineage %+v", cur.Lineage)
	}
}
