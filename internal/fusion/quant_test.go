package fusion

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"crossmodal/internal/model"
)

// quantEarly trains a small early-fusion model for the quantized-serving
// tests.
func quantEarly(t *testing.T) *EarlyModel {
	t.Helper()
	text, _ := corpusFor("text", 900, false, 0.1, 41)
	img, _ := corpusFor("image", 500, true, 0.15, 42)
	m, err := TrainEarly(ctxbg, []Corpus{text, img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEarlyQuantParity is the serving-path property test at the fusion
// layer: float32 scores track the float64 reference within 1e-3 with
// identical decisions, on real transformed vectors rather than raw rows.
func TestEarlyQuantParity(t *testing.T) {
	m := quantEarly(t)
	test, _ := corpusFor("parity-test", 400, true, 0.15, 43)
	ref := m.PredictBatch(test.Vectors)
	if err := m.SetServePrecision(model.Float32); err != nil {
		t.Fatal(err)
	}
	got := m.PredictBatchQ(test.Vectors)
	for i := range ref {
		if d := math.Abs(got[i] - ref[i]); d >= 1e-3 {
			t.Fatalf("vector %d: |f32-f64| = %g, want < 1e-3", i, d)
		}
		if (got[i] >= 0.5) != (ref[i] >= 0.5) {
			t.Fatalf("vector %d: f32 decision differs (%v vs %v)", i, got[i], ref[i])
		}
	}
}

// TestEarlyQuantFloat64Passthrough pins the default: with no precision set,
// PredictBatchQ is exactly the reference path.
func TestEarlyQuantFloat64Passthrough(t *testing.T) {
	m := quantEarly(t)
	if m.ServePrecision() != model.Float64 {
		t.Fatalf("fresh model serve precision = %v, want f64", m.ServePrecision())
	}
	test, _ := corpusFor("pass-test", 200, true, 0.15, 44)
	ref := m.PredictBatch(test.Vectors)
	got := m.PredictBatchQ(test.Vectors)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("vector %d: %v != %v", i, got[i], ref[i])
		}
	}
}

func TestSetServePrecisionValidation(t *testing.T) {
	m := quantEarly(t)
	if err := m.SetServePrecision(model.Precision(9)); err == nil {
		t.Error("invalid precision accepted")
	}
	if err := m.SetServePrecision(model.Int8); err != nil {
		t.Fatal(err)
	}
	if m.ServePrecision() != model.Int8 {
		t.Fatalf("serve precision = %v, want int8", m.ServePrecision())
	}
}

// TestEarlyQuantIntoPanics pins the out-length contract of the Into path.
func TestEarlyQuantIntoPanics(t *testing.T) {
	m := quantEarly(t)
	test, _ := corpusFor("panic-test", 8, true, 0.15, 45)
	defer func() {
		if recover() == nil {
			t.Error("short out slice did not panic")
		}
	}()
	m.PredictBatchQInto(test.Vectors, make([]float64, len(test.Vectors)-1))
}

// TestArtifactPreservesPrecision round-trips the serve-precision stamp
// through the artifact format and checks the quantized scores survive.
func TestArtifactPreservesPrecision(t *testing.T) {
	m := quantEarly(t)
	if err := m.SetServePrecision(model.Float32); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEarly {
		t.Fatalf("kind %q", kind)
	}
	back := got.(*EarlyModel)
	if back.ServePrecision() != model.Float32 {
		t.Fatalf("decoded precision = %v, want f32", back.ServePrecision())
	}
	test, _ := corpusFor("prec-test", 200, true, 0.15, 46)
	want := m.PredictBatchQ(test.Vectors)
	have := back.PredictBatchQ(test.Vectors)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("vector %d: decoded quantized score %v, original %v", i, have[i], want[i])
		}
	}
}

// TestArtifactRejectsUnknownPrecision corrupts the wire precision and
// asserts decode refuses it instead of serving at a precision it cannot
// dispatch.
func TestArtifactRejectsUnknownPrecision(t *testing.T) {
	m := quantEarly(t)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(earlyWire{VZ: m.vz, Net: m.net, Workers: m.workers, Prec: model.Precision(7)})
	if err != nil {
		t.Fatal(err)
	}
	var back EarlyModel
	if err := back.GobDecode(buf.Bytes()); err == nil {
		t.Error("unknown wire precision decoded without error")
	}
}

// TestEarlyQuantArenaReuse exercises the pooled transform arena across
// differently sized batches (grow, shrink, regrow) for score stability.
func TestEarlyQuantArenaReuse(t *testing.T) {
	m := quantEarly(t)
	if err := m.SetServePrecision(model.Float32); err != nil {
		t.Fatal(err)
	}
	test, _ := corpusFor("arena-test", 300, true, 0.15, 47)
	ref := m.PredictBatchQ(test.Vectors)
	for _, n := range []int{300, 17, 300, 1, 128} {
		out := make([]float64, n)
		m.PredictBatchQInto(test.Vectors[:n], out)
		for i := 0; i < n; i++ {
			if out[i] != ref[i] {
				t.Fatalf("batch %d vector %d: %v != %v", n, i, out[i], ref[i])
			}
		}
	}
}
