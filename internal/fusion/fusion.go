// Package fusion implements the three cross-modal model-training
// architectures the paper evaluates (§5, Figure 4): early fusion (merge all
// modalities' features into one dataset), intermediate fusion (concatenate
// independently learned per-modality embeddings into a final jointly trained
// model), and DeViSE (project the new modality into an embedding learned on
// existing modalities and reuse the frozen old-modality prediction head).
package fusion

import (
	"fmt"

	"crossmodal/internal/feature"
	"crossmodal/internal/model"
)

// Corpus is one training data source: vectors of a single data modality with
// probabilistic targets (hard labels are 0/1) and optional per-example
// weights.
type Corpus struct {
	Name    string
	Vectors []*feature.Vector
	Targets []float64
	Weights []float64
}

func (c Corpus) validate() error {
	if len(c.Vectors) == 0 {
		return fmt.Errorf("fusion: corpus %q is empty", c.Name)
	}
	if len(c.Targets) != len(c.Vectors) {
		return fmt.Errorf("fusion: corpus %q has %d vectors vs %d targets", c.Name, len(c.Vectors), len(c.Targets))
	}
	if c.Weights != nil && len(c.Weights) != len(c.Vectors) {
		return fmt.Errorf("fusion: corpus %q has %d vectors vs %d weights", c.Name, len(c.Vectors), len(c.Weights))
	}
	return nil
}

// Config controls fusion training.
type Config struct {
	// Schema is the end-model feature space — typically the servable
	// subset of the common feature space (nonservable features may feed
	// LFs but never the discriminative model, paper §4.1).
	Schema *feature.Schema
	// Model configures the underlying networks.
	Model model.Config
	// MaxVocab caps one-hot vocabularies (0 = unlimited).
	MaxVocab int
}

func (c Config) validate() error {
	if c.Schema == nil || c.Schema.Len() == 0 {
		return fmt.Errorf("fusion: empty schema")
	}
	return nil
}

// Predictor scores feature vectors with P(y = +1).
type Predictor interface {
	Predict(v *feature.Vector) float64
	PredictBatch(vs []*feature.Vector) []float64
}

// reproject maps corpus vectors onto the end-model schema.
func reproject(schema *feature.Schema, vecs []*feature.Vector) []*feature.Vector {
	out := make([]*feature.Vector, len(vecs))
	for i, v := range vecs {
		out[i] = v.Reproject(schema)
	}
	return out
}

// pooled merges all corpora (already reprojected) into single slices.
func pooled(schema *feature.Schema, corpora []Corpus) (vecs []*feature.Vector, targets, weights []float64) {
	hasWeights := false
	for _, c := range corpora {
		if c.Weights != nil {
			hasWeights = true
		}
	}
	for _, c := range corpora {
		vecs = append(vecs, reproject(schema, c.Vectors)...)
		targets = append(targets, c.Targets...)
		if hasWeights {
			if c.Weights != nil {
				weights = append(weights, c.Weights...)
			} else {
				for range c.Vectors {
					weights = append(weights, 1)
				}
			}
		}
	}
	return vecs, targets, weights
}

// EarlyModel is the early-fusion predictor: one vectorizer and one network
// over the merged multi-modality dataset. Modality-specific features are
// simply missing (and flagged so) for the other modalities.
type EarlyModel struct {
	vz  *feature.Vectorizer
	net *model.MLP
}

// TrainEarly fits the early-fusion model on all corpora.
func TrainEarly(corpora []Corpus, cfg Config) (*EarlyModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(corpora) == 0 {
		return nil, fmt.Errorf("fusion: no corpora")
	}
	for _, c := range corpora {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	vecs, targets, weights := pooled(cfg.Schema, corpora)
	vz := feature.FitVectorizer(cfg.Schema, vecs, feature.WithMaxVocabulary(cfg.MaxVocab))
	net, err := model.Train(vz.TransformAll(vecs), targets, weights, cfg.Model)
	if err != nil {
		return nil, err
	}
	return &EarlyModel{vz: vz, net: net}, nil
}

// Predict implements Predictor.
func (m *EarlyModel) Predict(v *feature.Vector) float64 {
	return m.net.PredictProba(m.vz.Transform(v))
}

// PredictBatch implements Predictor.
func (m *EarlyModel) PredictBatch(vs []*feature.Vector) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = m.Predict(v)
	}
	return out
}

// Hidden returns the activation feeding the model's prediction layer; the
// DeViSE architecture anchors its projection on this.
func (m *EarlyModel) Hidden(v *feature.Vector) []float64 {
	return m.net.HiddenActivation(m.vz.Transform(v))
}

// PredictFromHidden applies only the frozen prediction head.
func (m *EarlyModel) PredictFromHidden(h []float64) float64 {
	return m.net.PredictFromHidden(h)
}

// IntermediateModel is the intermediate-fusion predictor: one network per
// modality trained independently, their pre-prediction activations
// concatenated into a final jointly trained network (paper §5: a second
// pass over all data where shared features enter every per-modality model).
type IntermediateModel struct {
	vz    *feature.Vectorizer
	parts []*model.MLP
	final *model.MLP
}

// TrainIntermediate fits the two-stage intermediate-fusion model.
func TrainIntermediate(corpora []Corpus, cfg Config) (*IntermediateModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(corpora) == 0 {
		return nil, fmt.Errorf("fusion: no corpora")
	}
	for _, c := range corpora {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	allVecs, allTargets, allWeights := pooled(cfg.Schema, corpora)
	vz := feature.FitVectorizer(cfg.Schema, allVecs, feature.WithMaxVocabulary(cfg.MaxVocab))

	// Stage 1: independent per-modality models.
	m := &IntermediateModel{vz: vz}
	seed := cfg.Model.Seed
	for ci, c := range corpora {
		rows := vz.TransformAll(reproject(cfg.Schema, c.Vectors))
		mcfg := cfg.Model
		mcfg.Seed = seed + int64(ci)*101
		net, err := model.Train(rows, c.Targets, c.Weights, mcfg)
		if err != nil {
			return nil, fmt.Errorf("fusion: modality %q: %w", c.Name, err)
		}
		m.parts = append(m.parts, net)
	}

	// Stage 2: final model over concatenated embeddings of every point.
	concat := make([][]float64, len(allVecs))
	for i, v := range allVecs {
		concat[i] = m.embed(v)
	}
	mcfg := cfg.Model
	mcfg.Seed = seed + 7919
	final, err := model.Train(concat, allTargets, allWeights, mcfg)
	if err != nil {
		return nil, err
	}
	m.final = final
	return m, nil
}

// embed concatenates every per-modality model's hidden activation for v.
func (m *IntermediateModel) embed(v *feature.Vector) []float64 {
	row := m.vz.Transform(v)
	var out []float64
	for _, part := range m.parts {
		out = append(out, part.HiddenActivation(row)...)
	}
	return out
}

// Predict implements Predictor.
func (m *IntermediateModel) Predict(v *feature.Vector) float64 {
	return m.final.PredictProba(m.embed(v.Reproject(m.vz.Schema())))
}

// PredictBatch implements Predictor.
func (m *IntermediateModel) PredictBatch(vs []*feature.Vector) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = m.Predict(v)
	}
	return out
}

// DeViSEModel adapts the DeViSE architecture to the cross-modal setting
// (paper §5): model A is trained on existing modalities and frozen; model B
// is pre-trained on the weakly supervised new modality; a linear projection
// P maps B's embedding onto A's; at inference a new-modality point flows
// through B, then P, then A's frozen prediction layer.
type DeViSEModel struct {
	a    *EarlyModel
	b    *EarlyModel
	proj *model.Projection
}

// TrainDeViSE fits the three-stage DeViSE pipeline. oldCorpora are the
// existing (labeled) modalities; newCorpus is the weakly supervised new
// modality.
func TrainDeViSE(oldCorpora []Corpus, newCorpus Corpus, cfg Config) (*DeViSEModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	a, err := TrainEarly(oldCorpora, cfg)
	if err != nil {
		return nil, fmt.Errorf("fusion: devise model A: %w", err)
	}
	bcfg := cfg
	bcfg.Model.Seed = cfg.Model.Seed + 31
	b, err := TrainEarly([]Corpus{newCorpus}, bcfg)
	if err != nil {
		return nil, fmt.Errorf("fusion: devise model B: %w", err)
	}
	// Train P to match B's embedding (Y) to frozen A's embedding (X) over
	// the new-modality corpus, whose shared features exist in both.
	src := make([][]float64, len(newCorpus.Vectors))
	dst := make([][]float64, len(newCorpus.Vectors))
	for i, v := range newCorpus.Vectors {
		pv := v.Reproject(cfg.Schema)
		src[i] = b.Hidden(pv)
		dst[i] = a.Hidden(pv)
	}
	proj, err := model.FitProjection(src, dst, 25, 0.02, cfg.Model.Seed+63)
	if err != nil {
		return nil, fmt.Errorf("fusion: devise projection: %w", err)
	}
	return &DeViSEModel{a: a, b: b, proj: proj}, nil
}

// Predict implements Predictor: B embeds, P projects, frozen A scores.
func (m *DeViSEModel) Predict(v *feature.Vector) float64 {
	return m.a.PredictFromHidden(m.proj.Apply(m.b.Hidden(v)))
}

// PredictBatch implements Predictor.
func (m *DeViSEModel) PredictBatch(vs []*feature.Vector) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = m.Predict(v)
	}
	return out
}
