// Package fusion implements the three cross-modal model-training
// architectures the paper evaluates (§5, Figure 4): early fusion (merge all
// modalities' features into one dataset), intermediate fusion (concatenate
// independently learned per-modality embeddings into a final jointly trained
// model), and DeViSE (project the new modality into an embedding learned on
// existing modalities and reuse the frozen old-modality prediction head).
package fusion

import (
	"context"
	"fmt"
	"sync"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/model"
	"crossmodal/internal/trace"
)

// Corpus is one training data source: vectors of a single data modality with
// probabilistic targets (hard labels are 0/1) and optional per-example
// weights.
type Corpus struct {
	Name    string
	Vectors []*feature.Vector
	Targets []float64
	Weights []float64
}

func (c Corpus) validate() error {
	if len(c.Vectors) == 0 {
		return fmt.Errorf("fusion: corpus %q is empty", c.Name)
	}
	if len(c.Targets) != len(c.Vectors) {
		return fmt.Errorf("fusion: corpus %q has %d vectors vs %d targets", c.Name, len(c.Vectors), len(c.Targets))
	}
	if c.Weights != nil && len(c.Weights) != len(c.Vectors) {
		return fmt.Errorf("fusion: corpus %q has %d vectors vs %d weights", c.Name, len(c.Vectors), len(c.Weights))
	}
	return nil
}

// Config controls fusion training.
type Config struct {
	// Schema is the end-model feature space — typically the servable
	// subset of the common feature space (nonservable features may feed
	// LFs but never the discriminative model, paper §4.1).
	Schema *feature.Schema
	// Model configures the underlying networks.
	Model model.Config
	// MaxVocab caps one-hot vocabularies (0 = unlimited).
	MaxVocab int
}

func (c Config) validate() error {
	if c.Schema == nil || c.Schema.Len() == 0 {
		return fmt.Errorf("fusion: empty schema")
	}
	return nil
}

// Predictor scores feature vectors with P(y = +1).
type Predictor interface {
	Predict(v *feature.Vector) float64
	PredictBatch(vs []*feature.Vector) []float64
}

// mapWorkers returns the mapreduce config implied by the model config's
// Workers knob (0 = GOMAXPROCS).
func mapWorkers(cfg Config) mapreduce.Config {
	return mapreduce.Config{Workers: cfg.Model.Workers}
}

// predictAll scores vectors in parallel with fn, which must be safe for
// concurrent use. Each slot is written independently, so the result is
// identical for any worker count.
func predictAll(cfg mapreduce.Config, vs []*feature.Vector, fn func(*feature.Vector) float64) []float64 {
	out, _ := mapreduce.Map(nil, cfg, vs, func(v *feature.Vector) (float64, error) {
		return fn(v), nil
	})
	return out
}

// reproject maps corpus vectors onto the end-model schema.
func reproject(schema *feature.Schema, vecs []*feature.Vector) []*feature.Vector {
	out := make([]*feature.Vector, len(vecs))
	for i, v := range vecs {
		out[i] = v.Reproject(schema)
	}
	return out
}

// pooled merges all corpora (already reprojected) into single slices.
func pooled(schema *feature.Schema, corpora []Corpus) (vecs []*feature.Vector, targets, weights []float64) {
	hasWeights := false
	for _, c := range corpora {
		if c.Weights != nil {
			hasWeights = true
		}
	}
	for _, c := range corpora {
		vecs = append(vecs, reproject(schema, c.Vectors)...)
		targets = append(targets, c.Targets...)
		if hasWeights {
			if c.Weights != nil {
				weights = append(weights, c.Weights...)
			} else {
				for range c.Vectors {
					weights = append(weights, 1)
				}
			}
		}
	}
	return vecs, targets, weights
}

// EarlyModel is the early-fusion predictor: one vectorizer and one network
// over the merged multi-modality dataset. Modality-specific features are
// simply missing (and flagged so) for the other modalities.
type EarlyModel struct {
	vz      *feature.Vectorizer
	net     *model.MLP
	workers int
	prec    model.Precision // serving precision (artifact-stamped; default f64)
	arena   sync.Pool       // *earlyArena: reusable batch transform buffers
}

// earlyArena is one reusable batch transform buffer: rows are views into
// one flat backing array, grown monotonically to the largest batch seen.
type earlyArena struct {
	rows [][]float64
	flat []float64
}

// TrainEarly fits the early-fusion model on all corpora.
func TrainEarly(ctx context.Context, corpora []Corpus, cfg Config) (*EarlyModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(corpora) == 0 {
		return nil, fmt.Errorf("fusion: no corpora")
	}
	for _, c := range corpora {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	ctx, span := trace.Start(ctx, "fusion.early")
	defer span.End()
	vecs, targets, weights := pooled(cfg.Schema, corpora)
	span.SetInt("rows", int64(len(vecs)))
	vctx, vspan := trace.Start(ctx, "fusion.vectorize")
	vz := feature.FitVectorizer(cfg.Schema, vecs, feature.WithMaxVocabulary(cfg.MaxVocab))
	rows := vz.TransformAllWorkers(vecs, cfg.Model.Workers)
	trace.SetInt(vctx, "dims", int64(vz.Width()))
	vspan.End()
	net, err := model.Train(ctx, rows, targets, weights, cfg.Model)
	if err != nil {
		return nil, err
	}
	return &EarlyModel{vz: vz, net: net, workers: cfg.Model.Workers}, nil
}

// Predict implements Predictor.
func (m *EarlyModel) Predict(v *feature.Vector) float64 {
	return m.net.PredictProba(m.vz.Transform(v))
}

// PredictBatch implements Predictor: the batch transform and the network
// forward passes both shard across the model's workers.
func (m *EarlyModel) PredictBatch(vs []*feature.Vector) []float64 {
	return m.net.PredictBatch(m.vz.TransformAllWorkers(vs, m.workers))
}

// SetServePrecision selects the reduced precision PredictBatchQ serves at
// (persisted into artifacts, see artifact.go). Float64 disables the
// quantized path. Training and the golden pipeline never consult it — they
// stay on the exact float64 engine regardless.
func (m *EarlyModel) SetServePrecision(p model.Precision) error {
	if !p.Valid() {
		return fmt.Errorf("fusion: invalid serve precision %d", int(p))
	}
	m.prec = p
	return nil
}

// ServePrecision reports the precision PredictBatchQ serves at.
func (m *EarlyModel) ServePrecision() model.Precision { return m.prec }

// PredictBatchQ scores through the configured serve precision's quantized
// engine; at Float64 it is PredictBatch.
func (m *EarlyModel) PredictBatchQ(vs []*feature.Vector) []float64 {
	out := make([]float64, len(vs))
	m.PredictBatchQInto(vs, out)
	return out
}

// PredictBatchQInto is the serving hot path: vectors are transformed into a
// pooled arena (rows are views of one flat array) and scored through the
// quantized engine into out, so a steady-state batch allocates nothing. At
// Float64 precision it falls back to the allocating exact path — that
// configuration serves for compatibility, not speed.
func (m *EarlyModel) PredictBatchQInto(vs []*feature.Vector, out []float64) {
	if len(out) != len(vs) {
		panic(fmt.Sprintf("fusion: PredictBatchQInto out length %d, want %d", len(out), len(vs)))
	}
	if m.prec == model.Float64 {
		copy(out, m.PredictBatch(vs))
		return
	}
	a, _ := m.arena.Get().(*earlyArena)
	if a == nil {
		a = &earlyArena{}
	}
	width := m.vz.Width()
	if need := len(vs) * width; cap(a.flat) < need {
		a.flat = make([]float64, need)
	}
	if cap(a.rows) < len(vs) {
		a.rows = make([][]float64, len(vs))
	}
	a.rows = a.rows[:len(vs)]
	for i, v := range vs {
		row := a.flat[i*width : (i+1)*width]
		m.vz.TransformInto(v, row)
		a.rows[i] = row
	}
	m.net.PredictBatchQInto(a.rows, m.prec, out)
	m.arena.Put(a)
}

// Hidden returns the activation feeding the model's prediction layer; the
// DeViSE architecture anchors its projection on this.
func (m *EarlyModel) Hidden(v *feature.Vector) []float64 {
	return m.net.HiddenActivation(m.vz.Transform(v))
}

// PredictFromHidden applies only the frozen prediction head.
func (m *EarlyModel) PredictFromHidden(h []float64) float64 {
	return m.net.PredictFromHidden(h)
}

// IntermediateModel is the intermediate-fusion predictor: one network per
// modality trained independently, their pre-prediction activations
// concatenated into a final jointly trained network (paper §5: a second
// pass over all data where shared features enter every per-modality model).
type IntermediateModel struct {
	vz      *feature.Vectorizer
	parts   []*model.MLP
	final   *model.MLP
	workers int
}

// TrainIntermediate fits the two-stage intermediate-fusion model.
func TrainIntermediate(ctx context.Context, corpora []Corpus, cfg Config) (*IntermediateModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(corpora) == 0 {
		return nil, fmt.Errorf("fusion: no corpora")
	}
	for _, c := range corpora {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	ctx, span := trace.Start(ctx, "fusion.intermediate")
	defer span.End()
	span.SetInt("modalities", int64(len(corpora)))
	allVecs, allTargets, allWeights := pooled(cfg.Schema, corpora)
	vz := feature.FitVectorizer(cfg.Schema, allVecs, feature.WithMaxVocabulary(cfg.MaxVocab))

	// Stage 1: independent per-modality models.
	m := &IntermediateModel{vz: vz, workers: cfg.Model.Workers}
	seed := cfg.Model.Seed
	for ci, c := range corpora {
		rows := vz.TransformAllWorkers(reproject(cfg.Schema, c.Vectors), cfg.Model.Workers)
		mcfg := cfg.Model
		mcfg.Seed = seed + int64(ci)*101
		net, err := model.Train(ctx, rows, c.Targets, c.Weights, mcfg)
		if err != nil {
			return nil, fmt.Errorf("fusion: modality %q: %w", c.Name, err)
		}
		m.parts = append(m.parts, net)
	}

	// Stage 2: final model over concatenated embeddings of every point.
	concat, err := mapreduce.Map(nil, mapWorkers(cfg), allVecs, func(v *feature.Vector) ([]float64, error) {
		return m.embed(v), nil
	})
	if err != nil {
		return nil, err
	}
	mcfg := cfg.Model
	mcfg.Seed = seed + 7919
	final, err := model.Train(ctx, concat, allTargets, allWeights, mcfg)
	if err != nil {
		return nil, err
	}
	m.final = final
	return m, nil
}

// embed concatenates every per-modality model's hidden activation for v.
func (m *IntermediateModel) embed(v *feature.Vector) []float64 {
	row := m.vz.Transform(v)
	var out []float64
	for _, part := range m.parts {
		out = append(out, part.HiddenActivation(row)...)
	}
	return out
}

// Predict implements Predictor.
func (m *IntermediateModel) Predict(v *feature.Vector) float64 {
	return m.final.PredictProba(m.embed(v.Reproject(m.vz.Schema())))
}

// PredictBatch implements Predictor, sharded across the model's workers.
func (m *IntermediateModel) PredictBatch(vs []*feature.Vector) []float64 {
	return predictAll(mapreduce.Config{Workers: m.workers}, vs, m.Predict)
}

// DeViSEModel adapts the DeViSE architecture to the cross-modal setting
// (paper §5): model A is trained on existing modalities and frozen; model B
// is pre-trained on the weakly supervised new modality; a linear projection
// P maps B's embedding onto A's; at inference a new-modality point flows
// through B, then P, then A's frozen prediction layer.
type DeViSEModel struct {
	a       *EarlyModel
	b       *EarlyModel
	proj    *model.Projection
	workers int
}

// TrainDeViSE fits the three-stage DeViSE pipeline. oldCorpora are the
// existing (labeled) modalities; newCorpus is the weakly supervised new
// modality.
func TrainDeViSE(ctx context.Context, oldCorpora []Corpus, newCorpus Corpus, cfg Config) (*DeViSEModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctx, span := trace.Start(ctx, "fusion.devise")
	defer span.End()
	a, err := TrainEarly(ctx, oldCorpora, cfg)
	if err != nil {
		return nil, fmt.Errorf("fusion: devise model A: %w", err)
	}
	bcfg := cfg
	bcfg.Model.Seed = cfg.Model.Seed + 31
	b, err := TrainEarly(ctx, []Corpus{newCorpus}, bcfg)
	if err != nil {
		return nil, fmt.Errorf("fusion: devise model B: %w", err)
	}
	// Train P to match B's embedding (Y) to frozen A's embedding (X) over
	// the new-modality corpus, whose shared features exist in both.
	type pair struct{ src, dst []float64 }
	pairs, err := mapreduce.Map(nil, mapWorkers(cfg), newCorpus.Vectors, func(v *feature.Vector) (pair, error) {
		pv := v.Reproject(cfg.Schema)
		return pair{src: b.Hidden(pv), dst: a.Hidden(pv)}, nil
	})
	if err != nil {
		return nil, err
	}
	src := make([][]float64, len(pairs))
	dst := make([][]float64, len(pairs))
	for i, p := range pairs {
		src[i], dst[i] = p.src, p.dst
	}
	proj, err := model.FitProjection(ctx, src, dst, 25, 0.02, cfg.Model.Seed+63, cfg.Model.Workers)
	if err != nil {
		return nil, fmt.Errorf("fusion: devise projection: %w", err)
	}
	return &DeViSEModel{a: a, b: b, proj: proj, workers: cfg.Model.Workers}, nil
}

// Predict implements Predictor: B embeds, P projects, frozen A scores.
func (m *DeViSEModel) Predict(v *feature.Vector) float64 {
	return m.a.PredictFromHidden(m.proj.Apply(m.b.Hidden(v)))
}

// PredictBatch implements Predictor, sharded across the model's workers.
func (m *DeViSEModel) PredictBatch(vs []*feature.Vector) []float64 {
	return predictAll(mapreduce.Config{Workers: m.workers}, vs, m.Predict)
}
