package fusion

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func lineageTestModel(t *testing.T) Predictor {
	t.Helper()
	img, _ := corpusFor("image", 400, true, 0.15, 31)
	m, err := TrainEarly(ctxbg, []Corpus{img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A nil lineage must keep SaveLineage byte-identical to Save: every artifact
// written before the lineage section existed — and the fuzz corpus — stays
// valid, and bootstrap saves stay reproducible against golden files.
func TestSaveLineageNilIsByteIdenticalV1(t *testing.T) {
	m := lineageTestModel(t)
	var v1, v2 bytes.Buffer
	if err := Save(&v1, m); err != nil {
		t.Fatal(err)
	}
	if err := SaveLineage(&v2, m, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("SaveLineage(nil) output differs from Save")
	}
	// And a v1 stream loads through the lineage reader with nil lineage.
	p, kind, lg, err := LoadLineage(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || kind != KindEarly || lg != nil {
		t.Fatalf("v1 artifact via LoadLineage: kind=%q lineage=%+v", kind, lg)
	}
}

func TestLineageRoundTrip(t *testing.T) {
	m := lineageTestModel(t)
	want := &Lineage{
		Task:    "CT1",
		Trigger: "drift:reports,serve_score",
		Window:  7,
		Parent:  "artifacts/model-0001.bin",
		Seed:    42,
		Extra:   map[string]string{"schedule": "smoke"},
	}
	var buf bytes.Buffer
	if err := SaveLineage(&buf, m, want); err != nil {
		t.Fatal(err)
	}
	p, kind, got, err := LoadLineage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEarly {
		t.Fatalf("kind = %q", kind)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lineage round trip:\ngot  %+v\nwant %+v", got, want)
	}
	// The model payload survives intact alongside the metadata.
	test, _ := corpusFor("lineage-test", 100, true, 0.15, 32)
	for i, v := range test.Vectors {
		if w, g := m.Predict(v), p.Predict(v); w != g {
			t.Fatalf("vector %d: Predict %v != %v after lineage round trip", i, w, g)
		}
	}
	// Plain Load accepts v2 streams too (discarding the lineage), so older
	// call sites keep working against lifecycle-written artifacts.
	if _, kind, err := Load(bytes.NewReader(buf.Bytes())); err != nil || kind != KindEarly {
		t.Fatalf("Load on v2 artifact: kind=%q err=%v", kind, err)
	}
}

func TestLineageFileRoundTrip(t *testing.T) {
	m := lineageTestModel(t)
	path := filepath.Join(t.TempDir(), "model.bin")
	lg := &Lineage{Task: "CT2", Trigger: "bootstrap"}
	if err := SaveFileLineage(path, m, lg); err != nil {
		t.Fatal(err)
	}
	_, kind, got, err := LoadFileLineage(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEarly || !reflect.DeepEqual(got, lg) {
		t.Fatalf("file round trip: kind=%q lineage=%+v", kind, got)
	}
}

func TestLineageChecksumRejected(t *testing.T) {
	m := lineageTestModel(t)
	var buf bytes.Buffer
	if err := SaveLineage(&buf, m, &Lineage{Task: "CT1"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit inside the lineage JSON (it sits between the payload CRC
	// and the trailing lineage CRC).
	raw[len(raw)-6] ^= 0x01
	if _, _, _, err := LoadLineage(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted lineage section accepted")
	}
	// Truncating the lineage section must also fail loudly.
	if _, _, _, err := LoadLineage(bytes.NewReader(raw[:len(raw)-8])); err == nil {
		t.Fatal("truncated lineage section accepted")
	}
}

func TestLineageUnknownVersionRejected(t *testing.T) {
	m := lineageTestModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 3 // version field follows the 8-byte magic
	if _, _, _, err := LoadLineage(bytes.NewReader(raw)); err == nil {
		t.Fatal("unknown artifact version accepted")
	}
}
