package fusion

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"crossmodal/internal/feature"
	"crossmodal/internal/model"
)

// Model artifacts: a trained fusion predictor serialized as a deployable
// file, the way featurestore rows already persist feature vectors. The
// paper's §2.4 deployment stage pushes the fused model behind serving
// infrastructure independent of the training pipeline (the same packaging
// step Snorkel DryBell argues realizes the payoff of weak supervision);
// internal/serve loads these artifacts and hot-swaps them under live
// traffic.
//
// File layout (all integers little-endian):
//
//	magic   [8]byte  "XMODART1"
//	version uint32   artifact format version (1)
//	kind    uint32   length n, then n bytes ("early" | "intermediate" | "devise")
//	payload uint64   length m, then m bytes of gob-encoded model
//	crc     uint32   IEEE CRC-32 of the payload bytes
//
// The checksum guards against truncated or bit-rotted files; the version
// and per-type gob wire versions (see model/serialize.go, feature/gob.go)
// guard against format skew. Load rejects any mismatch instead of
// deserializing garbage into a serving model.

// Artifact kinds, also reported by serve's admin endpoints.
const (
	KindEarly        = "early"
	KindIntermediate = "intermediate"
	KindDeViSE       = "devise"
)

var artifactMagic = [8]byte{'X', 'M', 'O', 'D', 'A', 'R', 'T', '1'}

const artifactVersion = 1

// maxArtifactSection caps the payload length Load will read, and maxKindLen
// the kind string, so a corrupt header cannot trigger an absurd allocation.
const (
	maxArtifactSection = 1 << 30
	maxKindLen         = 64
)

// earlyWire is the gob form of EarlyModel. Prec is the serving precision
// the model was published for; gob leaves absent fields zero, so artifacts
// written before the flag existed decode as Float64 (exact serving).
type earlyWire struct {
	VZ      *feature.Vectorizer
	Net     *model.MLP
	Workers int
	Prec    model.Precision
}

// GobEncode implements gob.GobEncoder.
func (m *EarlyModel) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(earlyWire{VZ: m.vz, Net: m.net, Workers: m.workers, Prec: m.prec})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *EarlyModel) GobDecode(data []byte) error {
	var w earlyWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("fusion: decode early model: %w", err)
	}
	if w.VZ == nil || w.Net == nil {
		return fmt.Errorf("fusion: decode early model: missing vectorizer or network")
	}
	if w.Net.InDim() != w.VZ.Width() {
		return fmt.Errorf("fusion: decode early model: network input %d vs vectorizer width %d",
			w.Net.InDim(), w.VZ.Width())
	}
	if !w.Prec.Valid() {
		return fmt.Errorf("fusion: decode early model: unknown serve precision %d", int(w.Prec))
	}
	m.vz, m.net, m.workers, m.prec = w.VZ, w.Net, w.Workers, w.Prec
	return nil
}

// intermediateWire is the gob form of IntermediateModel.
type intermediateWire struct {
	VZ      *feature.Vectorizer
	Parts   []*model.MLP
	Final   *model.MLP
	Workers int
}

// GobEncode implements gob.GobEncoder.
func (m *IntermediateModel) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(intermediateWire{VZ: m.vz, Parts: m.parts, Final: m.final, Workers: m.workers})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *IntermediateModel) GobDecode(data []byte) error {
	var w intermediateWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("fusion: decode intermediate model: %w", err)
	}
	if w.VZ == nil || w.Final == nil || len(w.Parts) == 0 {
		return fmt.Errorf("fusion: decode intermediate model: missing stage")
	}
	hidden := 0
	for _, part := range w.Parts {
		if part.InDim() != w.VZ.Width() {
			return fmt.Errorf("fusion: decode intermediate model: part input %d vs vectorizer width %d",
				part.InDim(), w.VZ.Width())
		}
		hidden += part.HiddenDim()
	}
	if w.Final.InDim() != hidden {
		return fmt.Errorf("fusion: decode intermediate model: final input %d vs concat width %d",
			w.Final.InDim(), hidden)
	}
	m.vz, m.parts, m.final, m.workers = w.VZ, w.Parts, w.Final, w.Workers
	return nil
}

// deviseWire is the gob form of DeViSEModel.
type deviseWire struct {
	A       *EarlyModel
	B       *EarlyModel
	Proj    *model.Projection
	Workers int
}

// GobEncode implements gob.GobEncoder.
func (m *DeViSEModel) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(deviseWire{A: m.a, B: m.b, Proj: m.proj, Workers: m.workers})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *DeViSEModel) GobDecode(data []byte) error {
	var w deviseWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("fusion: decode devise model: %w", err)
	}
	if w.A == nil || w.B == nil || w.Proj == nil {
		return fmt.Errorf("fusion: decode devise model: missing stage")
	}
	m.a, m.b, m.proj, m.workers = w.A, w.B, w.Proj, w.Workers
	return nil
}

// Kind reports the artifact kind string of a predictor, or "" for foreign
// Predictor implementations.
func Kind(p Predictor) string {
	switch p.(type) {
	case *EarlyModel:
		return KindEarly
	case *IntermediateModel:
		return KindIntermediate
	case *DeViSEModel:
		return KindDeViSE
	default:
		return ""
	}
}

// Save writes p as a versioned, checksummed artifact.
func Save(w io.Writer, p Predictor) error {
	kind := Kind(p)
	if kind == "" {
		return fmt.Errorf("fusion: cannot serialize predictor of type %T", p)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return fmt.Errorf("fusion: encode %s model: %w", kind, err)
	}
	if _, err := w.Write(artifactMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(artifactVersion)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(kind))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, kind); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(payload.Len())); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload.Bytes()))
}

// Load reads an artifact written by Save (or SaveLineage — the lineage
// section, if present, is verified and discarded), verifying magic, version,
// and checksum, and returns the predictor plus its kind.
func Load(r io.Reader) (Predictor, string, error) {
	p, kind, _, err := LoadLineage(r)
	return p, kind, err
}

// SaveFile writes p to path atomically: a temp file in the same directory is
// renamed over path only after a successful write, so a crashed save never
// leaves a serving process able to load half an artifact.
func SaveFile(path string, p Predictor) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".artifact-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if err = Save(f, p); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads an artifact from path.
func LoadFile(path string) (Predictor, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return Load(f)
}
