package fusion

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

// fuzzArtifact builds one real, small EarlyModel artifact once; it seeds both
// fuzz targets so the fuzzer starts from valid bytes and mutates from there.
var fuzzArtifact = sync.OnceValues(func() ([]byte, error) {
	img, _ := corpusFor("image", 60, true, 0.15, 91)
	cfg := baseConfig()
	cfg.Model.Epochs = 1
	m, err := TrainEarly(ctxbg, []Corpus{img}, cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
})

// FuzzArtifactLoad: Load on arbitrary bytes must either succeed with a
// usable predictor or return an error — never panic, and never allocate
// anywhere near what a lying length header claims.
func FuzzArtifactLoad(f *testing.F) {
	art, err := fuzzArtifact()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(art)
	f.Add(art[:len(art)/2]) // truncated payload
	f.Add([]byte("XMODART1"))
	f.Add([]byte{})
	// Valid prefix with a payload length claiming 1 GB on an empty stream.
	lying := append([]byte{}, art[:8]...)
	lying = binary.LittleEndian.AppendUint32(lying, 1)
	lying = binary.LittleEndian.AppendUint32(lying, 5)
	lying = append(lying, "early"...)
	lying = binary.LittleEndian.AppendUint64(lying, 1<<30)
	f.Add(lying)
	// Flip a payload byte so the checksum must catch it.
	flipped := append([]byte{}, art...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, kind, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("Load returned nil predictor without error")
		}
		switch kind {
		case KindEarly, KindIntermediate, KindDeViSE:
		default:
			t.Fatalf("Load accepted unknown kind %q", kind)
		}
	})
}

// FuzzEarlyModelGobDecode hits the gob layer under the artifact framing: a
// mutated payload that clears the checksum must still decode cleanly or
// error — the shape invariants (vectorizer/network width agreement) must
// hold on every accepted model.
func FuzzEarlyModelGobDecode(f *testing.F) {
	art, err := fuzzArtifact()
	if err != nil {
		f.Fatal(err)
	}
	// Extract the gob payload from the artifact framing: magic(8) +
	// version(4) + kindLen(4) + kind + payloadLen(8) ... payload ... crc(4).
	kindLen := binary.LittleEndian.Uint32(art[12:16])
	payloadStart := 16 + int(kindLen) + 8
	payload := art[payloadStart : len(art)-4]
	f.Add(payload)
	f.Add(payload[:len(payload)/2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := &EarlyModel{}
		if err := m.GobDecode(data); err != nil {
			return
		}
		if m.vz == nil || m.net == nil {
			t.Fatal("GobDecode accepted a model with missing stages")
		}
		if m.net.InDim() != m.vz.Width() {
			t.Fatalf("GobDecode accepted width mismatch: net %d, vectorizer %d",
				m.net.InDim(), m.vz.Width())
		}
	})
}
