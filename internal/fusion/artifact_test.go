package fusion

import (
	"bytes"
	"path/filepath"
	"testing"
)

// roundTrip saves p, loads it back, and asserts bit-identical predictions on
// test vectors via both the single and batch paths.
func roundTrip(t *testing.T, p Predictor, wantKind string) {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if kind != wantKind {
		t.Fatalf("kind %q, want %q", kind, wantKind)
	}
	test, _ := corpusFor("roundtrip-test", 300, true, 0.15, 99)
	wantBatch := p.PredictBatch(test.Vectors)
	gotBatch := got.PredictBatch(test.Vectors)
	for i, v := range test.Vectors {
		if w, g := p.Predict(v), got.Predict(v); w != g {
			t.Fatalf("vector %d: Predict %v != %v", i, w, g)
		}
		if wantBatch[i] != gotBatch[i] {
			t.Fatalf("vector %d: PredictBatch %v != %v", i, wantBatch[i], gotBatch[i])
		}
	}
}

func TestArtifactRoundTripEarly(t *testing.T) {
	text, _ := corpusFor("text", 800, false, 0.1, 21)
	img, _ := corpusFor("image", 500, true, 0.15, 22)
	m, err := TrainEarly(ctxbg, []Corpus{text, img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, KindEarly)
}

func TestArtifactRoundTripIntermediate(t *testing.T) {
	text, _ := corpusFor("text", 800, false, 0.1, 23)
	img, _ := corpusFor("image", 500, true, 0.15, 24)
	m, err := TrainIntermediate(ctxbg, []Corpus{text, img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, KindIntermediate)
}

func TestArtifactRoundTripDeViSE(t *testing.T) {
	text, _ := corpusFor("text", 800, false, 0.1, 25)
	img, _ := corpusFor("image", 500, true, 0.15, 26)
	m, err := TrainDeViSE(ctxbg, []Corpus{text}, img, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, KindDeViSE)
}

func TestArtifactFileRoundTrip(t *testing.T) {
	img, _ := corpusFor("image", 500, true, 0.15, 27)
	m, err := TrainEarly(ctxbg, []Corpus{img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.xma")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEarly {
		t.Fatalf("kind %q", kind)
	}
	test, _ := corpusFor("t", 100, true, 0.15, 28)
	for i, v := range test.Vectors {
		if w, g := m.Predict(v), got.Predict(v); w != g {
			t.Fatalf("vector %d: %v != %v", i, w, g)
		}
	}
}

func TestArtifactRejectsCorruption(t *testing.T) {
	img, _ := corpusFor("image", 400, true, 0.15, 29)
	m, err := TrainEarly(ctxbg, []Corpus{img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if _, _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupt magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[8] = 0xee
		if _, _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatal("unknown version accepted")
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 0x10
		if _, _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupt payload accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := Load(bytes.NewReader(raw[:len(raw)-7])); err == nil {
			t.Fatal("truncated artifact accepted")
		}
	})
}
