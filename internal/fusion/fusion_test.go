package fusion

import (
	"context"
	"math/rand"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/metrics"
	"crossmodal/internal/model"
)

var ctxbg = context.Background()

var schema = feature.MustSchema(
	feature.Def{Name: "topic", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "score", Kind: feature.Numeric, Set: "A", Servable: true},
	feature.Def{Name: "emb", Kind: feature.Embedding, Set: "I", Servable: true, Dim: 4},
)

// corpusFor synthesizes a modality corpus: topic and score carry the signal;
// image points additionally carry an informative embedding.
func corpusFor(name string, n int, image bool, noise float64, seed int64) (Corpus, []int8) {
	rng := rand.New(rand.NewSource(seed))
	c := Corpus{Name: name}
	labels := make([]int8, n)
	for i := 0; i < n; i++ {
		v := feature.NewVector(schema)
		pos := rng.Float64() < 0.3
		topic := "benign"
		if pos && rng.Float64() > noise {
			topic = "risky"
		} else if !pos && rng.Float64() < noise/2 {
			topic = "risky"
		}
		v.MustSet("topic", feature.CategoricalValue(topic))
		base := 0.0
		if pos {
			base = 2
		}
		v.MustSet("score", feature.NumericValue(base+rng.NormFloat64()))
		if image {
			e := make([]float64, 4)
			for j := range e {
				e[j] = rng.NormFloat64() * 0.3
			}
			if pos {
				e[0] += 1.5
			}
			v.MustSet("emb", feature.EmbeddingValue(e))
		}
		c.Vectors = append(c.Vectors, v)
		if pos {
			c.Targets = append(c.Targets, 1)
			labels[i] = 1
		} else {
			c.Targets = append(c.Targets, 0)
			labels[i] = -1
		}
	}
	return c, labels
}

func baseConfig() Config {
	return Config{
		Schema: schema,
		Model:  model.Config{Hidden: []int{8}, Epochs: 6, Seed: 3, LearningRate: 0.02},
	}
}

func TestTrainEarly(t *testing.T) {
	text, _ := corpusFor("text", 1500, false, 0.1, 1)
	img, _ := corpusFor("image", 800, true, 0.15, 2)
	m, err := TrainEarly(ctxbg, []Corpus{text, img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	test, labels := corpusFor("image-test", 600, true, 0.15, 3)
	auc := metrics.AUPRC(labels, m.PredictBatch(test.Vectors))
	if auc < 0.8 {
		t.Errorf("early fusion AUPRC = %.3f, want > 0.8", auc)
	}
}

func TestEarlyBeatsSingleModality(t *testing.T) {
	text, _ := corpusFor("text", 1500, false, 0.1, 4)
	img, _ := corpusFor("image", 400, true, 0.35, 5) // noisy, small image corpus
	test, labels := corpusFor("image-test", 800, true, 0.15, 6)

	both, err := TrainEarly(ctxbg, []Corpus{text, img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	imgOnly, err := TrainEarly(ctxbg, []Corpus{img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	aucBoth := metrics.AUPRC(labels, both.PredictBatch(test.Vectors))
	aucImg := metrics.AUPRC(labels, imgOnly.PredictBatch(test.Vectors))
	if aucBoth < aucImg-0.02 {
		t.Errorf("joint training (%.3f) should not lose to image-only (%.3f)", aucBoth, aucImg)
	}
}

func TestTrainIntermediate(t *testing.T) {
	text, _ := corpusFor("text", 1200, false, 0.1, 7)
	img, _ := corpusFor("image", 800, true, 0.15, 8)
	m, err := TrainIntermediate(ctxbg, []Corpus{text, img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	test, labels := corpusFor("image-test", 600, true, 0.15, 9)
	auc := metrics.AUPRC(labels, m.PredictBatch(test.Vectors))
	if auc < 0.7 {
		t.Errorf("intermediate fusion AUPRC = %.3f, want > 0.7", auc)
	}
}

func TestTrainDeViSE(t *testing.T) {
	text, _ := corpusFor("text", 1200, false, 0.1, 10)
	img, _ := corpusFor("image", 800, true, 0.15, 11)
	m, err := TrainDeViSE(ctxbg, []Corpus{text}, img, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	test, labels := corpusFor("image-test", 600, true, 0.15, 12)
	auc := metrics.AUPRC(labels, m.PredictBatch(test.Vectors))
	base := metrics.BaseRate(labels)
	if auc < base*1.3 {
		t.Errorf("DeViSE AUPRC = %.3f, want clearly above base rate %.3f", auc, base)
	}
}

func TestEarlyVsAlternativesOrdering(t *testing.T) {
	// The paper finds early fusion outperforms both alternatives (§6.6).
	text, _ := corpusFor("text", 1500, false, 0.1, 13)
	img, _ := corpusFor("image", 900, true, 0.2, 14)
	test, labels := corpusFor("image-test", 900, true, 0.15, 15)

	early, err := TrainEarly(ctxbg, []Corpus{text, img}, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	devise, err := TrainDeViSE(ctxbg, []Corpus{text}, img, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	aucEarly := metrics.AUPRC(labels, early.PredictBatch(test.Vectors))
	aucDevise := metrics.AUPRC(labels, devise.PredictBatch(test.Vectors))
	if aucEarly < aucDevise-0.03 {
		t.Errorf("early fusion (%.3f) should not lose to DeViSE (%.3f)", aucEarly, aucDevise)
	}
}

func TestCorpusValidation(t *testing.T) {
	good, _ := corpusFor("ok", 10, false, 0.1, 16)
	cases := []struct {
		name    string
		corpora []Corpus
	}{
		{"no corpora", nil},
		{"empty corpus", []Corpus{{Name: "empty"}}},
		{"target mismatch", []Corpus{{Name: "bad", Vectors: good.Vectors, Targets: good.Targets[:2]}}},
		{"weight mismatch", []Corpus{{Name: "bad", Vectors: good.Vectors, Targets: good.Targets, Weights: []float64{1}}}},
	}
	for _, tc := range cases {
		if _, err := TrainEarly(ctxbg, tc.corpora, baseConfig()); err == nil {
			t.Errorf("TrainEarly %s: expected error", tc.name)
		}
		if _, err := TrainIntermediate(ctxbg, tc.corpora, baseConfig()); err == nil {
			t.Errorf("TrainIntermediate %s: expected error", tc.name)
		}
	}
	if _, err := TrainEarly(ctxbg, []Corpus{good}, Config{}); err == nil {
		t.Error("expected error for missing schema")
	}
}

func TestSchemaRestriction(t *testing.T) {
	// Restricting the end-model schema must drop the restricted features'
	// influence: a model limited to "score" cannot see topic or embedding.
	img, _ := corpusFor("image", 800, true, 0.0, 17)
	restricted := Config{
		Schema: schema.Sets("A"), // score only
		Model:  model.Config{Epochs: 5, Seed: 3},
	}
	m, err := TrainEarly(ctxbg, []Corpus{img}, restricted)
	if err != nil {
		t.Fatal(err)
	}
	// Two vectors differing only in topic/embedding must score equally.
	a := feature.NewVector(schema)
	a.MustSet("topic", feature.CategoricalValue("risky"))
	a.MustSet("score", feature.NumericValue(1))
	b := feature.NewVector(schema)
	b.MustSet("topic", feature.CategoricalValue("benign"))
	b.MustSet("score", feature.NumericValue(1))
	if m.Predict(a) != m.Predict(b) {
		t.Error("restricted model leaked excluded features")
	}
}

func TestWeightedCorpusMixing(t *testing.T) {
	// One corpus weighted, one not: pooled weights must align.
	text, _ := corpusFor("text", 300, false, 0.1, 18)
	img, _ := corpusFor("image", 300, true, 0.1, 19)
	img.Weights = make([]float64, len(img.Vectors))
	for i := range img.Weights {
		img.Weights[i] = 0.5
	}
	if _, err := TrainEarly(ctxbg, []Corpus{text, img}, baseConfig()); err != nil {
		t.Fatalf("mixed weighted/unweighted corpora: %v", err)
	}
}
