package fusion

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Artifact lineage: provenance metadata riding along with a model artifact,
// so a serving registry can answer "where did this model come from and why
// was it trained" without a side-channel database. The lifecycle controller
// stamps every candidate with the drift trigger, the traffic window that
// tripped it, and the incumbent it shadows — the audit trail the paper's
// deployment story (§2.4) assumes the surrounding TFX-style infrastructure
// provides.
//
// Wire format: lineage appends a version-2 section after the version-1
// layout, so v1 readers fail loudly on the version field rather than
// misparse, and a nil-lineage SaveLineage emits a byte-identical v1 file
// (the fuzz corpus and every artifact written before this section existed
// stay valid):
//
//	... version-1 layout with version = 2 ...
//	lineage uint32   length n, then n bytes of JSON
//	crc     uint32   IEEE CRC-32 of the JSON bytes

// Lineage records why and from what an artifact was produced.
type Lineage struct {
	// Task is the synth task name the model was trained for (e.g. "CT1").
	Task string `json:"task,omitempty"`
	// Trigger says what caused this training run: "bootstrap" for the
	// first artifact, "drift:<channels>" for lifecycle retrains.
	Trigger string `json:"trigger,omitempty"`
	// Window is the traffic window ordinal that tripped the retrain
	// (virtual time, not wall clock — event logs replay bit-identically).
	Window int `json:"window,omitempty"`
	// Parent is the artifact path of the incumbent this model was
	// shadow-scored against; "" for a bootstrap artifact.
	Parent string `json:"parent,omitempty"`
	// Seed is the dataset seed the retraining corpus was drawn with.
	Seed int64 `json:"seed,omitempty"`
	// Extra carries free-form annotations (shadow metrics, schedule name).
	Extra map[string]string `json:"extra,omitempty"`
}

const artifactVersionLineage = 2

// maxLineageLen caps the lineage JSON Load will read.
const maxLineageLen = 1 << 20

// SaveLineage writes p with lineage metadata. A nil lineage produces a file
// byte-identical to Save's version-1 output.
func SaveLineage(w io.Writer, p Predictor, lg *Lineage) error {
	if lg == nil {
		return Save(w, p)
	}
	kind := Kind(p)
	if kind == "" {
		return fmt.Errorf("fusion: cannot serialize predictor of type %T", p)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return fmt.Errorf("fusion: encode %s model: %w", kind, err)
	}
	meta, err := json.Marshal(lg)
	if err != nil {
		return fmt.Errorf("fusion: encode lineage: %w", err)
	}
	if len(meta) > maxLineageLen {
		return fmt.Errorf("fusion: lineage JSON %d bytes exceeds cap %d", len(meta), maxLineageLen)
	}
	if _, err := w.Write(artifactMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(artifactVersionLineage)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(kind))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, kind); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(payload.Len())); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload.Bytes())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(meta))); err != nil {
		return err
	}
	if _, err := w.Write(meta); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(meta))
}

// LoadLineage reads an artifact written by Save or SaveLineage, verifying
// magic, version, and both checksums. Version-1 artifacts return a nil
// lineage.
func LoadLineage(r io.Reader) (Predictor, string, *Lineage, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, "", nil, fmt.Errorf("fusion: read artifact magic: %w", err)
	}
	if magic != artifactMagic {
		return nil, "", nil, fmt.Errorf("fusion: bad artifact magic %q", magic[:])
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, "", nil, fmt.Errorf("fusion: read artifact version: %w", err)
	}
	if version != artifactVersion && version != artifactVersionLineage {
		return nil, "", nil, fmt.Errorf("fusion: artifact version %d, want %d or %d",
			version, artifactVersion, artifactVersionLineage)
	}
	var kindLen uint32
	if err := binary.Read(r, binary.LittleEndian, &kindLen); err != nil {
		return nil, "", nil, fmt.Errorf("fusion: read artifact kind: %w", err)
	}
	if kindLen == 0 || kindLen > maxKindLen {
		return nil, "", nil, fmt.Errorf("fusion: implausible artifact kind length %d", kindLen)
	}
	kindBytes := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kindBytes); err != nil {
		return nil, "", nil, fmt.Errorf("fusion: read artifact kind: %w", err)
	}
	kind := string(kindBytes)
	switch kind {
	case KindEarly, KindIntermediate, KindDeViSE:
	default:
		// Reject before touching the payload: a garbage kind means a
		// garbage payload length too.
		return nil, "", nil, fmt.Errorf("fusion: unknown artifact kind %q", kind)
	}
	var payloadLen uint64
	if err := binary.Read(r, binary.LittleEndian, &payloadLen); err != nil {
		return nil, "", nil, fmt.Errorf("fusion: read artifact payload length: %w", err)
	}
	if payloadLen == 0 || payloadLen > maxArtifactSection {
		return nil, "", nil, fmt.Errorf("fusion: implausible artifact payload length %d", payloadLen)
	}
	// Copy progressively instead of allocating payloadLen up front: a
	// truncated stream whose header lies about its length then costs only
	// the bytes actually present.
	var payloadBuf bytes.Buffer
	if n, err := io.CopyN(&payloadBuf, r, int64(payloadLen)); err != nil {
		return nil, "", nil, fmt.Errorf("fusion: read artifact payload (%d of %d bytes): %w", n, payloadLen, err)
	}
	payload := payloadBuf.Bytes()
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, "", nil, fmt.Errorf("fusion: read artifact checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, "", nil, fmt.Errorf("fusion: artifact checksum mismatch: payload %08x, header %08x", got, sum)
	}

	var lg *Lineage
	if version == artifactVersionLineage {
		var metaLen uint32
		if err := binary.Read(r, binary.LittleEndian, &metaLen); err != nil {
			return nil, "", nil, fmt.Errorf("fusion: read lineage length: %w", err)
		}
		if metaLen == 0 || metaLen > maxLineageLen {
			return nil, "", nil, fmt.Errorf("fusion: implausible lineage length %d", metaLen)
		}
		meta := make([]byte, metaLen)
		if _, err := io.ReadFull(r, meta); err != nil {
			return nil, "", nil, fmt.Errorf("fusion: read lineage: %w", err)
		}
		var metaSum uint32
		if err := binary.Read(r, binary.LittleEndian, &metaSum); err != nil {
			return nil, "", nil, fmt.Errorf("fusion: read lineage checksum: %w", err)
		}
		if got := crc32.ChecksumIEEE(meta); got != metaSum {
			return nil, "", nil, fmt.Errorf("fusion: lineage checksum mismatch: payload %08x, header %08x", got, metaSum)
		}
		lg = &Lineage{}
		if err := json.Unmarshal(meta, lg); err != nil {
			return nil, "", nil, fmt.Errorf("fusion: decode lineage: %w", err)
		}
	}

	dec := gob.NewDecoder(bytes.NewReader(payload))
	var p Predictor
	switch kind {
	case KindEarly:
		m := &EarlyModel{}
		if err := dec.Decode(m); err != nil {
			return nil, "", nil, err
		}
		p = m
	case KindIntermediate:
		m := &IntermediateModel{}
		if err := dec.Decode(m); err != nil {
			return nil, "", nil, err
		}
		p = m
	case KindDeViSE:
		m := &DeViSEModel{}
		if err := dec.Decode(m); err != nil {
			return nil, "", nil, err
		}
		p = m
	}
	return p, kind, lg, nil
}

// SaveFileLineage writes p with lineage to path atomically (same rename
// discipline as SaveFile).
func SaveFileLineage(path string, p Predictor, lg *Lineage) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".artifact-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if err = SaveLineage(f, p, lg); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFileLineage reads an artifact plus lineage from path.
func LoadFileLineage(path string) (Predictor, string, *Lineage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close()
	return LoadLineage(f)
}
