package feature

import "math"

// ScalesAccum computes FitScales incrementally, so the streaming pipeline
// can fit similarity scales over a corpus it only ever sees in chunks.
// FitScales is a two-pass statistic (mean, then mean absolute deviation),
// so the accumulator is driven in two passes as well:
//
//	acc := NewScalesAccum(schema)
//	for each chunk { acc.AddMeans(chunk) }
//	acc.FinishMeans()
//	for each chunk { acc.AddDevs(chunk) }
//	scales := acc.Scales()
//
// Each numeric feature keeps an independent running sum in vector order —
// the exact float additions FitScales performs — so the result is
// bit-identical to FitScales over the concatenated chunks.
type ScalesAccum struct {
	schema *Schema
	cols   []int // schema positions of numeric features
	sum    []float64
	n      []int
	mean   []float64
	dev    []float64
	phase  int // 0 = means, 1 = devs, 2 = done
}

// NewScalesAccum returns an accumulator for schema's numeric features.
func NewScalesAccum(schema *Schema) *ScalesAccum {
	a := &ScalesAccum{schema: schema}
	for i := 0; i < schema.Len(); i++ {
		if schema.Def(i).Kind == Numeric {
			a.cols = append(a.cols, i)
		}
	}
	k := len(a.cols)
	a.sum = make([]float64, k)
	a.n = make([]int, k)
	a.mean = make([]float64, k)
	a.dev = make([]float64, k)
	return a
}

// AddMeans feeds one chunk to the first (mean) pass.
func (a *ScalesAccum) AddMeans(vectors []*Vector) {
	if a.phase != 0 {
		panic("feature: ScalesAccum.AddMeans after FinishMeans")
	}
	for j, col := range a.cols {
		for _, v := range vectors {
			if val := v.At(col); !val.Missing {
				a.sum[j] += val.Num
				a.n[j]++
			}
		}
	}
}

// FinishMeans closes the first pass; the same chunks must then be fed to
// AddDevs in the same order.
func (a *ScalesAccum) FinishMeans() {
	if a.phase != 0 {
		panic("feature: ScalesAccum.FinishMeans called twice")
	}
	for j := range a.cols {
		if a.n[j] > 0 {
			a.mean[j] = a.sum[j] / float64(a.n[j])
		}
	}
	a.phase = 1
}

// AddDevs feeds one chunk to the second (deviation) pass.
func (a *ScalesAccum) AddDevs(vectors []*Vector) {
	if a.phase != 1 {
		panic("feature: ScalesAccum.AddDevs outside the deviation pass")
	}
	for j, col := range a.cols {
		if a.n[j] == 0 {
			continue
		}
		for _, v := range vectors {
			if val := v.At(col); !val.Missing {
				a.dev[j] += math.Abs(val.Num - a.mean[j])
			}
		}
	}
}

// Scales finalizes the fit. The result is bit-identical to
// FitScales(schema, allVectors).
func (a *ScalesAccum) Scales() Scales {
	if a.phase == 0 {
		panic("feature: ScalesAccum.Scales before FinishMeans")
	}
	a.phase = 2
	scales := make(Scales)
	for j, col := range a.cols {
		name := a.schema.Def(col).Name
		if a.n[j] == 0 {
			scales[name] = 1
			continue
		}
		scale := a.dev[j] / float64(a.n[j])
		if scale <= 0 {
			scale = 1
		}
		scales[name] = scale
	}
	return scales
}
