package feature

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Def{Name: "topic", Kind: Categorical, Set: "C", Servable: true},
		Def{Name: "objects", Kind: Categorical, Set: "C", Servable: true},
		Def{Name: "reports", Kind: Numeric, Set: "D", Servable: false},
		Def{Name: "emb", Kind: Embedding, Set: "I", Servable: true, Dim: 3},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if i, ok := s.Index("reports"); !ok || i != 2 {
		t.Errorf("Index(reports) = %d,%v want 2,true", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) should not exist")
	}
	names := s.Names()
	want := []string{"topic", "objects", "reports", "emb"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		defs []Def
	}{
		{"duplicate", []Def{{Name: "a", Kind: Numeric}, {Name: "a", Kind: Numeric}}},
		{"empty name", []Def{{Name: "", Kind: Numeric}}},
		{"embedding without dim", []Def{{Name: "e", Kind: Embedding}}},
		{"numeric with dim", []Def{{Name: "n", Kind: Numeric, Dim: 4}}},
	}
	for _, tc := range cases {
		if _, err := NewSchema(tc.defs...); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSchemaProjection(t *testing.T) {
	s := testSchema(t)
	serv := s.Servable()
	if serv.Len() != 3 {
		t.Fatalf("Servable len = %d, want 3", serv.Len())
	}
	if _, ok := serv.Index("reports"); ok {
		t.Error("nonservable feature leaked into Servable()")
	}
	setC := s.Sets("C")
	if setC.Len() != 2 {
		t.Fatalf("Sets(C) len = %d, want 2", setC.Len())
	}
	if s.Sets().Len() != 0 {
		t.Error("Sets() with no args should be empty")
	}
	both := s.Sets("C", "D")
	if both.Len() != 3 {
		t.Errorf("Sets(C,D) len = %d, want 3", both.Len())
	}
}

func TestVectorSetGet(t *testing.T) {
	s := testSchema(t)
	v := NewVector(s)
	if !v.Get("topic").Missing {
		t.Error("fresh vector should be all-missing")
	}
	if err := v.Set("topic", CategoricalValue("sports")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if !v.Get("topic").HasCategory("sports") {
		t.Error("category not stored")
	}
	if err := v.Set("nope", NumericValue(1)); err == nil {
		t.Error("expected unknown-feature error")
	}
	if err := v.Set("emb", EmbeddingValue([]float64{1, 2})); err == nil {
		t.Error("expected dim-mismatch error")
	}
	if err := v.Set("emb", EmbeddingValue([]float64{1, 2, 3})); err != nil {
		t.Errorf("Set emb: %v", err)
	}
	if err := v.Set("emb", MissingValue()); err != nil {
		t.Errorf("Set missing should not type-check: %v", err)
	}
}

func TestVectorReproject(t *testing.T) {
	s := testSchema(t)
	v := NewVector(s)
	v.MustSet("topic", CategoricalValue("x"))
	v.MustSet("reports", NumericValue(7))

	target := MustSchema(
		Def{Name: "reports", Kind: Numeric, Set: "D"},
		Def{Name: "other", Kind: Numeric, Set: "Z"},
	)
	got := v.Reproject(target)
	if got.Get("reports").Num != 7 {
		t.Error("reports not carried over")
	}
	if !got.Get("other").Missing {
		t.Error("unknown feature should be missing")
	}
}

func TestVectorClone(t *testing.T) {
	s := testSchema(t)
	v := NewVector(s)
	v.MustSet("topic", CategoricalValue("a", "b"))
	v.MustSet("emb", EmbeddingValue([]float64{1, 2, 3}))
	c := v.Clone()
	c.Get("topic").Categories[0] = "mutated"
	c.Get("emb").Vec[0] = 99
	if v.Get("topic").Categories[0] != "a" || v.Get("emb").Vec[0] != 1 {
		t.Error("Clone aliases the original payloads")
	}
}

func TestVectorString(t *testing.T) {
	s := testSchema(t)
	v := NewVector(s)
	v.MustSet("topic", CategoricalValue("b", "a"))
	v.MustSet("reports", NumericValue(2.5))
	got := v.String()
	for _, want := range []string{"topic=[a b]", "reports=2.5"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, want it to contain %q", got, want)
		}
	}
	if strings.Contains(got, "emb") {
		t.Errorf("String() = %q should omit missing features", got)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{[]string{"x"}, []string{"x"}, 1},
		{[]string{"x"}, []string{"y"}, 0},
		{[]string{"x", "y"}, []string{"y", "z"}, 1.0 / 3.0},
		{[]string{"x", "x", "y"}, []string{"y"}, 0.5}, // duplicates collapse
	}
	for _, tc := range cases {
		if got := Jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	gen := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		out := make([]string, n)
		for i := range out {
			out[i] = string(rune('a' + rng.Intn(8)))
		}
		return out
	}
	symBounded := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(symBounded, nil); err != nil {
		t.Error(err)
	}
	selfOne := func(s int64) bool {
		a := gen(s)
		return Jaccard(a, a) == 1
	}
	if err := quick.Check(selfOne, nil); err != nil {
		t.Error(err)
	}
}

func TestNumericSimilarity(t *testing.T) {
	if got := NumericSimilarity(3, 3, 2); got != 1 {
		t.Errorf("identical values: %v, want 1", got)
	}
	near := NumericSimilarity(0, 1, 5)
	far := NumericSimilarity(0, 10, 5)
	if !(near > far && far > 0) {
		t.Errorf("similarity should decrease with distance: near=%v far=%v", near, far)
	}
	if got := NumericSimilarity(0, 1, 0); got != NumericSimilarity(0, 1, 1) {
		t.Errorf("non-positive scale should fall back to 1: %v", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel = %v, want 1", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal = %v, want 0", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{-1, 0}); math.Abs(got+1) > 1e-12 {
		t.Errorf("antiparallel = %v, want -1", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero vector = %v, want 0", got)
	}
	if got := CosineSimilarity([]float64{1}, []float64{1, 2}); got != 0 {
		t.Errorf("length mismatch = %v, want 0", got)
	}
}

func TestWeightAlgorithm1Example(t *testing.T) {
	// Paper §4.4 worked example: Ft = (True, outdoor), Fi = (False, outdoor)
	// gives one agreeing categorical feature out of two; our normalized
	// variant yields (0 + 1) / 2.
	s := MustSchema(
		Def{Name: "profanity", Kind: Categorical, Set: "A"},
		Def{Name: "setting", Kind: Categorical, Set: "A"},
	)
	ft := NewVector(s)
	ft.MustSet("profanity", CategoricalValue("true"))
	ft.MustSet("setting", CategoricalValue("outdoor"))
	fi := NewVector(s)
	fi.MustSet("profanity", CategoricalValue("false"))
	fi.MustSet("setting", CategoricalValue("outdoor"))
	if got := Weight(ft, fi, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Weight = %v, want 0.5", got)
	}
}

func TestWeightSkipsMissing(t *testing.T) {
	s := testSchema(t)
	a, b := NewVector(s), NewVector(s)
	if got := Weight(a, b, nil); got != 0 {
		t.Errorf("all-missing Weight = %v, want 0", got)
	}
	a.MustSet("reports", NumericValue(1))
	b.MustSet("reports", NumericValue(1))
	a.MustSet("topic", CategoricalValue("x")) // b's topic missing: ignored
	if got := Weight(a, b, Scales{"reports": 1}); got != 1 {
		t.Errorf("Weight = %v, want 1 (only shared feature agrees)", got)
	}
}

func TestWeightBoundsProperty(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(42))
	randVec := func() *Vector {
		v := NewVector(s)
		if rng.Intn(4) > 0 {
			v.MustSet("topic", CategoricalValue(string(rune('a'+rng.Intn(4)))))
		}
		if rng.Intn(4) > 0 {
			v.MustSet("reports", NumericValue(rng.NormFloat64()*5))
		}
		if rng.Intn(4) > 0 {
			v.MustSet("emb", EmbeddingValue([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}))
		}
		return v
	}
	scales := Scales{"reports": 5}
	for i := 0; i < 500; i++ {
		a, b := randVec(), randVec()
		w, w2 := Weight(a, b, scales), Weight(b, a, scales)
		if w < 0 || w > 1 {
			t.Fatalf("Weight out of [0,1]: %v", w)
		}
		if math.Abs(w-w2) > 1e-12 {
			t.Fatalf("Weight not symmetric: %v vs %v", w, w2)
		}
	}
}

func TestFitScales(t *testing.T) {
	s := testSchema(t)
	var vecs []*Vector
	for _, x := range []float64{0, 10} {
		v := NewVector(s)
		v.MustSet("reports", NumericValue(x))
		vecs = append(vecs, v)
	}
	scales := FitScales(s, vecs)
	if math.Abs(scales["reports"]-5) > 1e-12 {
		t.Errorf("scale = %v, want 5 (mean abs deviation)", scales["reports"])
	}
	if _, ok := scales["topic"]; ok {
		t.Error("categorical feature should have no scale")
	}
	empty := FitScales(s, nil)
	if empty["reports"] != 1 {
		t.Errorf("empty-data scale = %v, want 1", empty["reports"])
	}
}
