package feature

import (
	"math"
	"math/rand"
	"testing"
)

func vecWith(t *testing.T, s *Schema, topic string, reports float64) *Vector {
	t.Helper()
	v := NewVector(s)
	v.MustSet("topic", CategoricalValue(topic))
	v.MustSet("reports", NumericValue(reports))
	return v
}

func TestVectorizerLayoutAndWidth(t *testing.T) {
	s := testSchema(t)
	train := []*Vector{
		vecWith(t, s, "sports", 0),
		vecWith(t, s, "news", 10),
	}
	vz := FitVectorizer(s, train)
	// topic: 2 vocab + OOV + missing = 4
	// objects: 0 vocab + OOV + missing = 2
	// reports: value + missing = 2
	// emb: 3 + missing = 4
	if vz.Width() != 12 {
		t.Fatalf("Width = %d, want 12", vz.Width())
	}
	start, end, ok := vz.FeatureSpan("reports")
	if !ok || end-start != 2 {
		t.Errorf("FeatureSpan(reports) = %d..%d,%v", start, end, ok)
	}
	if _, _, ok := vz.FeatureSpan("nope"); ok {
		t.Error("FeatureSpan should fail for unknown feature")
	}
}

func TestVectorizerOneHot(t *testing.T) {
	s := testSchema(t)
	train := []*Vector{
		vecWith(t, s, "sports", 0),
		vecWith(t, s, "news", 10),
	}
	vz := FitVectorizer(s, train)
	row := vz.Transform(train[0])
	start, _, _ := vz.FeatureSpan("topic")
	voc := vz.Vocabulary("topic")
	slot, ok := voc.Index("sports")
	if !ok {
		t.Fatal("sports not in vocabulary")
	}
	if row[start+slot] != 1 {
		t.Error("one-hot slot not set")
	}
	// OOV category lights the OOV slot, not a word slot.
	oov := vecWith(t, s, "zebra", 5)
	row = vz.Transform(oov)
	if row[start+voc.Len()] != 1 {
		t.Error("OOV slot not set")
	}
	// Missing categorical lights the missing indicator.
	missing := NewVector(s)
	row = vz.Transform(missing)
	if row[start+voc.Len()+1] != 1 {
		t.Error("missing indicator not set")
	}
}

func TestVectorizerStandardization(t *testing.T) {
	s := testSchema(t)
	train := []*Vector{
		vecWith(t, s, "a", 0),
		vecWith(t, s, "a", 10),
	}
	vz := FitVectorizer(s, train)
	start, _, _ := vz.FeatureSpan("reports")
	r0 := vz.Transform(train[0])[start]
	r1 := vz.Transform(train[1])[start]
	if math.Abs(r0+1) > 1e-9 || math.Abs(r1-1) > 1e-9 {
		t.Errorf("standardized values = %v, %v; want -1, +1", r0, r1)
	}
}

func TestVectorizerConstantNumeric(t *testing.T) {
	s := testSchema(t)
	train := []*Vector{vecWith(t, s, "a", 7), vecWith(t, s, "a", 7)}
	vz := FitVectorizer(s, train)
	start, _, _ := vz.FeatureSpan("reports")
	if got := vz.Transform(train[0])[start]; got != 0 {
		t.Errorf("constant feature should standardize to 0, got %v", got)
	}
}

func TestVectorizerEmbedding(t *testing.T) {
	s := testSchema(t)
	v := NewVector(s)
	v.MustSet("emb", EmbeddingValue([]float64{0.5, -1, 2}))
	vz := FitVectorizer(s, []*Vector{v})
	row := vz.Transform(v)
	start, _, _ := vz.FeatureSpan("emb")
	want := []float64{0.5, -1, 2, 0}
	for i, w := range want {
		if row[start+i] != w {
			t.Errorf("emb[%d] = %v, want %v", i, row[start+i], w)
		}
	}
	row = vz.Transform(NewVector(s))
	if row[start+3] != 1 {
		t.Error("embedding missing indicator not set")
	}
}

func TestVectorizerMaxVocabulary(t *testing.T) {
	s := testSchema(t)
	var train []*Vector
	// "common" appears 10 times, the rest once each.
	for i := 0; i < 10; i++ {
		train = append(train, vecWith(t, s, "common", 0))
	}
	for _, rare := range []string{"r1", "r2", "r3"} {
		train = append(train, vecWith(t, s, rare, 0))
	}
	vz := FitVectorizer(s, train, WithMaxVocabulary(2))
	voc := vz.Vocabulary("topic")
	if voc.Len() != 2 {
		t.Fatalf("vocab len = %d, want 2", voc.Len())
	}
	if _, ok := voc.Index("common"); !ok {
		t.Error("most frequent category dropped by cap")
	}
}

func TestVectorizerTransformAllMatchesTransform(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(7))
	var train []*Vector
	for i := 0; i < 20; i++ {
		train = append(train, vecWith(t, s, string(rune('a'+rng.Intn(5))), rng.NormFloat64()))
	}
	vz := FitVectorizer(s, train)
	rows := vz.TransformAll(train)
	for i, v := range train {
		single := vz.Transform(v)
		for j := range single {
			if rows[i][j] != single[j] {
				t.Fatalf("TransformAll[%d][%d] = %v, Transform = %v", i, j, rows[i][j], single[j])
			}
		}
	}
}

func TestVectorizerTransformIntoPanicsOnBadLength(t *testing.T) {
	s := testSchema(t)
	vz := FitVectorizer(s, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong row length")
		}
	}()
	vz.TransformInto(NewVector(s), make([]float64, 1))
}
