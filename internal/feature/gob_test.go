package feature

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"
)

// fitSampleVectorizer builds a vectorizer over all three feature kinds with
// missing values sprinkled in.
func fitSampleVectorizer(t *testing.T, maxVoc int) (*Vectorizer, []*Vector) {
	t.Helper()
	schema := MustSchema(
		Def{Name: "topic", Kind: Categorical, Set: "C", Servable: true},
		Def{Name: "kw", Kind: Categorical, Set: "C", Servable: true},
		Def{Name: "score", Kind: Numeric, Set: "A", Servable: true},
		Def{Name: "emb", Kind: Embedding, Set: "I", Servable: true, Dim: 3},
	)
	rng := rand.New(rand.NewSource(42))
	var vecs []*Vector
	for i := 0; i < 200; i++ {
		v := NewVector(schema)
		if rng.Float64() < 0.9 {
			v.MustSet("topic", CategoricalValue(fmt.Sprintf("t%d", rng.Intn(7))))
		}
		if rng.Float64() < 0.8 {
			v.MustSet("kw", CategoricalValue(fmt.Sprintf("k%d", rng.Intn(30)), fmt.Sprintf("k%d", rng.Intn(30))))
		}
		if rng.Float64() < 0.95 {
			v.MustSet("score", NumericValue(rng.NormFloat64()*3+1))
		}
		if rng.Float64() < 0.7 {
			v.MustSet("emb", EmbeddingValue([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}))
		}
		vecs = append(vecs, v)
	}
	return FitVectorizer(schema, vecs, WithMaxVocabulary(maxVoc)), vecs
}

func TestVectorizerGobRoundTripExact(t *testing.T) {
	for _, maxVoc := range []int{0, 10} {
		t.Run(fmt.Sprintf("maxVoc=%d", maxVoc), func(t *testing.T) {
			vz, vecs := fitSampleVectorizer(t, maxVoc)
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(vz); err != nil {
				t.Fatal(err)
			}
			var got Vectorizer
			if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
				t.Fatal(err)
			}
			if got.Width() != vz.Width() {
				t.Fatalf("width %d, want %d", got.Width(), vz.Width())
			}
			for i, v := range vecs {
				w, g := vz.Transform(v), got.Transform(v)
				for j := range w {
					if w[j] != g[j] {
						t.Fatalf("vector %d col %d: %v != %v", i, j, w[j], g[j])
					}
				}
			}
			// OOV and all-missing inputs must also encode identically.
			oov := NewVector(vz.Schema())
			oov.MustSet("topic", CategoricalValue("never-seen"))
			w, g := vz.Transform(oov), got.Transform(oov)
			for j := range w {
				if w[j] != g[j] {
					t.Fatalf("oov col %d: %v != %v", j, w[j], g[j])
				}
			}
		})
	}
}

func TestVectorizerGobDecodeRejectsGarbage(t *testing.T) {
	var vz Vectorizer
	if err := vz.GobDecode([]byte("garbage")); err == nil {
		t.Fatal("garbage payload accepted")
	}
}
