package feature

import "sync"

// The category interner maps category strings to dense uint32 IDs so the
// similarity hot path can intersect categorical sets by integer merge
// instead of hashing strings into a per-pair map. The table is process-wide
// rather than per-Schema: IDs are then stable across Reproject/Clone (which
// carry values between schemas), and a value interned once never needs
// re-interning. Only ID *equality* is ever consulted — Jaccard depends on
// intersection/union counts, not ID order — so the assignment order being
// scheduling-dependent under parallel featurization cannot leak into
// results.
var interner = struct {
	sync.RWMutex
	ids map[string]uint32
}{ids: make(map[string]uint32, 256)}

// internID returns the dense ID of category c, assigning the next free ID
// on first sight. Safe for concurrent use; the read path is an RLock, so
// steady-state featurization only shares the lock.
func internID(c string) uint32 {
	interner.RLock()
	id, ok := interner.ids[c]
	interner.RUnlock()
	if ok {
		return id
	}
	interner.Lock()
	defer interner.Unlock()
	if id, ok = interner.ids[c]; ok {
		return id
	}
	id = uint32(len(interner.ids))
	interner.ids[c] = id
	return id
}

// internCategories returns the sorted, deduplicated intern IDs of cats, or
// nil when cats is empty. Category sets are tiny (a handful of values), so
// an insertion sort beats sort.Slice and allocates nothing beyond the
// result.
func internCategories(cats []string) []uint32 {
	if len(cats) == 0 {
		return nil
	}
	ids := make([]uint32, len(cats))
	for i, c := range cats {
		ids[i] = internID(c)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	// Dedupe in place (multisets collapse to sets, matching Jaccard).
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// InternedCategories returns the value's categories as sorted, deduplicated
// intern IDs — the integer sets the similarity hot path intersects, exposed
// so approximate indexes (MinHash-LSH over categorical sets in
// internal/labelprop) can hash exactly what the exact kernel compares.
// Values that entered a Vector via Set return their cached ID set; values
// that never did (hand-built in tests) intern on the fly. Missing or empty
// values return nil. Callers must not mutate the returned slice.
func (v Value) InternedCategories() []uint32 {
	if v.Missing || len(v.Categories) == 0 {
		return nil
	}
	if v.catIDs != nil {
		return v.catIDs
	}
	return internCategories(v.Categories)
}

// JaccardIDs returns the Jaccard similarity of two sorted, deduplicated
// intern-ID sets by allocation-free sorted merge. Two empty sets have
// similarity 1, mirroring Jaccard.
func JaccardIDs(a, b []uint32) float64 {
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// SimKernel is a compiled similarity kernel for one schema: feature kinds,
// numeric scales, and importance weights resolved from their name-keyed
// maps into index-aligned slices once, so the per-pair path performs no map
// lookups and no allocations. Build one per graph-construction or
// weight-fitting call; all vectors scored by the kernel must carry the
// kernel's schema.
type SimKernel struct {
	kinds   []Kind
	scales  []float64 // per feature index; <= 0 falls back to 1 (NumericSimilarity)
	weights []float64 // per feature index; <= 0 drops the feature
}

// NewSimKernel compiles scales and weights against schema. nil weights mean
// uniform weight 1, matching WeightedSimilarity.
func NewSimKernel(schema *Schema, scales Scales, weights Weights) *SimKernel {
	n := schema.Len()
	k := &SimKernel{
		kinds:   make([]Kind, n),
		scales:  make([]float64, n),
		weights: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		d := schema.Def(i)
		k.kinds[i] = d.Kind
		k.scales[i] = scales[d.Name]
		w := 1.0
		if weights != nil {
			if got, exists := weights[d.Name]; exists {
				w = got
			}
		}
		k.weights[i] = w
	}
	return k
}

// Similarity is the kernel form of the package-level Similarity: the [0,1]
// contribution of feature position i between two vectors, and false when
// the feature is missing on either side.
func (k *SimKernel) Similarity(a, b *Vector, i int) (float64, bool) {
	av, bv := &a.values[i], &b.values[i]
	if av.Missing || bv.Missing {
		return 0, false
	}
	switch k.kinds[i] {
	case Categorical:
		return categoricalSimilarity(av, bv), true
	case Numeric:
		return NumericSimilarity(av.Num, bv.Num, k.scales[i]), true
	case Embedding:
		return (CosineSimilarity(av.Vec, bv.Vec) + 1) / 2, true
	default:
		return 0, false
	}
}

// Weighted is the kernel form of WeightedSimilarity: the weighted mean of
// per-feature similarities over features present on both sides. It performs
// no allocations and no map lookups per pair, and returns bit-identical
// results to WeightedSimilarity with the maps the kernel was compiled from.
func (k *SimKernel) Weighted(a, b *Vector) float64 {
	var sum, wsum float64
	for i := range k.kinds {
		w := k.weights[i]
		if w <= 0 {
			continue
		}
		s, ok := k.Similarity(a, b, i)
		if !ok {
			continue
		}
		sum += w * s
		wsum += w
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// categoricalSimilarity intersects two categorical values, preferring the
// interned-ID merge and falling back to the string kernel for values that
// never passed through Vector.Set (hand-built Values in tests).
func categoricalSimilarity(av, bv *Value) float64 {
	if (av.catIDs != nil || len(av.Categories) == 0) &&
		(bv.catIDs != nil || len(bv.Categories) == 0) {
		return JaccardIDs(av.catIDs, bv.catIDs)
	}
	return Jaccard(av.Categories, bv.Categories)
}
