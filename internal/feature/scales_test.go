package feature

import (
	"math"
	"testing"

	"crossmodal/internal/xrand"
)

// TestScalesAccumMatchesFitScales: the chunked accumulator must reproduce
// FitScales to the last bit regardless of chunk size, including features
// with missing values, a never-observed feature, and a zero-spread feature.
func TestScalesAccumMatchesFitScales(t *testing.T) {
	schema := MustSchema(
		Def{Name: "a", Kind: Numeric},
		Def{Name: "b", Kind: Numeric},
		Def{Name: "never", Kind: Numeric},
		Def{Name: "const", Kind: Numeric},
		Def{Name: "cat", Kind: Categorical},
	)
	rng := xrand.New(99)
	vecs := make([]*Vector, 501)
	for i := range vecs {
		v := NewVector(schema)
		if i%3 != 0 {
			v.MustSet("a", NumericValue(rng.NormFloat64()*7+3))
		}
		if i%7 != 0 {
			v.MustSet("b", NumericValue(rng.Float64()*1e-9))
		}
		v.MustSet("const", NumericValue(2.5))
		if i%2 == 0 {
			v.MustSet("cat", CategoricalValue("x"))
		}
		vecs[i] = v
	}
	want := FitScales(schema, vecs)
	if want["never"] != 1 || want["const"] != 1 {
		t.Fatalf("FitScales degenerate handling changed: %v", want)
	}

	for _, chunk := range []int{1, 17, 100, 1000} {
		acc := NewScalesAccum(schema)
		for lo := 0; lo < len(vecs); lo += chunk {
			hi := lo + chunk
			if hi > len(vecs) {
				hi = len(vecs)
			}
			acc.AddMeans(vecs[lo:hi])
		}
		acc.FinishMeans()
		for lo := 0; lo < len(vecs); lo += chunk {
			hi := lo + chunk
			if hi > len(vecs) {
				hi = len(vecs)
			}
			acc.AddDevs(vecs[lo:hi])
		}
		got := acc.Scales()
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d scales, want %d", chunk, len(got), len(want))
		}
		for name, w := range want {
			if math.Float64bits(got[name]) != math.Float64bits(w) {
				t.Fatalf("chunk=%d: scale %q = %v (%#x), want %v (%#x)",
					chunk, name, got[name], math.Float64bits(got[name]), w, math.Float64bits(w))
			}
		}
	}
}

func TestScalesAccumPhaseDiscipline(t *testing.T) {
	schema := MustSchema(Def{Name: "a", Kind: Numeric})
	acc := NewScalesAccum(schema)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s out of phase did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("AddDevs", func() { acc.AddDevs(nil) })
	mustPanic("Scales", func() { _ = acc.Scales() })
	acc.FinishMeans()
	mustPanic("AddMeans", func() { acc.AddMeans(nil) })
	mustPanic("FinishMeans", func() { acc.FinishMeans() })
	_ = acc.Scales()
}
