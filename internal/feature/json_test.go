package feature

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := testSchema(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schema
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if got.Def(i) != s.Def(i) {
			t.Errorf("def %d = %+v, want %+v", i, got.Def(i), s.Def(i))
		}
	}
}

func TestSchemaJSONRejectsBadKind(t *testing.T) {
	var s Schema
	if err := json.Unmarshal([]byte(`[{"name":"x","kind":"weird"}]`), &s); err == nil {
		t.Error("expected unknown-kind error")
	}
	if err := json.Unmarshal([]byte(`not json`), &s); err == nil {
		t.Error("expected syntax error")
	}
	if err := json.Unmarshal([]byte(`[{"name":"a","kind":"numeric"},{"name":"a","kind":"numeric"}]`), &s); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestVectorJSONRoundTrip(t *testing.T) {
	s := testSchema(t)
	v := NewVector(s)
	v.MustSet("topic", CategoricalValue("sports", "news"))
	v.MustSet("reports", NumericValue(3.25))
	v.MustSet("emb", EmbeddingValue([]float64{1, -2, 0.5}))
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVector(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Get("topic").HasCategory("news") {
		t.Error("categories lost")
	}
	if got.Get("reports").Num != 3.25 {
		t.Error("numeric lost")
	}
	if got.Get("emb").Vec[1] != -2 {
		t.Error("embedding lost")
	}
	if !got.Get("objects").Missing {
		t.Error("absent feature should stay missing")
	}
}

func TestVectorJSONEmptyCategorical(t *testing.T) {
	// A present-but-empty category set must survive the round trip (it is
	// distinct from missing).
	s := testSchema(t)
	v := NewVector(s)
	v.MustSet("topic", CategoricalValue())
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "topic") {
		t.Fatalf("empty categorical dropped: %s", data)
	}
	got, err := UnmarshalVector(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get("topic").Missing {
		t.Error("present empty set decoded as missing")
	}
}

func TestUnmarshalVectorValidation(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name    string
		payload string
	}{
		{"unknown feature", `{"bogus":{"num":1}}`},
		{"wrong shape for categorical", `{"topic":{"num":1}}`},
		{"wrong shape for numeric", `{"reports":{"cats":["x"]}}`},
		{"wrong shape for embedding", `{"emb":{"num":1}}`},
		{"wrong embedding dim", `{"emb":{"vec":[1,2]}}`},
		{"syntax", `nope`},
	}
	for _, tc := range cases {
		if _, err := UnmarshalVector(s, []byte(tc.payload)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
