// Package feature implements the common, structured feature space that
// bridges data modalities (paper §3).
//
// Organizational resources transform data points of any modality into
// categorical, numeric, or embedding feature values. A Schema describes the
// set of features a pipeline uses; a Vector holds one data point's values
// under a Schema. The package also implements the graph-weight computation of
// paper Algorithm 1 (Jaccard similarity for categorical features, normalized
// distance for numeric features) and one-hot vectorization for model
// training.
package feature

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies a feature's value type.
type Kind int

const (
	// Categorical features hold a (possibly empty) set of category strings.
	// The paper calls these "multivalent categorical" features; most
	// organizational-resource outputs are of this kind.
	Categorical Kind = iota
	// Numeric features hold a single float64 (aggregate statistics,
	// scores, counts).
	Numeric
	// Embedding features hold a fixed-length dense vector (e.g. the
	// pre-trained image embedding). Embeddings are used for model inputs
	// and for label-propagation similarity, but not for itemset mining.
	Embedding
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	case Embedding:
		return "embedding"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Def describes a single feature in a Schema.
type Def struct {
	// Name uniquely identifies the feature within a Schema.
	Name string
	// Kind is the value type.
	Kind Kind
	// Set is the organizational-service set the feature belongs to
	// ("A".."D" in the paper's evaluation). Sets let experiments include
	// or exclude whole families of services.
	Set string
	// Servable reports whether the feature can be computed at inference
	// time. Nonservable features (paper §4.1) may be used to build
	// labeling functions and propagation graphs, but are excluded from
	// discriminative end models.
	Servable bool
	// Dim is the vector length for Embedding features and 0 otherwise.
	Dim int
}

// Schema is an ordered collection of feature definitions.
// The zero value is an empty schema ready for use.
type Schema struct {
	defs  []Def
	index map[string]int
}

// NewSchema builds a schema from defs. It returns an error if two features
// share a name or an embedding feature has a non-positive dimension.
func NewSchema(defs ...Def) (*Schema, error) {
	s := &Schema{index: make(map[string]int, len(defs))}
	for _, d := range defs {
		if err := s.add(d); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and
// statically known schemas.
func MustSchema(defs ...Def) *Schema {
	s, err := NewSchema(defs...)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Schema) add(d Def) error {
	if d.Name == "" {
		return fmt.Errorf("feature: empty feature name")
	}
	if s.index == nil {
		s.index = make(map[string]int)
	}
	if _, dup := s.index[d.Name]; dup {
		return fmt.Errorf("feature: duplicate feature %q", d.Name)
	}
	if d.Kind == Embedding && d.Dim <= 0 {
		return fmt.Errorf("feature: embedding feature %q needs Dim > 0", d.Name)
	}
	if d.Kind != Embedding && d.Dim != 0 {
		return fmt.Errorf("feature: non-embedding feature %q must have Dim == 0", d.Name)
	}
	s.index[d.Name] = len(s.defs)
	s.defs = append(s.defs, d)
	return nil
}

// Len returns the number of features in the schema.
func (s *Schema) Len() int { return len(s.defs) }

// Def returns the i'th feature definition.
func (s *Schema) Def(i int) Def { return s.defs[i] }

// Defs returns a copy of all feature definitions in order.
func (s *Schema) Defs() []Def {
	out := make([]Def, len(s.defs))
	copy(out, s.defs)
	return out
}

// Index returns the position of the named feature and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns all feature names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.defs))
	for i, d := range s.defs {
		out[i] = d.Name
	}
	return out
}

// Project returns a new schema containing only the features for which keep
// returns true, preserving order.
func (s *Schema) Project(keep func(Def) bool) *Schema {
	out := &Schema{index: make(map[string]int)}
	for _, d := range s.defs {
		if keep(d) {
			// add cannot fail: names were unique in the source.
			_ = out.add(d)
		}
	}
	return out
}

// Servable returns the sub-schema of servable features; the end
// discriminative model may only consume these (paper §4.1, §6.4).
func (s *Schema) Servable() *Schema {
	return s.Project(func(d Def) bool { return d.Servable })
}

// Sets returns the sub-schema of features whose Set is one of sets.
// An empty sets list selects nothing.
func (s *Schema) Sets(sets ...string) *Schema {
	want := make(map[string]bool, len(sets))
	for _, set := range sets {
		want[set] = true
	}
	return s.Project(func(d Def) bool { return want[d.Set] })
}

// String renders the schema as "name:kind[set]" terms for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, d := range s.defs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s[%s]", d.Name, d.Kind, d.Set)
		if !d.Servable {
			b.WriteString("(nonservable)")
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Value holds one feature value. Exactly one of the payload fields is
// meaningful, selected by the owning Def's Kind; Missing marks a feature the
// generating service could not compute for this data point (e.g. a
// text-specific service applied to an image).
type Value struct {
	Categories []string  // Categorical payload (a set; order is not significant).
	Num        float64   // Numeric payload.
	Vec        []float64 // Embedding payload.
	Missing    bool

	// catIDs caches Categories as sorted, deduplicated intern IDs; filled
	// when the value enters a Vector (Vector.Set) so the similarity hot
	// path intersects integer sets instead of hashing strings. Categories
	// must not be mutated after Set, or the cache goes stale.
	catIDs []uint32
}

// CategoricalValue returns a present categorical value with the given
// categories.
func CategoricalValue(categories ...string) Value {
	return Value{Categories: categories}
}

// NumericValue returns a present numeric value.
func NumericValue(v float64) Value { return Value{Num: v} }

// EmbeddingValue returns a present embedding value.
func EmbeddingValue(vec []float64) Value { return Value{Vec: vec} }

// MissingValue returns the distinguished missing value.
func MissingValue() Value { return Value{Missing: true} }

// HasCategory reports whether the value contains category c.
func (v Value) HasCategory(c string) bool {
	if v.Missing {
		return false
	}
	for _, got := range v.Categories {
		if got == c {
			return true
		}
	}
	return false
}

// Vector is one data point's feature values under a Schema, indexed in
// schema order.
type Vector struct {
	schema *Schema
	values []Value
	// degraded lists channels whose service calls failed when this vector
	// was featurized through the checked path: their values are Missing not
	// because the resource abstained but because it was unreachable. The
	// annotation is in-memory only (it does not persist through JSON).
	degraded []string
}

// NewVector returns an all-missing vector for schema.
func NewVector(schema *Schema) *Vector {
	values := make([]Value, schema.Len())
	for i := range values {
		values[i].Missing = true
	}
	return &Vector{schema: schema, values: values}
}

// Schema returns the vector's schema.
func (v *Vector) Schema() *Schema { return v.schema }

// Set assigns the named feature's value. It returns an error if the feature
// does not exist or the value shape does not match the feature kind.
func (v *Vector) Set(name string, val Value) error {
	i, ok := v.schema.Index(name)
	if !ok {
		return fmt.Errorf("feature: unknown feature %q", name)
	}
	if !val.Missing {
		d := v.schema.Def(i)
		if d.Kind == Embedding && len(val.Vec) != d.Dim {
			return fmt.Errorf("feature: embedding %q wants dim %d, got %d", name, d.Dim, len(val.Vec))
		}
		// Vectorize time is when categorical values are interned: every
		// vector-borne value carries its ID set from here on, so pairwise
		// similarity never touches the strings again.
		if d.Kind == Categorical && val.catIDs == nil {
			val.catIDs = internCategories(val.Categories)
		}
	}
	v.values[i] = val
	return nil
}

// MustSet is Set that panics on error; for construction of statically known
// vectors.
func (v *Vector) MustSet(name string, val Value) {
	if err := v.Set(name, val); err != nil {
		panic(err)
	}
}

// Get returns the named feature's value; missing names yield a missing value.
func (v *Vector) Get(name string) Value {
	i, ok := v.schema.Index(name)
	if !ok {
		return MissingValue()
	}
	return v.values[i]
}

// At returns the value at schema position i.
func (v *Vector) At(i int) Value { return v.values[i] }

// MarkDegraded records channels whose featurization failed (a copy is
// taken). Passing an empty slice clears the annotation.
func (v *Vector) MarkDegraded(channels []string) {
	if len(channels) == 0 {
		v.degraded = nil
		return
	}
	v.degraded = append([]string(nil), channels...)
}

// Degraded returns the channels recorded by MarkDegraded (nil for a fully
// featurized vector). Callers must not mutate the returned slice.
func (v *Vector) Degraded() []string { return v.degraded }

// Reproject copies the vector onto target, carrying over values for features
// that exist in both schemas (matched by name) and leaving the rest missing.
func (v *Vector) Reproject(target *Schema) *Vector {
	out := NewVector(target)
	for i, d := range v.schema.defs {
		if j, ok := target.Index(d.Name); ok {
			out.values[j] = v.values[i]
		}
	}
	return out
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	out := &Vector{schema: v.schema, values: make([]Value, len(v.values))}
	if v.degraded != nil {
		out.degraded = append([]string(nil), v.degraded...)
	}
	for i, val := range v.values {
		cp := val
		if val.Categories != nil {
			cp.Categories = append([]string(nil), val.Categories...)
			// The copy owns its categories and may mutate them, which
			// would stale a shared intern cache; drop it and let Set (or
			// the string fallback) rebuild on demand.
			cp.catIDs = nil
		}
		if val.Vec != nil {
			cp.Vec = append([]float64(nil), val.Vec...)
		}
		out.values[i] = cp
	}
	return out
}

// String renders the non-missing entries as "name=value" pairs.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, d := range v.schema.defs {
		val := v.values[i]
		if val.Missing {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		switch d.Kind {
		case Categorical:
			cats := append([]string(nil), val.Categories...)
			sort.Strings(cats)
			fmt.Fprintf(&b, "%s=[%s]", d.Name, strings.Join(cats, " "))
		case Numeric:
			fmt.Fprintf(&b, "%s=%.4g", d.Name, val.Num)
		case Embedding:
			fmt.Fprintf(&b, "%s=vec(%d)", d.Name, len(val.Vec))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Jaccard returns the Jaccard similarity |a∩b| / |a∪b| of two category sets
// (duplicates collapse). Two empty sets are defined to have similarity 1.
// Category sets are tiny, so quadratic in-place scans beat a hash map and
// allocate nothing; interned values take the sorted-merge JaccardIDs path
// instead.
func Jaccard(a, b []string) float64 {
	inter, union := 0, 0
	for i, s := range a {
		if containsBefore(a, i, s) {
			continue // duplicate within a
		}
		union++
		if contains(b, s) {
			inter++
		}
	}
	for i, s := range b {
		if containsBefore(b, i, s) {
			continue // duplicate within b
		}
		if !contains(a, s) {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func contains(set []string, s string) bool {
	for _, t := range set {
		if t == s {
			return true
		}
	}
	return false
}

func containsBefore(set []string, i int, s string) bool {
	for _, t := range set[:i] {
		if t == s {
			return true
		}
	}
	return false
}

// NumericSimilarity maps an absolute difference to (0, 1] using the feature's
// characteristic scale: exp(-|a-b|/scale). This is the normalized numeric
// contribution the paper's Algorithm 1 alludes to ("each feature's
// contribution is normalized"). A non-positive scale is treated as 1.
func NumericSimilarity(a, b, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	return math.Exp(-math.Abs(a-b) / scale)
}

// CosineSimilarity returns the cosine similarity of two equal-length vectors,
// or 0 if either has zero norm or the lengths differ.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Scales holds per-feature characteristic scales for numeric similarity,
// keyed by feature name. FitScales estimates them from data.
type Scales map[string]float64

// FitScales estimates a characteristic scale for every numeric feature as
// the mean absolute deviation over the non-missing values in vectors.
// Features with no observed spread get scale 1.
func FitScales(schema *Schema, vectors []*Vector) Scales {
	scales := make(Scales)
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		if d.Kind != Numeric {
			continue
		}
		var sum float64
		var n int
		for _, v := range vectors {
			if val := v.Get(d.Name); !val.Missing {
				sum += val.Num
				n++
			}
		}
		if n == 0 {
			scales[d.Name] = 1
			continue
		}
		mean := sum / float64(n)
		var dev float64
		for _, v := range vectors {
			if val := v.Get(d.Name); !val.Missing {
				dev += math.Abs(val.Num - mean)
			}
		}
		scale := dev / float64(n)
		if scale <= 0 {
			scale = 1
		}
		scales[d.Name] = scale
	}
	return scales
}

// Similarity returns the [0,1] similarity contribution of feature position i
// between two vectors, and false when the feature is missing on either side.
// Categorical features use Jaccard similarity, numeric features normalized
// distance similarity, and embedding features [0,1]-rescaled cosine
// similarity — the per-feature terms of paper Algorithm 1.
func Similarity(a, b *Vector, i int, scales Scales) (float64, bool) {
	av, bv := a.values[i], b.values[i]
	if av.Missing || bv.Missing {
		return 0, false
	}
	d := a.schema.defs[i]
	switch d.Kind {
	case Categorical:
		return categoricalSimilarity(&av, &bv), true
	case Numeric:
		return NumericSimilarity(av.Num, bv.Num, scales[d.Name]), true
	case Embedding:
		return (CosineSimilarity(av.Vec, bv.Vec) + 1) / 2, true
	default:
		return 0, false
	}
}

// Weights holds per-feature importance multipliers for WeightedSimilarity,
// keyed by feature name. Absent features default to weight 1.
type Weights map[string]float64

// Weight implements paper Algorithm 1 (compute-weight): the similarity
// between two data points under their shared schema, as the unweighted mean
// of per-feature Similarity contributions. Features missing on either side
// contribute nothing; the result is in [0, 1], and 0 when the points share
// no present features.
func Weight(a, b *Vector, scales Scales) float64 {
	return WeightedSimilarity(a, b, scales, nil)
}

// WeightedSimilarity generalizes Weight with per-feature importance weights
// (the "each feature's contribution is normalized" refinement of Algorithm
// 1): the weighted mean of per-feature similarities over features present on
// both sides. nil weights mean uniform; non-positive weights drop a feature.
func WeightedSimilarity(a, b *Vector, scales Scales, weights Weights) float64 {
	schema := a.schema
	var sum, wsum float64
	for i := 0; i < schema.Len(); i++ {
		s, ok := Similarity(a, b, i, scales)
		if !ok {
			continue
		}
		w := 1.0
		if weights != nil {
			if got, exists := weights[schema.defs[i].Name]; exists {
				w = got
			}
		}
		if w <= 0 {
			continue
		}
		sum += w * s
		wsum += w
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}
