package feature

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
)

// Gob support for fitted vectorizers, so a trained model artifact can carry
// the exact encoder it was trained with (internal/fusion packages the pair
// together). The wire form stores each vocabulary as its words in slot
// order and rebuilds the index maps and the dense-row layout on decode, so
// a decoded vectorizer produces bit-identical rows to the encoded one.

// vocabWire is one vocabulary's words in slot order.
type vocabWire struct {
	Name  string
	Words []string
}

// statsWire is one numeric feature's standardization parameters.
type statsWire struct {
	Name      string
	Mean, Std float64
}

// vectorizerWireV1 is version 1 of the Vectorizer wire form. The schema
// rides along as its JSON encoding (the schema already defines a stable
// JSON form for the featurestore); vocabularies and stats are sorted by
// feature name so encoding is deterministic.
type vectorizerWireV1 struct {
	Version    int
	SchemaJSON []byte
	Vocabs     []vocabWire
	Stats      []statsWire
	MaxVoc     int
}

const vectorizerWireVersion = 1

// GobEncode implements gob.GobEncoder.
func (vz *Vectorizer) GobEncode() ([]byte, error) {
	schemaJSON, err := json.Marshal(vz.schema)
	if err != nil {
		return nil, fmt.Errorf("feature: encode vectorizer schema: %w", err)
	}
	w := vectorizerWireV1{
		Version:    vectorizerWireVersion,
		SchemaJSON: schemaJSON,
		MaxVoc:     vz.maxVoc,
	}
	// Walk the schema in order so the wire form is deterministic.
	for i := 0; i < vz.schema.Len(); i++ {
		d := vz.schema.Def(i)
		switch d.Kind {
		case Categorical:
			w.Vocabs = append(w.Vocabs, vocabWire{Name: d.Name, Words: vz.vocabs[d.Name].words})
		case Numeric:
			st := vz.stats[d.Name]
			w.Stats = append(w.Stats, statsWire{Name: d.Name, Mean: st.mean, Std: st.std})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (vz *Vectorizer) GobDecode(data []byte) error {
	var w vectorizerWireV1
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("feature: decode vectorizer: %w", err)
	}
	if w.Version != vectorizerWireVersion {
		return fmt.Errorf("feature: vectorizer wire version %d, want %d", w.Version, vectorizerWireVersion)
	}
	schema := &Schema{}
	if err := json.Unmarshal(w.SchemaJSON, schema); err != nil {
		return err
	}
	decoded := &Vectorizer{
		schema: schema,
		vocabs: make(map[string]*Vocabulary, len(w.Vocabs)),
		stats:  make(map[string]numericStats, len(w.Stats)),
		maxVoc: w.MaxVoc,
	}
	for _, vw := range w.Vocabs {
		// Rebuild the index directly from the slot order rather than via
		// NewVocabulary: slot positions must survive the round trip exactly.
		v := &Vocabulary{index: make(map[string]int, len(vw.Words)), words: vw.Words}
		for i, word := range vw.Words {
			v.index[word] = i
		}
		decoded.vocabs[vw.Name] = v
	}
	for _, sw := range w.Stats {
		decoded.stats[sw.Name] = numericStats{mean: sw.Mean, std: sw.Std}
	}
	// Every categorical / numeric feature must have brought its fitted
	// state, or Transform would silently mis-encode.
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		switch d.Kind {
		case Categorical:
			if decoded.vocabs[d.Name] == nil {
				return fmt.Errorf("feature: decode vectorizer: no vocabulary for %q", d.Name)
			}
		case Numeric:
			if _, ok := decoded.stats[d.Name]; !ok {
				return fmt.Errorf("feature: decode vectorizer: no stats for %q", d.Name)
			}
		}
	}
	decoded.layout()
	*vz = *decoded
	return nil
}
