package feature

import (
	"fmt"
	"math/rand"
	"testing"
)

// mapJaccard is the pre-interning map-based implementation, kept verbatim as
// the reference the optimized kernels must match exactly.
func mapJaccard(a, b []string) float64 {
	set := make(map[string]int8)
	for _, c := range a {
		set[c] |= 1
	}
	for _, c := range b {
		set[c] |= 2
	}
	if len(set) == 0 {
		return 1
	}
	inter := 0
	for _, m := range set {
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(len(set))
}

func randomCategories(rng *rand.Rand, pool int) []string {
	n := rng.Intn(6)
	if n == 0 && rng.Intn(4) > 0 {
		return nil
	}
	cats := make([]string, n)
	for i := range cats {
		// Small pool so duplicates within and across sets are common.
		cats[i] = fmt.Sprintf("c%d", rng.Intn(pool))
	}
	return cats
}

// TestJaccardMatchesMapReference property-tests the allocation-free string
// Jaccard and the interned-ID merge against the original map-based
// implementation. Equality must be exact: both compute the same
// intersection/union counts and the same final division.
func TestJaccardMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5000; trial++ {
		a := randomCategories(rng, 8)
		b := randomCategories(rng, 8)
		want := mapJaccard(a, b)
		if got := Jaccard(a, b); got != want {
			t.Fatalf("Jaccard(%v, %v) = %v, map reference %v", a, b, got, want)
		}
		if got := JaccardIDs(internCategories(a), internCategories(b)); got != want {
			t.Fatalf("JaccardIDs(%v, %v) = %v, map reference %v", a, b, got, want)
		}
	}
}

func internTestSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Def{Name: "cat", Kind: Categorical},
		Def{Name: "tags", Kind: Categorical},
		Def{Name: "num", Kind: Numeric},
		Def{Name: "emb", Kind: Embedding, Dim: 8},
	)
}

func randomVector(t *testing.T, rng *rand.Rand, schema *Schema) *Vector {
	t.Helper()
	v := NewVector(schema)
	if rng.Intn(5) > 0 {
		v.MustSet("cat", CategoricalValue(randomCategories(rng, 8)...))
	}
	if rng.Intn(5) > 0 {
		v.MustSet("tags", CategoricalValue(randomCategories(rng, 20)...))
	}
	if rng.Intn(5) > 0 {
		v.MustSet("num", NumericValue(rng.NormFloat64()*3))
	}
	if rng.Intn(5) > 0 {
		emb := make([]float64, 8)
		for i := range emb {
			emb[i] = rng.NormFloat64()
		}
		v.MustSet("emb", EmbeddingValue(emb))
	}
	return v
}

// TestSimKernelMatchesWeightedSimilarity checks the compiled kernel is
// bit-identical to the map-keyed WeightedSimilarity for random vectors,
// scales, and weights (including absent, zero, and negative weights).
func TestSimKernelMatchesWeightedSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	schema := internTestSchema(t)
	for trial := 0; trial < 2000; trial++ {
		scales := Scales{"num": rng.Float64() * 3}
		var weights Weights
		switch rng.Intn(3) {
		case 1:
			weights = Weights{"cat": rng.Float64() * 2, "num": rng.Float64()*2 - 0.5}
		case 2:
			weights = Weights{"tags": 0, "emb": rng.Float64() * 2}
		}
		kern := NewSimKernel(schema, scales, weights)
		a, b := randomVector(t, rng, schema), randomVector(t, rng, schema)
		want := WeightedSimilarity(a, b, scales, weights)
		if got := kern.Weighted(a, b); got != want {
			t.Fatalf("trial %d: kernel %v != WeightedSimilarity %v (weights %v)", trial, got, want, weights)
		}
		for i := 0; i < schema.Len(); i++ {
			ws, wok := Similarity(a, b, i, scales)
			ks, kok := kern.Similarity(a, b, i)
			if ws != ks || wok != kok {
				t.Fatalf("trial %d feature %d: kernel (%v,%v) != Similarity (%v,%v)", trial, i, ks, kok, ws, wok)
			}
		}
	}
}

// TestSimilarityPairAllocFree pins the per-pair hot path at zero allocations:
// the string Jaccard, the interned kernel, and full weighted similarity in
// both its map-keyed and compiled forms.
func TestSimilarityPairAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	schema := internTestSchema(t)
	a, b := randomVector(t, rng, schema), randomVector(t, rng, schema)
	a.MustSet("cat", CategoricalValue("x", "y", "z"))
	b.MustSet("cat", CategoricalValue("y", "z", "w"))
	scales := Scales{"num": 2}
	weights := Weights{"cat": 2, "num": 0.5}
	kern := NewSimKernel(schema, scales, weights)
	cats := []string{"x", "y", "x"}
	for name, fn := range map[string]func(){
		"Jaccard":            func() { Jaccard(cats, cats) },
		"JaccardIDs":         func() { JaccardIDs(a.values[0].catIDs, b.values[0].catIDs) },
		"WeightedSimilarity": func() { WeightedSimilarity(a, b, scales, weights) },
		"SimKernel.Weighted": func() { kern.Weighted(a, b) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per pair, want 0", name, allocs)
		}
	}
}

// TestInternedValueCopySemantics checks the copy paths keep the intern cache
// coherent: Reproject shares the (immutable) payload and keeps the IDs, while
// Clone hands out mutable categories and so must drop the cache rather than
// risk it going stale.
func TestInternedValueCopySemantics(t *testing.T) {
	schema := internTestSchema(t)
	v := NewVector(schema)
	v.MustSet("cat", CategoricalValue("x", "y"))
	if v.values[0].catIDs == nil {
		t.Fatal("Set did not intern categories")
	}
	onlyCat := schema.Project(func(d Def) bool { return d.Name == "cat" })
	if got := v.Reproject(onlyCat).values[0].catIDs; got == nil {
		t.Error("Reproject dropped interned IDs")
	}
	c := v.Clone()
	if c.values[0].catIDs != nil {
		t.Error("Clone kept a cache its mutable categories can stale")
	}
	c.values[0].Categories[0] = "mutated"
	want := Jaccard(c.values[0].Categories, v.values[0].Categories)
	if got := categoricalSimilarity(&c.values[0], &v.values[0]); got != want {
		t.Errorf("mutated clone similarity %v, want string-path %v", got, want)
	}
}

func benchVectors(b *testing.B) (*Vector, *Vector, Scales, Weights) {
	b.Helper()
	rng := rand.New(rand.NewSource(53))
	schema := MustSchema(
		Def{Name: "cat", Kind: Categorical},
		Def{Name: "tags", Kind: Categorical},
		Def{Name: "num", Kind: Numeric},
		Def{Name: "emb", Kind: Embedding, Dim: 16},
	)
	mk := func() *Vector {
		v := NewVector(schema)
		v.MustSet("cat", CategoricalValue(fmt.Sprintf("c%d", rng.Intn(8))))
		v.MustSet("tags", CategoricalValue(
			fmt.Sprintf("t%d", rng.Intn(30)), fmt.Sprintf("t%d", rng.Intn(30)), fmt.Sprintf("t%d", rng.Intn(30))))
		v.MustSet("num", NumericValue(rng.NormFloat64()*3))
		emb := make([]float64, 16)
		for i := range emb {
			emb[i] = rng.NormFloat64()
		}
		v.MustSet("emb", EmbeddingValue(emb))
		return v
	}
	return mk(), mk(), Scales{"num": 2}, Weights{"cat": 1.5, "tags": 0.8}
}

func BenchmarkWeightedSimilarity(b *testing.B) {
	va, vb, scales, weights := benchVectors(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WeightedSimilarity(va, vb, scales, weights)
	}
}

func BenchmarkSimKernelWeighted(b *testing.B) {
	va, vb, scales, weights := benchVectors(b)
	kern := NewSimKernel(va.Schema(), scales, weights)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kern.Weighted(va, vb)
	}
}

func BenchmarkJaccard(b *testing.B) {
	x := []string{"a", "b", "c"}
	y := []string{"b", "c", "d"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(x, y)
	}
}
