package feature

import (
	"fmt"
	"math"
	"sort"

	"crossmodal/internal/mapreduce"
)

// Vocabulary maps the category strings observed for one categorical feature
// to dense one-hot indices. Categories outside the vocabulary map to a shared
// out-of-vocabulary slot so that inference-time inputs never change the
// encoded width.
type Vocabulary struct {
	index map[string]int
	words []string
}

// NewVocabulary builds a vocabulary from the given categories, deduplicated
// and sorted for determinism.
func NewVocabulary(categories []string) *Vocabulary {
	uniq := make(map[string]bool, len(categories))
	for _, c := range categories {
		uniq[c] = true
	}
	words := make([]string, 0, len(uniq))
	for c := range uniq {
		words = append(words, c)
	}
	sort.Strings(words)
	v := &Vocabulary{index: make(map[string]int, len(words)), words: words}
	for i, w := range words {
		v.index[w] = i
	}
	return v
}

// Len returns the number of in-vocabulary categories.
func (v *Vocabulary) Len() int { return len(v.words) }

// Index returns the slot for category c and whether c is in-vocabulary.
func (v *Vocabulary) Index(c string) (int, bool) {
	i, ok := v.index[c]
	return i, ok
}

// Words returns the vocabulary contents in slot order.
func (v *Vocabulary) Words() []string {
	return append([]string(nil), v.words...)
}

// numericStats holds standardization parameters for one numeric feature.
type numericStats struct {
	mean, std float64
}

// Vectorizer converts Vectors into dense float64 rows for model training:
// categorical features one-hot (multi-hot) encode against a fitted
// vocabulary plus an OOV slot and a missing indicator; numeric features are
// standardized and paired with a missing indicator; embedding features are
// copied through. Fit on training data once, then Transform anywhere.
type Vectorizer struct {
	schema  *Schema
	vocabs  map[string]*Vocabulary
	stats   map[string]numericStats
	offsets []int
	width   int
	maxVoc  int
}

// VectorizerOption configures FitVectorizer.
type VectorizerOption func(*Vectorizer)

// WithMaxVocabulary caps each categorical vocabulary at n most-frequent
// categories (ties broken lexicographically). n <= 0 means unlimited.
func WithMaxVocabulary(n int) VectorizerOption {
	return func(v *Vectorizer) { v.maxVoc = n }
}

// FitVectorizer learns vocabularies and numeric standardization statistics
// from the training vectors, which must all share schema.
func FitVectorizer(schema *Schema, train []*Vector, opts ...VectorizerOption) *Vectorizer {
	vz := &Vectorizer{
		schema: schema,
		vocabs: make(map[string]*Vocabulary),
		stats:  make(map[string]numericStats),
	}
	for _, opt := range opts {
		opt(vz)
	}
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		switch d.Kind {
		case Categorical:
			counts := make(map[string]int)
			for _, v := range train {
				val := v.Get(d.Name)
				if val.Missing {
					continue
				}
				for _, c := range val.Categories {
					counts[c]++
				}
			}
			vz.vocabs[d.Name] = fitVocab(counts, vz.maxVoc)
		case Numeric:
			var sum, sumSq float64
			var n int
			for _, v := range train {
				val := v.Get(d.Name)
				if val.Missing {
					continue
				}
				sum += val.Num
				sumSq += val.Num * val.Num
				n++
			}
			st := numericStats{mean: 0, std: 1}
			if n > 0 {
				st.mean = sum / float64(n)
				variance := sumSq/float64(n) - st.mean*st.mean
				if variance > 1e-12 {
					st.std = math.Sqrt(variance)
				}
			}
			vz.stats[d.Name] = st
		}
	}
	vz.layout()
	return vz
}

func fitVocab(counts map[string]int, maxVoc int) *Vocabulary {
	words := make([]string, 0, len(counts))
	for c := range counts {
		words = append(words, c)
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	if maxVoc > 0 && len(words) > maxVoc {
		words = words[:maxVoc]
	}
	return NewVocabulary(words)
}

// layout computes each feature's offset into the dense row.
func (vz *Vectorizer) layout() {
	vz.offsets = make([]int, vz.schema.Len()+1)
	off := 0
	for i := 0; i < vz.schema.Len(); i++ {
		vz.offsets[i] = off
		d := vz.schema.Def(i)
		switch d.Kind {
		case Categorical:
			// one slot per vocab word + OOV slot + missing indicator
			off += vz.vocabs[d.Name].Len() + 2
		case Numeric:
			// standardized value + missing indicator
			off += 2
		case Embedding:
			// raw vector + missing indicator
			off += d.Dim + 1
		}
	}
	vz.offsets[vz.schema.Len()] = off
	vz.width = off
}

// Width returns the dense row length produced by Transform.
func (vz *Vectorizer) Width() int { return vz.width }

// Schema returns the schema the vectorizer was fitted on.
func (vz *Vectorizer) Schema() *Schema { return vz.schema }

// FeatureSpan returns the [start, end) dense-row columns occupied by the
// named feature, and false if the feature is unknown.
func (vz *Vectorizer) FeatureSpan(name string) (start, end int, ok bool) {
	i, found := vz.schema.Index(name)
	if !found {
		return 0, 0, false
	}
	return vz.offsets[i], vz.offsets[i+1], true
}

// Transform encodes v (which may carry any schema; features are matched by
// name) into a dense row of length Width.
func (vz *Vectorizer) Transform(v *Vector) []float64 {
	row := make([]float64, vz.width)
	vz.TransformInto(v, row)
	return row
}

// TransformInto encodes v into row, which must have length Width.
// It panics if the row length is wrong, since that is a programming error.
func (vz *Vectorizer) TransformInto(v *Vector, row []float64) {
	if len(row) != vz.width {
		panic(fmt.Sprintf("feature: TransformInto row length %d, want %d", len(row), vz.width))
	}
	for i := range row {
		row[i] = 0
	}
	for i := 0; i < vz.schema.Len(); i++ {
		d := vz.schema.Def(i)
		off := vz.offsets[i]
		val := v.Get(d.Name)
		switch d.Kind {
		case Categorical:
			voc := vz.vocabs[d.Name]
			if val.Missing {
				row[off+voc.Len()+1] = 1
				continue
			}
			for _, c := range val.Categories {
				if slot, ok := voc.Index(c); ok {
					row[off+slot] = 1
				} else {
					row[off+voc.Len()] = 1 // OOV
				}
			}
		case Numeric:
			if val.Missing {
				row[off+1] = 1
				continue
			}
			st := vz.stats[d.Name]
			row[off] = (val.Num - st.mean) / st.std
		case Embedding:
			if val.Missing || len(val.Vec) != d.Dim {
				row[off+d.Dim] = 1
				continue
			}
			copy(row[off:off+d.Dim], val.Vec)
		}
	}
}

// transformChunk is how many rows one TransformAll work item encodes; it
// amortizes scheduling without starving the workers.
const transformChunk = 128

// TransformAll encodes a batch of vectors into a row-major matrix, sharding
// the batch across GOMAXPROCS workers.
func (vz *Vectorizer) TransformAll(vectors []*Vector) [][]float64 {
	return vz.TransformAllWorkers(vectors, 0)
}

// TransformAllWorkers is TransformAll with an explicit worker count
// (0 means GOMAXPROCS, 1 is serial). Rows are written into disjoint slices
// of one flat backing array, so the result is identical for any count.
func (vz *Vectorizer) TransformAllWorkers(vectors []*Vector, workers int) [][]float64 {
	rows := make([][]float64, len(vectors))
	flat := make([]float64, len(vectors)*vz.width)
	for i := range rows {
		rows[i] = flat[i*vz.width : (i+1)*vz.width]
	}
	if workers == 1 || len(vectors) <= transformChunk {
		for i, v := range vectors {
			vz.TransformInto(v, rows[i])
		}
		return rows
	}
	nChunks := (len(vectors) + transformChunk - 1) / transformChunk
	chunks := make([]int, nChunks)
	for c := range chunks {
		chunks[c] = c
	}
	// The mapper writes disjoint rows and never errors.
	_, _ = mapreduce.Map(nil, mapreduce.Config{Workers: workers}, chunks, func(c int) (struct{}, error) {
		lo := c * transformChunk
		hi := lo + transformChunk
		if hi > len(vectors) {
			hi = len(vectors)
		}
		for i := lo; i < hi; i++ {
			vz.TransformInto(vectors[i], rows[i])
		}
		return struct{}{}, nil
	})
	return rows
}

// Vocabulary returns the fitted vocabulary of the named categorical feature,
// or nil if the feature is unknown or not categorical.
func (vz *Vectorizer) Vocabulary(name string) *Vocabulary {
	return vz.vocabs[name]
}
