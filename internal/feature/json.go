package feature

import (
	"encoding/json"
	"fmt"
)

// jsonDef is the wire form of a Def.
type jsonDef struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Set      string `json:"set,omitempty"`
	Servable bool   `json:"servable"`
	Dim      int    `json:"dim,omitempty"`
}

// MarshalJSON encodes the schema as an ordered list of feature definitions.
func (s *Schema) MarshalJSON() ([]byte, error) {
	out := make([]jsonDef, s.Len())
	for i, d := range s.defs {
		out[i] = jsonDef{Name: d.Name, Kind: d.Kind.String(), Set: d.Set, Servable: d.Servable, Dim: d.Dim}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a schema previously encoded with MarshalJSON.
func (s *Schema) UnmarshalJSON(data []byte) error {
	var defs []jsonDef
	if err := json.Unmarshal(data, &defs); err != nil {
		return fmt.Errorf("feature: decode schema: %w", err)
	}
	decoded := Schema{index: make(map[string]int, len(defs))}
	for _, jd := range defs {
		var kind Kind
		switch jd.Kind {
		case "categorical":
			kind = Categorical
		case "numeric":
			kind = Numeric
		case "embedding":
			kind = Embedding
		default:
			return fmt.Errorf("feature: unknown kind %q for %q", jd.Kind, jd.Name)
		}
		if err := decoded.add(Def{Name: jd.Name, Kind: kind, Set: jd.Set, Servable: jd.Servable, Dim: jd.Dim}); err != nil {
			return err
		}
	}
	*s = decoded
	return nil
}

// jsonValue is the wire form of one present feature value; exactly one
// payload field is set, keyed by the schema's kind on decode.
type jsonValue struct {
	Categories []string  `json:"cats,omitempty"`
	Num        *float64  `json:"num,omitempty"`
	Vec        []float64 `json:"vec,omitempty"`
}

// MarshalJSON encodes the vector as a name → value object holding only the
// present features. The schema itself is not embedded; pair the payload with
// its schema (see UnmarshalVector).
func (v *Vector) MarshalJSON() ([]byte, error) {
	out := make(map[string]jsonValue)
	for i, d := range v.schema.defs {
		val := v.values[i]
		if val.Missing {
			continue
		}
		switch d.Kind {
		case Categorical:
			cats := val.Categories
			if cats == nil {
				cats = []string{}
			}
			out[d.Name] = jsonValue{Categories: cats}
		case Numeric:
			n := val.Num
			out[d.Name] = jsonValue{Num: &n}
		case Embedding:
			out[d.Name] = jsonValue{Vec: val.Vec}
		}
	}
	return json.Marshal(out)
}

// UnmarshalVector decodes a vector payload produced by Vector.MarshalJSON
// against its schema. Unknown feature names are rejected; absent features
// stay missing; payload shapes are validated against the schema.
func UnmarshalVector(schema *Schema, data []byte) (*Vector, error) {
	var raw map[string]jsonValue
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("feature: decode vector: %w", err)
	}
	v := NewVector(schema)
	for name, jv := range raw {
		i, ok := schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("feature: unknown feature %q in payload", name)
		}
		d := schema.Def(i)
		var val Value
		switch d.Kind {
		case Categorical:
			if jv.Num != nil || jv.Vec != nil {
				return nil, fmt.Errorf("feature: %q wants categories", name)
			}
			val = CategoricalValue(jv.Categories...)
		case Numeric:
			if jv.Num == nil {
				return nil, fmt.Errorf("feature: %q wants a number", name)
			}
			val = NumericValue(*jv.Num)
		case Embedding:
			if jv.Vec == nil {
				return nil, fmt.Errorf("feature: %q wants a vector", name)
			}
			val = EmbeddingValue(jv.Vec)
		}
		if err := v.Set(name, val); err != nil {
			return nil, err
		}
	}
	return v, nil
}
