package resource

import (
	"context"
	"testing"

	"crossmodal/internal/mapreduce"
	"crossmodal/internal/synth"
)

// TestFeaturizeWorkerInvariance requires featurization to be bit-identical
// for every worker count: each point's observation RNGs derive from the
// point's seed and the channel name alone, never from shared state.
func TestFeaturizeWorkerInvariance(t *testing.T) {
	lib, pts := testDataset(t, 120)
	ref, err := lib.Featurize(context.Background(), mapreduce.Config{Workers: 1}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := lib.Featurize(context.Background(), mapreduce.Config{Workers: workers}, pts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i].String() != ref[i].String() {
				t.Fatalf("Workers=%d: point %d featurized differently:\n%s\nvs\n%s",
					workers, i, got[i], ref[i])
			}
		}
	}
}

// TestFeaturizeSeedDeterminism pins rerun reproducibility and checks that
// changing the dataset seed actually changes observations.
func TestFeaturizeSeedDeterminism(t *testing.T) {
	lib := testLibrary(t)
	task, _ := synth.TaskByName("CT1")
	build := func(seed int64) []*synth.Point {
		ds, err := synth.BuildDataset(lib.World(), task, synth.DatasetConfig{
			Seed: seed, NumText: 60, NumUnlabeledImage: 60, NumHandLabelPool: 1, NumTest: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return append(ds.LabeledText, ds.UnlabeledImage...)
	}
	a, err := lib.Featurize(context.Background(), mapreduce.Config{Workers: 4}, build(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := lib.Featurize(context.Background(), mapreduce.Config{Workers: 4}, build(5))
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("same seed: point %d featurized differently", i)
		}
	}
	c, err := lib.Featurize(context.Background(), mapreduce.Config{Workers: 4}, build(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].String() != c[i].String() {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("changing the dataset seed left every observation identical")
	}
}
