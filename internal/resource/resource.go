// Package resource simulates organizational resources: the model-based
// services, aggregate statistics, and rule-based services an organization
// has accumulated (paper §3), which transform data points of any modality
// into structured feature values and thereby induce the common feature space.
//
// Each Resource observes a data point's hidden entity through a
// modality-specific noise channel (fidelity, dropout, false positives), so
// the same service is more reliable on some modalities than others — the
// mechanism behind the paper's cross-modality distribution differences.
// Video points are featurized by splitting into image frames and merging the
// per-frame observations (paper §3.1.1).
package resource

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/synth"
)

// ObsParams sets the reliability of one observation channel.
type ObsParams struct {
	// Fidelity is the probability a categorical observation is correct
	// (incorrect observations draw a random other value), or the weight of
	// the true value for numeric observations.
	Fidelity float64
	// Dropout is the probability the whole observation is Missing.
	Dropout float64
	// FalsePositive is the probability of adding one spurious category to
	// a multivalent observation.
	FalsePositive float64
	// ConfusionShift, when positive, makes 80% of categorical
	// misclassifications systematic: the observed value is the true index
	// shifted by this amount, modeling a channel that consistently
	// confuses specific values (the driver of cross-modality input
	// distribution shift).
	ConfusionShift int
	// Noise is the numeric observation's Gaussian noise scale.
	Noise float64
}

// Resource is one organizational service. Implementations must be safe for
// concurrent Observe calls.
type Resource interface {
	// Def describes the feature this resource produces.
	Def() feature.Def
	// Supports reports whether the resource can process modality m.
	Supports(m synth.Modality) bool
	// Observe renders the resource's (noisy) view of entity e through
	// modality m, using rng for all observation noise.
	Observe(e *synth.Entity, m synth.Modality, rng *rand.Rand) feature.Value
}

// Library is a collection of resources applied together to build the common
// feature space. A library built WithGuards additionally carries per-resource
// retry/breaker guards for the checked featurization path; Subset and
// NewLibrary always produce unguarded libraries.
type Library struct {
	world     *synth.World
	resources []Resource
	schema    *feature.Schema
	guards    []*Guard // nil unless built WithGuards
}

// NewLibrary assembles a library. Resource feature names must be unique.
func NewLibrary(world *synth.World, resources ...Resource) (*Library, error) {
	defs := make([]feature.Def, len(resources))
	for i, r := range resources {
		defs[i] = r.Def()
	}
	schema, err := feature.NewSchema(defs...)
	if err != nil {
		return nil, fmt.Errorf("resource: %w", err)
	}
	return &Library{world: world, resources: resources, schema: schema}, nil
}

// Schema returns the feature schema induced by the library.
func (l *Library) Schema() *feature.Schema { return l.schema }

// World returns the world the library's services observe.
func (l *Library) World() *synth.World { return l.world }

// Resources returns the library's resources in schema order.
func (l *Library) Resources() []Resource {
	return append([]Resource(nil), l.resources...)
}

// Subset returns a library containing only resources whose feature set label
// is in sets, preserving order. Unknown set labels simply select nothing.
func (l *Library) Subset(sets ...string) (*Library, error) {
	want := make(map[string]bool, len(sets))
	for _, s := range sets {
		want[s] = true
	}
	var keep []Resource
	for _, r := range l.resources {
		if want[r.Def().Set] {
			keep = append(keep, r)
		}
	}
	return NewLibrary(l.world, keep...)
}

// Applicable reports whether resource r can featurize point p at all (video
// points are served through the image channel, frame by frame).
func Applicable(r Resource, p *synth.Point) bool {
	if p.Modality == synth.Video {
		return r.Supports(synth.Image)
	}
	return r.Supports(p.Modality)
}

// ObservePoint renders one resource's view of one point: the unit of work a
// single "service call" performs, including the per-frame merge for video
// points. It is the seam the fault-injection layer wraps — a failure of one
// ObservePoint is the failure of one organizational-service call.
// Callers must check Applicable first.
func ObservePoint(r Resource, p *synth.Point) feature.Value {
	if p.Modality == synth.Video {
		return observeVideo(r, p)
	}
	return r.Observe(p.Entity, p.Modality, p.ObservationRNG(r.Def().Name))
}

// FeaturizePoint runs every applicable resource on one point and returns its
// feature vector under the library schema. Resources that do not support the
// point's modality leave their feature missing. Video points are split into
// frames rendered through the image channel and merged.
func (l *Library) FeaturizePoint(p *synth.Point) *feature.Vector {
	v := feature.NewVector(l.schema)
	for _, r := range l.resources {
		if !Applicable(r, p) {
			continue
		}
		// Set cannot fail: name comes from the schema and resources
		// produce kind-correct values.
		v.MustSet(r.Def().Name, ObservePoint(r, p))
	}
	return v
}

// observeVideo merges per-frame image observations: categorical values
// union, numeric and embedding values average; all-missing frames leave the
// feature missing.
func observeVideo(r Resource, p *synth.Point) feature.Value {
	d := r.Def()
	frames := p.Frames
	if frames <= 0 {
		frames = 1
	}
	switch d.Kind {
	case feature.Categorical:
		seen := make(map[string]bool)
		any := false
		for f := 0; f < frames; f++ {
			val := r.Observe(p.Entity, synth.Image, p.FrameRNG(d.Name, f))
			if val.Missing {
				continue
			}
			any = true
			for _, c := range val.Categories {
				seen[c] = true
			}
		}
		if !any {
			return feature.MissingValue()
		}
		cats := make([]string, 0, len(seen))
		for c := range seen {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		return feature.CategoricalValue(cats...)
	case feature.Numeric:
		var sum float64
		n := 0
		for f := 0; f < frames; f++ {
			val := r.Observe(p.Entity, synth.Image, p.FrameRNG(d.Name, f))
			if val.Missing {
				continue
			}
			sum += val.Num
			n++
		}
		if n == 0 {
			return feature.MissingValue()
		}
		return feature.NumericValue(sum / float64(n))
	case feature.Embedding:
		acc := make([]float64, d.Dim)
		n := 0
		for f := 0; f < frames; f++ {
			val := r.Observe(p.Entity, synth.Image, p.FrameRNG(d.Name, f))
			if val.Missing || len(val.Vec) != d.Dim {
				continue
			}
			for i, x := range val.Vec {
				acc[i] += x
			}
			n++
		}
		if n == 0 {
			return feature.MissingValue()
		}
		for i := range acc {
			acc[i] /= float64(n)
		}
		return feature.EmbeddingValue(acc)
	default:
		return feature.MissingValue()
	}
}

// Featurize runs the library over a corpus in parallel (the paper's
// MapReduce featurization job) and returns one vector per point, in order.
func (l *Library) Featurize(ctx context.Context, cfg mapreduce.Config, pts []*synth.Point) ([]*feature.Vector, error) {
	return mapreduce.Map(ctx, cfg, pts, func(p *synth.Point) (*feature.Vector, error) {
		return l.FeaturizePoint(p), nil
	})
}
