package resource

import (
	"context"
	"math"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/synth"
)

func testWorld(t *testing.T) *synth.World {
	t.Helper()
	return synth.MustWorld(synth.DefaultConfig())
}

func testLibrary(t *testing.T) *Library {
	t.Helper()
	w := testWorld(t)
	lib, err := StandardLibrary(w)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func testDataset(t *testing.T, n int) (*Library, []*synth.Point) {
	t.Helper()
	lib := testLibrary(t)
	task, _ := synth.TaskByName("CT1")
	ds, err := synth.BuildDataset(lib.World(), task, synth.DatasetConfig{
		Seed: 5, NumText: n, NumUnlabeledImage: n, NumHandLabelPool: 1, NumTest: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib, append(ds.LabeledText, ds.UnlabeledImage...)
}

func TestStandardLibrarySchema(t *testing.T) {
	lib := testLibrary(t)
	s := lib.Schema()
	// 15 organizational services (A:3, B:2, C:5, D:5) + 3 image + 2 text.
	if got := s.Sets(ABCD...).Len(); got != 15 {
		t.Errorf("ABCD features = %d, want 15", got)
	}
	if got := s.Sets(ImageSet).Len(); got != 3 {
		t.Errorf("image features = %d, want 3", got)
	}
	if got := s.Sets(TextSet).Len(); got != 3 {
		t.Errorf("text features = %d, want 3", got)
	}
	nonservable := s.Len() - s.Servable().Len()
	if nonservable != 1 {
		t.Errorf("nonservable features = %d, want 1 (user_reports)", nonservable)
	}
}

func TestFeaturizePointModalitySupport(t *testing.T) {
	lib, pts := testDataset(t, 50)
	for _, p := range pts {
		v := lib.FeaturizePoint(p)
		imgVal := v.Get("img_embedding")
		textVal := v.Get("text_wordcount")
		switch p.Modality {
		case synth.Text:
			if !imgVal.Missing {
				t.Fatal("text point has image embedding")
			}
		case synth.Image:
			if !textVal.Missing {
				t.Fatal("image point has text feature")
			}
			if imgVal.Missing {
				// Embedding service never drops out.
				t.Fatal("image point missing embedding")
			}
		}
	}
}

func TestFeaturizeDeterministic(t *testing.T) {
	lib, pts := testDataset(t, 20)
	for _, p := range pts {
		a := lib.FeaturizePoint(p)
		b := lib.FeaturizePoint(p)
		if a.String() != b.String() {
			t.Fatalf("featurization not deterministic for point %d:\n%s\n%s", p.ID, a, b)
		}
	}
}

func TestFeaturizeParallelMatchesSerial(t *testing.T) {
	lib, pts := testDataset(t, 64)
	par, err := lib.Featurize(context.Background(), mapreduce.Config{Workers: 8}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got, want := par[i].String(), lib.FeaturizePoint(p).String(); got != want {
			t.Fatalf("point %d: parallel %s != serial %s", p.ID, got, want)
		}
	}
}

func TestContentServiceFidelity(t *testing.T) {
	lib, pts := testDataset(t, 2000)
	accOf := func(feat string) map[synth.Modality]float64 {
		correctByMod := map[synth.Modality][2]int{}
		for _, p := range pts {
			v := lib.FeaturizePoint(p).Get(feat)
			if v.Missing {
				continue
			}
			counts := correctByMod[p.Modality]
			counts[1]++
			if v.HasCategory("t" + itoa(p.Entity.Topic)) {
				counts[0]++
			}
			correctByMod[p.Modality] = counts
		}
		out := map[synth.Modality]float64{}
		for m, c := range correctByMod {
			out[m] = float64(c[0]) / float64(c[1])
		}
		return out
	}
	// The flagship topic model is near parity across modalities; the
	// page-content categorizer favors text.
	topic := accOf("topic")
	if math.Abs(topic[synth.Text]-0.85) > 0.05 {
		t.Errorf("text topic accuracy %.3f, want ≈0.85", topic[synth.Text])
	}
	if math.Abs(topic[synth.Text]-topic[synth.Image]) > 0.08 {
		t.Errorf("topic service should be near parity: text %.3f vs image %.3f",
			topic[synth.Text], topic[synth.Image])
	}
	page := accOf("page_category")
	if !(page[synth.Text] > page[synth.Image]) {
		t.Errorf("page_category should be more reliable on text: %.3f vs %.3f",
			page[synth.Text], page[synth.Image])
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

func TestObjectsServiceFavorsImages(t *testing.T) {
	lib, pts := testDataset(t, 2000)
	recall := map[synth.Modality][2]int{}
	for _, p := range pts {
		v := lib.FeaturizePoint(p).Get("objects")
		if v.Missing {
			continue
		}
		c := recall[p.Modality]
		for _, o := range p.Entity.Objects {
			c[1]++
			if v.HasCategory("obj" + itoa(o)) {
				c[0]++
			}
		}
		recall[p.Modality] = c
	}
	textR := float64(recall[synth.Text][0]) / float64(recall[synth.Text][1])
	imgR := float64(recall[synth.Image][0]) / float64(recall[synth.Image][1])
	if !(imgR > textR) {
		t.Errorf("object detection should favor images: text %.3f vs image %.3f", textR, imgR)
	}
}

func TestStatServiceTracksAggregate(t *testing.T) {
	lib, pts := testDataset(t, 500)
	w := lib.World()
	var sumErr float64
	n := 0
	for _, p := range pts {
		v := lib.FeaturizePoint(p).Get("user_reports")
		if v.Missing {
			continue
		}
		sumErr += math.Abs(v.Num - w.UserReports(p.Entity.User))
		n++
	}
	if n == 0 {
		t.Fatal("user_reports always missing")
	}
	if mean := sumErr / float64(n); mean > 1 {
		t.Errorf("mean |obs - true| = %.3f, want < 1 (noise 0.4)", mean)
	}
}

func TestVideoFrameMerging(t *testing.T) {
	lib := testLibrary(t)
	task, _ := synth.TaskByName("CT1")
	if err := task.Calibrate(lib.World(), 2000, 1); err != nil {
		t.Fatal(err)
	}
	vids := synth.SampleVideo(lib.World(), task, 30, 5, 3)
	for _, p := range vids {
		v := lib.FeaturizePoint(p)
		if v.Get("text_wordcount").Missing == false {
			t.Fatal("video point has text-only feature")
		}
		if v.Get("img_embedding").Missing {
			t.Fatal("video point missing merged embedding")
		}
		if v.Get("topic").Missing {
			t.Fatal("video point missing topic (5 frames should rarely all drop)")
		}
	}
	// More frames give the set service more chances: union recall for
	// video should beat single images.
	single := synth.SampleVideo(lib.World(), task, 200, 1, 4)
	multi := synth.SampleVideo(lib.World(), task, 200, 6, 4)
	rec := func(pts []*synth.Point) float64 {
		hit, tot := 0, 0
		for _, p := range pts {
			v := lib.FeaturizePoint(p).Get("objects")
			for _, o := range p.Entity.Objects {
				tot++
				if v.HasCategory("obj" + itoa(o)) {
					hit++
				}
			}
		}
		return float64(hit) / float64(tot)
	}
	if r1, r6 := rec(single), rec(multi); !(r6 > r1) {
		t.Errorf("multi-frame union recall %.3f should beat single-frame %.3f", r6, r1)
	}
}

func TestSubset(t *testing.T) {
	lib := testLibrary(t)
	ab, err := lib.Subset(SetA, SetB)
	if err != nil {
		t.Fatal(err)
	}
	if got := ab.Schema().Len(); got != 5 {
		t.Errorf("A+B features = %d, want 5", got)
	}
	empty, err := lib.Subset("nope")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Schema().Len() != 0 {
		t.Error("unknown set should select nothing")
	}
}

func TestNewLibraryRejectsDuplicates(t *testing.T) {
	w := testWorld(t)
	svc := NewStatService(feature.Def{Name: "dup", Set: "X", Servable: true}, w, textImage, nil,
		func(*synth.World, *synth.Entity) float64 { return 0 })
	if _, err := NewLibrary(w, svc, svc); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestBucketServiceValidation(t *testing.T) {
	w := testWorld(t)
	_, err := NewBucketService(feature.Def{Name: "b"}, w, []float64{0.5}, []string{"only"}, textImage, nil,
		func(*synth.World, *synth.Entity) float64 { return 0 })
	if err == nil {
		t.Error("expected names/cuts mismatch error")
	}
}

func TestEmbeddingClustersByTopic(t *testing.T) {
	lib, pts := testDataset(t, 3000)
	byTopic := map[int][][]float64{}
	for _, p := range pts {
		if p.Modality != synth.Image {
			continue
		}
		v := lib.FeaturizePoint(p).Get("img_embedding")
		if !v.Missing {
			byTopic[p.Entity.Topic] = append(byTopic[p.Entity.Topic], v.Vec)
		}
	}
	var same, diff []float64
	topics := make([]int, 0, len(byTopic))
	for topic := range byTopic {
		topics = append(topics, topic)
	}
	for _, a := range topics {
		vs := byTopic[a]
		if len(vs) >= 2 {
			same = append(same, feature.CosineSimilarity(vs[0], vs[1]))
		}
		for _, b := range topics {
			if b != a && len(byTopic[b]) > 0 && len(vs) > 0 {
				diff = append(diff, feature.CosineSimilarity(vs[0], byTopic[b][0]))
			}
		}
	}
	if mean(same) <= mean(diff)+0.1 {
		t.Errorf("same-topic embedding similarity %.3f should exceed cross-topic %.3f",
			mean(same), mean(diff))
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
