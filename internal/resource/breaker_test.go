package resource

import (
	"testing"
	"time"

	"crossmodal/internal/xrand"
)

// The breaker property suite models the circuit breaker as an explicit state
// machine and checks the implementation against it over thousands of
// xrand-generated event sequences: every Allow verdict and every state must
// match the model, and every observed transition must be a legal edge of the
// closed/open/half-open diagram.

// modelBreaker is the independent reference implementation of the breaker's
// specification (written against the doc comment, not the code).
type modelBreaker struct {
	threshold int
	cooldown  time.Duration

	state    BreakerState
	consec   int
	openedAt time.Time
	probing  bool
}

func (m *modelBreaker) allow(now time.Time) bool {
	switch m.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(m.openedAt) < m.cooldown {
			return false
		}
		m.state = BreakerHalfOpen
		m.probing = true
		return true
	default:
		if m.probing {
			return false
		}
		m.probing = true
		return true
	}
}

func (m *modelBreaker) success() {
	switch m.state {
	case BreakerClosed:
		m.consec = 0
	case BreakerHalfOpen:
		m.state = BreakerClosed
		m.consec = 0
		m.probing = false
	}
}

func (m *modelBreaker) failure(now time.Time) {
	trip := func() {
		m.state = BreakerOpen
		m.openedAt = now
		m.consec = 0
	}
	switch m.state {
	case BreakerClosed:
		m.consec++
		if m.threshold > 0 && m.consec >= m.threshold {
			trip()
		}
	case BreakerHalfOpen:
		trip()
		m.probing = false
	}
}

// legalEdge reports whether from → to is an edge of the breaker diagram
// (self-loops always allowed).
func legalEdge(from, to BreakerState) bool {
	if from == to {
		return true
	}
	switch {
	case from == BreakerClosed && to == BreakerOpen:
		return true // threshold consecutive failures
	case from == BreakerOpen && to == BreakerHalfOpen:
		return true // cooldown elapsed, probe admitted
	case from == BreakerHalfOpen && to == BreakerClosed:
		return true // probe success
	case from == BreakerHalfOpen && to == BreakerOpen:
		return true // probe failure
	default:
		return false
	}
}

// TestBreakerPropertyAgainstModel drives 1500 generated event sequences
// (allow / success / failure / clock advance) through the breaker and the
// model in lockstep.
func TestBreakerPropertyAgainstModel(t *testing.T) {
	const sequences = 1500
	const opsPerSeq = 60
	for seq := 0; seq < sequences; seq++ {
		rng := xrand.New(int64(1000 + seq))
		threshold := 1 + rng.Intn(5)
		cooldown := time.Duration(1+rng.Intn(50)) * time.Millisecond

		now := time.Unix(0, 0)
		clock := func() time.Time { return now }
		b := NewBreaker(threshold, cooldown, clock)
		m := &modelBreaker{threshold: threshold, cooldown: cooldown}

		prev := b.State()
		for op := 0; op < opsPerSeq; op++ {
			switch rng.Intn(4) {
			case 0:
				got, want := b.Allow(), m.allow(now)
				if got != want {
					t.Fatalf("seq %d op %d: Allow = %v, model says %v (state %v)", seq, op, got, want, prev)
				}
			case 1:
				b.Success()
				m.success()
			case 2:
				b.Failure()
				m.failure(now)
			case 3:
				now = now.Add(time.Duration(rng.Intn(int(2 * cooldown))))
			}
			cur := b.State()
			if cur != m.state {
				t.Fatalf("seq %d op %d: state %v, model %v", seq, op, cur, m.state)
			}
			if !legalEdge(prev, cur) {
				t.Fatalf("seq %d op %d: illegal transition %v → %v", seq, op, prev, cur)
			}
			prev = cur
		}
	}
}

// TestBreakerScriptedTransitions pins the canonical lifecycle edge by edge.
func TestBreakerScriptedTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 100*time.Millisecond, func() time.Time { return now })

	// Closed: failures below threshold don't trip.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected a call")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v", b.State())
	}
	// A success resets the consecutive count.
	b.Success()
	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset consecutive-failure count")
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
	// Open rejects until cooldown.
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	now = now.Add(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted a call 1ms before cooldown")
	}
	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure reopens; another cooldown, probe success closes.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	now = now.Add(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

// TestBreakerDisabled: a non-positive threshold never trips.
func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(-1, time.Millisecond, nil)
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker rejected a call")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %v", b.State())
	}
}
