package resource

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/synth"
)

// fakeSvc is a scripted Fallible resource: the first failN CheckPoint calls
// fail, the rest succeed with a fixed numeric value.
type fakeSvc struct {
	def   feature.Def
	failN int32
	calls atomic.Int32
	block time.Duration // per-call latency before answering (0 = none)
}

var errFake = errors.New("fake service down")

func newFakeSvc(name string, failN int) *fakeSvc {
	return &fakeSvc{
		def:   feature.Def{Name: name, Kind: feature.Numeric, Set: "T", Servable: true},
		failN: int32(failN),
	}
}

func (f *fakeSvc) Def() feature.Def               { return f.def }
func (f *fakeSvc) Supports(m synth.Modality) bool { return true }
func (f *fakeSvc) Observe(_ *synth.Entity, _ synth.Modality, _ *rand.Rand) feature.Value {
	return feature.NumericValue(42)
}

func (f *fakeSvc) CheckPoint(ctx context.Context, _ *synth.Point) (feature.Value, error) {
	n := f.calls.Add(1)
	if f.block > 0 {
		t := time.NewTimer(f.block)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return feature.Value{Missing: true}, ctx.Err()
		}
	}
	if n <= f.failN {
		return feature.Value{Missing: true}, fmt.Errorf("%w (call %d)", errFake, n)
	}
	return feature.NumericValue(42), nil
}

func testPoint(id int) *synth.Point {
	return &synth.Point{ID: id, Modality: synth.Image, Seed: uint64(1000 + id)}
}

// quietPolicy retries fast with no real sleeping and records backoffs.
func quietPolicy(slept *[]time.Duration) Policy {
	return Policy{
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		BreakerThreshold: -1,
		Sleep: func(d time.Duration) {
			if slept != nil {
				*slept = append(*slept, d)
			}
		},
	}
}

func TestGuardRetriesRescueTransientFailure(t *testing.T) {
	svc := newFakeSvc("svc", 2) // fails twice, third attempt succeeds
	var slept []time.Duration
	g := NewGuard(svc, quietPolicy(&slept))

	val, err := g.Observe(context.Background(), testPoint(1))
	if err != nil {
		t.Fatalf("observe: %v", err)
	}
	if val.Missing || val.Num != 42 {
		t.Fatalf("value = %+v, want 42", val)
	}
	if got := svc.calls.Load(); got != 3 {
		t.Fatalf("service called %d times, want 3", got)
	}
	st := g.Stats()
	if st.Retries != 2 || st.Failures != 0 || st.Calls != 1 {
		t.Fatalf("stats = %+v, want 2 retries, 0 failures, 1 call", st)
	}
	// Backoff bounds: attempt k's delay is base*2^(k-1) capped at max,
	// jittered by ±20%.
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	bounds := []struct{ lo, hi time.Duration }{
		{time.Duration(0.8 * float64(time.Millisecond)), time.Duration(1.2 * float64(time.Millisecond))},
		{time.Duration(0.8 * float64(2*time.Millisecond)), time.Duration(1.2 * float64(2*time.Millisecond))},
	}
	for i, d := range slept {
		if d < bounds[i].lo || d > bounds[i].hi {
			t.Errorf("backoff %d = %v, want in [%v, %v]", i, d, bounds[i].lo, bounds[i].hi)
		}
	}
}

func TestGuardExhaustsBoundedAttempts(t *testing.T) {
	svc := newFakeSvc("svc", 1<<20) // never recovers
	g := NewGuard(svc, quietPolicy(nil))

	_, err := g.Observe(context.Background(), testPoint(1))
	if !errors.Is(err, errFake) {
		t.Fatalf("err = %v, want wrapped errFake", err)
	}
	if got := svc.calls.Load(); got != 3 {
		t.Fatalf("service called %d times, want exactly MaxAttempts=3", got)
	}
	if st := g.Stats(); st.Failures != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 failure, 2 retries", st)
	}
}

func TestGuardBackoffCapsAtMax(t *testing.T) {
	svc := newFakeSvc("svc", 1<<20)
	var slept []time.Duration
	pol := quietPolicy(&slept)
	pol.MaxAttempts = 8
	g := NewGuard(svc, pol)
	g.Observe(context.Background(), testPoint(1))
	if len(slept) != 7 {
		t.Fatalf("slept %d times, want 7", len(slept))
	}
	capHi := time.Duration(1.2 * float64(8*time.Millisecond))
	for i, d := range slept {
		if d > capHi {
			t.Errorf("backoff %d = %v exceeds jittered cap %v", i, d, capHi)
		}
	}
}

func TestGuardHonorsParentContext(t *testing.T) {
	svc := newFakeSvc("svc", 1<<20)
	ctx, cancel := context.WithCancel(context.Background())
	pol := quietPolicy(nil)
	pol.Sleep = func(time.Duration) { cancel() } // cancel during first backoff
	g := NewGuard(svc, pol)

	_, err := g.Observe(ctx, testPoint(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := svc.calls.Load(); got != 1 {
		t.Fatalf("service called %d times after cancellation, want 1", got)
	}
}

func TestGuardPerAttemptTimeout(t *testing.T) {
	svc := newFakeSvc("svc", 0)
	svc.block = 50 * time.Millisecond
	pol := quietPolicy(nil)
	pol.Timeout = 2 * time.Millisecond
	pol.MaxAttempts = 2
	g := NewGuard(svc, pol)

	_, err := g.Observe(context.Background(), testPoint(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from per-attempt timeout", err)
	}
	if got := svc.calls.Load(); got != 2 {
		t.Fatalf("service called %d times, want 2 (both attempts timed out)", got)
	}
}

func TestGuardBreakerTripsAndRejects(t *testing.T) {
	svc := newFakeSvc("svc", 1<<20)
	now := time.Unix(0, 0)
	pol := quietPolicy(nil)
	pol.BreakerThreshold = 4
	pol.BreakerCooldown = 100 * time.Millisecond
	pol.Now = func() time.Time { return now }
	g := NewGuard(svc, pol)

	// First observation: 3 attempts, 3 failures — breaker still closed.
	g.Observe(context.Background(), testPoint(1))
	if st := g.Breaker().State(); st != BreakerClosed {
		t.Fatalf("breaker %v after 3 failures, want closed (threshold 4)", st)
	}
	// Second observation: 4th consecutive failure trips it mid-retry.
	_, err := g.Observe(context.Background(), testPoint(2))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen once tripped", err)
	}
	if st := g.Breaker().State(); st != BreakerOpen {
		t.Fatalf("breaker %v, want open", st)
	}
	calls := svc.calls.Load()
	// Further observations are rejected without touching the service.
	_, err = g.Observe(context.Background(), testPoint(3))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if svc.calls.Load() != calls {
		t.Fatal("open breaker still let calls through")
	}
	if st := g.Stats(); st.BreakerRejects == 0 {
		t.Fatal("breaker rejects not counted")
	}
	// After the cooldown the probe goes through; the service has recovered.
	svc.failN = 0
	svc.calls.Store(0)
	now = now.Add(200 * time.Millisecond)
	val, err := g.Observe(context.Background(), testPoint(4))
	if err != nil {
		t.Fatalf("post-recovery observe: %v", err)
	}
	if val.Num != 42 {
		t.Fatalf("post-recovery value = %+v", val)
	}
	if st := g.Breaker().State(); st != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
}

// TestFeaturizePointCheckedDegradesPerChannel: one failing channel leaves
// its feature missing and reports it; the healthy channels still land.
func TestFeaturizePointCheckedDegradesPerChannel(t *testing.T) {
	w := testWorld(t)
	bad := newFakeSvc("bad", 1<<20)
	good := newFakeSvc("good", 0)
	lib, err := NewLibrary(w, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	glib := lib.WithGuards(quietPolicy(nil), nil)

	vec, failed, err := glib.FeaturizePointChecked(context.Background(), testPoint(1))
	if err != nil {
		t.Fatalf("checked featurize: %v", err)
	}
	if len(failed) != 1 || failed[0] != "bad" {
		t.Fatalf("failed = %v, want [bad]", failed)
	}
	if !vec.Get("bad").Missing {
		t.Error("failed channel's feature is not missing")
	}
	if v := vec.Get("good"); v.Missing || v.Num != 42 {
		t.Errorf("healthy channel = %+v, want 42", v)
	}
}

// TestFeaturizePointCheckedAllChannelsFailed: a point with no surviving
// channel errors with ErrUnavailable.
func TestFeaturizePointCheckedAllChannelsFailed(t *testing.T) {
	w := testWorld(t)
	lib, err := NewLibrary(w, newFakeSvc("only", 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	glib := lib.WithGuards(quietPolicy(nil), nil)

	_, failed, err := glib.FeaturizePointChecked(context.Background(), testPoint(1))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if len(failed) != 1 {
		t.Fatalf("failed = %v", failed)
	}
}

// TestFeaturizePointCheckedBreakerOpenWraps: when the failure is an open
// breaker, the point error says so (serve turns this into 503).
func TestFeaturizePointCheckedBreakerOpenWraps(t *testing.T) {
	w := testWorld(t)
	lib, err := NewLibrary(w, newFakeSvc("only", 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	pol := quietPolicy(nil)
	pol.BreakerThreshold = 1
	glib := lib.WithGuards(pol, nil)

	ctx := context.Background()
	glib.FeaturizePointChecked(ctx, testPoint(1)) // trips the breaker
	_, _, err = glib.FeaturizePointChecked(ctx, testPoint(2))
	if !errors.Is(err, ErrUnavailable) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrUnavailable wrapping ErrBreakerOpen", err)
	}
}

// TestCheckedPathMatchesUncheckedOnInfallibleLibrary: guards over resources
// that cannot fail are pure pass-through — bit-identical vectors.
func TestCheckedPathMatchesUncheckedOnInfallibleLibrary(t *testing.T) {
	lib, pts := testDataset(t, 60)
	glib := lib.WithGuards(Policy{}, nil)
	ctx := context.Background()
	for _, p := range pts {
		want := lib.FeaturizePoint(p)
		got, failed, err := glib.FeaturizePointChecked(ctx, p)
		if err != nil || len(failed) != 0 {
			t.Fatalf("point %d: err=%v failed=%v", p.ID, err, failed)
		}
		for i := 0; i < lib.Schema().Len(); i++ {
			if !valuesEqual(want.At(i), got.At(i)) {
				t.Fatalf("point %d feature %s differs: %+v vs %+v",
					p.ID, lib.Schema().Def(i).Name, want.At(i), got.At(i))
			}
		}
	}
}

// valuesEqual compares two feature values bit-for-bit.
func valuesEqual(a, b feature.Value) bool {
	if a.Missing != b.Missing || a.Num != b.Num {
		return false
	}
	if len(a.Categories) != len(b.Categories) || len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Categories {
		if a.Categories[i] != b.Categories[i] {
			return false
		}
	}
	for i := range a.Vec {
		if a.Vec[i] != b.Vec[i] {
			return false
		}
	}
	return true
}
