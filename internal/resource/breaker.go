package resource

import (
	"sync"
	"time"
)

// Circuit breaker for organizational-service calls. The paper's production
// setting (like Snorkel DryBell's) draws weak-supervision signals from
// remote services that throttle and brown out; a breaker stops a failing
// service from absorbing every caller's retry budget, and its state is the
// primary health signal the serving layer exports.

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed: calls flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is admitted; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String renders the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker:
//
//	closed    --threshold consecutive failures-->  open
//	open      --cooldown elapsed, next Allow-->    half-open (probe admitted)
//	half-open --probe success-->                   closed
//	half-open --probe failure-->                   open (cooldown restarts)
//
// The clock is injectable so chaos and property tests drive transitions
// deterministically. All methods are safe for concurrent use.
type Breaker struct {
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight

	opens uint64 // times the breaker tripped (closed/half-open → open)
}

// NewBreaker builds a breaker tripping after threshold consecutive failures
// and probing after cooldown. threshold <= 0 disables tripping (the breaker
// stays closed forever). now may be nil (wall clock).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown elapses, then admits exactly one half-open probe;
// further calls are rejected until that probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a call outcome. A half-open probe success closes the
// breaker; a success that lands while open (a straggler admitted before the
// trip) changes nothing.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consec = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.consec = 0
		b.probing = false
	}
}

// Failure reports a call outcome. The threshold-th consecutive failure while
// closed trips the breaker; a half-open probe failure re-opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consec++
		if b.threshold > 0 && b.consec >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
		b.probing = false
	}
}

// trip moves to open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.consec = 0
	b.opens++
}

// State returns the current state without side effects (an open breaker past
// its cooldown still reports open until an Allow admits the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
