package resource

import (
	"fmt"
	"math"
	"math/rand"

	"crossmodal/internal/feature"
	"crossmodal/internal/synth"
)

// textImage is the modality support set of a cross-modal service. Video is
// always handled by the library via frame splitting, so services only ever
// declare Text and/or Image support.
var textImage = map[synth.Modality]bool{synth.Text: true, synth.Image: true}

var textOnly = map[synth.Modality]bool{synth.Text: true}

var imageOnly = map[synth.Modality]bool{synth.Image: true}

// baseService carries the fields shared by all concrete services.
type baseService struct {
	def      feature.Def
	supports map[synth.Modality]bool
	params   map[synth.Modality]ObsParams
}

func (s *baseService) Def() feature.Def { return s.def }

func (s *baseService) Supports(m synth.Modality) bool { return s.supports[m] }

func (s *baseService) obs(m synth.Modality) ObsParams { return s.params[m] }

// CategoryService observes one latent categorical attribute (topic, URL
// group, setting, ...). With probability Fidelity it reports the true value;
// otherwise it reports a random other value. A model-based service in the
// paper's taxonomy.
type CategoryService struct {
	baseService
	n       int
	prefix  string
	extract func(*synth.Entity) int
	// errorDist, when set, draws misclassification targets from the
	// observed modality's distribution instead of uniformly. Production
	// classifiers are biased toward the prior of the traffic they run
	// on, so errors land on locally popular values — which keeps
	// observations of *rare* values precise.
	errorDist map[synth.Modality][]float64
}

// NewCategoryService builds a categorical service over n values named
// "<prefix><i>"; extract maps an entity to its true value index.
func NewCategoryService(def feature.Def, n int, prefix string, supports map[synth.Modality]bool, params map[synth.Modality]ObsParams, extract func(*synth.Entity) int) *CategoryService {
	def.Kind = feature.Categorical
	return &CategoryService{baseService{def, supports, params}, n, prefix, extract, nil}
}

// WithErrorDists sets per-modality misclassification target distributions
// (each of length n) and returns the service for chaining.
func (s *CategoryService) WithErrorDists(dists map[synth.Modality][]float64) *CategoryService {
	s.errorDist = dists
	return s
}

// sampleIndex draws an index from a normalized distribution.
func sampleIndex(rng *rand.Rand, p []float64) int {
	u := rng.Float64()
	var acc float64
	for i, v := range p {
		acc += v
		if u <= acc {
			return i
		}
	}
	return len(p) - 1
}

// Observe implements Resource.
func (s *CategoryService) Observe(e *synth.Entity, m synth.Modality, rng *rand.Rand) feature.Value {
	p := s.obs(m)
	if rng.Float64() < p.Dropout {
		return feature.MissingValue()
	}
	idx := s.extract(e)
	if rng.Float64() >= p.Fidelity && s.n > 1 {
		// Misclassification. With ConfusionShift set, errors are
		// systematic (the channel consistently confuses a value with a
		// fixed neighbor) rather than uniform — systematic confusion is
		// what makes a model trained on one modality's channel transfer
		// poorly to another's (paper §6.6: "the input distribution is
		// not identical across modalities").
		switch {
		case p.ConfusionShift > 0 && rng.Float64() < 0.5:
			idx = (idx + p.ConfusionShift) % s.n
		case s.errorDist[m] != nil:
			idx = sampleIndex(rng, s.errorDist[m])
		default:
			idx = (idx + 1 + rng.Intn(s.n-1)) % s.n
		}
	}
	return feature.CategoricalValue(fmt.Sprintf("%s%d", s.prefix, idx))
}

// SetService observes a latent index set (objects present, keywords) as a
// multivalent categorical feature: each true element is detected with
// probability Fidelity, and with probability FalsePositive one spurious
// element is added.
type SetService struct {
	baseService
	n       int
	prefix  string
	extract func(*synth.Entity) []int
}

// NewSetService builds a multivalent categorical service over n values named
// "<prefix><i>".
func NewSetService(def feature.Def, n int, prefix string, supports map[synth.Modality]bool, params map[synth.Modality]ObsParams, extract func(*synth.Entity) []int) *SetService {
	def.Kind = feature.Categorical
	return &SetService{baseService{def, supports, params}, n, prefix, extract}
}

// Observe implements Resource.
func (s *SetService) Observe(e *synth.Entity, m synth.Modality, rng *rand.Rand) feature.Value {
	p := s.obs(m)
	if rng.Float64() < p.Dropout {
		return feature.MissingValue()
	}
	var cats []string
	for _, idx := range s.extract(e) {
		if rng.Float64() < p.Fidelity {
			cats = append(cats, fmt.Sprintf("%s%d", s.prefix, idx))
		}
	}
	if rng.Float64() < p.FalsePositive {
		cats = append(cats, fmt.Sprintf("%s%d", s.prefix, rng.Intn(s.n)))
	}
	return feature.CategoricalValue(cats...)
}

// BucketService observes a latent scalar quantized into named buckets, with
// Gaussian noise applied before quantization. Used for score-like service
// outputs ("risk: low/medium/high").
type BucketService struct {
	baseService
	cuts    []float64
	names   []string
	extract func(*synth.World, *synth.Entity) float64
	world   *synth.World
}

// NewBucketService builds a bucketing service: len(names) == len(cuts)+1;
// value v falls in bucket i where cuts[i-1] <= v < cuts[i].
func NewBucketService(def feature.Def, world *synth.World, cuts []float64, names []string, supports map[synth.Modality]bool, params map[synth.Modality]ObsParams, extract func(*synth.World, *synth.Entity) float64) (*BucketService, error) {
	if len(names) != len(cuts)+1 {
		return nil, fmt.Errorf("resource: bucket service %s wants %d names for %d cuts", def.Name, len(cuts)+1, len(cuts))
	}
	def.Kind = feature.Categorical
	return &BucketService{baseService{def, supports, params}, cuts, names, extract, world}, nil
}

// Observe implements Resource.
func (s *BucketService) Observe(e *synth.Entity, m synth.Modality, rng *rand.Rand) feature.Value {
	p := s.obs(m)
	if rng.Float64() < p.Dropout {
		return feature.MissingValue()
	}
	v := s.extract(s.world, e) + rng.NormFloat64()*p.Noise
	i := 0
	for i < len(s.cuts) && v >= s.cuts[i] {
		i++
	}
	return feature.CategoricalValue(s.names[i])
}

// StatService observes an aggregate statistic or other numeric signal
// attached to the entity's metadata (user reports, URL shares). Metadata
// joins are modality-independent, so these channels are typically low noise
// for every modality.
type StatService struct {
	baseService
	extract func(*synth.World, *synth.Entity) float64
	world   *synth.World
}

// NewStatService builds a numeric aggregate-statistic service.
func NewStatService(def feature.Def, world *synth.World, supports map[synth.Modality]bool, params map[synth.Modality]ObsParams, extract func(*synth.World, *synth.Entity) float64) *StatService {
	def.Kind = feature.Numeric
	return &StatService{baseService{def, supports, params}, extract, world}
}

// Observe implements Resource.
func (s *StatService) Observe(e *synth.Entity, m synth.Modality, rng *rand.Rand) feature.Value {
	p := s.obs(m)
	if rng.Float64() < p.Dropout {
		return feature.MissingValue()
	}
	return feature.NumericValue(s.extract(s.world, e) + rng.NormFloat64()*p.Noise)
}

// RuleService is a rule-based resource: a heuristic predicate a team wrote
// (paper §3.1.1), surfaced as a binary categorical feature that is observed
// with modality-dependent reliability.
type RuleService struct {
	baseService
	predicate func(*synth.World, *synth.Entity) bool
	world     *synth.World
}

// NewRuleService builds a rule-based service; the feature takes value
// "fired" or "quiet".
func NewRuleService(def feature.Def, world *synth.World, supports map[synth.Modality]bool, params map[synth.Modality]ObsParams, predicate func(*synth.World, *synth.Entity) bool) *RuleService {
	def.Kind = feature.Categorical
	return &RuleService{baseService{def, supports, params}, predicate, world}
}

// Observe implements Resource.
func (s *RuleService) Observe(e *synth.Entity, m synth.Modality, rng *rand.Rand) feature.Value {
	p := s.obs(m)
	if rng.Float64() < p.Dropout {
		return feature.MissingValue()
	}
	fired := s.predicate(s.world, e)
	if rng.Float64() >= p.Fidelity {
		fired = !fired
	}
	if fired {
		return feature.CategoricalValue("fired")
	}
	return feature.CategoricalValue("quiet")
}

// EmbeddingService renders the "pre-trained image embedding": a dense vector
// encoding the entity's topic and objects plus observation noise. This is
// the raw-modality feature the paper's baseline model trains on, and the
// unstructured feature label propagation exploits (§4.4).
type EmbeddingService struct {
	baseService
	world *synth.World
	noise float64
}

// NewEmbeddingService builds the image-embedding service.
func NewEmbeddingService(def feature.Def, world *synth.World, supports map[synth.Modality]bool, noise float64) *EmbeddingService {
	def.Kind = feature.Embedding
	def.Dim = world.Config().EmbeddingDim
	return &EmbeddingService{baseService{def, supports, nil}, world, noise}
}

// Observe implements Resource.
func (s *EmbeddingService) Observe(e *synth.Entity, _ synth.Modality, rng *rand.Rand) feature.Value {
	dim := s.def.Dim
	vec := make([]float64, dim)
	copy(vec, s.world.TopicEmbedding(e.Topic))
	for i := range vec {
		vec[i] *= 0.8
	}
	for _, o := range e.Objects {
		oe := s.world.ObjectEmbedding(o)
		for i := range vec {
			vec[i] += 0.8 * oe[i] / float64(len(e.Objects))
		}
	}
	for i := range vec {
		vec[i] += rng.NormFloat64() * s.noise
	}
	return feature.EmbeddingValue(vec)
}

// FeatureSets names the service sets of the paper's evaluation (§6.2).
// A: URL-based metadata services; B: keyword-based services; C: topic-model
// services; D: page-content services. ImageSet holds the image-specific
// pre-trained features; TextSet the text-specific ones.
const (
	SetA     = "A"
	SetB     = "B"
	SetC     = "C"
	SetD     = "D"
	ImageSet = "I"
	TextSet  = "T"
)

// ABCD lists the four organizational service sets in order.
var ABCD = []string{SetA, SetB, SetC, SetD}

// StandardLibrary assembles the evaluation's 15 organizational services
// (sets A–D, including one nonservable aggregate statistic; the second
// nonservable feature — the label-propagation score — is appended by the
// curation step), plus image-specific and text-specific features.
func StandardLibrary(w *synth.World) (*Library, error) {
	cfg := w.Config()

	// Metadata-backed channels are reliable for every modality.
	meta := map[synth.Modality]ObsParams{
		synth.Text:  {Fidelity: 0.95, Dropout: 0.02, Noise: 1.0},
		synth.Image: {Fidelity: 0.92, Dropout: 0.04, Noise: 1.2},
	}
	// Content-model channels see text better than images, and their image
	// errors are systematic (e.g. a meme topic consistently mistaken for a
	// neighboring topic).
	content := map[synth.Modality]ObsParams{
		synth.Text:  {Fidelity: 0.88, Dropout: 0.03, FalsePositive: 0.05, Noise: 0.05},
		synth.Image: {Fidelity: 0.78, Dropout: 0.10, FalsePositive: 0.10, Noise: 0.12, ConfusionShift: 1},
	}
	// Vision channels see images better than text; their text errors are
	// systematic.
	vision := map[synth.Modality]ObsParams{
		synth.Text:  {Fidelity: 0.62, Dropout: 0.10, FalsePositive: 0.06, Noise: 0.10, ConfusionShift: 1},
		synth.Image: {Fidelity: 0.85, Dropout: 0.04, FalsePositive: 0.05, Noise: 0.06},
	}
	weak := map[synth.Modality]ObsParams{
		synth.Text:  {Fidelity: 0.6, Dropout: 0.05, Noise: 0.6},
		synth.Image: {Fidelity: 0.55, Dropout: 0.05, Noise: 0.7},
	}

	urlBucket, err := NewBucketService(
		feature.Def{Name: "url_risk", Set: SetA, Servable: true},
		w, []float64{0.2, 0.5}, []string{"low", "medium", "high"},
		textImage, meta,
		func(w *synth.World, e *synth.Entity) float64 { return w.URLRisk(e.URLGroup) })
	if err != nil {
		return nil, err
	}
	userBucket, err := NewBucketService(
		feature.Def{Name: "user_tier", Set: SetD, Servable: true},
		w, []float64{0.05, 0.2, 0.5}, []string{"trusted", "normal", "flagged", "risky"},
		textImage, meta,
		func(w *synth.World, e *synth.Entity) float64 { return w.UserBadness(e.User) })
	if err != nil {
		return nil, err
	}
	sentiment, err := NewBucketService(
		feature.Def{Name: "sentiment", Set: SetC, Servable: true},
		w, []float64{-0.5, 0.5}, []string{"negative", "neutral", "positive"},
		textImage, weak,
		func(_ *synth.World, e *synth.Entity) float64 { return math.Tanh(e.Eps) })
	if err != nil {
		return nil, err
	}

	// Topic classifiers' misclassifications follow the output prior of the
	// traffic they run on, per modality.
	topicPriors := map[synth.Modality][]float64{
		synth.Text:  w.TopicPopularity(synth.Text),
		synth.Image: w.TopicPopularity(synth.Image),
	}
	coarsePriors := map[synth.Modality][]float64{}
	for m, prior := range topicPriors {
		coarse := make([]float64, (cfg.NumTopics+3)/4)
		for t, p := range prior {
			coarse[t/4] += p
		}
		coarsePriors[m] = coarse
	}

	urlPriors := map[synth.Modality][]float64{
		synth.Text:  w.URLPopularity(synth.Text),
		synth.Image: w.URLPopularity(synth.Image),
	}

	resources := []Resource{
		// --- Set A: URL-based services (3 features) ---
		NewCategoryService(
			feature.Def{Name: "url_category", Set: SetA, Servable: true},
			cfg.NumURLGroups, "url", textImage, meta,
			func(e *synth.Entity) int { return e.URLGroup }).WithErrorDists(urlPriors),
		NewStatService(
			feature.Def{Name: "url_shares", Set: SetA, Servable: true},
			w, textImage, meta,
			func(w *synth.World, e *synth.Entity) float64 { return w.URLShares(e.URLGroup) }),
		urlBucket,

		// --- Set B: keyword-based services (2 features) ---
		NewSetService(
			feature.Def{Name: "keywords", Set: SetB, Servable: true},
			cfg.NumKeywords, "kw", textImage, content,
			func(e *synth.Entity) []int { return e.Keywords }),
		NewRuleService(
			feature.Def{Name: "kw_spam_rule", Set: SetB, Servable: true},
			w, textImage, content,
			func(w *synth.World, e *synth.Entity) bool {
				for _, k := range e.Keywords {
					if w.KeywordRisk(k) > 0.6 {
						return true
					}
				}
				return false
			}),

		// --- Set C: topic-model-based services (5 features) ---
		// The flagship topic model: its modality gap is a fidelity and
		// dropout gap plus prior-biased errors, without systematic shift —
		// rare (risky) topics stay recognizable on images, which the
		// mined LFs depend on.
		NewCategoryService(
			feature.Def{Name: "topic", Set: SetC, Servable: true},
			cfg.NumTopics, "t", textImage,
			map[synth.Modality]ObsParams{
				synth.Text:  {Fidelity: 0.85, Dropout: 0.04},
				synth.Image: {Fidelity: 0.85, Dropout: 0.06},
			},
			func(e *synth.Entity) int { return e.Topic }).WithErrorDists(topicPriors),
		NewCategoryService(
			feature.Def{Name: "topic_coarse", Set: SetC, Servable: true},
			(cfg.NumTopics+3)/4, "tc", textImage, content,
			func(e *synth.Entity) int { return e.Topic / 4 }).WithErrorDists(coarsePriors),
		NewSetService(
			feature.Def{Name: "objects", Set: SetC, Servable: true},
			cfg.NumObjects, "obj", textImage, vision,
			func(e *synth.Entity) []int { return e.Objects }),
		sentiment,
		NewCategoryService(
			feature.Def{Name: "setting", Set: SetC, Servable: true},
			8, "set", textImage, vision,
			func(e *synth.Entity) int { return e.Objects[0] % 8 }),

		// --- Set D: page-content-based services (5 features) ---
		NewCategoryService(
			feature.Def{Name: "page_category", Set: SetD, Servable: true},
			cfg.NumTopics, "t", textImage,
			map[synth.Modality]ObsParams{
				synth.Text:  {Fidelity: 0.72, Dropout: 0.08},
				synth.Image: {Fidelity: 0.66, Dropout: 0.14, ConfusionShift: 2},
			},
			func(e *synth.Entity) int { return e.Topic }).WithErrorDists(topicPriors),
		NewSetService(
			feature.Def{Name: "page_entities", Set: SetD, Servable: true},
			cfg.NumObjects, "obj", textImage,
			map[synth.Modality]ObsParams{
				synth.Text:  {Fidelity: 0.6, Dropout: 0.08, FalsePositive: 0.1},
				synth.Image: {Fidelity: 0.5, Dropout: 0.12, FalsePositive: 0.1},
			},
			func(e *synth.Entity) []int { return e.Objects }),
		NewStatService(
			feature.Def{Name: "page_quality", Set: SetD, Servable: true},
			w, textImage, weak,
			func(w *synth.World, e *synth.Entity) float64 { return 1 - w.URLRisk(e.URLGroup) }),
		userBucket,
		// The nonservable aggregate: joining live traffic against the
		// reports store is too expensive at serving time (paper §4.1).
		NewStatService(
			feature.Def{Name: "user_reports", Set: SetD, Servable: false},
			w, textImage,
			map[synth.Modality]ObsParams{
				synth.Text:  {Fidelity: 1, Noise: 0.4},
				synth.Image: {Fidelity: 1, Noise: 0.4},
			},
			func(w *synth.World, e *synth.Entity) float64 { return w.UserReports(e.User) }),

		// --- Image-specific pre-trained features (3) ---
		NewEmbeddingService(
			feature.Def{Name: "img_embedding", Set: ImageSet, Servable: true},
			w, imageOnly, 0.1),
		NewStatService(
			feature.Def{Name: "img_quality", Set: ImageSet, Servable: true},
			w, imageOnly,
			map[synth.Modality]ObsParams{synth.Image: {Fidelity: 1, Noise: 1.0}},
			func(_ *synth.World, e *synth.Entity) float64 { return 0.1*e.Eps + 1 }),
		NewSetService(
			feature.Def{Name: "img_ocr", Set: ImageSet, Servable: true},
			cfg.NumKeywords, "kw", imageOnly,
			map[synth.Modality]ObsParams{synth.Image: {Fidelity: 0.35, Dropout: 0.2, FalsePositive: 0.1}},
			func(e *synth.Entity) []int { return e.Keywords }),

		// --- Text-specific features (3) ---
		// A mature text-toxicity scorer: strong within text, absent for
		// images. Text models lean on it, which is precisely why they
		// transfer poorly to the new modality (§6.6).
		NewStatService(
			feature.Def{Name: "text_toxicity", Set: TextSet, Servable: true},
			w, textOnly,
			map[synth.Modality]ObsParams{synth.Text: {Fidelity: 1, Noise: 0.1}},
			func(w *synth.World, e *synth.Entity) float64 {
				var kw float64
				for _, k := range e.Keywords {
					kw += w.KeywordRisk(k)
				}
				kw /= float64(len(e.Keywords))
				return 2*kw + 0.5*math.Tanh(e.Eps)
			}),
		NewStatService(
			feature.Def{Name: "text_wordcount", Set: TextSet, Servable: true},
			w, textOnly,
			map[synth.Modality]ObsParams{synth.Text: {Fidelity: 1, Noise: 3}},
			func(_ *synth.World, e *synth.Entity) float64 { return float64(10 + 5*len(e.Keywords)) }),
		NewRuleService(
			feature.Def{Name: "text_emoji", Set: TextSet, Servable: true},
			w, textOnly,
			map[synth.Modality]ObsParams{synth.Text: {Fidelity: 0.9, Dropout: 0.02}},
			func(_ *synth.World, e *synth.Entity) bool { return e.Keywords[0]%3 == 0 }),
	}
	return NewLibrary(w, resources...)
}
