package resource

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// The checked featurization path. The plain Resource interface models the
// in-process simulation, where a service call cannot fail; production
// organizational resources are remote services that time out, throttle, and
// brown out. A resource that can fail implements Fallible, and a Library
// built WithGuards calls it through a Guard: per-attempt timeout,
// capped-exponential-backoff retry with deterministic jitter, and a circuit
// breaker per resource. Libraries without guards (every production caller
// today) never touch this path, so the infallible pipeline is bit-identical
// to before.

// Fallible is the error-returning variant of Resource. CheckPoint performs
// one full service call for one point (the same unit ObservePoint computes)
// and must honor ctx: simulated or real latency must return ctx.Err() when
// the context ends first. Implementations must be safe for concurrent use.
type Fallible interface {
	Resource
	CheckPoint(ctx context.Context, p *synth.Point) (feature.Value, error)
}

// Sentinel errors for the checked path. The serving layer maps
// ErrBreakerOpen to 503 + Retry-After.
var (
	// ErrBreakerOpen means the resource's circuit breaker rejected the call.
	ErrBreakerOpen = errors.New("resource: circuit breaker open")
	// ErrUnavailable means every channel applicable to a point failed, so no
	// usable vector exists (and no stale copy was available upstream).
	ErrUnavailable = errors.New("resource: all channels failed")
)

// Policy tunes one resource's Guard. The zero value means "use defaults".
type Policy struct {
	// Timeout bounds each attempt (0 = no per-attempt timeout).
	Timeout time.Duration
	// MaxAttempts is the total number of tries including the first
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 1ms); each
	// further retry doubles it, capped at MaxBackoff (default 50ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac scales each backoff by a factor uniform in
	// [1-JitterFrac, 1+JitterFrac] (default 0.2), drawn from a
	// deterministic per-guard xrand stream so runs replay exactly.
	JitterFrac float64
	// BreakerThreshold trips the breaker after this many consecutive
	// failures (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open probe delay (default 100ms).
	BreakerCooldown time.Duration
	// Seed salts the jitter stream (mixed with the resource name).
	Seed uint64
	// Sleep and Now are test seams (nil = time.Sleep / time.Now).
	Sleep func(time.Duration)
	Now   func() time.Time
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// GuardStats is a snapshot of one guard's counters.
type GuardStats struct {
	Calls          uint64 // checked observations requested
	Retries        uint64 // extra attempts beyond the first
	Failures       uint64 // observations that exhausted every attempt
	BreakerRejects uint64 // observations refused by an open breaker
}

// Guard wraps one resource with the retry/timeout/breaker discipline. Build
// via Library.WithGuards.
type Guard struct {
	res Resource
	fal Fallible // nil when the resource cannot fail
	pol Policy
	brk *Breaker

	mu     sync.Mutex
	jitter *rand.Rand

	calls          atomic.Uint64
	retries        atomic.Uint64
	failures       atomic.Uint64
	breakerRejects atomic.Uint64
}

// NewGuard wraps r under pol. Exposed for tests; pipelines should use
// Library.WithGuards.
func NewGuard(r Resource, pol Policy) *Guard {
	pol = pol.withDefaults()
	name := r.Def().Name
	g := &Guard{
		res:    r,
		pol:    pol,
		brk:    NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown, pol.Now),
		jitter: xrand.New(int64(xrand.HashString(pol.Seed, name))),
	}
	if f, ok := r.(Fallible); ok {
		g.fal = f
	}
	return g
}

// Resource returns the wrapped resource.
func (g *Guard) Resource() Resource { return g.res }

// Breaker returns the guard's circuit breaker.
func (g *Guard) Breaker() *Breaker { return g.brk }

// Stats snapshots the guard's counters.
func (g *Guard) Stats() GuardStats {
	return GuardStats{
		Calls:          g.calls.Load(),
		Retries:        g.retries.Load(),
		Failures:       g.failures.Load(),
		BreakerRejects: g.breakerRejects.Load(),
	}
}

// backoff computes the jittered delay before retry attempt (attempt >= 1).
func (g *Guard) backoff(attempt int) time.Duration {
	d := g.pol.BaseBackoff
	for i := 1; i < attempt && d < g.pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > g.pol.MaxBackoff {
		d = g.pol.MaxBackoff
	}
	g.mu.Lock()
	f := 1 + g.pol.JitterFrac*(2*g.jitter.Float64()-1)
	g.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// Observe performs one checked observation of p: at most MaxAttempts calls,
// each under the per-attempt timeout, with backoff between attempts, all
// gated by the breaker. Infallible resources short-circuit to ObservePoint —
// same bits as the unchecked path, no breaker bookkeeping.
func (g *Guard) Observe(ctx context.Context, p *synth.Point) (feature.Value, error) {
	g.calls.Add(1)
	if g.fal == nil {
		return ObservePoint(g.res, p), nil
	}
	name := g.res.Def().Name
	var lastErr error
	for attempt := 0; attempt < g.pol.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return feature.Value{Missing: true}, err
		}
		if attempt > 0 {
			g.retries.Add(1)
			g.pol.Sleep(g.backoff(attempt))
			if err := ctx.Err(); err != nil {
				return feature.Value{Missing: true}, err
			}
		}
		if !g.brk.Allow() {
			g.breakerRejects.Add(1)
			return feature.Value{Missing: true}, fmt.Errorf("resource %q: %w", name, ErrBreakerOpen)
		}
		val, err := g.attempt(ctx, p)
		if err == nil {
			g.brk.Success()
			return val, nil
		}
		g.brk.Failure()
		lastErr = err
		if ctx.Err() != nil {
			// The parent is gone (or out of budget); retrying cannot help.
			break
		}
	}
	g.failures.Add(1)
	return feature.Value{Missing: true}, fmt.Errorf("resource %q: %w", name, lastErr)
}

// attempt runs one call under the per-attempt timeout.
func (g *Guard) attempt(ctx context.Context, p *synth.Point) (feature.Value, error) {
	if g.pol.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.pol.Timeout)
		defer cancel()
	}
	return g.fal.CheckPoint(ctx, p)
}

// WithGuards returns a copy of the library whose checked featurization path
// calls every resource through a Guard under def (overridden per resource
// name by per). The unchecked path (FeaturizePoint/Featurize) is untouched.
func (l *Library) WithGuards(def Policy, per map[string]Policy) *Library {
	guards := make([]*Guard, len(l.resources))
	for i, r := range l.resources {
		pol := def
		if o, ok := per[r.Def().Name]; ok {
			pol = o
		}
		guards[i] = NewGuard(r, pol)
	}
	return &Library{world: l.world, resources: l.resources, schema: l.schema, guards: guards}
}

// Guarded reports whether the library was built WithGuards.
func (l *Library) Guarded() bool { return l.guards != nil }

// Guard returns the guard for the named resource, or nil if the library is
// unguarded or the name is unknown.
func (l *Library) Guard(name string) *Guard {
	for i, r := range l.resources {
		if l.guards != nil && r.Def().Name == name {
			return l.guards[i]
		}
	}
	return nil
}

// GuardStatus is one resource's health snapshot, as exported on /metrics.
type GuardStatus struct {
	Name  string
	State BreakerState
	Opens uint64
	GuardStats
}

// GuardStatuses snapshots every guard in schema order (nil if unguarded).
func (l *Library) GuardStatuses() []GuardStatus {
	if l.guards == nil {
		return nil
	}
	out := make([]GuardStatus, len(l.guards))
	for i, g := range l.guards {
		out[i] = GuardStatus{
			Name:       l.resources[i].Def().Name,
			State:      g.brk.State(),
			Opens:      g.brk.Opens(),
			GuardStats: g.Stats(),
		}
	}
	return out
}

// Checked is the per-point result of the checked featurization path.
type Checked struct {
	// Vec is the point's vector; nil when Err is set.
	Vec *feature.Vector
	// Failed lists channels whose service calls exhausted retries; their
	// features are missing in Vec. Empty on a clean point.
	Failed []string
	// Err is set when every applicable channel failed (wraps
	// ErrUnavailable, and ErrBreakerOpen if a breaker was involved).
	Err error
}

// FeaturizePointChecked featurizes one point through the guards. Per-channel
// failures degrade the vector (feature left missing, channel recorded in
// failed); a point where every applicable channel fails returns an error; a
// parent-context cancellation or deadline aborts immediately. On an
// unguarded library it is exactly FeaturizePoint.
func (l *Library) FeaturizePointChecked(ctx context.Context, p *synth.Point) (vec *feature.Vector, failed []string, err error) {
	if l.guards == nil {
		return l.FeaturizePoint(p), nil, nil
	}
	v := feature.NewVector(l.schema)
	attempted, succeeded := 0, 0
	breakerOpen := false
	for i, r := range l.resources {
		if !Applicable(r, p) {
			continue
		}
		attempted++
		val, err := l.guards[i].Observe(ctx, p)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, cerr
			}
			if errors.Is(err, ErrBreakerOpen) {
				breakerOpen = true
			}
			failed = append(failed, r.Def().Name)
			continue
		}
		succeeded++
		v.MustSet(r.Def().Name, val)
	}
	if attempted > 0 && succeeded == 0 && len(failed) > 0 {
		err := fmt.Errorf("resource: point %d: %w", p.ID, ErrUnavailable)
		if breakerOpen {
			err = fmt.Errorf("resource: point %d: %w: %w", p.ID, ErrUnavailable, ErrBreakerOpen)
		}
		return nil, failed, err
	}
	return v, failed, nil
}

// FeaturizeChecked runs the checked path over a corpus in parallel. Per-point
// failures are carried in each Checked.Err rather than failing the batch, so
// a caller with a stale cache can still salvage the points that have one;
// only context cancellation fails the whole call.
func (l *Library) FeaturizeChecked(ctx context.Context, cfg mapreduce.Config, pts []*synth.Point) ([]Checked, error) {
	return mapreduce.Map(ctx, cfg, pts, func(p *synth.Point) (Checked, error) {
		vec, failed, err := l.FeaturizePointChecked(ctx, p)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return Checked{}, cerr
			}
			return Checked{Failed: failed, Err: err}, nil
		}
		return Checked{Vec: vec, Failed: failed}, nil
	})
}
