package synth

import (
	"fmt"
	"math/rand"
	"sort"
)

// Task is one binary classification task over entities (e.g. "sensitive
// content", "illegal product"). A task scores an entity by weighting its
// latent risk attributes, then labels it positive when the score exceeds a
// threshold calibrated to the task's target positive rate.
//
// The weights determine which organizational resources are informative for
// the task, and EpsWeight determines how much label variance no feature can
// explain — the paper's "relative difficulty in modeling each task with our
// manually curated features" (§6.4).
type Task struct {
	Name string
	// TargetPositiveRate is the desired positive fraction under the old
	// (text) modality prior; Table 1 reports these per task.
	TargetPositiveRate float64

	TopicWeight   float64
	ObjectWeight  float64
	UserWeight    float64
	URLWeight     float64
	KeywordWeight float64
	// EpsWeight scales idiosyncratic, unobservable risk.
	EpsWeight float64

	threshold  float64
	calibrated bool
}

// Score returns the task's latent risk score for an entity: a noisy-OR over
// the weighted attribute risks plus idiosyncratic noise. The noisy-OR form
// gives violation tasks their characteristic structure — a single strong
// signal (an illegal object, a notorious URL) suffices to make an entity
// positive ("easy modes" that labeling functions capture, §4.4), while
// borderline positives arise from combinations of moderate signals (which
// label propagation recovers).
func (t *Task) Score(w *World, e *Entity) float64 {
	benign := 1.0
	for _, c := range [...]float64{
		t.TopicWeight * w.TopicRisk(e.Topic),
		t.ObjectWeight * w.maxObjectRisk(e),
		t.UserWeight * w.UserBadness(e.User),
		t.URLWeight * w.URLRisk(e.URLGroup),
		t.KeywordWeight * w.meanKeywordRisk(e),
	} {
		benign *= 1 - clamp01(c)
	}
	return (1 - benign) + t.EpsWeight*e.Eps
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Calibrate fixes the decision threshold so that the positive rate over the
// old-modality entity prior approximates TargetPositiveRate, using n Monte
// Carlo samples. It must be called once before Label.
func (t *Task) Calibrate(w *World, n int, seed int64) error {
	if t.TargetPositiveRate <= 0 || t.TargetPositiveRate >= 1 {
		return fmt.Errorf("synth: task %s has invalid positive rate %v", t.Name, t.TargetPositiveRate)
	}
	if n < 100 {
		return fmt.Errorf("synth: calibration needs >= 100 samples, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = t.Score(w, w.SampleEntity(rng, Text, i))
	}
	sort.Float64s(scores)
	idx := int(float64(n) * (1 - t.TargetPositiveRate))
	if idx >= n {
		idx = n - 1
	}
	t.threshold = scores[idx]
	t.calibrated = true
	return nil
}

// Label returns +1 if the entity is a task positive and -1 otherwise.
// It panics if the task has not been calibrated — a programming error.
func (t *Task) Label(w *World, e *Entity) int8 {
	if !t.calibrated {
		panic(fmt.Sprintf("synth: task %s used before Calibrate", t.Name))
	}
	if t.Score(w, e) > t.threshold {
		return 1
	}
	return -1
}

// Threshold returns the calibrated decision threshold.
func (t *Task) Threshold() float64 { return t.threshold }

// StandardTasks returns the five classification tasks CT1–CT5 with the
// positive rates of paper Table 1 and difficulty profiles chosen to
// reproduce the paper's qualitative spread (Table 2):
//
//   - CT1: moderately feature-expressible topic task.
//   - CT2: strongly feature-expressible keyword/topic task (mined LFs alone
//     suffice; Table 3 shows no labelprop lift).
//   - CT3: weakly feature-expressible task (large idiosyncratic risk) — the
//     text model underperforms the embedding baseline and the cross-over
//     point is small.
//   - CT4: heavily imbalanced object task (0.9% positive) — label
//     propagation delivers its largest recall lift here.
//   - CT5: strongly feature-expressible user/URL task — the cross-modal
//     pipeline is hardest to beat with hand labels (largest cross-over).
func StandardTasks() []*Task {
	return []*Task{
		{
			Name: "CT1", TargetPositiveRate: 0.041,
			TopicWeight: 1.0, ObjectWeight: 0.95, UserWeight: 0.5,
			URLWeight: 0.3, KeywordWeight: 0.3, EpsWeight: 0.18,
		},
		{
			Name: "CT2", TargetPositiveRate: 0.093,
			TopicWeight: 1.1, ObjectWeight: 0.3, UserWeight: 0.3,
			URLWeight: 0.4, KeywordWeight: 1.0, EpsWeight: 0.10,
		},
		{
			Name: "CT3", TargetPositiveRate: 0.032,
			TopicWeight: 0.5, ObjectWeight: 0.3, UserWeight: 0.2,
			URLWeight: 0.2, KeywordWeight: 0.2, EpsWeight: 0.55,
		},
		{
			Name: "CT4", TargetPositiveRate: 0.009,
			TopicWeight: 0.6, ObjectWeight: 1.1, UserWeight: 0.4,
			URLWeight: 0.3, KeywordWeight: 0.3, EpsWeight: 0.22,
		},
		{
			Name: "CT5", TargetPositiveRate: 0.069,
			TopicWeight: 0.8, ObjectWeight: 0.7, UserWeight: 0.9,
			URLWeight: 0.7, KeywordWeight: 0.4, EpsWeight: 0.08,
		},
	}
}

// TaskByName returns the standard task with the given name, or an error.
func TaskByName(name string) (*Task, error) {
	for _, t := range StandardTasks() {
		if t.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("synth: unknown task %q", name)
}
