package synth

import (
	"reflect"
	"testing"

	"crossmodal/internal/xrand"
)

// pointFingerprint flattens the fields that downstream stages (featurization,
// labeling, serving) can observe.
type pointFingerprint struct {
	ID       int
	Modality Modality
	Seed     uint64
	Frames   int
	Label    int8
	Topic    int
	User     int
	URLGroup int
	Objects  []int
	Keywords []int
}

func fingerprint(p *Point) pointFingerprint {
	return pointFingerprint{
		ID:       p.ID,
		Modality: p.Modality,
		Seed:     p.Seed,
		Frames:   p.Frames,
		Label:    p.Label,
		Topic:    p.Entity.Topic,
		User:     p.Entity.User,
		URLGroup: p.Entity.URLGroup,
		Objects:  p.Entity.Objects,
		Keywords: p.Entity.Keywords,
	}
}

func fingerprints(pts []*Point) []pointFingerprint {
	out := make([]pointFingerprint, len(pts))
	for i, p := range pts {
		out[i] = fingerprint(p)
	}
	return out
}

// TestBuildDatasetDeterminism: two independently constructed worlds and
// datasets from the same seeds must be bit-identical, corpus by corpus. The
// pipeline's Workers knob never reaches dataset sampling, so this is the
// invariant that makes parallel featurization runs comparable at all.
func TestBuildDatasetDeterminism(t *testing.T) {
	cfg := DatasetConfig{Seed: 11, NumText: 800, NumUnlabeledImage: 400, NumHandLabelPool: 300, NumTest: 300}
	build := func() *Dataset {
		w := MustWorld(DefaultConfig())
		task, err := TaskByName("CT2")
		if err != nil {
			t.Fatal(err)
		}
		ds, err := BuildDataset(w, task, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := build(), build()
	for _, corpus := range []struct {
		name string
		x, y []*Point
	}{
		{"LabeledText", a.LabeledText, b.LabeledText},
		{"UnlabeledImage", a.UnlabeledImage, b.UnlabeledImage},
		{"HandLabelPool", a.HandLabelPool, b.HandLabelPool},
		{"TestImage", a.TestImage, b.TestImage},
	} {
		if !reflect.DeepEqual(fingerprints(corpus.x), fingerprints(corpus.y)) {
			t.Errorf("%s differs between identically seeded builds", corpus.name)
		}
	}
}

// TestSampleVideoDeterminism: repeated draws with the same seed are
// bit-identical; different seeds diverge.
func TestSampleVideoDeterminism(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task, err := TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Calibrate(w, 5000, 2); err != nil {
		t.Fatal(err)
	}
	a := SampleVideo(w, task, 20, 3, 9)
	b := SampleVideo(w, task, 20, 3, 9)
	if !reflect.DeepEqual(fingerprints(a), fingerprints(b)) {
		t.Error("same seed produced different video corpora")
	}
	c := SampleVideo(w, task, 20, 3, 10)
	if reflect.DeepEqual(fingerprints(a), fingerprints(c)) {
		t.Error("different seeds produced identical video corpora")
	}
}

// TestPointSeedContract pins the per-ID seed formulas. serve.DerivePoint
// re-derives corpus points from (baseSeed, id) alone, so these mixes are a
// wire contract: changing them silently breaks replayed featurization for
// every deployed model (see PR 3's serving contract).
func TestPointSeedContract(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task, err := TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DatasetConfig{Seed: 21, NumText: 300, NumUnlabeledImage: 200, NumHandLabelPool: 200, NumTest: 200}
	ds, err := BuildDataset(w, task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append(append(append([]*Point{}, ds.LabeledText...), ds.UnlabeledImage...), ds.HandLabelPool...), ds.TestImage...)
	for _, p := range all {
		want := xrand.Mix(uint64(cfg.Seed)<<20 ^ uint64(p.ID))
		if p.Seed != want {
			t.Fatalf("point %d: Seed = %#x, want Mix(seed<<20 ^ id) = %#x", p.ID, p.Seed, want)
		}
	}

	if err := task.Calibrate(w, 5000, 2); err != nil {
		t.Fatal(err)
	}
	const vidSeed = 9
	for i, v := range SampleVideo(w, task, 10, 2, vidSeed) {
		want := xrand.Mix(uint64(int64(vidSeed))<<20 ^ uint64(i) ^ 0xf00d)
		if v.Seed != want {
			t.Fatalf("video %d: Seed = %#x, want Mix(seed<<20 ^ i ^ 0xf00d) = %#x", i, v.Seed, want)
		}
	}
}

// TestFeatureDeterminismFromSeed: the observation streams depend only on
// Point.Seed and the channel name — not on the corpus position, the world
// instance, or anything process-local. This is what lets a server rebuild a
// point and featurize it identically.
func TestFeatureDeterminismFromSeed(t *testing.T) {
	p1 := &Point{ID: 5, Seed: 0xdeadbeef}
	p2 := &Point{ID: 900, Seed: 0xdeadbeef} // different ID, same seed
	for _, ch := range []string{"svcA", "svcB", "embed"} {
		if p1.ObservationRNG(ch).Float64() != p2.ObservationRNG(ch).Float64() {
			t.Errorf("channel %q: observation stream depends on more than Seed", ch)
		}
		if p1.FrameRNG(ch, 2).Float64() != p2.FrameRNG(ch, 2).Float64() {
			t.Errorf("channel %q: frame stream depends on more than Seed", ch)
		}
	}
}
