package synth

import "testing"

// TestStreamMatchesBuildDataset is the bit-identity gate for the streamed
// generator: chunked emission must reproduce BuildDataset's points exactly
// — same IDs, entities, seeds, labels — for every corpus, at any chunk
// size, including one that does not divide the corpus sizes.
func TestStreamMatchesBuildDataset(t *testing.T) {
	for _, chunk := range []int{1, 7, 64, 100000} {
		cfg := DatasetConfig{
			Seed:               41,
			NumText:            300,
			NumUnlabeledImage:  120,
			NumHandLabelPool:   35,
			NumTest:            90,
			CalibrationSamples: 2000,
		}
		w := MustWorld(DefaultConfig())
		task, err := TaskByName("CT1")
		if err != nil {
			t.Fatal(err)
		}
		ds, err := BuildDataset(w, task, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Fresh world and task: calibration must happen inside NewStream
		// exactly as it does inside BuildDataset.
		w2 := MustWorld(DefaultConfig())
		task2, err := TaskByName("CT1")
		if err != nil {
			t.Fatal(err)
		}
		stream, err := NewStream(w2, task2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := map[CorpusKind][]*Point{
			TextCorpus:  ds.LabeledText,
			ImageCorpus: ds.UnlabeledImage,
			PoolCorpus:  ds.HandLabelPool,
			TestCorpus:  ds.TestImage,
		}
		got := map[CorpusKind][]*Point{}
		for {
			c := stream.Next(chunk)
			if c == nil {
				break
			}
			if c.Start != len(got[c.Corpus]) {
				t.Fatalf("chunk=%d: corpus %v chunk starts at %d, have %d points", chunk, c.Corpus, c.Start, len(got[c.Corpus]))
			}
			if len(c.Points) == 0 || len(c.Points) > chunk {
				t.Fatalf("chunk=%d: corpus %v chunk has %d points", chunk, c.Corpus, len(c.Points))
			}
			got[c.Corpus] = append(got[c.Corpus], c.Points...)
		}
		for k, wantPts := range want {
			gotPts := got[k]
			if len(gotPts) != len(wantPts) {
				t.Fatalf("chunk=%d: corpus %v: %d points, want %d", chunk, k, len(gotPts), len(wantPts))
			}
			for i := range wantPts {
				a, b := wantPts[i], gotPts[i]
				if a.ID != b.ID || a.Seed != b.Seed || a.Label != b.Label || a.Modality != b.Modality {
					t.Fatalf("chunk=%d: corpus %v point %d: got {id %d seed %x label %d}, want {id %d seed %x label %d}",
						chunk, k, i, b.ID, b.Seed, b.Label, a.ID, a.Seed, a.Label)
				}
				if a.Entity.Topic != b.Entity.Topic || a.Entity.Eps != b.Entity.Eps || a.Entity.User != b.Entity.User {
					t.Fatalf("chunk=%d: corpus %v point %d: entity diverged", chunk, k, i)
				}
			}
		}
	}
}

func TestStreamRemaining(t *testing.T) {
	cfg := DatasetConfig{Seed: 3, NumText: 10, NumUnlabeledImage: 5, NumHandLabelPool: 0, NumTest: 4, CalibrationSamples: 500}
	w := MustWorld(DefaultConfig())
	task, err := TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(w, task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Remaining(TextCorpus) != 10 || s.Remaining(TestCorpus) != 4 {
		t.Fatalf("fresh stream remaining wrong: %d/%d", s.Remaining(TextCorpus), s.Remaining(TestCorpus))
	}
	c := s.Next(6)
	if c.Corpus != TextCorpus || len(c.Points) != 6 {
		t.Fatalf("first chunk: %v/%d", c.Corpus, len(c.Points))
	}
	if s.Remaining(TextCorpus) != 4 {
		t.Fatalf("remaining text = %d, want 4", s.Remaining(TextCorpus))
	}
	// Pool is empty; the stream must skip it without emitting a chunk.
	var kinds []CorpusKind
	for {
		c := s.Next(100)
		if c == nil {
			break
		}
		kinds = append(kinds, c.Corpus)
	}
	wantKinds := []CorpusKind{TextCorpus, ImageCorpus, TestCorpus}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("chunk corpora %v, want %v", kinds, wantKinds)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("chunk corpora %v, want %v", kinds, wantKinds)
		}
	}
	if s.Next(1) != nil {
		t.Fatal("exhausted stream yielded another chunk")
	}
}

// TestCorpusKindString pins the corpus names consumers use in shard paths
// and log lines.
func TestCorpusKindString(t *testing.T) {
	cases := map[CorpusKind]string{
		TextCorpus:     "text",
		ImageCorpus:    "image",
		PoolCorpus:     "pool",
		TestCorpus:     "test",
		CorpusKind(99): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("CorpusKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestStreamSizeAndPastCorpus: Size reports config totals regardless of
// position, Remaining reports 0 for a corpus the stream has moved past, and
// a non-positive max falls back to the default chunk size.
func TestStreamSizeAndPastCorpus(t *testing.T) {
	cfg := DatasetConfig{Seed: 9, NumText: 6, NumUnlabeledImage: 3, NumHandLabelPool: 2, NumTest: 4, CalibrationSamples: 500}
	w := MustWorld(DefaultConfig())
	task, err := TaskByName("CT2")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(w, task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size(TextCorpus) != 6 || s.Size(ImageCorpus) != 3 || s.Size(PoolCorpus) != 2 || s.Size(TestCorpus) != 4 {
		t.Fatalf("sizes %d/%d/%d/%d do not match config",
			s.Size(TextCorpus), s.Size(ImageCorpus), s.Size(PoolCorpus), s.Size(TestCorpus))
	}
	c := s.Next(0)
	if c == nil || c.Corpus != TextCorpus || len(c.Points) != 6 {
		t.Fatalf("Next(0) did not drain the text corpus under the default max: %+v", c)
	}
	c = s.Next(-1)
	if c == nil || c.Corpus != ImageCorpus || len(c.Points) != 3 {
		t.Fatalf("Next(-1) did not drain the image corpus under the default max: %+v", c)
	}
	if got := s.Remaining(TextCorpus); got != 0 {
		t.Fatalf("Remaining(text) = %d after moving past it, want 0", got)
	}
	if s.Size(TextCorpus) != 6 {
		t.Fatalf("Size(text) changed mid-stream: %d", s.Size(TextCorpus))
	}
}

// TestNewStreamRejectsBadConfig: NewStream applies the same config
// validation as BuildDataset before touching the task or RNG.
func TestNewStreamRejectsBadConfig(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task, err := TaskByName("CT1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStream(w, task, DatasetConfig{Seed: 1}); err == nil {
		t.Fatal("NewStream accepted zero corpus sizes")
	}
	bad := DatasetConfig{Seed: 1, NumText: 5, NumUnlabeledImage: 5, NumHandLabelPool: -1, NumTest: 5}
	if _, err := NewStream(w, task, bad); err == nil {
		t.Fatal("NewStream accepted a negative hand-label pool")
	}
}
