package synth

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewWorldValidation(t *testing.T) {
	bad := []Config{
		{},
		{NumTopics: 1, NumObjects: 2, NumUsers: 1, NumURLGroups: 1, NumKeywords: 1, EmbeddingDim: 1},
		{NumTopics: 2, NumObjects: 2, NumUsers: 1, NumURLGroups: 1, NumKeywords: 1, EmbeddingDim: 0},
	}
	for i, cfg := range bad {
		if _, err := NewWorld(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
	if _, err := NewWorld(DefaultConfig()); err != nil {
		t.Fatalf("default config: %v", err)
	}
}

func TestWorldDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	w1, w2 := MustWorld(cfg), MustWorld(cfg)
	for i := 0; i < cfg.NumTopics; i++ {
		if w1.TopicRisk(i) != w2.TopicRisk(i) {
			t.Fatal("same seed produced different topic risks")
		}
	}
	r1 := rand.New(rand.NewSource(3))
	r2 := rand.New(rand.NewSource(3))
	e1 := w1.SampleEntity(r1, Text, 0)
	e2 := w2.SampleEntity(r2, Text, 0)
	if e1.Topic != e2.Topic || e1.User != e2.User || len(e1.Objects) != len(e2.Objects) {
		t.Error("same seed produced different entities")
	}
}

func TestEntityShape(t *testing.T) {
	w := MustWorld(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		e := w.SampleEntity(rng, Image, i)
		if e.Topic < 0 || e.Topic >= w.cfg.NumTopics {
			t.Fatalf("topic out of range: %d", e.Topic)
		}
		if len(e.Objects) < 1 || len(e.Objects) > 3 {
			t.Fatalf("objects count = %d", len(e.Objects))
		}
		seen := map[int]bool{}
		for _, o := range e.Objects {
			if seen[o] {
				t.Fatal("duplicate object")
			}
			seen[o] = true
			if o < 0 || o >= w.cfg.NumObjects {
				t.Fatalf("object out of range: %d", o)
			}
		}
		if len(e.Keywords) < 1 || len(e.Keywords) > 4 {
			t.Fatalf("keywords count = %d", len(e.Keywords))
		}
	}
}

func TestTopicDriftShiftsPrior(t *testing.T) {
	cfg := DefaultConfig()
	w := MustWorld(cfg)
	rng := rand.New(rand.NewSource(5))
	const n = 30000
	textCounts := make([]float64, cfg.NumTopics)
	imgCounts := make([]float64, cfg.NumTopics)
	for i := 0; i < n; i++ {
		textCounts[w.SampleEntity(rng, Text, i).Topic]++
		imgCounts[w.SampleEntity(rng, Image, i).Topic]++
	}
	var tv float64 // total variation distance between empirical priors
	for i := range textCounts {
		tv += math.Abs(textCounts[i]-imgCounts[i]) / n
	}
	tv /= 2
	if tv < 0.02 {
		t.Errorf("total variation between modality priors = %v, want noticeable drift", tv)
	}
}

func TestTaskCalibration(t *testing.T) {
	w := MustWorld(DefaultConfig())
	for _, task := range StandardTasks() {
		if err := task.Calibrate(w, 40000, 11); err != nil {
			t.Fatalf("%s: %v", task.Name, err)
		}
		rng := rand.New(rand.NewSource(99))
		pos := 0
		const n = 40000
		for i := 0; i < n; i++ {
			if task.Label(w, w.SampleEntity(rng, Text, i)) > 0 {
				pos++
			}
		}
		rate := float64(pos) / n
		if math.Abs(rate-task.TargetPositiveRate) > task.TargetPositiveRate*0.35+0.002 {
			t.Errorf("%s: positive rate %v, target %v", task.Name, rate, task.TargetPositiveRate)
		}
	}
}

func TestTaskCalibrateErrors(t *testing.T) {
	w := MustWorld(DefaultConfig())
	bad := &Task{Name: "bad", TargetPositiveRate: 0}
	if err := bad.Calibrate(w, 1000, 1); err == nil {
		t.Error("expected error for zero positive rate")
	}
	ok := &Task{Name: "small", TargetPositiveRate: 0.1, TopicWeight: 1}
	if err := ok.Calibrate(w, 10, 1); err == nil {
		t.Error("expected error for tiny calibration sample")
	}
}

func TestLabelPanicsUncalibrated(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task := &Task{Name: "x", TargetPositiveRate: 0.1, TopicWeight: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	task.Label(w, w.SampleEntity(rand.New(rand.NewSource(1)), Text, 0))
}

func TestTaskByName(t *testing.T) {
	task, err := TaskByName("CT3")
	if err != nil || task.Name != "CT3" {
		t.Fatalf("TaskByName(CT3) = %v, %v", task, err)
	}
	if _, err := TaskByName("CT99"); err == nil {
		t.Error("expected error for unknown task")
	}
}

func TestBuildDataset(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task, _ := TaskByName("CT1")
	cfg := DatasetConfig{Seed: 3, NumText: 2000, NumUnlabeledImage: 800, NumHandLabelPool: 500, NumTest: 600}
	ds, err := BuildDataset(w, task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.LabeledText) != 2000 || len(ds.UnlabeledImage) != 800 ||
		len(ds.HandLabelPool) != 500 || len(ds.TestImage) != 600 {
		t.Fatal("corpus sizes wrong")
	}
	seen := map[int]bool{}
	all := append(append(append(append([]*Point{}, ds.LabeledText...), ds.UnlabeledImage...), ds.HandLabelPool...), ds.TestImage...)
	for _, p := range all {
		if seen[p.ID] {
			t.Fatal("duplicate point ID across corpora (leakage)")
		}
		seen[p.ID] = true
		if p.Label != 1 && p.Label != -1 {
			t.Fatalf("label = %d", p.Label)
		}
	}
	for _, p := range ds.LabeledText {
		if p.Modality != Text {
			t.Fatal("text corpus has non-text point")
		}
	}
	for _, p := range ds.TestImage {
		if p.Modality != Image {
			t.Fatal("test corpus has non-image point")
		}
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task, _ := TaskByName("CT1")
	if _, err := BuildDataset(w, task, DatasetConfig{}); err == nil {
		t.Error("expected error for zero sizes")
	}
}

func TestDatasetPositiveRates(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := MustWorld(DefaultConfig())
	for _, task := range StandardTasks() {
		ds, err := BuildDataset(w, task, DefaultDatasetConfig())
		if err != nil {
			t.Fatal(err)
		}
		rate := PositiveRate(ds.LabeledText)
		if math.Abs(rate-task.TargetPositiveRate) > task.TargetPositiveRate*0.5+0.004 {
			t.Errorf("%s: text positive rate %v, target %v", task.Name, rate, task.TargetPositiveRate)
		}
		if PositiveRate(ds.TestImage) == 0 {
			t.Errorf("%s: test set has no positives", task.Name)
		}
	}
}

func TestObservationRNGDeterminism(t *testing.T) {
	p := &Point{ID: 1, Seed: 42}
	a := p.ObservationRNG("svc").Float64()
	b := p.ObservationRNG("svc").Float64()
	c := p.ObservationRNG("other").Float64()
	if a != b {
		t.Error("same channel should give identical streams")
	}
	if a == c {
		t.Error("different channels should give different streams")
	}
	f0 := p.FrameRNG("svc", 0).Float64()
	f1 := p.FrameRNG("svc", 1).Float64()
	if f0 == f1 {
		t.Error("different frames should give different streams")
	}
}

func TestSampleVideo(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task, _ := TaskByName("CT1")
	if err := task.Calibrate(w, 5000, 2); err != nil {
		t.Fatal(err)
	}
	vids := SampleVideo(w, task, 10, 4, 9)
	if len(vids) != 10 {
		t.Fatalf("got %d videos", len(vids))
	}
	for _, v := range vids {
		if v.Modality != Video || v.Frames != 4 {
			t.Fatalf("bad video point: %+v", v)
		}
	}
}

func TestLabelsAndPositiveRate(t *testing.T) {
	pts := []*Point{{Label: 1}, {Label: -1}, {Label: 1}, {Label: -1}}
	if got := PositiveRate(pts); got != 0.5 {
		t.Errorf("PositiveRate = %v", got)
	}
	if got := PositiveRate(nil); got != 0 {
		t.Errorf("PositiveRate(nil) = %v", got)
	}
	ls := Labels(pts)
	if len(ls) != 4 || ls[0] != 1 || ls[1] != -1 {
		t.Errorf("Labels = %v", ls)
	}
}
