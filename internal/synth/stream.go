package synth

// Stream generates the same dataset BuildDataset would — same shared RNG,
// same ID sequence, same labels — but hands it out in bounded chunks so
// million-point corpora never exist as one slice. The pipeline's streaming
// front half (core.CurateStreamed) drives it and spills each chunk to the
// disk feature store.

import (
	"math/rand"

	"crossmodal/internal/xrand"
)

// CorpusKind identifies which dataset corpus a streamed chunk belongs to.
type CorpusKind int

const (
	TextCorpus CorpusKind = iota
	ImageCorpus
	PoolCorpus
	TestCorpus
	numCorpora
)

func (k CorpusKind) String() string {
	switch k {
	case TextCorpus:
		return "text"
	case ImageCorpus:
		return "image"
	case PoolCorpus:
		return "pool"
	case TestCorpus:
		return "test"
	}
	return "unknown"
}

// Chunk is one bounded run of consecutive points from a single corpus.
// Points never span a corpus boundary, so a consumer can route each chunk
// wholesale by Corpus.
type Chunk struct {
	Corpus CorpusKind
	// Start is the chunk's offset within its corpus (not the global ID).
	Start  int
	Points []*Point
}

// Stream yields a dataset chunk by chunk. The generation order — and every
// RNG draw — is identical to BuildDataset at the same config, which is what
// makes the streamed pipeline bit-identical to the in-memory one: text,
// then unlabeled image, then hand-label pool, then test, all from one
// sequential generator.
type Stream struct {
	w      *World
	task   *Task
	cfg    DatasetConfig
	rng    *rand.Rand
	sizes  [numCorpora]int
	corpus CorpusKind
	offset int // points already emitted within the current corpus
	nextID int
}

// NewStream validates cfg, calibrates the task exactly as BuildDataset
// does, and returns a stream positioned at the first text point.
func NewStream(w *World, task *Task, cfg DatasetConfig) (*Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	calN := cfg.CalibrationSamples
	if calN == 0 {
		calN = 40000
	}
	if !task.calibrated {
		if err := task.Calibrate(w, calN, cfg.Seed^0x5ca1ab1e); err != nil {
			return nil, err
		}
	}
	s := &Stream{w: w, task: task, cfg: cfg, rng: xrand.New(cfg.Seed)}
	s.sizes = [numCorpora]int{cfg.NumText, cfg.NumUnlabeledImage, cfg.NumHandLabelPool, cfg.NumTest}
	return s, nil
}

// modalityOf maps a corpus to the modality BuildDataset samples it in.
func modalityOf(k CorpusKind) Modality {
	if k == TextCorpus {
		return Text
	}
	return Image
}

// Next returns the next chunk of at most max points, never crossing a
// corpus boundary. It returns nil when the dataset is exhausted.
func (s *Stream) Next(max int) *Chunk {
	if max <= 0 {
		max = 4096
	}
	// Skip empty corpora (the hand-label pool may be size 0).
	for s.corpus < numCorpora && s.offset == s.sizes[s.corpus] {
		s.corpus++
		s.offset = 0
	}
	if s.corpus >= numCorpora {
		return nil
	}
	n := s.sizes[s.corpus] - s.offset
	if n > max {
		n = max
	}
	m := modalityOf(s.corpus)
	pts := make([]*Point, n)
	for i := range pts {
		e := s.w.SampleEntity(s.rng, m, s.nextID)
		pts[i] = &Point{
			ID:       s.nextID,
			Entity:   e,
			Modality: m,
			Seed:     xrand.Mix(uint64(s.cfg.Seed)<<20 ^ uint64(s.nextID)),
			Label:    s.task.Label(s.w, e),
		}
		s.nextID++
	}
	c := &Chunk{Corpus: s.corpus, Start: s.offset, Points: pts}
	s.offset += n
	return c
}

// Remaining returns how many points are left in corpus k (including not-yet
// reached corpora in full).
func (s *Stream) Remaining(k CorpusKind) int {
	switch {
	case k < s.corpus:
		return 0
	case k == s.corpus:
		return s.sizes[k] - s.offset
	default:
		return s.sizes[k]
	}
}

// Size returns corpus k's total size under the stream's config.
func (s *Stream) Size(k CorpusKind) int { return s.sizes[k] }
