// Package synth generates the synthetic multi-modal corpora that stand in
// for the paper's (closed) Google production data.
//
// The design principle is a latent-world model: every data point is a noisy,
// partial *rendering* of a hidden entity (topic, objects present, the posting
// user, linked URL, keywords). Different data modalities render the same kind
// of hidden entity through different observation channels with different
// noise, which produces the paper's central phenomena by construction:
//
//   - the modality gap: raw text and image renderings share no direct link;
//   - the common feature space: organizational resources (internal/resource)
//     recover (noisy views of) the shared latent attributes from either
//     modality;
//   - covariate shift between modalities: the image corpus samples entities
//     from a drifted prior, so a model fit on text features transfers
//     imperfectly (paper §6.6);
//   - class imbalance: task labels threshold a latent risk score, calibrated
//     to the paper's Table 1 positive rates.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Modality identifies a data modality.
type Modality string

// The modalities exercised in the paper's evaluation: text is the old
// (labeled) modality, image the new one; video is used by the motivating
// example and is rendered as a bundle of image frames.
const (
	Text  Modality = "text"
	Image Modality = "image"
	Video Modality = "video"
)

// Config parametrizes a World.
type Config struct {
	Seed         int64
	NumTopics    int // latent content topics (topic-model services recover these)
	NumObjects   int // latent objects (object-detection services recover these)
	NumUsers     int // posting users (aggregate statistics attach to these)
	NumURLGroups int // linked-URL clusters (URL services attach to these)
	NumKeywords  int // keyword vocabulary (keyword services recover these)
	EmbeddingDim int // dimensionality of the "pre-trained" image embedding
	// TopicDrift shifts the topic popularity prior used when sampling
	// entities for the new (image) modality, creating covariate shift
	// between the modalities. 0 disables the shift; the evaluation uses a
	// moderate value.
	TopicDrift float64
}

// DefaultConfig returns the configuration used by the experiment suite.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		NumTopics:    24,
		NumObjects:   40,
		NumUsers:     1500,
		NumURLGroups: 60,
		NumKeywords:  80,
		EmbeddingDim: 16,
		TopicDrift:   0.5,
	}
}

func (c Config) validate() error {
	switch {
	case c.NumTopics <= 1:
		return fmt.Errorf("synth: NumTopics must be > 1, got %d", c.NumTopics)
	case c.NumObjects <= 1:
		return fmt.Errorf("synth: NumObjects must be > 1, got %d", c.NumObjects)
	case c.NumUsers <= 0:
		return fmt.Errorf("synth: NumUsers must be > 0, got %d", c.NumUsers)
	case c.NumURLGroups <= 0:
		return fmt.Errorf("synth: NumURLGroups must be > 0, got %d", c.NumURLGroups)
	case c.NumKeywords <= 0:
		return fmt.Errorf("synth: NumKeywords must be > 0, got %d", c.NumKeywords)
	case c.EmbeddingDim <= 0:
		return fmt.Errorf("synth: EmbeddingDim must be > 0, got %d", c.EmbeddingDim)
	}
	return nil
}

// World holds the latent structure shared by all data points: per-attribute
// risk loadings (how predictive each latent value is of "policy violating"
// content) and latent embedding directions used to render the pre-trained
// image embedding.
type World struct {
	cfg Config

	topicRisk   []float64 // in [0,1], loading of each topic on the risk score
	objectRisk  []float64
	userBadness []float64 // per-user propensity to post violating content
	urlRisk     []float64
	keywordRisk []float64

	topicPopText  []float64 // topic sampling prior for the old modality
	topicPopImage []float64 // drifted prior for the new modality

	urlPopText  []float64 // URL-group prior for the old modality
	urlPopImage []float64 // drifted prior for the new modality (new content
	// attracts a different link ecosystem)

	topicEmb  [][]float64 // latent embedding direction per topic
	objectEmb [][]float64

	userReports []float64 // aggregate statistic: historical reports per user
	urlShares   []float64 // aggregate statistic: shares per URL group
}

// NewWorld builds a world from cfg. The same (cfg, Seed) always produces the
// same world.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{cfg: cfg}

	w.topicRisk = riskLoadings(rng, cfg.NumTopics, 0.25)
	w.objectRisk = riskLoadings(rng, cfg.NumObjects, 0.1)
	w.urlRisk = riskLoadings(rng, cfg.NumURLGroups, 0.25)
	w.keywordRisk = riskLoadings(rng, cfg.NumKeywords, 0.15)

	w.userBadness = make([]float64, cfg.NumUsers)
	w.userReports = make([]float64, cfg.NumUsers)
	for i := range w.userBadness {
		// Most users are benign; a small tail is risky.
		b := rng.Float64()
		b = b * b * b
		w.userBadness[i] = b
		// Reports are a noisy aggregate of badness: an organizational
		// statistic another team has accumulated.
		w.userReports[i] = math.Max(0, b*20+rng.NormFloat64()*1.5)
	}

	w.urlShares = make([]float64, cfg.NumURLGroups)
	for i := range w.urlShares {
		w.urlShares[i] = math.Max(0, rng.ExpFloat64()*10*(0.5+w.urlRisk[i]))
	}

	// Risky topics are unpopular (violating content is a small corner of
	// the platform); without this, the task threshold would slice deep
	// into the risky modes and no feature value could be precise.
	w.topicPopText = popularity(rng, cfg.NumTopics)
	for i := range w.topicPopText {
		w.topicPopText[i] *= 1 - 0.92*w.topicRisk[i]*w.topicRisk[i]
	}
	renormalize(w.topicPopText)
	w.topicPopImage = drift(rng, w.topicPopText, cfg.TopicDrift)

	// URL groups follow the same pattern: risky link destinations are
	// unpopular, and the new modality's link ecosystem is drifted.
	w.urlPopText = popularity(rng, cfg.NumURLGroups)
	for i := range w.urlPopText {
		w.urlPopText[i] *= 1 - 0.92*w.urlRisk[i]*w.urlRisk[i]
	}
	renormalize(w.urlPopText)
	w.urlPopImage = drift(rng, w.urlPopText, cfg.TopicDrift)

	w.topicEmb = randomDirections(rng, cfg.NumTopics, cfg.EmbeddingDim)
	w.objectEmb = randomDirections(rng, cfg.NumObjects, cfg.EmbeddingDim)
	return w, nil
}

// MustWorld is NewWorld that panics on error; for tests and examples.
func MustWorld(cfg Config) *World {
	w, err := NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// riskLoadings draws per-value risk loadings: a small fraction of values
// are strongly risky (a violation mode on their own), a similar fraction
// moderately risky (positive only in combination), and the rest near zero —
// matching how only a few topics or objects indicate a policy violation.
func riskLoadings(rng *rand.Rand, n int, riskyFrac float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch u := rng.Float64(); {
		case u < riskyFrac/2:
			out[i] = 0.75 + 0.25*rng.Float64() // strong mode
		case u < riskyFrac:
			out[i] = 0.35 + 0.25*rng.Float64() // borderline contributor
		default:
			out[i] = 0.12 * rng.Float64()
		}
	}
	return out
}

func renormalize(p []float64) {
	var sum float64
	for _, v := range p {
		sum += v
	}
	for i := range p {
		p[i] /= sum
	}
}

// popularity draws a normalized power-law-ish popularity vector.
func popularity(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = rng.ExpFloat64() + 0.05
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// drift reweights a distribution by random multiplicative noise of magnitude
// amount, renormalizing. amount 0 returns a copy.
func drift(rng *rand.Rand, p []float64, amount float64) []float64 {
	out := make([]float64, len(p))
	var sum float64
	for i, v := range p {
		out[i] = v * math.Exp(amount*rng.NormFloat64())
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func randomDirections(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		var norm float64
		for j := range v {
			v[j] = rng.NormFloat64()
			norm += v[j] * v[j]
		}
		norm = math.Sqrt(norm)
		for j := range v {
			v[j] /= norm
		}
		out[i] = v
	}
	return out
}

// Entity is one hidden content entity. Every data point renders exactly one
// entity; entities are never shared between the text and image corpora
// (there is no direct link between modalities — the paper's modality gap).
type Entity struct {
	ID       int
	Topic    int
	Objects  []int
	User     int
	URLGroup int
	Keywords []int
	// Eps is idiosyncratic risk not explained by any observable latent
	// attribute. Tasks weight it differently; tasks with large Eps weight
	// are intrinsically hard for any feature-based model.
	Eps float64
}

// SampleEntity draws an entity from the world prior for the given modality
// (the image prior is drifted; see Config.TopicDrift).
func (w *World) SampleEntity(rng *rand.Rand, m Modality, id int) *Entity {
	pop := w.topicPopText
	if m == Image || m == Video {
		pop = w.topicPopImage
	}
	urlPop := w.urlPopText
	if m == Image || m == Video {
		urlPop = w.urlPopImage
	}
	e := &Entity{
		ID:       id,
		Topic:    sampleIndex(rng, pop),
		User:     rng.Intn(w.cfg.NumUsers),
		URLGroup: sampleIndex(rng, urlPop),
		Eps:      rng.NormFloat64(),
	}
	// Objects co-occur with the topic: half drawn from a topic-conditioned
	// block, half uniform.
	nObj := 1 + rng.Intn(3)
	for len(e.Objects) < nObj {
		var o int
		if rng.Float64() < 0.5 {
			o = (e.Topic*3 + rng.Intn(6)) % w.cfg.NumObjects
		} else {
			o = rng.Intn(w.cfg.NumObjects)
		}
		if !containsInt(e.Objects, o) {
			e.Objects = append(e.Objects, o)
		}
	}
	sort.Ints(e.Objects)
	nKw := 1 + rng.Intn(4)
	for len(e.Keywords) < nKw {
		var k int
		if rng.Float64() < 0.5 {
			k = (e.Topic*4 + rng.Intn(8)) % w.cfg.NumKeywords
		} else {
			k = rng.Intn(w.cfg.NumKeywords)
		}
		if !containsInt(e.Keywords, k) {
			e.Keywords = append(e.Keywords, k)
		}
	}
	sort.Ints(e.Keywords)
	return e
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func sampleIndex(rng *rand.Rand, p []float64) int {
	u := rng.Float64()
	var acc float64
	for i, v := range p {
		acc += v
		if u <= acc {
			return i
		}
	}
	return len(p) - 1
}

// Risk loadings accessors, used by tasks to score entities and by tests to
// verify calibration.

// TopicRisk returns the risk loading of topic t.
func (w *World) TopicRisk(t int) float64 { return w.topicRisk[t] }

// ObjectRisk returns the risk loading of object o.
func (w *World) ObjectRisk(o int) float64 { return w.objectRisk[o] }

// UserBadness returns the latent badness of user u.
func (w *World) UserBadness(u int) float64 { return w.userBadness[u] }

// URLRisk returns the risk loading of URL group g.
func (w *World) URLRisk(g int) float64 { return w.urlRisk[g] }

// KeywordRisk returns the risk loading of keyword k.
func (w *World) KeywordRisk(k int) float64 { return w.keywordRisk[k] }

// UserReports returns the aggregate report count statistic for user u.
func (w *World) UserReports(u int) float64 { return w.userReports[u] }

// URLShares returns the aggregate share count statistic for URL group g.
func (w *World) URLShares(g int) float64 { return w.urlShares[g] }

// TopicPopularity returns (a copy of) the topic sampling prior of the given
// modality — what a production topic classifier's output prior looks like.
func (w *World) TopicPopularity(m Modality) []float64 {
	src := w.topicPopText
	if m == Image || m == Video {
		src = w.topicPopImage
	}
	return append([]float64(nil), src...)
}

// URLPopularity returns (a copy of) the URL-group prior of the given
// modality.
func (w *World) URLPopularity(m Modality) []float64 {
	src := w.urlPopText
	if m == Image || m == Video {
		src = w.urlPopImage
	}
	return append([]float64(nil), src...)
}

// TopicEmbedding returns the latent embedding direction of topic t.
func (w *World) TopicEmbedding(t int) []float64 { return w.topicEmb[t] }

// ObjectEmbedding returns the latent embedding direction of object o.
func (w *World) ObjectEmbedding(o int) []float64 { return w.objectEmb[o] }

// maxObjectRisk returns the largest risk loading among the entity's objects.
func (w *World) maxObjectRisk(e *Entity) float64 {
	var m float64
	for _, o := range e.Objects {
		if r := w.objectRisk[o]; r > m {
			m = r
		}
	}
	return m
}

// meanKeywordRisk returns the mean risk loading of the entity's keywords.
func (w *World) meanKeywordRisk(e *Entity) float64 {
	if len(e.Keywords) == 0 {
		return 0
	}
	var s float64
	for _, k := range e.Keywords {
		s += w.keywordRisk[k]
	}
	return s / float64(len(e.Keywords))
}
