package synth

import (
	"reflect"
	"testing"
)

func testSchedule(seed int64) DriftSchedule {
	return DriftSchedule{
		Seed: seed,
		Epochs: []Epoch{
			{N: 100},
			{N: 100, TopicShift: 2.0, URLShift: 1.5, Decay: 0.3},
			{N: 100, Decay: 0.3},
		},
	}
}

func newTestTraffic(t *testing.T, seed int64) *Traffic {
	t.Helper()
	w := MustWorld(DefaultConfig())
	task := StandardTasks()[0]
	tr, err := NewTraffic(w, task, testSchedule(seed))
	if err != nil {
		t.Fatalf("NewTraffic: %v", err)
	}
	return tr
}

func TestScheduleValidation(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task := StandardTasks()[0]
	bad := []DriftSchedule{
		{Seed: 1},                          // no epochs
		{Seed: 1, Epochs: []Epoch{{N: 0}}}, // empty epoch
		{Seed: 1, Epochs: []Epoch{{N: 10, TopicShift: -1}}}, // negative shift
		{Seed: 1, Epochs: []Epoch{{N: 10, Decay: 1.0}}},     // decay out of range
	}
	for i, sched := range bad {
		if _, err := NewTraffic(w, task, sched); err == nil {
			t.Errorf("schedule %d accepted, want error", i)
		}
	}
}

func TestTrafficEpochBoundaries(t *testing.T) {
	tr := newTestTraffic(t, 11)
	if got := tr.Total(); got != 300 {
		t.Fatalf("Total = %d, want 300", got)
	}
	cases := []struct{ id, epoch int }{
		{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 2}, {299, 2},
		// The last regime persists past the schedule's end.
		{300, 2}, {10000, 2},
	}
	for _, c := range cases {
		if got := tr.EpochOf(c.id); got != c.epoch {
			t.Errorf("EpochOf(%d) = %d, want %d", c.id, got, c.epoch)
		}
	}
}

// Shifted epochs get fresh worlds; zero-shift epochs alias the previous
// world, and the base world is never mutated.
func TestTrafficWorldSharingAndBaseImmutability(t *testing.T) {
	w := MustWorld(DefaultConfig())
	baseTopics := append([]float64(nil), w.TopicPopularity(Image)...)
	baseURLs := append([]float64(nil), w.URLPopularity(Image)...)

	task := StandardTasks()[0]
	tr, err := NewTraffic(w, task, testSchedule(11))
	if err != nil {
		t.Fatal(err)
	}

	if tr.WorldAt(0) != w {
		t.Error("zero-shift epoch 0 should alias the base world")
	}
	if tr.WorldAt(1) == w {
		t.Error("shifted epoch 1 should get its own world")
	}
	if tr.WorldAt(2) != tr.WorldAt(1) {
		t.Error("zero-shift epoch 2 should alias epoch 1's world")
	}
	if reflect.DeepEqual(tr.WorldAt(1).TopicPopularity(Image), baseTopics) {
		t.Error("epoch 1 topic prior did not shift")
	}
	if reflect.DeepEqual(tr.WorldAt(1).URLPopularity(Image), baseURLs) {
		t.Error("epoch 1 URL prior did not shift")
	}
	if !reflect.DeepEqual(w.TopicPopularity(Image), baseTopics) ||
		!reflect.DeepEqual(w.URLPopularity(Image), baseURLs) {
		t.Error("NewTraffic mutated the base world's priors")
	}
}

// Point is a pure function of (schedule, id): two independently constructed
// traffics replay every window bit-identically, in any access order.
func TestTrafficPointBitIdenticalReplay(t *testing.T) {
	a := newTestTraffic(t, 11)
	b := newTestTraffic(t, 11)

	ids := []int{0, 150, 250, 299, 37, 150, 0} // repeats and out-of-order
	for _, id := range ids {
		pa, pb := a.Point(id), b.Point(id)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("point %d differs across replays:\n%+v\n%+v", id, pa, pb)
		}
	}

	wa := a.Window(120, 40)
	wb := b.Window(120, 40)
	if !reflect.DeepEqual(wa, wb) {
		t.Fatal("Window(120, 40) differs across replays")
	}
	if len(wa) != 40 || wa[0].ID != 120 || wa[39].ID != 159 {
		t.Fatalf("window IDs wrong: first=%d last=%d", wa[0].ID, wa[39].ID)
	}
}

func TestTrafficSeedChangesPoints(t *testing.T) {
	a := newTestTraffic(t, 11)
	b := newTestTraffic(t, 12)
	same := 0
	for id := 0; id < 50; id++ {
		if reflect.DeepEqual(a.Point(id), b.Point(id)) {
			same++
		}
	}
	if same == 50 {
		t.Error("different schedule seeds produced identical traffic")
	}
}

// Decay corrupts observations but never labels: the label is assigned from
// the true entity before the observation channel degrades it.
func TestDecayPreservesLabels(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task := StandardTasks()[0]
	clean := DriftSchedule{Seed: 11, Epochs: []Epoch{{N: 300}}}
	dirty := DriftSchedule{Seed: 11, Epochs: []Epoch{{N: 300, Decay: 0.5}}}

	trClean, err := NewTraffic(w, task, clean)
	if err != nil {
		t.Fatal(err)
	}
	trDirty, err := NewTraffic(w, task, dirty)
	if err != nil {
		t.Fatal(err)
	}

	changed := 0
	for id := 0; id < 300; id++ {
		pc, pd := trClean.Point(id), trDirty.Point(id)
		if pc.Label != pd.Label {
			t.Fatalf("point %d: decay changed the label (%d vs %d)", id, pc.Label, pd.Label)
		}
		if !reflect.DeepEqual(pc.Entity, pd.Entity) {
			changed++
		}
	}
	if changed == 0 {
		t.Error("decay 0.5 corrupted no observed entity over 300 points")
	}
}

func TestDecayPointsOrderIndependent(t *testing.T) {
	tr := newTestTraffic(t, 11)
	w := tr.WorldAt(0)

	fresh := func() []*Point {
		pts := make([]*Point, 50)
		for i := range pts {
			// Re-render undecayed points from the clean epoch.
			pts[i] = tr.Point(i)
		}
		return pts
	}

	fwd := fresh()
	DecayPoints(fwd, w, 0.5)

	rev := fresh()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	DecayPoints(rev, w, 0.5)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}

	if !reflect.DeepEqual(fwd, rev) {
		t.Fatal("DecayPoints depends on slice order")
	}
}

func TestFreshDatasetDeterministicAndDecayed(t *testing.T) {
	tr := newTestTraffic(t, 11)
	cfg := DatasetConfig{
		Seed: 99, NumText: 300, NumUnlabeledImage: 300,
		NumHandLabelPool: 100, NumTest: 200,
	}

	a, err := tr.FreshDataset(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.FreshDataset(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.UnlabeledImage, b.UnlabeledImage) ||
		!reflect.DeepEqual(a.LabeledText, b.LabeledText) ||
		!reflect.DeepEqual(a.TestImage, b.TestImage) {
		t.Fatal("FreshDataset not deterministic for fixed (epoch, cfg)")
	}
	if a.World != tr.WorldAt(1) {
		t.Error("FreshDataset should sample from the epoch's shifted world")
	}

	// Epoch 0 has no decay; epoch 1 decays at 0.3. Same cfg seed, different
	// regimes must differ.
	c, err := tr.FreshDataset(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.UnlabeledImage, c.UnlabeledImage) {
		t.Error("epoch 1 dataset identical to epoch 0 despite shift+decay")
	}

	if _, err := tr.FreshDataset(7, cfg); err == nil {
		t.Error("out-of-range epoch accepted")
	}
}

func TestTrafficCalibratesTaskOnce(t *testing.T) {
	w := MustWorld(DefaultConfig())
	task := StandardTasks()[1]
	tr, err := NewTraffic(w, task, DriftSchedule{Seed: 5, Epochs: []Epoch{{N: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Task() != task {
		t.Error("Task accessor should return the calibrated task")
	}
	// Labeling must not panic: NewTraffic calibrated the task.
	p := tr.Point(0)
	if p.Label != task.Label(w, tr.Point(0).Entity) && p.Entity != nil {
		// Label was computed against the true entity pre-decay; with no
		// decay in this schedule the observed entity is the true one.
		t.Error("point label inconsistent with task labeling")
	}
}
