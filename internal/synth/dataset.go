package synth

import (
	"fmt"
	"math/rand"

	"crossmodal/internal/xrand"
)

// Point is one data point: a rendering of a hidden entity in a concrete
// modality. Label always carries ground truth (+1/-1); whether a pipeline is
// *allowed* to read it is a property of the corpus the point sits in (the
// labeled text corpus and the test set expose labels; the unlabeled image
// corpus does not — see Dataset).
type Point struct {
	ID       int
	Entity   *Entity
	Modality Modality
	// Seed drives all modality-specific observation noise for this point,
	// so independently computed features of the same point agree.
	Seed uint64
	// Frames is the number of image frames a video point splits into
	// (paper §3.1.1: video is featurized by splitting into representative
	// frames); 0 for non-video points.
	Frames int
	Label  int8
}

// ObservationRNG returns a deterministic RNG for one named observation
// channel of this point (e.g. a particular service observing it). Distinct
// channels get independent streams; the same channel always gets the same
// stream. Construction is O(1): one RNG is built per point per channel, so
// this sits on the featurization hot path.
func (p *Point) ObservationRNG(channel string) *rand.Rand {
	return xrand.New(int64(xrand.HashString(p.Seed, channel)))
}

// FrameRNG returns a deterministic RNG for one frame of a video point. The
// frame streams are Weyl offsets of the channel's sub-seed, so they are
// independent of each other and of the whole-point ObservationRNG stream
// without formatting a per-frame channel name.
func (p *Point) FrameRNG(channel string, frame int) *rand.Rand {
	sub := xrand.HashString(p.Seed, channel)
	return xrand.New(int64(xrand.Mix(sub + uint64(frame+1)*0x9e3779b97f4a7c15)))
}

// DatasetConfig sets corpus sizes for one task dataset. The paper's corpora
// (Table 1) hold 18–26M labeled text and 7.2–7.4M unlabeled image points;
// the defaults scale those ~1000× down while preserving the text:image ratio
// and the positive rates.
type DatasetConfig struct {
	Seed int64
	// NumText is the labeled old-modality corpus size.
	NumText int
	// NumUnlabeledImage is the new-modality corpus to be labeled by weak
	// supervision.
	NumUnlabeledImage int
	// NumHandLabelPool is the budget pool of hand-labeled image points the
	// cross-over experiments (Figure 5) draw from.
	NumHandLabelPool int
	// NumTest is the labeled image test set size.
	NumTest int
	// CalibrationSamples sizes task-threshold calibration (default 40000).
	CalibrationSamples int
}

// DefaultDatasetConfig returns the scale used by the experiment suite.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		Seed:               7,
		NumText:            20000,
		NumUnlabeledImage:  8000,
		NumHandLabelPool:   8000,
		NumTest:            5000,
		CalibrationSamples: 40000,
	}
}

func (c DatasetConfig) validate() error {
	if c.NumText <= 0 || c.NumUnlabeledImage <= 0 || c.NumTest <= 0 {
		return fmt.Errorf("synth: dataset sizes must be positive: %+v", c)
	}
	if c.NumHandLabelPool < 0 {
		return fmt.Errorf("synth: NumHandLabelPool must be >= 0")
	}
	return nil
}

// Dataset is the full corpus collection for one task, following the paper's
// protocol (§6.1): labeled data of the old modality, unlabeled live-traffic
// data of the new modality (sampled after the labeling cutoff, independent of
// the labeled image data — no train/test leakage), a hand-label pool for the
// fully supervised comparisons, and a labeled image test set.
type Dataset struct {
	Task  *Task
	World *World

	// LabeledText is the old-modality corpus; pipelines may read Label.
	LabeledText []*Point
	// UnlabeledImage is the new-modality corpus; pipelines must not read
	// Label (it is retained for post-hoc analysis only).
	UnlabeledImage []*Point
	// HandLabelPool holds labeled image points for fully supervised
	// baselines; disjoint from both UnlabeledImage and TestImage.
	HandLabelPool []*Point
	// TestImage is the held-out labeled evaluation set.
	TestImage []*Point
}

// BuildDataset samples a dataset for the task. The task is calibrated as a
// side effect if it has not been already.
func BuildDataset(w *World, task *Task, cfg DatasetConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	calN := cfg.CalibrationSamples
	if calN == 0 {
		calN = 40000
	}
	if !task.calibrated {
		if err := task.Calibrate(w, calN, cfg.Seed^0x5ca1ab1e); err != nil {
			return nil, err
		}
	}
	rng := xrand.New(cfg.Seed)
	ds := &Dataset{Task: task, World: w}
	nextID := 0
	sample := func(n int, m Modality) []*Point {
		pts := make([]*Point, n)
		for i := range pts {
			e := w.SampleEntity(rng, m, nextID)
			pts[i] = &Point{
				ID:       nextID,
				Entity:   e,
				Modality: m,
				Seed:     xrand.Mix(uint64(cfg.Seed)<<20 ^ uint64(nextID)),
				Label:    task.Label(w, e),
			}
			nextID++
		}
		return pts
	}
	ds.LabeledText = sample(cfg.NumText, Text)
	ds.UnlabeledImage = sample(cfg.NumUnlabeledImage, Image)
	ds.HandLabelPool = sample(cfg.NumHandLabelPool, Image)
	ds.TestImage = sample(cfg.NumTest, Image)
	return ds, nil
}

// SampleVideo draws n video points, each splitting into frames image frames,
// from the new-modality prior. Used by the video-adaptation example.
func SampleVideo(w *World, task *Task, n, frames int, seed int64) []*Point {
	rng := xrand.New(seed)
	pts := make([]*Point, n)
	for i := range pts {
		e := w.SampleEntity(rng, Video, i)
		pts[i] = &Point{
			ID:       i,
			Entity:   e,
			Modality: Video,
			Seed:     xrand.Mix(uint64(seed)<<20 ^ uint64(i) ^ 0xf00d),
			Frames:   frames,
			Label:    task.Label(w, e),
		}
	}
	return pts
}

// PositiveRate returns the fraction of points with Label == +1.
func PositiveRate(pts []*Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	n := 0
	for _, p := range pts {
		if p.Label > 0 {
			n++
		}
	}
	return float64(n) / float64(len(pts))
}

// Labels extracts the ground-truth labels of pts in order.
func Labels(pts []*Point) []int8 {
	out := make([]int8, len(pts))
	for i, p := range pts {
		out[i] = p.Label
	}
	return out
}
