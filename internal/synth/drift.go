package synth

// Time-varying traffic: the latent world's sampling priors shift and its
// observation services decay on a deterministic schedule, so serving-time
// drift episodes are seed-reproducible end to end. This is the synthetic
// stand-in for the paper's deployment reality — the organization's data
// moves under the model ("Changing Modalities" treats shift as the normal
// operating condition) — and the substrate the lifecycle controller's
// detect→retrain→promote loop is tested against.
//
// The drift model has two axes per epoch:
//
//   - Topic/URL-mix shift: the image-modality sampling priors are reweighted
//     by multiplicative log-normal noise (the same mechanism as the static
//     text→image covariate shift, applied again through time). Risk loadings
//     never move, so ground-truth labels stay consistent across epochs —
//     pure covariate drift.
//   - Fidelity decay: with probability Decay per attribute, the observed
//     entity's topic/URL is misread or its objects/keywords truncated
//     *after* the true label is assigned. Features decouple from labels —
//     concept drift as seen by any feature-based model.
//
// Epoch boundaries are injectable changepoints: every point's rendering
// depends only on (schedule seed, point ID, epoch index), never on wall
// clock or generation order, so any window replays bit-identically.

import (
	"fmt"
	"math/rand"

	"crossmodal/internal/xrand"
)

// Epoch is one homogeneous traffic regime.
type Epoch struct {
	// N is the number of traffic points in this epoch.
	N int
	// TopicShift and URLShift reweight this epoch's image-modality sampling
	// priors relative to the previous epoch (log-normal magnitude; 0 keeps
	// the previous priors exactly).
	TopicShift, URLShift float64
	// Decay is the per-attribute probability that an observation service
	// misreads the entity (topic or URL replaced uniformly, objects or
	// keywords truncated). In [0, 1).
	Decay float64
}

// DriftSchedule is a deterministic sequence of epochs over one seed.
type DriftSchedule struct {
	Seed   int64
	Epochs []Epoch
}

// Total returns the schedule's total traffic size.
func (s DriftSchedule) Total() int {
	n := 0
	for _, ep := range s.Epochs {
		n += ep.N
	}
	return n
}

func (s DriftSchedule) validate() error {
	if len(s.Epochs) == 0 {
		return fmt.Errorf("synth: drift schedule needs at least one epoch")
	}
	for i, ep := range s.Epochs {
		switch {
		case ep.N <= 0:
			return fmt.Errorf("synth: epoch %d has size %d, want > 0", i, ep.N)
		case ep.TopicShift < 0 || ep.URLShift < 0:
			return fmt.Errorf("synth: epoch %d has negative shift", i)
		case ep.Decay < 0 || ep.Decay >= 1:
			return fmt.Errorf("synth: epoch %d decay %v outside [0,1)", i, ep.Decay)
		}
	}
	return nil
}

// Traffic renders a drift schedule over a base world into an addressable
// stream of image-modality points: Point(id) is a pure function of the
// schedule, so serving infrastructure can derive any point on demand (the
// same contract serve.DerivePoint gives static traffic). Safe for
// concurrent use after construction.
type Traffic struct {
	task   *Task
	sched  DriftSchedule
	worlds []*World // per-epoch shifted worlds; may alias when an epoch shifts nothing
	starts []int    // cumulative epoch start offsets
}

// NewTraffic builds the per-epoch worlds for sched over base. The task is
// calibrated against the base world if it has not been already, so labels
// across all epochs share one threshold.
func NewTraffic(base *World, task *Task, sched DriftSchedule) (*Traffic, error) {
	if err := sched.validate(); err != nil {
		return nil, err
	}
	if !task.calibrated {
		if err := task.Calibrate(base, 40000, sched.Seed^0x5ca1ab1e); err != nil {
			return nil, err
		}
	}
	t := &Traffic{task: task, sched: sched}
	t.worlds = make([]*World, len(sched.Epochs))
	t.starts = make([]int, len(sched.Epochs))
	prev := base
	off := 0
	for i, ep := range sched.Epochs {
		t.starts[i] = off
		off += ep.N
		if ep.TopicShift == 0 && ep.URLShift == 0 {
			t.worlds[i] = prev
			continue
		}
		// Shifts compound epoch over epoch: each changepoint moves the
		// priors relative to where the last one left them.
		rng := xrand.New(int64(xrand.Mix(uint64(sched.Seed) ^ uint64(i+1)<<40)))
		w := *prev
		if ep.TopicShift > 0 {
			w.topicPopImage = drift(rng, prev.topicPopImage, ep.TopicShift)
		}
		if ep.URLShift > 0 {
			w.urlPopImage = drift(rng, prev.urlPopImage, ep.URLShift)
		}
		t.worlds[i] = &w
		prev = &w
	}
	return t, nil
}

// Task returns the (calibrated) task labels derive from.
func (t *Traffic) Task() *Task { return t.task }

// Schedule returns the drift schedule.
func (t *Traffic) Schedule() DriftSchedule { return t.sched }

// Total returns the traffic size.
func (t *Traffic) Total() int { return t.sched.Total() }

// EpochOf returns the epoch index a global traffic ordinal falls in; IDs at
// or past the end stay in the final epoch (the last regime persists).
func (t *Traffic) EpochOf(id int) int {
	for i := len(t.starts) - 1; i > 0; i-- {
		if id >= t.starts[i] {
			return i
		}
	}
	return 0
}

// WorldAt returns the shifted world of one epoch.
func (t *Traffic) WorldAt(epoch int) *World { return t.worlds[epoch] }

// Point renders traffic ordinal id: entity sampled from its epoch's shifted
// prior, labeled against the true entity, then decayed per the epoch's
// fidelity. Point seeds use the same mix as BuildDataset and
// serve.DerivePoint, so featurestore caching by ID stays sound.
func (t *Traffic) Point(id int) *Point {
	ep := t.EpochOf(id)
	w := t.worlds[ep]
	seed := xrand.Mix(uint64(t.sched.Seed)<<20 ^ uint64(id))
	rng := xrand.New(int64(seed))
	e := w.SampleEntity(rng, Image, id)
	p := &Point{
		ID:       id,
		Entity:   e,
		Modality: Image,
		Seed:     seed,
		// Risk loadings are epoch-invariant, so labeling against the
		// shifted world equals labeling against the base world.
		Label: t.task.Label(w, e),
	}
	if d := t.sched.Epochs[ep].Decay; d > 0 {
		p.Entity = decayEntity(decayRNG(seed), w, e, d)
	}
	return p
}

// Window returns traffic ordinals [start, start+n).
func (t *Traffic) Window(start, n int) []*Point {
	pts := make([]*Point, n)
	for i := range pts {
		pts[i] = t.Point(start + i)
	}
	return pts
}

// FreshDataset samples a full retraining dataset from one epoch's regime:
// corpora drawn from the shifted priors, labels from the true entities, and
// the epoch's fidelity decay applied to every corpus — what re-collecting
// the organization's data mid-drift would yield. cfg.Seed should differ per
// retraining attempt so corpora are fresh draws.
func (t *Traffic) FreshDataset(epoch int, cfg DatasetConfig) (*Dataset, error) {
	if epoch < 0 || epoch >= len(t.worlds) {
		return nil, fmt.Errorf("synth: epoch %d outside schedule (%d epochs)", epoch, len(t.worlds))
	}
	w := t.worlds[epoch]
	ds, err := BuildDataset(w, t.task, cfg)
	if err != nil {
		return nil, err
	}
	if d := t.sched.Epochs[epoch].Decay; d > 0 {
		DecayPoints(ds.LabeledText, w, d)
		DecayPoints(ds.UnlabeledImage, w, d)
		DecayPoints(ds.HandLabelPool, w, d)
		DecayPoints(ds.TestImage, w, d)
	}
	return ds, nil
}

// DecayPoints applies fidelity decay to each point's observed entity in
// place (labels, already assigned from the true entities, are untouched).
// The decay stream derives from each point's own seed, so it is independent
// of slice order and identical across replays.
func DecayPoints(pts []*Point, w *World, decay float64) {
	if decay <= 0 {
		return
	}
	for _, p := range pts {
		p.Entity = decayEntity(decayRNG(p.Seed), w, p.Entity, decay)
	}
}

// decayRNG is the dedicated observation channel for fidelity decay.
func decayRNG(pointSeed uint64) *rand.Rand {
	return xrand.New(int64(xrand.HashString(pointSeed, "synth.decay")))
}

// decayEntity returns a degraded copy of e: each latent attribute is
// independently misread with probability decay. The true entity is never
// mutated.
func decayEntity(rng *rand.Rand, w *World, e *Entity, decay float64) *Entity {
	d := *e
	d.Objects = append([]int(nil), e.Objects...)
	d.Keywords = append([]int(nil), e.Keywords...)
	if rng.Float64() < decay {
		d.Topic = rng.Intn(w.cfg.NumTopics)
	}
	if rng.Float64() < decay && len(d.Objects) > 1 {
		d.Objects = d.Objects[:(len(d.Objects)+1)/2]
	}
	if rng.Float64() < decay {
		d.URLGroup = rng.Intn(w.cfg.NumURLGroups)
	}
	if rng.Float64() < decay && len(d.Keywords) > 1 {
		d.Keywords = d.Keywords[:(len(d.Keywords)+1)/2]
	}
	return &d
}
