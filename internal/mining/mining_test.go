package mining

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
)

var schema = feature.MustSchema(
	feature.Def{Name: "topic", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "objects", Kind: feature.Categorical, Set: "C", Servable: true},
	feature.Def{Name: "reports", Kind: feature.Numeric, Set: "D"},
)

// synthDev builds a dev set where:
//   - topic "bad" is strongly positive, topic "safe" strongly negative;
//   - objects {"a","b"} together are positive but individually weak;
//   - reports > 8 is positive.
func synthDev(n int, seed int64) ([]*feature.Vector, []int8) {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]*feature.Vector, n)
	labels := make([]int8, n)
	for i := range vecs {
		v := feature.NewVector(schema)
		pos := rng.Float64() < 0.2
		switch {
		case pos && rng.Float64() < 0.5:
			v.MustSet("topic", feature.CategoricalValue("bad"))
		case pos:
			v.MustSet("topic", feature.CategoricalValue("meh"))
		case rng.Float64() < 0.5:
			v.MustSet("topic", feature.CategoricalValue("safe"))
		default:
			v.MustSet("topic", feature.CategoricalValue("meh"))
		}
		if pos && rng.Float64() < 0.6 {
			v.MustSet("objects", feature.CategoricalValue("a", "b"))
		} else {
			// Negatives carry "a" or "b" alone frequently.
			if rng.Float64() < 0.5 {
				v.MustSet("objects", feature.CategoricalValue("a"))
			} else {
				v.MustSet("objects", feature.CategoricalValue("b"))
			}
		}
		if pos {
			v.MustSet("reports", feature.NumericValue(9+rng.Float64()*3))
		} else {
			v.MustSet("reports", feature.NumericValue(rng.Float64()*8))
		}
		labels[i] = -1
		if pos {
			labels[i] = 1
		}
		vecs[i] = v
	}
	return vecs, labels
}

func mineAll(t *testing.T, cfg Config, vecs []*feature.Vector, labels []int8) ([]*lf.LF, Report) {
	t.Helper()
	lfs, rep, err := Mine(context.Background(), mapreduce.Config{Workers: 2}, cfg, vecs, labels)
	if err != nil {
		t.Fatal(err)
	}
	return lfs, rep
}

func TestMineFindsStrongCategory(t *testing.T) {
	vecs, labels := synthDev(3000, 1)
	lfs, rep := mineAll(t, DefaultConfig(), vecs, labels)
	if rep.PositiveLFs == 0 {
		t.Fatalf("no positive LFs: %s", rep)
	}
	found := false
	for _, l := range lfs {
		if strings.Contains(l.Name, "topic=bad→+1") {
			found = true
		}
		if l.Source != "mined" {
			t.Errorf("LF source = %q", l.Source)
		}
	}
	if !found {
		t.Errorf("expected topic=bad positive LF; got %v", names(lfs))
	}
}

func names(lfs []*lf.LF) []string {
	out := make([]string, len(lfs))
	for i, l := range lfs {
		out[i] = l.Name
	}
	return out
}

func TestMineOrder2FindsConjunction(t *testing.T) {
	vecs, labels := synthDev(3000, 2)
	cfg := DefaultConfig()
	cfg.MaxOrder = 2
	cfg.PosPrecision = 0.8 // "a" and "b" alone are weak; {a,b} is strong
	lfs, _ := mineAll(t, cfg, vecs, labels)
	found := false
	for _, l := range lfs {
		if strings.Contains(l.Name, "objects⊇{a,b}") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected objects⊇{a,b} conjunction; got %v", names(lfs))
	}
}

func TestMineNumericThreshold(t *testing.T) {
	vecs, labels := synthDev(3000, 3)
	lfs, rep := mineAll(t, DefaultConfig(), vecs, labels)
	if rep.NumericLFs == 0 {
		t.Fatalf("no numeric LFs: %s", rep)
	}
	found := false
	for _, l := range lfs {
		if strings.HasPrefix(l.Name, "reports≥") && strings.HasSuffix(l.Name, "→+1") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected reports≥cut positive LF; got %v", names(lfs))
	}
}

func TestMinedLFQuality(t *testing.T) {
	vecs, labels := synthDev(4000, 4)
	lfs, _ := mineAll(t, DefaultConfig(), vecs, labels)
	m, err := lf.Apply(context.Background(), mapreduce.Config{}, lfs, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range lf.EvaluateAll(m, labels) {
		if s.Votes == 0 {
			t.Errorf("LF %s never votes on its own dev set", s.Name)
			continue
		}
		if s.Precision < 0.5 {
			t.Errorf("LF %s dev precision %.3f < 0.5 (threshold was 0.55)", s.Name, s.Precision)
		}
	}
}

func TestMineNegativeLFs(t *testing.T) {
	vecs, labels := synthDev(4000, 5)
	cfg := DefaultConfig()
	cfg.NegPrecision = 0.9
	lfs, rep := mineAll(t, cfg, vecs, labels)
	if rep.NegativeLFs == 0 {
		t.Fatalf("no negative LFs: %s (want topic=safe)", rep)
	}
	found := false
	for _, l := range lfs {
		if strings.Contains(l.Name, "topic=safe→-1") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected topic=safe negative LF; got %v", names(lfs))
	}
}

func TestMineValidation(t *testing.T) {
	vecs, labels := synthDev(100, 6)
	ctx := context.Background()
	if _, _, err := Mine(ctx, mapreduce.Config{}, Config{}, vecs, labels); err == nil {
		t.Error("zero config should fail validation")
	}
	if _, _, err := Mine(ctx, mapreduce.Config{}, DefaultConfig(), vecs, labels[:10]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := Mine(ctx, mapreduce.Config{}, DefaultConfig(), nil, nil); err == nil {
		t.Error("empty dev set should fail")
	}
	all := make([]int8, len(labels))
	for i := range all {
		all[i] = 1
	}
	if _, _, err := Mine(ctx, mapreduce.Config{}, DefaultConfig(), vecs, all); err == nil {
		t.Error("single-class dev set should fail")
	}
}

func TestMineSupportThresholdPrunes(t *testing.T) {
	vecs, labels := synthDev(300, 7)
	cfg := DefaultConfig()
	cfg.MinSupport = 100000 // nothing can reach this
	lfs, rep := mineAll(t, cfg, vecs, labels)
	if rep.PositiveLFs != 0 || rep.NegativeLFs != 0 {
		t.Errorf("huge support threshold should prune everything: %s, %v", rep, names(lfs))
	}
}

func TestMinePerFeatureCap(t *testing.T) {
	vecs, labels := synthDev(3000, 8)
	cfg := DefaultConfig()
	cfg.MaxLFsPerFeature = 1
	lfs, _ := mineAll(t, cfg, vecs, labels)
	perFeatVote := map[string]int{}
	for _, l := range lfs {
		if strings.HasPrefix(l.Name, "topic=") {
			vote := "+"
			if strings.HasSuffix(l.Name, "-1") {
				vote = "-"
			}
			perFeatVote["topic"+vote]++
		}
	}
	for k, n := range perFeatVote {
		if n > 1 {
			t.Errorf("cap violated for %s: %d LFs", k, n)
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	vecs, labels := synthDev(1500, 9)
	a, _ := mineAll(t, DefaultConfig(), vecs, labels)
	b, _ := mineAll(t, DefaultConfig(), vecs, labels)
	na, nb := names(a), names(b)
	if len(na) != len(nb) {
		t.Fatalf("nondeterministic LF count: %d vs %d", len(na), len(nb))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("nondeterministic LF order: %q vs %q", na[i], nb[i])
		}
	}
}

func TestJoinCandidates(t *testing.T) {
	frequent := map[string][]itemset{
		"f": {
			{feat: "f", cats: []string{"a"}},
			{feat: "f", cats: []string{"b"}},
			{feat: "f", cats: []string{"c"}},
		},
	}
	cands := joinCandidates(frequent, 2)
	if len(cands) != 3 { // ab, ac, bc
		t.Fatalf("order-2 candidates = %d, want 3: %v", len(cands), cands)
	}
	// Order 3 from {a,b}, {a,c}, {b,c} should join into {a,b,c} only.
	frequent3 := map[string][]itemset{
		"f": {
			{feat: "f", cats: []string{"a", "b"}},
			{feat: "f", cats: []string{"a", "c"}},
			{feat: "f", cats: []string{"b", "c"}},
		},
	}
	cands3 := joinCandidates(frequent3, 3)
	if len(cands3) != 1 || strings.Join(cands3[0].cats, "") != "abc" {
		t.Fatalf("order-3 candidates = %v, want [abc]", cands3)
	}
}

func TestSupersetPruning(t *testing.T) {
	accepted := []itemset{{feat: "f", cats: []string{"a"}}}
	if !supersetOfAny(itemset{feat: "f", cats: []string{"a", "b"}}, accepted) {
		t.Error("ab should be pruned as superset of a")
	}
	if supersetOfAny(itemset{feat: "f", cats: []string{"b", "c"}}, accepted) {
		t.Error("bc is not a superset of a")
	}
}
