package mining

import (
	"context"
	"fmt"
	"sort"

	"crossmodal/internal/feature"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/trace"
)

// Corpus is a labeled development corpus the miner can scan chunk by
// chunk, possibly more than once (higher-order Apriori passes re-scan).
// Implementations back onto in-memory slices or the disk feature store;
// every Scan must yield the same rows in the same order.
type Corpus interface {
	Schema() *feature.Schema
	Scan(ctx context.Context, fn func(vecs []*feature.Vector, labels []int8) error) error
}

// sliceCorpus adapts the classic in-memory dev set to Corpus.
type sliceCorpus struct {
	vecs   []*feature.Vector
	labels []int8
}

func (s *sliceCorpus) Schema() *feature.Schema { return s.vecs[0].Schema() }

func (s *sliceCorpus) Scan(ctx context.Context, fn func([]*feature.Vector, []int8) error) error {
	return fn(s.vecs, s.labels)
}

// numObs is one observed (value, label) pair of a numeric feature.
type numObs struct {
	val float64
	lbl int8
}

// MineStream is Mine over a chunked corpus: order-1 class counts, numeric
// observations, and class totals all accumulate in one scan (counts are
// additive, so chunk merging is exact); only MaxOrder >= 2 Apriori joins
// re-scan the corpus. The result is identical to Mine over the
// concatenated chunks — the property TestMineStreamMatchesMine pins.
func MineStream(ctx context.Context, mrCfg mapreduce.Config, cfg Config, corpus Corpus) ([]*lf.LF, Report, error) {
	var report Report
	if err := cfg.validate(); err != nil {
		return nil, report, err
	}
	ctx, span := trace.Start(ctx, "mining")
	defer span.End()
	defer func() {
		span.Add("candidates", int64(report.CandidatesScanned))
		span.Add("lfs_pos", int64(report.PositiveLFs))
		span.Add("lfs_neg", int64(report.NegativeLFs))
		span.Add("lfs_numeric", int64(report.NumericLFs))
	}()
	schema := corpus.Schema()
	var numCols []int
	for i := 0; i < schema.Len(); i++ {
		if schema.Def(i).Kind == feature.Numeric {
			numCols = append(numCols, i)
		}
	}
	collectNumeric := cfg.NumericQuantiles >= 2
	observed := make([][]numObs, len(numCols))

	// Single accumulation pass: order-1 itemset counts per class, class
	// totals, and (value, label) observations for the numeric miner.
	posCount1 := make(map[string]int)
	negCount1 := make(map[string]int)
	var nPos, nNeg int
	err := corpus.Scan(ctx, func(vecs []*feature.Vector, labels []int8) error {
		if len(vecs) != len(labels) {
			return fmt.Errorf("mining: %d vectors vs %d labels", len(vecs), len(labels))
		}
		var pos, neg []*feature.Vector
		for i, v := range vecs {
			if labels[i] > 0 {
				pos = append(pos, v)
			} else {
				neg = append(neg, v)
			}
		}
		nPos += len(pos)
		nNeg += len(neg)
		for _, half := range []struct {
			vecs []*feature.Vector
			into map[string]int
		}{{pos, posCount1}, {neg, negCount1}} {
			if len(half.vecs) == 0 {
				continue
			}
			counts, err := countOrder1(ctx, mrCfg, schema, half.vecs)
			if err != nil {
				return err
			}
			for key, n := range counts {
				half.into[key] += n
			}
		}
		if collectNumeric {
			for j, col := range numCols {
				for i, v := range vecs {
					if val := v.At(col); !val.Missing {
						observed[j] = append(observed[j], numObs{val.Num, labels[i]})
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, report, err
	}
	if nPos+nNeg == 0 {
		return nil, report, fmt.Errorf("mining: empty development set")
	}
	report.DevPositives = nPos
	report.DevNegatives = nNeg
	if nPos == 0 || nNeg == 0 {
		return nil, report, fmt.Errorf("mining: dev set needs both classes (%d+/%d-)", nPos, nNeg)
	}
	posRate := float64(nPos) / float64(nPos+nNeg)
	posThreshold := cfg.posThreshold(posRate)
	negThreshold := cfg.negThreshold(1 - posRate)

	var lfs []*lf.LF

	// --- Positive categorical LFs: positives-first Apriori ---
	posSets := frequentFromCounts(posCount1, cfg.MinSupport)
	if cfg.MaxOrder >= 2 {
		if err := extendFrequent(ctx, mrCfg, schema, corpus, lf.Positive, posSets, cfg.MaxOrder, cfg.MinSupport); err != nil {
			return nil, report, err
		}
	}
	report.CandidatesScanned += len(posSets)
	negCounts := make(map[string]int, len(posSets))
	var higher []itemset
	for key, ic := range posSets {
		if len(ic.set.cats) == 1 {
			negCounts[key] = negCount1[key]
		} else {
			higher = append(higher, ic.set)
		}
	}
	if len(higher) > 0 {
		cc, err := countItemsetStream(ctx, mrCfg, schema, corpus, lf.Negative, higher)
		if err != nil {
			return nil, report, err
		}
		for key, ic := range cc {
			negCounts[key] = ic.count
		}
	}
	posLFs := acceptCategorical(posSets, negCounts, nPos, posThreshold, cfg.PosRecall, cfg.MaxLFsPerFeature, lf.Positive)
	report.PositiveLFs = len(posLFs)
	lfs = append(lfs, posLFs...)

	// --- Negative categorical LFs: order 1 only, counts already in hand ---
	negSets := frequentFromCounts(negCount1, cfg.MinSupport)
	report.CandidatesScanned += len(negSets)
	posCounts := make(map[string]int, len(negSets))
	for key := range negSets {
		posCounts[key] = posCount1[key]
	}
	negLFs := acceptCategorical(negSets, posCounts, nNeg, negThreshold, cfg.NegRecall, cfg.MaxLFsPerFeature, lf.Negative)
	report.NegativeLFs = len(negLFs)
	lfs = append(lfs, negLFs...)

	// --- Numeric threshold LFs ---
	numLFs := mineNumericObserved(schema, numCols, observed, nPos, nNeg, cfg, posThreshold, negThreshold)
	report.NumericLFs = len(numLFs)
	lfs = append(lfs, numLFs...)

	sort.Slice(lfs, func(i, j int) bool { return lfs[i].Name < lfs[j].Name })
	return lfs, report, nil
}

// countOrder1 counts every (feature, category) itemset over one class
// slice of one chunk.
func countOrder1(ctx context.Context, mrCfg mapreduce.Config, schema *feature.Schema, corpus []*feature.Vector) (map[string]int, error) {
	return mapreduce.Count(ctx, mrCfg, corpus, func(v *feature.Vector, emit func(string)) error {
		for i := 0; i < schema.Len(); i++ {
			d := schema.Def(i)
			if d.Kind != feature.Categorical {
				continue
			}
			val := v.At(i)
			if val.Missing {
				continue
			}
			for _, c := range dedupe(val.Categories) {
				emit(itemset{d.Name, []string{c}}.key())
			}
		}
		return nil
	})
}

// frequentFromCounts filters accumulated order-1 counts by support.
func frequentFromCounts(counts map[string]int, minSupport int) map[string]itemsetCount {
	out := make(map[string]itemsetCount)
	for key, n := range counts {
		if n >= minSupport {
			out[key] = itemsetCount{set: parseKey(key), count: n}
		}
	}
	return out
}

// extendFrequent grows the frequent-set map to maxOrder Apriori-style; each
// order re-scans the corpus once to count candidate support in the voted
// class.
func extendFrequent(ctx context.Context, mrCfg mapreduce.Config, schema *feature.Schema, corpus Corpus, class int8, out map[string]itemsetCount, maxOrder, minSupport int) error {
	prev := make(map[string][]itemset)
	for _, ic := range out {
		prev[ic.set.feat] = append(prev[ic.set.feat], ic.set)
	}
	for order := 2; order <= maxOrder; order++ {
		candidates := joinCandidates(prev, order)
		if len(candidates) == 0 {
			break
		}
		cc, err := countItemsetStream(ctx, mrCfg, schema, corpus, class, candidates)
		if err != nil {
			return err
		}
		next := make(map[string][]itemset)
		for key, ic := range cc {
			if ic.count < minSupport {
				continue
			}
			out[key] = ic
			next[ic.set.feat] = append(next[ic.set.feat], ic.set)
		}
		prev = next
	}
	return nil
}

// countItemsetStream counts candidate support within one class across the
// whole corpus, chunk by chunk.
func countItemsetStream(ctx context.Context, mrCfg mapreduce.Config, schema *feature.Schema, corpus Corpus, class int8, candidates []itemset) (map[string]itemsetCount, error) {
	total := make(map[string]itemsetCount, len(candidates))
	for _, s := range candidates {
		total[s.key()] = itemsetCount{set: s}
	}
	err := corpus.Scan(ctx, func(vecs []*feature.Vector, labels []int8) error {
		var in []*feature.Vector
		for i, v := range vecs {
			if (class > 0) == (labels[i] > 0) {
				in = append(in, v)
			}
		}
		if len(in) == 0 {
			return nil
		}
		cc, err := countItemsetList(ctx, mrCfg, schema, in, candidates)
		if err != nil {
			return err
		}
		for key, ic := range cc {
			t := total[key]
			t.count += ic.count
			total[key] = t
		}
		return nil
	})
	return total, err
}

// mineNumericObserved is the numeric threshold miner over pre-collected
// observations (cols[j] is the schema position observed[j] belongs to).
// Observations must be in corpus order; quantile cuts and tie handling then
// match the in-memory miner exactly.
func mineNumericObserved(schema *feature.Schema, cols []int, observed [][]numObs, totalPos, totalNeg int, cfg Config, posThreshold, negThreshold float64) []*lf.LF {
	q := cfg.NumericQuantiles
	if q < 2 {
		return nil
	}
	var out []*lf.LF
	for j, fi := range cols {
		d := schema.Def(fi)
		obs := observed[j]
		if len(obs) < 2*cfg.MinSupport {
			continue
		}
		obs = append([]numObs(nil), obs...)
		sort.Slice(obs, func(i, k int) bool { return obs[i].val < obs[k].val })
		type best struct {
			ok    bool
			score float64
			lf    *lf.LF
		}
		var bestPos, bestNeg best
		consider := func(cut float64, above bool, vote int8) {
			var in, other int
			for _, o := range obs {
				hit := (above && o.val >= cut) || (!above && o.val <= cut)
				if !hit {
					continue
				}
				if o.lbl == vote {
					in++
				} else {
					other++
				}
			}
			if in < cfg.MinSupport {
				return
			}
			precision := float64(in) / float64(in+other)
			total := totalPos
			minP, minR := posThreshold, cfg.PosRecall
			slot := &bestPos
			if vote == lf.Negative {
				total = totalNeg
				minP, minR = negThreshold, cfg.NegRecall
				slot = &bestNeg
			}
			recall := float64(in) / float64(total)
			if precision < minP || recall < minR {
				return
			}
			score := precision * recall
			if !slot.ok || score > slot.score {
				*slot = best{true, score, lf.ThresholdLF(d.Name, cut, above, vote, "mined")}
			}
		}
		for k := 1; k < q; k++ {
			cut := obs[len(obs)*k/q].val
			consider(cut, true, lf.Positive)
			consider(cut, false, lf.Positive)
			consider(cut, true, lf.Negative)
			consider(cut, false, lf.Negative)
		}
		if bestPos.ok {
			out = append(out, bestPos.lf)
		}
		if bestNeg.ok {
			out = append(out, bestNeg.lf)
		}
	}
	return out
}
