package mining

import (
	"context"
	"errors"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
)

// chunkedCorpus replays a dev set in fixed-size chunks, counting scans.
type chunkedCorpus struct {
	vecs   []*feature.Vector
	labels []int8
	chunk  int
	scans  int
}

func (c *chunkedCorpus) Schema() *feature.Schema { return c.vecs[0].Schema() }

func (c *chunkedCorpus) Scan(ctx context.Context, fn func([]*feature.Vector, []int8) error) error {
	c.scans++
	for lo := 0; lo < len(c.vecs); lo += c.chunk {
		hi := lo + c.chunk
		if hi > len(c.vecs) {
			hi = len(c.vecs)
		}
		if err := fn(c.vecs[lo:hi], c.labels[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// TestMineStreamMatchesMine: mining a chunked corpus must produce the
// identical LF list and report as the in-memory miner, at every chunk size
// and at order 2 (which exercises the corpus re-scan path).
func TestMineStreamMatchesMine(t *testing.T) {
	vecs, labels := synthDev(3000, 5)
	mrCfg := mapreduce.Config{Workers: 2}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"order1", DefaultConfig()},
		{"order2", func() Config { c := DefaultConfig(); c.MaxOrder = 2; return c }()},
		{"no-numeric", func() Config { c := DefaultConfig(); c.NumericQuantiles = 0; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, wantReport, err := Mine(context.Background(), mrCfg, tc.cfg, vecs, labels)
			if err != nil {
				t.Fatalf("Mine: %v", err)
			}
			if len(want) == 0 {
				t.Fatal("fixture mined no LFs; test has no teeth")
			}
			for _, chunk := range []int{1, 97, 512, 5000} {
				corpus := &chunkedCorpus{vecs: vecs, labels: labels, chunk: chunk}
				got, gotReport, err := MineStream(context.Background(), mrCfg, tc.cfg, corpus)
				if err != nil {
					t.Fatalf("chunk=%d: MineStream: %v", chunk, err)
				}
				if gotReport != wantReport {
					t.Fatalf("chunk=%d: report %+v, want %+v", chunk, gotReport, wantReport)
				}
				if len(got) != len(want) {
					t.Fatalf("chunk=%d: %d LFs, want %d", chunk, len(got), len(want))
				}
				for i := range want {
					if got[i].Name != want[i].Name || got[i].Source != want[i].Source {
						t.Fatalf("chunk=%d: LF %d = %q/%q, want %q/%q",
							chunk, i, got[i].Name, got[i].Source, want[i].Name, want[i].Source)
					}
					// The functions themselves must vote identically.
					for _, v := range vecs[:200] {
						if got[i].Func(v) != want[i].Func(v) {
							t.Fatalf("chunk=%d: LF %q votes diverge", chunk, got[i].Name)
						}
					}
				}
			}
		})
	}
}

// TestMineStreamScanCount pins the pass budget: order-1 mining with
// numerics is a single scan; each extra Apriori order adds at most two
// (candidate counting per class side).
func TestMineStreamScanCount(t *testing.T) {
	vecs, labels := synthDev(2000, 9)
	mrCfg := mapreduce.Config{Workers: 2}

	corpus := &chunkedCorpus{vecs: vecs, labels: labels, chunk: 256}
	if _, _, err := MineStream(context.Background(), mrCfg, DefaultConfig(), corpus); err != nil {
		t.Fatal(err)
	}
	if corpus.scans != 1 {
		t.Fatalf("order-1 mining scanned the corpus %d times, want 1", corpus.scans)
	}

	cfg := DefaultConfig()
	cfg.MaxOrder = 2
	corpus = &chunkedCorpus{vecs: vecs, labels: labels, chunk: 256}
	if _, _, err := MineStream(context.Background(), mrCfg, cfg, corpus); err != nil {
		t.Fatal(err)
	}
	if corpus.scans > 3 {
		t.Fatalf("order-2 mining scanned the corpus %d times, want <= 3", corpus.scans)
	}
}

func TestMineStreamErrors(t *testing.T) {
	vecs, labels := synthDev(100, 2)
	mrCfg := mapreduce.Config{Workers: 1}
	// One-class corpus.
	all := make([]int8, len(labels))
	for i := range all {
		all[i] = -1
	}
	corpus := &chunkedCorpus{vecs: vecs, labels: all, chunk: 32}
	if _, _, err := MineStream(context.Background(), mrCfg, DefaultConfig(), corpus); err == nil {
		t.Fatal("one-class corpus mined without error")
	}
	// Mid-scan error propagates.
	boom := errors.New("scan failed")
	bad := corpusFunc{schema: vecs[0].Schema(), scan: func(ctx context.Context, fn func([]*feature.Vector, []int8) error) error {
		if err := fn(vecs[:50], labels[:50]); err != nil {
			return err
		}
		return boom
	}}
	if _, _, err := MineStream(context.Background(), mrCfg, DefaultConfig(), bad); !errors.Is(err, boom) {
		t.Fatalf("scan error = %v, want %v", err, boom)
	}
}

type corpusFunc struct {
	schema *feature.Schema
	scan   func(context.Context, func([]*feature.Vector, []int8) error) error
}

func (c corpusFunc) Schema() *feature.Schema { return c.schema }
func (c corpusFunc) Scan(ctx context.Context, fn func([]*feature.Vector, []int8) error) error {
	return c.scan(ctx, fn)
}
