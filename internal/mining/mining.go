// Package mining implements automatic labeling-function generation via
// frequent itemset mining (paper §4.3).
//
// The miner scans the full labeled development corpus of the old modality —
// something no human expert can do — and identifies feature values (and
// higher-order combinations of values of the same feature, as in the Apriori
// algorithm) that occur disproportionately in one class. Candidates that
// meet pre-specified precision and recall thresholds over the development
// set become labeling functions. To keep LFs weakly correlated, each LF is a
// conjunction of category values of a single feature; to stay cheap in
// class-imbalanced settings, candidates are first mined from the positive
// examples only, then scored against the negatives (the paper's
// positives-first optimization).
package mining

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"crossmodal/internal/feature"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
)

// Config sets the mining thresholds.
type Config struct {
	// MaxOrder is the largest itemset size (categories of one feature
	// combined into a conjunction). The paper found order 1 sufficient in
	// practice; 1 is the default.
	MaxOrder int
	// MinSupport is the minimum number of positive dev examples containing
	// a candidate itemset.
	MinSupport int
	// PosPrecision is an absolute floor and PosLift a base-rate multiple;
	// a positive LF must reach precision max(PosPrecision,
	// PosLift × positive rate) on the dev set (capped at 0.9). The lift
	// form is what matters in the paper's class-imbalanced tasks, where
	// no single feature value reaches high absolute precision but strong
	// values carry large likelihood ratios.
	PosPrecision float64
	PosLift      float64
	PosRecall    float64
	// NegPrecision / NegLift / NegRecall mirror the positive thresholds
	// for negative LFs; because the negative class dominates, the
	// effective threshold is near 1.
	NegPrecision float64
	NegLift      float64
	NegRecall    float64
	// MaxLFsPerFeature caps accepted LFs per (feature, class) to limit
	// correlated LFs; 0 means no cap.
	MaxLFsPerFeature int
	// NumericQuantiles is how many threshold candidates are tried per
	// numeric feature (cut points at quantiles of the dev distribution).
	NumericQuantiles int
}

// DefaultConfig returns thresholds that work across the five evaluation
// tasks.
func DefaultConfig() Config {
	return Config{
		MaxOrder:         1,
		MinSupport:       10,
		PosPrecision:     0.02,
		PosLift:          3,
		PosRecall:        0.004,
		NegPrecision:     0.90,
		NegLift:          1.02,
		NegRecall:        0.02,
		MaxLFsPerFeature: 6,
		NumericQuantiles: 16,
	}
}

// posThreshold returns the effective positive-LF precision threshold for a
// dev set with the given positive rate.
func (c Config) posThreshold(posRate float64) float64 {
	t := c.PosPrecision
	if lifted := c.PosLift * posRate; lifted > t {
		t = lifted
	}
	if t > 0.9 {
		t = 0.9
	}
	return t
}

// negThreshold mirrors posThreshold for negative LFs.
func (c Config) negThreshold(negRate float64) float64 {
	t := c.NegPrecision
	if lifted := c.NegLift * negRate; lifted > t {
		t = lifted
	}
	if t > 0.999 {
		t = 0.999
	}
	return t
}

func (c Config) validate() error {
	if c.MaxOrder < 1 {
		return fmt.Errorf("mining: MaxOrder must be >= 1, got %d", c.MaxOrder)
	}
	if c.MinSupport < 1 {
		return fmt.Errorf("mining: MinSupport must be >= 1, got %d", c.MinSupport)
	}
	if c.PosPrecision <= 0 || c.PosPrecision > 1 || c.NegPrecision <= 0 || c.NegPrecision > 1 {
		return fmt.Errorf("mining: precision thresholds must be in (0,1]")
	}
	return nil
}

// Report summarizes a mining run.
type Report struct {
	CandidatesScanned int
	PositiveLFs       int
	NegativeLFs       int
	NumericLFs        int
	DevPositives      int
	DevNegatives      int
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("mined %d candidates over %d+/%d- dev points → %d positive, %d negative, %d numeric LFs",
		r.CandidatesScanned, r.DevPositives, r.DevNegatives, r.PositiveLFs, r.NegativeLFs, r.NumericLFs)
}

// itemset is a sorted set of categories of one feature, keyed canonically.
type itemset struct {
	feat string
	cats []string
}

func (s itemset) key() string {
	return s.feat + "|" + strings.Join(s.cats, ",")
}

// Mine generates LFs from a labeled development corpus. vecs and labels are
// the dev set (old-modality labeled data projected into the common feature
// space); labels are +1/-1. It is the single-chunk case of MineStream,
// which does the actual work.
func Mine(ctx context.Context, mrCfg mapreduce.Config, cfg Config, vecs []*feature.Vector, labels []int8) ([]*lf.LF, Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, Report{}, err
	}
	if len(vecs) != len(labels) {
		return nil, Report{}, fmt.Errorf("mining: %d vectors vs %d labels", len(vecs), len(labels))
	}
	if len(vecs) == 0 {
		return nil, Report{}, fmt.Errorf("mining: empty development set")
	}
	return MineStream(ctx, mrCfg, cfg, &sliceCorpus{vecs: vecs, labels: labels})
}

type itemsetCount struct {
	set   itemset
	count int
}

func dedupe(cats []string) []string {
	if len(cats) <= 1 {
		return cats
	}
	sorted := append([]string(nil), cats...)
	sort.Strings(sorted)
	out := sorted[:1]
	for _, c := range sorted[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

func parseKey(key string) itemset {
	parts := strings.SplitN(key, "|", 2)
	return itemset{feat: parts[0], cats: strings.Split(parts[1], ",")}
}

// joinCandidates produces order-k candidates from frequent (k-1)-itemsets of
// the same feature, Apriori join: two sets sharing the first k-2 categories.
func joinCandidates(frequent map[string][]itemset, order int) []itemset {
	var out []itemset
	feats := make([]string, 0, len(frequent))
	for f := range frequent {
		feats = append(feats, f)
	}
	sort.Strings(feats)
	for _, f := range feats {
		sets := frequent[f]
		sort.Slice(sets, func(i, j int) bool {
			return strings.Join(sets[i].cats, ",") < strings.Join(sets[j].cats, ",")
		})
		for i := 0; i < len(sets); i++ {
			for j := i + 1; j < len(sets); j++ {
				a, b := sets[i].cats, sets[j].cats
				if len(a) != order-1 || len(b) != order-1 {
					continue
				}
				if !equalPrefix(a, b, order-2) {
					break // sorted: later j won't share the prefix either
				}
				merged := append(append([]string{}, a...), b[order-2])
				sort.Strings(merged)
				out = append(out, itemset{feat: f, cats: merged})
			}
		}
	}
	return out
}

func equalPrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countItemsetList counts exact support of explicit candidate itemsets.
func countItemsetList(ctx context.Context, mrCfg mapreduce.Config, schema *feature.Schema, corpus []*feature.Vector, candidates []itemset) (map[string]itemsetCount, error) {
	byFeat := make(map[string][]itemset)
	for _, s := range candidates {
		byFeat[s.feat] = append(byFeat[s.feat], s)
	}
	counts, err := mapreduce.Count(ctx, mrCfg, corpus, func(v *feature.Vector, emit func(string)) error {
		for f, sets := range byFeat {
			val := v.Get(f)
			if val.Missing {
				continue
			}
			for _, s := range sets {
				if containsAll(val, s.cats) {
					emit(s.key())
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]itemsetCount, len(candidates))
	for _, s := range candidates {
		out[s.key()] = itemsetCount{set: s, count: counts[s.key()]}
	}
	return out, nil
}

func containsAll(val feature.Value, cats []string) bool {
	for _, c := range cats {
		if !val.HasCategory(c) {
			return false
		}
	}
	return true
}

// acceptCategorical turns mined itemsets into LFs when they meet the
// precision and recall thresholds. inClassTotal is the size of the voted
// class in the dev set; otherCounts holds each candidate's count in the
// other class.
func acceptCategorical(sets map[string]itemsetCount, otherCounts map[string]int, inClassTotal int, minPrecision, minRecall float64, perFeatureCap int, vote int8) []*lf.LF {
	type scored struct {
		set       itemset
		precision float64
		recall    float64
	}
	byFeat := make(map[string][]scored)
	for key, ic := range sets {
		in := ic.count
		out := otherCounts[key]
		precision := float64(in) / float64(in+out)
		recall := float64(in) / float64(inClassTotal)
		if precision >= minPrecision && recall >= minRecall {
			byFeat[ic.set.feat] = append(byFeat[ic.set.feat], scored{ic.set, precision, recall})
		}
	}
	var out []*lf.LF
	feats := make([]string, 0, len(byFeat))
	for f := range byFeat {
		feats = append(feats, f)
	}
	sort.Strings(feats)
	for _, f := range feats {
		cands := byFeat[f]
		sort.Slice(cands, func(i, j int) bool {
			// Rank by F1-ish product to prefer candidates that are both
			// precise and broad; ties broken deterministically.
			si := cands[i].precision * cands[i].recall
			sj := cands[j].precision * cands[j].recall
			if si != sj {
				return si > sj
			}
			return cands[i].set.key() < cands[j].set.key()
		})
		// Prune supersets of accepted sets: they cannot add coverage and
		// would correlate heavily with their subset LF.
		var accepted []itemset
		for _, c := range cands {
			if perFeatureCap > 0 && len(accepted) >= perFeatureCap {
				break
			}
			if supersetOfAny(c.set, accepted) {
				continue
			}
			accepted = append(accepted, c.set)
			out = append(out, itemsetLF(c.set, vote))
		}
	}
	return out
}

func supersetOfAny(s itemset, accepted []itemset) bool {
	for _, a := range accepted {
		if len(a.cats) >= len(s.cats) {
			continue
		}
		all := true
		for _, c := range a.cats {
			if !containsStr(s.cats, c) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// itemsetLF builds the LF for one mined itemset: all categories of the
// feature must be present.
func itemsetLF(s itemset, vote int8) *lf.LF {
	if len(s.cats) == 1 {
		return lf.CategoryLF(s.feat, s.cats[0], vote, "mined")
	}
	cats := append([]string(nil), s.cats...)
	name := fmt.Sprintf("%s⊇{%s}→%+d", s.feat, strings.Join(cats, ","), vote)
	return &lf.LF{
		Name:   name,
		Source: "mined",
		Func: func(v *feature.Vector) int8 {
			if containsAll(v.Get(s.feat), cats) {
				return vote
			}
			return lf.Abstain
		},
	}
}
