// Package mining implements automatic labeling-function generation via
// frequent itemset mining (paper §4.3).
//
// The miner scans the full labeled development corpus of the old modality —
// something no human expert can do — and identifies feature values (and
// higher-order combinations of values of the same feature, as in the Apriori
// algorithm) that occur disproportionately in one class. Candidates that
// meet pre-specified precision and recall thresholds over the development
// set become labeling functions. To keep LFs weakly correlated, each LF is a
// conjunction of category values of a single feature; to stay cheap in
// class-imbalanced settings, candidates are first mined from the positive
// examples only, then scored against the negatives (the paper's
// positives-first optimization).
package mining

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"crossmodal/internal/feature"
	"crossmodal/internal/lf"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/trace"
)

// Config sets the mining thresholds.
type Config struct {
	// MaxOrder is the largest itemset size (categories of one feature
	// combined into a conjunction). The paper found order 1 sufficient in
	// practice; 1 is the default.
	MaxOrder int
	// MinSupport is the minimum number of positive dev examples containing
	// a candidate itemset.
	MinSupport int
	// PosPrecision is an absolute floor and PosLift a base-rate multiple;
	// a positive LF must reach precision max(PosPrecision,
	// PosLift × positive rate) on the dev set (capped at 0.9). The lift
	// form is what matters in the paper's class-imbalanced tasks, where
	// no single feature value reaches high absolute precision but strong
	// values carry large likelihood ratios.
	PosPrecision float64
	PosLift      float64
	PosRecall    float64
	// NegPrecision / NegLift / NegRecall mirror the positive thresholds
	// for negative LFs; because the negative class dominates, the
	// effective threshold is near 1.
	NegPrecision float64
	NegLift      float64
	NegRecall    float64
	// MaxLFsPerFeature caps accepted LFs per (feature, class) to limit
	// correlated LFs; 0 means no cap.
	MaxLFsPerFeature int
	// NumericQuantiles is how many threshold candidates are tried per
	// numeric feature (cut points at quantiles of the dev distribution).
	NumericQuantiles int
}

// DefaultConfig returns thresholds that work across the five evaluation
// tasks.
func DefaultConfig() Config {
	return Config{
		MaxOrder:         1,
		MinSupport:       10,
		PosPrecision:     0.02,
		PosLift:          3,
		PosRecall:        0.004,
		NegPrecision:     0.90,
		NegLift:          1.02,
		NegRecall:        0.02,
		MaxLFsPerFeature: 6,
		NumericQuantiles: 16,
	}
}

// posThreshold returns the effective positive-LF precision threshold for a
// dev set with the given positive rate.
func (c Config) posThreshold(posRate float64) float64 {
	t := c.PosPrecision
	if lifted := c.PosLift * posRate; lifted > t {
		t = lifted
	}
	if t > 0.9 {
		t = 0.9
	}
	return t
}

// negThreshold mirrors posThreshold for negative LFs.
func (c Config) negThreshold(negRate float64) float64 {
	t := c.NegPrecision
	if lifted := c.NegLift * negRate; lifted > t {
		t = lifted
	}
	if t > 0.999 {
		t = 0.999
	}
	return t
}

func (c Config) validate() error {
	if c.MaxOrder < 1 {
		return fmt.Errorf("mining: MaxOrder must be >= 1, got %d", c.MaxOrder)
	}
	if c.MinSupport < 1 {
		return fmt.Errorf("mining: MinSupport must be >= 1, got %d", c.MinSupport)
	}
	if c.PosPrecision <= 0 || c.PosPrecision > 1 || c.NegPrecision <= 0 || c.NegPrecision > 1 {
		return fmt.Errorf("mining: precision thresholds must be in (0,1]")
	}
	return nil
}

// Report summarizes a mining run.
type Report struct {
	CandidatesScanned int
	PositiveLFs       int
	NegativeLFs       int
	NumericLFs        int
	DevPositives      int
	DevNegatives      int
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("mined %d candidates over %d+/%d- dev points → %d positive, %d negative, %d numeric LFs",
		r.CandidatesScanned, r.DevPositives, r.DevNegatives, r.PositiveLFs, r.NegativeLFs, r.NumericLFs)
}

// itemset is a sorted set of categories of one feature, keyed canonically.
type itemset struct {
	feat string
	cats []string
}

func (s itemset) key() string {
	return s.feat + "|" + strings.Join(s.cats, ",")
}

// Mine generates LFs from a labeled development corpus. vecs and labels are
// the dev set (old-modality labeled data projected into the common feature
// space); labels are +1/-1.
func Mine(ctx context.Context, mrCfg mapreduce.Config, cfg Config, vecs []*feature.Vector, labels []int8) ([]*lf.LF, Report, error) {
	var report Report
	if err := cfg.validate(); err != nil {
		return nil, report, err
	}
	ctx, span := trace.Start(ctx, "mining")
	defer span.End()
	defer func() {
		span.Add("candidates", int64(report.CandidatesScanned))
		span.Add("lfs_pos", int64(report.PositiveLFs))
		span.Add("lfs_neg", int64(report.NegativeLFs))
		span.Add("lfs_numeric", int64(report.NumericLFs))
	}()
	if len(vecs) != len(labels) {
		return nil, report, fmt.Errorf("mining: %d vectors vs %d labels", len(vecs), len(labels))
	}
	if len(vecs) == 0 {
		return nil, report, fmt.Errorf("mining: empty development set")
	}
	schema := vecs[0].Schema()
	var positives, negatives []*feature.Vector
	for i, v := range vecs {
		if labels[i] > 0 {
			positives = append(positives, v)
		} else {
			negatives = append(negatives, v)
		}
	}
	report.DevPositives = len(positives)
	report.DevNegatives = len(negatives)
	if len(positives) == 0 || len(negatives) == 0 {
		return nil, report, fmt.Errorf("mining: dev set needs both classes (%d+/%d-)", len(positives), len(negatives))
	}
	posRate := float64(len(positives)) / float64(len(vecs))
	posThreshold := cfg.posThreshold(posRate)
	negThreshold := cfg.negThreshold(1 - posRate)

	var lfs []*lf.LF

	// --- Positive categorical LFs: positives-first Apriori ---
	posSets, err := frequentItemsets(ctx, mrCfg, schema, positives, cfg.MaxOrder, cfg.MinSupport)
	if err != nil {
		return nil, report, err
	}
	report.CandidatesScanned += len(posSets)
	negCounts, err := countItemsets(ctx, mrCfg, schema, negatives, posSets, cfg.MaxOrder)
	if err != nil {
		return nil, report, err
	}
	posLFs := acceptCategorical(posSets, negCounts, len(positives), posThreshold, cfg.PosRecall, cfg.MaxLFsPerFeature, lf.Positive)
	report.PositiveLFs = len(posLFs)
	lfs = append(lfs, posLFs...)

	// --- Negative categorical LFs: mirror pass, order 1 only (the
	// negative class is broad; higher-order negative rules add little and
	// cost much — the paper's "behavior of the negative class is vast").
	negSets, err := frequentItemsets(ctx, mrCfg, schema, negatives, 1, cfg.MinSupport)
	if err != nil {
		return nil, report, err
	}
	report.CandidatesScanned += len(negSets)
	posCounts, err := countItemsets(ctx, mrCfg, schema, positives, negSets, 1)
	if err != nil {
		return nil, report, err
	}
	negLFs := acceptCategorical(negSets, posCounts, len(negatives), negThreshold, cfg.NegRecall, cfg.MaxLFsPerFeature, lf.Negative)
	report.NegativeLFs = len(negLFs)
	lfs = append(lfs, negLFs...)

	// --- Numeric threshold LFs ---
	numLFs := mineNumeric(schema, vecs, labels, cfg, posThreshold, negThreshold)
	report.NumericLFs = len(numLFs)
	lfs = append(lfs, numLFs...)

	sort.Slice(lfs, func(i, j int) bool { return lfs[i].Name < lfs[j].Name })
	return lfs, report, nil
}

// frequentItemsets mines category itemsets of one feature with support >=
// minSupport over the given corpus, up to maxOrder, Apriori style: order-k
// candidates are only generated from frequent order-(k-1) sets.
func frequentItemsets(ctx context.Context, mrCfg mapreduce.Config, schema *feature.Schema, corpus []*feature.Vector, maxOrder, minSupport int) (map[string]itemsetCount, error) {
	out := make(map[string]itemsetCount)
	// Order 1: raw counts of every (feature, category).
	counts, err := mapreduce.Count(ctx, mrCfg, corpus, func(v *feature.Vector, emit func(string)) error {
		for i := 0; i < schema.Len(); i++ {
			d := schema.Def(i)
			if d.Kind != feature.Categorical {
				continue
			}
			val := v.At(i)
			if val.Missing {
				continue
			}
			for _, c := range dedupe(val.Categories) {
				emit(itemset{d.Name, []string{c}}.key())
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	frequent := make(map[string][]itemset) // by feature, for candidate join
	for key, n := range counts {
		if n < minSupport {
			continue
		}
		s := parseKey(key)
		out[key] = itemsetCount{set: s, count: n}
		frequent[s.feat] = append(frequent[s.feat], s)
	}
	// Higher orders: join frequent (k-1)-sets of the same feature sharing
	// a (k-2)-prefix, then count support exactly.
	prev := frequent
	for order := 2; order <= maxOrder; order++ {
		candidates := joinCandidates(prev, order)
		if len(candidates) == 0 {
			break
		}
		cc, err := countItemsetList(ctx, mrCfg, schema, corpus, candidates)
		if err != nil {
			return nil, err
		}
		next := make(map[string][]itemset)
		for key, ic := range cc {
			if ic.count < minSupport {
				continue
			}
			out[key] = ic
			next[ic.set.feat] = append(next[ic.set.feat], ic.set)
		}
		prev = next
	}
	return out, nil
}

type itemsetCount struct {
	set   itemset
	count int
}

func dedupe(cats []string) []string {
	if len(cats) <= 1 {
		return cats
	}
	sorted := append([]string(nil), cats...)
	sort.Strings(sorted)
	out := sorted[:1]
	for _, c := range sorted[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

func parseKey(key string) itemset {
	parts := strings.SplitN(key, "|", 2)
	return itemset{feat: parts[0], cats: strings.Split(parts[1], ",")}
}

// joinCandidates produces order-k candidates from frequent (k-1)-itemsets of
// the same feature, Apriori join: two sets sharing the first k-2 categories.
func joinCandidates(frequent map[string][]itemset, order int) []itemset {
	var out []itemset
	feats := make([]string, 0, len(frequent))
	for f := range frequent {
		feats = append(feats, f)
	}
	sort.Strings(feats)
	for _, f := range feats {
		sets := frequent[f]
		sort.Slice(sets, func(i, j int) bool {
			return strings.Join(sets[i].cats, ",") < strings.Join(sets[j].cats, ",")
		})
		for i := 0; i < len(sets); i++ {
			for j := i + 1; j < len(sets); j++ {
				a, b := sets[i].cats, sets[j].cats
				if len(a) != order-1 || len(b) != order-1 {
					continue
				}
				if !equalPrefix(a, b, order-2) {
					break // sorted: later j won't share the prefix either
				}
				merged := append(append([]string{}, a...), b[order-2])
				sort.Strings(merged)
				out = append(out, itemset{feat: f, cats: merged})
			}
		}
	}
	return out
}

func equalPrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countItemsets counts how many corpus points contain each of the candidate
// itemsets (given as the keys of want).
func countItemsets(ctx context.Context, mrCfg mapreduce.Config, schema *feature.Schema, corpus []*feature.Vector, want map[string]itemsetCount, maxOrder int) (map[string]int, error) {
	list := make([]itemset, 0, len(want))
	for _, ic := range want {
		list = append(list, ic.set)
	}
	cc, err := countItemsetList(ctx, mrCfg, schema, corpus, list)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(cc))
	for key, ic := range cc {
		out[key] = ic.count
	}
	return out, nil
}

// countItemsetList counts exact support of explicit candidate itemsets.
func countItemsetList(ctx context.Context, mrCfg mapreduce.Config, schema *feature.Schema, corpus []*feature.Vector, candidates []itemset) (map[string]itemsetCount, error) {
	byFeat := make(map[string][]itemset)
	for _, s := range candidates {
		byFeat[s.feat] = append(byFeat[s.feat], s)
	}
	counts, err := mapreduce.Count(ctx, mrCfg, corpus, func(v *feature.Vector, emit func(string)) error {
		for f, sets := range byFeat {
			val := v.Get(f)
			if val.Missing {
				continue
			}
			for _, s := range sets {
				if containsAll(val, s.cats) {
					emit(s.key())
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]itemsetCount, len(candidates))
	for _, s := range candidates {
		out[s.key()] = itemsetCount{set: s, count: counts[s.key()]}
	}
	return out, nil
}

func containsAll(val feature.Value, cats []string) bool {
	for _, c := range cats {
		if !val.HasCategory(c) {
			return false
		}
	}
	return true
}

// acceptCategorical turns mined itemsets into LFs when they meet the
// precision and recall thresholds. inClassTotal is the size of the voted
// class in the dev set; otherCounts holds each candidate's count in the
// other class.
func acceptCategorical(sets map[string]itemsetCount, otherCounts map[string]int, inClassTotal int, minPrecision, minRecall float64, perFeatureCap int, vote int8) []*lf.LF {
	type scored struct {
		set       itemset
		precision float64
		recall    float64
	}
	byFeat := make(map[string][]scored)
	for key, ic := range sets {
		in := ic.count
		out := otherCounts[key]
		precision := float64(in) / float64(in+out)
		recall := float64(in) / float64(inClassTotal)
		if precision >= minPrecision && recall >= minRecall {
			byFeat[ic.set.feat] = append(byFeat[ic.set.feat], scored{ic.set, precision, recall})
		}
	}
	var out []*lf.LF
	feats := make([]string, 0, len(byFeat))
	for f := range byFeat {
		feats = append(feats, f)
	}
	sort.Strings(feats)
	for _, f := range feats {
		cands := byFeat[f]
		sort.Slice(cands, func(i, j int) bool {
			// Rank by F1-ish product to prefer candidates that are both
			// precise and broad; ties broken deterministically.
			si := cands[i].precision * cands[i].recall
			sj := cands[j].precision * cands[j].recall
			if si != sj {
				return si > sj
			}
			return cands[i].set.key() < cands[j].set.key()
		})
		// Prune supersets of accepted sets: they cannot add coverage and
		// would correlate heavily with their subset LF.
		var accepted []itemset
		for _, c := range cands {
			if perFeatureCap > 0 && len(accepted) >= perFeatureCap {
				break
			}
			if supersetOfAny(c.set, accepted) {
				continue
			}
			accepted = append(accepted, c.set)
			out = append(out, itemsetLF(c.set, vote))
		}
	}
	return out
}

func supersetOfAny(s itemset, accepted []itemset) bool {
	for _, a := range accepted {
		if len(a.cats) >= len(s.cats) {
			continue
		}
		all := true
		for _, c := range a.cats {
			if !containsStr(s.cats, c) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// itemsetLF builds the LF for one mined itemset: all categories of the
// feature must be present.
func itemsetLF(s itemset, vote int8) *lf.LF {
	if len(s.cats) == 1 {
		return lf.CategoryLF(s.feat, s.cats[0], vote, "mined")
	}
	cats := append([]string(nil), s.cats...)
	name := fmt.Sprintf("%s⊇{%s}→%+d", s.feat, strings.Join(cats, ","), vote)
	return &lf.LF{
		Name:   name,
		Source: "mined",
		Func: func(v *feature.Vector) int8 {
			if containsAll(v.Get(s.feat), cats) {
				return vote
			}
			return lf.Abstain
		},
	}
}

// mineNumeric proposes threshold LFs for numeric features: candidate cuts at
// quantiles of the dev distribution, both directions and both votes,
// accepted by the same precision/recall thresholds; at most one positive and
// one negative LF per feature (the best by precision×recall).
func mineNumeric(schema *feature.Schema, vecs []*feature.Vector, labels []int8, cfg Config, posThreshold, negThreshold float64) []*lf.LF {
	q := cfg.NumericQuantiles
	if q < 2 {
		return nil
	}
	var totalPos, totalNeg int
	for _, l := range labels {
		if l > 0 {
			totalPos++
		} else {
			totalNeg++
		}
	}
	var out []*lf.LF
	for fi := 0; fi < schema.Len(); fi++ {
		d := schema.Def(fi)
		if d.Kind != feature.Numeric {
			continue
		}
		type obs struct {
			val float64
			lbl int8
		}
		var observed []obs
		for i, v := range vecs {
			if val := v.At(fi); !val.Missing {
				observed = append(observed, obs{val.Num, labels[i]})
			}
		}
		if len(observed) < 2*cfg.MinSupport {
			continue
		}
		sort.Slice(observed, func(i, j int) bool { return observed[i].val < observed[j].val })
		type best struct {
			ok    bool
			score float64
			lf    *lf.LF
		}
		var bestPos, bestNeg best
		consider := func(cut float64, above bool, vote int8) {
			var in, other int
			for _, o := range observed {
				hit := (above && o.val >= cut) || (!above && o.val <= cut)
				if !hit {
					continue
				}
				if o.lbl == vote {
					in++
				} else {
					other++
				}
			}
			if in < cfg.MinSupport {
				return
			}
			precision := float64(in) / float64(in+other)
			total := totalPos
			minP, minR := posThreshold, cfg.PosRecall
			slot := &bestPos
			if vote == lf.Negative {
				total = totalNeg
				minP, minR = negThreshold, cfg.NegRecall
				slot = &bestNeg
			}
			recall := float64(in) / float64(total)
			if precision < minP || recall < minR {
				return
			}
			score := precision * recall
			if !slot.ok || score > slot.score {
				*slot = best{true, score, lf.ThresholdLF(d.Name, cut, above, vote, "mined")}
			}
		}
		for k := 1; k < q; k++ {
			cut := observed[len(observed)*k/q].val
			consider(cut, true, lf.Positive)
			consider(cut, false, lf.Positive)
			consider(cut, true, lf.Negative)
			consider(cut, false, lf.Negative)
		}
		if bestPos.ok {
			out = append(out, bestPos.lf)
		}
		if bestNeg.ok {
			out = append(out, bestNeg.lf)
		}
	}
	return out
}
