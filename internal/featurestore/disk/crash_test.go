package disk

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossmodal/internal/feature"
)

// reopen opens dir fresh and registers cleanup.
func reopen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, testSchema(), opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// seedStore writes nChunks committed chunks and closes the store.
func seedStore(t *testing.T, dir string, nChunks int) {
	t.Helper()
	s, err := Open(dir, testSchema(), Options{Shards: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for c := 0; c < nChunks; c++ {
		appendTestChunk(t, s, 1000*c, 40, int64(c))
	}
	s.Close()
}

// wantRecovery reopens dir and asserts the committed-prefix length and that
// the store still scans clean end to end.
func wantRecovery(t *testing.T, dir string, wantChunks, wantQuarantined int) *Store {
	t.Helper()
	s := reopen(t, dir, Options{Shards: 3})
	if got := s.Chunks(); got != wantChunks {
		t.Fatalf("recovered %d chunks, want %d (quarantined: %v)", got, wantChunks, s.Quarantined())
	}
	if got := len(s.Quarantined()); got != wantQuarantined {
		t.Fatalf("quarantined %d files %v, want %d", got, s.Quarantined(), wantQuarantined)
	}
	err := s.ScanChunks(context.Background(), func(seq int, ids []int, labels []int8, vecs []*feature.Vector) error { return nil })
	if err != nil {
		t.Fatalf("recovered store does not scan: %v", err)
	}
	for _, q := range s.Quarantined() {
		if !strings.HasSuffix(q, ".quarantined") {
			t.Fatalf("quarantined file %q not renamed", q)
		}
		if _, err := os.Stat(q); err != nil {
			t.Fatalf("quarantined file missing: %v", err)
		}
	}
	return s
}

func segPaths(t *testing.T, dir string, chunk int) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("c%06d-s*.seg", chunk)))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no segments for chunk %d (err %v)", chunk, err)
	}
	return paths
}

func TestCrashTornSegmentWrite(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 3)
	// Truncate one chunk-1 segment mid-payload: a torn write that the
	// rename protocol can't produce but disk corruption can.
	path := segPaths(t, dir, 1)[0]
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	// Chunk 0 survives; chunk 1 (torn) and chunk 2 (past the break) are
	// quarantined in full.
	n := len(segPaths(t, dir, 1)) + len(segPaths(t, dir, 2)) + 2 // + two markers
	wantRecovery(t, dir, 1, n)
}

func TestCrashBitFlipCaughtByCRC(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 2)
	path := segPaths(t, dir, 1)[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+3] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n := len(segPaths(t, dir, 1)) + 1
	wantRecovery(t, dir, 1, n)
}

func TestCrashZeroLengthSegment(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 2)
	path := segPaths(t, dir, 0)[0]
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	// Chunk 0 broken ⇒ nothing is committed; everything quarantined.
	entries, _ := os.ReadDir(dir)
	wantRecovery(t, dir, 0, len(entries))
}

func TestCrashPartialRename(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 2)
	// Simulate a crash between segment renames and the marker rename of a
	// third chunk: segments present, no marker.
	seedOne := filepath.Join(dir, segName(2, 0))
	if err := os.WriteFile(seedOne, encodeTestSegment(t, testSchema(), 5, 99), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a leftover temp file from the interrupted writer.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123456"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := wantRecovery(t, dir, 2, 2)
	// The store resumes appending at chunk 2 as if the failed attempt
	// never happened.
	appendTestChunk(t, s, 2000, 40, 2)
	if s.Chunks() != 3 {
		t.Fatalf("append after recovery produced %d chunks, want 3", s.Chunks())
	}
}

func TestCrashMarkerPastGap(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 1)
	// A marker for chunk 3 with no chunks 1–2: not contiguous, debris.
	if err := os.WriteFile(filepath.Join(dir, markerName(3)), []byte("ok\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantRecovery(t, dir, 1, 1)
}

func TestCrashMarkerWithoutSegments(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 1)
	if err := os.WriteFile(filepath.Join(dir, markerName(1)), []byte("ok\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantRecovery(t, dir, 1, 1)
}

// TestCrashInjectedAtEveryCommitPoint drives AppendChunk with a hook that
// fails at the k'th rename, for every k, and checks the invariant the
// streaming pipeline depends on: after any mid-commit crash, reopening
// recovers exactly the chunks whose markers landed, and the next append
// continues the sequence.
func TestCrashInjectedAtEveryCommitPoint(t *testing.T) {
	boom := errors.New("injected crash")
	for fail := 1; fail <= 6; fail++ {
		t.Run(fmt.Sprintf("rename%d", fail), func(t *testing.T) {
			dir := t.TempDir()
			seedStore(t, dir, 1)

			calls := 0
			s, err := Open(dir, testSchema(), Options{Shards: 3, CommitHook: func(op, path string) error {
				calls++
				if calls == fail {
					return boom
				}
				return nil
			}})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			vecs := makeVecs(t, s.Schema(), 40, 1)
			ids := make([]int, 40)
			labels := make([]int8, 40)
			for i := range ids {
				ids[i] = 5000 + i
			}
			err = s.AppendChunk(context.Background(), ids, labels, vecs)
			s.Close()
			injected := calls >= fail
			if injected && !errors.Is(err, boom) {
				t.Fatalf("AppendChunk error = %v, want injected crash", err)
			}
			if !injected && err != nil {
				t.Fatalf("AppendChunk: %v", err)
			}

			// Whatever the crash point, recovery yields chunk 0 plus chunk 1
			// iff its marker rename ran.
			wantChunks := 1
			if !injected {
				wantChunks = 2
			}
			s2 := reopen(t, dir, Options{Shards: 3})
			if got := s2.Chunks(); got != wantChunks {
				t.Fatalf("recovered %d chunks, want %d", got, wantChunks)
			}
			// Resume: the next append always lands as the next sequence
			// number and round-trips.
			appendTestChunk(t, s2, 9000, 25, 7)
			if got := s2.Chunks(); got != wantChunks+1 {
				t.Fatalf("post-recovery append: %d chunks, want %d", got, wantChunks+1)
			}
			got, err := s2.Find(context.Background(), []int{9000 + 24})
			if err != nil || len(got) != 1 {
				t.Fatalf("Find after recovery: %v (%d hits)", err, len(got))
			}
		})
	}
}

func TestQuarantineIdempotent(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 2)
	path := segPaths(t, dir, 1)[0]
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	s := wantRecovery(t, dir, 1, len(segPaths(t, dir, 1))+1)
	s.Close()
	// A second recovery pass finds the debris already renamed and leaves
	// it alone — no error, no double-quarantine.
	s2 := reopen(t, dir, Options{Shards: 3})
	if got := s2.Chunks(); got != 1 {
		t.Fatalf("second recovery: %d chunks, want 1", got)
	}
	if got := len(s2.Quarantined()); got != 0 {
		t.Fatalf("second recovery re-quarantined %v", s2.Quarantined())
	}
}
