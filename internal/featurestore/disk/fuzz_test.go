package disk

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// fuzzSeeds builds the seed corpus for FuzzShardLoad: a real encoded
// segment plus the classic corruption shapes — flipped payload bits,
// lying length fields (with recomputed header CRC so the lie survives the
// first gate), truncation, and an empty file.
func fuzzSeeds(f *testing.F) {
	schema := testSchema()
	good := encodeTestSegment(f, schema, 32, 3)
	f.Add(good)

	flip := append([]byte(nil), good...)
	flip[headerSize+10] ^= 0x01 // payload CRC now wrong
	f.Add(flip)

	lying := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(lying[24:], 1<<25) // rows claims 32M
	binary.LittleEndian.PutUint32(lying[44:], crc32.ChecksumIEEE(lying[:44]))
	f.Add(lying)

	lyingLen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(lyingLen[36:], uint64(maxPayload)) // payloadLen lies huge
	binary.LittleEndian.PutUint32(lyingLen[44:], crc32.ChecksumIEEE(lyingLen[:44]))
	f.Add(lyingLen)

	f.Add(good[:len(good)/2]) // truncated mid-payload
	f.Add(good[:headerSize])  // header only
	f.Add([]byte{})           // zero-length file
	f.Add([]byte("XMODFST1"))
	f.Add(encodeTestSegment(f, schema, 1, 4))
}

// FuzzShardLoad feeds arbitrary bytes through the full segment-open path
// (mmap + header + CRC + column layout). Corrupt inputs must come back as
// ErrCorrupt — never a panic, and never an allocation driven by a length
// field rather than by bytes actually present in the file.
func FuzzShardLoad(f *testing.F) {
	fuzzSeeds(f)
	schema := testSchema()
	hash := SchemaHash(schema)
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, segName(0, 0))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		seg, err := openSegment(path, schema, hash, true)
		runtime.ReadMemStats(&after)
		if err != nil {
			var ce *ErrCorrupt
			if !errors.As(err, &ce) {
				t.Fatalf("openSegment returned non-corruption error %v (%T)", err, err)
			}
			// A rejected file must not have cost allocations proportional
			// to a lying length field: bound total allocation by the input
			// size plus slack for mmap bookkeeping and test overhead.
			if grew := int64(after.TotalAlloc - before.TotalAlloc); grew > int64(len(data))+1<<20 {
				t.Fatalf("rejecting a %d-byte file allocated %d bytes", len(data), grew)
			}
			return
		}
		// Accepted: every accessor over every row must stay in bounds.
		for r := 0; r < seg.Rows(); r++ {
			_ = seg.ID(r)
			_ = seg.Ord(r)
			_ = seg.Label(r)
			_ = seg.VectorAt(schema, r)
		}
		seg.Close()
	})
}

// FuzzShardHeader fuzzes the fixed-header parser in isolation: arbitrary
// byte strings must parse or fail cleanly, and every accepted header must
// re-encode to the same 48 bytes (parse∘encode is the identity on valid
// headers).
func FuzzShardHeader(f *testing.F) {
	schema := testSchema()
	good := encodeTestSegment(f, schema, 8, 5)
	f.Add(good[:headerSize+12+4])
	f.Add(good[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("XMODFST1\x01\x00\x00\x00"))
	bad := append([]byte(nil), good[:headerSize]...)
	bad[9] = 0xff // version
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := parseHeader(data)
		if err != nil {
			var ce *ErrCorrupt
			if !errors.As(err, &ce) {
				t.Fatalf("parseHeader returned %T, want *ErrCorrupt", err)
			}
			return
		}
		if h.Rows <= 0 || h.Rows > maxRows || h.PayloadLen <= 0 || h.PayloadLen > maxPayload {
			t.Fatalf("parseHeader accepted out-of-range header %+v", h)
		}
		if len(data) != headerSize+h.PayloadLen+4 {
			t.Fatalf("accepted header implies %d bytes, file has %d", headerSize+h.PayloadLen+4, len(data))
		}
		if got := putHeader(h); string(got) != string(data[:headerSize]) {
			t.Fatalf("header does not round-trip:\n got %x\nwant %x", got, data[:headerSize])
		}
	})
}
