package disk

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"crossmodal/internal/feature"
	"crossmodal/internal/trace"
	"crossmodal/internal/xrand"
)

// Options configures a store.
type Options struct {
	// Shards is the shard count rows are hash-routed across (default 8).
	// Segments recorded with a different count are rejected as corrupt.
	Shards int
	// SkipCRC disables payload checksum verification at segment open
	// (structural validation still runs). Scans over committed data the
	// same process just wrote can skip the extra pass.
	SkipCRC bool
	// CommitHook, when set, runs immediately before each atomic rename
	// during AppendChunk: op is "segment" or "marker", path the final
	// destination. Returning an error aborts the append mid-commit — the
	// crash-injection seam the fault-tolerance suite drives (the disk
	// analogue of internal/faulty's service-call injection).
	CommitHook func(op, path string) error
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	return o
}

// chunkSet is one committed chunk's open segments (only shards that
// received rows have one), ascending by shard.
type chunkSet struct {
	seq  int
	segs []*Segment
	rows int
}

// Store is an append-only, chunk-committed collection of shard segments
// under one directory. Safe for concurrent reads; AppendChunk callers must
// serialize among themselves (the streaming pipeline appends from one
// goroutine).
type Store struct {
	dir        string
	schema     *feature.Schema
	schemaHash uint64
	opts       Options

	mu          sync.RWMutex
	chunks      []*chunkSet
	rows        int
	quarantined []string
}

// segName returns the segment filename for (chunk, shard).
func segName(chunk, shard int) string {
	return fmt.Sprintf("c%06d-s%03d.seg", chunk, shard)
}

// markerName returns the commit-marker filename for a chunk.
func markerName(chunk int) string {
	return fmt.Sprintf("c%06d.ok", chunk)
}

// shardOf routes a point ID to its shard by entity hash.
func shardOf(id uint64, shards int) int {
	return int(xrand.Mix(id) % uint64(shards))
}

// Open opens (creating if needed) the store at dir for schema.
//
// Recovery model: a chunk exists iff its commit marker does, and the
// committed prefix is the longest contiguous run of valid chunks from 0.
// Everything else on disk is debris from a crash or corruption — un-marked
// segments (torn writes, partial multi-shard renames), zero-length or
// CRC-failing segments, markers past a gap — and is quarantined: renamed
// to "<name>.quarantined" so it can never be mistaken for data, while
// remaining available for inspection. Open never fails because of debris;
// Quarantined reports what was set aside, and appends resume from the
// first uncommitted chunk.
func Open(dir string, schema *feature.Schema, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("disk: store needs a non-empty schema")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	_, span := trace.Start(context.Background(), "diskstore.open")
	defer span.End()
	s := &Store{dir: dir, schema: schema, schemaHash: SchemaHash(schema), opts: opts}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	markers := make(map[int]bool)
	segFiles := make(map[int][]string) // chunk -> segment filenames
	var stray []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		var chunk, shard int
		switch {
		case parseName(name, "c%06d-s%03d.seg", &chunk, &shard):
			segFiles[chunk] = append(segFiles[chunk], name)
		case parseName(name, "c%06d.ok", &chunk):
			markers[chunk] = true
		case filepath.Ext(name) == ".quarantined":
			// Already set aside by a previous recovery.
		default:
			stray = append(stray, name)
		}
	}

	// Walk the contiguous committed prefix, opening and validating each
	// chunk's segments. The first missing marker or invalid segment ends
	// the prefix; the broken chunk and everything after it is debris.
	committed := 0
	for markers[committed] {
		names := segFiles[committed]
		sort.Strings(names)
		cs := &chunkSet{seq: committed}
		ok := len(names) > 0
		for _, name := range names {
			seg, err := openSegment(filepath.Join(dir, name), schema, s.schemaHash, !opts.SkipCRC)
			if err != nil {
				ok = false
				break
			}
			if seg.Chunk() != committed || seg.Shard() >= opts.Shards || segName(seg.Chunk(), seg.Shard()) != name {
				seg.Close()
				ok = false
				break
			}
			cs.segs = append(cs.segs, seg)
			cs.rows += seg.Rows()
		}
		if !ok {
			for _, seg := range cs.segs {
				seg.Close()
			}
			break
		}
		s.chunks = append(s.chunks, cs)
		s.rows += cs.rows
		committed++
	}

	// Quarantine everything past the committed prefix.
	for chunk, names := range segFiles {
		if chunk >= committed {
			stray = append(stray, names...)
		}
	}
	for chunk := range markers {
		if chunk >= committed {
			stray = append(stray, markerName(chunk))
		}
	}
	sort.Strings(stray)
	for _, name := range stray {
		src := filepath.Join(dir, name)
		dst := src + ".quarantined"
		if err := os.Rename(src, dst); err != nil {
			s.Close()
			return nil, fmt.Errorf("disk: quarantine %s: %w", name, err)
		}
		s.quarantined = append(s.quarantined, dst)
	}
	span.SetInt("chunks", int64(committed))
	span.SetInt("rows", int64(s.rows))
	span.SetInt("quarantined", int64(len(s.quarantined)))
	return s, nil
}

// parseName strictly matches name against a zero-padded Sprintf pattern:
// the parsed values must render back to exactly name, so "c1-s2.seg" or
// trailing garbage never passes as a segment.
func parseName(name, pattern string, out ...*int) bool {
	args := make([]any, len(out))
	for i := range out {
		args[i] = out[i]
	}
	n, err := fmt.Sscanf(name, pattern, args...)
	if err != nil || n != len(out) {
		return false
	}
	vals := make([]any, len(out))
	for i := range out {
		vals[i] = *out[i]
	}
	return fmt.Sprintf(pattern, vals...) == name
}

// Schema returns the store's schema.
func (s *Store) Schema() *feature.Schema { return s.schema }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Chunks returns the number of committed chunks.
func (s *Store) Chunks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// Rows returns the total committed row count.
func (s *Store) Rows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows
}

// ChunkRows returns committed chunk seq's row count.
func (s *Store) ChunkRows(seq int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.chunks[seq].rows
}

// Quarantined returns the paths of files set aside during Open.
func (s *Store) Quarantined() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.quarantined...)
}

// Close unmaps every open segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, cs := range s.chunks {
		for _, seg := range cs.segs {
			if err := seg.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	s.chunks = nil
	s.rows = 0
	return first
}

// AppendChunk routes one chunk of rows to shard segments and commits them
// atomically: each segment lands via temp-file + rename, and the chunk's
// commit marker is renamed into place only after every segment — a crash
// anywhere leaves no committed partial chunk, and Open quarantines the
// debris. Vectors must carry the store's schema; ids, labels, and vecs are
// parallel and their append order is preserved by ScanChunks.
func (s *Store) AppendChunk(ctx context.Context, ids []int, labels []int8, vecs []*feature.Vector) error {
	if len(ids) != len(vecs) || len(labels) != len(vecs) {
		return fmt.Errorf("disk: %d ids / %d labels / %d vectors", len(ids), len(labels), len(vecs))
	}
	if len(vecs) == 0 {
		return fmt.Errorf("disk: empty chunk")
	}
	for _, v := range vecs {
		if SchemaHash(v.Schema()) != s.schemaHash {
			return fmt.Errorf("disk: vector schema does not match store schema")
		}
		break // all vectors of a featurized corpus share one schema object
	}
	_, span := trace.Start(ctx, "diskstore.append_chunk")
	defer span.End()
	seq := s.Chunks()

	// Partition rows by entity hash, remembering each row's chunk ordinal.
	type part struct {
		ids    []uint64
		ords   []uint32
		labels []int8
		vecs   []*feature.Vector
	}
	parts := make([]part, s.opts.Shards)
	for r, id := range ids {
		sh := shardOf(uint64(id), s.opts.Shards)
		p := &parts[sh]
		p.ids = append(p.ids, uint64(id))
		p.ords = append(p.ords, uint32(r))
		p.labels = append(p.labels, labels[r])
		p.vecs = append(p.vecs, vecs[r])
	}

	var bytesOut int
	written := make([]string, 0, s.opts.Shards)
	for sh := range parts {
		p := &parts[sh]
		if len(p.vecs) == 0 {
			continue
		}
		data, err := encodeSegment(s.schema, s.schemaHash, sh, s.opts.Shards, seq, p.ids, p.ords, p.labels, p.vecs)
		if err != nil {
			return err
		}
		final := filepath.Join(s.dir, segName(seq, sh))
		if err := s.atomicWrite(final, data, "segment"); err != nil {
			return err
		}
		written = append(written, final)
		bytesOut += len(data)
	}
	// The marker commits the whole chunk; its content is irrelevant
	// (rename atomicity is the commit), only its existence matters.
	marker := filepath.Join(s.dir, markerName(seq))
	if err := s.atomicWrite(marker, []byte("ok\n"), "marker"); err != nil {
		return err
	}

	cs := &chunkSet{seq: seq}
	for _, path := range written {
		seg, err := openSegment(path, s.schema, s.schemaHash, false)
		if err != nil {
			for _, open := range cs.segs {
				open.Close()
			}
			return err
		}
		cs.segs = append(cs.segs, seg)
		cs.rows += seg.Rows()
	}
	s.mu.Lock()
	s.chunks = append(s.chunks, cs)
	s.rows += cs.rows
	s.mu.Unlock()
	span.Add("rows", int64(len(vecs)))
	span.Add("bytes", int64(bytesOut))
	return nil
}

// atomicWrite lands data at path via temp file + rename, running the
// commit hook (fault seam) just before the rename.
func (s *Store) atomicWrite(path string, data []byte, op string) (err error) {
	f, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if s.opts.CommitHook != nil {
		if err = s.opts.CommitHook(op, path); err != nil {
			return fmt.Errorf("disk: commit hook (%s %s): %w", op, filepath.Base(path), err)
		}
	}
	return os.Rename(tmp, path)
}

// ScanChunks streams every committed chunk in sequence order, handing fn
// the chunk's rows in their original append order. The materialized slices
// are freshly allocated per chunk and owned by fn; memory stays O(chunk),
// never O(store).
func (s *Store) ScanChunks(ctx context.Context, fn func(seq int, ids []int, labels []int8, vecs []*feature.Vector) error) error {
	ctx, span := trace.Start(ctx, "diskstore.scan")
	defer span.End()
	n := s.Chunks()
	var rows int
	for seq := 0; seq < n; seq++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ids, labels, vecs, err := s.readChunk(seq)
		if err != nil {
			return err
		}
		rows += len(vecs)
		if err := fn(seq, ids, labels, vecs); err != nil {
			return err
		}
	}
	span.Add("rows", int64(rows))
	return nil
}

// readChunk materializes one committed chunk in append order.
func (s *Store) readChunk(seq int) ([]int, []int8, []*feature.Vector, error) {
	s.mu.RLock()
	cs := s.chunks[seq]
	s.mu.RUnlock()
	ids := make([]int, cs.rows)
	labels := make([]int8, cs.rows)
	vecs := make([]*feature.Vector, cs.rows)
	for _, seg := range cs.segs {
		for r := 0; r < seg.Rows(); r++ {
			ord := seg.Ord(r)
			if ord < 0 || ord >= cs.rows || vecs[ord] != nil {
				return nil, nil, nil, &ErrCorrupt{Path: seg.Path(), Detail: fmt.Sprintf("row ordinal %d invalid for chunk of %d rows", ord, cs.rows)}
			}
			ids[ord] = int(seg.ID(r))
			labels[ord] = seg.Label(r)
			vecs[ord] = seg.VectorAt(s.schema, r)
		}
	}
	return ids, labels, vecs, nil
}

// Find materializes the vectors of the requested point IDs (those present
// in the store). It scans segment ID columns — O(rows) integer reads, no
// index — which is the right trade for the pipeline's only random-access
// consumer, the few thousand sampled propagation seeds.
func (s *Store) Find(ctx context.Context, ids []int) (map[int]*feature.Vector, error) {
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[uint64(id)] = true
	}
	out := make(map[int]*feature.Vector, len(ids))
	s.mu.RLock()
	chunks := s.chunks
	s.mu.RUnlock()
	for _, cs := range chunks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, seg := range cs.segs {
			for r := 0; r < seg.Rows(); r++ {
				if id := seg.ID(r); want[id] {
					out[int(id)] = seg.VectorAt(s.schema, r)
				}
			}
		}
	}
	return out, nil
}

// Labels returns every committed row's stored label in append order — the
// cheap column read the streaming pipeline uses on resume, when vectors
// are already on disk but the in-RAM label slice must be rebuilt.
func (s *Store) Labels() ([]int8, error) {
	s.mu.RLock()
	chunks := s.chunks
	total := s.rows
	s.mu.RUnlock()
	out := make([]int8, 0, total)
	for _, cs := range chunks {
		part := make([]int8, cs.rows)
		for _, seg := range cs.segs {
			for r := 0; r < seg.Rows(); r++ {
				ord := seg.Ord(r)
				if ord < 0 || ord >= cs.rows {
					return nil, &ErrCorrupt{Path: seg.Path(), Detail: "row ordinal out of range"}
				}
				part[ord] = seg.Label(r)
			}
		}
		out = append(out, part...)
	}
	return out, nil
}

// Segments returns the open segments of committed chunk seq (ascending
// shard order). Exposed for the zero-alloc read-path tests and benchmarks.
func (s *Store) Segments(seq int) []*Segment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.chunks[seq].segs
}
