package disk

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/xrand"
)

// appendTestChunk appends one deterministic chunk of n rows starting at
// point ID base and returns what was written.
func appendTestChunk(t *testing.T, s *Store, base, n int, seed int64) ([]int, []int8, []*feature.Vector) {
	t.Helper()
	vecs := makeVecs(t, s.Schema(), n, seed)
	ids := make([]int, n)
	labels := make([]int8, n)
	for i := range ids {
		ids[i] = base + i
		labels[i] = int8(i%3 - 1)
	}
	if err := s.AppendChunk(context.Background(), ids, labels, vecs); err != nil {
		t.Fatalf("AppendChunk: %v", err)
	}
	return ids, labels, vecs
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	s, err := Open(dir, schema, Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	type written struct {
		ids    []int
		labels []int8
		vecs   []*feature.Vector
	}
	var want []written
	for c := 0; c < 3; c++ {
		ids, labels, vecs := appendTestChunk(t, s, 10000*c, 57+13*c, int64(c))
		want = append(want, written{ids, labels, vecs})
	}
	if got := s.Chunks(); got != 3 {
		t.Fatalf("Chunks() = %d, want 3", got)
	}
	if got, wantRows := s.Rows(), 57+70+83; got != wantRows {
		t.Fatalf("Rows() = %d, want %d", got, wantRows)
	}

	verify := func(s *Store, where string) {
		t.Helper()
		seen := 0
		err := s.ScanChunks(context.Background(), func(seq int, ids []int, labels []int8, vecs []*feature.Vector) error {
			w := want[seq]
			if len(ids) != len(w.ids) {
				t.Fatalf("%s: chunk %d has %d rows, want %d", where, seq, len(ids), len(w.ids))
			}
			for r := range ids {
				if ids[r] != w.ids[r] || labels[r] != w.labels[r] {
					t.Fatalf("%s: chunk %d row %d: id/label %d/%d, want %d/%d",
						where, seq, r, ids[r], labels[r], w.ids[r], w.labels[r])
				}
				wantSameVector(t, where, w.vecs[r], vecs[r])
			}
			seen++
			return nil
		})
		if err != nil {
			t.Fatalf("%s: ScanChunks: %v", where, err)
		}
		if seen != 3 {
			t.Fatalf("%s: scanned %d chunks, want 3", where, seen)
		}
	}
	verify(s, "fresh store")

	// Reopen from disk (full CRC verification) and verify bit-identity again.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, schema, Options{Shards: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if q := s2.Quarantined(); len(q) != 0 {
		t.Fatalf("clean reopen quarantined %v", q)
	}
	verify(s2, "reopened store")

	// Find returns the exact stored vectors for scattered IDs.
	wantIDs := []int{10000, 10069, 20082, 3, 56, 999999}
	got, err := s2.Find(context.Background(), wantIDs)
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("Find returned %d vectors, want 5 (999999 absent)", len(got))
	}
	wantSameVector(t, "Find", want[1].vecs[0], got[10000])
	wantSameVector(t, "Find", want[1].vecs[69], got[10069])
	wantSameVector(t, "Find", want[2].vecs[82], got[20082])

	// Labels reassembles the full label column in append order.
	labels, err := s2.Labels()
	if err != nil {
		t.Fatalf("Labels: %v", err)
	}
	var wantLabels []int8
	for _, w := range want {
		wantLabels = append(wantLabels, w.labels...)
	}
	if len(labels) != len(wantLabels) {
		t.Fatalf("Labels() len %d, want %d", len(labels), len(wantLabels))
	}
	for i := range labels {
		if labels[i] != wantLabels[i] {
			t.Fatalf("Labels()[%d] = %d, want %d", i, labels[i], wantLabels[i])
		}
	}
}

func TestStoreShardRouting(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testSchema(), Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	ids, _, _ := appendTestChunk(t, s, 0, 200, 1)
	segs := s.Segments(0)
	if len(segs) < 2 {
		t.Fatalf("200 rows over 4 shards produced %d segments; routing is degenerate", len(segs))
	}
	total := 0
	for _, seg := range segs {
		total += seg.Rows()
		for r := 0; r < seg.Rows(); r++ {
			if got := shardOf(seg.ID(r), 4); got != seg.Shard() {
				t.Fatalf("id %d in shard %d, hash says %d", seg.ID(r), seg.Shard(), got)
			}
		}
	}
	if total != len(ids) {
		t.Fatalf("segments hold %d rows, appended %d", total, len(ids))
	}
}

func TestStoreRejectsBadAppends(t *testing.T) {
	s, err := Open(t.TempDir(), testSchema(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	ctx := context.Background()
	if err := s.AppendChunk(ctx, nil, nil, nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if err := s.AppendChunk(ctx, []int{1, 2}, []int8{0}, makeVecs(t, s.Schema(), 2, 1)); err == nil {
		t.Fatal("mismatched slice lengths accepted")
	}
	other := feature.MustSchema(feature.Def{Name: "x", Kind: feature.Numeric})
	v := feature.NewVector(other)
	v.MustSet("x", feature.NumericValue(1))
	if err := s.AppendChunk(ctx, []int{1}, []int8{0}, []*feature.Vector{v}); err == nil {
		t.Fatal("foreign-schema vector accepted")
	}
}

func TestStoreSchemaMismatchOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testSchema(), Options{Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendTestChunk(t, s, 0, 20, 1)
	s.Close()

	other := feature.MustSchema(
		feature.Def{Name: "score", Kind: feature.Numeric, Set: "A"}, // Servable differs
		feature.Def{Name: "emb", Kind: feature.Embedding, Dim: 4, Set: "B"},
		feature.Def{Name: "topic", Kind: feature.Categorical, Set: "A", Servable: true},
		feature.Def{Name: "tags", Kind: feature.Categorical, Set: "C"},
	)
	s2, err := Open(dir, other, Options{Shards: 2})
	if err != nil {
		t.Fatalf("Open under changed schema: %v", err)
	}
	defer s2.Close()
	// Segments written under the old schema hash cannot be committed data
	// for the new schema; they must be quarantined, not mis-decoded.
	if s2.Chunks() != 0 {
		t.Fatalf("store decoded %d chunks under a different schema", s2.Chunks())
	}
	if len(s2.Quarantined()) == 0 {
		t.Fatal("schema-mismatched segments were not quarantined")
	}
}

func TestSegmentAccessors(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	data := encodeTestSegment(t, schema, 64, 9)
	path := filepath.Join(dir, segName(0, 0))
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	seg, err := openSegment(path, schema, SchemaHash(schema), true)
	if err != nil {
		t.Fatalf("openSegment: %v", err)
	}
	defer seg.Close()
	vecs := makeVecs(t, schema, 64, 9)
	embCol := schemaIndex(t, schema, "emb")
	topicCol := schemaIndex(t, schema, "topic")
	for r := 0; r < seg.Rows(); r++ {
		if seg.ID(r) != uint64(1000+r) || seg.Ord(r) != r || seg.Label(r) != int8(r%3-1) {
			t.Fatalf("row %d: id/ord/label = %d/%d/%d", r, seg.ID(r), seg.Ord(r), seg.Label(r))
		}
		want := vecs[r]
		if tv := want.Get("topic"); !tv.Missing {
			if got := seg.NumCategories(topicCol, r); got != len(tv.Categories) {
				t.Fatalf("row %d: %d topic categories, want %d", r, got, len(tv.Categories))
			}
			for k := range tv.Categories {
				if got := seg.Category(topicCol, r, k); got != tv.Categories[k] {
					t.Fatalf("row %d topic[%d] = %q, want %q", r, k, got, tv.Categories[k])
				}
			}
		}
		if ev := want.Get("emb"); !ev.Missing {
			buf := seg.EmbeddingInto(embCol, r, nil)
			for k := range ev.Vec {
				if math.Float64bits(buf[k]) != math.Float64bits(ev.Vec[k]) {
					t.Fatalf("row %d emb[%d] = %v, want %v", r, k, buf[k], ev.Vec[k])
				}
			}
		}
	}
	// Dictionary is segment-local, deduplicated, first-appearance ordered.
	dict := seg.Dict(topicCol)
	seen := map[string]bool{}
	for _, cat := range dict {
		if seen[cat] {
			t.Fatalf("dictionary has duplicate %q", cat)
		}
		seen[cat] = true
		if !strings.HasPrefix(cat, "t") {
			t.Fatalf("unexpected dictionary entry %q", cat)
		}
	}
}

func TestSchemaHashSensitivity(t *testing.T) {
	base := testSchema()
	h := SchemaHash(base)
	variants := []*feature.Schema{
		feature.MustSchema( // renamed feature
			feature.Def{Name: "score2", Kind: feature.Numeric, Set: "A", Servable: true},
			feature.Def{Name: "emb", Kind: feature.Embedding, Dim: 4, Set: "B"},
			feature.Def{Name: "topic", Kind: feature.Categorical, Set: "A", Servable: true},
			feature.Def{Name: "tags", Kind: feature.Categorical, Set: "C"},
		),
		feature.MustSchema( // changed dim
			feature.Def{Name: "score", Kind: feature.Numeric, Set: "A", Servable: true},
			feature.Def{Name: "emb", Kind: feature.Embedding, Dim: 8, Set: "B"},
			feature.Def{Name: "topic", Kind: feature.Categorical, Set: "A", Servable: true},
			feature.Def{Name: "tags", Kind: feature.Categorical, Set: "C"},
		),
		feature.MustSchema( // dropped feature
			feature.Def{Name: "score", Kind: feature.Numeric, Set: "A", Servable: true},
			feature.Def{Name: "emb", Kind: feature.Embedding, Dim: 4, Set: "B"},
			feature.Def{Name: "topic", Kind: feature.Categorical, Set: "A", Servable: true},
		),
	}
	for i, v := range variants {
		if SchemaHash(v) == h {
			t.Fatalf("variant %d hashes identically to the base schema", i)
		}
	}
	if SchemaHash(testSchema()) != h {
		t.Fatal("SchemaHash is not deterministic")
	}
}

func TestShardOfDistribution(t *testing.T) {
	const n, shards = 10000, 8
	counts := make([]int, shards)
	for id := 0; id < n; id++ {
		counts[shardOf(uint64(id), shards)]++
	}
	for sh, c := range counts {
		if c < n/shards/2 || c > n/shards*2 {
			t.Fatalf("shard %d holds %d of %d rows; hash routing is skewed: %v", sh, c, n, counts)
		}
	}
	_ = xrand.Mix // routing is pinned to xrand.Mix; keep the import honest
}
