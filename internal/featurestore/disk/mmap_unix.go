//go:build unix

package disk

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. The returned release func unmaps; the caller
// may close f immediately after mapping (the mapping keeps its own
// reference). Zero-length files cannot be mapped and are rejected by the
// header parse before this is called.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
