package disk

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"

	"crossmodal/internal/feature"
)

// Segment is one immutable, mmap-backed shard segment. Row accessors
// perform no allocations and no copies: they decode little-endian values
// straight out of the mapped payload (asserted by AllocsPerRun tests), so
// scans over millions of rows cost only the page-ins.
type Segment struct {
	path    string
	shard   int
	chunk   int
	rows    int
	payload []byte
	cols    []colMeta
	unmap   func() error
}

// openSegment maps and validates one segment file against schema. With
// verifyCRC the payload checksum is verified once at open (scans then
// trust the mapping); structural validation — magic, version, schema hash,
// column bounds, dictionary ranges — always runs.
func openSegment(path string, schema *feature.Schema, schemaHash uint64, verifyCRC bool) (seg *Segment, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() > headerSize+maxPayload+4 {
		return nil, &ErrCorrupt{Path: path, Detail: "file exceeds maximum segment size"}
	}
	if st.Size() == 0 {
		return nil, &ErrCorrupt{Path: path, Detail: "zero-length segment"}
	}
	data, unmap, err := mapFile(f, int(st.Size()))
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			unmap()
		}
	}()
	h, err := parseHeader(data)
	if err != nil {
		err.(*ErrCorrupt).Path = path
		return nil, err
	}
	if h.SchemaHash != schemaHash {
		return nil, &ErrCorrupt{Path: path, Detail: "schema hash mismatch"}
	}
	payload := data[headerSize : headerSize+h.PayloadLen]
	if verifyCRC {
		want := binary.LittleEndian.Uint32(data[headerSize+h.PayloadLen:])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, &ErrCorrupt{Path: path, Detail: "payload CRC mismatch"}
		}
	}
	cols, err := payloadLayout(payload, schema, h.Rows)
	if err != nil {
		err.(*ErrCorrupt).Path = path
		return nil, err
	}
	return &Segment{
		path:    path,
		shard:   h.Shard,
		chunk:   h.Chunk,
		rows:    h.Rows,
		payload: payload,
		cols:    cols,
		unmap:   unmap,
	}, nil
}

// Close unmaps the segment.
func (s *Segment) Close() error { return s.unmap() }

// Rows returns the segment's row count.
func (s *Segment) Rows() int { return s.rows }

// Shard returns the shard index the segment belongs to.
func (s *Segment) Shard() int { return s.shard }

// Chunk returns the chunk sequence number the segment belongs to.
func (s *Segment) Chunk() int { return s.chunk }

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// ID returns row r's point ID.
func (s *Segment) ID(r int) uint64 {
	return binary.LittleEndian.Uint64(s.payload[8*r:])
}

// Ord returns row r's ordinal within its chunk (its position in the
// original append order).
func (s *Segment) Ord(r int) int {
	return int(binary.LittleEndian.Uint32(s.payload[8*s.rows+4*r:]))
}

// Label returns row r's stored ground-truth label.
func (s *Segment) Label(r int) int8 {
	return int8(s.payload[12*s.rows+r])
}

// Present reports whether feature col is non-missing on row r.
func (s *Segment) Present(col, r int) bool {
	return s.payload[s.cols[col].pres+r/8]&(1<<(r%8)) != 0
}

// Numeric returns row r's value of numeric feature col with its exact
// written bits. The caller must have checked Present.
func (s *Segment) Numeric(col, r int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(s.payload[s.cols[col].data+8*r:]))
}

// EmbeddingInto appends row r's embedding for feature col to buf and
// returns the extended slice; with sufficient capacity it allocates
// nothing.
func (s *Segment) EmbeddingInto(col, r int, buf []float64) []float64 {
	c := &s.cols[col]
	base := c.data + 8*c.dim*r
	for k := 0; k < c.dim; k++ {
		buf = append(buf, math.Float64frombits(binary.LittleEndian.Uint64(s.payload[base+8*k:])))
	}
	return buf
}

// NumCategories returns how many category entries row r carries for
// categorical feature col (duplicates included).
func (s *Segment) NumCategories(col, r int) int {
	c := &s.cols[col]
	le := binary.LittleEndian
	return int(le.Uint32(s.payload[c.data+4*(r+1):]) - le.Uint32(s.payload[c.data+4*r:]))
}

// Category returns the k'th category string of row r for feature col, in
// the value's original order. The string aliases the segment's decoded
// dictionary; no per-call allocation.
func (s *Segment) Category(col, r, k int) string {
	c := &s.cols[col]
	le := binary.LittleEndian
	start := int(le.Uint32(s.payload[c.data+4*r:]))
	id := le.Uint32(s.payload[c.ids+4*(start+k):])
	return c.dict[id]
}

// Dict returns feature col's segment-local dictionary in first-appearance
// order. Callers must not mutate it.
func (s *Segment) Dict(col int) []string { return s.cols[col].dict }

// VectorAt materializes row r as a feature vector under schema (which must
// be the schema the segment was validated against). Values round-trip
// bit-exactly: float bits, category order, and duplicates are preserved.
func (s *Segment) VectorAt(schema *feature.Schema, r int) *feature.Vector {
	v := feature.NewVector(schema)
	for col := 0; col < schema.Len(); col++ {
		if !s.Present(col, r) {
			continue
		}
		d := schema.Def(col)
		var val feature.Value
		switch d.Kind {
		case feature.Numeric:
			val = feature.NumericValue(s.Numeric(col, r))
		case feature.Embedding:
			val = feature.EmbeddingValue(s.EmbeddingInto(col, r, make([]float64, 0, d.Dim)))
		case feature.Categorical:
			if n := s.NumCategories(col, r); n > 0 {
				cats := make([]string, n)
				for k := range cats {
					cats[k] = s.Category(col, r, k)
				}
				val = feature.CategoricalValue(cats...)
			} else {
				val = feature.CategoricalValue()
			}
		}
		v.MustSet(d.Name, val)
	}
	return v
}
