// Package disk is the columnar, mmap-backed feature store that lets the
// curation pipeline run at corpus sizes that do not fit in RAM (ROADMAP
// item 1: the paper's Expander-scale deployment curates 18–26M text and
// ~7.4M image points; our in-memory slices top out around 10⁵).
//
// A store is a directory of shard segment files. Rows are routed to shards
// by entity-hash (splitmix64 of the point ID), and writes are append-only:
// the pipeline appends one *chunk* of rows at a time, which fans out into
// at most one new segment file per shard. Each segment is written to a
// temp file and atomically renamed into place; a chunk becomes durable
// only when its commit marker (`cNNNNNN.ok`) is renamed last. A crash at
// any point therefore leaves either a fully committed chunk or loose
// un-marked files, which Open detects and quarantines — the same crash
// model the fusion artifact format uses, extended from one file to a
// multi-file commit.
//
// Segment layout (all integers little-endian), mirroring the hardened
// XMODART1 artifact format — versioned magic, length validation before any
// allocation, CRC over the payload:
//
//	magic      [8]byte  "XMODFST1"
//	version    uint32   format version (1)
//	shard      uint32   shard index this segment belongs to
//	nshards    uint32   shard count of the owning store
//	chunk      uint32   chunk sequence number
//	rows       uint32   row count
//	schemaHash uint64   FNV-64a fingerprint of the feature schema
//	payloadLen uint64   byte length of the columnar payload
//	headerCRC  uint32   IEEE CRC-32 of the 44 header bytes above
//	payload    [payloadLen]byte
//	payloadCRC uint32   IEEE CRC-32 of the payload
//
// The payload is columnar:
//
//	ids    rows × uint64   point IDs
//	ords   rows × uint32   row's ordinal within its chunk (restores append order)
//	labels rows × int8     ground-truth labels (diagnostics; pipelines gate reads)
//	then, per schema feature in order:
//	  presence bitmap, ceil(rows/8) bytes (bit r set ⇒ row r non-missing)
//	  Numeric:   rows × uint64 raw float64 bits
//	  Embedding: rows × dim × uint64 raw float64 bits
//	  Categorical:
//	    dictCount uint32, then dictCount × (uint16 len + bytes) — the
//	      segment-local dictionary, in first-appearance order
//	    offsets (rows+1) × uint32 into the local-ID array
//	    localIDs offsets[rows] × uint32 — per-row category IDs in the
//	      value's original order, duplicates preserved
//
// Floats round-trip as raw bits and categorical values keep their exact
// order and multiplicity, so a vector read back is bit-identical to the
// one written — the property the golden streamed-pipeline gate depends on.
// Interned-categorical encoding: the per-segment dictionary plus local IDs
// is exactly the shape feature.SimKernel consumes after re-interning at
// materialization (Vector.Set).
package disk

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"crossmodal/internal/feature"
)

const (
	formatVersion = 1
	headerSize    = 48

	// Hard caps, validated before any size-driven allocation so a corrupt
	// or adversarial header cannot force a huge allocation (the fusion.Load
	// progressive-read discipline).
	maxRows        = 1 << 26
	maxPayload     = 1<<31 - 1
	maxDictEntries = 1 << 22
	maxCatIDs      = 1 << 28
)

var segmentMagic = [8]byte{'X', 'M', 'O', 'D', 'F', 'S', 'T', '1'}

// ErrCorrupt tags every validation failure so callers can distinguish a
// damaged file from an I/O error.
type ErrCorrupt struct {
	Path   string
	Detail string
}

func (e *ErrCorrupt) Error() string {
	if e.Path == "" {
		return "disk: corrupt segment: " + e.Detail
	}
	return fmt.Sprintf("disk: corrupt segment %s: %s", e.Path, e.Detail)
}

func corrupt(format string, args ...any) error {
	return &ErrCorrupt{Detail: fmt.Sprintf(format, args...)}
}

// SchemaHash fingerprints a feature schema (names, kinds, sets, dims,
// servability, in order) so a store refuses rows written under a different
// schema instead of mis-decoding columns.
func SchemaHash(schema *feature.Schema) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		h.Write([]byte(d.Name))
		h.Write([]byte{0, byte(d.Kind)})
		binary.LittleEndian.PutUint32(scratch[:4], uint32(d.Dim))
		h.Write(scratch[:4])
		h.Write([]byte(d.Set))
		sv := byte(0)
		if d.Servable {
			sv = 1
		}
		h.Write([]byte{0, sv})
	}
	return h.Sum64()
}

// header is the decoded fixed-size segment header.
type header struct {
	Shard      int
	NShards    int
	Chunk      int
	Rows       int
	SchemaHash uint64
	PayloadLen int
}

// putHeader encodes h into a headerSize byte slice, including the header
// CRC.
func putHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf, segmentMagic[:])
	le := binary.LittleEndian
	le.PutUint32(buf[8:], formatVersion)
	le.PutUint32(buf[12:], uint32(h.Shard))
	le.PutUint32(buf[16:], uint32(h.NShards))
	le.PutUint32(buf[20:], uint32(h.Chunk))
	le.PutUint32(buf[24:], uint32(h.Rows))
	le.PutUint64(buf[28:], h.SchemaHash)
	le.PutUint64(buf[36:], uint64(h.PayloadLen))
	le.PutUint32(buf[44:], crc32.ChecksumIEEE(buf[:44]))
	return buf
}

// parseHeader validates the fixed header. It reads only the first
// headerSize bytes and never allocates proportionally to any length field.
func parseHeader(data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, corrupt("file too short for header: %d bytes", len(data))
	}
	if !bytes.Equal(data[:8], segmentMagic[:]) {
		return h, corrupt("bad magic %q", data[:8])
	}
	le := binary.LittleEndian
	if got := le.Uint32(data[44:]); got != crc32.ChecksumIEEE(data[:44]) {
		return h, corrupt("header CRC mismatch")
	}
	if v := le.Uint32(data[8:]); v != formatVersion {
		return h, corrupt("version %d, want %d", v, formatVersion)
	}
	h.Shard = int(le.Uint32(data[12:]))
	h.NShards = int(le.Uint32(data[16:]))
	h.Chunk = int(le.Uint32(data[20:]))
	h.Rows = int(le.Uint32(data[24:]))
	h.SchemaHash = le.Uint64(data[28:])
	payloadLen := le.Uint64(data[36:])
	if h.NShards <= 0 || h.Shard < 0 || h.Shard >= h.NShards {
		return h, corrupt("shard %d of %d out of range", h.Shard, h.NShards)
	}
	if h.Rows <= 0 || h.Rows > maxRows {
		return h, corrupt("implausible row count %d", h.Rows)
	}
	if payloadLen == 0 || payloadLen > maxPayload {
		return h, corrupt("implausible payload length %d", payloadLen)
	}
	h.PayloadLen = int(payloadLen)
	want := headerSize + h.PayloadLen + 4
	if len(data) != want {
		return h, corrupt("file is %d bytes, header implies %d", len(data), want)
	}
	return h, nil
}

// colMeta locates one feature's column inside a parsed payload. Offsets
// are relative to the payload start.
type colMeta struct {
	kind feature.Kind
	dim  int
	pres int // presence bitmap offset
	data int // numeric/embedding data, or the cat offsets array
	ids  int // categorical local-ID array offset
	dict []string
}

// payloadLayout walks and validates the columnar payload, returning the
// column directory. Every read is bounds-checked against the actual byte
// count, so lying lengths fail cleanly; allocations (the dictionaries) are
// bounded by the bytes actually present in the file.
func payloadLayout(payload []byte, schema *feature.Schema, rows int) ([]colMeta, error) {
	cur := cursor{b: payload}
	cur.skip(8 * rows) // ids
	cur.skip(4 * rows) // ords
	cur.skip(rows)     // labels
	bitmapLen := (rows + 7) / 8
	cols := make([]colMeta, schema.Len())
	for i := range cols {
		d := schema.Def(i)
		c := &cols[i]
		c.kind, c.dim = d.Kind, d.Dim
		c.pres = cur.off
		cur.skip(bitmapLen)
		switch d.Kind {
		case feature.Numeric:
			c.data = cur.off
			cur.skip(8 * rows)
		case feature.Embedding:
			c.data = cur.off
			cur.skip(8 * rows * d.Dim)
		case feature.Categorical:
			dictCount := int(cur.u32())
			if cur.err != nil {
				return nil, cur.err
			}
			if dictCount > maxDictEntries {
				return nil, corrupt("feature %q: implausible dictionary size %d", d.Name, dictCount)
			}
			// Each entry occupies at least its 2-byte length prefix, so a
			// dictCount the remaining bytes cannot hold is a lie — reject it
			// before sizing the dictionary from it.
			if dictCount > (len(payload)-cur.off)/2 {
				return nil, corrupt("feature %q: dictionary size %d exceeds remaining payload", d.Name, dictCount)
			}
			c.dict = make([]string, dictCount)
			for k := 0; k < dictCount; k++ {
				n := int(cur.u16())
				s := cur.bytes(n)
				if cur.err != nil {
					return nil, cur.err
				}
				c.dict[k] = string(s)
			}
			c.data = cur.off
			cur.skip(4 * (rows + 1))
			if cur.err != nil {
				return nil, cur.err
			}
			// Offsets must be monotone and end exactly at the ID count.
			le := binary.LittleEndian
			prev := uint32(0)
			for r := 0; r <= rows; r++ {
				o := le.Uint32(payload[c.data+4*r:])
				if o < prev {
					return nil, corrupt("feature %q: offsets not monotone at row %d", d.Name, r)
				}
				prev = o
			}
			total := int(prev)
			if total > maxCatIDs {
				return nil, corrupt("feature %q: implausible category-ID count %d", d.Name, total)
			}
			if le.Uint32(payload[c.data:]) != 0 {
				return nil, corrupt("feature %q: offsets do not start at 0", d.Name)
			}
			c.ids = cur.off
			cur.skip(4 * total)
			if cur.err != nil {
				return nil, cur.err
			}
			for k := 0; k < total; k++ {
				if id := le.Uint32(payload[c.ids+4*k:]); int(id) >= dictCount {
					return nil, corrupt("feature %q: category ID %d out of dictionary range %d", d.Name, id, dictCount)
				}
			}
		default:
			return nil, corrupt("feature %q: unknown kind %d", d.Name, int(d.Kind))
		}
		if cur.err != nil {
			return nil, cur.err
		}
	}
	if cur.off != len(payload) {
		return nil, corrupt("payload has %d trailing bytes", len(payload)-cur.off)
	}
	return cols, nil
}

// cursor is a bounds-checked forward reader over a payload. All reads
// after the first failure are no-ops with err set, so decode loops need a
// single check per batch of reads.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = corrupt(format, args...)
	}
}

func (c *cursor) skip(n int) {
	if c.err != nil {
		return
	}
	if n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		c.fail("truncated payload: need %d bytes at offset %d of %d", n, c.off, len(c.b))
		return
	}
	c.off += n
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	start := c.off
	c.skip(n)
	if c.err != nil {
		return nil
	}
	return c.b[start : start+n]
}

func (c *cursor) u16() uint16 {
	b := c.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// encodeSegment serializes one shard's slice of a chunk. ids, ords,
// labels, and vecs are parallel; every vector must carry schema.
func encodeSegment(schema *feature.Schema, schemaHash uint64, shard, nshards, chunk int, ids []uint64, ords []uint32, labels []int8, vecs []*feature.Vector) ([]byte, error) {
	rows := len(vecs)
	if rows == 0 || rows > maxRows {
		return nil, fmt.Errorf("disk: segment row count %d out of range", rows)
	}
	var payload bytes.Buffer
	var scratch [8]byte
	le := binary.LittleEndian
	for _, id := range ids {
		le.PutUint64(scratch[:], id)
		payload.Write(scratch[:8])
	}
	for _, o := range ords {
		le.PutUint32(scratch[:4], o)
		payload.Write(scratch[:4])
	}
	for _, l := range labels {
		payload.WriteByte(byte(l))
	}
	bitmap := make([]byte, (rows+7)/8)
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		for b := range bitmap {
			bitmap[b] = 0
		}
		for r, v := range vecs {
			if !v.At(i).Missing {
				bitmap[r/8] |= 1 << (r % 8)
			}
		}
		payload.Write(bitmap)
		switch d.Kind {
		case feature.Numeric:
			for _, v := range vecs {
				val := v.At(i)
				var bits uint64
				if !val.Missing {
					bits = math.Float64bits(val.Num)
				}
				le.PutUint64(scratch[:], bits)
				payload.Write(scratch[:8])
			}
		case feature.Embedding:
			zero := make([]byte, 8*d.Dim)
			for _, v := range vecs {
				val := v.At(i)
				if val.Missing {
					payload.Write(zero)
					continue
				}
				if len(val.Vec) != d.Dim {
					return nil, fmt.Errorf("disk: feature %q: embedding dim %d, schema wants %d", d.Name, len(val.Vec), d.Dim)
				}
				for _, x := range val.Vec {
					le.PutUint64(scratch[:], math.Float64bits(x))
					payload.Write(scratch[:8])
				}
			}
		case feature.Categorical:
			dictIdx := make(map[string]uint32)
			var dict []string
			offsets := make([]uint32, 0, rows+1)
			var localIDs []uint32
			offsets = append(offsets, 0)
			for _, v := range vecs {
				val := v.At(i)
				if !val.Missing {
					for _, cat := range val.Categories {
						id, ok := dictIdx[cat]
						if !ok {
							id = uint32(len(dict))
							dictIdx[cat] = id
							dict = append(dict, cat)
						}
						localIDs = append(localIDs, id)
					}
				}
				offsets = append(offsets, uint32(len(localIDs)))
			}
			if len(dict) > maxDictEntries {
				return nil, fmt.Errorf("disk: feature %q: dictionary overflows %d entries", d.Name, maxDictEntries)
			}
			if len(localIDs) > maxCatIDs {
				return nil, fmt.Errorf("disk: feature %q: category IDs overflow %d", d.Name, maxCatIDs)
			}
			le.PutUint32(scratch[:4], uint32(len(dict)))
			payload.Write(scratch[:4])
			for _, s := range dict {
				if len(s) > math.MaxUint16 {
					return nil, fmt.Errorf("disk: feature %q: category longer than %d bytes", d.Name, math.MaxUint16)
				}
				le.PutUint16(scratch[:2], uint16(len(s)))
				payload.Write(scratch[:2])
				payload.WriteString(s)
			}
			for _, o := range offsets {
				le.PutUint32(scratch[:4], o)
				payload.Write(scratch[:4])
			}
			for _, id := range localIDs {
				le.PutUint32(scratch[:4], id)
				payload.Write(scratch[:4])
			}
		}
	}
	if payload.Len() > maxPayload {
		return nil, fmt.Errorf("disk: segment payload %d bytes exceeds cap", payload.Len())
	}
	out := make([]byte, 0, headerSize+payload.Len()+4)
	out = append(out, putHeader(header{
		Shard: shard, NShards: nshards, Chunk: chunk,
		Rows: rows, SchemaHash: schemaHash, PayloadLen: payload.Len(),
	})...)
	out = append(out, payload.Bytes()...)
	le.PutUint32(scratch[:4], crc32.ChecksumIEEE(payload.Bytes()))
	out = append(out, scratch[:4]...)
	return out, nil
}
