//go:build !unix

package disk

import (
	"io"
	"os"
)

// mapFile on platforms without mmap support falls back to reading the file
// into memory; the accessors are byte-slice based either way.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
