package disk

import (
	"fmt"
	"math"
	"os"
	"testing"

	"crossmodal/internal/feature"
	"crossmodal/internal/xrand"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func schemaIndex(t testing.TB, schema *feature.Schema, name string) int {
	t.Helper()
	i, ok := schema.Index(name)
	if !ok {
		t.Fatalf("schema has no feature %q", name)
	}
	return i
}

// testSchema exercises all three column kinds, including a second
// categorical with heavy duplication pressure on the dictionary.
func testSchema() *feature.Schema {
	return feature.MustSchema(
		feature.Def{Name: "score", Kind: feature.Numeric, Set: "A", Servable: true},
		feature.Def{Name: "emb", Kind: feature.Embedding, Dim: 4, Set: "B"},
		feature.Def{Name: "topic", Kind: feature.Categorical, Set: "A", Servable: true},
		feature.Def{Name: "tags", Kind: feature.Categorical, Set: "C"},
	)
}

// makeVecs builds n deterministic vectors with a mix of missing values,
// empty-but-present categoricals, duplicate categories, and odd float bits.
func makeVecs(t testing.TB, schema *feature.Schema, n int, seed int64) []*feature.Vector {
	t.Helper()
	rng := xrand.New(seed)
	vecs := make([]*feature.Vector, n)
	for i := range vecs {
		v := feature.NewVector(schema)
		switch i % 5 {
		case 0:
			v.MustSet("score", feature.NumericValue(rng.NormFloat64()))
		case 1:
			v.MustSet("score", feature.NumericValue(math.Inf(1)))
		case 2:
			v.MustSet("score", feature.NumericValue(0))
		case 3:
			// missing
		case 4:
			v.MustSet("score", feature.NumericValue(-math.SmallestNonzeroFloat64))
		}
		if i%3 != 0 {
			emb := make([]float64, 4)
			for k := range emb {
				emb[k] = rng.Float64()*2 - 1
			}
			v.MustSet("emb", feature.EmbeddingValue(emb))
		}
		switch i % 4 {
		case 0:
			v.MustSet("topic", feature.CategoricalValue(fmt.Sprintf("t%d", rng.Intn(7))))
		case 1:
			v.MustSet("topic", feature.CategoricalValue("t0", "t1", "t0")) // duplicates preserved
		case 2:
			v.MustSet("topic", feature.CategoricalValue()) // present but empty
		}
		if i%2 == 0 {
			tags := make([]string, 1+rng.Intn(3))
			for k := range tags {
				tags[k] = fmt.Sprintf("tag-%d", rng.Intn(20))
			}
			v.MustSet("tags", feature.CategoricalValue(tags...))
		}
		vecs[i] = v
	}
	return vecs
}

// wantSameVector asserts b is bit-identical to a: same presence, same
// float bits, same categories in the same order with multiplicity.
func wantSameVector(t *testing.T, where string, a, b *feature.Vector) {
	t.Helper()
	schema := a.Schema()
	for i := 0; i < schema.Len(); i++ {
		d := schema.Def(i)
		va, vb := a.At(i), b.At(i)
		if va.Missing != vb.Missing {
			t.Fatalf("%s: feature %q: missing %v vs %v", where, d.Name, va.Missing, vb.Missing)
		}
		if va.Missing {
			continue
		}
		switch d.Kind {
		case feature.Numeric:
			if math.Float64bits(va.Num) != math.Float64bits(vb.Num) {
				t.Fatalf("%s: feature %q: %v (%#x) vs %v (%#x)", where, d.Name,
					va.Num, math.Float64bits(va.Num), vb.Num, math.Float64bits(vb.Num))
			}
		case feature.Embedding:
			if len(va.Vec) != len(vb.Vec) {
				t.Fatalf("%s: feature %q: dim %d vs %d", where, d.Name, len(va.Vec), len(vb.Vec))
			}
			for k := range va.Vec {
				if math.Float64bits(va.Vec[k]) != math.Float64bits(vb.Vec[k]) {
					t.Fatalf("%s: feature %q[%d]: %v vs %v", where, d.Name, k, va.Vec[k], vb.Vec[k])
				}
			}
		case feature.Categorical:
			if len(va.Categories) != len(vb.Categories) {
				t.Fatalf("%s: feature %q: %d categories vs %d", where, d.Name, len(va.Categories), len(vb.Categories))
			}
			for k := range va.Categories {
				if va.Categories[k] != vb.Categories[k] {
					t.Fatalf("%s: feature %q[%d]: %q vs %q", where, d.Name, k, va.Categories[k], vb.Categories[k])
				}
			}
		}
	}
}

// encodeTestSegment produces a complete valid segment byte image for the
// format-level tests and the fuzz seed corpus.
func encodeTestSegment(t testing.TB, schema *feature.Schema, rows int, seed int64) []byte {
	t.Helper()
	vecs := makeVecs(t, schema, rows, seed)
	ids := make([]uint64, rows)
	ords := make([]uint32, rows)
	labels := make([]int8, rows)
	for i := range ids {
		ids[i] = uint64(1000 + i)
		ords[i] = uint32(i)
		labels[i] = int8(i%3 - 1)
	}
	data, err := encodeSegment(schema, SchemaHash(schema), 0, 1, 0, ids, ords, labels, vecs)
	if err != nil {
		t.Fatalf("encodeSegment: %v", err)
	}
	return data
}
