package disk

import (
	"path/filepath"
	"testing"
)

// TestShardReadAllocs pins the zero-allocation contract of the segment
// read hot path: scanning a mapped segment's columns must not allocate,
// or million-row scans turn into GC storms.
func TestShardReadAllocs(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	path := filepath.Join(dir, segName(0, 0))
	if err := writeFile(path, encodeTestSegment(t, schema, 128, 11)); err != nil {
		t.Fatal(err)
	}
	seg, err := openSegment(path, schema, SchemaHash(schema), true)
	if err != nil {
		t.Fatalf("openSegment: %v", err)
	}
	defer seg.Close()

	embCol := schemaIndex(t, schema, "emb")
	topicCol := schemaIndex(t, schema, "topic")
	scoreCol := schemaIndex(t, schema, "score")
	buf := make([]float64, 0, 8)
	var sink float64
	var cats int

	cases := []struct {
		name string
		fn   func()
	}{
		{"ids+ords+labels", func() {
			for r := 0; r < seg.Rows(); r++ {
				sink += float64(seg.ID(r)) + float64(seg.Ord(r)) + float64(seg.Label(r))
			}
		}},
		{"numeric", func() {
			for r := 0; r < seg.Rows(); r++ {
				if seg.Present(scoreCol, r) {
					sink += seg.Numeric(scoreCol, r)
				}
			}
		}},
		{"embedding", func() {
			for r := 0; r < seg.Rows(); r++ {
				if seg.Present(embCol, r) {
					buf = seg.EmbeddingInto(embCol, r, buf[:0])
					sink += buf[0]
				}
			}
		}},
		{"categorical", func() {
			for r := 0; r < seg.Rows(); r++ {
				if !seg.Present(topicCol, r) {
					continue
				}
				n := seg.NumCategories(topicCol, r)
				for k := 0; k < n; k++ {
					cats += len(seg.Category(topicCol, r, k))
				}
			}
		}},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs per scan, want 0", tc.name, avg)
		}
	}
	_ = sink
	_ = cats
}
