package featurestore

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"

	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

var (
	envOnce sync.Once
	envLib  *resource.Library
	envPts  []*synth.Point
	envErr  error
)

func env(t *testing.T) (*resource.Library, []*synth.Point) {
	t.Helper()
	envOnce.Do(func() {
		world := synth.MustWorld(synth.DefaultConfig())
		envLib, envErr = resource.StandardLibrary(world)
		if envErr != nil {
			return
		}
		task, err := synth.TaskByName("CT1")
		if err != nil {
			envErr = err
			return
		}
		ds, err := synth.BuildDataset(world, task, synth.DatasetConfig{
			Seed: 3, NumText: 200, NumUnlabeledImage: 100, NumHandLabelPool: 1, NumTest: 1,
		})
		if err != nil {
			envErr = err
			return
		}
		envPts = append(ds.LabeledText, ds.UnlabeledImage...)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envLib, envPts
}

func TestFeaturizeCachesAndMatchesLibrary(t *testing.T) {
	lib, pts := env(t)
	store, err := New(lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{Workers: 4}
	first, err := store.Featurize(ctx, cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := store.Stats()
	if hits != 0 || misses != len(pts) {
		t.Errorf("cold pass: hits=%d misses=%d", hits, misses)
	}
	second, err := store.Featurize(ctx, cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ = store.Stats()
	if hits != len(pts) {
		t.Errorf("warm pass hits = %d, want %d", hits, len(pts))
	}
	for i := range pts {
		if first[i] != second[i] {
			t.Fatal("warm pass returned a different vector instance")
		}
		want := lib.FeaturizePoint(pts[i]).String()
		if first[i].String() != want {
			t.Fatalf("cached vector differs from direct featurization for point %d", pts[i].ID)
		}
	}
}

func TestCapacityEviction(t *testing.T) {
	lib, pts := env(t)
	store, err := New(lib, 50)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := store.Featurize(ctx, mapreduce.Config{}, pts); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 50 {
		t.Errorf("cache size = %d, want capacity 50", store.Len())
	}
	_, _, evicted := store.Stats()
	if evicted != len(pts)-50 {
		t.Errorf("evicted = %d, want %d", evicted, len(pts)-50)
	}
}

func TestLRUOrdering(t *testing.T) {
	lib, pts := env(t)
	store, err := New(lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{}
	a, b, c := pts[0:1], pts[1:2], pts[2:3]
	mustFeaturize(t, store, ctx, cfg, a) // cache: [a]
	mustFeaturize(t, store, ctx, cfg, b) // cache: [b a]
	mustFeaturize(t, store, ctx, cfg, a) // cache: [a b]
	mustFeaturize(t, store, ctx, cfg, c) // evicts b
	hitsBefore, _, _ := store.Stats()
	mustFeaturize(t, store, ctx, cfg, a)
	hitsAfter, _, _ := store.Stats()
	if hitsAfter != hitsBefore+1 {
		t.Error("a should still be cached (was most recently used)")
	}
	_, missesBefore, _ := store.Stats()
	mustFeaturize(t, store, ctx, cfg, b)
	_, missesAfter, _ := store.Stats()
	if missesAfter != missesBefore+1 {
		t.Error("b should have been evicted")
	}
}

func mustFeaturize(t *testing.T, s *Store, ctx context.Context, cfg mapreduce.Config, pts []*synth.Point) {
	t.Helper()
	if _, err := s.Featurize(ctx, cfg, pts); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	lib, pts := env(t)
	store, err := New(lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	orig, err := store.Featurize(ctx, mapreduce.Config{}, pts[:40])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 40 {
		t.Fatalf("restored %d entries, want 40", restored.Len())
	}
	warm, err := restored.Featurize(ctx, mapreduce.Config{}, pts[:40])
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := restored.Stats()
	if hits != 40 || misses != 0 {
		t.Errorf("restored store should serve from cache: hits=%d misses=%d", hits, misses)
	}
	for i := range warm {
		if warm[i].String() != orig[i].String() {
			t.Fatalf("restored vector %d differs", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	lib, pts := env(t)
	store, _ := New(lib, 0)
	ctx := context.Background()
	if _, err := store.Featurize(ctx, mapreduce.Config{}, pts[:10]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, _ := New(lib, 0)
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 10 {
		t.Errorf("restored %d, want 10", restored.Len())
	}
	if err := restored.LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	lib, _ := env(t)
	store, _ := New(lib, 0)
	if err := store.Load(bytes.NewBufferString("not json\n")); err == nil {
		t.Error("expected decode error")
	}
	if err := store.Load(bytes.NewBufferString(`{"id":1,"vec":{"bogus":{"num":1}}}` + "\n")); err == nil {
		t.Error("expected unknown-feature error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("expected error for nil library")
	}
}

func TestConcurrentFeaturize(t *testing.T) {
	lib, pts := env(t)
	store, _ := New(lib, 100)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			slice := pts[(g*17)%len(pts):]
			if len(slice) > 60 {
				slice = slice[:60]
			}
			if _, err := store.Featurize(ctx, mapreduce.Config{Workers: 2}, slice); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSamplingTap covers the drift-detection window: enabled sampling
// records served vectors (hits and misses alike) up to the cap, and a drain
// resets the window.
func TestSamplingTap(t *testing.T) {
	lib, pts := env(t)
	store, err := New(lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{Workers: 2}

	// Disabled by default: nothing recorded.
	mustFeaturize(t, store, ctx, cfg, pts[:4])
	if got := store.DrainSample(); len(got) != 0 {
		t.Fatalf("recorded %d vectors with sampling disabled", len(got))
	}

	store.EnableSampling(5)
	mustFeaturize(t, store, ctx, cfg, pts[:8]) // all cache hits now
	if got := store.DrainSample(); len(got) != 5 {
		t.Fatalf("drained %d vectors, want cap 5", len(got))
	}
	if got := store.DrainSample(); len(got) != 0 {
		t.Fatalf("second drain returned %d vectors, want 0", len(got))
	}

	// Fresh windows keep recording after a drain, and misses count too.
	mustFeaturize(t, store, ctx, cfg, pts[8:11])
	got := store.DrainSample()
	if len(got) != 3 {
		t.Fatalf("drained %d vectors, want 3", len(got))
	}
	for i, v := range got {
		if v == nil {
			t.Fatalf("sample %d is nil", i)
		}
	}

	store.EnableSampling(0)
	mustFeaturize(t, store, ctx, cfg, pts[:2])
	if got := store.DrainSample(); len(got) != 0 {
		t.Fatalf("EnableSampling(0) did not disable the tap (%d recorded)", len(got))
	}
}
