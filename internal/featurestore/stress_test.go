package featurestore

import (
	"context"
	"sync"
	"testing"

	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
	"crossmodal/internal/xrand"
)

// stressPoints samples n image points with IDs [0, n).
func stressPoints(t *testing.T, world *synth.World, n int) []*synth.Point {
	t.Helper()
	rng := xrand.New(99)
	pts := make([]*synth.Point, n)
	for i := range pts {
		e := world.SampleEntity(rng, synth.Image, i)
		pts[i] = &synth.Point{ID: i, Entity: e, Modality: synth.Image, Seed: xrand.Mix(uint64(i) ^ 0xbeef)}
	}
	return pts
}

// TestFeaturizeConcurrentStress hammers one store from many goroutines with
// overlapping point ranges under a small capacity, the access pattern the
// serving path creates (many HTTP handlers featurizing live traffic through
// one store). Run under -race via `make race`. Every returned vector must
// equal the library's direct featurization, and the counters must balance.
func TestFeaturizeConcurrentStress(t *testing.T) {
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	const nPoints = 120
	pts := stressPoints(t, world, nPoints)
	// Direct featurization is deterministic, so it is the ground truth.
	want, err := lib.Featurize(context.Background(), mapreduce.Config{Workers: 2}, pts)
	if err != nil {
		t.Fatal(err)
	}

	store, err := New(lib, 48) // small capacity: constant eviction churn
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(int64(g) + 1)
			for r := 0; r < rounds; r++ {
				// Overlapping windows so goroutines contend on the same IDs.
				lo := rng.Intn(nPoints - 20)
				batch := pts[lo : lo+20]
				got, err := store.Featurize(context.Background(), mapreduce.Config{Workers: 1}, batch)
				if err != nil {
					errCh <- err
					return
				}
				for i, vec := range got {
					id := batch[i].ID
					if vec.String() != want[id].String() {
						t.Errorf("goroutine %d round %d: point %d diverged", g, r, id)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	hits, misses, evicted := store.Stats()
	total := goroutines * rounds * 20
	if hits+misses != total {
		t.Errorf("hits %d + misses %d != %d lookups", hits, misses, total)
	}
	if evicted == 0 {
		t.Error("expected eviction churn at capacity 48 over 120 points")
	}
	if store.Len() > 48 {
		t.Errorf("store holds %d entries, capacity 48", store.Len())
	}
	// Coalescing is scheduling-dependent, but the counter must never exceed
	// total misses.
	if c := store.Coalesced(); c > misses {
		t.Errorf("coalesced %d > misses %d", c, misses)
	}
}

// TestFeaturizeCoalescesDuplicateMisses pins the coalescing path: a batch
// containing the same point twice must count one owned miss and one
// coalesced miss, and return identical vectors for both slots.
func TestFeaturizeCoalescesDuplicateMisses(t *testing.T) {
	world, err := synth.NewWorld(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := resource.StandardLibrary(world)
	if err != nil {
		t.Fatal(err)
	}
	store, err := New(lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := stressPoints(t, world, 1)
	got, err := store.Featurize(context.Background(), mapreduce.Config{Workers: 1}, []*synth.Point{pts[0], pts[0]})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != got[1] {
		t.Error("duplicate IDs in one batch should share the computed vector")
	}
	if c := store.Coalesced(); c != 1 {
		t.Errorf("coalesced = %d, want 1", c)
	}
	if hits, misses, _ := store.Stats(); hits != 0 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2", hits, misses)
	}
}
