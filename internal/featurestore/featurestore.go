// Package featurestore implements the precomputed-feature cache the paper's
// production setting assumes (§2.3, §6.2: "services we use are pre-computed
// for each data point as the generated features assist teams across the
// organization", under per-team storage budgets). The store memoizes
// featurization results under a capacity bound with LRU eviction, and can
// persist its contents as JSON lines for reuse across processes.
package featurestore

import (
	"bufio"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"crossmodal/internal/feature"
	"crossmodal/internal/mapreduce"
	"crossmodal/internal/resource"
	"crossmodal/internal/synth"
)

// Store is a bounded, concurrency-safe cache of featurized data points in
// front of a resource library. The zero value is not usable; call New.
type Store struct {
	lib      *resource.Library
	capacity int

	mu      sync.Mutex
	entries map[int]*list.Element // point ID → LRU element
	lru     *list.List            // front = most recent
	hits    int
	misses  int
	evicted int
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	id  int
	vec *feature.Vector
}

// New builds a store over lib holding at most capacity vectors (capacity <=
// 0 means unbounded).
func New(lib *resource.Library, capacity int) (*Store, error) {
	if lib == nil {
		return nil, fmt.Errorf("featurestore: nil library")
	}
	return &Store{
		lib:      lib,
		capacity: capacity,
		entries:  make(map[int]*list.Element),
		lru:      list.New(),
	}, nil
}

// Library returns the wrapped resource library.
func (s *Store) Library() *resource.Library { return s.lib }

// Len returns the number of cached vectors.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats reports cache effectiveness counters.
func (s *Store) Stats() (hits, misses, evicted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evicted
}

// lookup returns the cached vector for a point ID, updating recency.
func (s *Store) lookup(id int) (*feature.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[id]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).vec, true
}

// insert stores a vector under a point ID, evicting the least recently used
// entry when over capacity.
func (s *Store) insert(id int, vec *feature.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		el.Value.(*cacheEntry).vec = vec
		s.lru.MoveToFront(el)
		return
	}
	s.entries[id] = s.lru.PushFront(&cacheEntry{id: id, vec: vec})
	if s.capacity > 0 && s.lru.Len() > s.capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).id)
		s.evicted++
	}
}

// Featurize returns feature vectors for pts, computing only cache misses
// (in parallel) and memoizing them. Point IDs key the cache, so IDs must be
// unique across everything featurized through one store — true for points
// sampled from one synth.Dataset.
func (s *Store) Featurize(ctx context.Context, cfg mapreduce.Config, pts []*synth.Point) ([]*feature.Vector, error) {
	out := make([]*feature.Vector, len(pts))
	var missing []*synth.Point
	var missingIdx []int
	for i, p := range pts {
		if vec, ok := s.lookup(p.ID); ok {
			out[i] = vec
		} else {
			missing = append(missing, p)
			missingIdx = append(missingIdx, i)
		}
	}
	if len(missing) > 0 {
		computed, err := s.lib.Featurize(ctx, cfg, missing)
		if err != nil {
			return nil, err
		}
		for j, vec := range computed {
			out[missingIdx[j]] = vec
			s.insert(missing[j].ID, vec)
		}
	}
	return out, nil
}

// persistedRow is the JSONL wire form of one cached vector.
type persistedRow struct {
	ID  int             `json:"id"`
	Vec json.RawMessage `json:"vec"`
}

// Save writes the cache contents as JSON lines, most recently used first.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for el := s.lru.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*cacheEntry)
		vecJSON, err := json.Marshal(entry.vec)
		if err != nil {
			return fmt.Errorf("featurestore: encode point %d: %w", entry.id, err)
		}
		if err := enc.Encode(persistedRow{ID: entry.id, Vec: vecJSON}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load fills the cache from JSON lines previously written by Save. Existing
// entries with the same IDs are overwritten; capacity eviction applies.
func (s *Store) Load(r io.Reader) error {
	schema := s.lib.Schema()
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var row persistedRow
		if err := dec.Decode(&row); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("featurestore: decode row %d: %w", n, err)
		}
		vec, err := feature.UnmarshalVector(schema, row.Vec)
		if err != nil {
			return fmt.Errorf("featurestore: decode vector %d: %w", row.ID, err)
		}
		s.insert(row.ID, vec)
		n++
	}
}

// SaveFile persists the cache to path.
func (s *Store) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return s.Save(f)
}

// LoadFile fills the cache from path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
